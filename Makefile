# Tier-1 verification plus the race gate for the sharded pipeline.
#
#   make verify   - build everything and run the full test suite (tier-1)
#   make race     - the same tests under the race detector; the parallel
#                   worker-pool path (harness.RunParallel) makes this the
#                   gate for shard-isolation regressions
#   make bench    - serial-vs-parallel suite benchmarks
#   make figures  - regenerate the paper's evaluation figures

GO ?= go

.PHONY: verify race bench figures

verify:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench SuiteSerialVsParallel -benchtime 3x .

figures:
	$(GO) run ./cmd/figures
