# Tier-1 verification plus the race and static-analysis gates.
#
#   make verify   - build, full test suite, go vet, and iocovlint (tier-1)
#   make race     - the same tests under the race detector; the parallel
#                   worker-pool path (harness.RunParallel) makes this the
#                   gate for shard-isolation regressions
#   make vet      - the standard go vet checks
#   make lint     - iocovlint: domaincheck, speccheck, shardcheck, errcheck
#                   over the whole repository (exit 1 on any finding)
#   make bench    - serial-vs-parallel suite benchmarks
#   make figures  - regenerate the paper's evaluation figures

GO ?= go

.PHONY: verify race vet lint bench figures

verify:
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) vet
	$(MAKE) lint

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/iocovlint

bench:
	$(GO) test -run xxx -bench SuiteSerialVsParallel -benchtime 3x .

figures:
	$(GO) run ./cmd/figures
