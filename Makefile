# Tier-1 verification plus the race and static-analysis gates.
#
#   make verify   - build, full test suite, go vet, and iocovlint (tier-1)
#   make race     - the same tests under the race detector; the parallel
#                   worker-pool path (harness.RunParallel) makes this the
#                   gate for shard-isolation regressions
#   make vet      - the standard go vet checks
#   make lint     - iocovlint: domaincheck, speccheck, shardcheck, errcheck
#                   over the whole repository (exit 1 on any finding)
#   make bench    - serial-vs-parallel suite benchmarks
#   make bench-json - full benchmark suite, parsed to BENCH_$(LABEL).json
#                   (ns/op, B/op, allocs/op per benchmark) for the perf
#                   trajectory across PRs
#   make figures  - regenerate the paper's evaluation figures

GO ?= go
LABEL ?= dev

.PHONY: verify race vet lint bench bench-json figures

verify:
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) vet
	$(MAKE) lint

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/iocovlint

bench:
	$(GO) test -run xxx -bench SuiteSerialVsParallel -benchtime 3x .

bench-json:
	$(GO) test -run xxx -bench . -benchtime 2x -benchmem . \
		| $(GO) run ./cmd/benchjson -label $(LABEL) -o BENCH_$(LABEL).json

figures:
	$(GO) run ./cmd/figures
