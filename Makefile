# Tier-1 verification plus the race and static-analysis gates.
#
#   make verify   - build, full test suite, go vet, and iocovlint (tier-1)
#   make race     - the same tests under the race detector; the parallel
#                   worker-pool path (harness.RunParallel) makes this the
#                   gate for shard-isolation regressions
#   make vet      - the standard go vet checks
#   make lint     - iocovlint: domaincheck, speccheck, shardcheck, errcheck,
#                   httpcheck, lockcheck, alloccheck, leakcheck, atomcheck,
#                   determcheck, wirecheck, boundcheck over the whole
#                   repository (exit 1 on any finding); -v prints per-pass
#                   analysis times
#   make fuzz     - short fuzz passes over the binary trace codec
#   make smoke    - end-to-end iocovd daemon smoke test (ingest, report,
#                   metrics, graceful shutdown, checkpoint-restore identity)
#                   plus the CPU-aware parallel-scaling wall-clock check
#   make evolve-smoke - fixed-seed evolve run: untested count strictly
#                   decreases, replay verifies, and corpus + snapshot are
#                   byte-stable across two runs
#   make bench    - serial-vs-parallel suite benchmarks
#   make bench-json - full benchmark suite, parsed to BENCH_$(LABEL).json
#                   (ns/op, B/op, allocs/op per benchmark) for the perf
#                   trajectory across PRs
#   make figures  - regenerate the paper's evaluation figures

GO ?= go
LABEL ?= dev

.PHONY: verify race vet lint fuzz smoke evolve-smoke bench bench-json figures

verify:
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) vet
	$(MAKE) lint

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/iocovlint -v

fuzz:
	$(GO) test -run xxx -fuzz FuzzBinaryRoundTrip -fuzztime 15s ./internal/trace/
	$(GO) test -run xxx -fuzz FuzzBinaryReaderMalformed -fuzztime 15s ./internal/trace/

smoke:
	./scripts/smoke_iocovd.sh
	./scripts/smoke_parallel.sh

evolve-smoke:
	./scripts/smoke_evolve.sh

bench:
	$(GO) test -run xxx -bench SuiteSerialVsParallel -benchtime 3x .

bench-json:
	$(GO) test -run xxx -bench . -benchtime 2x -benchmem . \
		| $(GO) run ./cmd/benchjson -label $(LABEL) -o BENCH_$(LABEL).json

figures:
	$(GO) run ./cmd/figures
