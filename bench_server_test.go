// Benchmarks for the iocovd ingest path: pre-serialized binary trace
// streams POSTed through a loopback daemon, 1 vs N concurrent sessions.
// The contended case measures the whole pipeline — HTTP transport, binary
// parse, per-session pooled filter+analyzer, and the striped store merge.
package iocov

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"iocov/internal/server"
	"iocov/internal/trace"
)

// benchStream pre-serializes one suite run's filtered events in the given
// binary trace format version, returning the payload and its event count.
func benchStream(tb testing.TB, scale float64, version int) ([]byte, int) {
	evs := collectEvents(tb, scale)
	var buf bytes.Buffer
	var w *trace.BinaryWriter
	if version >= 2 {
		w = trace.NewBinaryWriterV2(&buf)
	} else {
		w = trace.NewBinaryWriter(&buf)
	}
	for _, ev := range evs {
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), len(evs)
}

// BenchmarkIngestThroughput streams the same payload through a loopback
// iocovd, serially and with 8 concurrent sessions, reporting end-to-end
// events/sec. The concurrent case shows how much of the pipeline
// (everything but the final store merge) parallelizes across sessions.
// The payload is the v2 format — what a current harness streams; the
// legacy v1 encoding is covered by BenchmarkIngestThroughputV1.
func BenchmarkIngestThroughput(b *testing.B) {
	payload, nEvents := benchStream(b, benchScale, 2)
	for _, streams := range []int{1, 8} {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			srv, err := server.New(server.Config{})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			// The default transport keeps only 2 idle conns per host, so at
			// streams=8 three quarters of the sockets are torn down and
			// redialed every iteration — connection churn that would be
			// misread as ingest cost. Size the idle pool to the stream count.
			client := &http.Client{Transport: &http.Transport{
				MaxIdleConns:        streams,
				MaxIdleConnsPerHost: streams,
			}}
			defer client.CloseIdleConnections()
			b.SetBytes(int64(len(payload) * streams))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for s := 0; s < streams; s++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						resp, err := client.Post(ts.URL+"/ingest", "application/octet-stream",
							bytes.NewReader(payload))
						if err != nil {
							b.Error(err)
							return
						}
						_, _ = io.Copy(io.Discard, resp.Body)
						_ = resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							b.Errorf("ingest status %d", resp.StatusCode)
						}
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			b.ReportMetric(float64(nEvents*streams*b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkIngestThroughputV1 measures the same serial ingest over the
// legacy v1 encoding, pinning the cost of supporting it forever.
func BenchmarkIngestThroughputV1(b *testing.B) {
	payload, nEvents := benchStream(b, benchScale, 1)
	srv, err := server.New(server.Config{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/ingest", "application/octet-stream",
			bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(nEvents*b.N)/b.Elapsed().Seconds(), "events/sec")
}
