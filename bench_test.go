// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the ablations DESIGN.md calls out and the pipeline's raw throughput.
//
// Each evaluation bench runs the relevant pipeline at a reduced scale per
// iteration and reports the headline shape metric alongside time/allocs;
// cmd/figures regenerates the full artifacts.
package iocov

import (
	"bytes"
	"fmt"
	"testing"

	"iocov/internal/bugdb"
	"iocov/internal/bugsim"
	"iocov/internal/corr"
	"iocov/internal/coverage"
	"iocov/internal/difftest"
	"iocov/internal/evolve"
	"iocov/internal/harness"
	"iocov/internal/kernel"
	"iocov/internal/lint"
	"iocov/internal/metrics"
	"iocov/internal/partition"
	"iocov/internal/suites/crashmonkey"
	"iocov/internal/sys"
	"iocov/internal/syz"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

const benchScale = 0.02

// collectEvents runs the CrashMonkey simulator once and retains its raw
// filtered events, shared by the analyzer-only benchmarks.
func collectEvents(tb testing.TB, scale float64) []trace.Event {
	col := trace.NewCollector()
	filter, err := trace.NewFilter(harness.MountPattern)
	if err != nil {
		tb.Fatal(err)
	}
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{
		Sink: &trace.FilteringSink{F: filter, Next: col},
	})
	if _, err := crashmonkey.Run(k, crashmonkey.Config{Scale: scale, Seed: 1}); err != nil {
		tb.Fatal(err)
	}
	return col.Events()
}

// BenchmarkFigure2OpenFlagCoverage regenerates Figure 2's data: per-flag
// input coverage of the open family for a suite run.
func BenchmarkFigure2OpenFlagCoverage(b *testing.B) {
	var covered int
	for i := 0; i < b.N; i++ {
		an, err := harness.Run(harness.SuiteCrashMonkey, benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		covered = an.InputReport("open", "flags").Covered()
	}
	b.ReportMetric(float64(covered), "flags-covered")
}

// BenchmarkTable1FlagCombinations regenerates Table 1's combination-size
// percentages.
func BenchmarkTable1FlagCombinations(b *testing.B) {
	var rows []coverage.ComboRow
	for i := 0; i < b.N; i++ {
		an, err := harness.Run(harness.SuiteCrashMonkey, benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		rows = an.ComboTable(6)
	}
	b.ReportMetric(rows[0].Pct[3], "pct-4flag")
}

// BenchmarkFigure3WriteSizeCoverage regenerates Figure 3's data: write-size
// input coverage in powers-of-two partitions.
func BenchmarkFigure3WriteSizeCoverage(b *testing.B) {
	var covered int
	for i := 0; i < b.N; i++ {
		an, err := harness.Run(harness.SuiteCrashMonkey, benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		covered = an.InputReport("write", "count").Covered()
	}
	b.ReportMetric(float64(covered), "size-buckets-covered")
}

// BenchmarkFigure4OpenOutputCoverage regenerates Figure 4's data: success
// and errno output coverage of open.
func BenchmarkFigure4OpenOutputCoverage(b *testing.B) {
	var covered int
	for i := 0; i < b.N; i++ {
		an, err := harness.Run(harness.SuiteCrashMonkey, benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		covered = an.OutputReport("open").Covered()
	}
	b.ReportMetric(float64(covered), "outputs-covered")
}

// BenchmarkFigure5TCD regenerates Figure 5: the TCD sweep over uniform
// targets plus the crossover search, on a fixed coverage vector.
func BenchmarkFigure5TCD(b *testing.B) {
	an, err := harness.Run(harness.SuiteCrashMonkey, benchScale, 1)
	if err != nil {
		b.Fatal(err)
	}
	xfs, err := harness.Run(harness.SuiteXfstests, benchScale, 1)
	if err != nil {
		b.Fatal(err)
	}
	cf := an.InputReport("open", "flags").Frequencies()
	xf := xfs.InputReport("open", "flags").Frequencies()
	b.ResetTimer()
	var cross int64
	for i := 0; i < b.N; i++ {
		_ = metrics.Sweep(cf, 100_000_000, 10)
		_ = metrics.Sweep(xf, 100_000_000, 10)
		cross, _ = metrics.Crossover(cf, xf, 100_000_000)
	}
	b.ReportMetric(float64(cross), "crossover-target")
}

// BenchmarkBugStudyAggregates recomputes every §2 statistic from the
// 70-bug dataset.
func BenchmarkBugStudyAggregates(b *testing.B) {
	var agg bugdb.Aggregates
	for i := 0; i < b.N; i++ {
		agg = bugdb.Aggregate(bugdb.Load())
	}
	b.ReportMetric(float64(agg.LineCovMissed), "line-covered-missed")
}

// BenchmarkBugSimDetection runs the covered-but-missed demonstration: all
// five injected bug classes assessed under regression and boundary
// workloads (Figure 1's narrative made executable).
func BenchmarkBugSimDetection(b *testing.B) {
	var detected int
	for i := 0; i < b.N; i++ {
		detected = 0
		for _, bug := range bugsim.Catalog {
			out := bugsim.Assess(bug, vfs.DefaultConfig(), bugsim.BoundaryWorkload(bug.ID))
			if out.Detected {
				detected++
			}
		}
	}
	b.ReportMetric(float64(detected), "bugs-detected")
}

// BenchmarkDiffTester measures the §6 coverage-guided differential tester.
func BenchmarkDiffTester(b *testing.B) {
	var mm int
	for i := 0; i < b.N; i++ {
		cfg := difftest.Config{Ops: 2000, Seed: int64(i), GuideEvery: 25}
		cfg.FS = vfs.DefaultConfig()
		cfg.FS.Bugs.NowaitWriteENOSPC = true
		mm = len(difftest.Run(cfg).Mismatches)
	}
	b.ReportMetric(float64(mm), "mismatches")
}

// BenchmarkCorrelationStudy runs the §2 correlation quantification: random
// workloads x injected bugs, phi coefficients of the two predictors.
func BenchmarkCorrelationStudy(b *testing.B) {
	var phi float64
	for i := 0; i < b.N; i++ {
		res := corr.Run(corr.Config{Workloads: 40, Seed: int64(i)})
		phi = res.PhiTrigger
	}
	b.ReportMetric(phi, "phi-trigger")
}

// --- Ablations --------------------------------------------------------------

// BenchmarkAblationVariantMerging compares analysis with and without the
// syscall variant handler. Without merging, variants fragment into separate
// coverage spaces (more counters, smaller per-space frequencies).
func BenchmarkAblationVariantMerging(b *testing.B) {
	events := collectEvents(b, 0.2)
	for _, merge := range []bool{true, false} {
		name := "merged"
		if !merge {
			name = "unmerged"
		}
		b.Run(name, func(b *testing.B) {
			var spaces int
			for i := 0; i < b.N; i++ {
				an := coverage.NewAnalyzer(coverage.Options{MergeVariants: merge})
				an.AddAll(events)
				spaces = len(an.Syscalls())
			}
			b.ReportMetric(float64(spaces), "coverage-spaces")
		})
	}
}

// BenchmarkAblationTraceFilter measures the regex+fd-table filter cost over
// a mixed in/out-of-mount event stream.
func BenchmarkAblationTraceFilter(b *testing.B) {
	events := collectEvents(b, 0.2)
	// Interleave out-of-mount noise.
	mixed := make([]trace.Event, 0, len(events)*2)
	for _, ev := range events {
		mixed = append(mixed, ev)
		// Rebuild the event rather than copy it so every string argument
		// (inline or spilled) points outside the mount.
		noise := trace.Event{
			Seq: ev.Seq, PID: ev.PID, Name: ev.Name,
			Path: "/var/log/other", Ret: ev.Ret, Err: ev.Err,
		}
		ev.EachArg(noise.AddArg)
		ev.EachStr(func(k, _ string) { noise.AddStr(k, noise.Path) })
		mixed = append(mixed, noise)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := trace.NewFilter(harness.MountPattern)
		if err != nil {
			b.Fatal(err)
		}
		kept := f.Apply(mixed)
		if len(kept) == 0 {
			b.Fatal("filter dropped everything")
		}
	}
}

// BenchmarkAblationNumericPartitioning compares the paper's powers-of-two
// bucketing against fixed-width linear bucketing for write sizes.
func BenchmarkAblationNumericPartitioning(b *testing.B) {
	sizes := make([]int64, 100_000)
	for i := range sizes {
		k := uint(i % 29)
		base := int64(1) << k
		sizes[i] = base + (int64(i)*7919)%base // spread within the bucket
	}
	b.Run("log2", func(b *testing.B) {
		s := partition.BytesScheme{}
		for i := 0; i < b.N; i++ {
			for _, v := range sizes {
				_ = s.Partitions(v)
			}
		}
	})
	b.Run("linear4k", func(b *testing.B) {
		counts := make(map[int64]int64)
		for i := 0; i < b.N; i++ {
			clear(counts)
			for _, v := range sizes {
				counts[v/4096]++
			}
		}
		// Linear bucketing needs ~65k buckets to span the same range the
		// 29 log buckets cover — the reason the paper uses powers of two.
		b.ReportMetric(float64(len(counts)), "buckets")
	})
}

// BenchmarkAblationTCDLinear compares the paper's log-space TCD against a
// linear-space RMSD, demonstrating cost parity (the choice is about
// semantics, not speed).
func BenchmarkAblationTCDLinear(b *testing.B) {
	an, err := harness.Run(harness.SuiteCrashMonkey, benchScale, 1)
	if err != nil {
		b.Fatal(err)
	}
	freqs := an.InputReport("open", "flags").Frequencies()
	b.Run("log", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = metrics.UniformTCD(freqs, 5237)
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = metrics.LinearTCD(freqs, 5237)
		}
	})
}

// BenchmarkAblationCrashOracle measures the cost of the crash-consistency
// oracle: the CrashMonkey simulation with and without persistence
// snapshots + durability checks.
func BenchmarkAblationCrashOracle(b *testing.B) {
	for _, check := range []bool{false, true} {
		name := "off"
		if check {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var violations int
			for i := 0; i < b.N; i++ {
				k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{})
				stats, err := crashmonkey.Run(k, crashmonkey.Config{
					Scale: 0.05, Seed: 1, CrashCheck: check,
				})
				if err != nil {
					b.Fatal(err)
				}
				violations = stats.CrashViolations
			}
			b.ReportMetric(float64(violations), "violations")
		})
	}
}

// --- Parallel pipeline -------------------------------------------------------

// BenchmarkSuiteSerialVsParallel pairs a serial suite run against the
// sharded worker-pool run at several worker counts. Every variant produces
// a byte-identical snapshot (the harness test enforces it); the benchmark
// measures what sharding costs or saves on this machine. Speedups track
// available CPUs: on a single-CPU host the parallel variants only add the
// shard set-up and merge overhead.
func BenchmarkSuiteSerialVsParallel(b *testing.B) {
	for _, suite := range []string{harness.SuiteXfstests, harness.SuiteCrashMonkey} {
		b.Run(suite+"/serial", func(b *testing.B) {
			var analyzed int64
			for i := 0; i < b.N; i++ {
				an, err := harness.Run(suite, benchScale, 1)
				if err != nil {
					b.Fatal(err)
				}
				analyzed = an.Analyzed()
			}
			b.ReportMetric(float64(analyzed), "events")
		})
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", suite, workers), func(b *testing.B) {
				var analyzed int64
				for i := 0; i < b.N; i++ {
					an, err := harness.RunParallel(suite, benchScale, 1, workers, coverage.DefaultOptions())
					if err != nil {
						b.Fatal(err)
					}
					analyzed = an.Analyzed()
				}
				b.ReportMetric(float64(analyzed), "events")
			})
		}
	}
}

// BenchmarkAnalyzerMerge measures the merge step in isolation: combining
// two analyzers that each absorbed half of a suite's event stream.
func BenchmarkAnalyzerMerge(b *testing.B) {
	events := collectEvents(b, 0.2)
	half := len(events) / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		lo := coverage.NewAnalyzer(coverage.DefaultOptions())
		hi := coverage.NewAnalyzer(coverage.DefaultOptions())
		lo.AddAll(events[:half])
		hi.AddAll(events[half:])
		b.StartTimer()
		if err := lo.Merge(hi); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Pipeline throughput -----------------------------------------------------

// BenchmarkKernelSyscalls measures raw traced-syscall cost (open/write/
// close cycle).
func BenchmarkKernelSyscalls(b *testing.B) {
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{Sink: &trace.CountingSink{}})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	buf := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd, e := p.Open("/bench", sys.O_CREAT|sys.O_WRONLY|sys.O_TRUNC, 0o644)
		if e != sys.OK {
			b.Fatal(e)
		}
		if _, e := p.Write(fd, buf); e != sys.OK {
			b.Fatal(e)
		}
		if e := p.Close(fd); e != sys.OK {
			b.Fatal(e)
		}
	}
}

// BenchmarkAnalyzerThroughput measures events/sec through the analyzer.
func BenchmarkAnalyzerThroughput(b *testing.B) {
	events := collectEvents(b, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an := coverage.NewAnalyzer(coverage.DefaultOptions())
		an.AddAll(events)
	}
	b.SetBytes(int64(len(events)))
}

// BenchmarkEvolveGenerations measures the evolutionary workload generator:
// one iteration is a full fixed-seed run (seed evaluation plus the
// generations needed to cover every reachable input partition), so ns/op
// divided by the generation count is the loop's generations/sec headline.
func BenchmarkEvolveGenerations(b *testing.B) {
	seed := syz.Generate(syz.GenConfig{Programs: 20, Seed: 7, Dir: "/evolve"})
	b.ResetTimer()
	gens := 0
	for i := 0; i < b.N; i++ {
		res, err := evolve.Run(seed, evolve.Config{Seed: 7, Generations: 12})
		if err != nil {
			b.Fatal(err)
		}
		if res.Untested() != 0 {
			b.Fatalf("%d partitions still untested", res.Untested())
		}
		gens += res.Generations
	}
	b.ReportMetric(float64(gens)/float64(b.N), "generations/op")
}

// BenchmarkTraceWriteParse measures the LTTng-style text round trip.
func BenchmarkTraceWriteParse(b *testing.B) {
	events := collectEvents(b, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		for _, ev := range events {
			w.Emit(ev)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		parsed, err := trace.ParseAll(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(parsed) != len(events) {
			b.Fatalf("parsed %d of %d", len(parsed), len(events))
		}
	}
}

// BenchmarkLintSuite runs the full twelve-pass static-analysis suite over
// the repository, including the load and type-check, the way `make lint`
// pays for it; the per-pass engines (call graph, CFGs, value lattice) are
// rebuilt each iteration.
func BenchmarkLintSuite(b *testing.B) {
	var findings int
	for i := 0; i < b.N; i++ {
		tgt, err := lint.LoadRepo(".")
		if err != nil {
			b.Fatal(err)
		}
		findings = len(lint.RunAll(tgt, lint.AllPasses()))
	}
	if findings != 0 {
		b.Fatalf("lint suite found %d findings on the live tree", findings)
	}
}
