// Command benchjson converts `go test -bench` output on stdin into a
// committed-friendly JSON file, giving the repo a benchmark trajectory
// across PRs:
//
//	go test -run xxx -bench . -benchmem . | benchjson -label pr3 -o BENCH_pr3.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"iocov/internal/benchparse"
)

func main() {
	label := flag.String("label", "dev", "run label recorded in the JSON")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	run, err := benchparse.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(run.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	run.Label = *label

	enc, err := json.MarshalIndent(run, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
