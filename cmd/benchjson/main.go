// Command benchjson converts `go test -bench` output on stdin into a
// committed-friendly JSON file, giving the repo a benchmark trajectory
// across PRs:
//
//	go test -run xxx -bench . -benchmem . | benchjson -label pr3 -o BENCH_pr3.json
//
// With -compare it instead diffs two such JSON files and prints a
// per-benchmark delta table:
//
//	benchjson -compare BENCH_pr7.json BENCH_pr8.json
//
// Comparison exit codes: 0 when every shared benchmark is within the
// regression thresholds, 1 when one regressed past -threshold (ns/op) or
// -memthreshold (B/op), 2 on usage or parse errors — so CI can
// distinguish "perf regressed" from "the tool broke".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"iocov/internal/benchparse"
)

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(code)
}

func main() {
	label := flag.String("label", "dev", "run label recorded in the JSON")
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two BENCH_*.json files given as arguments")
	nsThreshold := flag.Float64("threshold", 1.30,
		"ns/op regression ratio tripping exit 1 in -compare mode (<= 0 disables)")
	memThreshold := flag.Float64("memthreshold", 2.0,
		"B/op regression ratio tripping exit 1 in -compare mode (<= 0 disables)")
	flag.Parse()

	if *compare {
		runCompare(flag.Args(), *nsThreshold, *memThreshold)
		return
	}

	run, err := benchparse.Parse(os.Stdin)
	if err != nil {
		fail(1, "%v", err)
	}
	if len(run.Results) == 0 {
		fail(1, "no benchmark results on stdin")
	}
	run.Label = *label

	enc, err := json.MarshalIndent(run, "", "  ")
	if err != nil {
		fail(1, "%v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			fail(1, "%v", err)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail(1, "%v", err)
	}
}

// loadRun reads one benchjson-written JSON file.
func loadRun(path string) (benchparse.Run, error) {
	var run benchparse.Run
	data, err := os.ReadFile(path)
	if err != nil {
		return run, err
	}
	if err := json.Unmarshal(data, &run); err != nil {
		return run, fmt.Errorf("%s: %w", path, err)
	}
	return run, nil
}

// runCompare diffs old vs new and exits 1 when a shared benchmark
// regressed past a threshold.
func runCompare(args []string, nsThreshold, memThreshold float64) {
	if len(args) != 2 {
		fail(2, "-compare needs exactly two files: benchjson -compare old.json new.json")
	}
	oldRun, err := loadRun(args[0])
	if err != nil {
		fail(2, "%v", err)
	}
	newRun, err := loadRun(args[1])
	if err != nil {
		fail(2, "%v", err)
	}
	deltas := benchparse.Compare(oldRun, newRun)
	if len(deltas) == 0 {
		fail(2, "no benchmarks in either file")
	}
	fmt.Printf("comparing %s (%s) -> %s (%s)\n\n", args[0], oldRun.Label, args[1], newRun.Label)
	if err := benchparse.WriteDeltas(os.Stdout, deltas); err != nil {
		fail(2, "%v", err)
	}
	regressed := benchparse.Regressions(deltas, nsThreshold, memThreshold)
	if len(regressed) == 0 {
		return
	}
	fmt.Printf("\n%d benchmark(s) regressed past thresholds (ns/op > %.2fx, B/op > %.2fx):\n",
		len(regressed), nsThreshold, memThreshold)
	for _, d := range regressed {
		fmt.Printf("  %s: %.2fx ns/op, %.2fx B/op\n", d.Name, d.NsRatio, d.BytesRatio)
	}
	os.Exit(1)
}
