// Command bugstudy reproduces the paper's §2 real-world bug study: it
// recomputes every published aggregate from the encoded 70-bug dataset, and
// then runs the executable demonstration — for each injectable bug class,
// a regression workload covers the buggy code yet misses the bug, while an
// input-coverage-guided boundary workload triggers it.
package main

import (
	"flag"
	"fmt"
	"os"

	"iocov/internal/bugdb"
	"iocov/internal/bugsim"
	"iocov/internal/corr"
	"iocov/internal/vfs"
)

func main() {
	showBugs := flag.Bool("bugs", false, "list every bug record")
	corrWorkloads := flag.Int("corr", 200, "random workloads for the correlation study")
	flag.Parse()

	bugs := bugdb.Load()
	a := bugdb.Aggregate(bugs)

	fmt.Println("Real-world bug study (HotStorage '23, §2)")
	fmt.Println("=========================================")
	fmt.Printf("Dataset: %d bug-fix commits (%d Ext4, %d BtrFS) from 200 commits of 2022\n\n",
		a.Total, a.Ext4, a.Btrfs)

	row := func(label string, n, d int, paper string) {
		fmt.Printf("  %-46s %2d/%2d  (%4.0f%%, paper: %s)\n", label, n, d, bugdb.Pct(n, d), paper)
	}
	row("line-covered by xfstests but missed", a.LineCovMissed, a.Total, "53%")
	row("function-covered but missed", a.FuncCovMissed, a.Total, "61%")
	row("branch-covered but missed", a.BranchCovMissed, a.Total, "29%")
	row("input bugs (need specific syscall inputs)", a.InputBugs, a.Total, "71%")
	row("output bugs (exit paths / syscall returns)", a.OutputBugs, a.Total, "59%")
	row("input- or output-related", a.InputOrOutput, a.Total, "81%")
	row("covered-missed triggerable by specific args", a.ArgTriggerableAmongLineCovMissed, a.LineCovMissed, "65%")
	fmt.Println()

	if *showBugs {
		for _, b := range bugs {
			det := "missed"
			if b.Detected {
				det = "DETECTED"
			}
			fmt.Printf("  %-22s %-6s line=%-5v func=%-5v branch=%-5v in=%-5v out=%-5v %s  %s\n",
				b.ID, b.FS, b.LineCovered, b.FuncCovered, b.BranchCovered,
				b.InputBug, b.OutputBug, det, b.Title)
		}
		fmt.Println()
	}

	fmt.Println("Executable demonstration: coverage is not detection")
	fmt.Println("====================================================")
	fmt.Println("regression workload (ordinary inputs) vs boundary workload (untested partitions):")
	fmt.Println()
	failures := 0
	for _, bug := range bugsim.Catalog {
		reg := bugsim.Assess(bug, vfs.DefaultConfig(), bugsim.RegressionWorkload)
		bnd := bugsim.Assess(bug, vfs.DefaultConfig(), bugsim.BoundaryWorkload(bug.ID))
		fmt.Printf("  %-22s (%s) region %-22s\n", bug.ID, bug.Commit, bug.Region)
		fmt.Printf("    regression: func/line covered=%v (hits=%d), branch covered=%v, detected=%v\n",
			reg.RegionCovered, reg.RegionHits, reg.BranchCovered, reg.Detected)
		fmt.Printf("    boundary:   func/line covered=%v, branch covered=%v, detected=%v\n",
			bnd.RegionCovered, bnd.BranchCovered, bnd.Detected)
		for i, ev := range bnd.Evidence {
			if i == 2 {
				fmt.Printf("      ... (%d more)\n", len(bnd.Evidence)-2)
				break
			}
			fmt.Printf("      %s\n", ev)
		}
		if !reg.RegionCovered || reg.Detected || !bnd.Detected {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "bugstudy: %d bug classes did not behave as expected\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nAll bug classes: covered-but-missed under regression inputs, exposed by boundary inputs.")

	fmt.Println("\nCorrelation study: code coverage vs input coverage as detection predictors")
	fmt.Println("===========================================================================")
	res := corr.Run(corr.Config{Workloads: *corrWorkloads, Seed: 1})
	fmt.Printf("  random workloads:                      %d (x %d bug classes)\n", res.Workloads, len(bugsim.Catalog))
	fmt.Printf("  phi(code coverage, detection):         %+.3f   <- the paper's \"weak correlation\"\n", res.PhiCoverage)
	fmt.Printf("  phi(trigger-partition hit, detection): %+.3f   <- what input coverage measures\n", res.PhiTrigger)
	fmt.Printf("  covered-but-missed fraction:           %.0f%%    (paper's study: 53%% at line level)\n",
		100*res.CoveredMissedFraction)
}
