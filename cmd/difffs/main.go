// Command difffs runs the coverage-guided differential file-system tester
// (the paper's §6 future-work direction, built here on IOCov): generated
// syscall workloads run in lockstep against the simulated kernel and an
// independent reference model; divergences are candidate bugs. Coverage
// guidance steers generation toward untested input partitions.
//
// Inject a bug class with -bug to watch the tester find it:
//
//	difffs -bug xattr-overflow -ops 20000 -guide 25
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iocov/internal/bugsim"
	"iocov/internal/difftest"
	"iocov/internal/vfs"
)

func main() {
	ops := flag.Int("ops", 20000, "operations to generate")
	seed := flag.Int64("seed", 1, "generator seed")
	guide := flag.Int("guide", 25, "coverage guidance interval (0 = off)")
	bug := flag.String("bug", "", "inject a bug class: "+catalogIDs())
	maxShow := flag.Int("show", 10, "mismatches to print")
	flag.Parse()

	cfg := difftest.Config{Ops: *ops, Seed: *seed, GuideEvery: *guide}
	cfg.FS = vfs.DefaultConfig()
	if *bug != "" {
		entry := bugsim.ByID(*bug)
		if entry == nil {
			fmt.Fprintf(os.Stderr, "difffs: unknown bug %q (known: %s)\n", *bug, catalogIDs())
			os.Exit(2)
		}
		switch *bug {
		case "xattr-overflow":
			cfg.FS.Bugs.XattrSizeOverflow = true
		case "largefile-open":
			cfg.FS.Bugs.LargefileOpen = true
		case "nowait-write-enospc":
			cfg.FS.Bugs.NowaitWriteENOSPC = true
		case "truncate-expand":
			cfg.FS.Bugs.TruncateExpandError = true
		case "get-branch-errno":
			cfg.FS.Bugs.GetBranchErrno = true
		}
		fmt.Printf("injected bug: %s — %s\n", entry.ID, entry.Description)
	}

	res := difftest.Run(cfg)
	fmt.Printf("ran %d ops (%d coverage-guided); %d mismatches\n",
		res.Ops, res.Guided, len(res.Mismatches))
	for i, m := range res.Mismatches {
		if i >= *maxShow {
			fmt.Printf("  ... (%d more)\n", len(res.Mismatches)-*maxShow)
			break
		}
		fmt.Printf("  %s\n", m)
	}
	if flags := res.Analyzer.InputReport("open", "flags"); flags != nil {
		fmt.Printf("generator input coverage: %d/%d open flags, %d/%d write-size buckets\n",
			flags.Covered(), flags.DomainSize(),
			res.Analyzer.InputReport("write", "count").Covered(),
			res.Analyzer.InputReport("write", "count").DomainSize())
	}
	if *bug != "" && len(res.Mismatches) == 0 {
		fmt.Println("injected bug NOT found — increase -ops or enable -guide")
		os.Exit(1)
	}
}

func catalogIDs() string {
	ids := make([]string, len(bugsim.Catalog))
	for i, b := range bugsim.Catalog {
		ids[i] = b.ID
	}
	return strings.Join(ids, ", ")
}
