// Command figures regenerates every figure and table of the paper's
// evaluation (§4) as aligned text: Figure 2 (open flag input coverage),
// Table 1 (flag combinations), Figure 3 (write size input coverage),
// Figure 4 (open output coverage), and Figure 5 (the TCD sweep and its
// crossover).
//
// Usage:
//
//	figures [-only 2|3|4|5|t1] [-scale F] [-seed N] [-workers N]
//
// -scale 1.0 reproduces the paper's full-run magnitudes (≈10M traced
// syscalls, takes a minute or two); smaller scales keep the same shapes
// with proportionally lower frequencies.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"iocov/internal/coverage"
	"iocov/internal/harness"
	"iocov/internal/render"
)

func main() {
	only := flag.String("only", "", "regenerate only one artifact: 2, 3, 4, 5, or t1 (default all)")
	scale := flag.Float64("scale", 0.1, "workload scale; 1.0 = the paper's full-run magnitudes")
	seed := flag.Int64("seed", 1, "workload seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"worker goroutines for the sharded pipeline (default: all cores)")
	flag.Parse()

	if *workers < 1 {
		flag.Usage()
		fmt.Fprintf(os.Stderr, "figures: -workers must be at least 1, got %d\n", *workers)
		os.Exit(2)
	}

	fmt.Printf("# IOCov evaluation figures (scale %g, seed %d)\n", *scale, *seed)
	fmt.Printf("# suites: simulated xfstests (706 generic + 308 ext4 tests) and CrashMonkey (seq-1 + generic)\n\n")

	xfs, cm, err := harness.RunBothParallel(*scale, *seed, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	fmt.Printf("# xfstests: %d syscalls analyzed; CrashMonkey: %d syscalls analyzed\n\n",
		xfs.Analyzed(), cm.Analyzed())

	want := func(id string) bool { return *only == "" || *only == id }

	if want("2") {
		render.Comparison(os.Stdout, "Figure 2: input coverage of open flags", []render.Series{
			{Name: "CrashMonkey", Report: cm.InputReport("open", "flags")},
			{Name: "xfstests", Report: xfs.InputReport("open", "flags")},
		})
	}
	if want("t1") {
		render.ComboTable(os.Stdout, "Table 1: % of opens combining 1-6 flags",
			[]struct {
				Name string
				Rows []coverage.ComboRow
			}{
				{Name: "CrashMonkey", Rows: cm.ComboTable(6)},
				{Name: "xfstests", Rows: xfs.ComboTable(6)},
			}, 6)
	}
	if want("3") {
		// The paper plots buckets 0..32 plus the zero boundary.
		trim := func(r *coverage.Report) *coverage.Report { return r.TrimZeroTail(34) }
		render.Comparison(os.Stdout, "Figure 3: input coverage of write size (bytes, log2 buckets)", []render.Series{
			{Name: "CrashMonkey", Report: trim(cm.InputReport("write", "count"))},
			{Name: "xfstests", Report: trim(xfs.InputReport("write", "count"))},
		})
	}
	if want("4") {
		render.Comparison(os.Stdout, "Figure 4: output coverage of open (success + errnos)", []render.Series{
			{Name: "CrashMonkey", Report: cm.OutputReport("open")},
			{Name: "xfstests", Report: xfs.OutputReport("open")},
		})
	}
	if want("5") {
		render.TCDSweep(os.Stdout, "Figure 5: Test Coverage Deviation for open flags vs uniform target",
			[2]string{"CrashMonkey", "xfstests"},
			[2][]int64{
				cm.InputReport("open", "flags").Frequencies(),
				xfs.InputReport("open", "flags").Frequencies(),
			},
			100_000_000)
	}
}
