// Command iocov is the IOCov CLI: it measures input and output coverage of
// file-system test suites, either offline from an LTTng-style trace file or
// live by running one of the simulated suites.
//
// Subcommands:
//
//	iocov run -suite xfstests|crashmonkey [-scale F] [-seed N] [-workers N] [-trace FILE]
//	    Run a simulated suite through the pipeline; print coverage. The run
//	    is sharded across -workers goroutines (default: all cores) with a
//	    snapshot identical to a serial run. With -trace, also write the
//	    filtered trace to FILE (forces a single serial worker).
//
//	iocov analyze -trace FILE [-mount REGEX]
//	    Parse a trace file, filter to the mount point, print coverage.
//
//	iocov untested -suite NAME | -trace FILE
//	    Print only the untested input/output partitions — the actionable
//	    report the paper argues code coverage cannot provide.
//
//	iocov tcd -suite NAME [-target N] [-syscall S] [-arg A]
//	    Print the Test Coverage Deviation against a uniform target.
//
//	iocov evolve [-seed N] [-generations N] [-corpus N] [-workers N] [-out FILE] [-min] [-json FILE] [-verify]
//	    Evolve a syzkaller-style corpus until every reachable input
//	    partition of open/read/write is covered, printing per-generation
//	    fitness. Deterministic for a fixed -seed regardless of -workers.
//
// Profiling flags precede the subcommand and wrap its whole execution:
//
//	iocov -cpuprofile cpu.prof -memprofile mem.prof run -suite xfstests
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"iocov"
	"iocov/internal/coverage"
	"iocov/internal/evolve"
	"iocov/internal/harness"
	"iocov/internal/kernel"
	"iocov/internal/metrics"
	"iocov/internal/partition"
	"iocov/internal/render"
	"iocov/internal/sysspec"
	"iocov/internal/syz"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

func main() {
	// The profile writers rely on defers, which os.Exit would skip.
	os.Exit(realMain())
}

func realMain() int {
	global := flag.NewFlagSet("iocov", flag.ExitOnError)
	global.Usage = func() { usage() }
	cpuprofile := global.String("cpuprofile", "", "write a CPU profile of the subcommand to this file")
	memprofile := global.String("memprofile", "", "write a heap profile taken after the subcommand to this file")
	// Parse stops at the first non-flag argument: the subcommand.
	if err := global.Parse(os.Args[1:]); err != nil || global.NArg() < 1 {
		usage()
	}
	args := global.Args()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iocov:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "iocov:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	var err error
	switch args[0] {
	case "run":
		err = cmdRun(args[1:])
	case "analyze":
		err = cmdAnalyze(args[1:])
	case "untested":
		err = cmdUntested(args[1:])
	case "tcd":
		err = cmdTCD(args[1:])
	case "compare":
		err = cmdCompare(args[1:])
	case "diff":
		err = cmdDiff(args[1:])
	case "suggest":
		err = cmdSuggest(args[1:])
	case "evolve":
		err = cmdEvolve(args[1:])
	case "convert":
		err = cmdConvert(args[1:])
	case "spec":
		err = cmdSpec(args[1:])
	default:
		usage()
	}

	if *memprofile != "" {
		f, ferr := os.Create(*memprofile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "iocov:", ferr)
			return 1
		}
		runtime.GC() // settle the heap so the profile shows live objects
		if perr := pprof.WriteHeapProfile(f); perr != nil {
			fmt.Fprintln(os.Stderr, "iocov:", perr)
			return 1
		}
		if cerr := f.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "iocov:", cerr)
			return 1
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "iocov:", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: iocov [-cpuprofile FILE] [-memprofile FILE] run|analyze|untested|tcd|compare|diff|suggest|evolve|convert|spec [flags]")
	os.Exit(2)
}

// workersFlag registers the shared -workers flag; the default saturates the
// machine. extra is appended to the help text.
func workersFlag(fs *flag.FlagSet, extra string) *int {
	return fs.Int("workers", runtime.GOMAXPROCS(0),
		"worker goroutines for the sharded pipeline (default: all cores)"+extra)
}

// validateWorkers rejects non-positive -workers values with the subcommand's
// usage text.
func validateWorkers(fs *flag.FlagSet, n int) error {
	if n < 1 {
		fs.Usage()
		return fmt.Errorf("-workers must be at least 1, got %d", n)
	}
	return nil
}

// cmdSpec prints the syscall table IOCov is built on: base syscalls,
// variants, tracked arguments with their classes and partition schemes, and
// each syscall's documented errno universe.
func cmdSpec(args []string) error {
	fs := flag.NewFlagSet("spec", flag.ExitOnError)
	extended := fs.Bool("extended", false, "include the future-work extended syscalls")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tbl := sysspec.NewTable()
	if *extended {
		tbl = sysspec.NewExtendedTable()
	}
	fmt.Printf("%d base syscalls, %d raw syscalls after variant expansion, %d tracked arguments\n\n",
		len(tbl.Bases()), tbl.VariantCount(), tbl.TrackedArgCount())
	for _, base := range tbl.Bases() {
		spec := tbl.Spec(base)
		fmt.Printf("%s\n", base)
		fmt.Printf("  variants: %v\n", spec.Variants)
		for _, arg := range spec.Args {
			part := partition.ForScheme(arg.Scheme)
			domain := "identifier (not partitioned)"
			if part != nil {
				domain = fmt.Sprintf("%d partitions", len(part.Domain()))
			}
			fmt.Printf("  arg %-8s class=%-12s scheme=%-10s %s\n", arg.Name, arg.Class, arg.Scheme, domain)
		}
		names := make([]string, len(spec.Errnos))
		for i, e := range spec.Errnos {
			names[i] = e.Name()
		}
		fmt.Printf("  errnos (%d): %v\n\n", len(names), names)
	}
	return nil
}

// cmdConvert transcodes a trace between the text and binary formats (the
// input format is auto-detected; the output is the other one unless -to is
// given), like babeltrace converting CTF streams.
func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input trace file (required)")
	out := fs.String("out", "", "output trace file (required)")
	to := fs.String("to", "", "output format: text or binary (default: the opposite of the input)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("convert: -in and -out are required")
	}
	src, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer src.Close()
	head := make([]byte, 4)
	n, _ := src.Read(head)
	if _, err := src.Seek(0, 0); err != nil {
		return err
	}
	inBinary := n == 4 && string(head) == "IOCV"
	outFormat := *to
	if outFormat == "" {
		if inBinary {
			outFormat = "text"
		} else {
			outFormat = "binary"
		}
	}
	var next func() (trace.Event, error)
	if inBinary {
		next = trace.NewBinaryParser(src).Next
	} else {
		next = trace.NewParser(src).Next
	}
	dst, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer dst.Close()
	var sink trace.Sink
	var flush func() error
	switch outFormat {
	case "text":
		w := trace.NewWriter(dst)
		sink, flush = w, w.Flush
	case "binary":
		w := trace.NewBinaryWriter(dst)
		sink, flush = w, w.Flush
	default:
		return fmt.Errorf("convert: unknown format %q", outFormat)
	}
	count := 0
	for {
		ev, err := next()
		if err != nil {
			if errorsIsEOF(err) {
				break
			}
			return err
		}
		sink.Emit(ev)
		count++
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Printf("converted %d events to %s\n", count, outFormat)
	return nil
}

func errorsIsEOF(err error) bool { return err == io.EOF }

// cmdSuggest runs a suite, finds its untested input partitions, and prints
// runnable syzkaller-style probe programs targeting them — the feedback
// loop the paper proposes for improving test suites. With -verify, the
// probes are executed against the simulated kernel and the coverage
// improvement is reported.
func cmdSuggest(args []string) error {
	fs := flag.NewFlagSet("suggest", flag.ExitOnError)
	suite := fs.String("suite", harness.SuiteCrashMonkey, "suite to probe")
	scale := fs.Float64("scale", 0.1, "workload scale")
	seed := fs.Int64("seed", 1, "workload seed")
	max := fs.Int("max", 0, "maximum probe programs (0 = all)")
	verify := fs.Bool("verify", false, "execute the probes and report the coverage gain")
	if err := fs.Parse(args); err != nil {
		return err
	}
	an, err := harness.Run(*suite, *scale, *seed)
	if err != nil {
		return err
	}
	progs, truncated := syz.Suggest(an, "/mnt/test/probe", *max)
	fmt.Printf("# %d probe programs for %s's untested input partitions\n", len(progs), *suite)
	if truncated {
		fmt.Printf("# (truncated by -max=%d; rerun with -max=0 for the full set)\n", *max)
	}
	fmt.Println()
	for _, p := range progs {
		fmt.Println(p.Format())
	}
	if !*verify {
		return nil
	}
	before := an.InputReport("open", "flags").Covered()
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{Sink: an})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	for _, d := range []string{"/mnt", "/mnt/test", "/mnt/test/probe"} {
		_ = p.Mkdir(d, 0o777)
	}
	res := syz.Execute(p, progs)
	fmt.Printf("# verification: %d calls executed (%d failed); open flags covered %d -> %d of %d\n",
		res.Executed, res.Failures, before,
		an.InputReport("open", "flags").Covered(),
		an.InputReport("open", "flags").DomainSize())
	return nil
}

// cmdEvolve runs the coverage-guided evolutionary workload generator: a
// fuzzer-style seed corpus evolves until every reachable input partition of
// the open/read/write target spaces is covered (internal/evolve's loop).
// The run is deterministic for a fixed -seed whatever -workers is.
func cmdEvolve(args []string) error {
	fs := flag.NewFlagSet("evolve", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "seed driving corpus generation and every mutation")
	generations := fs.Int("generations", 16, "generation budget")
	corpus := fs.Int("corpus", 40, "seed corpus size")
	workers := workersFlag(fs, "; never changes the result")
	dir := fs.String("dir", "/evolve", "directory the programs operate in")
	out := fs.String("out", "", "write the final corpus (syzkaller program format) to this file")
	min := fs.Bool("min", false, "greedily minimize the corpus before writing it")
	jsonOut := fs.String("json", "", "write the final coverage snapshot JSON to this file")
	verify := fs.Bool("verify", false, "replay the corpus serially and check the snapshot is byte-identical")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateWorkers(fs, *workers); err != nil {
		return err
	}
	seedProgs := syz.Generate(syz.GenConfig{Programs: *corpus, Seed: *seed, Dir: *dir})
	res, err := evolve.Run(seedProgs, evolve.Config{
		Seed:        *seed,
		Generations: *generations,
		Workers:     *workers,
		Dir:         *dir,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%4s  %9s  %8s  %9s  %8s  %6s\n",
		"gen", "untested", "newly", "evaluated", "accepted", "corpus")
	for _, f := range res.History {
		fmt.Printf("%4d  %9d  %8d  %9d  %8d  %6d\n",
			f.Generation, f.UntestedInputs, f.NewlyHit, f.Evaluated, f.Accepted, f.CorpusSize)
	}
	last := res.History[len(res.History)-1]
	for _, sf := range last.Inputs {
		fmt.Printf("# %-12s covered %d/%d (floor %d, untested %d), tcd %.3f\n",
			sf.Space, sf.Covered, sf.Domain, sf.Floor, sf.Untested, sf.TCD)
	}
	if last.UntestedInputs == 0 {
		fmt.Printf("# every reachable input partition covered after %d generations\n", res.Generations)
	} else {
		fmt.Printf("# %d input partitions still untested after %d generations\n",
			last.UntestedInputs, res.Generations)
	}

	final := res.Corpus
	if *min {
		final = res.Minimize()
		fmt.Printf("# corpus minimized %d -> %d programs\n", len(res.Corpus), len(final))
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := syz.WritePrograms(f, final); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("# wrote %d programs to %s\n", len(final), *out)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := res.Analyzer.Snapshot(0).WriteJSON(f); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("# wrote snapshot to %s\n", *jsonOut)
	}
	if *verify {
		var evolved, replayed bytes.Buffer
		if err := res.Analyzer.Snapshot(0).WriteJSON(&evolved); err != nil {
			return err
		}
		if err := evolve.Replay(res.Corpus, *dir).Snapshot(0).WriteJSON(&replayed); err != nil {
			return err
		}
		if !bytes.Equal(evolved.Bytes(), replayed.Bytes()) {
			return fmt.Errorf("evolve: serial replay does not reproduce the evolved snapshot")
		}
		fmt.Println("# verification: serial replay reproduces the evolved snapshot byte-identically")
	}
	return nil
}

// cmdDiff compares two JSON coverage snapshots (produced with run/analyze
// -json) and reports partitions each covers that the other does not — the
// CI primitive for catching coverage regressions across suite versions.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	oldFile := fs.String("old", "", "baseline snapshot JSON (required)")
	newFile := fs.String("new", "", "candidate snapshot JSON (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldFile == "" || *newFile == "" {
		return fmt.Errorf("diff: -old and -new are required")
	}
	load := func(path string) (*coverage.Snapshot, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return coverage.LoadSnapshot(f)
	}
	oldSnap, err := load(*oldFile)
	if err != nil {
		return err
	}
	newSnap, err := load(*newFile)
	if err != nil {
		return err
	}
	lost := oldSnap.DiffSnapshot(newSnap)
	gained := newSnap.DiffSnapshot(oldSnap)
	printDiffs := func(title string, diffs []coverage.SnapshotDiff) {
		fmt.Printf("%s (%d spaces):\n", title, len(diffs))
		for _, d := range diffs {
			space := "output"
			if d.Arg != "" {
				space = "input " + d.Arg
			}
			fmt.Printf("  %-10s %-16s %v\n", d.Syscall, space, d.OnlyInFirst)
		}
		fmt.Println()
	}
	printDiffs("coverage LOST (in old, not in new)", lost)
	printDiffs("coverage GAINED (in new, not in old)", gained)
	if len(lost) > 0 {
		os.Exit(1) // regression: fail like a CI gate would
	}
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	scale := fs.Float64("scale", 0.1, "workload scale for both suites")
	seed := fs.Int64("seed", 1, "workload seed")
	syscall := fs.String("syscall", "open", "syscall to compare")
	arg := fs.String("arg", "flags", "input argument to compare (\"\" = output space)")
	workers := workersFlag(fs, "")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateWorkers(fs, *workers); err != nil {
		return err
	}
	xfs, cm, err := harness.RunBothParallel(*scale, *seed, *workers)
	if err != nil {
		return err
	}
	pick := func(an *coverage.Analyzer) *coverage.Report {
		if *arg == "" {
			return an.OutputReport(*syscall)
		}
		return an.InputReport(*syscall, *arg)
	}
	xr, cr := pick(xfs), pick(cm)
	if xr == nil || cr == nil {
		return fmt.Errorf("compare: no coverage recorded for %s.%s", *syscall, *arg)
	}
	title := fmt.Sprintf("%s.%s coverage, CrashMonkey vs xfstests (scale %g)", *syscall, *arg, *scale)
	render.Comparison(os.Stdout, title, []render.Series{
		{Name: "CrashMonkey", Report: cr.TrimZeroTail(8)},
		{Name: "xfstests", Report: xr.TrimZeroTail(8)},
	})
	if cross, ok := metrics.Crossover(cr.Frequencies(), xr.Frequencies(), 100_000_000); ok {
		fmt.Printf("TCD crossover (xfstests overtakes CrashMonkey) at uniform target %d\n", cross)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	suite := fs.String("suite", harness.SuiteCrashMonkey, "suite to run: xfstests or crashmonkey")
	scale := fs.Float64("scale", 0.1, "workload scale (1.0 = full run)")
	seed := fs.Int64("seed", 1, "workload seed")
	traceFile := fs.String("trace", "", "also write the filtered trace to this file")
	format := fs.String("format", "text", "trace file format: text or binary")
	asJSON := fs.Bool("json", false, "emit the coverage snapshot as JSON")
	extended := fs.Bool("extended", false, "analyze with the future-work extended syscall table")
	combos := fs.Bool("combinations", false, "track distinct bitmap combinations as partitions")
	remote := fs.String("remote", "", "stream shards to an iocovd daemon at this address instead of analyzing locally")
	remoteFormat := fs.Int("remote-format", 2, "binary trace format version streamed to the daemon: 2 (delta-encoded, fast path) or 1 (legacy)")
	workers := workersFlag(fs, "; -trace forces 1")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateWorkers(fs, *workers); err != nil {
		return err
	}
	if *remoteFormat != 1 && *remoteFormat != 2 {
		return fmt.Errorf("run: -remote-format must be 1 or 2, got %d", *remoteFormat)
	}
	if *remote != "" {
		if *traceFile != "" || *extended || *combos {
			return fmt.Errorf("run: -remote is incompatible with -trace/-extended/-combinations (the daemon owns the analyzer)")
		}
		return runRemote(*remote, *suite, *scale, *seed, *workers, *remoteFormat, *asJSON)
	}
	opts := coverage.DefaultOptions()
	opts.ExtendedSyscalls = *extended
	opts.TrackCombinations = *combos
	var sinks []trace.Sink
	var flush func() error
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		switch *format {
		case "text":
			w := trace.NewWriter(f)
			sinks = append(sinks, w)
			flush = w.Flush
		case "binary":
			w := trace.NewBinaryWriter(f)
			sinks = append(sinks, w)
			flush = w.Flush
		default:
			return fmt.Errorf("run: unknown format %q", *format)
		}
	}
	// Trace writers need the serial event order; without one, shard the run
	// across workers — the merged snapshot is identical either way.
	var an *coverage.Analyzer
	var err error
	if len(sinks) > 0 {
		an, err = harness.RunWithOptions(*suite, *scale, *seed, opts, sinks...)
	} else {
		an, err = harness.RunParallel(*suite, *scale, *seed, *workers, opts)
	}
	if err != nil {
		return err
	}
	if flush != nil {
		if err := flush(); err != nil {
			return err
		}
	}
	if *asJSON {
		return an.Snapshot(0).WriteJSON(os.Stdout)
	}
	if *combos {
		rows := an.Combinations("open", "flags")
		fmt.Printf("distinct open flag combinations: %d\n", len(rows))
		for i, row := range rows {
			if i >= 12 {
				fmt.Printf("  ... (%d more)\n", len(rows)-12)
				break
			}
			fmt.Printf("  %10d  %s\n", row.Count, row.Label)
		}
		fmt.Println()
	}
	printCoverageTable(an, *suite, *extended)
	return nil
}

// runRemote is run's -remote mode: wait for the daemon, stream every shard
// to it (with retry and exponential backoff on transient failures), and
// report the daemon's receipts. With -json the daemon's aggregate /report
// is copied to stdout — note it reflects every session the daemon has
// merged, not just this run's.
func runRemote(addr, suite string, scale float64, seed int64, workers, format int, asJSON bool) error {
	if err := harness.WaitReady(addr, 10*time.Second); err != nil {
		return err
	}
	res, err := harness.RunRemote(addr, suite, scale, seed, harness.RemoteOptions{Workers: workers, Format: format})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"iocov: streamed %s to %s: %d shards (%d retries), %d events, %d kept, %d dropped, %d analyzed, %d skipped\n",
		suite, addr, res.Shards, res.Retries, res.Events, res.Kept, res.Dropped, res.Analyzed, res.Skipped)
	if !asJSON {
		return nil
	}
	snap, err := harness.FetchRemoteReport(addr)
	if err != nil {
		return err
	}
	return snap.WriteJSON(os.Stdout)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	traceFile := fs.String("trace", "", "trace file to analyze (required)")
	mount := fs.String("mount", harness.MountPattern, "mount-point regexp for the trace filter")
	asJSON := fs.Bool("json", false, "emit the coverage snapshot as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceFile == "" {
		return fmt.Errorf("analyze: -trace is required")
	}
	f, err := os.Open(*traceFile)
	if err != nil {
		return err
	}
	defer f.Close()
	an, kept, dropped, err := iocov.AnalyzeTrace(f, *mount)
	if err != nil {
		return err
	}
	if *asJSON {
		return an.Snapshot(0).WriteJSON(os.Stdout)
	}
	fmt.Printf("# trace: %d events kept, %d filtered out\n\n", kept, dropped)
	printCoverage(an, *traceFile)
	return nil
}

func printCoverage(an *coverage.Analyzer, source string) {
	printCoverageTable(an, source, false)
}

func printCoverageTable(an *coverage.Analyzer, source string, extended bool) {
	fmt.Printf("Input/output coverage for %s (%d syscalls analyzed, %d out of scope)\n\n",
		source, an.Analyzed(), an.Skipped())
	tbl := sysspec.NewTable()
	if extended {
		tbl = sysspec.NewExtendedTable()
	}
	for _, base := range tbl.Bases() {
		spec := tbl.Spec(base)
		for _, arg := range spec.TrackedArgs() {
			rep := an.InputReport(base, arg.Name)
			if rep == nil {
				continue
			}
			rep = rep.TrimZeroTail(8)
			render.Comparison(os.Stdout,
				fmt.Sprintf("input %s.%s (%s, %s)", base, arg.Name, arg.Class, arg.Scheme),
				[]render.Series{{Name: source, Report: rep}})
		}
		if rep := an.OutputReport(base); rep != nil {
			rep = rep.TrimZeroTail(8)
			render.Comparison(os.Stdout, fmt.Sprintf("output %s", base),
				[]render.Series{{Name: source, Report: rep}})
		}
	}
}

func cmdUntested(args []string) error {
	fs := flag.NewFlagSet("untested", flag.ExitOnError)
	suite := fs.String("suite", "", "suite to run")
	traceFile := fs.String("trace", "", "trace file to analyze instead")
	scale := fs.Float64("scale", 0.1, "workload scale")
	seed := fs.Int64("seed", 1, "workload seed")
	mount := fs.String("mount", harness.MountPattern, "mount-point regexp")
	workers := workersFlag(fs, "")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateWorkers(fs, *workers); err != nil {
		return err
	}
	var an *coverage.Analyzer
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		filter, err := trace.NewFilter(*mount)
		if err != nil {
			return err
		}
		an = coverage.NewAnalyzer(coverage.DefaultOptions())
		events, err := trace.ParseAll(f)
		if err != nil {
			return err
		}
		an.AddAll(filter.Apply(events))
	case *suite != "":
		var err error
		an, err = harness.RunParallel(*suite, *scale, *seed, *workers, coverage.DefaultOptions())
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("untested: need -suite or -trace")
	}
	sums := an.UntestedAll(34)
	for _, s := range sums {
		space := "output"
		if s.Arg != "" {
			space = "input " + s.Arg
		}
		fmt.Printf("%-10s %-16s untested: %v\n", s.Syscall, space, s.Labels)
	}
	return nil
}

func cmdTCD(args []string) error {
	fs := flag.NewFlagSet("tcd", flag.ExitOnError)
	suite := fs.String("suite", harness.SuiteCrashMonkey, "suite to run")
	scale := fs.Float64("scale", 0.1, "workload scale")
	seed := fs.Int64("seed", 1, "workload seed")
	syscall := fs.String("syscall", "open", "syscall whose argument to score")
	arg := fs.String("arg", "flags", "argument to score")
	target := fs.Int64("target", 1000, "uniform per-partition test target")
	workers := workersFlag(fs, "")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateWorkers(fs, *workers); err != nil {
		return err
	}
	an, err := harness.RunParallel(*suite, *scale, *seed, *workers, coverage.DefaultOptions())
	if err != nil {
		return err
	}
	rep := an.InputReport(*syscall, *arg)
	if rep == nil {
		return fmt.Errorf("tcd: no coverage recorded for %s.%s", *syscall, *arg)
	}
	freqs := rep.Frequencies()
	fmt.Printf("TCD(%s.%s, target %d) = %.3f\n", *syscall, *arg, *target,
		metrics.UniformTCD(freqs, *target))
	counts := metrics.ClassifyAll(freqs, *target, 10)
	fmt.Printf("partitions: %d untested, %d under-tested, %d adequate, %d over-tested\n",
		counts[metrics.Untested], counts[metrics.UnderTested],
		counts[metrics.Adequate], counts[metrics.OverTested])
	return nil
}
