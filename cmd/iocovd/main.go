// Command iocovd is the IOCov aggregation daemon: it accepts
// dictionary-compressed binary trace streams on POST /ingest, runs each
// session through its own Filter→Analyzer pipeline, and merges the results
// into a global coverage store that /report, /tcd, and /metrics expose.
// Suite shards stream to it with `iocov run -remote ADDR`.
//
// Usage:
//
//	iocovd [-addr :9077] [-mount REGEX] [-checkpoint FILE]
//	       [-checkpoint-every 30s] [-max-streams 64] [-ingest-timeout 0]
//	       [-max-body 0] [-extended]
//
// With -checkpoint, the store's snapshot is persisted atomically at the
// given interval and once more on shutdown; a restarted daemon restores it
// so /report is byte-identical to the last checkpoint. SIGINT/SIGTERM
// trigger a graceful shutdown: the listener stops, in-flight ingest
// sessions drain through their merges, the final checkpoint is written, and
// the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iocov/internal/coverage"
	"iocov/internal/server"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	fs := flag.NewFlagSet("iocovd", flag.ExitOnError)
	addr := fs.String("addr", ":9077", "listen address")
	mount := fs.String("mount", server.DefaultMountPattern, "mount-point regexp for the per-session trace filter")
	checkpoint := fs.String("checkpoint", "", "snapshot checkpoint file (enables checkpoint-restore)")
	every := fs.Duration("checkpoint-every", 30*time.Second, "checkpoint interval (with -checkpoint)")
	maxStreams := fs.Int("max-streams", 64, "max concurrent ingest sessions (excess get 503)")
	ingestTimeout := fs.Duration("ingest-timeout", 0, "per-session read deadline (0 = none)")
	maxBody := fs.Int64("max-body", 0, "per-session stream byte cap (0 = unlimited)")
	extended := fs.Bool("extended", false, "analyze with the future-work extended syscall table")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	opts := coverage.DefaultOptions()
	opts.ExtendedSyscalls = *extended
	srv, err := server.New(server.Config{
		MountPattern:   *mount,
		Options:        &opts,
		MaxStreams:     *maxStreams,
		IngestTimeout:  *ingestTimeout,
		MaxBodyBytes:   *maxBody,
		CheckpointPath: *checkpoint,
	})
	if err != nil {
		log.Printf("iocovd: %v", err)
		return 1
	}
	if *checkpoint != "" {
		analyzed, skipped := srv.Store().Totals()
		log.Printf("iocovd: checkpoint %s (restored %d analyzed, %d skipped)", *checkpoint, analyzed, skipped)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()

	// The checkpoint loop gets its own context, canceled only after the
	// drain finishes, so the final checkpoint includes every in-flight
	// session that completed its merge during shutdown.
	loopCtx, loopCancel := context.WithCancel(context.Background())
	defer loopCancel()
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		srv.RunCheckpointLoop(loopCtx, *every, func(err error) {
			log.Printf("iocovd: checkpoint: %v", err)
		})
	}()

	log.Printf("iocovd: listening on %s", *addr)
	select {
	case err := <-serveErr:
		// The listener died on its own (port in use, ...): fatal.
		log.Printf("iocovd: serve: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling so a second signal kills us

	log.Printf("iocovd: shutting down, draining in-flight sessions (up to %v)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("iocovd: shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("iocovd: serve: %v", err)
	}
	// Everything that will merge has merged; write the final checkpoint.
	loopCancel()
	<-ckptDone
	if *checkpoint != "" {
		log.Printf("iocovd: final checkpoint written to %s", *checkpoint)
	}
	fmt.Println("iocovd: clean shutdown")
	return 0
}
