// Command iocovlint runs iocov's static-analysis suite over the repository
// itself, proving the invariants the coverage pipeline depends on:
//
//	iocovlint [-root DIR] [-passes LIST] [-pass NAME] [-json] [-v]
//
// Passes (default: all, see internal/lint):
//
//	domaincheck  partition labels vs declared domains (static + probes)
//	speccheck    sysspec tables vs kernel dispatch
//	shardcheck   worker-path purity for the parallel snapshot contract
//	             (plus no-global-writes in the iocovd daemon's packages)
//	errcheck     silently dropped error returns in internal/ and cmd/
//	httpcheck    HTTP handler error paths must set an explicit status code
//	lockcheck    CFG/dataflow lock-discipline proof for guarded fields
//	alloccheck   //iocov:hotpath reachability proof of zero allocation
//	leakcheck    every goroutine launch must have a provable exit path
//	atomcheck    sync/atomic objects must never be accessed plainly
//	determcheck  //iocov:deterministic roots stay clock-, RNG-, goroutine-
//	             and map-order-free
//	wirecheck    trace encoder/decoder field-sequence symmetry, decoder
//	             allocation budgets, dictionary retention caps, and format
//	             negotiation coverage
//	boundcheck   //iocov:hotpath index expressions proven in-bounds by the
//	             value lattice, or carrying a reasoned //iocov:bounds-ok
//
// -pass NAME runs a single pass; -passes takes a comma-separated subset.
// -json emits one JSON object per finding ({"pass","file","line","col",
// "message"}) on stdout followed by a {"timings":[{"pass","ms"},...]}
// trailer with each pass's wall-clock analysis time, for tooling. -v
// reports load statistics and the same per-pass times on stderr, so CI
// logs track engine cost.
//
// The exit status is 0 with no findings, 1 with findings, 2 on usage or
// load errors — so `make lint` and CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"iocov/internal/lint"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the testable body of main: it parses args, runs the selected
// passes, writes findings to stdout and diagnostics to stderr, and returns
// the process exit code (0 no findings, 1 findings, 2 usage or load error).
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iocovlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "module root to analyze (default: nearest go.mod at or above the working directory)")
	passes := fs.String("passes", "", "comma-separated pass subset (default: "+strings.Join(lint.PassNames(), ",")+")")
	pass := fs.String("pass", "", "run a single pass (shorthand for -passes NAME)")
	asJSON := fs.Bool("json", false, "emit one JSON object per finding on stdout")
	verbose := fs.Bool("v", false, "report load statistics and per-pass analysis times")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *pass != "" && *passes != "" {
		fmt.Fprintln(stderr, "iocovlint: -pass and -passes are mutually exclusive")
		return 2
	}
	spec := *passes
	if *pass != "" {
		spec = *pass
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "iocovlint:", err)
			return 2
		}
	}
	selected, err := lint.SelectPasses(spec)
	if err != nil {
		fmt.Fprintln(stderr, "iocovlint:", err)
		return 2
	}
	target, err := lint.LoadRepo(dir)
	if err != nil {
		fmt.Fprintln(stderr, "iocovlint:", err)
		return 2
	}
	if *verbose {
		fmt.Fprintf(stderr, "iocovlint: %d packages loaded from %s\n", len(target.Pkgs), dir)
	}
	findings, times := lint.RunAllTimed(target, selected)
	if *verbose {
		for _, pt := range times {
			fmt.Fprintf(stderr, "iocovlint: %-12s %8.1fms\n",
				pt.Name, float64(pt.Elapsed.Microseconds())/1000)
		}
	}
	if *asJSON {
		if err := lint.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "iocovlint:", err)
			return 2
		}
		if err := lint.WriteJSONTimings(stdout, times); err != nil {
			fmt.Fprintln(stderr, "iocovlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "iocovlint: %d finding(s)\n", len(findings))
		return 1
	}
	if *verbose {
		fmt.Fprintln(stderr, "iocovlint: no findings")
	}
	return 0
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found at or above the working directory")
		}
		dir = parent
	}
}
