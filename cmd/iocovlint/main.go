// Command iocovlint runs iocov's static-analysis suite over the repository
// itself, proving the invariants the coverage pipeline depends on:
//
//	iocovlint [-root DIR] [-passes LIST] [-pass NAME] [-json] [-v]
//
// Passes (default: all, see internal/lint):
//
//	domaincheck  partition labels vs declared domains (static + probes)
//	speccheck    sysspec tables vs kernel dispatch
//	shardcheck   worker-path purity for the parallel snapshot contract
//	             (plus no-global-writes in the iocovd daemon's packages)
//	errcheck     silently dropped error returns in internal/ and cmd/
//	httpcheck    HTTP handler error paths must set an explicit status code
//	lockcheck    CFG/dataflow lock-discipline proof for guarded fields
//	alloccheck   //iocov:hotpath reachability proof of zero allocation
//
// -pass NAME runs a single pass; -passes takes a comma-separated subset.
// -json emits one JSON object per finding ({"pass","file","line","col",
// "message"}) on stdout, for tooling. -v reports load statistics and each
// pass's wall-clock analysis time on stderr, so CI logs track engine cost.
//
// The exit status is 0 with no findings, 1 with findings, 2 on usage or
// load errors — so `make lint` and CI can gate on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"iocov/internal/lint"
)

// jsonFinding is the one-object-per-line output shape of -json.
type jsonFinding struct {
	Pass    string `json:"pass"`
	File    string `json:"file,omitempty"`
	Line    int    `json:"line,omitempty"`
	Col     int    `json:"col,omitempty"`
	Message string `json:"message"`
}

func main() {
	root := flag.String("root", "", "module root to analyze (default: nearest go.mod at or above the working directory)")
	passes := flag.String("passes", "", "comma-separated pass subset (default: "+strings.Join(lint.PassNames(), ",")+")")
	pass := flag.String("pass", "", "run a single pass (shorthand for -passes NAME)")
	asJSON := flag.Bool("json", false, "emit one JSON object per finding on stdout")
	verbose := flag.Bool("v", false, "report load statistics and per-pass analysis times")
	flag.Parse()

	if *pass != "" && *passes != "" {
		fmt.Fprintln(os.Stderr, "iocovlint: -pass and -passes are mutually exclusive")
		os.Exit(2)
	}
	spec := *passes
	if *pass != "" {
		spec = *pass
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "iocovlint:", err)
			os.Exit(2)
		}
	}
	selected, err := lint.SelectPasses(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iocovlint:", err)
		os.Exit(2)
	}
	target, err := lint.LoadRepo(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iocovlint:", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "iocovlint: %d packages loaded from %s\n", len(target.Pkgs), dir)
	}
	findings, times := lint.RunAllTimed(target, selected)
	if *verbose {
		for _, pt := range times {
			fmt.Fprintf(os.Stderr, "iocovlint: %-12s %8.1fms\n",
				pt.Name, float64(pt.Elapsed.Microseconds())/1000)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			jf := jsonFinding{
				Pass:    f.Pass,
				File:    f.Pos.Filename,
				Line:    f.Pos.Line,
				Col:     f.Pos.Column,
				Message: f.Message,
			}
			if err := enc.Encode(jf); err != nil {
				fmt.Fprintln(os.Stderr, "iocovlint:", err)
				os.Exit(2)
			}
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "iocovlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintln(os.Stderr, "iocovlint: no findings")
	}
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found at or above the working directory")
		}
		dir = parent
	}
}
