// Command iocovlint runs iocov's static-analysis suite over the repository
// itself, proving the invariants the coverage pipeline depends on:
//
//	iocovlint [-root DIR] [-passes LIST] [-v]
//
// Passes (default: all, see internal/lint):
//
//	domaincheck  partition labels vs declared domains (static + probes)
//	speccheck    sysspec tables vs kernel dispatch
//	shardcheck   worker-path purity for the parallel snapshot contract
//	             (plus no-global-writes in the iocovd daemon's packages)
//	errcheck     silently dropped error returns in internal/ and cmd/
//	httpcheck    HTTP handler error paths must set an explicit status code
//
// The exit status is 0 with no findings, 1 with findings, 2 on usage or
// load errors — so `make lint` and CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"iocov/internal/lint"
)

func main() {
	root := flag.String("root", "", "module root to analyze (default: nearest go.mod at or above the working directory)")
	passes := flag.String("passes", "", "comma-separated pass subset (default: "+strings.Join(lint.PassNames(), ",")+")")
	verbose := flag.Bool("v", false, "report pass and package statistics")
	flag.Parse()

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "iocovlint:", err)
			os.Exit(2)
		}
	}
	selected, err := lint.SelectPasses(*passes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iocovlint:", err)
		os.Exit(2)
	}
	target, err := lint.LoadRepo(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iocovlint:", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Printf("iocovlint: %d packages loaded from %s\n", len(target.Pkgs), dir)
		for _, p := range selected {
			fmt.Printf("iocovlint: running %s\n", p.Name())
		}
	}
	findings := lint.RunAll(target, selected)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "iocovlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	if *verbose {
		fmt.Println("iocovlint: no findings")
	}
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found at or above the working directory")
		}
		dir = parent
	}
}
