package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestExitCodes pins the CLI contract CI gates on: 0 with no findings, 1
// with findings, 2 on usage or load errors.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean module", []string{"-root", "testdata/cleanmod"}, 0},
		{"findings", []string{"-root", "testdata/badmod"}, 1},
		{"unknown pass", []string{"-root", "testdata/cleanmod", "-pass", "nosuchpass"}, 2},
		{"pass and passes", []string{"-root", "testdata/cleanmod", "-pass", "atomcheck", "-passes", "errcheck"}, 2},
		{"bad root", []string{"-root", "testdata/nosuchdir"}, 2},
		{"bad flag", []string{"-nosuchflag"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := realMain(tc.args, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					got, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestFindingOutput checks the dirty module's finding reaches stdout in both
// text and JSON form, attributed to the right pass.
func TestFindingOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := realMain([]string{"-root", "testdata/badmod"}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[atomcheck]") {
		t.Errorf("text output missing atomcheck finding:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if got := realMain([]string{"-root", "testdata/badmod", "-json"}, &stdout, &stderr); got != 1 {
		t.Fatalf("json exit = %d, want 1\nstderr:\n%s", got, stderr.String())
	}
	var jf struct {
		Pass    string `json:"pass"`
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Message string `json:"message"`
	}
	line := strings.SplitN(stdout.String(), "\n", 2)[0]
	if err := json.Unmarshal([]byte(line), &jf); err != nil {
		t.Fatalf("json output not decodable: %v\n%s", err, stdout.String())
	}
	if jf.Pass != "atomcheck" || jf.Line == 0 || !strings.Contains(jf.File, "badmod") {
		t.Errorf("json finding = %+v", jf)
	}

	// The stream ends with a per-pass timing trailer covering every pass
	// that ran.
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	var tr struct {
		Timings []struct {
			Pass string  `json:"pass"`
			Ms   float64 `json:"ms"`
		} `json:"timings"`
	}
	last := lines[len(lines)-1]
	if err := json.Unmarshal([]byte(last), &tr); err != nil {
		t.Fatalf("timing trailer not decodable: %v\n%s", err, last)
	}
	if len(tr.Timings) != 12 {
		t.Errorf("trailer has %d timings, want one per pass (12):\n%s", len(tr.Timings), last)
	}
	for _, pt := range tr.Timings {
		if pt.Pass == "" {
			t.Errorf("timing entry missing pass name: %s", last)
		}
	}
}
