// Package pkg is a minimal dirty module for the iocovlint exit-code test:
// hits mixes atomic and plain access, so atomcheck must report a finding
// and the CLI must exit 1.
package pkg

import "sync/atomic"

var hits int64

// Hit records one hit.
func Hit() { atomic.AddInt64(&hits, 1) }

// Count reads the counter without going through sync/atomic.
func Count() int64 { return hits }
