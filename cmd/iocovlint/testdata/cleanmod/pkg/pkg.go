// Package pkg is a minimal clean module for the iocovlint exit-code test:
// every pass must run over it without findings.
package pkg

// Add returns a + b.
func Add(a, b int) int { return a + b }
