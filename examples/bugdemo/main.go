// Bug demo: Figure 1 end to end. The ext4 xattr min_offs overflow bug is
// injected into the simulated filesystem; a regression-style workload
// covers ext4_xattr_ibody_set (its lines would be green under Gcov) yet
// never triggers the bug, because triggering needs the maximum allowed
// setxattr size. IOCov flags that size partition as untested; probing it
// corrupts the filesystem — and the correct kernel returns ENOSPC instead,
// which is why the paper also classifies this as an output bug.
package main

import (
	"fmt"
	"log"

	"iocov"
	"iocov/internal/bugsim"
	"iocov/internal/kernel"
	"iocov/internal/vfs"
)

func main() {
	bug := bugsim.ByID("xattr-overflow")
	if bug == nil {
		log.Fatal("catalog missing xattr-overflow")
	}
	fmt.Printf("bug under study: %s (%s)\n  %s\n\n", bug.ID, bug.Commit, bug.Description)

	// Step 1: the regression workload covers the buggy region but misses
	// the bug.
	reg := bugsim.Assess(*bug, vfs.DefaultConfig(), bugsim.RegressionWorkload)
	fmt.Printf("regression workload: region %s covered=%v (%d hits), bug detected=%v\n",
		bug.Region, reg.RegionCovered, reg.RegionHits, reg.Detected)

	// Step 2: measure the regression workload's input coverage with IOCov
	// and find the untested setxattr size partitions.
	pipe, err := iocov.NewPipeline(`^/`, nil)
	if err != nil {
		log.Fatal(err)
	}
	p := pipe.Kernel.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	bugsim.RegressionWorkload(p)
	sizes := pipe.Analyzer.InputReport("setxattr", "size")
	untested := sizes.TrimZeroTail(17).Untested()
	fmt.Printf("\nIOCov: setxattr size partitions covered %d/%d (up to 2^16); untested: %v\n",
		17-len(untested), 17, untested)

	// Step 3: the boundary probe targets the untested maximum-size
	// partition and exposes the bug.
	bnd := bugsim.Assess(*bug, vfs.DefaultConfig(), bugsim.BoundaryWorkload(bug.ID))
	fmt.Printf("\nboundary probe (max-size setxattr): detected=%v\n", bnd.Detected)
	for _, ev := range bnd.Evidence {
		fmt.Printf("  %s\n", ev)
	}
	if reg.Detected || !bnd.Detected {
		log.Fatal("demo invariant violated")
	}
	fmt.Println("\ncode coverage said the xattr path was tested; input coverage knew it was not.")
}
