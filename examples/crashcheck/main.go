// Crash-consistency checking: what CrashMonkey actually does, end to end.
// A workload writes and fsyncs a file; the crash simulator snapshots state
// at every persistence barrier; a simulated power loss recovers the last
// snapshot and durability expectations are checked.
//
// With -bug, the fsync-swallowing bug class is injected: fsync returns
// success without persisting. Every other tester in this repository is
// blind to it — only the crash oracle catches it, which is why the paper's
// evaluation pairs a crash tester (CrashMonkey) with a regression suite
// (xfstests): different testers, different bug classes, and IOCov measures
// what each actually exercises.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"iocov/internal/crashsim"
	"iocov/internal/kernel"
	"iocov/internal/suites/crashmonkey"
	"iocov/internal/sys"
	"iocov/internal/vfs"
)

func main() {
	injectBug := flag.Bool("bug", false, "inject the fsync-ignored durability bug")
	flag.Parse()

	bugs := vfs.BugSet{FsyncIgnored: *injectBug}
	fmt.Printf("fsync-ignored bug injected: %v\n\n", *injectBug)

	// Hand-written crash scenario.
	violations := crashsim.RunCrashTest(bugs, func(p *kernel.Proc) []crashsim.Expectation {
		var exps []crashsim.Expectation
		fd, e := p.Open("/journal", sys.O_CREAT|sys.O_WRONLY, 0o644)
		if e != sys.OK {
			log.Fatal(e)
		}
		if _, e := p.Write(fd, make([]byte, 16384)); e != sys.OK {
			log.Fatal(e)
		}
		if p.Fsync(fd) == sys.OK {
			// fsync acknowledged: this data is now contractually durable.
			exps = append(exps, crashsim.Expectation{Path: "/journal", MinSize: 16384})
		}
		// Not synced: legitimately lost on crash, no expectation.
		_, _ = p.Write(fd, make([]byte, 4096))
		_ = p.Close(fd)
		return exps
	})
	fmt.Printf("hand-written scenario: %d durability violations\n", len(violations))
	for _, v := range violations {
		fmt.Printf("  VIOLATION %s\n", v)
	}

	// The full CrashMonkey simulation with its oracle enabled.
	cfg := vfs.DefaultConfig()
	cfg.Bugs = bugs
	k := kernel.New(vfs.New(cfg), kernel.Options{})
	stats, err := crashmonkey.Run(k, crashmonkey.Config{Scale: 0.2, Seed: 1, CrashCheck: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCrashMonkey run: %d workloads, %d crash violations\n",
		stats.Workloads, stats.CrashViolations)

	if *injectBug && (len(violations) == 0 || stats.CrashViolations == 0) {
		fmt.Println("expected the bug to be caught!")
		os.Exit(1)
	}
	if !*injectBug && (len(violations) != 0 || stats.CrashViolations != 0) {
		fmt.Println("false positives on a correct filesystem!")
		os.Exit(1)
	}
}
