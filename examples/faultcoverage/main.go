// Fault-driven output coverage: the paper notes that some output
// partitions are hard to reach ("triggering ENOMEM requires a system with
// limited memory"), so 100% output coverage may be unattainable for a
// plain workload. This example measures a workload's open output coverage,
// then uses kernel fault injection to exercise exactly the untested errno
// partitions, closing the gap — the IOCov feedback loop applied to outputs.
package main

import (
	"fmt"
	"log"

	"iocov"
	"iocov/internal/kernel"
	"iocov/internal/sys"
	"iocov/internal/vfs"
)

func main() {
	pipe, err := iocov.NewPipeline(`^/mnt/test(/|$)`, nil)
	if err != nil {
		log.Fatal(err)
	}
	p := pipe.Kernel.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	must(p.Mkdir("/mnt", 0o755))
	must(p.Mkdir("/mnt/test", 0o755))

	// Phase 1: a plain workload reaches only the state-dependent errnos.
	workload(p)
	rep := pipe.Analyzer.OutputReport("open")
	fmt.Printf("phase 1 (plain workload): open outputs %d/%d covered\n",
		rep.Covered(), rep.DomainSize())
	untested := rep.Untested()
	fmt.Printf("  untested errnos: %v\n\n", untested)

	// Phase 2: inject each untested errno once at the syscall boundary and
	// repeat a minimal open, the way a fault-injection campaign would.
	faults := pipe.Kernel.Faults()
	injected := 0
	for _, label := range untested {
		e, ok := sys.ErrnoByName(label)
		if !ok {
			continue
		}
		faults.Add(kernel.FaultRule{Syscall: "open", Errno: e, Remaining: 1})
		if _, ferr := p.Open("/mnt/test/fault-probe", sys.O_RDONLY, 0); ferr != e {
			log.Fatalf("expected injected %v, got %v", e, ferr)
		}
		injected++
	}
	rep = pipe.Analyzer.OutputReport("open")
	fmt.Printf("phase 2 (+%d injected faults): open outputs %d/%d covered\n",
		injected, rep.Covered(), rep.DomainSize())
	fmt.Printf("  still untested: %v\n", rep.Untested())
}

func workload(p *kernel.Proc) {
	fd, e := p.Open("/mnt/test/a", sys.O_CREAT|sys.O_RDWR, 0o644)
	must(e)
	_, we := p.Write(fd, make([]byte, 4096))
	must(we)
	must(p.Close(fd))
	_, _ = p.Open("/mnt/test/missing", sys.O_RDONLY, 0)                      // ENOENT
	_, _ = p.Open("/mnt/test/a", sys.O_CREAT|sys.O_EXCL|sys.O_WRONLY, 0o644) // EEXIST
	_, _ = p.Open("/mnt/test", sys.O_WRONLY, 0)                              // EISDIR
	_, _ = p.Open("/mnt/test/a/x", sys.O_RDONLY, 0)                          // ENOTDIR
}

func must(e sys.Errno) {
	if e != sys.OK {
		log.Fatal(e)
	}
}
