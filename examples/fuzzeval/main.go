// Fuzzer evaluation (§6): generate a syzkaller-style corpus, show the two
// IOCov ingestion paths — static parsing of the program log (input
// coverage only) and execution against the simulated kernel (input +
// output coverage) — and compare what each reveals.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"iocov/internal/coverage"
	"iocov/internal/kernel"
	"iocov/internal/sys"
	"iocov/internal/syz"
	"iocov/internal/vfs"
)

func main() {
	programs := flag.Int("programs", 400, "corpus size")
	seed := flag.Int64("seed", 7, "corpus seed")
	flag.Parse()

	corpus := syz.Generate(syz.GenConfig{Programs: *programs, Seed: *seed})
	fmt.Printf("generated a %d-program corpus; first program:\n\n%s\n",
		len(corpus), indent(corpus[0].Format()))

	// Path A: parse-only, as IOCov would consume a Syzkaller log.
	text := corpusText(corpus)
	parsed, err := syz.Parse(strings.NewReader(text))
	if err != nil {
		log.Fatal(err)
	}
	events, skipped := syz.Convert(parsed)
	static := coverage.NewAnalyzer(coverage.DefaultOptions())
	static.AddAll(events)
	fmt.Printf("static path: %d events converted (%d out-of-scope calls skipped)\n",
		len(events), skipped)
	fmt.Printf("  open flags covered: %d/%d, write sizes: %d/%d\n",
		static.InputReport("open", "flags").Covered(), static.InputReport("open", "flags").DomainSize(),
		static.InputReport("write", "count").Covered(), static.InputReport("write", "count").DomainSize())
	fmt.Printf("  open output partitions seen: %d (returns unknown from a log alone)\n\n",
		static.OutputReport("open").Covered())

	// Path B: execute the corpus for full input+output coverage.
	exec := coverage.NewAnalyzer(coverage.DefaultOptions())
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{Sink: exec})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	if e := p.Mkdir("/fuzz", 0o777); e != sys.OK {
		log.Fatal(e)
	}
	res := syz.Execute(p, parsed)
	fmt.Printf("executed path: %d calls executed, %d failed\n", res.Executed, res.Failures)
	out := exec.OutputReport("open")
	fmt.Printf("  open output partitions covered: %d/%d\n", out.Covered(), out.DomainSize())
	fmt.Printf("  errnos the fuzzer triggered: ")
	for _, row := range out.Rows {
		if row.Count > 0 && row.Label != "OK" {
			fmt.Printf("%s ", row.Label)
		}
	}
	fmt.Println()
	fmt.Printf("  untested flags the fuzzer did reach (vs. the suites): O_NOATIME=%d O_PATH=%d O_NOCTTY=%d\n",
		exec.Input("open", "flags").Count("O_NOATIME"),
		exec.Input("open", "flags").Count("O_PATH"),
		exec.Input("open", "flags").Count("O_NOCTTY"))
}

func corpusText(progs []syz.Program) string {
	var b strings.Builder
	for _, p := range progs {
		b.WriteString(p.Format())
		b.WriteByte('\n')
	}
	return b.String()
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}
