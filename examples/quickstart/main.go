// Quickstart: trace a small hand-written workload through the IOCov
// pipeline and print its input and output coverage.
//
// It demonstrates the full loop in ~60 lines: build a live pipeline
// (simulated filesystem + kernel + mount filter + analyzer), issue syscalls
// the way a test suite would, then read coverage reports off the analyzer.
package main

import (
	"fmt"
	"log"

	"iocov"
	"iocov/internal/kernel"
	"iocov/internal/sys"
	"iocov/internal/vfs"
)

func main() {
	// Everything under /mnt/test is analyzed; everything else is filtered
	// out, exactly like IOCov's LTTng trace filter.
	pipe, err := iocov.NewPipeline(`^/mnt/test(/|$)`, nil)
	if err != nil {
		log.Fatal(err)
	}
	p := pipe.Kernel.NewProc(kernel.ProcOptions{Cred: vfs.Root})

	// A miniature test suite.
	check(p.Mkdir("/mnt", 0o755))
	check(p.Mkdir("/mnt/test", 0o755))
	fd, e := p.Open("/mnt/test/a", sys.O_CREAT|sys.O_RDWR|sys.O_TRUNC, 0o644)
	check(e)
	for _, size := range []int{0, 1, 512, 4096, 100_000} {
		_, e := p.Write(fd, make([]byte, size))
		check(e)
	}
	_, e = p.Lseek(fd, 0, sys.SEEK_SET)
	check(e)
	_, e = p.Read(fd, make([]byte, 4096))
	check(e)
	check(p.Setxattr("/mnt/test/a", "user.demo", []byte("value"), 0))
	check(p.Close(fd))
	// Failure paths count too: output coverage tracks errnos.
	if _, e := p.Open("/mnt/test/missing", sys.O_RDONLY, 0); e != sys.ENOENT {
		log.Fatalf("expected ENOENT, got %v", e)
	}
	// This one happens outside the mount and is filtered out.
	check(p.Mkdir("/elsewhere", 0o755))

	an := pipe.Analyzer
	fmt.Printf("analyzed %d syscalls (out-of-scope: %d)\n\n", an.Analyzed(), an.Skipped())

	flags := an.InputReport("open", "flags")
	fmt.Printf("open flags: %d/%d partitions covered\n", flags.Covered(), flags.DomainSize())
	fmt.Printf("  untested flags: %v\n\n", flags.Untested())

	sizes := an.InputReport("write", "count").TrimZeroTail(4)
	fmt.Println("write sizes (powers-of-two partitions):")
	for _, row := range sizes.Rows {
		fmt.Printf("  %-6s %d\n", row.Label, row.Count)
	}

	out := an.OutputReport("open")
	fmt.Printf("\nopen outputs: %d/%d partitions covered (OK=%d, ENOENT=%d)\n",
		out.Covered(), out.DomainSize(),
		an.Output("open").Count("OK"), an.Output("open").Count("ENOENT"))
	fmt.Printf("TCD against a target of 10 tests per open flag: %.3f\n",
		iocov.TCD(flags, 10))
}

func check(e sys.Errno) {
	if e != sys.OK {
		log.Fatal(e)
	}
}
