// TCD tuning: compare two test suites with the Test Coverage Deviation
// metric across a range of uniform targets, find the crossover, and show a
// non-uniform target (the paper's suggestion for crash-consistency testing:
// weight persistence-related partitions higher).
package main

import (
	"flag"
	"fmt"
	"log"

	"iocov/internal/harness"
	"iocov/internal/metrics"
)

func main() {
	scale := flag.Float64("scale", 0.1, "workload scale for both suites")
	flag.Parse()

	xfs, cm, err := harness.RunBoth(*scale, 1)
	if err != nil {
		log.Fatal(err)
	}
	xfsRep := xfs.InputReport("open", "flags")
	cmRep := cm.InputReport("open", "flags")

	fmt.Println("TCD for open flags, uniform targets (lower is better):")
	fmt.Printf("%10s  %12s  %12s\n", "target", "CrashMonkey", "xfstests")
	for _, target := range []int64{1, 10, 100, 1000, 10_000, 100_000, 1_000_000, 100_000_000} {
		fmt.Printf("%10d  %12.3f  %12.3f\n", target,
			metrics.UniformTCD(cmRep.Frequencies(), target),
			metrics.UniformTCD(xfsRep.Frequencies(), target))
	}
	if cross, ok := metrics.Crossover(cmRep.Frequencies(), xfsRep.Frequencies(), 100_000_000); ok {
		fmt.Printf("\nxfstests overtakes CrashMonkey at target T = %d (paper: ≈5,237 at full scale)\n\n", cross)
	}

	// Non-uniform target: a crash-consistency developer wants persistence
	// flags (O_SYNC, O_DSYNC) tested 100x more than the rest.
	labels := cmRep.Labels()
	targets, err := metrics.NewTargetBuilder(100).
		Rule(`^O_(SYNC|DSYNC)$`, 10_000).
		Build(labels)
	if err != nil {
		log.Fatal(err)
	}
	cmTCD, err := metrics.TCD(cmRep.Frequencies(), targets)
	if err != nil {
		log.Fatal(err)
	}
	xfsTCD, err := metrics.TCD(xfsRep.Frequencies(), targets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("non-uniform target (persistence flags weighted 100x, for crash-consistency work):")
	fmt.Printf("  CrashMonkey TCD = %.3f, xfstests TCD = %.3f\n", cmTCD, xfsTCD)

	// Per-partition adequacy against target 1000.
	fmt.Println("\nCrashMonkey open-flag adequacy at uniform target 1000 (ratio 10):")
	for i, l := range labels {
		class := metrics.Classify(cmRep.Frequencies()[i], 1000, 10)
		fmt.Printf("  %-14s %-12s (%d)\n", l, class, cmRep.Frequencies()[i])
	}
}
