// Untested-partition mining: run a whole simulated test suite under IOCov
// and print the untested input/output partitions — the paper's actionable
// deliverable ("IOCov identified many untested cases for both CrashMonkey
// and xfstests"). Each finding maps directly to a new test a developer
// could write.
package main

import (
	"flag"
	"fmt"
	"log"

	"iocov/internal/harness"
)

func main() {
	suite := flag.String("suite", harness.SuiteCrashMonkey, "suite to mine: xfstests or crashmonkey")
	scale := flag.Float64("scale", 0.1, "workload scale")
	flag.Parse()

	an, err := harness.Run(*suite, *scale, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("untested partitions for %s (%d syscalls analyzed)\n\n", *suite, an.Analyzed())

	for _, s := range an.UntestedAll(34) {
		if s.Arg == "" {
			fmt.Printf("%-9s output space:\n", s.Syscall)
		} else {
			fmt.Printf("%-9s input %q:\n", s.Syscall, s.Arg)
		}
		for _, label := range s.Labels {
			fmt.Printf("    %-14s %s\n", label, suggestion(s.Syscall, s.Arg, label))
		}
		fmt.Println()
	}
}

// suggestion turns an untested partition into a test idea, the way the
// paper suggests developers use IOCov's output (e.g. "bugs exist for
// O_LARGEFILE").
func suggestion(syscall, arg, label string) string {
	switch {
	case arg == "flags" && syscall == "open":
		return "-- add a test opening with " + label + " (cf. the O_LARGEFILE bug class)"
	case arg == "count" || arg == "size" || arg == "length":
		if label == "=0" {
			return "-- add a zero-size boundary test (legal under POSIX, easily forgotten)"
		}
		return "-- add a test with a " + label + "-byte " + syscall
	case arg == "":
		return "-- construct the state that makes " + syscall + " return " + label
	default:
		return "-- add a test exercising " + label
	}
}
