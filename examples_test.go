package iocov

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example binary end to end. Skipped
// in -short mode (each example compiles separately).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow to compile; run without -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("only %d examples", len(entries))
	}
	// Arguments keeping the slower examples quick.
	args := map[string][]string{
		"untested":  {"-scale", "0.02"},
		"tcdtuning": {"-scale", "0.02"},
		"fuzzeval":  {"-programs", "50"},
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command("go", append([]string{"run", "./" + filepath.Join("examples", name)}, args[name]...)...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(strings.TrimSpace(string(out))) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
