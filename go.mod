module iocov

go 1.22
