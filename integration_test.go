package iocov

import (
	"bytes"
	"reflect"
	"testing"

	"iocov/internal/bugsim"
	"iocov/internal/coverage"
	"iocov/internal/harness"
	"iocov/internal/kernel"
	"iocov/internal/suites/crashmonkey"
	"iocov/internal/suites/xfstests"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

// TestPipelineEquivalence: live analysis, text-trace round trip, and
// binary-trace round trip must produce byte-identical coverage for the same
// suite run.
func TestPipelineEquivalence(t *testing.T) {
	live := coverage.NewAnalyzer(coverage.DefaultOptions())
	var text, bin bytes.Buffer
	tw := trace.NewWriter(&text)
	bw := trace.NewBinaryWriter(&bin)
	filter, err := trace.NewFilter(harness.MountPattern)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{
		Sink: &trace.FilteringSink{F: filter, Next: trace.MultiSink{live, tw, bw}},
	})
	if _, err := crashmonkey.Run(k, crashmonkey.Config{Scale: 0.05, Seed: 11, Noise: true}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	// The trace files contain pre-filtered events; re-filtering keeps all.
	fromText, _, _, err := AnalyzeTrace(&text, harness.MountPattern)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, _, _, err := AnalyzeTrace(&bin, harness.MountPattern)
	if err != nil {
		t.Fatal(err)
	}
	for _, an := range []*coverage.Analyzer{fromText, fromBin} {
		if an.Analyzed() != live.Analyzed() {
			t.Fatalf("offline analyzed %d, live %d", an.Analyzed(), live.Analyzed())
		}
	}
	// Snapshot-level equality across all three pipelines.
	want := live.Snapshot(0)
	for i, an := range []*coverage.Analyzer{fromText, fromBin} {
		got := an.Snapshot(0)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("pipeline %d snapshot differs from live", i)
		}
	}
}

// TestSuiteCoversInjectedBugsButMissesThem is the paper's core claim run at
// suite scale: with every bug class injected, the full simulated xfstests
// run executes every buggy region, yet no bug fires — the suite's inputs
// simply never include the trigger partitions.
func TestSuiteCoversInjectedBugsButMissesThem(t *testing.T) {
	cfg := vfs.DefaultConfig()
	cfg.Bugs = vfs.BugSet{
		XattrSizeOverflow:   true,
		LargefileOpen:       true,
		NowaitWriteENOSPC:   true,
		TruncateExpandError: false, // xfstests uses block-aligned truncates legitimately
		GetBranchErrno:      true,
	}
	fs := vfs.New(cfg)
	regions := vfs.NewRegionSet()
	fs.AttachRegions(regions)
	k := kernel.New(fs, kernel.Options{})
	if _, err := xfstests.Run(k, xfstests.Config{Scale: 0.02, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	for _, bug := range bugsim.Catalog {
		if bug.ID == "truncate-expand" {
			continue
		}
		if !regions.Covered(bug.Region) {
			t.Errorf("region %s not covered by the suite", bug.Region)
		}
	}
	if corruptions := fs.CheckConsistency(); len(corruptions) != 0 {
		t.Errorf("suite unexpectedly triggered injected bugs: %v", corruptions)
	}
}

// TestNowaitBugInvisibleToSuite: the NOWAIT bug makes O_NONBLOCK writes
// fail — but CrashMonkey never opens regular files with O_NONBLOCK (an
// untested flag partition), so its failure count is identical with and
// without the bug.
func TestNowaitBugInvisibleToSuite(t *testing.T) {
	run := func(bugs vfs.BugSet) int64 {
		cfg := vfs.DefaultConfig()
		cfg.Bugs = bugs
		k := kernel.New(vfs.New(cfg), kernel.Options{})
		stats, err := crashmonkey.Run(k, crashmonkey.Config{Scale: 0.1, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Failures
	}
	clean := run(vfs.BugSet{})
	buggy := run(vfs.BugSet{NowaitWriteENOSPC: true})
	if clean != buggy {
		t.Errorf("failure counts differ (%d vs %d); the suite should be blind to this bug", clean, buggy)
	}
}

// TestUntestedPartitionsPredictBugTriggers ties the whole thesis together:
// the partitions IOCov reports as untested for the simulated xfstests are
// exactly where the injected bugs hide.
func TestUntestedPartitionsPredictBugTriggers(t *testing.T) {
	an, err := harness.Run(harness.SuiteXfstests, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Bug 1 (xattr overflow) triggers at setxattr size 2^16 — untested.
	xs := an.InputReport("setxattr", "size")
	for _, row := range xs.Rows {
		if row.Label == "2^16" && row.Count != 0 {
			t.Errorf("setxattr 2^16 partition tested (%d); the calibrated suite must miss it", row.Count)
		}
	}
	// Bug 2 (largefile) needs O_LARGEFILE / >2GiB opens — flag untested.
	if an.Input("open", "flags").Count("O_LARGEFILE") != 0 {
		t.Error("O_LARGEFILE tested; bug [62] class would be caught")
	}
	// Bug 3 (NOWAIT) needs O_NONBLOCK on an allocating write. The suite
	// uses O_NONBLOCK on opens but never writes through those descriptors
	// (they are O_RDONLY combos) — verify no write ENOSPC was recorded.
	if an.Output("write").Count("ENOSPC") != 0 {
		t.Error("write ENOSPC exercised; NOWAIT bug would surface")
	}
}
