// Package benchparse parses `go test -bench` output into structured
// results so benchmark runs can be committed as JSON and compared across
// PRs. It understands the standard benchmark line format plus the context
// lines (goos/goarch/pkg/cpu) the testing package prints, and nothing
// else — stdlib only, by design.
package benchparse

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with any -N procs suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is the -benchmem B/op figure (0 when absent).
	BytesPerOp int64 `json:"bytes_per_op"`
	// AllocsPerOp is the -benchmem allocs/op figure (0 when absent).
	AllocsPerOp int64 `json:"allocs_per_op"`
	// MBPerSec is the throughput figure when the benchmark reports one.
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// Extra holds custom b.ReportMetric units, e.g. "coverage-spaces".
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Run is a parsed benchmark session: machine context plus results.
type Run struct {
	Label   string   `json:"label"`
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// Parse reads `go test -bench` output and returns the session, with
// results sorted by name. Lines that are neither context nor benchmark
// lines (PASS, ok, test log output) are ignored.
func Parse(r io.Reader) (Run, error) {
	var run Run
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			run.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			run.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok, err := parseLine(line)
			if err != nil {
				return run, err
			}
			if ok {
				run.Results = append(run.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return run, err
	}
	sort.Slice(run.Results, func(i, j int) bool {
		return run.Results[i].Name < run.Results[j].Name
	})
	return run, nil
}

// parseLine parses one "BenchmarkName  N  value unit  value unit..." line.
// ok is false for lines that start with Benchmark but aren't result lines
// (e.g. a benchmark name echoed on its own while running).
func parseLine(line string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false, nil
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, nil
	}
	res := Result{Name: name, Iterations: iters}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("benchparse: bad value %q in %q", fields[i], line)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		case "MB/s":
			res.MBPerSec = v
		default:
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra[unit] = v
		}
	}
	return res, true, nil
}
