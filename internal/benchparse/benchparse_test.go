package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: iocov
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAnalyzerThroughput 	       2	    720678 ns/op	  10.12 MB/s	   47736 B/op	     402 allocs/op
BenchmarkKernelSyscalls-8    	       2	      3640 ns/op	    4616 B/op	       6 allocs/op
BenchmarkSuiteCoverage/merged	       2	     15216 ns/op	       3.0 coverage-spaces
PASS
ok  	iocov	0.069s
`

func TestParse(t *testing.T) {
	run, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if run.Goos != "linux" || run.Goarch != "amd64" || run.Pkg != "iocov" {
		t.Fatalf("context = %+v", run)
	}
	if !strings.Contains(run.CPU, "Xeon") {
		t.Fatalf("cpu = %q", run.CPU)
	}
	if len(run.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(run.Results))
	}
	// Sorted by name.
	at := run.Results[0]
	if at.Name != "BenchmarkAnalyzerThroughput" || at.NsPerOp != 720678 ||
		at.BytesPerOp != 47736 || at.AllocsPerOp != 402 || at.MBPerSec != 10.12 {
		t.Fatalf("analyzer result = %+v", at)
	}
	// The -8 procs suffix is stripped.
	ks := run.Results[1]
	if ks.Name != "BenchmarkKernelSyscalls" || ks.Iterations != 2 || ks.AllocsPerOp != 6 {
		t.Fatalf("kernel result = %+v", ks)
	}
	// Custom ReportMetric units land in Extra.
	sc := run.Results[2]
	if sc.Extra["coverage-spaces"] != 3.0 {
		t.Fatalf("suite result = %+v", sc)
	}
}

func TestParseBadValue(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX 2 zzz ns/op\n"))
	if err == nil {
		t.Fatal("malformed value not rejected")
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	run, err := Parse(strings.NewReader("BenchmarkRunning\nBenchmarkAlso notanumber\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) != 0 {
		t.Fatalf("phantom results: %+v", run.Results)
	}
}
