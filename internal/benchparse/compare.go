package benchparse

import (
	"fmt"
	"io"
	"sort"
)

// Delta is one benchmark's old-vs-new comparison. Ratios are new/old, so
// 1.0 means unchanged and 2.0 means twice as slow (or twice the bytes);
// a ratio is 0 when the old value was 0 (nothing to compare against).
type Delta struct {
	Name string `json:"name"`

	OldNs   float64 `json:"old_ns_per_op"`
	NewNs   float64 `json:"new_ns_per_op"`
	NsRatio float64 `json:"ns_ratio"`

	OldBytes   int64   `json:"old_bytes_per_op"`
	NewBytes   int64   `json:"new_bytes_per_op"`
	BytesRatio float64 `json:"bytes_ratio"`

	OldAllocs   int64   `json:"old_allocs_per_op"`
	NewAllocs   int64   `json:"new_allocs_per_op"`
	AllocsRatio float64 `json:"allocs_ratio"`

	// OnlyOld/OnlyNew mark benchmarks present in just one run (renamed,
	// added, or removed); their ratios are meaningless and left 0.
	OnlyOld bool `json:"only_old,omitempty"`
	OnlyNew bool `json:"only_new,omitempty"`
}

// ratio returns new/old, or 0 when old is 0.
func ratio(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return newV / oldV
}

// Compare matches two runs' results by benchmark name and returns one
// Delta per name, sorted. Benchmarks appearing in only one run are
// included with the corresponding OnlyOld/OnlyNew flag so a comparison
// never silently drops a renamed or deleted benchmark.
func Compare(oldRun, newRun Run) []Delta {
	oldBy := make(map[string]Result, len(oldRun.Results))
	for _, r := range oldRun.Results {
		oldBy[r.Name] = r
	}
	newBy := make(map[string]Result, len(newRun.Results))
	for _, r := range newRun.Results {
		newBy[r.Name] = r
	}

	names := make([]string, 0, len(oldBy)+len(newBy))
	for name := range oldBy {
		names = append(names, name)
	}
	for name := range newBy {
		if _, dup := oldBy[name]; !dup {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	deltas := make([]Delta, 0, len(names))
	for _, name := range names {
		o, inOld := oldBy[name]
		n, inNew := newBy[name]
		d := Delta{Name: name}
		switch {
		case inOld && inNew:
			d.OldNs, d.NewNs, d.NsRatio = o.NsPerOp, n.NsPerOp, ratio(o.NsPerOp, n.NsPerOp)
			d.OldBytes, d.NewBytes = o.BytesPerOp, n.BytesPerOp
			d.BytesRatio = ratio(float64(o.BytesPerOp), float64(n.BytesPerOp))
			d.OldAllocs, d.NewAllocs = o.AllocsPerOp, n.AllocsPerOp
			d.AllocsRatio = ratio(float64(o.AllocsPerOp), float64(n.AllocsPerOp))
		case inOld:
			d.OnlyOld = true
			d.OldNs, d.OldBytes, d.OldAllocs = o.NsPerOp, o.BytesPerOp, o.AllocsPerOp
		default:
			d.OnlyNew = true
			d.NewNs, d.NewBytes, d.NewAllocs = n.NsPerOp, n.BytesPerOp, n.AllocsPerOp
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// Regressions filters deltas to those whose time or memory ratio exceeds
// its threshold. A threshold <= 0 disables that dimension. Only-old and
// only-new entries never count as regressions (there is nothing to
// compare), and neither do speedups.
func Regressions(deltas []Delta, nsThreshold, bytesThreshold float64) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.OnlyOld || d.OnlyNew {
			continue
		}
		if (nsThreshold > 0 && d.NsRatio > nsThreshold) ||
			(bytesThreshold > 0 && d.BytesRatio > bytesThreshold) {
			out = append(out, d)
		}
	}
	return out
}

// WriteDeltas renders a comparison as an aligned text table:
//
//	benchmark                old ns/op    new ns/op   ratio     old B/op     new B/op   ratio
//
// Ratios are formatted as e.g. "1.04x"; entries present in only one run
// print "(old only)" / "(new only)" instead.
func WriteDeltas(w io.Writer, deltas []Delta) error {
	name := len("benchmark")
	for _, d := range deltas {
		if len(d.Name) > name {
			name = len(d.Name)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s %12s %12s %7s %12s %12s %7s\n",
		name, "benchmark", "old ns/op", "new ns/op", "ratio", "old B/op", "new B/op", "ratio"); err != nil {
		return err
	}
	for _, d := range deltas {
		switch {
		case d.OnlyOld:
			if _, err := fmt.Fprintf(w, "%-*s %12.0f %12s %7s %12d %12s %7s  (old only)\n",
				name, d.Name, d.OldNs, "-", "-", d.OldBytes, "-", "-"); err != nil {
				return err
			}
		case d.OnlyNew:
			if _, err := fmt.Fprintf(w, "%-*s %12s %12.0f %7s %12s %12d %7s  (new only)\n",
				name, d.Name, "-", d.NewNs, "-", "-", d.NewBytes, "-"); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%-*s %12.0f %12.0f %6.2fx %12d %12d %6.2fx\n",
				name, d.Name, d.OldNs, d.NewNs, d.NsRatio, d.OldBytes, d.NewBytes, d.BytesRatio); err != nil {
				return err
			}
		}
	}
	return nil
}
