package benchparse

import (
	"strings"
	"testing"
)

func compareRuns() (Run, Run) {
	oldRun := Run{Label: "pr7", Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 4096, AllocsPerOp: 10},
		{Name: "BenchmarkB", NsPerOp: 2000, BytesPerOp: 1 << 20, AllocsPerOp: 100},
		{Name: "BenchmarkGone", NsPerOp: 500, BytesPerOp: 64, AllocsPerOp: 1},
	}}
	newRun := Run{Label: "pr8", Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 1100, BytesPerOp: 4096, AllocsPerOp: 10},
		{Name: "BenchmarkB", NsPerOp: 1000, BytesPerOp: 1 << 16, AllocsPerOp: 50},
		{Name: "BenchmarkNew", NsPerOp: 300, BytesPerOp: 32, AllocsPerOp: 2},
	}}
	return oldRun, newRun
}

func TestCompare(t *testing.T) {
	oldRun, newRun := compareRuns()
	deltas := Compare(oldRun, newRun)
	if len(deltas) != 4 {
		t.Fatalf("got %d deltas, want 4: %+v", len(deltas), deltas)
	}
	// Sorted by name: A, B, Gone, New.
	a := deltas[0]
	if a.Name != "BenchmarkA" || a.NsRatio != 1.1 || a.BytesRatio != 1.0 || a.AllocsRatio != 1.0 {
		t.Errorf("A delta = %+v", a)
	}
	b := deltas[1]
	if b.NsRatio != 0.5 || b.BytesRatio != 1.0/16 || b.AllocsRatio != 0.5 {
		t.Errorf("B delta = %+v", b)
	}
	if gone := deltas[2]; !gone.OnlyOld || gone.OnlyNew || gone.NsRatio != 0 {
		t.Errorf("Gone delta = %+v", gone)
	}
	if nw := deltas[3]; !nw.OnlyNew || nw.OnlyOld || nw.NewNs != 300 {
		t.Errorf("New delta = %+v", nw)
	}
}

func TestCompareZeroOld(t *testing.T) {
	deltas := Compare(
		Run{Results: []Result{{Name: "BenchmarkZ", NsPerOp: 0, BytesPerOp: 0}}},
		Run{Results: []Result{{Name: "BenchmarkZ", NsPerOp: 10, BytesPerOp: 10}}},
	)
	if deltas[0].NsRatio != 0 || deltas[0].BytesRatio != 0 {
		t.Errorf("zero-old ratios should be 0, got %+v", deltas[0])
	}
}

func TestRegressions(t *testing.T) {
	oldRun, newRun := compareRuns()
	deltas := Compare(oldRun, newRun)

	// A is 1.10x — inside a 1.30 time threshold; nothing regressed.
	if reg := Regressions(deltas, 1.30, 2.0); len(reg) != 0 {
		t.Errorf("unexpected regressions: %+v", reg)
	}
	// Tighten the time threshold below 1.10 and A trips it.
	reg := Regressions(deltas, 1.05, 2.0)
	if len(reg) != 1 || reg[0].Name != "BenchmarkA" {
		t.Errorf("regressions at 1.05 = %+v", reg)
	}
	// Disabled thresholds never fire.
	if reg := Regressions(deltas, 0, 0); len(reg) != 0 {
		t.Errorf("disabled thresholds fired: %+v", reg)
	}

	// A memory blowup trips the bytes threshold even with time flat.
	blown := Compare(
		Run{Results: []Result{{Name: "BenchmarkM", NsPerOp: 100, BytesPerOp: 1 << 20}}},
		Run{Results: []Result{{Name: "BenchmarkM", NsPerOp: 100, BytesPerOp: 5 << 20}}},
	)
	if reg := Regressions(blown, 1.30, 2.0); len(reg) != 1 {
		t.Errorf("memory blowup not flagged: %+v", reg)
	}
	// Only-old / only-new entries are never regressions.
	orphan := []Delta{{Name: "BenchmarkGone", OnlyOld: true}, {Name: "BenchmarkNew", OnlyNew: true}}
	if reg := Regressions(orphan, 0.1, 0.1); len(reg) != 0 {
		t.Errorf("orphan entries flagged: %+v", reg)
	}
}

func TestWriteDeltas(t *testing.T) {
	oldRun, newRun := compareRuns()
	var sb strings.Builder
	if err := WriteDeltas(&sb, Compare(oldRun, newRun)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"benchmark", "BenchmarkA", "1.10x", "0.50x", "(old only)", "(new only)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + 4 deltas
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
}
