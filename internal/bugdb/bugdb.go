// Package bugdb encodes the paper's real-world bug study (§2) as a
// structured dataset plus the aggregation code that recomputes every
// statistic the paper reports.
//
// The study analyzed the latest 100 Git commits of 2022 for each of Ext4
// and BtrFS (200 commits), identified 70 bug-fix commits (51 Ext4, 19
// BtrFS), ran xfstests under Gcov, and hand-labelled each bug with: whether
// xfstests covered the buggy lines/functions/branches, whether it detected
// the bug, whether the bug is input-dependent and/or output-path-related,
// and whether a covered-but-missed bug could be triggered by specific
// syscall arguments.
//
// The published aggregates are:
//
//	37/70 (53%) line-covered but missed     43/70 (61%) function-covered but missed
//	20/70 (29%) branch-covered but missed   50/70 (71%) input bugs
//	41/70 (59%) output bugs                 57/70 (81%) input or output bugs
//	24/37 (65%) of line-covered-missed bugs triggerable by specific arguments
//
// The dataset below is synthesized to satisfy every one of those aggregates
// simultaneously (the paper's per-bug labels are not public); representative
// bugs the paper cites by commit are included verbatim.
package bugdb

import "fmt"

// FS identifies the filesystem a bug belongs to.
type FS string

// Filesystems in the study.
const (
	Ext4  FS = "ext4"
	BtrFS FS = "btrfs"
)

// Bug is one bug-fix commit's labels.
type Bug struct {
	// ID is a stable identifier ("ext4-001"). Representative bugs carry
	// the upstream commit prefix in Commit.
	ID     string
	FS     FS
	Commit string
	Title  string

	// LineCovered/FuncCovered/BranchCovered report whether xfstests
	// executed the buggy code at each Gcov granularity. Branch coverage
	// implies line coverage implies function coverage.
	LineCovered   bool
	FuncCovered   bool
	BranchCovered bool
	// Detected reports whether xfstests actually exposed the bug.
	Detected bool
	// InputBug: triggerable only by specific syscall inputs.
	InputBug bool
	// OutputBug: occurs on the exit path / affects syscall returns.
	OutputBug bool
	// ArgTriggerable: for covered-but-missed bugs, whether specific
	// syscall arguments (boundary values, corner cases) would trigger it.
	ArgTriggerable bool
	// Syscalls lists the trigger syscalls where known.
	Syscalls []string
}

// representative bugs the paper cites explicitly.
var representative = []Bug{
	{
		ID: "ext4-xattr-overflow", FS: Ext4, Commit: "67d7d8ad99be",
		Title:       "ext4: fix use-after-free in ext4_xattr_set_entry (Figure 1: max-size lsetxattr overflows min_offs)",
		LineCovered: true, FuncCovered: true, BranchCovered: true,
		Detected: false, InputBug: true, OutputBug: true, ArgTriggerable: true,
		Syscalls: []string{"lsetxattr"},
	},
	{
		ID: "ext4-fc-replay-oob", FS: Ext4, Commit: "1b45cc5c7b92",
		Title:       "ext4: fix potential out-of-bound read in ext4_fc_replay_scan",
		LineCovered: false, FuncCovered: false, BranchCovered: false,
		Detected: false, InputBug: true, OutputBug: false, ArgTriggerable: false,
		Syscalls: []string{"write"},
	},
	{
		ID: "ext4-get-branch-errno", FS: Ext4, Commit: "26d75a16af28",
		Title:       "ext4: fix error code return to user-space in ext4_get_branch",
		LineCovered: true, FuncCovered: true, BranchCovered: false,
		Detected: false, InputBug: false, OutputBug: true, ArgTriggerable: false,
		Syscalls: []string{"read"},
	},
	{
		ID: "ext4-resize-continue", FS: Ext4, Commit: "df3cb754d13d",
		Title:       "ext4: continue to expand file system when the target size doesn't reach",
		LineCovered: true, FuncCovered: true, BranchCovered: false,
		Detected: false, InputBug: true, OutputBug: false, ArgTriggerable: true,
		Syscalls: []string{"truncate"},
	},
	{
		ID: "btrfs-nowait-enospc", FS: BtrFS, Commit: "a348c8d4f6cf",
		Title:       "btrfs: fix NOWAIT buffered write returning -ENOSPC",
		LineCovered: true, FuncCovered: true, BranchCovered: true,
		Detected: false, InputBug: true, OutputBug: true, ArgTriggerable: true,
		Syscalls: []string{"write"},
	},
	{
		ID: "xfs-largefile-open", FS: Ext4, Commit: "f3bf67c6c6fe",
		Title:       "use generic_file_open (O_LARGEFILE handling class; cited as an untested-flag bug)",
		LineCovered: true, FuncCovered: true, BranchCovered: true,
		Detected: false, InputBug: true, OutputBug: true, ArgTriggerable: true,
		Syscalls: []string{"open"},
	},
}

// Targets are the aggregate counts the synthesized dataset must satisfy.
type Targets struct {
	Total, Ext4, Btrfs                   int
	LineCovMissed, FuncCovMissed         int
	BranchCovMissed                      int
	InputBugs, OutputBugs, InputOrOutput int
	ArgTriggerableAmongLineCovMissed     int
}

// PaperTargets returns the published aggregates.
func PaperTargets() Targets {
	return Targets{
		Total: 70, Ext4: 51, Btrfs: 19,
		LineCovMissed: 37, FuncCovMissed: 43, BranchCovMissed: 20,
		InputBugs: 50, OutputBugs: 41, InputOrOutput: 57,
		ArgTriggerableAmongLineCovMissed: 24,
	}
}

// Load returns the full 70-bug dataset. The first entries are the
// representative bugs the paper cites; the remainder are synthesized so
// that every PaperTargets aggregate holds exactly. Construction is
// deterministic.
func Load() []Bug {
	t := PaperTargets()
	bugs := append([]Bug(nil), representative...)

	// Count what the representative bugs already contribute.
	var cur counts
	for _, b := range bugs {
		cur.add(b)
	}

	// Category plan for the remaining bugs. Each category fixes all seven
	// booleans; the counts are solved by hand against the targets:
	//
	//   covered hierarchy: branch ⊆ line ⊆ func (for covered-missed sets)
	//   func-only covered-missed = 43 − 37 = 6
	//   line-not-branch covered-missed = 37 − 20 = 17
	//   branch covered-missed = 20
	//   uncovered-and-missed = rest (xfstests found none of the studied
	//   bugs in a way that closes them — detected bugs are those its
	//   regressions would now catch; the study's detected set is small).
	type category struct {
		n                                    int
		line, fn, branch, det, in, out, argT bool
	}
	// Detected bugs: covered at every level, by definition of detection.
	// The paper's covered-but-missed percentages leave room for detected
	// bugs; choose 9 detected (70 − 37 line-covered-missed − 24 uncovered
	// = 9 line-covered detected).
	plan := []category{
		// Branch-covered but missed (target 20 incl. representatives).
		{n: 0, line: true, fn: true, branch: true, det: false, in: true, out: true, argT: true},
		{n: 0, line: true, fn: true, branch: true, det: false, in: true, out: false, argT: true},
		{n: 0, line: true, fn: true, branch: true, det: false, in: false, out: true, argT: false},
		// Line-but-not-branch covered, missed (target 17 incl. reps).
		{n: 0, line: true, fn: true, branch: false, det: false, in: true, out: true, argT: true},
		{n: 0, line: true, fn: true, branch: false, det: false, in: true, out: false, argT: true},
		{n: 0, line: true, fn: true, branch: false, det: false, in: false, out: true, argT: false},
		{n: 0, line: true, fn: true, branch: false, det: false, in: false, out: false, argT: false},
		// Function-only covered, missed (6).
		{n: 0, line: false, fn: true, branch: false, det: false, in: true, out: true, argT: false},
		// Uncovered and missed.
		{n: 0, line: false, fn: false, branch: false, det: false, in: true, out: true, argT: false},
		{n: 0, line: false, fn: false, branch: false, det: false, in: true, out: false, argT: false},
		{n: 0, line: false, fn: false, branch: false, det: false, in: false, out: true, argT: false},
		{n: 0, line: false, fn: false, branch: false, det: false, in: false, out: false, argT: false},
		// Detected (all covered; mostly input/output bugs too).
		{n: 0, line: true, fn: true, branch: true, det: true, in: true, out: true, argT: false},
		{n: 0, line: true, fn: true, branch: true, det: true, in: true, out: false, argT: false},
		{n: 0, line: true, fn: true, branch: true, det: true, in: false, out: false, argT: false},
	}

	// Solve the remaining counts against the targets. Representative
	// contributions: line-missed 5, func-missed 5, branch-missed 3,
	// input 5, output 4, in|out 6, argT∧lineMissed 4, detected 0. The
	// synthesized remainder must therefore supply: 64 bugs, 32 line-missed
	// (17 of them branch-covered), 38 func-missed, 20 argT∧lineMissed,
	// 45 input, 37 output, 13 neither-input-nor-output. Verified exactly
	// by TestAggregatesMatchPaper.
	plan[0].n = 9  // branch-covered missed, in+out, argT
	plan[1].n = 5  // branch-covered missed, in only, argT
	plan[2].n = 3  // branch-covered missed, out only
	plan[3].n = 2  // line-not-branch missed, in+out, argT
	plan[4].n = 4  // line-not-branch missed, in only, argT
	plan[5].n = 1  // line-not-branch missed, out only
	plan[6].n = 8  // line-not-branch missed, neither
	plan[7].n = 6  // func-only covered missed, in+out
	plan[8].n = 8  // uncovered, in+out
	plan[9].n = 3  // uncovered, in only
	plan[10].n = 2 // uncovered, out only
	plan[11].n = 5 // uncovered, neither
	plan[12].n = 6 // detected, in+out
	plan[13].n = 2 // detected, in only
	plan[14].n = 0 // detected, neither

	syscallPool := [][]string{
		{"write"}, {"open"}, {"truncate"}, {"setxattr"}, {"lseek"},
		{"chmod"}, {"mkdir"}, {"read"}, {"open", "write"}, {"getxattr"},
	}
	idx := 0
	for ci, c := range plan {
		for i := 0; i < c.n; i++ {
			fs := Ext4
			// Fill BtrFS up to its 19-bug share (1 representative is
			// BtrFS), spreading across categories.
			if cur.btrfs < t.Btrfs && (idx+ci)%4 == 0 {
				fs = BtrFS
			}
			b := Bug{
				ID:          fmt.Sprintf("%s-%03d", fs, idx),
				FS:          fs,
				Title:       fmt.Sprintf("synthesized study bug #%d (category %d)", idx, ci),
				LineCovered: c.line, FuncCovered: c.fn, BranchCovered: c.branch,
				Detected: c.det, InputBug: c.in, OutputBug: c.out,
				ArgTriggerable: c.argT,
				Syscalls:       syscallPool[idx%len(syscallPool)],
			}
			bugs = append(bugs, b)
			cur.add(b)
			idx++
		}
	}
	// Top up the BtrFS share with relabels of synthesized Ext4 bugs (FS
	// does not interact with any other aggregate).
	for i := len(representative); i < len(bugs) && cur.btrfs < t.Btrfs; i++ {
		if bugs[i].FS == Ext4 {
			bugs[i].FS = BtrFS
			bugs[i].ID = fmt.Sprintf("%s-%03d", BtrFS, i)
			cur.ext4--
			cur.btrfs++
		}
	}
	return bugs
}

type counts struct {
	total, ext4, btrfs int
}

func (c *counts) add(b Bug) {
	c.total++
	if b.FS == Ext4 {
		c.ext4++
	} else {
		c.btrfs++
	}
}

// Aggregates are the recomputed study statistics.
type Aggregates struct {
	Total, Ext4, Btrfs int

	LineCovMissed   int
	FuncCovMissed   int
	BranchCovMissed int

	InputBugs     int
	OutputBugs    int
	InputOrOutput int

	ArgTriggerableAmongLineCovMissed int

	Detected int
}

// Aggregate recomputes every §2 statistic from a dataset.
func Aggregate(bugs []Bug) Aggregates {
	var a Aggregates
	for _, b := range bugs {
		a.Total++
		if b.FS == Ext4 {
			a.Ext4++
		} else {
			a.Btrfs++
		}
		missed := !b.Detected
		if b.LineCovered && missed {
			a.LineCovMissed++
			if b.ArgTriggerable {
				a.ArgTriggerableAmongLineCovMissed++
			}
		}
		if b.FuncCovered && missed {
			a.FuncCovMissed++
		}
		if b.BranchCovered && missed {
			a.BranchCovMissed++
		}
		if b.InputBug {
			a.InputBugs++
		}
		if b.OutputBug {
			a.OutputBugs++
		}
		if b.InputBug || b.OutputBug {
			a.InputOrOutput++
		}
		if b.Detected {
			a.Detected++
		}
	}
	return a
}

// Pct formats n/total as the paper's rounded percentage.
func Pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
