package bugdb

import (
	"math"
	"testing"
)

func TestAggregatesMatchPaper(t *testing.T) {
	bugs := Load()
	a := Aggregate(bugs)
	want := PaperTargets()

	if a.Total != want.Total {
		t.Errorf("total = %d, want %d", a.Total, want.Total)
	}
	if a.Ext4 != want.Ext4 {
		t.Errorf("ext4 = %d, want %d", a.Ext4, want.Ext4)
	}
	if a.Btrfs != want.Btrfs {
		t.Errorf("btrfs = %d, want %d", a.Btrfs, want.Btrfs)
	}
	if a.LineCovMissed != want.LineCovMissed {
		t.Errorf("line-covered-missed = %d, want %d (53%%)", a.LineCovMissed, want.LineCovMissed)
	}
	if a.FuncCovMissed != want.FuncCovMissed {
		t.Errorf("func-covered-missed = %d, want %d (61%%)", a.FuncCovMissed, want.FuncCovMissed)
	}
	if a.BranchCovMissed != want.BranchCovMissed {
		t.Errorf("branch-covered-missed = %d, want %d (29%%)", a.BranchCovMissed, want.BranchCovMissed)
	}
	if a.InputBugs != want.InputBugs {
		t.Errorf("input bugs = %d, want %d (71%%)", a.InputBugs, want.InputBugs)
	}
	if a.OutputBugs != want.OutputBugs {
		t.Errorf("output bugs = %d, want %d (59%%)", a.OutputBugs, want.OutputBugs)
	}
	if a.InputOrOutput != want.InputOrOutput {
		t.Errorf("input-or-output = %d, want %d (81%%)", a.InputOrOutput, want.InputOrOutput)
	}
	if a.ArgTriggerableAmongLineCovMissed != want.ArgTriggerableAmongLineCovMissed {
		t.Errorf("arg-triggerable among covered-missed = %d, want %d (65%%)",
			a.ArgTriggerableAmongLineCovMissed, want.ArgTriggerableAmongLineCovMissed)
	}
}

func TestPaperPercentages(t *testing.T) {
	a := Aggregate(Load())
	pct := func(n, d int) float64 { return math.Round(Pct(n, d)) }
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"line-covered-missed", pct(a.LineCovMissed, a.Total), 53},
		{"func-covered-missed", pct(a.FuncCovMissed, a.Total), 61},
		{"branch-covered-missed", pct(a.BranchCovMissed, a.Total), 29},
		{"input bugs", pct(a.InputBugs, a.Total), 71},
		{"output bugs", pct(a.OutputBugs, a.Total), 59},
		{"input-or-output", pct(a.InputOrOutput, a.Total), 81},
		{"arg-triggerable", pct(a.ArgTriggerableAmongLineCovMissed, a.LineCovMissed), 65},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %.0f%%, paper reports %.0f%%", c.name, c.got, c.want)
		}
	}
}

func TestCoverageHierarchy(t *testing.T) {
	// Branch coverage implies line coverage implies function coverage.
	for _, b := range Load() {
		if b.BranchCovered && !b.LineCovered {
			t.Errorf("%s: branch covered but not line covered", b.ID)
		}
		if b.LineCovered && !b.FuncCovered {
			t.Errorf("%s: line covered but not function covered", b.ID)
		}
		// Detected bugs must at least be function covered.
		if b.Detected && !b.FuncCovered {
			t.Errorf("%s: detected without coverage", b.ID)
		}
		// ArgTriggerable only applies to missed bugs in the study.
		if b.ArgTriggerable && b.Detected {
			t.Errorf("%s: arg-triggerable yet detected", b.ID)
		}
	}
}

func TestUniqueIDs(t *testing.T) {
	seen := make(map[string]bool)
	for _, b := range Load() {
		if seen[b.ID] {
			t.Errorf("duplicate bug id %s", b.ID)
		}
		seen[b.ID] = true
	}
}

func TestRepresentativeBugsPresent(t *testing.T) {
	bugs := Load()
	byID := make(map[string]Bug)
	for _, b := range bugs {
		byID[b.ID] = b
	}
	fig1, ok := byID["ext4-xattr-overflow"]
	if !ok {
		t.Fatal("Figure 1 bug missing from dataset")
	}
	// Figure 1's bug is both input- and output-related, covered at every
	// granularity, and missed.
	if !fig1.LineCovered || !fig1.FuncCovered || !fig1.BranchCovered {
		t.Error("Figure 1 bug should be fully covered")
	}
	if fig1.Detected {
		t.Error("Figure 1 bug should be missed by xfstests")
	}
	if !fig1.InputBug || !fig1.OutputBug || !fig1.ArgTriggerable {
		t.Error("Figure 1 bug should be input+output and arg-triggerable")
	}
}

func TestDeterministicLoad(t *testing.T) {
	a, b := Load(), Load()
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].FS != b[i].FS {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestPct(t *testing.T) {
	if Pct(37, 70) < 52.8 || Pct(37, 70) > 53 {
		t.Errorf("Pct(37,70) = %f", Pct(37, 70))
	}
	if Pct(1, 0) != 0 {
		t.Error("Pct with zero denominator should be 0")
	}
}
