// Package bugsim makes the paper's central claim executable: code coverage
// is weakly correlated with bug detection because many bugs trigger only on
// specific inputs or outputs.
//
// Five real bug classes from the paper's study are injectable into the
// simulated filesystem (vfs.BugSet). For each, the harness runs a
// regression-style workload that *covers* the buggy code region (the Gcov
// line-coverage proxy) yet does not trigger the bug, and then a
// boundary-value workload derived from IOCov-style untested input
// partitions that does trigger it. Detection combines a differential check
// (same ops on a correct twin filesystem, compare outcomes) with the
// silent-corruption records the injected bugs leave behind.
package bugsim

import (
	"fmt"

	"iocov/internal/kernel"
	"iocov/internal/sys"
	"iocov/internal/vfs"
)

// Bug identifies one injectable defect.
type Bug struct {
	// ID is a short slug ("xattr-overflow").
	ID string
	// Commit is the upstream fix the injection models.
	Commit string
	// Description explains the defect.
	Description string
	// Region is the modeled kernel code region whose execution stands in
	// for "the buggy lines were covered" (Gcov line coverage).
	Region string
	// BranchRegion, when non-empty, is the guard branch adjacent to the
	// bug (Gcov branch coverage); covering it still does not imply
	// triggering the bug, mirroring the study's branch-covered-but-missed
	// population.
	BranchRegion string
	// InputBug/OutputBug classify it per the paper's §2 taxonomy.
	InputBug  bool
	OutputBug bool

	enable func(*vfs.BugSet)
}

// Catalog lists the injectable bugs.
var Catalog = []Bug{
	{
		ID: "xattr-overflow", Commit: "67d7d8ad99be",
		Description: "setxattr with the maximum allowed size overflows the xattr block bookkeeping (Figure 1)",
		Region:      "ext4_xattr_ibody_set", BranchRegion: "ext4_xattr_ibody_set:nospc-branch",
		InputBug: true, OutputBug: true,
		enable: func(b *vfs.BugSet) { b.XattrSizeOverflow = true },
	},
	{
		ID: "largefile-open", Commit: "f3bf67c6c6fe",
		Description: "opening a >=2GiB file without O_LARGEFILE succeeds instead of failing with EOVERFLOW",
		Region:      "generic_file_open", BranchRegion: "generic_file_open:overflow-branch",
		InputBug: true, OutputBug: true,
		enable: func(b *vfs.BugSet) { b.LargefileOpen = true },
	},
	{
		ID: "nowait-write-enospc", Commit: "a348c8d4f6cf",
		Description: "an allocating NOWAIT buffered write returns ENOSPC although space is available",
		Region:      "btrfs_buffered_write", BranchRegion: "btrfs_buffered_write:nowait-branch",
		InputBug: true, OutputBug: true,
		enable: func(b *vfs.BugSet) { b.NowaitWriteENOSPC = true },
	},
	{
		ID: "truncate-expand", Commit: "df3cb754d13d",
		Description: "expanding truncate to a block-aligned size stops one block short",
		Region:      "ext4_truncate", BranchRegion: "ext4_truncate:aligned-branch",
		InputBug: true, OutputBug: false,
		enable: func(b *vfs.BugSet) { b.TruncateExpandError = true },
	},
	{
		ID: "get-branch-errno", Commit: "26d75a16af28",
		Description: "reading a bad block returns success with no data instead of EIO",
		Region:      "ext4_get_branch", BranchRegion: "ext4_get_branch:badblock-branch",
		InputBug: false, OutputBug: true,
		enable: func(b *vfs.BugSet) { b.GetBranchErrno = true },
	},
}

// ByID returns the catalog entry with the given ID, or nil.
func ByID(id string) *Bug {
	for i := range Catalog {
		if Catalog[i].ID == id {
			return &Catalog[i]
		}
	}
	return nil
}

// Outcome reports one workload assessment against one bug.
type Outcome struct {
	Bug Bug
	// RegionCovered: the workload executed the buggy code region (Gcov
	// function/line coverage; identical in this model since regions are
	// function-grained).
	RegionCovered bool
	// BranchCovered: the workload took the guard branch adjacent to the
	// bug (Gcov branch coverage).
	BranchCovered bool
	// RegionHits counts region executions.
	RegionHits int64
	// Detected: the workload exposed the bug, via outcome divergence from
	// the correct twin or via a consistency-check corruption record.
	Detected bool
	// Evidence describes what exposed the bug, when detected.
	Evidence []string
}

// Workload is a deterministic op sequence run identically against the buggy
// filesystem and its correct twin.
type Workload func(p *kernel.Proc)

// pairRecorder captures (ret, errno) outcomes for differential comparison.
type pairRecorder struct {
	outcomes []outcomeRec
}

type outcomeRec struct {
	name string
	ret  int64
	err  sys.Errno
}

// Assess runs the workload against a buggy filesystem and a correct twin
// with identical configuration, comparing every syscall outcome and the
// final consistency state.
func Assess(bug Bug, cfg vfs.Config, w Workload) Outcome {
	buggyCfg := cfg
	bug.enable(&buggyCfg.Bugs)

	runOne := func(c vfs.Config) (*vfs.FS, *vfs.RegionSet, []outcomeRec) {
		fs := vfs.New(c)
		regions := vfs.NewRegionSet()
		fs.AttachRegions(regions)
		rec := &pairRecorder{}
		k := kernel.New(fs, kernel.Options{Sink: recorderSink(rec)})
		p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
		w(p)
		return fs, regions, rec.outcomes
	}

	buggyFS, regions, buggyOut := runOne(buggyCfg)
	_, _, goodOut := runOne(cfg)

	out := Outcome{
		Bug:           bug,
		RegionCovered: regions.Covered(bug.Region),
		BranchCovered: bug.BranchRegion != "" && regions.Covered(bug.BranchRegion),
		RegionHits:    regions.Count(bug.Region),
	}
	// Differential comparison: same deterministic ops, so streams align
	// 1:1; any divergence is observable misbehaviour.
	n := len(buggyOut)
	if len(goodOut) < n {
		n = len(goodOut)
	}
	for i := 0; i < n; i++ {
		b, g := buggyOut[i], goodOut[i]
		if b.err != g.err || (b.err == sys.OK && b.ret != g.ret) {
			out.Detected = true
			out.Evidence = append(out.Evidence, fmt.Sprintf(
				"op %d (%s): buggy ret=%d err=%s, correct ret=%d err=%s",
				i, b.name, b.ret, b.err, g.ret, g.err))
		}
	}
	for _, c := range buggyFS.CheckConsistency() {
		out.Detected = true
		out.Evidence = append(out.Evidence, "consistency: "+c)
	}
	return out
}

// AssessAll runs one workload against every catalog bug.
func AssessAll(cfg vfs.Config, w Workload) []Outcome {
	out := make([]Outcome, 0, len(Catalog))
	for _, b := range Catalog {
		out = append(out, Assess(b, cfg, w))
	}
	return out
}
