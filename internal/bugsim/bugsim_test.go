package bugsim

import (
	"testing"

	"iocov/internal/vfs"
)

// TestCoveredButMissed is the executable form of the paper's §2 finding:
// the regression workload executes every buggy region yet detects none of
// the injected bugs.
func TestCoveredButMissed(t *testing.T) {
	for _, out := range AssessAll(vfs.DefaultConfig(), RegressionWorkload) {
		if !out.RegionCovered {
			t.Errorf("%s: region %s not covered by regression workload", out.Bug.ID, out.Bug.Region)
		}
		if out.Detected {
			t.Errorf("%s: regression workload unexpectedly detected the bug: %v", out.Bug.ID, out.Evidence)
		}
	}
}

// TestBranchCoverageGranularity mirrors the study's granularity finding:
// line coverage overstates testing more than branch coverage does. The
// regression workload line-covers all five bugs but branch-covers only the
// xattr one (whose rejection branch ordinary over-capacity inputs reach) —
// and even branch coverage does not detect it, exactly Figure 1's story.
func TestBranchCoverageGranularity(t *testing.T) {
	branchCovered := map[string]bool{}
	for _, out := range AssessAll(vfs.DefaultConfig(), RegressionWorkload) {
		branchCovered[out.Bug.ID] = out.BranchCovered
	}
	if !branchCovered["xattr-overflow"] {
		t.Error("xattr ENOSPC branch should be covered by the regression workload")
	}
	for _, id := range []string{"largefile-open", "nowait-write-enospc", "truncate-expand", "get-branch-errno"} {
		if branchCovered[id] {
			t.Errorf("%s: branch unexpectedly covered by the regression workload", id)
		}
	}
	// The boundary probes cover every branch (and detect every bug).
	for _, bug := range Catalog {
		out := Assess(bug, vfs.DefaultConfig(), BoundaryWorkload(bug.ID))
		if bug.ID == "xattr-overflow" {
			// The probe goes straight to the corrupting max-size path;
			// the ENOSPC rejection branch is bypassed in the buggy kernel.
			continue
		}
		if !out.BranchCovered {
			t.Errorf("%s: boundary probe missed branch %s", bug.ID, bug.BranchRegion)
		}
	}
}

// TestBoundaryProbesDetect: the input-coverage-guided boundary workloads
// trigger every injected bug.
func TestBoundaryProbesDetect(t *testing.T) {
	for _, bug := range Catalog {
		out := Assess(bug, vfs.DefaultConfig(), BoundaryWorkload(bug.ID))
		if !out.Detected {
			t.Errorf("%s: boundary probe failed to detect the bug", bug.ID)
		}
		if !out.RegionCovered {
			t.Errorf("%s: boundary probe did not cover region %s", bug.ID, bug.Region)
		}
	}
}

// TestBoundaryProbesCleanOnCorrectFS: probes must not report false
// positives when the bug is absent — assess with a "bug" whose enable is a
// no-op by comparing a correct filesystem to itself.
func TestBoundaryProbesCleanOnCorrectFS(t *testing.T) {
	noop := Bug{ID: "noop", Region: "vfs_write", enable: func(*vfs.BugSet) {}}
	for _, bug := range Catalog {
		out := Assess(noop, vfs.DefaultConfig(), BoundaryWorkload(bug.ID))
		if out.Detected {
			t.Errorf("probe %s reports divergence on identical filesystems: %v", bug.ID, out.Evidence)
		}
	}
}

func TestCatalogIntegrity(t *testing.T) {
	seen := make(map[string]bool)
	for _, b := range Catalog {
		if b.ID == "" || b.Region == "" || b.Commit == "" || b.enable == nil {
			t.Errorf("incomplete catalog entry %+v", b)
		}
		if seen[b.ID] {
			t.Errorf("duplicate catalog id %s", b.ID)
		}
		seen[b.ID] = true
		if !b.InputBug && !b.OutputBug {
			t.Errorf("%s: neither input nor output bug", b.ID)
		}
	}
	if len(Catalog) != 5 {
		t.Errorf("catalog size = %d, want 5", len(Catalog))
	}
}

func TestByID(t *testing.T) {
	if ByID("xattr-overflow") == nil {
		t.Error("xattr-overflow missing")
	}
	if ByID("no-such-bug") != nil {
		t.Error("unknown id resolved")
	}
}

func TestUnknownBoundaryWorkloadIsNoop(t *testing.T) {
	w := BoundaryWorkload("nonexistent")
	out := Assess(Catalog[0], vfs.DefaultConfig(), w)
	if out.Detected || out.RegionCovered {
		t.Error("empty workload should neither cover nor detect")
	}
}

// TestEvidenceMentionsDivergence: detection evidence is actionable.
func TestEvidenceMentionsDivergence(t *testing.T) {
	bug := *ByID("nowait-write-enospc")
	out := Assess(bug, vfs.DefaultConfig(), BoundaryWorkload(bug.ID))
	if !out.Detected || len(out.Evidence) == 0 {
		t.Fatalf("no evidence: %+v", out)
	}
}
