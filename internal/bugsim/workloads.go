package bugsim

import (
	"fmt"

	"iocov/internal/kernel"
	"iocov/internal/sys"
	"iocov/internal/trace"
)

// recorderSink adapts pairRecorder to trace.Sink.
func recorderSink(r *pairRecorder) trace.Sink {
	return trace.SinkFunc(func(ev trace.Event) {
		r.outcomes = append(r.outcomes, outcomeRec{name: ev.Name, ret: ev.Ret, err: ev.Err})
	})
}

// RegressionWorkload is the xfstests-style workload of the demonstration:
// it executes every buggy code region — creates, opens, reads, writes,
// truncates, xattrs — with the ordinary, heavily-tested inputs a regression
// suite uses. Per the paper's bug study, coverage alone is not enough: none
// of the catalog bugs trigger under it.
func RegressionWorkload(p *kernel.Proc) {
	must := func(e sys.Errno) { _ = e }
	must(p.Mkdir("/reg", 0o755))
	for i := 0; i < 8; i++ {
		f := fmt.Sprintf("/reg/f%d", i)
		fd, e := p.Open(f, sys.O_CREAT|sys.O_RDWR|sys.O_LARGEFILE, 0o644)
		if e != sys.OK {
			continue
		}
		// Ordinary small writes (allocating, blocking).
		_, _ = p.Write(fd, make([]byte, 4096))
		_, _ = p.Write(fd, make([]byte, 100))
		// Ordinary reads.
		_, _ = p.Lseek(fd, 0, sys.SEEK_SET)
		_, _ = p.Read(fd, make([]byte, 1024))
		// Non-aligned truncates, shrink and grow.
		must(p.Ftruncate(fd, 1000))
		must(p.Ftruncate(fd, 5000))
		// Small xattrs, far from the capacity boundary.
		must(p.Fsetxattr(fd, "user.reg", make([]byte, 64), 0))
		buf := make([]byte, 128)
		_, _ = p.Fgetxattr(fd, "user.reg", buf)
		// An over-capacity (but not maximum-size) value: the ENOSPC
		// rejection branch executes — branch coverage, Gcov-green — yet
		// Figure 1's bug needs the exact maximum size and stays hidden.
		_ = p.Fsetxattr(fd, "user.big1", make([]byte, 40_000), 0)
		_ = p.Fsetxattr(fd, "user.big2", make([]byte, 40_000), 0)
		must(p.Close(fd))
		// Re-open read-only, the regression staple.
		fd, e = p.Open(f, sys.O_RDONLY, 0)
		if e == sys.OK {
			_, _ = p.Read(fd, buf)
			must(p.Close(fd))
		}
	}
}

// BoundaryWorkload returns the input-coverage-guided probe for one bug: the
// boundary-value inputs living in partitions the regression workload leaves
// untested (maximum sizes, block-aligned lengths, untested flags, fault
// states).
func BoundaryWorkload(bugID string) Workload {
	switch bugID {
	case "xattr-overflow":
		return func(p *kernel.Proc) {
			fd, e := p.Open("/bx", sys.O_CREAT|sys.O_RDWR, 0o644)
			if e != sys.OK {
				return
			}
			// Walk the setxattr size partitions up to the maximum allowed
			// value — the 2^16 boundary partition IOCov flags as untested.
			for _, size := range []int{1 << 12, 1 << 14, 1 << 16} {
				_ = p.Fsetxattr(fd, "user.a", make([]byte, size), 0)
				_ = p.Fsetxattr(fd, "user.b", make([]byte, size), 0)
			}
			_ = p.Close(fd)
		}
	case "largefile-open":
		return func(p *kernel.Proc) {
			fd, e := p.Open("/big", sys.O_CREAT|sys.O_RDWR|sys.O_LARGEFILE, 0o644)
			if e != sys.OK {
				return
			}
			// Cross the 2 GiB boundary partition with a sparse truncate,
			// then open without O_LARGEFILE — the untested flag case.
			_ = p.Ftruncate(fd, 1<<31)
			_ = p.Close(fd)
			fd, e = p.Open("/big", sys.O_RDONLY, 0)
			if e == sys.OK {
				_ = p.Close(fd)
			}
		}
	case "nowait-write-enospc":
		return func(p *kernel.Proc) {
			// O_NONBLOCK on a regular file is an untested flag-combination
			// partition; an allocating write under it hits the NOWAIT path.
			fd, e := p.Open("/nw", sys.O_CREAT|sys.O_WRONLY|sys.O_NONBLOCK, 0o644)
			if e != sys.OK {
				return
			}
			_, _ = p.Write(fd, make([]byte, 8192))
			_ = p.Close(fd)
		}
	case "truncate-expand":
		return func(p *kernel.Proc) {
			fd, e := p.Open("/te", sys.O_CREAT|sys.O_RDWR, 0o644)
			if e != sys.OK {
				return
			}
			// Exact powers of two are the partition boundaries; the
			// block-aligned ones trigger the short expansion.
			for _, length := range []int64{4096, 8192, 1 << 16, 1 << 20} {
				_ = p.Ftruncate(fd, 0)
				_ = p.Ftruncate(fd, length)
				// Observable divergence: SEEK_END lands short.
				_, _ = p.Lseek(fd, 0, sys.SEEK_END)
			}
			_ = p.Close(fd)
		}
	case "get-branch-errno":
		return func(p *kernel.Proc) {
			fd, e := p.Open("/bb", sys.O_CREAT|sys.O_RDWR, 0o644)
			if e != sys.OK {
				return
			}
			_, _ = p.Write(fd, make([]byte, 4096))
			// Fault campaign: mark the block bad, then exercise the read
			// exit path IOCov's output coverage flags as untested (EIO).
			_ = p.FS().MarkBadBlock(p.FS().Root(), p.Cred(), "/bb")
			_, _ = p.Lseek(fd, 0, sys.SEEK_SET)
			_, _ = p.Read(fd, make([]byte, 4096))
			_ = p.Close(fd)
		}
	default:
		return func(*kernel.Proc) {}
	}
}
