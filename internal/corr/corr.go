// Package corr quantifies the paper's central empirical claim (§2): code
// coverage is weakly correlated with bug detection, while input coverage of
// the trigger partition predicts it almost perfectly.
//
// The study harness generates many small random workloads; for each
// workload and each injected bug class it records three binary variables:
//
//	covered   — the workload executed the buggy code region (Gcov proxy)
//	triggered — the workload's inputs hit the bug's trigger partition
//	            (what IOCov's input coverage measures)
//	detected  — the workload exposed the bug (differential + consistency)
//
// and reports the phi coefficient (Pearson correlation of binary variables)
// of covered→detected vs. triggered→detected. On the paper's account the
// first is weak and the second strong; the harness reproduces exactly that.
package corr

import (
	"fmt"
	"math"
	"math/rand"

	"iocov/internal/bugsim"
	"iocov/internal/kernel"
	"iocov/internal/sys"
	"iocov/internal/vfs"
)

// Observation is one (workload, bug) data point.
type Observation struct {
	BugID     string
	Covered   bool
	Triggered bool
	Detected  bool
}

// Phi computes the phi coefficient between two binary variables given the
// 2x2 contingency counts. Returns 0 when a marginal is empty (undefined
// correlation).
func Phi(n11, n10, n01, n00 int) float64 {
	a, b, c, d := float64(n11), float64(n10), float64(n01), float64(n00)
	den := math.Sqrt((a + b) * (c + d) * (a + c) * (b + d))
	if den == 0 {
		return 0
	}
	return (a*d - b*c) / den
}

// Result aggregates a study run.
type Result struct {
	Workloads    int
	Observations []Observation

	// PhiCoverage is corr(covered, detected) — the code-coverage
	// predictor.
	PhiCoverage float64
	// PhiTrigger is corr(triggered, detected) — the input-coverage
	// predictor.
	PhiTrigger float64
	// CoveredMissedFraction is the fraction of covered observations where
	// the bug was nevertheless missed (the paper's 53% analogue).
	CoveredMissedFraction float64
}

func (r *Result) String() string {
	return fmt.Sprintf("workloads=%d phi(coverage,detect)=%.3f phi(trigger,detect)=%.3f covered-but-missed=%.0f%%",
		r.Workloads, r.PhiCoverage, r.PhiTrigger, 100*r.CoveredMissedFraction)
}

// Config parameterizes a study.
type Config struct {
	// Workloads is the number of random workloads (default 200).
	Workloads int
	// OpsPerWorkload bounds each workload's length (default 12).
	OpsPerWorkload int
	// Seed drives generation.
	Seed int64
}

// Run executes the correlation study over every bug in the bugsim catalog.
func Run(cfg Config) *Result {
	if cfg.Workloads <= 0 {
		cfg.Workloads = 200
	}
	if cfg.OpsPerWorkload <= 0 {
		cfg.OpsPerWorkload = 12
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{Workloads: cfg.Workloads}
	for i := 0; i < cfg.Workloads; i++ {
		seed := rng.Int63()
		for _, bug := range bugsim.Catalog {
			w, triggers := randomWorkload(seed, cfg.OpsPerWorkload, bug.ID)
			out := bugsim.Assess(bug, vfs.DefaultConfig(), w)
			res.Observations = append(res.Observations, Observation{
				BugID:     bug.ID,
				Covered:   out.RegionCovered,
				Triggered: triggers,
				Detected:  out.Detected,
			})
		}
	}
	res.finalize()
	return res
}

func (r *Result) finalize() {
	var cd, cD, Cd, CD int // coverage vs detection contingency
	var td, tD, Td, TD int // trigger vs detection contingency
	var covered, coveredMissed int
	for _, o := range r.Observations {
		switch {
		case o.Covered && o.Detected:
			CD++
		case o.Covered && !o.Detected:
			Cd++
		case !o.Covered && o.Detected:
			cD++
		default:
			cd++
		}
		switch {
		case o.Triggered && o.Detected:
			TD++
		case o.Triggered && !o.Detected:
			Td++
		case !o.Triggered && o.Detected:
			tD++
		default:
			td++
		}
		if o.Covered {
			covered++
			if !o.Detected {
				coveredMissed++
			}
		}
	}
	r.PhiCoverage = Phi(CD, Cd, cD, cd)
	r.PhiTrigger = Phi(TD, Td, tD, td)
	if covered > 0 {
		r.CoveredMissedFraction = float64(coveredMissed) / float64(covered)
	}
}

// randomWorkload builds a deterministic random workload. It reports whether
// the generated inputs include the bug's trigger partition — which is known
// statically from the generated parameters, exactly the way IOCov's input
// coverage would flag it from the trace.
func randomWorkload(seed int64, ops int, bugID string) (bugsim.Workload, bool) {
	rng := rand.New(rand.NewSource(seed))
	type step struct {
		kind    int
		size    int64
		aligned bool
		flags   int
	}
	steps := make([]step, ops)
	triggers := false
	for i := range steps {
		s := step{kind: rng.Intn(6)}
		switch s.kind {
		case 0: // write, occasionally with O_NONBLOCK open
			s.size = int64(1) << uint(rng.Intn(15))
			if rng.Intn(10) == 0 {
				s.flags = sys.O_NONBLOCK
				if bugID == "nowait-write-enospc" {
					triggers = true
				}
			}
		case 1: // truncate
			if rng.Intn(4) == 0 {
				s.size = int64(4096 * (1 + rng.Intn(16)))
				s.aligned = true
				if bugID == "truncate-expand" {
					triggers = true
				}
			} else {
				s.size = int64(1 + rng.Intn(100_000))
				if s.size%4096 == 0 && bugID == "truncate-expand" {
					triggers = true
				}
			}
		case 2: // setxattr
			if rng.Intn(12) == 0 {
				s.size = 1 << 16 // the maximum allowed value
				if bugID == "xattr-overflow" {
					triggers = true
				}
			} else {
				s.size = int64(1 + rng.Intn(4096))
			}
		case 3: // sparse grow + open without O_LARGEFILE
			if rng.Intn(12) == 0 {
				s.size = 1 << 31
				if bugID == "largefile-open" {
					triggers = true
				}
			} else {
				s.size = int64(1 + rng.Intn(1<<20))
			}
		case 4: // bad-block read campaign
			if rng.Intn(12) == 0 {
				s.aligned = true // repurposed: mark bad block
				if bugID == "get-branch-errno" {
					triggers = true
				}
			}
		case 5: // plain read
			s.size = int64(1) << uint(rng.Intn(13))
		}
		steps[i] = s
	}
	w := func(p *kernel.Proc) {
		fd, e := p.Open("/w", sys.O_CREAT|sys.O_RDWR|sys.O_LARGEFILE, 0o644)
		if e != sys.OK {
			return
		}
		defer p.Close(fd)
		for si, s := range steps {
			switch s.kind {
			case 0:
				wfd := fd
				if s.flags != 0 {
					nfd, e := p.Open("/w", sys.O_WRONLY|s.flags, 0)
					if e != sys.OK {
						continue
					}
					_, _ = p.Write(nfd, make([]byte, s.size))
					_ = p.Close(nfd)
					continue
				}
				_, _ = p.Pwrite64(wfd, make([]byte, s.size), int64(si)*131072)
			case 1:
				_ = p.Ftruncate(fd, 0)
				_ = p.Ftruncate(fd, s.size)
				_, _ = p.Lseek(fd, 0, sys.SEEK_END)
			case 2:
				_ = p.Fsetxattr(fd, fmt.Sprintf("user.c%d", si%3), make([]byte, s.size), 0)
			case 3:
				_ = p.Ftruncate(fd, s.size)
				nfd, e := p.Open("/w", sys.O_RDONLY, 0)
				if e == sys.OK {
					_ = p.Close(nfd)
				}
				_ = p.Ftruncate(fd, 4096)
			case 4:
				if s.aligned {
					_ = p.FS().MarkBadBlock(p.FS().Root(), p.Cred(), "/w")
				}
				_, _ = p.Pread64(fd, make([]byte, 512), 0)
			case 5:
				_, _ = p.Pread64(fd, make([]byte, s.size), 0)
			}
		}
	}
	return w, triggers
}
