package corr

import (
	"math"
	"testing"
)

func TestPhi(t *testing.T) {
	// Perfect correlation.
	if got := Phi(10, 0, 0, 10); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect phi = %f", got)
	}
	// Perfect anti-correlation.
	if got := Phi(0, 10, 10, 0); math.Abs(got+1) > 1e-9 {
		t.Errorf("anti phi = %f", got)
	}
	// Independence.
	if got := Phi(5, 5, 5, 5); got != 0 {
		t.Errorf("independent phi = %f", got)
	}
	// Degenerate marginals.
	if got := Phi(10, 5, 0, 0); got != 0 {
		t.Errorf("degenerate phi = %f", got)
	}
}

// TestWeakCodeCoverageCorrelation is the paper's §2 conclusion as an
// executable assertion: across random workloads and the five injected bug
// classes, code coverage correlates weakly with detection while hitting the
// trigger input partition correlates strongly.
func TestWeakCodeCoverageCorrelation(t *testing.T) {
	res := Run(Config{Workloads: 120, Seed: 1})
	t.Log(res)
	if res.PhiTrigger < 0.8 {
		t.Errorf("phi(trigger,detect) = %.3f, want strong (>= 0.8)", res.PhiTrigger)
	}
	if res.PhiCoverage > 0.3 {
		t.Errorf("phi(coverage,detect) = %.3f, want weak (<= 0.3)", res.PhiCoverage)
	}
	if res.PhiTrigger < res.PhiCoverage+0.4 {
		t.Errorf("trigger predictor (%.3f) should dominate coverage predictor (%.3f)",
			res.PhiTrigger, res.PhiCoverage)
	}
	// A majority of covered observations miss the bug (the paper's 53%
	// line-covered-but-missed analogue; exact value depends on trigger
	// rarity).
	if res.CoveredMissedFraction < 0.3 {
		t.Errorf("covered-but-missed = %.2f, expected a substantial fraction", res.CoveredMissedFraction)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(Config{Workloads: 30, Seed: 7})
	b := Run(Config{Workloads: 30, Seed: 7})
	if a.PhiCoverage != b.PhiCoverage || a.PhiTrigger != b.PhiTrigger {
		t.Error("study not deterministic")
	}
	if len(a.Observations) != 30*5 {
		t.Errorf("observations = %d, want 150", len(a.Observations))
	}
}

// TestTriggerImpliesDetectionMostly: the sanity direction — when the
// trigger partition is hit, the bug is almost always detected.
func TestTriggerImpliesDetectionMostly(t *testing.T) {
	res := Run(Config{Workloads: 120, Seed: 3})
	var trig, trigDet int
	for _, o := range res.Observations {
		if o.Triggered {
			trig++
			if o.Detected {
				trigDet++
			}
		}
	}
	if trig == 0 {
		t.Fatal("no triggering workloads generated")
	}
	if float64(trigDet)/float64(trig) < 0.9 {
		t.Errorf("trigger->detect rate = %d/%d", trigDet, trig)
	}
	// And detection without the trigger partition is rare.
	var noTrig, noTrigDet int
	for _, o := range res.Observations {
		if !o.Triggered {
			noTrig++
			if o.Detected {
				noTrigDet++
			}
		}
	}
	if float64(noTrigDet)/float64(noTrig) > 0.1 {
		t.Errorf("spurious detections: %d/%d", noTrigDet, noTrig)
	}
}
