package coverage

import (
	"testing"

	"iocov/internal/raceflag"
	"iocov/internal/sys"
	"iocov/internal/trace"
)

// TestAddSteadyStateAllocs pins the compiled hot path: once a syscall name
// has been seen and its counters exist, Add must not allocate. This is the
// zero-allocation property the dense partition indices buy.
func TestAddSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are unreliable under -race")
	}
	an := NewAnalyzer(DefaultOptions())

	open := trace.Event{Seq: 1, PID: 1, Name: "openat", Path: "/mnt/test/f", Ret: 3}
	open.AddStr("filename", "/mnt/test/f")
	open.AddArg("flags", int64(sys.O_RDWR|sys.O_CREAT|sys.O_TRUNC))
	open.AddArg("mode", 0o644)

	write := trace.Event{Seq: 2, PID: 1, Name: "write", Ret: 4096}
	write.AddArg("fd", 3)
	write.AddArg("count", 4096)

	fail := trace.Event{Seq: 3, PID: 1, Name: "read", Ret: -int64(sys.EBADF), Err: sys.EBADF}
	fail.AddArg("fd", 99)
	fail.AddArg("count", 16)

	skip := trace.Event{Seq: 4, PID: 1, Name: "getpid"}

	// Warm the compiled entries, counters, and scratch buffer.
	for i := 0; i < 4; i++ {
		an.Add(open)
		an.Add(write)
		an.Add(fail)
		an.Add(skip)
	}

	n := testing.AllocsPerRun(200, func() {
		an.Add(open)
		an.Add(write)
		an.Add(fail)
		an.Add(skip)
	})
	if n != 0 {
		t.Fatalf("steady-state Add allocates %.1f times per 4 events, want 0", n)
	}
}
