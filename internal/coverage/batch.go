package coverage

import "iocov/internal/trace"

// batchEntry caches one resolved dispatch decision. resolved distinguishes
// "never seen" from "seen and out of scope" (whose entry is nil).
type batchEntry struct {
	e        *compiledEntry
	resolved bool
}

// Batch is the BatchAdd-style entry point behind the daemon's batch-decode
// fast path: it feeds pre-indexed events into one Analyzer's dense
// partition counters. trace.BatchDecoder reports each record's syscall
// name as a per-stream dictionary ordinal; Batch keys the analyzer's
// compiled dispatch entries on that ordinal, so the steady-state per-event
// dispatch is one slice index instead of a string-keyed map hit — the
// events arrive pre-indexed and the hot loop never hashes a name.
//
// A Batch is bound to a single decode stream: dictionary ordinals are only
// stable within one stream, so the ingest daemon creates one Batch per
// session, next to the session's Analyzer. Like the Analyzer itself it is
// single-goroutine.
type Batch struct {
	a    *Analyzer
	byID []batchEntry
}

// NewBatch returns a batch entry point bound to the analyzer.
func (a *Analyzer) NewBatch() *Batch { return &Batch{a: a} }

// Add analyzes one decoded event. nameID is the syscall name's per-stream
// dictionary ordinal from trace.BatchDecoder.Next (-1 when the name was
// not interned, which falls back to the by-name dispatch map). The event
// is not retained.
//
//iocov:hotpath
func (b *Batch) Add(ev *trace.Event, nameID int) {
	// One unsigned comparison covers both the negative and the
	// out-of-range case.
	if uint(nameID) < uint(len(b.byID)) {
		be := &b.byID[nameID]
		if be.resolved {
			b.a.addCompiled(be.e, ev)
			return
		}
	}
	b.addSlow(ev, nameID)
}

// addSlow resolves the dispatch entry for a first-sight name (or a
// non-interned one) through the analyzer's by-name compilation path and
// caches it under the dictionary ordinal for every later event.
//
//iocov:coldpath
func (b *Batch) addSlow(ev *trace.Event, nameID int) {
	e, seen := b.a.compiled[ev.Name]
	if !seen {
		e = b.a.compile(ev.Name)
	}
	if nameID >= 0 {
		for len(b.byID) <= nameID {
			b.byID = append(b.byID, batchEntry{})
		}
		b.byID[nameID] = batchEntry{e: e, resolved: true}
	}
	b.a.addCompiled(e, ev)
}
