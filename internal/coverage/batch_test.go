package coverage

import (
	"bytes"
	"testing"

	"iocov/internal/raceflag"
	"iocov/internal/sys"
	"iocov/internal/trace"
)

// batchStreamEvents builds a mixed stream: analyzed syscalls, out-of-spec
// names the analyzer must skip, success and failure outcomes.
func batchStreamEvents(n int) []trace.Event {
	var evs []trace.Event
	for i := 0; i < n; i++ {
		var ev trace.Event
		switch i % 4 {
		case 0:
			ev = trace.Event{Seq: uint64(i), PID: 1, Name: "openat", Path: "/mnt/test/f", Ret: 3}
			ev.AddStr("filename", "/mnt/test/f")
			ev.AddArg("flags", int64(sys.O_RDWR|sys.O_CREAT))
			ev.AddArg("mode", 0o644)
		case 1:
			ev = trace.Event{Seq: uint64(i), PID: 1, Name: "write", Ret: int64(1 << (i % 14))}
			ev.AddArg("fd", 3)
			ev.AddArg("count", int64(1<<(i%14)))
		case 2:
			ev = trace.Event{Seq: uint64(i), PID: 2, Name: "read",
				Ret: -int64(sys.EBADF), Err: sys.EBADF}
			ev.AddArg("fd", 99)
			ev.AddArg("count", 16)
		case 3:
			ev = trace.Event{Seq: uint64(i), PID: 2, Name: "bogus_syscall"}
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestBatchMatchesAdd is the Batch entry point's core contract: feeding the
// same events through Batch.Add (with dictionary ordinals, as the batch
// decoder supplies them) must leave the analyzer byte-identical to the
// by-name Add path — including skip accounting for out-of-spec names.
func TestBatchMatchesAdd(t *testing.T) {
	evs := batchStreamEvents(400)

	ref := NewAnalyzer(DefaultOptions())
	for _, ev := range evs {
		ref.Add(ev)
	}

	an := NewAnalyzer(DefaultOptions())
	b := an.NewBatch()
	ids := make(map[string]int)
	for i := range evs {
		id, seen := ids[evs[i].Name]
		if !seen {
			id = len(ids)
			ids[evs[i].Name] = id
		}
		b.Add(&evs[i], id)
	}

	if got, want := snapshotBytes(t, an.Snapshot(0)), snapshotBytes(t, ref.Snapshot(0)); !bytes.Equal(got, want) {
		t.Errorf("Batch snapshot differs from Add snapshot\n got: %.400s\nwant: %.400s", got, want)
	}
	if an.Analyzed() != ref.Analyzed() || an.Skipped() != ref.Skipped() {
		t.Errorf("accounting: batch analyzed=%d skipped=%d, ref analyzed=%d skipped=%d",
			an.Analyzed(), an.Skipped(), ref.Analyzed(), ref.Skipped())
	}
}

// TestBatchUninternedNames: nameID -1 (a literal past the dictionary cap)
// must fall back to by-name dispatch on every event and still analyze
// correctly.
func TestBatchUninternedNames(t *testing.T) {
	evs := batchStreamEvents(40)

	ref := NewAnalyzer(DefaultOptions())
	for _, ev := range evs {
		ref.Add(ev)
	}

	an := NewAnalyzer(DefaultOptions())
	b := an.NewBatch()
	for i := range evs {
		b.Add(&evs[i], -1)
	}

	if got, want := snapshotBytes(t, an.Snapshot(0)), snapshotBytes(t, ref.Snapshot(0)); !bytes.Equal(got, want) {
		t.Errorf("unindexed Batch snapshot differs\n got: %.400s\nwant: %.400s", got, want)
	}
}

// TestBatchSparseOrdinals: ordinals far beyond the number of distinct names
// (a stream whose dictionary is dominated by paths and keys) grow the
// dispatch table without corrupting dispatch.
func TestBatchSparseOrdinals(t *testing.T) {
	an := NewAnalyzer(DefaultOptions())
	b := an.NewBatch()
	ev := trace.Event{Seq: 1, PID: 1, Name: "write", Ret: 8}
	ev.AddArg("fd", 3)
	ev.AddArg("count", 8)
	b.Add(&ev, 900)
	b.Add(&ev, 900)
	b.Add(&ev, 3)
	if an.Analyzed() != 3 {
		t.Errorf("analyzed = %d, want 3", an.Analyzed())
	}
}

// TestBatchAddSteadyStateAllocs pins the fast path end to end: with the
// ordinal table warm, Batch.Add must not allocate for analyzed or skipped
// events.
func TestBatchAddSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are unreliable under -race")
	}
	an := NewAnalyzer(DefaultOptions())
	b := an.NewBatch()
	evs := batchStreamEvents(4)
	for i := 0; i < 4; i++ {
		for j := range evs {
			b.Add(&evs[j], j)
		}
	}
	n := testing.AllocsPerRun(200, func() {
		for j := range evs {
			b.Add(&evs[j], j)
		}
	})
	if n != 0 {
		t.Fatalf("steady-state Batch.Add allocates %.1f times per 4 events, want 0", n)
	}
}
