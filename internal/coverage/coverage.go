// Package coverage implements the IOCov analyzer: it consumes traced
// syscall events (live, or parsed from a trace file), applies variant
// merging and input/output partitioning, and produces the per-partition
// frequency counts behind every figure and table in the paper's evaluation,
// plus untested-partition reports and the Table 1 flag-combination
// statistics.
package coverage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"iocov/internal/partition"
	"iocov/internal/sysspec"
	"iocov/internal/trace"
)

// Options configures an Analyzer.
type Options struct {
	// MergeVariants folds syscall variants into their base syscall
	// (openat -> open). The paper's IOCov always merges; disabling it is
	// the ablation knob.
	MergeVariants bool
	// TrackIdentifiers additionally counts distinct identifier-argument
	// values (paths, fds), a first cut of the paper's future-work item.
	TrackIdentifiers bool
	// IdentifierCap bounds the distinct identifier values retained per
	// argument (0 means 65536); beyond it only the cardinality grows.
	IdentifierCap int
	// TrackCombinations treats each distinct bitmap value (full flag
	// combination) as its own partition, the paper's future-work metric
	// enhancement ("support bit combinations").
	TrackCombinations bool
	// CombinationCap bounds the distinct combinations retained per
	// argument (0 means 4096).
	CombinationCap int
	// ExtendedSyscalls augments the 27-syscall table with the ten
	// future-work syscalls (unlink, rename, fsync, stat, ...).
	ExtendedSyscalls bool
}

// DefaultOptions returns the paper's configuration: variant merging on,
// identifier tracking off.
func DefaultOptions() Options { return Options{MergeVariants: true} }

// Analyzer accumulates input and output coverage. It implements trace.Sink,
// so it can sit directly behind the kernel or a trace filter. An Analyzer is
// not safe for concurrent use: run one analyzer per pipeline, and combine
// sharded pipelines afterwards with Merge (the shard-and-merge pattern used
// by harness.RunParallel).
type Analyzer struct {
	table *sysspec.Table
	opts  Options

	inputs    map[argKey]*ArgCounter
	outputs   map[string]*OutputCounter
	idents    map[argKey]*identCounter
	combos    ComboStats
	bitCombos map[argKey]map[string]int64

	// compiled caches, per raw syscall name, everything Add needs on the
	// steady-state path: the resolved spec, the argument counters that apply
	// to this variant, and the output counter. A nil entry marks an
	// out-of-scope name so repeat offenders cost one map hit. scratch is the
	// reused ordinal buffer handed to partition.Indexer.
	compiled map[string]*compiledEntry
	scratch  []int

	// freeDense holds zeroed dense counter slices retired by Reset, keyed
	// by length, so a pooled analyzer's recompile step reuses its previous
	// life's counter storage instead of allocating it again.
	freeDense map[int][][]int64

	analyzed int64
	skipped  int64
}

// compiledEntry is the per-raw-name dispatch record built on first sight.
type compiledEntry struct {
	name   string // merged name (or the raw name when merging is disabled)
	spec   *sysspec.Spec
	args   []compiledArg
	idents []*sysspec.ArgSpec
	out    *OutputCounter
	isOpen bool
}

// compiledArg pairs a pre-resolved counter with its event key.
type compiledArg struct {
	counter  *ArgCounter
	key      string
	combo    bool // TrackCombinations && bitmap class
	comboKey argKey
}

type argKey struct {
	syscall string // base name, or raw name when merging is disabled
	arg     string
}

// ArgCounter holds the per-partition frequencies for one tracked argument.
type ArgCounter struct {
	// Syscall is the (merged) syscall name.
	Syscall string
	// Arg is the argument name from the spec.
	Arg string
	// Class is the paper's argument class.
	Class sysspec.ArgClass
	// Scheme names the partitioning scheme.
	Scheme string
	// Counts maps partition label to observed frequency. It is a lazily
	// materialized view over the dense ordinal counters, rebuilt by the
	// Analyzer.Input accessor (and by Count) after new events arrive; the
	// hot path itself never touches it.
	Counts map[string]int64

	part   partition.Input
	idx    partition.Indexer
	labels []string // Domain(), cached once
	dense  []int64  // per-ordinal frequencies, indexed like labels
	dirty  bool     // dense changed since Counts was last materialized
}

// OutputCounter holds per-partition output frequencies for one syscall.
type OutputCounter struct {
	// Syscall is the (merged) syscall name.
	Syscall string
	// Counts maps output partition label to frequency. Like
	// ArgCounter.Counts it is a lazily materialized view (see
	// Analyzer.Output).
	Counts map[string]int64

	spec  *sysspec.Spec
	out   *partition.OutputIndexer
	dense []int64
	// extra counts errnos outside the spec's documented universe, which
	// have no ordinal; reports surface them in their Extra section.
	extra map[string]int64
	dirty bool
}

// identCounter tracks distinct identifier values (future-work extension).
type identCounter struct {
	values map[string]int64
	card   int64
	cap    int
}

// ComboStats is the Table 1 raw data: how many open calls combined k flags,
// over all calls and over calls whose access mode is O_RDONLY.
type ComboStats struct {
	// All[k] counts opens using exactly k flags together.
	All map[int]int64
	// Rdonly[k] restricts All to opens whose access mode is O_RDONLY.
	Rdonly map[int]int64
}

// Shared immutable lookup structures. A syscall table, an output indexer,
// and a scheme indexer are all read-only after construction, but they used
// to be rebuilt for every analyzer — a real cost for the ingest daemon,
// which creates one analyzer per session and paid the spec compilation
// again on each stream. Built once, shared by every analyzer.
var (
	stdTableOnce, extTableOnce sync.Once
	stdTable, extTable         *sysspec.Table

	// outputIndexers caches compiled output domains per spec (the spec
	// pointers are themselves process-wide statics from sysspec).
	outputIndexers sync.Map // *sysspec.Spec -> *partition.OutputIndexer

	// schemeIndexers caches the per-scheme indexer and its materialized
	// label domain.
	schemeIndexers sync.Map // scheme string -> schemeIndexer
)

type schemeIndexer struct {
	idx    partition.Indexer
	labels []string
}

func sharedTable(extended bool) *sysspec.Table {
	if extended {
		extTableOnce.Do(func() { extTable = sysspec.NewExtendedTable() })
		return extTable
	}
	stdTableOnce.Do(func() { stdTable = sysspec.NewTable() })
	return stdTable
}

func sharedOutputIndexer(spec *sysspec.Spec) *partition.OutputIndexer {
	if x, ok := outputIndexers.Load(spec); ok {
		return x.(*partition.OutputIndexer)
	}
	x, _ := outputIndexers.LoadOrStore(spec, partition.NewOutputIndexer(spec))
	return x.(*partition.OutputIndexer)
}

func sharedSchemeIndexer(scheme string) schemeIndexer {
	if si, ok := schemeIndexers.Load(scheme); ok {
		return si.(schemeIndexer)
	}
	idx := partition.IndexerForScheme(scheme)
	si, _ := schemeIndexers.LoadOrStore(scheme, schemeIndexer{idx: idx, labels: idx.Domain()})
	return si.(schemeIndexer)
}

// NewAnalyzer builds an analyzer over the standard syscall table (or the
// extended one, with Options.ExtendedSyscalls).
func NewAnalyzer(opts Options) *Analyzer {
	opts = opts.WithDefaults()
	table := sharedTable(opts.ExtendedSyscalls)
	return &Analyzer{
		table:     table,
		opts:      opts,
		inputs:    make(map[argKey]*ArgCounter),
		outputs:   make(map[string]*OutputCounter),
		idents:    make(map[argKey]*identCounter),
		combos:    ComboStats{All: make(map[int]int64), Rdonly: make(map[int]int64)},
		bitCombos: make(map[argKey]map[string]int64),
		compiled:  make(map[string]*compiledEntry),
		// Largest per-value ordinal fanout is an open flags word naming
		// every flag; 32 keeps PartitionIndices from ever growing it.
		scratch: make([]int, 0, 32),
	}
}

// Emit implements trace.Sink.
//
//iocov:hotpath
func (a *Analyzer) Emit(ev trace.Event) { a.Add(ev) }

// Add analyzes one event. Events for syscalls outside the 27-syscall scope
// are counted as skipped and otherwise ignored.
//
// The steady-state path is one compiled-entry map hit followed by dense
// ordinal arithmetic: no label formatting, no []string partitions, no
// string-keyed counter maps. The first event of each raw syscall name pays
// the spec lookup and ArgAppliesTo walk once, in compile.
//
//iocov:hotpath
func (a *Analyzer) Add(ev trace.Event) {
	e, seen := a.compiled[ev.Name]
	if !seen {
		e = a.compile(ev.Name)
	}
	a.addCompiled(e, &ev)
}

// addCompiled is the shared per-event body behind Add and Batch.Add: the
// dispatch entry is already resolved (nil marks an out-of-scope syscall),
// and the event arrives by pointer so the batch path never copies it.
//
//iocov:hotpath
//iocov:bounds-ok dense counters are allocated len(Domain()) long and every ord comes from PartitionIndices/Index over the same domain, whose exhaustiveness domaincheck probes
func (a *Analyzer) addCompiled(e *compiledEntry, ev *trace.Event) {
	if e == nil {
		a.skipped++
		return
	}
	a.analyzed++

	for i := range e.args {
		ca := &e.args[i]
		v, ok := ev.Arg(ca.key)
		if !ok {
			continue
		}
		c := ca.counter
		idxs := c.idx.PartitionIndices(v, a.scratch[:0])
		a.scratch = idxs
		for _, ord := range idxs {
			c.dense[ord]++
		}
		c.dirty = true
		if ca.combo {
			a.addCombination(ca.comboKey, c.labels, idxs)
		}
	}

	if len(e.idents) > 0 {
		for _, arg := range e.idents {
			a.addIdentifier(e.name, arg, ev)
		}
	}

	// Flag-combination statistics for the open family.
	if e.isOpen {
		if flags, ok := ev.Arg("flags"); ok {
			k := partition.FlagComboSize(flags)
			a.combos.All[k]++
			if partition.HasRdonly(flags) {
				a.combos.Rdonly[k]++
			}
		}
	}

	oc := e.out
	if ord, ok := oc.out.Index(ev.Ret, ev.Err); ok {
		oc.dense[ord]++
	} else {
		oc.addExtra(ev)
	}
	oc.dirty = true
}

// addExtra counts an errno outside the documented universe: no ordinal, so
// it is counted by label and surfaces in the report's Extra section. Cold by
// construction — the documented universe covers every errno the simulated
// kernel emits, so reaching here means a foreign trace — and Errno.Name can
// format, so the hot path must not inline it.
//
//iocov:coldpath
func (oc *OutputCounter) addExtra(ev *trace.Event) {
	if oc.extra == nil {
		oc.extra = make(map[string]int64)
	}
	oc.extra[ev.Err.Name()]++
}

// compile resolves everything Add needs for one raw syscall name and caches
// it. Out-of-scope names cache a nil entry.
//
//iocov:coldpath
func (a *Analyzer) compile(raw string) *compiledEntry {
	spec := a.table.Base(raw)
	if spec == nil {
		a.compiled[raw] = nil
		return nil
	}
	name := spec.Base
	if !a.opts.MergeVariants {
		name = raw
	}
	e := &compiledEntry{name: name, spec: spec, isOpen: spec.Base == "open"}
	for i := range spec.Args {
		arg := &spec.Args[i]
		if !arg.ArgAppliesTo(raw) {
			continue
		}
		if arg.Class == sysspec.Identifier {
			if a.opts.TrackIdentifiers {
				e.idents = append(e.idents, arg)
			}
			continue
		}
		e.args = append(e.args, compiledArg{
			counter:  a.argCounter(name, arg),
			key:      arg.Key,
			combo:    a.opts.TrackCombinations && arg.Class == sysspec.Bitmap,
			comboKey: argKey{name, arg.Name},
		})
	}
	e.out = a.outputCounter(name, spec)
	a.compiled[raw] = e
	return e
}

// AddAll analyzes a slice of events.
func (a *Analyzer) AddAll(events []trace.Event) {
	for _, ev := range events {
		a.Add(ev)
	}
}

func (a *Analyzer) argCounter(name string, arg *sysspec.ArgSpec) *ArgCounter {
	k := argKey{name, arg.Name}
	c := a.inputs[k]
	if c == nil {
		si := sharedSchemeIndexer(arg.Scheme)
		c = &ArgCounter{
			Syscall: name,
			Arg:     arg.Name,
			Class:   arg.Class,
			Scheme:  arg.Scheme,
			part:    si.idx,
			idx:     si.idx,
			labels:  si.labels,
			dense:   a.denseFor(len(si.labels)),
		}
		a.inputs[k] = c
	}
	return c
}

// denseFor returns a zeroed dense counter slice of the given length,
// reusing one retired by Reset when available.
func (a *Analyzer) denseFor(n int) []int64 {
	if free := a.freeDense[n]; len(free) > 0 {
		d := free[len(free)-1]
		a.freeDense[n] = free[:len(free)-1]
		return d
	}
	return make([]int64, n)
}

// outputCounter returns (creating on demand) the output counter for name.
func (a *Analyzer) outputCounter(name string, spec *sysspec.Spec) *OutputCounter {
	oc := a.outputs[name]
	if oc == nil {
		out := sharedOutputIndexer(spec)
		oc = &OutputCounter{
			Syscall: name,
			spec:    spec,
			out:     out,
			dense:   a.denseFor(len(out.Domain())),
		}
		a.outputs[name] = oc
	}
	return oc
}

// materialize rebuilds the public Counts view from the dense counters when
// new events have arrived since the last build. Only labels with non-zero
// counts appear, matching the map the per-event path used to maintain.
func (c *ArgCounter) materialize() {
	if !c.dirty && c.Counts != nil {
		return
	}
	m := make(map[string]int64)
	for ord, n := range c.dense {
		if n != 0 {
			m[c.labels[ord]] = n
		}
	}
	c.Counts = m
	c.dirty = false
}

func (c *OutputCounter) materialize() {
	if !c.dirty && c.Counts != nil {
		return
	}
	domain := c.out.Domain()
	m := make(map[string]int64)
	for ord, n := range c.dense {
		if n != 0 {
			m[domain[ord]] = n
		}
	}
	for label, n := range c.extra {
		m[label] += n
	}
	c.Counts = m
	c.dirty = false
}

//iocov:coldpath
func (a *Analyzer) addIdentifier(name string, arg *sysspec.ArgSpec, ev *trace.Event) {
	k := argKey{name, arg.Name}
	c := a.idents[k]
	if c == nil {
		c = &identCounter{values: make(map[string]int64), cap: a.opts.IdentifierCap}
		a.idents[k] = c
	}
	var v string
	if s, ok := ev.Str(arg.Key); ok {
		v = s
	} else if n, ok := ev.Arg(arg.Key); ok {
		v = fmt.Sprintf("%d", n)
	} else {
		return
	}
	if _, seen := c.values[v]; seen {
		c.values[v]++
		return
	}
	c.card++
	if len(c.values) < c.cap {
		c.values[v] = 1
	}
}

// addCombination counts a full bitmap combination as its own partition
// (future-work metric: bit combinations). The label is the joined flag
// names in partition order, e.g. "O_RDWR|O_CREAT|O_TRUNC", rebuilt here
// from the ordinals the hot path produced. Cold: only runs when the
// BitCombos option is on, which the paper-replication configs leave off.
//
//iocov:coldpath
func (a *Analyzer) addCombination(k argKey, labels []string, idxs []int) {
	m := a.bitCombos[k]
	if m == nil {
		m = make(map[string]int64)
		a.bitCombos[k] = m
	}
	var b strings.Builder
	for i, ord := range idxs {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(labels[ord])
	}
	label := b.String()
	if _, seen := m[label]; !seen && len(m) >= a.opts.CombinationCap {
		return
	}
	m[label]++
}

// Combinations returns the distinct bitmap-combination counts recorded for
// an argument (nil unless TrackCombinations was set), sorted by descending
// frequency then label.
//
//iocov:deterministic
func (a *Analyzer) Combinations(syscall, arg string) []Row {
	m := a.bitCombos[argKey{syscall, arg}]
	if m == nil {
		return nil
	}
	rows := make([]Row, 0, len(m))
	for label, n := range m {
		rows = append(rows, Row{Label: label, Count: n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Label < rows[j].Label
	})
	return rows
}

// DistinctCombinations returns how many distinct bitmap combinations were
// observed for an argument.
func (a *Analyzer) DistinctCombinations(syscall, arg string) int {
	return len(a.bitCombos[argKey{syscall, arg}])
}

// PartitionHits returns, per (merged) syscall name, the total number of
// partition-counter increments recorded: every input-partition hit plus
// every output-partition hit, including errnos outside the documented
// universe. The aggregation daemon exports these as its per-syscall
// Prometheus counters.
//
//iocov:deterministic
func (a *Analyzer) PartitionHits() map[string]int64 {
	out := make(map[string]int64)
	for k, c := range a.inputs {
		out[k.syscall] += c.Total()
	}
	for name, c := range a.outputs {
		var t int64
		for _, n := range c.dense {
			t += n
		}
		for _, n := range c.extra {
			t += n
		}
		out[name] += t
	}
	return out
}

// Analyzed returns the number of in-scope events processed.
func (a *Analyzer) Analyzed() int64 { return a.analyzed }

// Skipped returns the number of out-of-scope events ignored.
func (a *Analyzer) Skipped() int64 { return a.skipped }

// Combos returns the flag-combination statistics (Table 1 raw data).
func (a *Analyzer) Combos() ComboStats { return a.combos }

// IdentifierCardinality returns the number of distinct values observed for
// an identifier argument (0 unless TrackIdentifiers was set).
func (a *Analyzer) IdentifierCardinality(syscall, arg string) int64 {
	c := a.idents[argKey{syscall, arg}]
	if c == nil {
		return 0
	}
	return c.card
}

// Syscalls returns the syscall names with any recorded coverage, sorted.
func (a *Analyzer) Syscalls() []string {
	seen := make(map[string]bool)
	for k := range a.inputs {
		seen[k.syscall] = true
	}
	for name := range a.outputs {
		seen[name] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Input returns the counter for one argument, or nil when nothing was
// recorded for it. The returned counter's Counts view reflects every event
// added so far.
func (a *Analyzer) Input(syscall, arg string) *ArgCounter {
	c := a.inputs[argKey{syscall, arg}]
	if c != nil {
		c.materialize()
	}
	return c
}

// Output returns the output counter for a syscall, or nil. The returned
// counter's Counts view reflects every event added so far.
func (a *Analyzer) Output(syscall string) *OutputCounter {
	c := a.outputs[syscall]
	if c != nil {
		c.materialize()
	}
	return c
}

// Count returns the frequency of one input partition (0 when untested).
func (c *ArgCounter) Count(label string) int64 {
	c.materialize()
	return c.Counts[label]
}

// Domain returns the argument's full partition domain.
func (c *ArgCounter) Domain() []string { return c.labels }

// Total returns the sum of all partition counts.
func (c *ArgCounter) Total() int64 {
	var t int64
	for _, n := range c.dense {
		t += n
	}
	return t
}

// Count returns the frequency of one output partition.
func (c *OutputCounter) Count(label string) int64 {
	c.materialize()
	return c.Counts[label]
}

// Domain returns the syscall's full output partition domain.
func (c *OutputCounter) Domain() []string { return c.out.Domain() }

// SuccessCount sums the success partitions.
func (c *OutputCounter) SuccessCount() int64 {
	var t int64
	for _, n := range c.dense[:c.out.SuccessOrdinals()] {
		t += n
	}
	return t
}

// ErrorCount sums the failure partitions. Extra (undocumented) errnos are
// failures by construction: every success partition has an ordinal.
func (c *OutputCounter) ErrorCount() int64 {
	var t int64
	for _, n := range c.dense[c.out.SuccessOrdinals():] {
		t += n
	}
	for _, n := range c.extra {
		t += n
	}
	return t
}
