// Package coverage implements the IOCov analyzer: it consumes traced
// syscall events (live, or parsed from a trace file), applies variant
// merging and input/output partitioning, and produces the per-partition
// frequency counts behind every figure and table in the paper's evaluation,
// plus untested-partition reports and the Table 1 flag-combination
// statistics.
package coverage

import (
	"fmt"
	"sort"
	"strings"

	"iocov/internal/partition"
	"iocov/internal/sysspec"
	"iocov/internal/trace"
)

// Options configures an Analyzer.
type Options struct {
	// MergeVariants folds syscall variants into their base syscall
	// (openat -> open). The paper's IOCov always merges; disabling it is
	// the ablation knob.
	MergeVariants bool
	// TrackIdentifiers additionally counts distinct identifier-argument
	// values (paths, fds), a first cut of the paper's future-work item.
	TrackIdentifiers bool
	// IdentifierCap bounds the distinct identifier values retained per
	// argument (0 means 65536); beyond it only the cardinality grows.
	IdentifierCap int
	// TrackCombinations treats each distinct bitmap value (full flag
	// combination) as its own partition, the paper's future-work metric
	// enhancement ("support bit combinations").
	TrackCombinations bool
	// CombinationCap bounds the distinct combinations retained per
	// argument (0 means 4096).
	CombinationCap int
	// ExtendedSyscalls augments the 27-syscall table with the ten
	// future-work syscalls (unlink, rename, fsync, stat, ...).
	ExtendedSyscalls bool
}

// DefaultOptions returns the paper's configuration: variant merging on,
// identifier tracking off.
func DefaultOptions() Options { return Options{MergeVariants: true} }

// Analyzer accumulates input and output coverage. It implements trace.Sink,
// so it can sit directly behind the kernel or a trace filter. An Analyzer is
// not safe for concurrent use: run one analyzer per pipeline, and combine
// sharded pipelines afterwards with Merge (the shard-and-merge pattern used
// by harness.RunParallel).
type Analyzer struct {
	table *sysspec.Table
	opts  Options

	inputs    map[argKey]*ArgCounter
	outputs   map[string]*OutputCounter
	idents    map[argKey]*identCounter
	combos    ComboStats
	bitCombos map[argKey]map[string]int64

	analyzed int64
	skipped  int64
}

type argKey struct {
	syscall string // base name, or raw name when merging is disabled
	arg     string
}

// ArgCounter holds the per-partition frequencies for one tracked argument.
type ArgCounter struct {
	// Syscall is the (merged) syscall name.
	Syscall string
	// Arg is the argument name from the spec.
	Arg string
	// Class is the paper's argument class.
	Class sysspec.ArgClass
	// Scheme names the partitioning scheme.
	Scheme string
	// Counts maps partition label to observed frequency.
	Counts map[string]int64

	part partition.Input
}

// OutputCounter holds per-partition output frequencies for one syscall.
type OutputCounter struct {
	// Syscall is the (merged) syscall name.
	Syscall string
	// Counts maps output partition label to frequency.
	Counts map[string]int64

	spec *sysspec.Spec
}

// identCounter tracks distinct identifier values (future-work extension).
type identCounter struct {
	values map[string]int64
	card   int64
	cap    int
}

// ComboStats is the Table 1 raw data: how many open calls combined k flags,
// over all calls and over calls whose access mode is O_RDONLY.
type ComboStats struct {
	// All[k] counts opens using exactly k flags together.
	All map[int]int64
	// Rdonly[k] restricts All to opens whose access mode is O_RDONLY.
	Rdonly map[int]int64
}

// NewAnalyzer builds an analyzer over the standard syscall table (or the
// extended one, with Options.ExtendedSyscalls).
func NewAnalyzer(opts Options) *Analyzer {
	if opts.IdentifierCap <= 0 {
		opts.IdentifierCap = 65536
	}
	if opts.CombinationCap <= 0 {
		opts.CombinationCap = 4096
	}
	table := sysspec.NewTable()
	if opts.ExtendedSyscalls {
		table = sysspec.NewExtendedTable()
	}
	return &Analyzer{
		table:     table,
		opts:      opts,
		inputs:    make(map[argKey]*ArgCounter),
		outputs:   make(map[string]*OutputCounter),
		idents:    make(map[argKey]*identCounter),
		combos:    ComboStats{All: make(map[int]int64), Rdonly: make(map[int]int64)},
		bitCombos: make(map[argKey]map[string]int64),
	}
}

// Emit implements trace.Sink.
func (a *Analyzer) Emit(ev trace.Event) { a.Add(ev) }

// Add analyzes one event. Events for syscalls outside the 27-syscall scope
// are counted as skipped and otherwise ignored.
func (a *Analyzer) Add(ev trace.Event) {
	spec := a.table.Base(ev.Name)
	if spec == nil {
		a.skipped++
		return
	}
	a.analyzed++
	name := spec.Base
	if !a.opts.MergeVariants {
		name = ev.Name
	}

	for i := range spec.Args {
		arg := &spec.Args[i]
		if !arg.ArgAppliesTo(ev.Name) {
			continue
		}
		if arg.Class == sysspec.Identifier {
			if a.opts.TrackIdentifiers {
				a.addIdentifier(name, arg, ev)
			}
			continue
		}
		v, ok := ev.Arg(arg.Key)
		if !ok {
			continue
		}
		c := a.argCounter(name, arg)
		labels := c.part.Partitions(v)
		for _, label := range labels {
			c.Counts[label]++
		}
		if a.opts.TrackCombinations && arg.Class == sysspec.Bitmap {
			a.addCombination(argKey{name, arg.Name}, labels)
		}
	}

	// Flag-combination statistics for the open family.
	if spec.Base == "open" {
		if flags, ok := ev.Arg("flags"); ok {
			k := partition.FlagComboSize(flags)
			a.combos.All[k]++
			if partition.HasRdonly(flags) {
				a.combos.Rdonly[k]++
			}
		}
	}

	oc := a.outputs[name]
	if oc == nil {
		oc = &OutputCounter{Syscall: name, Counts: make(map[string]int64), spec: spec}
		a.outputs[name] = oc
	}
	oc.Counts[partition.Output(spec.Ret, ev.Ret, ev.Err)]++
}

// AddAll analyzes a slice of events.
func (a *Analyzer) AddAll(events []trace.Event) {
	for _, ev := range events {
		a.Add(ev)
	}
}

func (a *Analyzer) argCounter(name string, arg *sysspec.ArgSpec) *ArgCounter {
	k := argKey{name, arg.Name}
	c := a.inputs[k]
	if c == nil {
		c = &ArgCounter{
			Syscall: name,
			Arg:     arg.Name,
			Class:   arg.Class,
			Scheme:  arg.Scheme,
			Counts:  make(map[string]int64),
			part:    partition.ForScheme(arg.Scheme),
		}
		a.inputs[k] = c
	}
	return c
}

func (a *Analyzer) addIdentifier(name string, arg *sysspec.ArgSpec, ev trace.Event) {
	k := argKey{name, arg.Name}
	c := a.idents[k]
	if c == nil {
		c = &identCounter{values: make(map[string]int64), cap: a.opts.IdentifierCap}
		a.idents[k] = c
	}
	var v string
	if s, ok := ev.Str(arg.Key); ok {
		v = s
	} else if n, ok := ev.Arg(arg.Key); ok {
		v = fmt.Sprintf("%d", n)
	} else {
		return
	}
	if _, seen := c.values[v]; seen {
		c.values[v]++
		return
	}
	c.card++
	if len(c.values) < c.cap {
		c.values[v] = 1
	}
}

// addCombination counts a full bitmap combination as its own partition
// (future-work metric: bit combinations). The label is the joined flag
// names, e.g. "O_RDWR|O_CREAT|O_TRUNC".
func (a *Analyzer) addCombination(k argKey, labels []string) {
	m := a.bitCombos[k]
	if m == nil {
		m = make(map[string]int64)
		a.bitCombos[k] = m
	}
	label := strings.Join(labels, "|")
	if _, seen := m[label]; !seen && len(m) >= a.opts.CombinationCap {
		return
	}
	m[label]++
}

// Combinations returns the distinct bitmap-combination counts recorded for
// an argument (nil unless TrackCombinations was set), sorted by descending
// frequency then label.
func (a *Analyzer) Combinations(syscall, arg string) []Row {
	m := a.bitCombos[argKey{syscall, arg}]
	if m == nil {
		return nil
	}
	rows := make([]Row, 0, len(m))
	for label, n := range m {
		rows = append(rows, Row{Label: label, Count: n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Label < rows[j].Label
	})
	return rows
}

// DistinctCombinations returns how many distinct bitmap combinations were
// observed for an argument.
func (a *Analyzer) DistinctCombinations(syscall, arg string) int {
	return len(a.bitCombos[argKey{syscall, arg}])
}

// Analyzed returns the number of in-scope events processed.
func (a *Analyzer) Analyzed() int64 { return a.analyzed }

// Skipped returns the number of out-of-scope events ignored.
func (a *Analyzer) Skipped() int64 { return a.skipped }

// Combos returns the flag-combination statistics (Table 1 raw data).
func (a *Analyzer) Combos() ComboStats { return a.combos }

// IdentifierCardinality returns the number of distinct values observed for
// an identifier argument (0 unless TrackIdentifiers was set).
func (a *Analyzer) IdentifierCardinality(syscall, arg string) int64 {
	c := a.idents[argKey{syscall, arg}]
	if c == nil {
		return 0
	}
	return c.card
}

// Syscalls returns the syscall names with any recorded coverage, sorted.
func (a *Analyzer) Syscalls() []string {
	seen := make(map[string]bool)
	for k := range a.inputs {
		seen[k.syscall] = true
	}
	for name := range a.outputs {
		seen[name] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Input returns the counter for one argument, or nil when nothing was
// recorded for it.
func (a *Analyzer) Input(syscall, arg string) *ArgCounter {
	return a.inputs[argKey{syscall, arg}]
}

// Output returns the output counter for a syscall, or nil.
func (a *Analyzer) Output(syscall string) *OutputCounter {
	return a.outputs[syscall]
}

// Count returns the frequency of one input partition (0 when untested).
func (c *ArgCounter) Count(label string) int64 { return c.Counts[label] }

// Domain returns the argument's full partition domain.
func (c *ArgCounter) Domain() []string { return c.part.Domain() }

// Total returns the sum of all partition counts.
func (c *ArgCounter) Total() int64 {
	var t int64
	for _, n := range c.Counts {
		t += n
	}
	return t
}

// Count returns the frequency of one output partition.
func (c *OutputCounter) Count(label string) int64 { return c.Counts[label] }

// Domain returns the syscall's full output partition domain.
func (c *OutputCounter) Domain() []string { return partition.OutputDomain(c.spec) }

// SuccessCount sums the success partitions.
func (c *OutputCounter) SuccessCount() int64 {
	var t int64
	for label, n := range c.Counts {
		if partition.IsSuccess(label) {
			t += n
		}
	}
	return t
}

// ErrorCount sums the failure partitions.
func (c *OutputCounter) ErrorCount() int64 {
	var t int64
	for label, n := range c.Counts {
		if !partition.IsSuccess(label) {
			t += n
		}
	}
	return t
}
