package coverage

import (
	"reflect"
	"testing"

	"iocov/internal/sys"
	"iocov/internal/trace"
)

func openEvent(flags, mode int64, ret int64, err sys.Errno) trace.Event {
	return trace.Event{
		Name: "open", Path: "/f", PID: 1,
		Strs: map[string]string{"filename": "/f"},
		Args: map[string]int64{"flags": flags, "mode": mode},
		Ret:  ret, Err: err,
	}
}

func writeEvent(count int64, ret int64, err sys.Errno) trace.Event {
	return trace.Event{
		Name: "write", PID: 1,
		Args: map[string]int64{"fd": 3, "count": count},
		Ret:  ret, Err: err,
	}
}

func TestInputCoverageOpenFlags(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(openEvent(0, 0, 3, sys.OK))                                             // O_RDONLY
	a.Add(openEvent(int64(sys.O_WRONLY|sys.O_CREAT), 0o644, 4, sys.OK))           // 2 flags
	a.Add(openEvent(int64(sys.O_RDWR|sys.O_CREAT|sys.O_TRUNC), 0o644, 5, sys.OK)) // 3 flags
	c := a.Input("open", "flags")
	if c == nil {
		t.Fatal("no open flags coverage")
	}
	if c.Count("O_RDONLY") != 1 || c.Count("O_CREAT") != 2 || c.Count("O_TRUNC") != 1 {
		t.Errorf("counts = %v", c.Counts)
	}
	if c.Count("O_SYNC") != 0 {
		t.Errorf("O_SYNC = %d, want 0", c.Count("O_SYNC"))
	}
	rep := a.InputReport("open", "flags")
	if rep.DomainSize() != 21 { // 20 flags + O_ACCMODE_INVALID
		t.Errorf("domain = %d", rep.DomainSize())
	}
	if rep.Covered() != 6 { // O_RDONLY, O_WRONLY, O_RDWR, O_CREAT, O_TRUNC... count: RDONLY,WRONLY,CREAT,RDWR,TRUNC = 5
		// O_RDONLY, O_WRONLY, O_RDWR, O_CREAT, O_TRUNC = 5 covered
		if rep.Covered() != 5 {
			t.Errorf("covered = %d, want 5", rep.Covered())
		}
	}
	untested := rep.Untested()
	for _, label := range untested {
		if label == "O_CREAT" {
			t.Error("O_CREAT reported untested")
		}
	}
}

func TestVariantMerging(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(trace.Event{Name: "openat", Path: "/f", PID: 1,
		Args: map[string]int64{"dfd": -100, "flags": 0, "mode": 0}, Ret: 3})
	a.Add(trace.Event{Name: "creat", Path: "/f", PID: 1,
		Args: map[string]int64{"mode": 0o644}, Ret: 4})
	a.Add(openEvent(0, 0, 5, sys.OK))
	c := a.Input("open", "flags")
	// creat has no flags argument, so only openat + open contribute.
	if c.Count("O_RDONLY") != 2 {
		t.Errorf("merged O_RDONLY = %d, want 2", c.Count("O_RDONLY"))
	}
	// But all three land in open's output space.
	oc := a.Output("open")
	if oc.Count("OK") != 3 {
		t.Errorf("merged OK = %d, want 3", oc.Count("OK"))
	}
}

func TestMergingDisabled(t *testing.T) {
	a := NewAnalyzer(Options{MergeVariants: false})
	a.Add(trace.Event{Name: "openat", Path: "/f", PID: 1,
		Args: map[string]int64{"flags": 0, "mode": 0}, Ret: 3})
	a.Add(openEvent(0, 0, 4, sys.OK))
	if a.Output("open").Count("OK") != 1 {
		t.Errorf("open OK = %d, want 1", a.Output("open").Count("OK"))
	}
	if a.Output("openat").Count("OK") != 1 {
		t.Errorf("openat OK = %d, want 1", a.Output("openat").Count("OK"))
	}
}

func TestWriteSizePartitions(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(writeEvent(0, 0, sys.OK))
	a.Add(writeEvent(1, 1, sys.OK))
	a.Add(writeEvent(1024, 1024, sys.OK))
	a.Add(writeEvent(2000, 2000, sys.OK))
	a.Add(writeEvent(1<<28, 1<<28, sys.OK))
	c := a.Input("write", "count")
	if c.Count("=0") != 1 || c.Count("2^0") != 1 || c.Count("2^10") != 2 || c.Count("2^28") != 1 {
		t.Errorf("counts = %v", c.Counts)
	}
}

func TestOutputCoverage(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(openEvent(0, 0, 3, sys.OK))
	a.Add(openEvent(0, 0, -2, sys.ENOENT))
	a.Add(openEvent(0, 0, -13, sys.EACCES))
	a.Add(openEvent(0, 0, -2, sys.ENOENT))
	oc := a.Output("open")
	if oc.Count("OK") != 1 || oc.Count("ENOENT") != 2 || oc.Count("EACCES") != 1 {
		t.Errorf("output counts = %v", oc.Counts)
	}
	if oc.SuccessCount() != 1 || oc.ErrorCount() != 3 {
		t.Errorf("success/error = %d/%d", oc.SuccessCount(), oc.ErrorCount())
	}
	rep := a.OutputReport("open")
	if rep.DomainSize() != 28 {
		t.Errorf("output domain = %d", rep.DomainSize())
	}
	if got := len(rep.Untested()); got != 25 {
		t.Errorf("untested outputs = %d, want 25", got)
	}
}

func TestWriteOutputByteBuckets(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(writeEvent(4096, 4096, sys.OK))
	a.Add(writeEvent(10, 10, sys.OK))
	a.Add(writeEvent(10, 0, sys.ENOSPC))
	oc := a.Output("write")
	if oc.Count("OK:2^12") != 1 || oc.Count("OK:2^3") != 1 || oc.Count("ENOSPC") != 1 {
		t.Errorf("write output = %v", oc.Counts)
	}
}

func TestExtraErrnoOutsideManPage(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	// read's man page does not document ENOSPC; the analyzer must surface
	// it as an extra partition, not lose it.
	a.Add(trace.Event{Name: "read", PID: 1,
		Args: map[string]int64{"fd": 3, "count": 10},
		Ret:  -int64(sys.ENOSPC), Err: sys.ENOSPC})
	rep := a.OutputReport("read")
	if len(rep.Extra) != 1 || rep.Extra[0].Label != "ENOSPC" {
		t.Errorf("extra = %v", rep.Extra)
	}
}

func TestComboStats(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(openEvent(0, 0, 3, sys.OK))                                   // 1 flag, rdonly
	a.Add(openEvent(int64(sys.O_WRONLY|sys.O_CREAT), 0o644, 4, sys.OK)) // 2 flags
	a.Add(openEvent(int64(sys.O_CREAT|sys.O_TRUNC), 0o644, 5, sys.OK))  // 3 flags w/ rdonly
	a.Add(openEvent(int64(sys.O_CREAT|sys.O_TRUNC), 0o644, 6, sys.OK))  // again
	combos := a.Combos()
	if combos.All[1] != 1 || combos.All[2] != 1 || combos.All[3] != 2 {
		t.Errorf("all combos = %v", combos.All)
	}
	if combos.Rdonly[1] != 1 || combos.Rdonly[3] != 2 || combos.Rdonly[2] != 0 {
		t.Errorf("rdonly combos = %v", combos.Rdonly)
	}
	rows := a.ComboTable(6)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Pct[0] != 25 || rows[0].Pct[2] != 50 {
		t.Errorf("all pct = %v", rows[0].Pct)
	}
	if a.MaxComboSize() != 3 {
		t.Errorf("max combo = %d", a.MaxComboSize())
	}
}

func TestSkippedOutOfScope(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(trace.Event{Name: "unlink", Path: "/f", PID: 1})
	a.Add(trace.Event{Name: "fsync", PID: 1, Args: map[string]int64{"fd": 3}})
	a.Add(openEvent(0, 0, 3, sys.OK))
	if a.Analyzed() != 1 || a.Skipped() != 2 {
		t.Errorf("analyzed/skipped = %d/%d", a.Analyzed(), a.Skipped())
	}
}

func TestPreadOffsetOnlyForPread(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	// A plain read event carrying a "pos" key by accident must not count,
	// because the spec restricts the pos argument to pread64.
	a.Add(trace.Event{Name: "read", PID: 1,
		Args: map[string]int64{"fd": 3, "count": 10, "pos": 5}, Ret: 10})
	if c := a.Input("read", "pos"); c != nil {
		t.Errorf("read pos counted: %v", c.Counts)
	}
	a.Add(trace.Event{Name: "pread64", PID: 1,
		Args: map[string]int64{"fd": 3, "count": 10, "pos": 5}, Ret: 10})
	c := a.Input("read", "pos")
	if c == nil || c.Count("2^2") != 1 {
		t.Errorf("pread pos missing: %+v", c)
	}
}

func TestLseekWhenceCoverage(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	for w := int64(0); w < 3; w++ {
		a.Add(trace.Event{Name: "lseek", PID: 1,
			Args: map[string]int64{"fd": 3, "offset": 0, "whence": w}, Ret: 0})
	}
	rep := a.InputReport("lseek", "whence")
	if rep.Covered() != 3 {
		t.Errorf("whence covered = %d, want 3", rep.Covered())
	}
	want := []string{"SEEK_DATA", "SEEK_HOLE", "invalid"}
	if !reflect.DeepEqual(rep.Untested(), want) {
		t.Errorf("untested = %v, want %v", rep.Untested(), want)
	}
}

func TestIdentifierTracking(t *testing.T) {
	a := NewAnalyzer(Options{MergeVariants: true, TrackIdentifiers: true})
	a.Add(openEvent(0, 0, 3, sys.OK))
	a.Add(openEvent(0, 0, 4, sys.OK)) // same path
	a.Add(trace.Event{Name: "open", Path: "/g", PID: 1,
		Strs: map[string]string{"filename": "/g"},
		Args: map[string]int64{"flags": 0, "mode": 0}, Ret: 5})
	if got := a.IdentifierCardinality("open", "filename"); got != 2 {
		t.Errorf("distinct paths = %d, want 2", got)
	}
	// fd identifiers on read.
	a.Add(trace.Event{Name: "read", PID: 1, Args: map[string]int64{"fd": 3, "count": 1}, Ret: 1})
	a.Add(trace.Event{Name: "read", PID: 1, Args: map[string]int64{"fd": 4, "count": 1}, Ret: 1})
	if got := a.IdentifierCardinality("read", "fd"); got != 2 {
		t.Errorf("distinct fds = %d, want 2", got)
	}
}

func TestUntestedAll(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(openEvent(0, 0, 3, sys.OK))
	sums := a.UntestedAll(34)
	if len(sums) == 0 {
		t.Fatal("no untested summaries")
	}
	var foundFlags bool
	for _, s := range sums {
		if s.Syscall == "open" && s.Arg == "flags" {
			foundFlags = true
			if len(s.Labels) != 20 { // 21-label domain - O_RDONLY
				t.Errorf("open flags untested = %d, want 20", len(s.Labels))
			}
		}
	}
	if !foundFlags {
		t.Error("open flags missing from summary")
	}
}

func TestReportHelpers(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(writeEvent(8, 8, sys.OK))
	rep := a.InputReport("write", "count")
	if rep.Fraction() <= 0 || rep.Fraction() >= 1 {
		t.Errorf("fraction = %f", rep.Fraction())
	}
	if rep.MaxCount() != 1 {
		t.Errorf("max = %d", rep.MaxCount())
	}
	trimmed := rep.TrimZeroTail(2)
	// write count domain: <0, =0, 2^0..2^63. Bucket 2^3 is index 5 → 6 rows.
	if len(trimmed.Rows) != 6 {
		t.Errorf("trimmed rows = %d, want 6", len(trimmed.Rows))
	}
	freqs := rep.Frequencies()
	labels := rep.Labels()
	if len(freqs) != len(labels) || len(freqs) != rep.DomainSize() {
		t.Error("frequencies/labels length mismatch")
	}
}

func TestAnalyzerAsSink(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	var sink trace.Sink = a
	sink.Emit(openEvent(0, 0, 3, sys.OK))
	if a.Analyzed() != 1 {
		t.Error("Emit did not analyze")
	}
}

func TestAddAll(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.AddAll([]trace.Event{openEvent(0, 0, 3, sys.OK), writeEvent(1, 1, sys.OK)})
	if a.Analyzed() != 2 {
		t.Errorf("analyzed = %d", a.Analyzed())
	}
	if got := a.Syscalls(); !reflect.DeepEqual(got, []string{"open", "write"}) {
		t.Errorf("syscalls = %v", got)
	}
}

func TestComboTableDeterministic(t *testing.T) {
	// Overflow folding sums floats; ComboTable must add them in sorted key
	// order so repeated renders of one histogram are bit-identical even
	// though Go randomizes map iteration.
	a := NewAnalyzer(DefaultOptions())
	for k, n := range map[int]int64{1: 7, 2: 3, 3: 11, 4: 5, 5: 2, 6: 9, 7: 1, 8: 13} {
		a.combos.All[k] = n
		a.combos.Rdonly[k] = n / 2
	}
	want := a.ComboTable(3)
	for i := 0; i < 100; i++ {
		if got := a.ComboTable(3); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: ComboTable diverged:\n got %+v\nwant %+v", i, got, want)
		}
	}
}
