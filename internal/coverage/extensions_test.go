package coverage

import (
	"testing"

	"iocov/internal/sys"
	"iocov/internal/trace"
)

func TestCombinationTracking(t *testing.T) {
	a := NewAnalyzer(Options{MergeVariants: true, TrackCombinations: true})
	a.Add(openEvent(int64(sys.O_RDWR|sys.O_CREAT|sys.O_TRUNC), 0o644, 3, sys.OK))
	a.Add(openEvent(int64(sys.O_RDWR|sys.O_CREAT|sys.O_TRUNC), 0o644, 4, sys.OK))
	a.Add(openEvent(0, 0, 5, sys.OK))
	rows := a.Combinations("open", "flags")
	if len(rows) != 2 {
		t.Fatalf("combinations = %v", rows)
	}
	if rows[0].Label != "O_RDWR|O_CREAT|O_TRUNC" || rows[0].Count != 2 {
		t.Errorf("top combination = %+v", rows[0])
	}
	if rows[1].Label != "O_RDONLY" || rows[1].Count != 1 {
		t.Errorf("second combination = %+v", rows[1])
	}
	if a.DistinctCombinations("open", "flags") != 2 {
		t.Errorf("distinct = %d", a.DistinctCombinations("open", "flags"))
	}
	// Mode bitmap combinations are tracked too.
	if a.DistinctCombinations("open", "mode") == 0 {
		t.Error("mode combinations not tracked")
	}
}

func TestCombinationTrackingOffByDefault(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(openEvent(0, 0, 3, sys.OK))
	if a.Combinations("open", "flags") != nil {
		t.Error("combinations tracked without option")
	}
}

func TestCombinationCap(t *testing.T) {
	a := NewAnalyzer(Options{MergeVariants: true, TrackCombinations: true, CombinationCap: 2})
	for _, flags := range []int64{0, int64(sys.O_WRONLY), int64(sys.O_RDWR), int64(sys.O_WRONLY | sys.O_CREAT)} {
		a.Add(openEvent(flags, 0, 3, sys.OK))
	}
	if got := a.DistinctCombinations("open", "flags"); got != 2 {
		t.Errorf("capped distinct = %d, want 2", got)
	}
	// Counting existing combinations still works at the cap.
	a.Add(openEvent(0, 0, 3, sys.OK))
	rows := a.Combinations("open", "flags")
	if rows[0].Count != 2 {
		t.Errorf("recount at cap = %+v", rows[0])
	}
}

func TestExtendedSyscalls(t *testing.T) {
	a := NewAnalyzer(Options{MergeVariants: true, ExtendedSyscalls: true})
	a.Add(trace.Event{Name: "unlink", Path: "/f",
		Strs: map[string]string{"pathname": "/f"}, Ret: 0})
	a.Add(trace.Event{Name: "rename", Path: "/a",
		Strs: map[string]string{"oldname": "/a", "newname": "/b"},
		Ret:  -int64(sys.ENOENT), Err: sys.ENOENT})
	a.Add(trace.Event{Name: "fsync", Args: map[string]int64{"fd": 3}, Ret: 0})
	a.Add(trace.Event{Name: "renameat2", Path: "/a",
		Strs: map[string]string{"oldname": "/a", "newname": "/b"}, Ret: 0})
	if a.Skipped() != 0 {
		t.Errorf("extended analyzer skipped %d", a.Skipped())
	}
	if a.Output("unlink").Count("OK") != 1 {
		t.Errorf("unlink outputs = %v", a.Output("unlink").Counts)
	}
	// renameat2 merges into rename.
	if a.Output("rename").Count("OK") != 1 || a.Output("rename").Count("ENOENT") != 1 {
		t.Errorf("rename outputs = %v", a.Output("rename").Counts)
	}
	rep := a.OutputReport("rename")
	if rep.DomainSize() < 10 {
		t.Errorf("rename domain = %d", rep.DomainSize())
	}
	// The standard analyzer skips all of these.
	std := NewAnalyzer(DefaultOptions())
	std.Add(trace.Event{Name: "unlink", Path: "/f", Ret: 0})
	if std.Skipped() != 1 {
		t.Errorf("standard analyzer skipped = %d", std.Skipped())
	}
}

func TestExtendedIdentifierTracking(t *testing.T) {
	a := NewAnalyzer(Options{MergeVariants: true, ExtendedSyscalls: true, TrackIdentifiers: true})
	a.Add(trace.Event{Name: "rename", Path: "/a",
		Strs: map[string]string{"oldname": "/a", "newname": "/b"}, Ret: 0})
	a.Add(trace.Event{Name: "rename", Path: "/c",
		Strs: map[string]string{"oldname": "/c", "newname": "/b"}, Ret: 0})
	if got := a.IdentifierCardinality("rename", "oldname"); got != 2 {
		t.Errorf("oldname cardinality = %d", got)
	}
	if got := a.IdentifierCardinality("rename", "newname"); got != 1 {
		t.Errorf("newname cardinality = %d", got)
	}
}
