package coverage

// Fitness accessors for the evolutionary workload generator (internal/
// evolve). The evolve loop inspects coverage once per candidate program and
// once per generation; going through InputReport/Snapshot for that would
// materialize label-keyed count maps and build report rows thousands of
// times per run. These accessors read the dense ordinal counters directly —
// no map materialization, no report construction, no label formatting — so
// a fitness probe costs one map lookup plus a slice walk.
//
// All of them are order-independent slice folds over per-ordinal state, so
// they are safe to call from //iocov:deterministic roots.

// SpaceStat is the cheap per-space fitness view: how many of a space's
// domain partitions have been hit.
type SpaceStat struct {
	// Domain is the number of partitions in the space's declared domain.
	Domain int
	// Covered is the number of partitions with a non-zero count.
	Covered int
}

// InputStat returns the covered/domain counts for one input argument space
// straight off the dense counters. ok is false when the syscall has never
// been observed (no counter exists yet).
func (a *Analyzer) InputStat(syscall, arg string) (SpaceStat, bool) {
	c := a.inputs[argKey{syscall, arg}]
	if c == nil {
		return SpaceStat{}, false
	}
	st := SpaceStat{Domain: len(c.dense)}
	for _, n := range c.dense {
		if n != 0 {
			st.Covered++
		}
	}
	return st, true
}

// OutputStat is InputStat for a syscall's output space. Errnos outside the
// documented universe (the report's Extra section) have no ordinal and are
// not part of Domain or Covered.
func (a *Analyzer) OutputStat(syscall string) (SpaceStat, bool) {
	c := a.outputs[syscall]
	if c == nil {
		return SpaceStat{}, false
	}
	st := SpaceStat{Domain: len(c.dense)}
	for _, n := range c.dense {
		if n != 0 {
			st.Covered++
		}
	}
	return st, true
}

// InputCoveredOrdinals appends the domain ordinals with non-zero counts for
// one input space to scratch and returns the extended slice (ordinals index
// the scheme's Domain()). A never-observed space appends nothing. Callers
// reuse the returned slice's backing array across probes (pass scratch[:0]).
func (a *Analyzer) InputCoveredOrdinals(syscall, arg string, scratch []int) []int {
	c := a.inputs[argKey{syscall, arg}]
	if c == nil {
		return scratch
	}
	for ord, n := range c.dense {
		if n != 0 {
			scratch = append(scratch, ord)
		}
	}
	return scratch
}

// OutputCoveredOrdinals is InputCoveredOrdinals for an output space
// (ordinals index the spec's output Domain(); extra errnos are excluded).
func (a *Analyzer) OutputCoveredOrdinals(syscall string, scratch []int) []int {
	c := a.outputs[syscall]
	if c == nil {
		return scratch
	}
	for ord, n := range c.dense {
		if n != 0 {
			scratch = append(scratch, ord)
		}
	}
	return scratch
}

// InputFrequencies appends one input space's per-ordinal frequencies in
// domain order to scratch (for the TCD fitness component). A never-observed
// space appends nothing; ok reports whether the space exists.
func (a *Analyzer) InputFrequencies(syscall, arg string, scratch []int64) ([]int64, bool) {
	c := a.inputs[argKey{syscall, arg}]
	if c == nil {
		return scratch, false
	}
	return append(scratch, c.dense...), true
}

// Options returns the analyzer's (normalized) options: zero caps are
// replaced with their defaults, as NewAnalyzer stores them. Pooling code
// uses this to decide whether a recycled analyzer matches a request.
func (a *Analyzer) Options() Options { return a.opts }

// WithDefaults returns o with zero caps replaced by their defaults — the
// normalized form NewAnalyzer stores and Analyzer.Options returns, so
// comparisons against a live analyzer's options must normalize first.
func (o Options) WithDefaults() Options {
	if o.IdentifierCap <= 0 {
		o.IdentifierCap = 65536
	}
	if o.CombinationCap <= 0 {
		o.CombinationCap = 4096
	}
	return o
}
