package coverage

import (
	"fmt"
	"sort"
)

// Merge folds another analyzer's counts into a. Both analyzers must have
// been built with identical Options (same variant merging, same caps, same
// syscall table); b is left untouched. Counts are purely additive, so
// merging shard analyzers in shard order reproduces exactly the Snapshot a
// single serial analyzer would have produced over the union of the shards'
// event streams.
//
// Two tracked quantities are cap-bounded rather than purely additive and
// merge deterministically but only approximately once a cap saturates:
//
//   - identifier sets: the merged cardinality is a.card + b.card minus the
//     overlap of the *retained* value sets, which undercounts dropped
//     duplicates only after the IdentifierCap has been exceeded;
//   - bit combinations: b's labels are inserted in sorted order until the
//     CombinationCap fills, so which labels survive is deterministic but
//     can differ from a serial run's arrival order.
//
// Neither quantity is part of Snapshot, so snapshot equivalence between
// serial and sharded runs is unaffected.
//
//iocov:deterministic
func (a *Analyzer) Merge(b *Analyzer) error {
	if b == nil {
		return nil
	}
	if a == b {
		return fmt.Errorf("coverage: cannot merge analyzer with itself")
	}
	if a.opts != b.opts {
		return fmt.Errorf("coverage: cannot merge analyzers with different options: %+v vs %+v", a.opts, b.opts)
	}

	a.analyzed += b.analyzed
	a.skipped += b.skipped

	for k, bc := range b.inputs {
		ac := a.inputs[k]
		if ac == nil {
			ac = &ArgCounter{
				Syscall: bc.Syscall,
				Arg:     bc.Arg,
				Class:   bc.Class,
				Scheme:  bc.Scheme,
				part:    bc.part,
				idx:     bc.idx,
				labels:  bc.labels,
				dense:   a.denseFor(len(bc.dense)),
			}
			a.inputs[k] = ac
		}
		for ord, n := range bc.dense {
			ac.dense[ord] += n
		}
		ac.dirty = true
	}

	for name, bc := range b.outputs {
		ac := a.outputs[name]
		if ac == nil {
			ac = &OutputCounter{Syscall: bc.Syscall, spec: bc.spec, out: bc.out,
				dense: a.denseFor(len(bc.dense))}
			a.outputs[name] = ac
		}
		for ord, n := range bc.dense {
			ac.dense[ord] += n
		}
		for label, n := range bc.extra {
			if ac.extra == nil {
				ac.extra = make(map[string]int64, len(bc.extra))
			}
			ac.extra[label] += n
		}
		ac.dirty = true
	}

	for k, bn := range b.combos.All {
		a.combos.All[k] += bn
	}
	for k, bn := range b.combos.Rdonly {
		a.combos.Rdonly[k] += bn
	}

	for k, bm := range b.bitCombos {
		am := a.bitCombos[k]
		if am == nil {
			am = make(map[string]int64, len(bm))
			a.bitCombos[k] = am
		}
		for _, label := range sortedKeys(bm) {
			if _, seen := am[label]; !seen && len(am) >= a.opts.CombinationCap {
				continue
			}
			am[label] += bm[label]
		}
	}

	for k, bc := range b.idents {
		ac := a.idents[k]
		if ac == nil {
			ac = &identCounter{values: make(map[string]int64, len(bc.values)), cap: a.opts.IdentifierCap}
			a.idents[k] = ac
		}
		var overlap int64
		for _, v := range sortedKeys(bc.values) {
			if _, seen := ac.values[v]; seen {
				overlap++
				ac.values[v] += bc.values[v]
			} else if len(ac.values) < ac.cap {
				ac.values[v] = bc.values[v]
			}
		}
		ac.card += bc.card - overlap
	}

	return nil
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
