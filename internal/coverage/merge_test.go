package coverage

import (
	"fmt"
	"reflect"
	"testing"

	"iocov/internal/sys"
	"iocov/internal/trace"
)

func TestMergeEmpty(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	b := NewAnalyzer(DefaultOptions())
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge of empty analyzers: %v", err)
	}
	if a.Analyzed() != 0 || a.Skipped() != 0 || len(a.Syscalls()) != 0 {
		t.Errorf("empty merge produced state: analyzed=%d skipped=%d syscalls=%v",
			a.Analyzed(), a.Skipped(), a.Syscalls())
	}
}

func TestMergeNil(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(openEvent(0, 0, 3, sys.OK))
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merge of nil: %v", err)
	}
	if a.Analyzed() != 1 {
		t.Errorf("nil merge changed state: analyzed=%d", a.Analyzed())
	}
}

func TestMergeSelfRejected(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	if err := a.Merge(a); err == nil {
		t.Error("self-merge not rejected")
	}
}

func TestMergeMismatchedOptions(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	b := NewAnalyzer(Options{MergeVariants: false})
	if err := a.Merge(b); err == nil {
		t.Error("mismatched options not rejected")
	}
	c := NewAnalyzer(Options{MergeVariants: true, IdentifierCap: 7})
	if err := a.Merge(c); err == nil {
		t.Error("mismatched caps not rejected")
	}
}

func TestMergeDisjointKeys(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(openEvent(int64(sys.O_WRONLY|sys.O_CREAT), 0o644, 3, sys.OK))
	b := NewAnalyzer(DefaultOptions())
	b.Add(writeEvent(4096, 4096, sys.OK))
	b.Add(trace.Event{Name: "unlink", Path: "/f", PID: 1})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Analyzed() != 2 || a.Skipped() != 1 {
		t.Errorf("analyzed/skipped = %d/%d, want 2/1", a.Analyzed(), a.Skipped())
	}
	if c := a.Input("open", "flags"); c == nil || c.Count("O_CREAT") != 1 {
		t.Errorf("open flags lost in merge: %+v", c)
	}
	if c := a.Input("write", "count"); c == nil || c.Count("2^12") != 1 {
		t.Errorf("write count missing after merge: %+v", c)
	}
	if oc := a.Output("write"); oc == nil || oc.Count("OK:2^12") != 1 {
		t.Errorf("write output missing after merge: %+v", oc)
	}
}

func TestMergeMatchesSerial(t *testing.T) {
	// Splitting one event stream across two analyzers and merging must
	// reproduce the serial analyzer's snapshot exactly.
	events := []trace.Event{
		openEvent(0, 0, 3, sys.OK),
		openEvent(int64(sys.O_RDWR|sys.O_CREAT|sys.O_TRUNC), 0o644, 4, sys.OK),
		openEvent(0, 0, -2, sys.ENOENT),
		writeEvent(0, 0, sys.OK),
		writeEvent(2000, 2000, sys.OK),
		writeEvent(10, 0, sys.ENOSPC),
		{Name: "lseek", PID: 1, Args: map[string]int64{"fd": 3, "offset": -5, "whence": 1}, Ret: 0},
		{Name: "unlink", Path: "/f", PID: 1},
	}
	serial := NewAnalyzer(DefaultOptions())
	serial.AddAll(events)

	a := NewAnalyzer(DefaultOptions())
	a.AddAll(events[:3])
	b := NewAnalyzer(DefaultOptions())
	b.AddAll(events[3:])
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Snapshot(0), serial.Snapshot(0)) {
		t.Error("merged snapshot differs from serial snapshot")
	}
}

func TestMergeIdentifierCapSaturation(t *testing.T) {
	opts := Options{MergeVariants: true, TrackIdentifiers: true, IdentifierCap: 2}
	pathOpen := func(p string) trace.Event {
		return trace.Event{Name: "open", Path: p, PID: 1,
			Strs: map[string]string{"filename": p},
			Args: map[string]int64{"flags": 0, "mode": 0}, Ret: 3}
	}
	a := NewAnalyzer(opts)
	a.Add(pathOpen("/a"))
	a.Add(pathOpen("/b")) // a's retained set is now full
	b := NewAnalyzer(opts)
	b.Add(pathOpen("/b")) // overlaps a's retained set
	b.Add(pathOpen("/c")) // new, but a's cap is saturated
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// /a, /b, /c are three distinct values; /c is not retained but still
	// counts toward cardinality.
	if got := a.IdentifierCardinality("open", "filename"); got != 3 {
		t.Errorf("merged cardinality = %d, want 3", got)
	}
}

func TestMergeCombinationCapSaturation(t *testing.T) {
	opts := Options{MergeVariants: true, TrackCombinations: true, CombinationCap: 2}
	a := NewAnalyzer(opts)
	a.Add(openEvent(0, 0, 3, sys.OK))                                   // O_RDONLY
	a.Add(openEvent(int64(sys.O_WRONLY|sys.O_CREAT), 0o644, 4, sys.OK)) // combo 2: cap full
	b := NewAnalyzer(opts)
	b.Add(openEvent(0, 0, 3, sys.OK))                                             // shared with a
	b.Add(openEvent(int64(sys.O_RDWR|sys.O_CREAT|sys.O_TRUNC), 0o644, 5, sys.OK)) // would be a third combo
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.DistinctCombinations("open", "flags"); got != 2 {
		t.Errorf("distinct combos = %d, want 2 (cap)", got)
	}
	rows := a.Combinations("open", "flags")
	if len(rows) != 2 || rows[0].Label != "O_RDONLY" || rows[0].Count != 2 {
		t.Errorf("combo rows after merge = %+v", rows)
	}
}

func TestMergeManyShards(t *testing.T) {
	// Merging N shard analyzers in order equals one serial analyzer over
	// the concatenated stream, whatever N is.
	var events []trace.Event
	for i := 0; i < 40; i++ {
		events = append(events, writeEvent(int64(1)<<uint(i%20), int64(1)<<uint(i%20), sys.OK))
		events = append(events, openEvent(int64(sys.O_WRONLY|sys.O_CREAT), 0o644, 3, sys.OK))
	}
	serial := NewAnalyzer(DefaultOptions())
	serial.AddAll(events)
	for _, shards := range []int{1, 3, 8} {
		merged := NewAnalyzer(DefaultOptions())
		for s := 0; s < shards; s++ {
			sh := NewAnalyzer(DefaultOptions())
			for i := s; i < len(events); i += shards {
				sh.Add(events[i])
			}
			if err := merged.Merge(sh); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(merged.Snapshot(0), serial.Snapshot(0)) {
			t.Errorf("shards=%d: merged snapshot differs from serial", shards)
		}
	}
}

func TestMergeErrorMentionsOptions(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	b := NewAnalyzer(Options{MergeVariants: true, ExtendedSyscalls: true})
	err := a.Merge(b)
	if err == nil {
		t.Fatal("extended-table merge not rejected")
	}
	if msg := fmt.Sprint(err); msg == "" {
		t.Error("empty error message")
	}
}
