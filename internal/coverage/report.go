package coverage

import (
	"sort"
)

// Row is one partition's frequency in a report.
type Row struct {
	Label string
	Count int64
}

// Report is the coverage of one argument or output space over a partition
// domain.
type Report struct {
	// Syscall and Arg identify the space ("" Arg for output reports).
	Syscall string
	Arg     string
	// Rows lists every domain partition in canonical order with its count.
	Rows []Row
	// Extra lists observed partitions outside the declared domain (e.g. an
	// errno absent from the man page, which the paper notes can happen
	// because man pages lag the implementation).
	Extra []Row
}

// Covered returns how many domain partitions have a non-zero count.
func (r *Report) Covered() int {
	n := 0
	for _, row := range r.Rows {
		if row.Count > 0 {
			n++
		}
	}
	return n
}

// DomainSize returns the number of domain partitions.
func (r *Report) DomainSize() int { return len(r.Rows) }

// Fraction returns covered/domain, the headline coverage number.
func (r *Report) Fraction() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	return float64(r.Covered()) / float64(len(r.Rows))
}

// Untested returns the labels of domain partitions with zero count — the
// actionable output the paper argues code coverage cannot provide.
func (r *Report) Untested() []string {
	var out []string
	for _, row := range r.Rows {
		if row.Count == 0 {
			out = append(out, row.Label)
		}
	}
	return out
}

// Frequencies returns the counts in domain order, for the TCD metric.
func (r *Report) Frequencies() []int64 {
	out := make([]int64, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.Count
	}
	return out
}

// Labels returns the domain labels in order.
func (r *Report) Labels() []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.Label
	}
	return out
}

// MaxCount returns the largest row count.
func (r *Report) MaxCount() int64 {
	var m int64
	for _, row := range r.Rows {
		if row.Count > m {
			m = row.Count
		}
	}
	return m
}

// TrimZeroTail drops trailing all-zero rows beyond the last non-zero one,
// keeping at least min rows; figure rendering uses it so a 64-bucket numeric
// domain prints only the meaningful prefix.
func (r *Report) TrimZeroTail(min int) *Report {
	last := min
	for i, row := range r.Rows {
		if row.Count > 0 && i+1 > last {
			last = i + 1
		}
	}
	if last > len(r.Rows) {
		last = len(r.Rows)
	}
	out := *r
	out.Rows = r.Rows[:last]
	return &out
}

// InputReport builds the report for one argument. A nil report means the
// argument was never observed (syscall never called).
func (a *Analyzer) InputReport(syscall, arg string) *Report {
	c := a.Input(syscall, arg)
	if c == nil {
		return nil
	}
	return buildReport(syscall, arg, c.Domain(), c.Counts)
}

// OutputReport builds the report for one syscall's output space.
func (a *Analyzer) OutputReport(syscall string) *Report {
	c := a.Output(syscall)
	if c == nil {
		return nil
	}
	return buildReport(syscall, "", c.Domain(), c.Counts)
}

func buildReport(syscall, arg string, domain []string, counts map[string]int64) *Report {
	r := &Report{Syscall: syscall, Arg: arg}
	inDomain := make(map[string]bool, len(domain))
	for _, label := range domain {
		inDomain[label] = true
		r.Rows = append(r.Rows, Row{Label: label, Count: counts[label]})
	}
	var extra []Row
	for label, n := range counts {
		if !inDomain[label] {
			extra = append(extra, Row{Label: label, Count: n})
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i].Label < extra[j].Label })
	r.Extra = extra
	return r
}

// ComboRow is one row of Table 1: the percentage of opens that used k flags
// together, for k = 1..Max.
type ComboRow struct {
	// Name labels the row ("all flags" or "O_RDONLY").
	Name string
	// Pct[k] is the percentage of opens combining exactly k+1 flags.
	Pct []float64
	// Total is the number of opens the row is computed over.
	Total int64
}

// ComboTable renders the flag-combination statistics as Table 1 rows, with
// maxK columns (the paper uses 6, the largest combination either suite
// produced).
//
//iocov:deterministic
func (a *Analyzer) ComboTable(maxK int) []ComboRow {
	build := func(name string, m map[int]int64) ComboRow {
		var total int64
		for _, n := range m {
			total += n
		}
		row := ComboRow{Name: name, Pct: make([]float64, maxK), Total: total}
		if total == 0 {
			return row
		}
		// Percentages folding into the overflow column are summed in sorted
		// key order: float addition is not associative, so map order would
		// let the same histogram render different final bits run to run.
		ks := make([]int, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		for _, k := range ks {
			idx := k - 1
			if idx < 0 {
				continue
			}
			if idx >= maxK {
				idx = maxK - 1
			}
			row.Pct[idx] += 100 * float64(m[k]) / float64(total)
		}
		return row
	}
	return []ComboRow{
		build("all flags", a.combos.All),
		build("O_RDONLY", a.combos.Rdonly),
	}
}

// MaxComboSize returns the largest number of flags combined in any open.
func (a *Analyzer) MaxComboSize() int {
	max := 0
	for k := range a.combos.All {
		if k > max {
			max = k
		}
	}
	return max
}

// UntestedSummary lists, for every observed syscall, the untested input and
// output partitions. Numeric domains are trimmed to maxNumeric buckets so
// the summary stays readable (the full 2^63 tail is untestable in practice).
type UntestedSummary struct {
	Syscall string
	Arg     string // "" for the output space
	Labels  []string
}

// Untested produces the untested-partition summary across every tracked
// space, in deterministic order.
//
//iocov:deterministic
func (a *Analyzer) UntestedAll(maxNumeric int) []UntestedSummary {
	var out []UntestedSummary
	for _, name := range a.Syscalls() {
		spec := a.table.Spec(baseOf(a, name))
		if spec == nil {
			continue
		}
		for _, arg := range spec.TrackedArgs() {
			rep := a.InputReport(name, arg.Name)
			if rep == nil {
				continue
			}
			labels := trimNumericDomain(rep, arg.Scheme, maxNumeric).Untested()
			if len(labels) > 0 {
				out = append(out, UntestedSummary{Syscall: name, Arg: arg.Name, Labels: labels})
			}
		}
		if rep := a.OutputReport(name); rep != nil {
			labels := trimNumericDomain(rep, "", maxNumeric).Untested()
			if len(labels) > 0 {
				out = append(out, UntestedSummary{Syscall: name, Labels: labels})
			}
		}
	}
	return out
}

func trimNumericDomain(r *Report, scheme string, maxRows int) *Report {
	if maxRows > 0 && len(r.Rows) > maxRows {
		out := *r
		out.Rows = r.Rows[:maxRows]
		return &out
	}
	return r
}

// baseOf maps an analyzer syscall name back to its base spec name (identity
// under merging; variant lookup otherwise).
func baseOf(a *Analyzer, name string) string {
	if s := a.table.Spec(name); s != nil {
		return name
	}
	if s := a.table.Base(name); s != nil {
		return s.Base
	}
	return name
}
