package coverage

// Reset returns the analyzer to its freshly-constructed state while
// retaining its allocations: every map keeps its buckets (clear preserves
// capacity) and the dense counter slices are zeroed and parked in a
// per-length freelist that the recompile step draws from. A Reset analyzer
// is observationally identical to NewAnalyzer(same options) — same counter
// set, same snapshot bytes for the same event stream — which is what lets
// the harness worker arena and the ingest daemon's session pool recycle
// analyzers without violating the byte-identical merge contract.
func (a *Analyzer) Reset() {
	if a.freeDense == nil {
		a.freeDense = make(map[int][][]int64)
	}
	for _, c := range a.inputs {
		clear(c.dense)
		a.freeDense[len(c.dense)] = append(a.freeDense[len(c.dense)], c.dense)
	}
	clear(a.inputs)
	for _, c := range a.outputs {
		clear(c.dense)
		a.freeDense[len(c.dense)] = append(a.freeDense[len(c.dense)], c.dense)
	}
	clear(a.outputs)
	clear(a.idents)
	clear(a.combos.All)
	clear(a.combos.Rdonly)
	clear(a.bitCombos)
	// The compiled dispatch entries point at the counters retired above, so
	// they must go too; recompilation on next sight rebuilds them against
	// the recycled dense slices.
	clear(a.compiled)
	a.analyzed, a.skipped = 0, 0
}

// Reset unbinds the batch's per-stream dictionary dispatch cache so it can
// serve a new decode stream against the same (Reset) analyzer. Stale
// compiled-entry pointers are dropped eagerly: they belong to the
// analyzer's previous life.
func (b *Batch) Reset() {
	clear(b.byID)
	b.byID = b.byID[:0]
}
