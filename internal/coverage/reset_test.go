package coverage

import (
	"bytes"
	"testing"

	"iocov/internal/sys"
)

// resetStream is a small event mix exercising inputs, outputs, an
// undocumented errno (extra map), combos, identifiers, and out-of-scope
// skips — every piece of state Reset must wipe.
func resetStream(a *Analyzer) {
	a.Add(openEvent(int64(sys.O_WRONLY|sys.O_CREAT), 0o644, 4, sys.OK))
	a.Add(openEvent(0, 0, -1, sys.ENOENT))
	a.Add(writeEvent(4096, 4096, sys.OK))
	a.Add(writeEvent(0, -1, sys.Errno(250))) // outside the documented universe
	ev := writeEvent(1, 1, sys.OK)
	ev.Name = "not_a_syscall"
	a.Add(ev)
}

func analyzerBytes(t *testing.T, a *Analyzer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Snapshot(0).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResetMatchesFresh is the pool-correctness contract: an analyzer that
// lived a full previous life and was Reset must be byte-identical, over any
// subsequent stream, to a freshly constructed analyzer.
func TestResetMatchesFresh(t *testing.T) {
	opts := Options{MergeVariants: true, TrackIdentifiers: true, TrackCombinations: true}
	reused := NewAnalyzer(opts)
	resetStream(reused)
	resetStream(reused)
	_ = analyzerBytes(t, reused) // force Counts materialization before Reset
	reused.Reset()

	fresh := NewAnalyzer(opts)
	resetStream(reused)
	resetStream(fresh)

	got, want := analyzerBytes(t, reused), analyzerBytes(t, fresh)
	if !bytes.Equal(got, want) {
		t.Errorf("reused snapshot differs from fresh:\nreused: %s\nfresh:  %s", got, want)
	}
	if reused.Analyzed() != fresh.Analyzed() || reused.Skipped() != fresh.Skipped() {
		t.Errorf("totals: reused %d/%d fresh %d/%d",
			reused.Analyzed(), reused.Skipped(), fresh.Analyzed(), fresh.Skipped())
	}
	if got, want := reused.DistinctCombinations("open", "flags"), fresh.DistinctCombinations("open", "flags"); got != want {
		t.Errorf("combinations: reused %d fresh %d", got, want)
	}
	if got, want := reused.IdentifierCardinality("open", "path"), fresh.IdentifierCardinality("open", "path"); got != want {
		t.Errorf("identifier cardinality: reused %d fresh %d", got, want)
	}
}

// TestResetEmptySnapshot: immediately after Reset the analyzer reports the
// empty snapshot — no phantom spaces survive from the previous life.
func TestResetEmptySnapshot(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	resetStream(a)
	a.Reset()
	empty := NewAnalyzer(DefaultOptions())
	if got, want := analyzerBytes(t, a), analyzerBytes(t, empty); !bytes.Equal(got, want) {
		t.Errorf("post-Reset snapshot not empty:\ngot:  %s\nwant: %s", got, want)
	}
}

// TestResetMergeTarget: a Reset analyzer used as a merge *target* behaves
// like a fresh one (the striped store's scratch-fold path).
func TestResetMergeTarget(t *testing.T) {
	src := NewAnalyzer(DefaultOptions())
	resetStream(src)

	reused := NewAnalyzer(DefaultOptions())
	resetStream(reused)
	reused.Reset()
	if err := reused.Merge(src); err != nil {
		t.Fatal(err)
	}
	fresh := NewAnalyzer(DefaultOptions())
	if err := fresh.Merge(src); err != nil {
		t.Fatal(err)
	}
	if got, want := analyzerBytes(t, reused), analyzerBytes(t, fresh); !bytes.Equal(got, want) {
		t.Errorf("merge into reused differs from merge into fresh:\ngot:  %s\nwant: %s", got, want)
	}
}

// TestBatchReset: a Reset batch over a Reset analyzer re-resolves ordinals
// for the new stream instead of dispatching through stale entries.
func TestBatchReset(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	b := a.NewBatch()
	ev := openEvent(0, 0, 3, sys.OK)
	b.Add(&ev, 0) // "open" under ordinal 0
	a.Reset()
	b.Reset()

	// New stream: ordinal 0 is now "write"; a stale cache would count it as open.
	wev := writeEvent(64, 64, sys.OK)
	b.Add(&wev, 0)
	if a.Output("open") != nil {
		t.Error("stale batch entry dispatched ordinal 0 to open")
	}
	if c := a.Output("write"); c == nil || c.Count("OK:2^6") == 0 {
		t.Errorf("write output not counted after Reset; counter = %+v", c)
	}
}
