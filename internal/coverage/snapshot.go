package coverage

import (
	"encoding/json"
	"io"
	"sort"
)

// Snapshot is a serializable view of an analyzer's complete state, for
// machine consumption (CI dashboards, longitudinal tracking of a test
// suite's coverage across releases).
type Snapshot struct {
	// Analyzed and Skipped are the event totals.
	Analyzed int64 `json:"analyzed"`
	Skipped  int64 `json:"skipped"`
	// Inputs holds one entry per observed (syscall, argument).
	Inputs []SnapshotSpace `json:"inputs"`
	// Outputs holds one entry per observed syscall output space.
	Outputs []SnapshotSpace `json:"outputs"`
	// OpenCombos is the Table 1 raw data, when opens were observed.
	OpenCombos *SnapshotCombos `json:"open_combos,omitempty"`
}

// SnapshotSpace is one coverage space: its identity, domain size, covered
// count, per-partition frequencies, and untested partitions.
type SnapshotSpace struct {
	Syscall  string           `json:"syscall"`
	Arg      string           `json:"arg,omitempty"`
	Class    string           `json:"class,omitempty"`
	Domain   int              `json:"domain"`
	Covered  int              `json:"covered"`
	Counts   map[string]int64 `json:"counts"`
	Untested []string         `json:"untested,omitempty"`
	Extra    map[string]int64 `json:"extra,omitempty"`
}

// SnapshotCombos serializes the flag-combination statistics.
type SnapshotCombos struct {
	All    map[int]int64 `json:"all"`
	Rdonly map[int]int64 `json:"rdonly"`
}

// Snapshot builds the serializable view. Numeric domains are truncated to
// maxNumeric partitions (0 means 34, the Figure 3 window).
//
//iocov:deterministic
func (a *Analyzer) Snapshot(maxNumeric int) *Snapshot {
	if maxNumeric <= 0 {
		maxNumeric = 34
	}
	s := &Snapshot{Analyzed: a.analyzed, Skipped: a.skipped}
	for _, name := range a.Syscalls() {
		spec := a.table.Spec(baseOf(a, name))
		if spec == nil {
			continue
		}
		for _, arg := range spec.TrackedArgs() {
			rep := a.InputReport(name, arg.Name)
			if rep == nil {
				continue
			}
			rep = trimNumericDomain(rep, arg.Scheme, maxNumeric)
			s.Inputs = append(s.Inputs, snapshotSpace(rep, arg.Class.String()))
		}
		if rep := a.OutputReport(name); rep != nil {
			rep = trimNumericDomain(rep, "", maxNumeric)
			s.Outputs = append(s.Outputs, snapshotSpace(rep, ""))
		}
	}
	if len(a.combos.All) > 0 {
		s.OpenCombos = &SnapshotCombos{All: a.combos.All, Rdonly: a.combos.Rdonly}
	}
	return s
}

func snapshotSpace(rep *Report, class string) SnapshotSpace {
	sp := SnapshotSpace{
		Syscall: rep.Syscall,
		Arg:     rep.Arg,
		Class:   class,
		Domain:  rep.DomainSize(),
		Covered: rep.Covered(),
		Counts:  make(map[string]int64),
	}
	for _, row := range rep.Rows {
		if row.Count > 0 {
			sp.Counts[row.Label] = row.Count
		}
	}
	sp.Untested = rep.Untested()
	if len(rep.Extra) > 0 {
		sp.Extra = make(map[string]int64, len(rep.Extra))
		for _, row := range rep.Extra {
			sp.Extra[row.Label] = row.Count
		}
	}
	return sp
}

// WriteJSON serializes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// LoadSnapshot reads a snapshot back from JSON.
func LoadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Space finds a space by syscall and arg ("" for output), or nil.
func (s *Snapshot) Space(syscall, arg string) *SnapshotSpace {
	pool := s.Inputs
	if arg == "" {
		pool = s.Outputs
	}
	for i := range pool {
		if pool[i].Syscall == syscall && pool[i].Arg == arg {
			return &pool[i]
		}
	}
	return nil
}

// DiffSnapshot reports the partitions covered by s but not by other — the
// regression-tracking primitive ("this release stopped testing O_SYNC").
//
//iocov:deterministic
func (s *Snapshot) DiffSnapshot(other *Snapshot) []SnapshotDiff {
	var out []SnapshotDiff
	diffPool := func(a, b []SnapshotSpace, isOutput bool) {
		for i := range a {
			sp := &a[i]
			var ob *SnapshotSpace
			arg := sp.Arg
			if isOutput {
				arg = ""
			}
			ob = (&Snapshot{Inputs: b, Outputs: b}).Space(sp.Syscall, arg)
			var lost []string
			for label := range sp.Counts {
				if ob == nil || ob.Counts[label] == 0 {
					lost = append(lost, label)
				}
			}
			if len(lost) > 0 {
				out = append(out, SnapshotDiff{
					Syscall: sp.Syscall, Arg: sp.Arg, OnlyInFirst: sortedCopy(lost),
				})
			}
		}
	}
	diffPool(s.Inputs, other.Inputs, false)
	diffPool(s.Outputs, other.Outputs, true)
	return out
}

// SnapshotDiff lists partitions one snapshot covers that the other misses.
type SnapshotDiff struct {
	Syscall     string   `json:"syscall"`
	Arg         string   `json:"arg,omitempty"`
	OnlyInFirst []string `json:"only_in_first"`
}

func sortedCopy(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}
