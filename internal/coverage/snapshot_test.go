package coverage

import (
	"bytes"
	"testing"

	"iocov/internal/sys"
)

func snapshotFixture(t *testing.T) *Snapshot {
	t.Helper()
	a := NewAnalyzer(DefaultOptions())
	a.Add(openEvent(int64(sys.O_RDWR|sys.O_CREAT), 0o644, 3, sys.OK))
	a.Add(openEvent(0, 0, -2, sys.ENOENT))
	a.Add(writeEvent(4096, 4096, sys.OK))
	return a.Snapshot(0)
}

func TestSnapshotContents(t *testing.T) {
	s := snapshotFixture(t)
	if s.Analyzed != 3 {
		t.Errorf("analyzed = %d", s.Analyzed)
	}
	flags := s.Space("open", "flags")
	if flags == nil {
		t.Fatal("open.flags space missing")
	}
	if flags.Counts["O_CREAT"] != 1 || flags.Counts["O_RDONLY"] != 1 {
		t.Errorf("flag counts = %v", flags.Counts)
	}
	if flags.Covered != 3 || flags.Domain != 21 {
		t.Errorf("covered/domain = %d/%d", flags.Covered, flags.Domain)
	}
	out := s.Space("open", "")
	if out == nil || out.Counts["ENOENT"] != 1 || out.Counts["OK"] != 1 {
		t.Errorf("open outputs = %+v", out)
	}
	if s.OpenCombos == nil || s.OpenCombos.All[2] != 1 || s.OpenCombos.All[1] != 1 {
		t.Errorf("combos = %+v", s.OpenCombos)
	}
	// Zero-count partitions are omitted from Counts but present in the
	// untested list.
	if _, ok := flags.Counts["O_SYNC"]; ok {
		t.Error("zero count serialized")
	}
	found := false
	for _, u := range flags.Untested {
		if u == "O_SYNC" {
			found = true
		}
	}
	if !found {
		t.Error("O_SYNC missing from untested")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := snapshotFixture(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Analyzed != s.Analyzed || len(back.Inputs) != len(s.Inputs) || len(back.Outputs) != len(s.Outputs) {
		t.Errorf("round trip changed shape: %+v", back)
	}
	if back.Space("open", "flags").Counts["O_CREAT"] != 1 {
		t.Error("counts lost in round trip")
	}
}

func TestSnapshotDiff(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(openEvent(int64(sys.O_RDWR|sys.O_CREAT|sys.O_SYNC), 0o644, 3, sys.OK))
	a.Add(openEvent(0, 0, -2, sys.ENOENT))
	b := NewAnalyzer(DefaultOptions())
	b.Add(openEvent(int64(sys.O_RDWR|sys.O_CREAT), 0o644, 3, sys.OK))

	diffs := a.Snapshot(0).DiffSnapshot(b.Snapshot(0))
	var flagDiff, outDiff *SnapshotDiff
	for i := range diffs {
		switch {
		case diffs[i].Syscall == "open" && diffs[i].Arg == "flags":
			flagDiff = &diffs[i]
		case diffs[i].Syscall == "open" && diffs[i].Arg == "":
			outDiff = &diffs[i]
		}
	}
	if flagDiff == nil {
		t.Fatal("no flags diff")
	}
	want := map[string]bool{"O_SYNC": true, "O_RDONLY": true}
	for _, l := range flagDiff.OnlyInFirst {
		if !want[l] {
			t.Errorf("unexpected diff label %s", l)
		}
		delete(want, l)
	}
	if len(want) != 0 {
		t.Errorf("missing diff labels: %v", want)
	}
	if outDiff == nil {
		t.Fatal("no output diff")
	}
	// b never failed an open, so ENOENT is only-in-first.
	foundENOENT := false
	for _, l := range outDiff.OnlyInFirst {
		if l == "ENOENT" {
			foundENOENT = true
		}
	}
	if !foundENOENT {
		t.Errorf("output diff = %v", outDiff.OnlyInFirst)
	}
	// Symmetric direction: b covers nothing a doesn't.
	if diffs := b.Snapshot(0).DiffSnapshot(a.Snapshot(0)); len(diffs) != 0 {
		t.Errorf("reverse diff = %v", diffs)
	}
}

func TestSnapshotNumericTruncation(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(writeEvent(1, 1, sys.OK))
	s := a.Snapshot(10)
	wc := s.Space("write", "count")
	if wc.Domain != 10 {
		t.Errorf("truncated domain = %d, want 10", wc.Domain)
	}
}
