package coverage

import "sort"

// MergeSnapshots combines two serialized coverage snapshots additively, the
// snapshot-level counterpart of Analyzer.Merge. Both snapshots must come
// from analyzers built with identical Options (same syscall table, same
// numeric-domain truncation), so every space the two share has the same
// partition domain. The result is byte-identical, once encoded with
// WriteJSON, to the snapshot a single analyzer would produce after merging
// the underlying analyzers — the contract the aggregation daemon's
// checkpoint-restore path depends on: a restored baseline snapshot merged
// with the live analyzer's snapshot must reproduce exactly what one
// long-lived analyzer would have reported.
//
// Nil arguments are treated as empty; the inputs are never mutated.
//
//iocov:deterministic
func MergeSnapshots(a, b *Snapshot) *Snapshot {
	if a == nil {
		a = &Snapshot{}
	}
	if b == nil {
		b = &Snapshot{}
	}
	out := &Snapshot{
		Analyzed: a.Analyzed + b.Analyzed,
		Skipped:  a.Skipped + b.Skipped,
		Inputs:   mergeSpaceLists(a.Inputs, b.Inputs),
		Outputs:  mergeSpaceLists(a.Outputs, b.Outputs),
	}
	out.OpenCombos = mergeCombos(a.OpenCombos, b.OpenCombos)
	return out
}

// mergeSpaceLists merges two space lists, preserving the canonical snapshot
// order: syscalls sorted, and within a syscall the spec's argument order.
// Both inputs follow that order already (they were produced by
// Analyzer.Snapshot), so each syscall's argument sequence is a subsequence
// of the spec order and the two sequences merge without knowing the spec.
func mergeSpaceLists(a, b []SnapshotSpace) []SnapshotSpace {
	bySyscall := func(list []SnapshotSpace) (map[string][]*SnapshotSpace, []string) {
		m := make(map[string][]*SnapshotSpace)
		var names []string
		for i := range list {
			sp := &list[i]
			if m[sp.Syscall] == nil {
				names = append(names, sp.Syscall)
			}
			m[sp.Syscall] = append(m[sp.Syscall], sp)
		}
		return m, names
	}
	am, anames := bySyscall(a)
	bm, bnames := bySyscall(b)
	names := append(append([]string(nil), anames...), bnames...)
	sort.Strings(names)
	var out []SnapshotSpace
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if seen[name] {
			continue
		}
		seen[name] = true
		for _, pair := range mergeArgOrder(am[name], bm[name]) {
			out = append(out, combineSpace(pair[0], pair[1]))
		}
	}
	return out
}

// mergeArgOrder pairs up one syscall's spaces from both lists, interleaving
// the two argument sequences while preserving both relative orders.
func mergeArgOrder(as, bs []*SnapshotSpace) [][2]*SnapshotSpace {
	inA := make(map[string]bool, len(as))
	for _, sp := range as {
		inA[sp.Arg] = true
	}
	inB := make(map[string]bool, len(bs))
	for _, sp := range bs {
		inB[sp.Arg] = true
	}
	var out [][2]*SnapshotSpace
	i, j := 0, 0
	for i < len(as) || j < len(bs) {
		switch {
		case i >= len(as):
			out = append(out, [2]*SnapshotSpace{nil, bs[j]})
			j++
		case j >= len(bs):
			out = append(out, [2]*SnapshotSpace{as[i], nil})
			i++
		case as[i].Arg == bs[j].Arg:
			out = append(out, [2]*SnapshotSpace{as[i], bs[j]})
			i, j = i+1, j+1
		case !inB[as[i].Arg]:
			out = append(out, [2]*SnapshotSpace{as[i], nil})
			i++
		case !inA[bs[j].Arg]:
			out = append(out, [2]*SnapshotSpace{nil, bs[j]})
			j++
		default:
			// Unreachable for two subsequences of one spec order; fall
			// back to the left sequence to guarantee termination.
			out = append(out, [2]*SnapshotSpace{as[i], nil})
			i++
		}
	}
	return out
}

// combineSpace adds two views of the same coverage space. Either side may be
// nil (space observed by only one snapshot).
func combineSpace(x, y *SnapshotSpace) SnapshotSpace {
	if y == nil {
		return cloneSpace(x)
	}
	if x == nil {
		return cloneSpace(y)
	}
	out := SnapshotSpace{
		Syscall: x.Syscall,
		Arg:     x.Arg,
		Class:   x.Class,
		Domain:  x.Domain,
		Counts:  make(map[string]int64, len(x.Counts)+len(y.Counts)),
	}
	for label, n := range x.Counts {
		out.Counts[label] += n
	}
	for label, n := range y.Counts {
		out.Counts[label] += n
	}
	// A partition is untested in the merge iff neither side counted it.
	// x.Untested is already in domain order, so filtering it keeps the
	// canonical ordering without access to the domain itself.
	for _, label := range x.Untested {
		if out.Counts[label] == 0 {
			out.Untested = append(out.Untested, label)
		}
	}
	out.Covered = out.Domain - len(out.Untested)
	if len(x.Extra)+len(y.Extra) > 0 {
		out.Extra = make(map[string]int64, len(x.Extra)+len(y.Extra))
		for label, n := range x.Extra {
			out.Extra[label] += n
		}
		for label, n := range y.Extra {
			out.Extra[label] += n
		}
	}
	return out
}

// cloneSpace deep-copies one space so merges never alias the inputs' maps.
func cloneSpace(sp *SnapshotSpace) SnapshotSpace {
	out := *sp
	out.Counts = make(map[string]int64, len(sp.Counts))
	for label, n := range sp.Counts {
		out.Counts[label] = n
	}
	out.Untested = append([]string(nil), sp.Untested...)
	if len(sp.Extra) > 0 {
		out.Extra = make(map[string]int64, len(sp.Extra))
		for label, n := range sp.Extra {
			out.Extra[label] = n
		}
	}
	return out
}

// mergeCombos adds the Table 1 flag-combination histograms.
func mergeCombos(x, y *SnapshotCombos) *SnapshotCombos {
	if x == nil && y == nil {
		return nil
	}
	out := &SnapshotCombos{All: make(map[int]int64), Rdonly: make(map[int]int64)}
	for _, c := range []*SnapshotCombos{x, y} {
		if c == nil {
			continue
		}
		for k, n := range c.All {
			out.All[k] += n
		}
		for k, n := range c.Rdonly {
			out.Rdonly[k] += n
		}
	}
	return out
}
