package coverage

import (
	"bytes"
	"testing"

	"iocov/internal/sys"
	"iocov/internal/trace"
)

// snapshotBytes encodes a snapshot exactly the way the daemon's /report
// endpoint does.
func snapshotBytes(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestMergeSnapshotsMatchesAnalyzerMerge is the core contract: merging two
// snapshots must be byte-identical (as JSON) to snapshotting the merged
// analyzers.
func TestMergeSnapshotsMatchesAnalyzerMerge(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(openEvent(0, 0, 3, sys.OK))
	a.Add(openEvent(int64(sys.O_WRONLY|sys.O_CREAT), 0o644, 4, sys.OK))
	a.Add(writeEvent(4096, 4096, sys.OK))
	a.Add(trace.Event{Name: "bogus_syscall", PID: 1}) // skipped

	b := NewAnalyzer(DefaultOptions())
	b.Add(openEvent(int64(sys.O_RDWR|sys.O_TRUNC), 0, -int64(sys.ENOENT), sys.ENOENT))
	b.Add(writeEvent(1, 0, sys.ENOSPC))
	b.Add(trace.Event{Name: "lseek", PID: 1,
		Args: map[string]int64{"fd": 3, "offset": 512, "whence": int64(sys.SEEK_SET)}, Ret: 512})
	// An errno outside write's documented universe lands in Extra.
	b.Add(writeEvent(8, -int64(sys.EACCES), sys.EACCES))

	snapA, snapB := a.Snapshot(0), b.Snapshot(0)
	got := snapshotBytes(t, MergeSnapshots(snapA, snapB))

	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	want := snapshotBytes(t, a.Snapshot(0))
	if !bytes.Equal(got, want) {
		t.Errorf("MergeSnapshots != merged-analyzer snapshot\n got: %s\nwant: %s", got, want)
	}
}

// TestMergeSnapshotsRestoreIdentity pins the checkpoint-restore path: a
// snapshot decoded from its own JSON and merged with an empty snapshot must
// re-encode to the same bytes.
func TestMergeSnapshotsRestoreIdentity(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(openEvent(int64(sys.O_RDWR|sys.O_CREAT|sys.O_TRUNC), 0o600, 5, sys.OK))
	a.Add(writeEvent(1<<16, 1<<16, sys.OK))
	orig := snapshotBytes(t, a.Snapshot(0))

	loaded, err := LoadSnapshot(bytes.NewReader(orig))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	restored := snapshotBytes(t, MergeSnapshots(loaded, &Snapshot{}))
	if !bytes.Equal(restored, orig) {
		t.Errorf("restore not byte-identical\n got: %s\nwant: %s", restored, orig)
	}
	// And merged the other way around.
	restored = snapshotBytes(t, MergeSnapshots(nil, loaded))
	if !bytes.Equal(restored, orig) {
		t.Errorf("nil-merge restore not byte-identical")
	}
}

// TestMergeSnapshotsDoesNotAlias: mutating the merge result must not touch
// the inputs.
func TestMergeSnapshotsDoesNotAlias(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	a.Add(openEvent(0, 0, 3, sys.OK))
	snapA := a.Snapshot(0)
	merged := MergeSnapshots(snapA, nil)
	for i := range merged.Inputs {
		for label := range merged.Inputs[i].Counts {
			merged.Inputs[i].Counts[label] += 100
		}
	}
	if snapA.Inputs[0].Counts["O_RDONLY"] != 1 {
		t.Errorf("merge aliased input snapshot: %v", snapA.Inputs[0].Counts)
	}
}

func TestPartitionHits(t *testing.T) {
	a := NewAnalyzer(DefaultOptions())
	// One open: flags partition (O_RDONLY) + mode partitions + output hit.
	a.Add(openEvent(0, 0, 3, sys.OK))
	hits := a.PartitionHits()
	if hits["open"] < 3 {
		t.Errorf("open hits = %d, want >= 3 (flags + mode + output)", hits["open"])
	}
	if len(hits) != 1 {
		t.Errorf("hits for %d syscalls, want 1: %v", len(hits), hits)
	}
	// Extra-errno output hits count too.
	a.Add(writeEvent(8, -int64(sys.EACCES), sys.EACCES))
	hits = a.PartitionHits()
	if hits["write"] < 2 {
		t.Errorf("write hits = %d, want >= 2 (count partition + extra errno)", hits["write"])
	}
}
