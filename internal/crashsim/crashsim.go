// Package crashsim is the crash-consistency substrate behind the
// CrashMonkey simulation: it models what survives a sudden power loss.
//
// The model is snapshot-based, corresponding to a filesystem that orders
// all writes behind persistence points: the simulator keeps a "persisted"
// deep copy of the filesystem, refreshed at every successful sync
// barrier (sync, fsync, fdatasync). A simulated crash discards the live
// state and recovers from the persisted copy. This is coarser than
// CrashMonkey's block-level reordering (every barrier persists the whole
// filesystem, not just the fsynced file), which makes the oracle
// conservative: anything it flags as lost-after-fsync is a genuine
// durability violation.
//
// The injectable vfs.BugSet.FsyncIgnored bug — fsync acknowledging without
// persisting — is exactly the class this tester exists to catch, and it is
// invisible to every non-crash tester in the repository.
package crashsim

import (
	"fmt"

	"iocov/internal/kernel"
	"iocov/internal/sys"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

// Sim tracks the persisted state of a filesystem under test. Attach it to
// a kernel's sink so sync barriers are observed, or call Persist manually.
type Sim struct {
	live      *vfs.FS
	persisted *vfs.FS
	// barriers counts persistence points taken.
	barriers int64
	// buggy mirrors the live filesystem's FsyncIgnored injection: when
	// set, fsync/fdatasync barriers are acknowledged but not persisted
	// (sync still persists, as the bug class is per-file fsync loss).
	buggy bool
}

// New creates a simulator whose initial persisted state is a snapshot of
// fs as given.
func New(fs *vfs.FS) *Sim {
	return &Sim{
		live:      fs,
		persisted: fs.Clone(),
		buggy:     fs.Config().Bugs.FsyncIgnored,
	}
}

// Persist takes a persistence snapshot (a sync barrier).
func (s *Sim) Persist() {
	s.persisted = s.live.Clone()
	s.barriers++
}

// Barriers reports how many persistence points have been taken.
func (s *Sim) Barriers() int64 { return s.barriers }

// Crash returns the filesystem state after a simulated power loss: a clone
// of the last persisted snapshot. The live filesystem is untouched, so a
// workload can continue and crash again later.
func (s *Sim) Crash() *vfs.FS { return s.persisted.Clone() }

// Sink returns a trace sink that watches for successful sync-family
// syscalls and takes persistence snapshots, mirroring how a crash tester
// instruments the block layer. Chain it with the analyzer via
// trace.MultiSink.
func (s *Sim) Sink() trace.Sink {
	return trace.SinkFunc(func(ev trace.Event) {
		if ev.Err != sys.OK {
			return
		}
		switch ev.Name {
		case "fsync", "fdatasync":
			if s.buggy {
				return // acknowledged but not persisted: the bug
			}
			s.Persist()
		case "sync":
			s.Persist()
		}
	})
}

// Expectation is a durability assertion registered at a persistence point:
// after any later crash, the file must exist with at least the given size.
type Expectation struct {
	Path    string
	MinSize int64
}

// Violation reports one durability expectation a crash image failed.
type Violation struct {
	Expectation
	Got string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: expected durable size >= %d, got %s", v.Path, v.MinSize, v.Got)
}

// Check verifies expectations against a crash image.
func Check(img *vfs.FS, expectations []Expectation) []Violation {
	var out []Violation
	for _, exp := range expectations {
		st, e := img.Lookup(img.Root(), vfs.Root, exp.Path)
		switch {
		case e != sys.OK:
			out = append(out, Violation{exp, e.Name()})
		case st.Size < exp.MinSize:
			out = append(out, Violation{exp, fmt.Sprintf("size %d", st.Size)})
		}
	}
	return out
}

// Workload is a crash-test scenario: it runs ops on the process and
// returns the durability expectations accumulated at its sync barriers.
type Workload func(p *kernel.Proc) []Expectation

// RunCrashTest wires everything together: a fresh filesystem with the
// given bugs, a kernel whose sink feeds the simulator, the workload, a
// crash, and the check. It returns the violations (nil for a correct
// filesystem).
func RunCrashTest(bugs vfs.BugSet, w Workload) []Violation {
	cfg := vfs.DefaultConfig()
	cfg.Bugs = bugs
	fs := vfs.New(cfg)
	sim := New(fs)
	k := kernel.New(fs, kernel.Options{Sink: sim.Sink()})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	expectations := w(p)
	img := sim.Crash()
	return Check(img, expectations)
}
