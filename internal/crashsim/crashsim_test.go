package crashsim

import (
	"bytes"
	"testing"

	"iocov/internal/kernel"
	"iocov/internal/sys"
	"iocov/internal/vfs"
)

// fsyncWorkload writes a file, fsyncs it (registering the durability
// expectation), then writes more without syncing.
func fsyncWorkload(p *kernel.Proc) []Expectation {
	var exps []Expectation
	fd, e := p.Open("/durable", sys.O_CREAT|sys.O_WRONLY, 0o644)
	if e != sys.OK {
		return nil
	}
	_, _ = p.Write(fd, make([]byte, 8192))
	if p.Fsync(fd) == sys.OK {
		exps = append(exps, Expectation{Path: "/durable", MinSize: 8192})
	}
	// Post-barrier writes may legitimately be lost.
	_, _ = p.Write(fd, make([]byte, 4096))
	_ = p.Close(fd)
	return exps
}

func TestCorrectFSKeepsFsyncedData(t *testing.T) {
	if v := RunCrashTest(vfs.BugSet{}, fsyncWorkload); len(v) != 0 {
		t.Errorf("violations on a correct filesystem: %v", v)
	}
}

func TestFsyncIgnoredBugCaught(t *testing.T) {
	v := RunCrashTest(vfs.BugSet{FsyncIgnored: true}, fsyncWorkload)
	if len(v) == 0 {
		t.Fatal("the crash tester missed the fsync-ignored bug")
	}
	if v[0].Path != "/durable" {
		t.Errorf("violation = %v", v[0])
	}
}

// TestFsyncBugInvisibleWithoutCrashSim: the same buggy filesystem passes a
// plain (non-crash) run untouched — only the crash oracle sees the bug,
// which is why CrashMonkey-style testing exists.
func TestFsyncBugInvisibleWithoutCrashSim(t *testing.T) {
	cfg := vfs.DefaultConfig()
	cfg.Bugs.FsyncIgnored = true
	fs := vfs.New(cfg)
	k := kernel.New(fs, kernel.Options{})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	p.Write(fd, []byte("data"))
	if e := p.Fsync(fd); e != sys.OK {
		t.Fatalf("buggy fsync errored: %v", e)
	}
	buf := make([]byte, 4)
	p.Lseek(fd, 0, sys.SEEK_SET)
	if n, e := p.Read(fd, buf); e != sys.OK || n != 4 {
		t.Fatalf("read = %d,%v", n, e)
	}
	if len(fs.CheckConsistency()) != 0 {
		t.Error("non-crash run should see nothing wrong")
	}
}

func TestUnsyncedDataLostOnCrash(t *testing.T) {
	fs := vfs.New(vfs.DefaultConfig())
	sim := New(fs)
	k := kernel.New(fs, kernel.Options{Sink: sim.Sink()})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_WRONLY, 0o644)
	p.Write(fd, make([]byte, 4096))
	// No sync: the crash image must not contain the file.
	img := sim.Crash()
	if _, e := img.Lookup(img.Root(), vfs.Root, "/f"); e != sys.ENOENT {
		t.Errorf("unsynced file survived the crash: %v", e)
	}
	// After a sync barrier it survives.
	p.Sync()
	img = sim.Crash()
	st, e := img.Lookup(img.Root(), vfs.Root, "/f")
	if e != sys.OK || st.Size != 4096 {
		t.Errorf("synced file lost: %+v, %v", st, e)
	}
	if sim.Barriers() != 1 {
		t.Errorf("barriers = %d", sim.Barriers())
	}
}

func TestCrashImageIsIsolated(t *testing.T) {
	fs := vfs.New(vfs.DefaultConfig())
	sim := New(fs)
	k := kernel.New(fs, kernel.Options{Sink: sim.Sink()})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	p.Write(fd, []byte("v1"))
	p.Fsync(fd)
	img := sim.Crash()
	// Mutating the live fs after the crash image is taken must not leak.
	p.Lseek(fd, 0, sys.SEEK_SET)
	p.Write(fd, []byte("v2"))
	p.Fsync(fd)
	data, e := img.ReadFileAt("/f", 0, 2)
	if e != sys.OK || !bytes.Equal(data, []byte("v1")) {
		t.Errorf("crash image mutated: %q, %v", data, e)
	}
	// And the newer barrier gives a newer image.
	img2 := sim.Crash()
	data, _ = img2.ReadFileAt("/f", 0, 2)
	if !bytes.Equal(data, []byte("v2")) {
		t.Errorf("new image stale: %q", data)
	}
}

func TestCloneFidelity(t *testing.T) {
	fs := vfs.New(vfs.DefaultConfig())
	k := kernel.New(fs, kernel.Options{})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	p.Mkdir("/d", 0o750)
	fd, _ := p.Open("/d/f", sys.O_CREAT|sys.O_RDWR, 0o640)
	p.Write(fd, []byte("hello"))
	p.Setxattr("/d/f", "user.k", []byte("v"), 0)
	p.Symlink("/d/f", "/d/link")
	p.Close(fd)

	clone := fs.Clone()
	// Same inventory.
	a, b := fs.WalkStats(), clone.WalkStats()
	if len(a) != len(b) {
		t.Fatalf("inventories differ: %d vs %d", len(a), len(b))
	}
	for path, st := range a {
		cst, ok := b[path]
		if !ok {
			t.Fatalf("clone missing %s", path)
		}
		if cst.Size != st.Size || cst.Mode != st.Mode || cst.Type != st.Type {
			t.Errorf("%s differs: %+v vs %+v", path, st, cst)
		}
	}
	// Data and xattrs copied.
	data, e := clone.ReadFileAt("/d/f", 0, 5)
	if e != sys.OK || string(data) != "hello" {
		t.Errorf("clone data = %q, %v", data, e)
	}
	buf := make([]byte, 4)
	n, e := clone.Getxattr(clone.Root(), vfs.Root, "/d/f", "user.k", buf)
	if e != sys.OK || string(buf[:n]) != "v" {
		t.Errorf("clone xattr = %q, %v", buf[:n], e)
	}
	// Deep copy: writing to the original does not touch the clone.
	ino, _ := fs.LookupInode(fs.Root(), vfs.Root, "/d/f", true)
	fs.WriteAt(vfs.Root, ino, []byte("HELLO"), 0, false)
	data, _ = clone.ReadFileAt("/d/f", 0, 5)
	if string(data) != "hello" {
		t.Errorf("clone not deep: %q", data)
	}
	// Block accounting carried over.
	if clone.UsedBlocks() != fs.UsedBlocks() {
		t.Errorf("blocks differ: %d vs %d", clone.UsedBlocks(), fs.UsedBlocks())
	}
}

func TestCheckReportsMissingAndShort(t *testing.T) {
	fs := vfs.New(vfs.DefaultConfig())
	k := kernel.New(fs, kernel.Options{})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	fd, _ := p.Open("/short", sys.O_CREAT|sys.O_WRONLY, 0o644)
	p.Write(fd, make([]byte, 10))
	p.Close(fd)
	v := Check(fs, []Expectation{
		{Path: "/missing", MinSize: 1},
		{Path: "/short", MinSize: 100},
		{Path: "/short", MinSize: 10}, // satisfied
	})
	if len(v) != 2 {
		t.Fatalf("violations = %v", v)
	}
	if v[0].Got != "ENOENT" || v[1].Got != "size 10" {
		t.Errorf("violations = %v, %v", v[0], v[1])
	}
	if v[0].String() == "" {
		t.Error("violation does not format")
	}
}
