package difftest

import (
	"fmt"
	"math/rand"

	"iocov/internal/coverage"
	"iocov/internal/kernel"
	"iocov/internal/partition"
	"iocov/internal/sys"
	"iocov/internal/vfs"
)

// Config parameterizes a differential-testing run.
type Config struct {
	// Ops is the number of operations to generate.
	Ops int
	// Seed makes runs reproducible.
	Seed int64
	// GuideEvery enables IOCov coverage guidance: every N ops the
	// generator inspects its own input coverage and targets an untested
	// partition (boundary size, unused flag). Zero disables guidance.
	GuideEvery int
	// FS configures the filesystem under test; the zero value uses
	// vfs.DefaultConfig. Injected bugs go in FS.Bugs.
	FS vfs.Config
}

// Mismatch is one divergence between the kernel under test and the
// reference model — a candidate bug.
type Mismatch struct {
	OpIndex int
	Op      string
	Kernel  string
	Model   string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("op %d %s: kernel %s, model %s", m.OpIndex, m.Op, m.Kernel, m.Model)
}

// Result summarizes a run.
type Result struct {
	Ops        int
	Guided     int
	Mismatches []Mismatch
	// Analyzer exposes the run's own input/output coverage, so callers can
	// see what the generator exercised.
	Analyzer *coverage.Analyzer
}

// Tester drives the kernel under test and the model in lockstep.
type Tester struct {
	cfg   Config
	rng   *rand.Rand
	p     *kernel.Proc
	model *Model
	an    *coverage.Analyzer

	files []string
	dirs  []string
	fds   []int

	res Result
}

// Run executes a differential-testing session.
func Run(cfg Config) *Result {
	if cfg.Ops <= 0 {
		cfg.Ops = 1000
	}
	def := vfs.DefaultConfig()
	if cfg.FS.BlockSize == 0 && cfg.FS.CapacityBytes == 0 {
		bugs := cfg.FS.Bugs
		cfg.FS = def
		cfg.FS.Bugs = bugs
	}
	fs := vfs.New(cfg.FS)
	an := coverage.NewAnalyzer(coverage.DefaultOptions())
	k := kernel.New(fs, kernel.Options{Sink: an})
	fsCfg := fs.Config()
	t := &Tester{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		p:     k.NewProc(kernel.ProcOptions{Cred: vfs.Root}),
		model: NewModel(fsCfg.MaxFileSize, fsCfg.MaxXattrValue, fsCfg.XattrCapacity),
		an:    an,
	}
	t.res.Analyzer = an
	for i := 0; i < 12; i++ {
		t.files = append(t.files, fmt.Sprintf("/f%d", i))
	}
	for i := 0; i < 4; i++ {
		d := fmt.Sprintf("/d%d", i)
		t.dirs = append(t.dirs, d)
		ke := t.p.Mkdir(d, 0o755)
		me := t.model.Mkdir(d, 0o755)
		t.compare(-1, fmt.Sprintf("mkdir(%s)", d), int64(0), ke, 0, me)
	}
	for i := 0; i < cfg.Ops; i++ {
		if cfg.GuideEvery > 0 && i > 0 && i%cfg.GuideEvery == 0 {
			t.guidedOp(i)
			t.res.Guided++
		} else {
			t.randomOp(i)
		}
		if i%64 == 63 {
			t.checkState(i)
		}
	}
	t.checkState(cfg.Ops)
	t.res.Ops = cfg.Ops
	return &t.res
}

// compare records a mismatch when outcomes diverge. rets are compared only
// when both sides succeed.
func (t *Tester) compare(i int, op string, kret int64, kerr sys.Errno, mret int64, merr sys.Errno) {
	if kerr != merr {
		t.res.Mismatches = append(t.res.Mismatches, Mismatch{
			OpIndex: i, Op: op,
			Kernel: fmt.Sprintf("errno %s", kerr), Model: fmt.Sprintf("errno %s", merr),
		})
		return
	}
	if kerr == sys.OK && kret != mret {
		t.res.Mismatches = append(t.res.Mismatches, Mismatch{
			OpIndex: i, Op: op,
			Kernel: fmt.Sprintf("ret %d", kret), Model: fmt.Sprintf("ret %d", mret),
		})
	}
}

// checkState compares observable file sizes between kernel and model.
func (t *Tester) checkState(i int) {
	for _, f := range t.files {
		mSize, ok := t.model.FileSize(f)
		st, ke := t.p.Stat(f)
		switch {
		case ok && ke == sys.OK:
			if st.Size != mSize {
				t.res.Mismatches = append(t.res.Mismatches, Mismatch{
					OpIndex: i, Op: fmt.Sprintf("stat(%s)", f),
					Kernel: fmt.Sprintf("size %d", st.Size), Model: fmt.Sprintf("size %d", mSize),
				})
			}
		case ok != (ke == sys.OK):
			t.res.Mismatches = append(t.res.Mismatches, Mismatch{
				OpIndex: i, Op: fmt.Sprintf("stat(%s)", f),
				Kernel: ke.Name(), Model: fmt.Sprintf("exists=%v", ok),
			})
		}
	}
}

// generator flag pool: flags the model understands (semantic ones) plus
// pass-through flags that only affect input coverage.
var genFlags = []int{
	sys.O_CREAT, sys.O_EXCL, sys.O_TRUNC, sys.O_APPEND, sys.O_LARGEFILE,
	sys.O_NONBLOCK, sys.O_SYNC, sys.O_DSYNC, sys.O_CLOEXEC, sys.O_NOATIME,
	sys.O_NOCTTY, sys.O_ASYNC,
}

func (t *Tester) randFlags() int {
	flags := []int{sys.O_RDONLY, sys.O_WRONLY, sys.O_RDWR}[t.rng.Intn(3)]
	n := t.rng.Intn(4)
	for j := 0; j < n; j++ {
		flags |= genFlags[t.rng.Intn(len(genFlags))]
	}
	return flags
}

func (t *Tester) randSize() int64 {
	k := t.rng.Intn(22)
	base := int64(1) << uint(k)
	return base + t.rng.Int63n(base)
}

func (t *Tester) randomOp(i int) {
	switch t.rng.Intn(12) {
	case 0, 1:
		t.opOpen(i, t.randFlags(), 0o644)
	case 2, 3:
		t.opWrite(i, t.randSize())
	case 4:
		t.opRead(i, t.randSize())
	case 5:
		t.opLseek(i, t.rng.Int63n(1<<20), t.rng.Intn(5))
	case 6:
		t.opTruncate(i, t.rng.Int63n(1<<22))
	case 7:
		t.opChmodMkdir(i)
	case 8:
		t.opXattr(i, int(t.rng.Int63n(4096)))
	case 9:
		t.opClose(i)
	case 10:
		t.opFallocate(i)
	case 11:
		t.opRemovexattr(i)
	}
}

func (t *Tester) opFallocate(i int) {
	fd, ok := t.pickFD()
	if !ok {
		return
	}
	mode := []int{0, 0, 0, vfs.FallocKeepSize, 0x99}[t.rng.Intn(5)]
	off := t.rng.Int63n(1 << 20)
	length := t.rng.Int63n(1<<20) + 1
	if t.rng.Intn(8) == 0 {
		length = 0 // EINVAL path
	}
	ke := t.p.Fallocate(fd, mode, off, length)
	me := t.model.Fallocate(fd, mode, off, length)
	t.compare(i, fmt.Sprintf("fallocate(fd=%d,%#x,%d,%d)", fd, mode, off, length), 0, ke, 0, me)
}

func (t *Tester) opRemovexattr(i int) {
	path := t.files[t.rng.Intn(len(t.files))]
	name := fmt.Sprintf("user.x%d", t.rng.Intn(3))
	ke := t.p.Removexattr(path, name)
	me := t.model.Removexattr(path, name)
	t.compare(i, fmt.Sprintf("removexattr(%s,%s)", path, name), 0, ke, 0, me)
}

// guidedOp consults the run's own IOCov coverage for untested partitions
// and generates a boundary-value op targeting one of them. This is the
// coverage feedback loop the paper proposes.
func (t *Tester) guidedOp(i int) {
	switch t.rng.Intn(4) {
	case 0:
		// Untested open flag: include it in the next open.
		if rep := t.an.InputReport("open", "flags"); rep != nil {
			untested := rep.Untested()
			if len(untested) > 0 {
				name := untested[t.rng.Intn(len(untested))]
				if bits, ok := sys.EncodeOpenFlags([]string{name}); ok {
					// O_PATH/O_TMPFILE/O_DIRECT have side conditions the
					// model does not predict; skip them.
					if bits&(sys.O_PATH|sys.O_TMPFILE|sys.O_DIRECT|sys.O_DIRECTORY|sys.O_NOFOLLOW) == 0 {
						t.opOpen(i, t.randFlags()|bits, 0o644)
						return
					}
				}
			}
		}
		t.opOpen(i, t.randFlags(), 0o644)
	case 1:
		// Untested write-size bucket: write exactly at its lower boundary.
		if rep := t.an.InputReport("write", "count"); rep != nil {
			for _, label := range rep.Untested() {
				if size, ok := boundaryFromLabel(label, 24); ok {
					t.opWrite(i, size)
					return
				}
			}
		}
		t.opWrite(i, 0) // the zero boundary
	case 2:
		// Untested truncate-length bucket, up to the 2^32 boundary; the
		// 2^31 probe crosses the large-file limit, the partition whose
		// untestedness hides the O_LARGEFILE bug class.
		if rep := t.an.InputReport("truncate", "length"); rep != nil {
			for _, label := range rep.Untested() {
				if length, ok := boundaryFromLabel(label, 32); ok {
					t.opTruncate(i, length)
					return
				}
			}
		}
		t.opTruncate(i, 1<<31)
	default:
		// Untested setxattr-size bucket, capped at the legal maximum —
		// exactly the probe that exposes Figure 1's bug.
		maxV := int64(t.model.maxXattrValue)
		if rep := t.an.InputReport("setxattr", "size"); rep != nil {
			for _, label := range rep.Untested() {
				if size, ok := boundaryFromLabel(label, 16); ok && size <= maxV {
					t.opXattr(i, int(size))
					return
				}
			}
		}
		t.opXattr(i, int(maxV))
	}
}

// boundaryFromLabel converts an untested numeric partition label back to
// its boundary value ("2^12" -> 4096, "=0" -> 0), rejecting buckets above
// maxLog2 (untestably large).
func boundaryFromLabel(label string, maxLog2 int) (int64, bool) {
	if label == partition.LabelZero {
		return 0, true
	}
	var k int
	if _, err := fmt.Sscanf(label, "2^%d", &k); err != nil {
		return 0, false
	}
	if k < 0 || k > maxLog2 {
		return 0, false
	}
	return int64(1) << uint(k), true
}

func (t *Tester) opOpen(i int, flags int, mode uint32) {
	path := t.files[t.rng.Intn(len(t.files))]
	kfd, ke := t.p.Open(path, flags, mode)
	var me sys.Errno
	if ke == sys.OK {
		me = t.model.Open(kfd, path, flags, mode)
	} else {
		// Predict with a throwaway fd number; the model must agree on the
		// errno.
		me = t.model.Open(-1, path, flags, mode)
		if me == sys.OK {
			delete(t.model.fds, -1)
		}
	}
	t.compare(i, fmt.Sprintf("open(%s,%s)", path, sys.FormatOpenFlags(flags)), 0, ke, 0, me)
	if ke == sys.OK && me == sys.OK {
		t.fds = append(t.fds, kfd)
	} else if ke == sys.OK {
		_ = t.p.Close(kfd)
	}
}

func (t *Tester) pickFD() (int, bool) {
	if len(t.fds) == 0 {
		return 0, false
	}
	return t.fds[t.rng.Intn(len(t.fds))], true
}

func (t *Tester) opWrite(i int, size int64) {
	fd, ok := t.pickFD()
	if !ok {
		t.opOpen(i, sys.O_CREAT|sys.O_RDWR, 0o644)
		return
	}
	if size > 1<<24 {
		size = 1 << 24
	}
	kn, ke := t.p.Write(fd, make([]byte, size))
	mn, me := t.model.Write(fd, size)
	t.compare(i, fmt.Sprintf("write(fd=%d,%d)", fd, size), int64(kn), ke, mn, me)
}

func (t *Tester) opRead(i int, size int64) {
	fd, ok := t.pickFD()
	if !ok {
		return
	}
	if size > 1<<24 {
		size = 1 << 24
	}
	kn, ke := t.p.Read(fd, make([]byte, size))
	mn, me := t.model.Read(fd, size)
	t.compare(i, fmt.Sprintf("read(fd=%d,%d)", fd, size), int64(kn), ke, mn, me)
}

func (t *Tester) opLseek(i int, off int64, whence int) {
	fd, ok := t.pickFD()
	if !ok {
		return
	}
	kp, ke := t.p.Lseek(fd, off, whence)
	mp, me := t.model.Lseek(fd, off, whence)
	t.compare(i, fmt.Sprintf("lseek(fd=%d,%d,%s)", fd, off, sys.WhenceName(whence)), kp, ke, mp, me)
}

func (t *Tester) opTruncate(i int, length int64) {
	if t.rng.Intn(2) == 0 {
		if fd, ok := t.pickFD(); ok {
			ke := t.p.Ftruncate(fd, length)
			me := t.model.Ftruncate(fd, length)
			t.compare(i, fmt.Sprintf("ftruncate(fd=%d,%d)", fd, length), 0, ke, 0, me)
			return
		}
	}
	path := t.files[t.rng.Intn(len(t.files))]
	ke := t.p.Truncate(path, length)
	me := t.model.Truncate(path, length)
	t.compare(i, fmt.Sprintf("truncate(%s,%d)", path, length), 0, ke, 0, me)
}

func (t *Tester) opChmodMkdir(i int) {
	if t.rng.Intn(2) == 0 {
		path := t.files[t.rng.Intn(len(t.files))]
		mode := uint32(t.rng.Intn(0o1000))
		ke := t.p.Chmod(path, mode)
		me := t.model.Chmod(path, mode)
		t.compare(i, fmt.Sprintf("chmod(%s,%o)", path, mode), 0, ke, 0, me)
		return
	}
	d := fmt.Sprintf("/d%d", t.rng.Intn(8))
	ke := t.p.Mkdir(d, 0o755)
	me := t.model.Mkdir(d, 0o755)
	t.compare(i, fmt.Sprintf("mkdir(%s)", d), 0, ke, 0, me)
}

func (t *Tester) opXattr(i int, size int) {
	path := t.files[t.rng.Intn(len(t.files))]
	name := fmt.Sprintf("user.x%d", t.rng.Intn(3))
	if t.rng.Intn(3) == 0 {
		bufSize := t.rng.Intn(2 * (size + 1))
		kn, ke := t.p.Getxattr(path, name, make([]byte, bufSize))
		mn, me := t.model.Getxattr(path, name, bufSize)
		t.compare(i, fmt.Sprintf("getxattr(%s,%s,%d)", path, name, bufSize), int64(kn), ke, mn, me)
		return
	}
	flags := []int{0, 0, 0, sys.XATTR_CREATE, sys.XATTR_REPLACE}[t.rng.Intn(5)]
	ke := t.p.Setxattr(path, name, make([]byte, size), flags)
	me := t.model.Setxattr(path, name, size, flags)
	t.compare(i, fmt.Sprintf("setxattr(%s,%s,%d,%d)", path, name, size, flags), 0, ke, 0, me)
}

func (t *Tester) opClose(i int) {
	if len(t.fds) == 0 {
		return
	}
	idx := t.rng.Intn(len(t.fds))
	fd := t.fds[idx]
	t.fds = append(t.fds[:idx], t.fds[idx+1:]...)
	ke := t.p.Close(fd)
	me := t.model.Close(fd)
	t.compare(i, fmt.Sprintf("close(fd=%d)", fd), 0, ke, 0, me)
}
