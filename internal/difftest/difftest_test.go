package difftest

import (
	"strings"
	"testing"

	"iocov/internal/sys"
	"iocov/internal/vfs"
)

// TestCleanFSNoMismatches: on a correct filesystem the kernel and the model
// must agree on every generated op — any disagreement is a bug in one of
// the two independent implementations.
func TestCleanFSNoMismatches(t *testing.T) {
	res := Run(Config{Ops: 8000, Seed: 42, GuideEvery: 50})
	if len(res.Mismatches) != 0 {
		for i, m := range res.Mismatches {
			if i > 10 {
				break
			}
			t.Errorf("mismatch: %s", m)
		}
		t.Fatalf("%d mismatches on a correct filesystem", len(res.Mismatches))
	}
	if res.Ops != 8000 || res.Guided == 0 {
		t.Errorf("ops=%d guided=%d", res.Ops, res.Guided)
	}
}

// TestCleanFSManySeeds: robustness across seeds.
func TestCleanFSManySeeds(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		res := Run(Config{Ops: 1500, Seed: seed, GuideEvery: 40})
		if len(res.Mismatches) != 0 {
			t.Fatalf("seed %d: %d mismatches, first: %s", seed, len(res.Mismatches), res.Mismatches[0])
		}
	}
}

func findsBug(t *testing.T, bugs vfs.BugSet, guided bool, wantSubstr string) bool {
	t.Helper()
	guide := 0
	if guided {
		guide = 25
	}
	for seed := int64(0); seed < 6; seed++ {
		cfg := Config{Ops: 6000, Seed: seed, GuideEvery: guide}
		cfg.FS = vfs.DefaultConfig()
		cfg.FS.Bugs = bugs
		res := Run(cfg)
		for _, m := range res.Mismatches {
			if strings.Contains(m.Op, wantSubstr) {
				return true
			}
		}
	}
	return false
}

// TestFindsNowaitBug: the injected NOWAIT ENOSPC bug surfaces as a write
// mismatch once the generator produces O_NONBLOCK descriptors.
func TestFindsNowaitBug(t *testing.T) {
	if !findsBug(t, vfs.BugSet{NowaitWriteENOSPC: true}, true, "write") {
		t.Error("differential tester missed the NOWAIT write bug")
	}
}

// TestFindsTruncateExpandBug: block-aligned expansion shows up either as a
// truncate outcome divergence or a state-check size divergence.
func TestFindsTruncateExpandBug(t *testing.T) {
	found := findsBug(t, vfs.BugSet{TruncateExpandError: true}, true, "truncate") ||
		findsBug(t, vfs.BugSet{TruncateExpandError: true}, true, "stat") ||
		findsBug(t, vfs.BugSet{TruncateExpandError: true}, true, "lseek")
	if !found {
		t.Error("differential tester missed the truncate-expand bug")
	}
}

// TestFindsXattrOverflowWithGuidance: Figure 1's bug needs the max-size
// boundary probe, which only coverage guidance generates.
func TestFindsXattrOverflowWithGuidance(t *testing.T) {
	if !findsBug(t, vfs.BugSet{XattrSizeOverflow: true}, true, "setxattr") {
		t.Error("guided differential tester missed the xattr overflow bug")
	}
}

// TestFindsLargefileBug: sparse truncates beyond 2 GiB plus opens without
// O_LARGEFILE expose the missing EOVERFLOW check.
func TestFindsLargefileBug(t *testing.T) {
	bugs := vfs.BugSet{LargefileOpen: true}
	found := false
	for seed := int64(0); seed < 10 && !found; seed++ {
		cfg := Config{Ops: 8000, Seed: seed, GuideEvery: 25}
		cfg.FS = vfs.DefaultConfig()
		cfg.FS.Bugs = bugs
		res := Run(cfg)
		for _, m := range res.Mismatches {
			if strings.Contains(m.Op, "open") {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("differential tester missed the largefile-open bug")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Run(Config{Ops: 2000, Seed: 5, GuideEvery: 30})
	b := Run(Config{Ops: 2000, Seed: 5, GuideEvery: 30})
	if len(a.Mismatches) != len(b.Mismatches) {
		t.Errorf("nondeterministic mismatch counts: %d vs %d", len(a.Mismatches), len(b.Mismatches))
	}
	fa := a.Analyzer.InputReport("open", "flags").Frequencies()
	fb := b.Analyzer.InputReport("open", "flags").Frequencies()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("nondeterministic coverage at %d", i)
		}
	}
}

// TestGuidanceImprovesInputCoverage: with guidance the run covers more open
// flag partitions than without, on the same budget.
func TestGuidanceImprovesInputCoverage(t *testing.T) {
	plain := Run(Config{Ops: 4000, Seed: 9})
	guided := Run(Config{Ops: 4000, Seed: 9, GuideEvery: 20})
	pc := plain.Analyzer.InputReport("open", "flags").Covered()
	gc := guided.Analyzer.InputReport("open", "flags").Covered()
	if gc < pc {
		t.Errorf("guided covered %d flags, plain %d; guidance should not reduce coverage", gc, pc)
	}
	// Guided write sizes should reach buckets plain misses.
	pw := plain.Analyzer.InputReport("write", "count").Covered()
	gw := guided.Analyzer.InputReport("write", "count").Covered()
	if gw <= pw {
		t.Errorf("guided write buckets %d <= plain %d", gw, pw)
	}
}

func TestBoundaryFromLabel(t *testing.T) {
	cases := []struct {
		label string
		want  int64
		ok    bool
	}{
		{"=0", 0, true}, {"2^0", 1, true}, {"2^12", 4096, true},
		{"2^24", 1 << 24, true}, {"2^25", 0, false}, {"O_SYNC", 0, false},
		{"<0", 0, false},
	}
	for _, c := range cases {
		got, ok := boundaryFromLabel(c.label, 24)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("boundaryFromLabel(%q) = %d,%v want %d,%v", c.label, got, ok, c.want, c.ok)
		}
	}
}

// TestModelDirectly exercises the reference model's own corner cases.
func TestModelDirectly(t *testing.T) {
	m := NewModel(1<<40, 1<<16, 1<<16)
	if e := m.Mkdir("/d", 0o755); e != sys.OK {
		t.Fatal(e)
	}
	if e := m.Mkdir("/d", 0o755); e != sys.EEXIST {
		t.Errorf("mkdir twice = %v", e)
	}
	if e := m.Open(3, "/f", sys.O_CREAT|sys.O_RDWR, 0o644); e != sys.OK {
		t.Fatal(e)
	}
	if n, e := m.Write(3, 100); e != sys.OK || n != 100 {
		t.Errorf("write = %d,%v", n, e)
	}
	if pos, e := m.Lseek(3, 0, sys.SEEK_END); e != sys.OK || pos != 100 {
		t.Errorf("seek end = %d,%v", pos, e)
	}
	if e := m.Open(4, "/d", sys.O_WRONLY, 0); e != sys.EISDIR {
		t.Errorf("write-open dir = %v", e)
	}
	if e := m.Open(4, "/nope", sys.O_RDONLY, 0); e != sys.ENOENT {
		t.Errorf("open missing = %v", e)
	}
	if e := m.Close(3); e != sys.OK {
		t.Fatal(e)
	}
	if e := m.Close(3); e != sys.EBADF {
		t.Errorf("double close = %v", e)
	}
	// Large-file rule.
	if e := m.Truncate("/f", 1<<32); e != sys.OK {
		t.Fatal(e)
	}
	if e := m.Open(5, "/f", sys.O_RDONLY, 0); e != sys.EOVERFLOW {
		t.Errorf("2GiB open without O_LARGEFILE = %v", e)
	}
	if e := m.Open(5, "/f", sys.O_RDONLY|sys.O_LARGEFILE, 0); e != sys.OK {
		t.Errorf("with O_LARGEFILE = %v", e)
	}
	// Xattr capacity: a 60000-byte value fits (60000 + name + overhead <
	// 65536); a second one does not.
	if e := m.Setxattr("/f", "user.a", 60000, 0); e != sys.OK {
		t.Errorf("first xattr = %v", e)
	}
	if e := m.Setxattr("/f", "user.b", 60000, 0); e != sys.ENOSPC {
		t.Errorf("over-capacity xattr = %v", e)
	}
	if e := m.Setxattr("/f", "user.big", 1<<17, 0); e != sys.E2BIG {
		t.Errorf("oversized xattr = %v", e)
	}
	if n, e := m.Getxattr("/f", "user.a", 0); e != sys.OK || n != 60000 {
		t.Errorf("getxattr size query = %d,%v", n, e)
	}
	if _, e := m.Getxattr("/f", "user.a", 5); e != sys.ERANGE {
		t.Errorf("short buffer = %v", e)
	}
}
