// Package difftest implements the paper's future-work direction (§6): a
// differential file-system tester built on IOCov. A generator produces
// syscall workloads, biased by IOCov coverage feedback toward untested
// input partitions (boundary sizes, unused flags); every operation runs
// against the simulated kernel AND an independent reference model of POSIX
// semantics, and any divergence in outcome or observable state is reported
// as a candidate bug.
//
// The reference model is deliberately a from-scratch second implementation
// — a flat-namespace spec interpreter — rather than a second instance of
// internal/vfs, so that an injected VFS bug cannot hide in shared code.
package difftest

import (
	"iocov/internal/sys"
)

// mfile is the model's record of a regular file.
type mfile struct {
	size   int64
	mode   uint32
	xattrs map[string]int // name -> value size
}

// mdir is the model's record of a directory.
type mdir struct {
	mode uint32
}

// mfd is an open descriptor in the model.
type mfd struct {
	path   string
	flags  int
	pos    int64
	closed bool
}

// Model is the reference interpreter. It understands the flat namespace the
// generator uses: a single working directory of files and directories, no
// symlinks, root credentials.
type Model struct {
	files map[string]*mfile
	dirs  map[string]*mdir
	fds   map[int]*mfd

	// limits mirror the kernel configuration under test.
	maxFileSize   int64
	maxXattrValue int
	xattrCapacity int
	largeFileLim  int64
	xattrOverhead int
}

// NewModel builds a model with the given limits (matching vfs.Config).
func NewModel(maxFileSize int64, maxXattrValue, xattrCapacity int) *Model {
	m := &Model{
		files:         make(map[string]*mfile),
		dirs:          make(map[string]*mdir),
		fds:           make(map[int]*mfd),
		maxFileSize:   maxFileSize,
		maxXattrValue: maxXattrValue,
		xattrCapacity: xattrCapacity,
		largeFileLim:  1 << 31,
		xattrOverhead: 16 + 6, // entry overhead + "user.x" style name length is applied per-name below
	}
	m.dirs["/"] = &mdir{mode: 0o755}
	return m
}

// Open predicts open(2)'s outcome and registers fd on success.
func (m *Model) Open(fd int, path string, flags int, mode uint32) sys.Errno {
	accWrite := flags&sys.O_ACCMODE == sys.O_WRONLY || flags&sys.O_ACCMODE == sys.O_RDWR
	if flags&sys.O_ACCMODE == sys.O_ACCMODE {
		return sys.EINVAL
	}
	if _, isDir := m.dirs[path]; isDir {
		if accWrite {
			return sys.EISDIR
		}
		m.fds[fd] = &mfd{path: path, flags: flags}
		return sys.OK
	}
	f, exists := m.files[path]
	switch {
	case exists && flags&(sys.O_CREAT|sys.O_EXCL) == sys.O_CREAT|sys.O_EXCL:
		return sys.EEXIST
	case !exists && flags&sys.O_CREAT == 0:
		return sys.ENOENT
	case flags&sys.O_DIRECTORY != 0:
		if exists {
			return sys.ENOTDIR
		}
		return sys.ENOENT
	}
	if !exists {
		f = &mfile{mode: mode & 0o7777, xattrs: make(map[string]int)}
		m.files[path] = f
	}
	// generic_file_open: >= 2 GiB requires O_LARGEFILE.
	if f.size >= m.largeFileLim && flags&sys.O_LARGEFILE == 0 {
		if !exists {
			// cannot happen: a fresh file has size 0
			return sys.EOVERFLOW
		}
		return sys.EOVERFLOW
	}
	if flags&sys.O_TRUNC != 0 && accWrite {
		f.size = 0
	}
	pos := int64(0)
	if flags&sys.O_APPEND != 0 {
		pos = f.size
	}
	m.fds[fd] = &mfd{path: path, flags: flags, pos: pos}
	return sys.OK
}

func (m *Model) fd(fd int) (*mfd, sys.Errno) {
	f, ok := m.fds[fd]
	if !ok || f.closed {
		return nil, sys.EBADF
	}
	return f, sys.OK
}

// Write predicts write(2): returns the byte count and errno.
func (m *Model) Write(fd int, count int64) (int64, sys.Errno) {
	f, e := m.fd(fd)
	if e != sys.OK {
		return 0, e
	}
	acc := f.flags & sys.O_ACCMODE
	if acc != sys.O_WRONLY && acc != sys.O_RDWR {
		return 0, sys.EBADF
	}
	file := m.files[f.path]
	if file == nil {
		return 0, sys.EISDIR
	}
	if count == 0 {
		return 0, sys.OK
	}
	pos := f.pos
	if f.flags&sys.O_APPEND != 0 {
		pos = file.size
	}
	end := pos + count
	if end > m.maxFileSize {
		return 0, sys.EFBIG
	}
	f.pos = pos + count
	if end > file.size {
		file.size = end
	}
	return count, sys.OK
}

// Read predicts read(2)'s byte count.
func (m *Model) Read(fd int, count int64) (int64, sys.Errno) {
	f, e := m.fd(fd)
	if e != sys.OK {
		return 0, e
	}
	acc := f.flags & sys.O_ACCMODE
	if acc != sys.O_RDONLY && acc != sys.O_RDWR {
		return 0, sys.EBADF
	}
	file := m.files[f.path]
	if file == nil {
		return 0, sys.EISDIR
	}
	n := file.size - f.pos
	if n <= 0 {
		return 0, sys.OK
	}
	if n > count {
		n = count
	}
	f.pos += n
	return n, sys.OK
}

// Lseek predicts lseek(2).
func (m *Model) Lseek(fd int, off int64, whence int) (int64, sys.Errno) {
	f, e := m.fd(fd)
	if e != sys.OK {
		return 0, e
	}
	var size int64
	if file := m.files[f.path]; file != nil {
		size = file.size
	}
	var target int64
	switch whence {
	case sys.SEEK_SET:
		target = off
	case sys.SEEK_CUR:
		target = f.pos + off
	case sys.SEEK_END:
		target = size + off
	case sys.SEEK_DATA:
		if off >= size {
			return 0, sys.ENXIO
		}
		target = off
	case sys.SEEK_HOLE:
		if off >= size {
			return 0, sys.ENXIO
		}
		target = size
	default:
		return 0, sys.EINVAL
	}
	if target < 0 {
		return 0, sys.EINVAL
	}
	f.pos = target
	return target, sys.OK
}

// Truncate predicts truncate(2) by path.
func (m *Model) Truncate(path string, length int64) sys.Errno {
	if _, isDir := m.dirs[path]; isDir {
		return sys.EISDIR
	}
	f, ok := m.files[path]
	if !ok {
		return sys.ENOENT
	}
	if length < 0 {
		return sys.EINVAL
	}
	if length > m.maxFileSize {
		return sys.EFBIG
	}
	f.size = length
	return sys.OK
}

// Ftruncate predicts ftruncate(2).
func (m *Model) Ftruncate(fd int, length int64) sys.Errno {
	f, e := m.fd(fd)
	if e != sys.OK {
		return e
	}
	acc := f.flags & sys.O_ACCMODE
	if acc != sys.O_WRONLY && acc != sys.O_RDWR {
		return sys.EINVAL
	}
	file := m.files[f.path]
	if file == nil {
		return sys.EISDIR
	}
	if length < 0 {
		return sys.EINVAL
	}
	if length > m.maxFileSize {
		return sys.EFBIG
	}
	file.size = length
	return sys.OK
}

// Mkdir predicts mkdir(2).
func (m *Model) Mkdir(path string, mode uint32) sys.Errno {
	if _, ok := m.dirs[path]; ok {
		return sys.EEXIST
	}
	if _, ok := m.files[path]; ok {
		return sys.EEXIST
	}
	m.dirs[path] = &mdir{mode: mode & 0o7777}
	return sys.OK
}

// Chmod predicts chmod(2).
func (m *Model) Chmod(path string, mode uint32) sys.Errno {
	if d, ok := m.dirs[path]; ok {
		d.mode = mode & 0o7777
		return sys.OK
	}
	if f, ok := m.files[path]; ok {
		f.mode = mode & 0o7777
		return sys.OK
	}
	return sys.ENOENT
}

// Close predicts close(2).
func (m *Model) Close(fd int) sys.Errno {
	f, e := m.fd(fd)
	if e != sys.OK {
		return e
	}
	f.closed = true
	return sys.OK
}

// Setxattr predicts setxattr(2) including the capacity check that Figure
// 1's bug omits.
func (m *Model) Setxattr(path, name string, size int, flags int) sys.Errno {
	f, ok := m.files[path]
	if !ok {
		if _, isDir := m.dirs[path]; isDir {
			return sys.OK // directories accept xattrs; model them loosely
		}
		return sys.ENOENT
	}
	if flags&^(sys.XATTR_CREATE|sys.XATTR_REPLACE) != 0 ||
		flags == sys.XATTR_CREATE|sys.XATTR_REPLACE {
		return sys.EINVAL
	}
	if size > m.maxXattrValue {
		return sys.E2BIG
	}
	old, exists := f.xattrs[name]
	if flags == sys.XATTR_CREATE && exists {
		return sys.EEXIST
	}
	if flags == sys.XATTR_REPLACE && !exists {
		return sys.ENODATA
	}
	total := 0
	for n, sz := range f.xattrs {
		total += len(n) + sz + 16
	}
	total += len(name) + size + 16
	if exists {
		total -= len(name) + old + 16
	}
	if total > m.xattrCapacity {
		return sys.ENOSPC
	}
	f.xattrs[name] = size
	return sys.OK
}

// Getxattr predicts getxattr(2)'s returned size.
func (m *Model) Getxattr(path, name string, bufSize int) (int64, sys.Errno) {
	f, ok := m.files[path]
	if !ok {
		return 0, sys.ENOENT
	}
	size, ok := f.xattrs[name]
	if !ok {
		return 0, sys.ENODATA
	}
	if bufSize == 0 {
		return int64(size), sys.OK
	}
	if bufSize < size {
		return 0, sys.ERANGE
	}
	return int64(size), sys.OK
}

// Fallocate predicts fallocate(2) with mode 0 or FALLOC_FL_KEEP_SIZE.
func (m *Model) Fallocate(fd int, mode int, off, length int64) sys.Errno {
	f, e := m.fd(fd)
	if e != sys.OK {
		return e
	}
	acc := f.flags & sys.O_ACCMODE
	if acc != sys.O_WRONLY && acc != sys.O_RDWR {
		return sys.EBADF
	}
	file := m.files[f.path]
	if file == nil {
		return sys.ENODEV // directories are not fallocate targets
	}
	if off < 0 || length <= 0 {
		return sys.EINVAL
	}
	if mode&^1 != 0 { // only FALLOC_FL_KEEP_SIZE understood
		return sys.ENOTSUP
	}
	end := off + length
	if end > m.maxFileSize {
		return sys.EFBIG
	}
	if mode&1 == 0 && end > file.size {
		file.size = end
	}
	return sys.OK
}

// Removexattr predicts removexattr(2).
func (m *Model) Removexattr(path, name string) sys.Errno {
	f, ok := m.files[path]
	if !ok {
		if _, isDir := m.dirs[path]; isDir {
			return sys.ENODATA // model stores no directory xattrs
		}
		return sys.ENOENT
	}
	if _, ok := f.xattrs[name]; !ok {
		return sys.ENODATA
	}
	delete(f.xattrs, name)
	return sys.OK
}

// FileSize reports the model's view of a file size, for state comparison.
func (m *Model) FileSize(path string) (int64, bool) {
	f, ok := m.files[path]
	if !ok {
		return 0, false
	}
	return f.size, true
}
