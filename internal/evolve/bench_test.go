package evolve

import (
	"testing"

	"iocov/internal/syz"
)

// BenchmarkEvolveGeneration measures full evolutionary generations —
// candidate construction, parallel evaluation on isolated pipelines, greedy
// acceptance, fitness fold — in generations/sec (b.N generations per run
// via the generation budget).
func BenchmarkEvolveGeneration(b *testing.B) {
	seed := syz.Generate(syz.GenConfig{Programs: 20, Seed: 7, Dir: "/evolve"})
	b.ResetTimer()
	done := 0
	for done < b.N {
		res, err := Run(seed, Config{Seed: 7, Generations: b.N - done, Stall: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		if res.Generations == 0 {
			b.Fatal("no generations ran")
		}
		done += res.Generations
	}
}
