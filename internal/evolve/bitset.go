package evolve

import "math/bits"

// The global hit bitset: one bit per (target space, domain ordinal) pair,
// laid out by layout. Word-wise operations keep the per-candidate
// acceptance test allocation-free.

func newBitset(n int) []uint64 {
	return make([]uint64, (n+63)/64)
}

// setBit marks bit i.
//
//iocov:hotpath
//iocov:bounds-ok i is a layout bit index < layout.total and the bitset is allocated newBitset(layout.total) words
func setBit(bs []uint64, i int) {
	bs[i/64] |= 1 << uint(i%64)
}

// hasBit reports bit i.
//
//iocov:hotpath
//iocov:bounds-ok i is a layout bit index < layout.total and the bitset is allocated newBitset(layout.total) words
func hasBit(bs []uint64, i int) bool {
	return bs[i/64]&(1<<uint(i%64)) != 0
}

// orInto folds src into dst (dst |= src).
//
//iocov:hotpath
//iocov:bounds-ok dst and src are both newBitset(layout.total) words of the same layout
func orInto(dst, src []uint64) {
	for i := range src {
		dst[i] |= src[i]
	}
}

// anyNew reports whether cand covers a bit outside covered.
//
//iocov:hotpath
//iocov:bounds-ok covered and cand are both newBitset(layout.total) words of the same layout
func anyNew(covered, cand []uint64) bool {
	for i := range cand {
		if cand[i]&^covered[i] != 0 {
			return true
		}
	}
	return false
}

// countNew counts cand's bits outside covered.
//
//iocov:hotpath
//iocov:bounds-ok covered and cand are both newBitset(layout.total) words of the same layout
func countNew(covered, cand []uint64) int {
	n := 0
	for i := range cand {
		n += bits.OnesCount64(cand[i] &^ covered[i])
	}
	return n
}
