package evolve

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"iocov/internal/coverage"
	"iocov/internal/harness"
	"iocov/internal/kernel"
	"iocov/internal/suites/workload"
	"iocov/internal/syz"
	"iocov/internal/vfs"
)

// Config parameterizes the evolutionary loop.
type Config struct {
	// Seed drives every random choice in the run (per-candidate RNGs are
	// derived from it; there is no other randomness source).
	Seed int64
	// Generations bounds the loop (default 16).
	Generations int
	// Explore is the number of random mutants per generation on top of the
	// targeted probes (default 8).
	Explore int
	// Stall stops the loop after this many consecutive generations with no
	// newly covered partition (default 4).
	Stall int
	// Workers bounds candidate-evaluation parallelism (default GOMAXPROCS).
	// The worker count never changes the result: candidates are evaluated
	// on isolated pipelines and folded serially in generation order.
	Workers int
	// Dir is the directory the programs operate in (default "/evolve").
	Dir string
	// Targets are the coverage spaces to optimize (default DefaultTargets).
	Targets []Space
}

func (c Config) withDefaults() Config {
	if c.Generations <= 0 {
		c.Generations = 16
	}
	if c.Explore <= 0 {
		c.Explore = 8
	}
	if c.Stall <= 0 {
		c.Stall = 4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Dir == "" {
		c.Dir = "/evolve"
	}
	if len(c.Targets) == 0 {
		c.Targets = DefaultTargets()
	}
	return c
}

// Result is a finished run: the accepted corpus, the per-generation fitness
// history, and the cumulative analyzer (the byte-identical merge of every
// accepted candidate's analyzer, equal to replaying the corpus serially).
type Result struct {
	Corpus   []syz.Program
	History  []Fitness
	Analyzer *coverage.Analyzer
	// Generations is the number of evolution generations actually run
	// (excluding the seed's generation 0).
	Generations int

	lay  *layout
	hits [][]uint64
}

// Untested returns the final untested-input-partition count (zero when the
// loop reached its objective; the floor is already excluded).
func (r *Result) Untested() int {
	if len(r.History) == 0 {
		return 0
	}
	return r.History[len(r.History)-1].UntestedInputs
}

// Run evolves the seed corpus until every reachable input partition of the
// configured target spaces is covered, the generation budget is spent, or
// the search stalls. The run is a pure function of (seed corpus, cfg minus
// Workers): see the package comment for the determinism contract.
func Run(seed []syz.Program, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(seed) == 0 {
		return nil, fmt.Errorf("evolve: empty seed corpus")
	}
	lay, err := newLayout(cfg.Targets)
	if err != nil {
		return nil, err
	}
	l := &loop{cfg: cfg, lay: lay, eval: &parallelEval{lay: lay, dir: cfg.Dir, workers: cfg.Workers}}
	return l.run(seed)
}

// loop is the evolutionary search. Candidate evaluation hides behind the
// evaluator interface: the loop itself is annotation-proven deterministic,
// and the evaluator's only contract is to return each candidate's isolated
// analyzer and hit bitset in input order — parallelism inside it cannot
// reorder the fold.
type loop struct {
	cfg  Config
	lay  *layout
	eval evaluator
}

// run executes the search: generation 0 accepts the whole seed corpus, then
// each generation builds candidates (targeted probes for every wanted
// partition, suggester immigrants, random mutants), evaluates them, and
// greedily accepts — in candidate order — those covering at least one new
// partition bit. Accepted analyzers merge into the cumulative one; counts
// are additive, so the final analyzer is byte-identical to a serial replay
// of the accepted corpus.
//
//iocov:deterministic
func (l *loop) run(seed []syz.Program) (*Result, error) {
	res := &Result{Analyzer: coverage.NewAnalyzer(coverage.DefaultOptions()), lay: l.lay}
	covered := newBitset(l.lay.bits)
	accept := func(c *candidate) error {
		orInto(covered, c.hits)
		err := res.Analyzer.Merge(c.an)
		harness.ReleaseAnalyzer(c.an)
		c.an = nil
		if err != nil {
			return err
		}
		res.Corpus = append(res.Corpus, c.prog)
		res.hits = append(res.hits, c.hits)
		return nil
	}

	// Generation 0: the seed corpus is the baseline, accepted wholesale.
	newly := 0
	for _, c := range l.eval.eval(seed) {
		newly += countNew(covered, c.hits)
		if err := accept(c); err != nil {
			return nil, err
		}
	}
	res.History = append(res.History,
		l.lay.fitness(res.Analyzer, covered, 0, newly, len(seed), len(res.Corpus), len(res.Corpus)))

	stalled := 0
	for gen := 1; gen <= l.cfg.Generations; gen++ {
		if l.lay.untestedInputs(covered) == 0 {
			break
		}
		progs := l.nextGeneration(gen, res.Corpus, covered, res.Analyzer)
		newly, acc := 0, 0
		for _, c := range l.eval.eval(progs) {
			if !anyNew(covered, c.hits) {
				harness.ReleaseAnalyzer(c.an)
				continue
			}
			newly += countNew(covered, c.hits)
			if err := accept(c); err != nil {
				return nil, err
			}
			acc++
		}
		res.Generations = gen
		res.History = append(res.History,
			l.lay.fitness(res.Analyzer, covered, gen, newly, len(progs), acc, len(res.Corpus)))
		if newly == 0 {
			if stalled++; stalled >= l.cfg.Stall {
				break
			}
		} else {
			stalled = 0
		}
	}
	return res, nil
}

// nextGeneration assembles a generation's candidates:
//
//  1. one targeted probe per wanted partition (uncovered, reachable, in a
//     target input space), constructed from the partition's domain label;
//  2. immigrants from syz.Suggest against the cumulative coverage — probes
//     for untested partitions outside the target spaces, which keep the
//     corpus broad and feed the crossover operator;
//  3. cfg.Explore random mutants of corpus members, each under its own
//     splitmix64 RNG keyed by (generation, index).
//
//iocov:deterministic
func (l *loop) nextGeneration(gen int, corpus []syz.Program, covered []uint64, cum *coverage.Analyzer) []syz.Program {
	var progs []syz.Program
	for ti := range l.lay.targets {
		t := &l.lay.targets[ti]
		if t.space.Arg == "" {
			continue
		}
		for ord := range t.labels {
			if t.floor[ord] || hasBit(covered, t.offset+ord) {
				continue
			}
			if p, ok := t.probe(ord, l.cfg.Dir); ok {
				progs = append(progs, p)
			}
		}
	}
	sugg, _ := syz.Suggest(cum, l.cfg.Dir, 0)
	progs = append(progs, sugg...)
	for i := 0; i < l.cfg.Explore; i++ {
		rng := rand.New(rand.NewSource(workload.ItemSeed(l.cfg.Seed, uint64(gen)<<32|uint64(i))))
		progs = append(progs, mutate(rng, corpus, l.cfg.Dir))
	}
	return progs
}

// candidate is one evaluated program: its isolated analyzer (only this
// program's events) and the global hit bitset derived from it.
type candidate struct {
	prog syz.Program
	an   *coverage.Analyzer
	hits []uint64
}

// evaluator turns a batch of programs into candidates, one per program, in
// input order. It is the loop's concurrency boundary: implementations may
// evaluate in parallel, but the returned slice's order is the contract the
// deterministic fold relies on.
type evaluator interface {
	eval(progs []syz.Program) []*candidate
}

// parallelEval evaluates candidates across a bounded worker pool. Each
// candidate runs on a fully isolated pipeline (own filesystem, kernel, and
// pooled analyzer), so workers share no mutable state and the per-candidate
// result is independent of scheduling.
type parallelEval struct {
	lay     *layout
	dir     string
	workers int
}

func (e *parallelEval) eval(progs []syz.Program) []*candidate {
	out := make([]*candidate, len(progs))
	w := e.workers
	if w > len(progs) {
		w = len(progs)
	}
	if w <= 1 {
		for i := range progs {
			out[i] = evalOne(e.lay, e.dir, progs[i])
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = evalOne(e.lay, e.dir, progs[i])
			}
		}()
	}
	for i := range progs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// evalOne executes one program on a fresh pipeline. Directory setup runs
// untraced (no sink attached yet), so the candidate's analyzer contains
// exactly the program's own events — the invariant that makes the merged
// result equal to a serial replay.
func evalOne(lay *layout, dir string, prog syz.Program) *candidate {
	an := harness.AcquireAnalyzer(coverage.DefaultOptions())
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	setupDirs(p, dir, prog)
	k.SetSink(an)
	syz.Execute(p, []syz.Program{prog})
	return &candidate{prog: prog, an: an, hits: lay.hitsOf(an)}
}

// setupDirs creates the working directory and the parent directory of every
// absolute path the program references, so corpora generated against any
// directory layout (e.g. syz.Generate's /fuzz) execute without spurious
// ENOENT noise.
func setupDirs(p *kernel.Proc, dir string, prog syz.Program) {
	mkdirAll(p, dir)
	for _, c := range prog.Calls {
		for _, a := range c.Args {
			if a.Kind != syz.KindString || !strings.HasPrefix(a.Str, "/") {
				continue
			}
			if i := strings.LastIndexByte(a.Str, '/'); i > 0 {
				mkdirAll(p, a.Str[:i])
			}
		}
	}
}

func mkdirAll(p *kernel.Proc, path string) {
	for i := 1; i < len(path); i++ {
		if path[i] == '/' {
			_ = p.Mkdir(path[:i], 0o777)
		}
	}
	_ = p.Mkdir(path, 0o777)
}

// Replay executes programs serially — fresh pipeline per program, one
// shared analyzer — and returns that analyzer. For a Result's corpus this
// reproduces Result.Analyzer byte-identically (counts are additive and each
// accepted candidate ran on its own fresh pipeline), which is the evolve
// command's -verify check and the regression tests' determinism proof.
func Replay(progs []syz.Program, dir string) *coverage.Analyzer {
	if dir == "" {
		dir = "/evolve"
	}
	an := coverage.NewAnalyzer(coverage.DefaultOptions())
	for _, prog := range progs {
		k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{})
		p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
		setupDirs(p, dir, prog)
		k.SetSink(an)
		syz.Execute(p, []syz.Program{prog})
	}
	return an
}
