package evolve

import (
	"bytes"
	"reflect"
	"testing"

	"iocov/internal/coverage"
	"iocov/internal/syz"
)

func seedCorpus(t *testing.T, n int, seed int64) []syz.Program {
	t.Helper()
	return syz.Generate(syz.GenConfig{Programs: n, Seed: seed, Dir: "/evolve"})
}

func snapshotBytes(t *testing.T, an *coverage.Analyzer) string {
	t.Helper()
	var buf bytes.Buffer
	if err := an.Snapshot(0).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestEvolveDrivesUntestedToFloor is the tentpole's success metric: from a
// plain fuzzer-style seed corpus, the loop covers every reachable input
// partition of the default target spaces within a bounded generation
// budget, leaving exactly the documented irreducible floor untested.
func TestEvolveDrivesUntestedToFloor(t *testing.T) {
	res, err := Run(seedCorpus(t, 40, 7), Config{Seed: 7, Generations: 12, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Untested(); got != 0 {
		t.Fatalf("untested input partitions after %d generations: %d (want 0)",
			res.Generations, got)
	}
	if len(res.History) < 2 {
		t.Fatalf("no evolution happened: %d history entries", len(res.History))
	}
	first, last := res.History[0], res.History[len(res.History)-1]
	if last.UntestedInputs >= first.UntestedInputs {
		t.Errorf("untested did not decrease: %d -> %d",
			first.UntestedInputs, last.UntestedInputs)
	}
	// The floor is exactly the buffer-length bound: "<0" plus every bucket
	// above 2^26 for read.count/write.count, nothing anywhere else.
	wantFloor := map[string]int{
		"open.flags":  0,
		"open.mode":   0,
		"read.count":  37, // "<0" + 2^27..2^62
		"read.pos":    0,
		"write.count": 37,
		"write.pos":   0,
	}
	for _, sf := range last.Inputs {
		want, ok := wantFloor[sf.Space.String()]
		if !ok {
			t.Errorf("unexpected input space %s", sf.Space)
			continue
		}
		if sf.Floor != want {
			t.Errorf("%s floor = %d, want %d", sf.Space, sf.Floor, want)
		}
		if sf.Untested != 0 {
			t.Errorf("%s still has %d untested partitions", sf.Space, sf.Untested)
		}
		if sf.Covered+sf.Floor != sf.Domain {
			t.Errorf("%s covered %d + floor %d != domain %d",
				sf.Space, sf.Covered, sf.Floor, sf.Domain)
		}
	}
	if len(last.Inputs) != len(wantFloor) {
		t.Errorf("%d input spaces in fitness, want %d", len(last.Inputs), len(wantFloor))
	}
}

// TestEvolveDeterministic: two runs with the same seed produce identical
// histories and byte-identical final snapshots, parallelism and all.
func TestEvolveDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Run(seedCorpus(t, 20, 3), Config{Seed: 3, Generations: 6, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if sa, sb := snapshotBytes(t, a.Analyzer), snapshotBytes(t, b.Analyzer); sa != sb {
		t.Error("same-seed runs produced different final snapshots")
	}
	if !reflect.DeepEqual(a.History, b.History) {
		t.Error("same-seed runs produced different fitness histories")
	}
	if len(a.Corpus) != len(b.Corpus) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(a.Corpus), len(b.Corpus))
	}
	for i := range a.Corpus {
		if a.Corpus[i].Format() != b.Corpus[i].Format() {
			t.Fatalf("corpus program %d differs between same-seed runs", i)
		}
	}
}

// TestEvolveParallelMatchesSerial: the worker count is pure mechanism — a
// serial evaluation and an 8-way one accept the same corpus and accumulate
// the same snapshot.
func TestEvolveParallelMatchesSerial(t *testing.T) {
	run := func(workers int) *Result {
		res, err := Run(seedCorpus(t, 20, 5), Config{Seed: 5, Generations: 6, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	if ss, sp := snapshotBytes(t, serial.Analyzer), snapshotBytes(t, parallel.Analyzer); ss != sp {
		t.Error("worker count changed the final snapshot")
	}
	if !reflect.DeepEqual(serial.History, parallel.History) {
		t.Error("worker count changed the fitness history")
	}
}

// TestEvolveReplayIdentity: executing the accepted corpus serially into one
// fresh analyzer reproduces the evolved analyzer byte-for-byte.
func TestEvolveReplayIdentity(t *testing.T) {
	res, err := Run(seedCorpus(t, 20, 11), Config{Seed: 11, Generations: 6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	replayed := Replay(res.Corpus, "")
	if se, sr := snapshotBytes(t, res.Analyzer), snapshotBytes(t, replayed); se != sr {
		t.Error("serial replay of the corpus does not reproduce the evolved snapshot")
	}
}

// TestMinimize: the greedy reduction is smaller (the seed corpus is
// redundant by construction) and preserves the covered-partition set.
func TestMinimize(t *testing.T) {
	res, err := Run(seedCorpus(t, 40, 7), Config{Seed: 7, Generations: 12, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	min := res.Minimize()
	if len(min) == 0 || len(min) >= len(res.Corpus) {
		t.Fatalf("minimized corpus has %d programs (full corpus %d)", len(min), len(res.Corpus))
	}
	// Replaying the minimized corpus covers the same partitions per space.
	replayed := Replay(min, "")
	for ti := range res.lay.targets {
		tg := &res.lay.targets[ti]
		var full, mini []int
		if tg.space.Arg == "" {
			full = res.Analyzer.OutputCoveredOrdinals(tg.space.Syscall, nil)
			mini = replayed.OutputCoveredOrdinals(tg.space.Syscall, nil)
		} else {
			full = res.Analyzer.InputCoveredOrdinals(tg.space.Syscall, tg.space.Arg, nil)
			mini = replayed.InputCoveredOrdinals(tg.space.Syscall, tg.space.Arg, nil)
		}
		fullIn := make(map[int]bool, len(full))
		for _, ord := range full {
			if ord < len(tg.labels) {
				fullIn[ord] = true
			}
		}
		for _, ord := range mini {
			if ord < len(tg.labels) {
				delete(fullIn, ord)
			}
		}
		if len(fullIn) != 0 {
			t.Errorf("%s: minimized corpus lost %d covered partitions", tg.space, len(fullIn))
		}
	}
}

// TestEvolveEmptySeed: an empty seed corpus is a configuration error, not a
// panic.
func TestEvolveEmptySeed(t *testing.T) {
	if _, err := Run(nil, Config{Seed: 1}); err == nil {
		t.Error("empty seed corpus accepted")
	}
}

// TestEvolveUnknownTarget: target spaces are validated up front.
func TestEvolveUnknownTarget(t *testing.T) {
	seed := seedCorpus(t, 2, 1)
	if _, err := Run(seed, Config{Targets: []Space{{Syscall: "nope"}}}); err == nil {
		t.Error("unknown target syscall accepted")
	}
	if _, err := Run(seed, Config{Targets: []Space{{Syscall: "open", Arg: "nope"}}}); err == nil {
		t.Error("unknown target argument accepted")
	}
	if _, err := Run(seed, Config{Targets: []Space{{Syscall: "open", Arg: "filename"}}}); err == nil {
		t.Error("identifier argument accepted as target")
	}
}
