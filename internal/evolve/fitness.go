// Package evolve closes IOCov's feedback loop generatively: where
// syz.Suggest prints probe programs for a human, evolve runs a
// coverage-guided evolutionary search that drives a corpus of syzkaller-style
// programs toward zero untested input partitions (§5's "what coverage is
// missing" turned into an optimization objective).
//
// The loop is deterministic end to end: candidate programs are derived from
// the configured seed through per-candidate splitmix64 RNGs (no wall clock,
// no global RNG), candidates are accepted by a serial greedy fold in
// generation order, and the accumulated analyzer obeys the byte-identical
// merge contract — replaying the final corpus serially reproduces the
// final snapshot exactly.
package evolve

import (
	"fmt"
	"strconv"
	"strings"

	"iocov/internal/coverage"
	"iocov/internal/metrics"
	"iocov/internal/partition"
	"iocov/internal/sysspec"
	"iocov/internal/syz"
)

// Space names one coverage space the loop optimizes: an input argument
// space (Syscall + Arg) or a syscall's output space (Arg == "").
type Space struct {
	Syscall string
	Arg     string
}

func (s Space) String() string {
	if s.Arg == "" {
		return s.Syscall + ".ret"
	}
	return s.Syscall + "." + s.Arg
}

// DefaultTargets is the evaluation's objective: the open/read/write input
// spaces the paper's Figures 2-3 measure, plus their output spaces. Output
// bits count toward candidate novelty (a program that only reaches a new
// errno is still worth keeping) but not toward the untested-inputs success
// metric.
func DefaultTargets() []Space {
	return []Space{
		{Syscall: "open", Arg: "flags"},
		{Syscall: "open", Arg: "mode"},
		{Syscall: "read", Arg: "count"},
		{Syscall: "read", Arg: "pos"},
		{Syscall: "write", Arg: "count"},
		{Syscall: "write", Arg: "pos"},
		{Syscall: "open"},
		{Syscall: "read"},
		{Syscall: "write"},
	}
}

// target is one compiled Space: its domain labels, its slice of the global
// hit bitset, and its irreducible floor.
type target struct {
	space Space
	// labels is the space's declared domain in canonical order; a hit on
	// ordinal i sets global bit offset+i.
	labels []string
	offset int
	// floor marks domain ordinals no executor-driven program can reach
	// (see floorFor); they are excluded from the untested metric and from
	// targeted probing.
	floor []bool
}

// layout assigns every target space a contiguous range of a global bitset,
// so a candidate's coverage novelty is a handful of word-wise ANDNOTs.
type layout struct {
	targets []target
	bits    int
}

func newLayout(spaces []Space) (*layout, error) {
	table := sysspec.NewTable()
	lay := &layout{}
	for _, s := range spaces {
		spec := table.Spec(s.Syscall)
		if spec == nil {
			return nil, fmt.Errorf("evolve: unknown syscall %q", s.Syscall)
		}
		var labels []string
		if s.Arg == "" {
			labels = partition.NewOutputIndexer(spec).Domain()
		} else {
			scheme := ""
			for _, a := range spec.TrackedArgs() {
				if a.Name == s.Arg {
					scheme = a.Scheme
				}
			}
			if scheme == "" {
				return nil, fmt.Errorf("evolve: %s has no tracked argument %q", s.Syscall, s.Arg)
			}
			in := partition.ForScheme(scheme)
			if in == nil {
				return nil, fmt.Errorf("evolve: argument %s is not partitioned", s)
			}
			labels = in.Domain()
		}
		lay.targets = append(lay.targets, target{
			space:  s,
			labels: labels,
			offset: lay.bits,
			floor:  floorFor(s, labels),
		})
		lay.bits += len(labels)
	}
	return lay, nil
}

// bufferLen reports whether a space's traced value is the length of an
// allocated buffer rather than the raw program constant. The executor clamps
// those lengths into [0, syz.MaxDataLen] before allocating, so the traced
// value can never be negative or exceed the 2^26 bucket.
func bufferLen(s Space) bool {
	switch s {
	case Space{Syscall: "read", Arg: "count"},
		Space{Syscall: "write", Arg: "count"},
		Space{Syscall: "getxattr", Arg: "size"},
		Space{Syscall: "setxattr", Arg: "size"}:
		return true
	}
	return false
}

// floorFor computes a space's irreducible untested floor: the domain
// ordinals no executor-driven program can reach. Only buffer-length
// arguments have one — "<0" and every bucket above 2^26 (the executor's
// syz.MaxDataLen arena bound). Offset arguments are traced raw (pread64/
// pwrite64 emit pos even on error) and so are flags, modes and whence
// values, leaving those domains fully reachable.
func floorFor(s Space, labels []string) []bool {
	floor := make([]bool, len(labels))
	if s.Arg == "" || !bufferLen(s) {
		return floor
	}
	for i, lab := range labels {
		if lab == partition.LabelNegative {
			floor[i] = true
			continue
		}
		if k, ok := log2Exp(lab); ok && k > 0 && int64(1)<<uint(k) > syz.MaxDataLen {
			floor[i] = true
		}
	}
	return floor
}

// log2Exp parses a numeric-domain bucket label "2^k".
func log2Exp(label string) (int, bool) {
	rest, found := strings.CutPrefix(label, "2^")
	if !found {
		return 0, false
	}
	k, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return k, true
}

// labelValue maps a numeric-domain partition label to a representative
// argument value inside that partition.
func labelValue(label string) (int64, bool) {
	switch label {
	case partition.LabelZero:
		return 0, true
	case partition.LabelNegative:
		return -1, true
	}
	if k, ok := log2Exp(label); ok && k >= 0 && k <= partition.MaxLog2 {
		return int64(1) << uint(k), true
	}
	return 0, false
}

// hitsOf reads a candidate analyzer's covered ordinals into a fresh global
// bitset.
func (l *layout) hitsOf(an *coverage.Analyzer) []uint64 {
	bs := newBitset(l.bits)
	var scratch []int
	for ti := range l.targets {
		t := &l.targets[ti]
		scratch = scratch[:0]
		if t.space.Arg == "" {
			scratch = an.OutputCoveredOrdinals(t.space.Syscall, scratch)
		} else {
			scratch = an.InputCoveredOrdinals(t.space.Syscall, t.space.Arg, scratch)
		}
		for _, ord := range scratch {
			if ord < len(t.labels) {
				setBit(bs, t.offset+ord)
			}
		}
	}
	return bs
}

// untestedInputs counts reachable-but-unhit input partitions across the
// layout — the loop's objective function; zero means every non-floor input
// partition of every target space has been exercised.
func (l *layout) untestedInputs(covered []uint64) int {
	n := 0
	for ti := range l.targets {
		t := &l.targets[ti]
		if t.space.Arg == "" {
			continue
		}
		for ord := range t.labels {
			if !t.floor[ord] && !hasBit(covered, t.offset+ord) {
				n++
			}
		}
	}
	return n
}

// SpaceFitness is one target space's slice of a generation's fitness
// snapshot.
type SpaceFitness struct {
	Space  Space
	Domain int
	// Covered counts partitions hit so far; Floor counts irreducibly
	// unreachable partitions; Untested counts reachable-but-unhit ones
	// (Domain = Covered + Floor + Untested when no floor partition has
	// been hit, which executor-driven runs guarantee).
	Covered  int
	Floor    int
	Untested int
	// TCD is the testing-coverage deviation of the space's reachable
	// frequencies from a uniform target (input spaces only).
	TCD float64
}

// Fitness is one generation's snapshot of the loop's objective.
type Fitness struct {
	Generation int
	Inputs     []SpaceFitness
	Outputs    []SpaceFitness
	// UntestedInputs sums Untested over the input spaces — the number the
	// loop drives to zero.
	UntestedInputs int
	// NewlyHit counts global partition bits first covered this generation.
	NewlyHit   int
	Evaluated  int
	Accepted   int
	CorpusSize int
}

// fitness folds the cumulative analyzer into a generation snapshot. It
// reads the dense counters through the cheap accessors — no report
// materialization — so calling it every generation costs a few slice walks.
//
//iocov:deterministic
func (l *layout) fitness(an *coverage.Analyzer, covered []uint64, gen, newly, evaluated, accepted, corpus int) Fitness {
	f := Fitness{
		Generation: gen,
		NewlyHit:   newly,
		Evaluated:  evaluated,
		Accepted:   accepted,
		CorpusSize: corpus,
	}
	var freqs []int64
	for ti := range l.targets {
		t := &l.targets[ti]
		sf := SpaceFitness{Space: t.space, Domain: len(t.labels)}
		for ord := range t.labels {
			switch {
			case hasBit(covered, t.offset+ord):
				sf.Covered++
			case t.floor[ord]:
				sf.Floor++
			default:
				sf.Untested++
			}
		}
		if t.space.Arg == "" {
			f.Outputs = append(f.Outputs, sf)
			continue
		}
		freqs = freqs[:0]
		var ok bool
		if freqs, ok = an.InputFrequencies(t.space.Syscall, t.space.Arg, freqs); ok {
			sf.TCD = reachableTCD(freqs, t.floor)
		}
		f.Inputs = append(f.Inputs, sf)
		f.UntestedInputs += sf.Untested
	}
	return f
}

// reachableTCD computes the uniform-target TCD over a space's reachable
// (non-floor) partitions, with the target set to the mean reachable
// frequency — so a perfectly even spread scores near zero and skew scores
// high, independent of how many events have accumulated.
func reachableTCD(freqs []int64, floor []bool) float64 {
	kept := make([]int64, 0, len(freqs))
	var total int64
	for i, n := range freqs {
		if i < len(floor) && floor[i] {
			continue
		}
		kept = append(kept, n)
		total += n
	}
	if len(kept) == 0 {
		return 0
	}
	tgt := total / int64(len(kept))
	if tgt < 1 {
		tgt = 1
	}
	return metrics.UniformTCD(kept, tgt)
}
