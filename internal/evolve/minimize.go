package evolve

import "iocov/internal/syz"

// Minimize returns a greedy set-cover reduction of the corpus: the smallest
// greedy subset whose union of hit bitsets equals the full corpus's covered
// partition set. Ties break toward the earliest-accepted program, so the
// reduction is deterministic. Minimization preserves which partitions are
// covered, not how often — a minimized corpus replays to the same covered
// set but not the same frequency counts.
//
//iocov:deterministic
func (r *Result) Minimize() []syz.Program {
	covered := newBitset(r.lay.bits)
	taken := make([]bool, len(r.Corpus))
	var out []syz.Program
	for {
		best, bestGain := -1, 0
		for i := range r.Corpus {
			if taken[i] {
				continue
			}
			if g := countNew(covered, r.hits[i]); g > bestGain {
				best, bestGain = i, g
			}
		}
		if best < 0 {
			break
		}
		taken[best] = true
		orInto(covered, r.hits[best])
		out = append(out, r.Corpus[best])
	}
	return out
}
