package evolve

import (
	"math/rand"
	"strconv"
	"strings"

	"iocov/internal/partition"
	"iocov/internal/sys"
	"iocov/internal/syz"
)

// Targeted probes: nextGeneration derives one candidate program per
// uncovered reachable input partition, constructed directly from the
// partition's domain label. They are the loop's exploitation arm — each
// probe hits its partition on the first try, so coverage of a targetable
// space converges in one generation once the partition becomes wanted.

// probe builds a program that exercises domain ordinal ord of the target's
// space, or ok=false when the space has no direct construction (output
// spaces are reached through exploration, not targeted probing).
func (t *target) probe(ord int, dir string) (syz.Program, bool) {
	if t.space.Arg == "" {
		return syz.Program{}, false
	}
	label := t.labels[ord]
	switch t.space {
	case Space{Syscall: "open", Arg: "flags"}:
		return openFlagProbe(label, dir)
	case Space{Syscall: "open", Arg: "mode"}:
		return openModeProbe(label, dir)
	case Space{Syscall: "read", Arg: "count"}:
		return countProbe("read", label, dir)
	case Space{Syscall: "write", Arg: "count"}:
		return countProbe("write", label, dir)
	case Space{Syscall: "read", Arg: "pos"}:
		return posProbe("pread64", label, dir)
	case Space{Syscall: "write", Arg: "pos"}:
		return posProbe("pwrite64", label, dir)
	}
	return syz.Program{}, false
}

// openFlagProbe opens a scratch target with the named flag set. The invalid
// access mode has no flag name to encode, so it is constructed directly
// from the reserved 0b11 accmode bit pattern.
func openFlagProbe(label, dir string) (syz.Program, bool) {
	var flags int
	switch label {
	case sys.AccModeInvalidName:
		flags = sys.O_ACCMODE | sys.O_CREAT
	case "O_WRONLY", "O_RDWR":
		bits, ok := sys.EncodeOpenFlags([]string{label})
		if !ok {
			return syz.Program{}, false
		}
		flags = bits // access modes stand alone
	default:
		bits, ok := sys.EncodeOpenFlags([]string{label})
		if !ok {
			return syz.Program{}, false
		}
		flags = bits | sys.O_CREAT
	}
	target := dir + "/flagprobe"
	if flags&(sys.O_DIRECTORY|sys.O_TMPFILE|sys.O_PATH) != 0 {
		// directory-target flags probe the directory itself
		target = dir
		flags &^= sys.O_CREAT
	}
	if flags&sys.O_TMPFILE != 0 {
		flags |= sys.O_RDWR
	}
	return syz.Program{Calls: []syz.Call{
		openAt(0, target, int64(flags), 0o644),
		closeCall(0),
	}}, true
}

// openModeProbe creates a scratch file carrying exactly the named mode bit
// (or a zero mode): the mode argument is traced raw, so the partition is
// hit whether or not the open succeeds.
func openModeProbe(label, dir string) (syz.Program, bool) {
	var mode int64
	if label != partition.LabelZero {
		found := false
		for _, b := range sys.ModeBitNames {
			if b.Name == label {
				mode, found = int64(b.Bit), true
			}
		}
		if !found {
			return syz.Program{}, false
		}
	}
	return syz.Program{Calls: []syz.Call{
		openAt(0, dir+"/modeprobe_"+label, sys.O_CREAT|sys.O_RDWR, mode),
		closeCall(0),
	}}, true
}

// countProbe reads or writes a buffer whose clamped length lands in the
// labeled bucket. Labels beyond the executor's arena bound are the
// irreducible floor and never become probes (the layout filters them).
func countProbe(call, label, dir string) (syz.Program, bool) {
	size, ok := labelValue(label)
	if !ok || size > syz.MaxDataLen {
		return syz.Program{}, false
	}
	return syz.Program{Calls: []syz.Call{
		openAt(0, dir+"/countprobe", sys.O_CREAT|sys.O_RDWR, 0o644),
		{Result: -1, Name: call, Args: []syz.Arg{
			{Kind: syz.KindResult, Ref: 0},
			{Kind: syz.KindData, DataLen: 2},
			{Kind: syz.KindConst, Const: size}}},
		closeCall(0),
	}}, true
}

// posProbe issues a pread64/pwrite64 at the labeled offset. pos is traced
// raw — emitted even when the call fails — and the simulated filesystem is
// sparse, so the whole offset domain up to 2^62 is reachable.
func posProbe(call, label, dir string) (syz.Program, bool) {
	pos, ok := labelValue(label)
	if !ok {
		return syz.Program{}, false
	}
	return syz.Program{Calls: []syz.Call{
		openAt(0, dir+"/posprobe", sys.O_CREAT|sys.O_RDWR, 0o644),
		{Result: -1, Name: call, Args: []syz.Arg{
			{Kind: syz.KindResult, Ref: 0},
			{Kind: syz.KindData, DataLen: 2},
			{Kind: syz.KindConst, Const: 1},
			{Kind: syz.KindConst, Const: pos}}},
		closeCall(0),
	}}, true
}

func openAt(result int, path string, flags, mode int64) syz.Call {
	return syz.Call{
		Result: result,
		Name:   "openat",
		Args: []syz.Arg{
			{Kind: syz.KindConst, Const: sys.AT_FDCWD},
			{Kind: syz.KindString, Str: path},
			{Kind: syz.KindConst, Const: flags},
			{Kind: syz.KindConst, Const: mode},
		},
	}
}

func closeCall(ref int) syz.Call {
	return syz.Call{Result: -1, Name: "close",
		Args: []syz.Arg{{Kind: syz.KindResult, Ref: ref}}}
}

// Exploration: random mutants of corpus members reach the partitions no
// targeted probe constructs (output errnos, interactions between calls).
// Each mutant's RNG is seeded per (generation, index) by the caller, so the
// operator sequence is a pure function of the loop seed.

// mutate clones a corpus parent and applies one random operator.
//
//iocov:deterministic
func mutate(rng *rand.Rand, corpus []syz.Program, dir string) syz.Program {
	p := corpus[rng.Intn(len(corpus))].Clone()
	switch rng.Intn(6) {
	case 0:
		perturbConst(rng, &p)
	case 1:
		flipFlagBit(rng, &p)
	case 2:
		splice(rng, &p, corpus[rng.Intn(len(corpus))])
	case 3:
		dupCall(rng, &p)
	case 4:
		dropCall(rng, &p)
	default:
		retargetPath(rng, &p, dir)
	}
	return p
}

// perturbConst nudges one numeric constant: boundary steps move a value
// across partition edges (+-1), shifts move it across power-of-two buckets,
// and negation reaches the "<0" boundary partitions.
func perturbConst(rng *rand.Rand, p *syz.Program) {
	type loc struct{ call, arg int }
	var locs []loc
	for ci := range p.Calls {
		for ai := range p.Calls[ci].Args {
			if p.Calls[ci].Args[ai].Kind == syz.KindConst {
				locs = append(locs, loc{ci, ai})
			}
		}
	}
	if len(locs) == 0 {
		return
	}
	l := locs[rng.Intn(len(locs))]
	v := &p.Calls[l.call].Args[l.arg].Const
	switch rng.Intn(5) {
	case 0:
		*v++
	case 1:
		*v--
	case 2:
		*v <<= 1
	case 3:
		*v = -*v
	default:
		*v = int64(1) << uint(rng.Intn(partition.MaxLog2+1))
	}
}

// flipFlagBit toggles one named open flag on an open/openat call's flags
// argument.
func flipFlagBit(rng *rand.Rand, p *syz.Program) {
	for _, ci := range rng.Perm(len(p.Calls)) {
		c := &p.Calls[ci]
		var fi int
		switch c.Name {
		case "open":
			fi = 1
		case "openat":
			fi = 2
		default:
			continue
		}
		if fi >= len(c.Args) || c.Args[fi].Kind != syz.KindConst {
			return
		}
		bit := sys.OpenFlagNames[rng.Intn(len(sys.OpenFlagNames))].Bit
		c.Args[fi].Const ^= int64(bit)
		return
	}
}

// splice is the crossover operator: p keeps a prefix of its own calls and
// adopts a suffix of another parent's. Result references that dangle after
// the cut resolve to invalid descriptors at execution time, which is itself
// a source of errno coverage.
func splice(rng *rand.Rand, p *syz.Program, q syz.Program) {
	if len(p.Calls) == 0 || len(q.Calls) == 0 {
		return
	}
	i := 1 + rng.Intn(len(p.Calls))
	j := rng.Intn(len(q.Calls))
	merged := append(p.Calls[:i:i], q.Clone().Calls[j:]...)
	p.Calls = merged
}

// dupCall repeats one call (double close, double truncate — classic errno
// territory).
func dupCall(rng *rand.Rand, p *syz.Program) {
	if len(p.Calls) == 0 {
		return
	}
	i := rng.Intn(len(p.Calls))
	c := p.Calls[i]
	c.Args = append([]syz.Arg(nil), c.Args...)
	p.Calls = append(p.Calls[:i+1], append([]syz.Call{c}, p.Calls[i+1:]...)...)
}

// dropCall removes one call, never the leading open that binds r0.
func dropCall(rng *rand.Rand, p *syz.Program) {
	if len(p.Calls) < 3 {
		return
	}
	i := 1 + rng.Intn(len(p.Calls)-1)
	p.Calls = append(p.Calls[:i], p.Calls[i+1:]...)
}

// retargetPath points one path argument at a different file under the
// working directory (or a missing one — ENOENT coverage).
func retargetPath(rng *rand.Rand, p *syz.Program, dir string) {
	type loc struct{ call, arg int }
	var locs []loc
	for ci := range p.Calls {
		for ai := range p.Calls[ci].Args {
			a := p.Calls[ci].Args[ai]
			if a.Kind == syz.KindString && strings.HasPrefix(a.Str, "/") {
				locs = append(locs, loc{ci, ai})
			}
		}
	}
	if len(locs) == 0 {
		return
	}
	l := locs[rng.Intn(len(locs))]
	p.Calls[l.call].Args[l.arg].Str = dir + "/m" + strconv.Itoa(rng.Intn(8))
}
