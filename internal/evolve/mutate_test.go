package evolve

import (
	"math/rand"
	"strings"
	"testing"

	"iocov/internal/kernel"
	"iocov/internal/suites/workload"
	"iocov/internal/syz"
	"iocov/internal/vfs"
)

// TestMutatePropertyRoundTripAndExecute is the mutation surface's property
// test: every mutant of a fuzz-generated corpus (a) round-trips through the
// serializer and parser unchanged, and (b) executes against the simulated
// kernel without panicking, whatever the operator did to the program.
func TestMutatePropertyRoundTripAndExecute(t *testing.T) {
	corpus := syz.Generate(syz.GenConfig{Programs: 30, Seed: 42, Dir: "/evolve"})
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{})
	p := k.NewProc(kernel.ProcOptions{Cred: vfs.Root})
	for i := 0; i < 500; i++ {
		rng := rand.New(rand.NewSource(workload.ItemSeed(99, uint64(i))))
		m := mutate(rng, corpus, "/evolve")
		text := m.Format()
		back, err := syz.Parse(strings.NewReader(text))
		if err != nil {
			t.Fatalf("mutant %d does not reparse: %v\n%s", i, err, text)
		}
		if len(back) != 1 || back[0].Format() != text {
			t.Fatalf("mutant %d does not round-trip\n%s", i, text)
		}
		setupDirs(p, "/evolve", m)
		syz.Execute(p, []syz.Program{m}) // must not panic
	}
}

// TestMutateLeavesCorpusIntact: operators clone before editing; the shared
// corpus never changes underneath the loop.
func TestMutateLeavesCorpusIntact(t *testing.T) {
	corpus := syz.Generate(syz.GenConfig{Programs: 10, Seed: 4, Dir: "/evolve"})
	before := make([]string, len(corpus))
	for i, p := range corpus {
		before[i] = p.Format()
	}
	for i := 0; i < 200; i++ {
		rng := rand.New(rand.NewSource(workload.ItemSeed(7, uint64(i))))
		_ = mutate(rng, corpus, "/evolve")
	}
	for i, p := range corpus {
		if p.Format() != before[i] {
			t.Fatalf("mutation aliased corpus program %d", i)
		}
	}
}

// TestTargetedProbesHitTheirPartition: every targeted probe the layout can
// construct covers its own (space, ordinal) bit when executed in isolation.
func TestTargetedProbesHitTheirPartition(t *testing.T) {
	lay, err := newLayout(DefaultTargets())
	if err != nil {
		t.Fatal(err)
	}
	probes := 0
	for ti := range lay.targets {
		tg := &lay.targets[ti]
		if tg.space.Arg == "" {
			continue
		}
		for ord := range tg.labels {
			if tg.floor[ord] {
				continue
			}
			prog, ok := tg.probe(ord, "/evolve")
			if !ok {
				t.Errorf("%s: no probe for reachable partition %q",
					tg.space, tg.labels[ord])
				continue
			}
			probes++
			c := evalOne(lay, "/evolve", prog)
			if !hasBit(c.hits, tg.offset+ord) {
				t.Errorf("%s probe for %q missed its partition\n%s",
					tg.space, tg.labels[ord], prog.Format())
			}
		}
	}
	if probes == 0 {
		t.Fatal("no probes constructed")
	}
}
