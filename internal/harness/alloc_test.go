package harness

import (
	"runtime"
	"testing"

	"iocov/internal/coverage"
)

// measureAllocBytes returns the heap bytes allocated while f runs.
// TotalAlloc is monotonic and process-global, so the figure includes every
// worker goroutine's allocations — exactly the number the -benchmem column
// of BenchmarkSuiteSerialVsParallel reports.
func measureAllocBytes(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestParallelAllocRegression pins the fix for the parallel memory blowup:
// before the shared zero arena, the vfs block pool, and the pooled shard
// arena, RunParallel at workers=8 allocated ~4.8x the bytes of a serial
// run (2.4GB vs 496MB per op at benchmark scale). With per-worker state
// recycled, the parallel run must stay within 2x of serial — workers only
// add pipeline duplication (filesystems, kernels), not per-shard copies of
// the write buffer or analyzer churn.
func TestParallelAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement at benchmark scale")
	}
	const (
		scale   = 0.02
		seed    = 42
		workers = 8
		trials  = 3
	)
	opts := coverage.DefaultOptions()
	run := func(workers int) {
		var err error
		if workers == 0 {
			_, err = Run(SuiteXfstests, scale, seed)
		} else {
			_, err = RunParallel(SuiteXfstests, scale, seed, workers, opts)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up fills the shard arena and block pools so the measurement sees
	// the steady state the benchmarks report, not first-run pool misses.
	run(0)
	run(workers)

	// GC can evict sync.Pool contents between trials, so a single trial can
	// overcount; the minimum over a few trials is the steady-state floor.
	minBytes := func(workers int) uint64 {
		best := ^uint64(0)
		for i := 0; i < trials; i++ {
			if b := measureAllocBytes(func() { run(workers) }); b < best {
				best = b
			}
		}
		return best
	}
	serial := minBytes(0)
	parallel := minBytes(workers)
	t.Logf("serial: %d MB, workers=%d: %d MB", serial>>20, workers, parallel>>20)
	if serial == 0 {
		t.Fatal("serial run allocated nothing; measurement broken")
	}
	if ratio := float64(parallel) / float64(serial); ratio > 2.0 {
		t.Errorf("workers=%d allocates %.2fx the bytes of serial (%d MB vs %d MB); parallel alloc blowup is back",
			workers, ratio, parallel>>20, serial>>20)
	}
}
