// Package harness wires the evaluation pipeline together: fresh filesystem
// + kernel + mount filter + analyzer, with one of the simulated test suites
// on top. The figures command, the benchmarks, and the examples all drive
// their runs through it.
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"iocov/internal/coverage"
	"iocov/internal/kernel"
	"iocov/internal/suites/crashmonkey"
	"iocov/internal/suites/xfstests"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

// MountPattern is the evaluation's trace-filter regexp: the /mnt/test
// mount point both simulated suites use.
const MountPattern = `^/mnt/test(/|$)`

// Suite names.
const (
	SuiteXfstests    = "xfstests"
	SuiteCrashMonkey = "crashmonkey"
)

// Run executes one named suite at the given scale into a fresh pipeline and
// returns the analyzer. extraSinks, if any, also receive the filtered
// events (e.g. a trace writer).
func Run(suite string, scale float64, seed int64, extraSinks ...trace.Sink) (*coverage.Analyzer, error) {
	return RunWithOptions(suite, scale, seed, coverage.DefaultOptions(), extraSinks...)
}

// RunWithOptions is Run with explicit analyzer options (extended syscall
// table, combination tracking, identifier tracking).
func RunWithOptions(suite string, scale float64, seed int64, opts coverage.Options, extraSinks ...trace.Sink) (*coverage.Analyzer, error) {
	return runShard(suite, scale, seed, 0, 1, opts, extraSinks...)
}

// mountProto holds the one compiled MountPattern filter; shards clone
// fresh per-run filter state from it instead of recompiling the regexp.
var (
	mountProtoOnce sync.Once
	//iocov:shared-ok written exactly once under mountProtoOnce; derives only from the constant MountPattern
	mountProto *trace.Filter
	//iocov:shared-ok written exactly once under mountProtoOnce; derives only from the constant MountPattern
	mountProtoErr error
)

func mountFilter() (*trace.Filter, error) {
	mountProtoOnce.Do(func() {
		mountProto, mountProtoErr = trace.NewFilter(MountPattern)
	})
	if mountProtoErr != nil {
		return nil, mountProtoErr
	}
	return mountProto.Fresh(), nil
}

// shardState is the reusable per-worker pipeline state RunParallel draws
// from a sync.Pool-backed arena: the analyzer is the expensive part (counter
// maps, dense slices, compiled dispatch), and coverage.Analyzer.Reset
// guarantees a recycled one is observationally identical to a fresh one.
// Options are part of the state's identity; a pooled state built for other
// options is discarded rather than reused.
type shardState struct {
	opts coverage.Options
	an   *coverage.Analyzer
}

var shardPool sync.Pool

// getShardState returns an arena state for opts, reusing a pooled one when
// its options match.
func getShardState(opts coverage.Options) *shardState {
	if st, ok := shardPool.Get().(*shardState); ok && st.opts == opts {
		return st
	}
	return &shardState{opts: opts, an: coverage.NewAnalyzer(opts)}
}

// putShardState resets the analyzer and parks the state for the next run.
func putShardState(st *shardState) {
	st.an.Reset()
	shardPool.Put(st)
}

// runShard executes one shard of a suite run on its own fresh pipeline
// (filesystem, kernel, mount filter, analyzer). Shard 0 of 1 is a complete
// serial run.
//
// Events stream: each kernel emission flows through the FilteringSink into
// the analyzer (and any extra sinks) as it happens, so a shard never
// materializes an intermediate []trace.Event and peak memory stays flat in
// the event count regardless of scale.
func runShard(suite string, scale float64, seed int64, shard, shards int, opts coverage.Options, extraSinks ...trace.Sink) (*coverage.Analyzer, error) {
	return runShardInto(coverage.NewAnalyzer(opts), suite, scale, seed, shard, shards, extraSinks...)
}

// runShardInto is runShard against a caller-owned analyzer (fresh or Reset;
// the worker arena hands in recycled ones).
func runShardInto(an *coverage.Analyzer, suite string, scale float64, seed int64, shard, shards int, extraSinks ...trace.Sink) (*coverage.Analyzer, error) {
	filter, err := mountFilter()
	if err != nil {
		return nil, err
	}
	var next trace.Sink = an
	if len(extraSinks) > 0 {
		next = append(trace.MultiSink{an}, extraSinks...)
	}
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{
		Sink: &trace.FilteringSink{F: filter, Next: next},
	})
	switch suite {
	case SuiteXfstests:
		_, err = xfstests.Run(k, xfstests.Config{Scale: scale, Seed: seed, Noise: true, Shard: shard, Shards: shards})
	case SuiteCrashMonkey:
		_, err = crashmonkey.Run(k, crashmonkey.Config{Scale: scale, Seed: seed, Noise: true, Shard: shard, Shards: shards})
	default:
		return nil, fmt.Errorf("harness: unknown suite %q", suite)
	}
	if err != nil {
		return nil, err
	}
	return an, nil
}

// RunParallel executes one named suite across a worker pool: the run is
// split into `workers` deterministic shards, each driving its own pipeline
// in a goroutine over a recycled per-worker analyzer, and the shard
// analyzers are folded pairwise in a reduction tree. The suites decompose
// into work items with seed-derived per-item RNGs, so the union of
// generated workloads — and, counts being purely additive and the fold
// therefore order-independent, the merged Snapshot — is byte-identical to
// the serial Run for any worker count. workers <= 0 means
// runtime.GOMAXPROCS(0).
func RunParallel(suite string, scale float64, seed int64, workers int, opts coverage.Options) (*coverage.Analyzer, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	switch suite {
	case SuiteXfstests, SuiteCrashMonkey:
	default:
		return nil, fmt.Errorf("harness: unknown suite %q", suite)
	}
	states := make([]*shardState, workers)
	for w := range states {
		states[w] = getShardState(opts)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = runShardInto(states[w].an, suite, scale, seed, w, workers)
		}(w)
	}
	wg.Wait()
	fail := func(err error) (*coverage.Analyzer, error) {
		for _, st := range states {
			putShardState(st)
		}
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return fail(err)
		}
	}
	// Reduction-tree fold: at stride s, worker w absorbs worker w+s, all
	// pairs of a round concurrently. log2(workers) rounds instead of a
	// serial workers-long fold under one accumulator.
	for stride := 1; stride < workers; stride *= 2 {
		var mwg sync.WaitGroup
		for lo := 0; lo+stride < workers; lo += 2 * stride {
			mwg.Add(1)
			go func(dst, src int) {
				defer mwg.Done()
				errs[dst] = states[dst].an.Merge(states[src].an)
			}(lo, lo+stride)
		}
		mwg.Wait()
		for _, err := range errs {
			if err != nil {
				return fail(err)
			}
		}
	}
	// The root analyzer escapes to the caller; every other state returns to
	// the arena.
	merged := states[0].an
	for _, st := range states[1:] {
		putShardState(st)
	}
	return merged, nil
}

// RunBoth runs both suites at the same scale (the evaluation's setup) and
// returns (xfstests, crashmonkey).
func RunBoth(scale float64, seed int64) (*coverage.Analyzer, *coverage.Analyzer, error) {
	xfs, err := Run(SuiteXfstests, scale, seed)
	if err != nil {
		return nil, nil, err
	}
	cm, err := Run(SuiteCrashMonkey, scale, seed)
	if err != nil {
		return nil, nil, err
	}
	return xfs, cm, nil
}

// RunBothParallel is RunBoth over RunParallel: both suites sharded across
// the same worker count, with results identical to RunBoth.
func RunBothParallel(scale float64, seed int64, workers int) (*coverage.Analyzer, *coverage.Analyzer, error) {
	xfs, err := RunParallel(SuiteXfstests, scale, seed, workers, coverage.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	cm, err := RunParallel(SuiteCrashMonkey, scale, seed, workers, coverage.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	return xfs, cm, nil
}
