// Package harness wires the evaluation pipeline together: fresh filesystem
// + kernel + mount filter + analyzer, with one of the simulated test suites
// on top. The figures command, the benchmarks, and the examples all drive
// their runs through it.
package harness

import (
	"fmt"

	"iocov/internal/coverage"
	"iocov/internal/kernel"
	"iocov/internal/suites/crashmonkey"
	"iocov/internal/suites/xfstests"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

// MountPattern is the evaluation's trace-filter regexp: the /mnt/test
// mount point both simulated suites use.
const MountPattern = `^/mnt/test(/|$)`

// Suite names.
const (
	SuiteXfstests    = "xfstests"
	SuiteCrashMonkey = "crashmonkey"
)

// Run executes one named suite at the given scale into a fresh pipeline and
// returns the analyzer. extraSinks, if any, also receive the filtered
// events (e.g. a trace writer).
func Run(suite string, scale float64, seed int64, extraSinks ...trace.Sink) (*coverage.Analyzer, error) {
	return RunWithOptions(suite, scale, seed, coverage.DefaultOptions(), extraSinks...)
}

// RunWithOptions is Run with explicit analyzer options (extended syscall
// table, combination tracking, identifier tracking).
func RunWithOptions(suite string, scale float64, seed int64, opts coverage.Options, extraSinks ...trace.Sink) (*coverage.Analyzer, error) {
	an := coverage.NewAnalyzer(opts)
	filter, err := trace.NewFilter(MountPattern)
	if err != nil {
		return nil, err
	}
	var next trace.Sink = an
	if len(extraSinks) > 0 {
		next = append(trace.MultiSink{an}, extraSinks...)
	}
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{
		Sink: &trace.FilteringSink{F: filter, Next: next},
	})
	switch suite {
	case SuiteXfstests:
		_, err = xfstests.Run(k, xfstests.Config{Scale: scale, Seed: seed, Noise: true})
	case SuiteCrashMonkey:
		_, err = crashmonkey.Run(k, crashmonkey.Config{Scale: scale, Seed: seed, Noise: true})
	default:
		return nil, fmt.Errorf("harness: unknown suite %q", suite)
	}
	if err != nil {
		return nil, err
	}
	return an, nil
}

// RunBoth runs both suites at the same scale (the evaluation's setup) and
// returns (xfstests, crashmonkey).
func RunBoth(scale float64, seed int64) (*coverage.Analyzer, *coverage.Analyzer, error) {
	xfs, err := Run(SuiteXfstests, scale, seed)
	if err != nil {
		return nil, nil, err
	}
	cm, err := Run(SuiteCrashMonkey, scale, seed)
	if err != nil {
		return nil, nil, err
	}
	return xfs, cm, nil
}
