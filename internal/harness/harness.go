// Package harness wires the evaluation pipeline together: fresh filesystem
// + kernel + mount filter + analyzer, with one of the simulated test suites
// on top. The figures command, the benchmarks, and the examples all drive
// their runs through it.
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"iocov/internal/coverage"
	"iocov/internal/kernel"
	"iocov/internal/suites/crashmonkey"
	"iocov/internal/suites/xfstests"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

// MountPattern is the evaluation's trace-filter regexp: the /mnt/test
// mount point both simulated suites use.
const MountPattern = `^/mnt/test(/|$)`

// Suite names.
const (
	SuiteXfstests    = "xfstests"
	SuiteCrashMonkey = "crashmonkey"
)

// Run executes one named suite at the given scale into a fresh pipeline and
// returns the analyzer. extraSinks, if any, also receive the filtered
// events (e.g. a trace writer).
func Run(suite string, scale float64, seed int64, extraSinks ...trace.Sink) (*coverage.Analyzer, error) {
	return RunWithOptions(suite, scale, seed, coverage.DefaultOptions(), extraSinks...)
}

// RunWithOptions is Run with explicit analyzer options (extended syscall
// table, combination tracking, identifier tracking).
func RunWithOptions(suite string, scale float64, seed int64, opts coverage.Options, extraSinks ...trace.Sink) (*coverage.Analyzer, error) {
	return runShard(suite, scale, seed, 0, 1, opts, extraSinks...)
}

// mountProto holds the one compiled MountPattern filter; shards clone
// fresh per-run filter state from it instead of recompiling the regexp.
var (
	mountProtoOnce sync.Once
	//iocov:shared-ok written exactly once under mountProtoOnce; derives only from the constant MountPattern
	mountProto *trace.Filter
	//iocov:shared-ok written exactly once under mountProtoOnce; derives only from the constant MountPattern
	mountProtoErr error
)

func mountFilter() (*trace.Filter, error) {
	mountProtoOnce.Do(func() {
		mountProto, mountProtoErr = trace.NewFilter(MountPattern)
	})
	if mountProtoErr != nil {
		return nil, mountProtoErr
	}
	return mountProto.Fresh(), nil
}

// shardPool is the worker arena RunParallel (and the evolve loop's
// candidate evaluation) draws analyzers from: the analyzer is the expensive
// per-shard state (counter maps, dense slices, compiled dispatch), and
// coverage.Analyzer.Reset guarantees a recycled one is observationally
// identical to a fresh one.
var shardPool sync.Pool

// AcquireAnalyzer returns an analyzer for opts from the worker arena,
// reusing a pooled one when its options match (options are part of an
// analyzer's identity; a pooled analyzer built for other options is
// discarded rather than reused).
func AcquireAnalyzer(opts coverage.Options) *coverage.Analyzer {
	if an, ok := shardPool.Get().(*coverage.Analyzer); ok && an.Options() == opts.WithDefaults() {
		return an
	}
	return coverage.NewAnalyzer(opts)
}

// ReleaseAnalyzer resets an analyzer and parks it in the worker arena for
// the next acquisition. The caller must not touch it afterwards.
func ReleaseAnalyzer(an *coverage.Analyzer) {
	if an == nil {
		return
	}
	an.Reset()
	shardPool.Put(an)
}

// MergeTree folds a slice of analyzers pairwise in a reduction tree: at
// stride s, analyzer lo absorbs analyzer lo+s, all pairs of a round running
// concurrently, log2(n) rounds instead of a serial n-long fold under one
// accumulator. Counts are purely additive, so the tree's fold order does
// not change the merged snapshot — ans[0] ends up byte-identical to a
// serial in-order fold. Returns ans[0]; the other analyzers are left merged
// -from but otherwise untouched (callers typically ReleaseAnalyzer them).
func MergeTree(ans []*coverage.Analyzer) (*coverage.Analyzer, error) {
	if len(ans) == 0 {
		return nil, fmt.Errorf("harness: MergeTree needs at least one analyzer")
	}
	errs := make([]error, len(ans))
	for stride := 1; stride < len(ans); stride *= 2 {
		var wg sync.WaitGroup
		for lo := 0; lo+stride < len(ans); lo += 2 * stride {
			wg.Add(1)
			go func(dst, src int) {
				defer wg.Done()
				errs[dst] = ans[dst].Merge(ans[src])
			}(lo, lo+stride)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return ans[0], nil
}

// runShard executes one shard of a suite run on its own fresh pipeline
// (filesystem, kernel, mount filter, analyzer). Shard 0 of 1 is a complete
// serial run.
//
// Events stream: each kernel emission flows through the FilteringSink into
// the analyzer (and any extra sinks) as it happens, so a shard never
// materializes an intermediate []trace.Event and peak memory stays flat in
// the event count regardless of scale.
func runShard(suite string, scale float64, seed int64, shard, shards int, opts coverage.Options, extraSinks ...trace.Sink) (*coverage.Analyzer, error) {
	return runShardInto(coverage.NewAnalyzer(opts), suite, scale, seed, shard, shards, extraSinks...)
}

// runShardInto is runShard against a caller-owned analyzer (fresh or Reset;
// the worker arena hands in recycled ones).
func runShardInto(an *coverage.Analyzer, suite string, scale float64, seed int64, shard, shards int, extraSinks ...trace.Sink) (*coverage.Analyzer, error) {
	filter, err := mountFilter()
	if err != nil {
		return nil, err
	}
	var next trace.Sink = an
	if len(extraSinks) > 0 {
		next = append(trace.MultiSink{an}, extraSinks...)
	}
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{
		Sink: &trace.FilteringSink{F: filter, Next: next},
	})
	switch suite {
	case SuiteXfstests:
		_, err = xfstests.Run(k, xfstests.Config{Scale: scale, Seed: seed, Noise: true, Shard: shard, Shards: shards})
	case SuiteCrashMonkey:
		_, err = crashmonkey.Run(k, crashmonkey.Config{Scale: scale, Seed: seed, Noise: true, Shard: shard, Shards: shards})
	default:
		return nil, fmt.Errorf("harness: unknown suite %q", suite)
	}
	if err != nil {
		return nil, err
	}
	return an, nil
}

// RunParallel executes one named suite across a worker pool: the run is
// split into `workers` deterministic shards, each driving its own pipeline
// in a goroutine over a recycled per-worker analyzer, and the shard
// analyzers are folded pairwise in a reduction tree. The suites decompose
// into work items with seed-derived per-item RNGs, so the union of
// generated workloads — and, counts being purely additive and the fold
// therefore order-independent, the merged Snapshot — is byte-identical to
// the serial Run for any worker count. workers <= 0 means
// runtime.GOMAXPROCS(0).
func RunParallel(suite string, scale float64, seed int64, workers int, opts coverage.Options) (*coverage.Analyzer, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	switch suite {
	case SuiteXfstests, SuiteCrashMonkey:
	default:
		return nil, fmt.Errorf("harness: unknown suite %q", suite)
	}
	states := make([]*coverage.Analyzer, workers)
	for w := range states {
		states[w] = AcquireAnalyzer(opts)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = runShardInto(states[w], suite, scale, seed, w, workers)
		}(w)
	}
	wg.Wait()
	fail := func(err error) (*coverage.Analyzer, error) {
		for _, an := range states {
			ReleaseAnalyzer(an)
		}
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return fail(err)
		}
	}
	merged, err := MergeTree(states)
	if err != nil {
		return fail(err)
	}
	// The root analyzer escapes to the caller; every other one returns to
	// the arena.
	for _, an := range states[1:] {
		ReleaseAnalyzer(an)
	}
	return merged, nil
}

// RunBoth runs both suites at the same scale (the evaluation's setup) and
// returns (xfstests, crashmonkey).
func RunBoth(scale float64, seed int64) (*coverage.Analyzer, *coverage.Analyzer, error) {
	xfs, err := Run(SuiteXfstests, scale, seed)
	if err != nil {
		return nil, nil, err
	}
	cm, err := Run(SuiteCrashMonkey, scale, seed)
	if err != nil {
		return nil, nil, err
	}
	return xfs, cm, nil
}

// RunBothParallel is RunBoth over RunParallel: both suites sharded across
// the same worker count, with results identical to RunBoth.
func RunBothParallel(scale float64, seed int64, workers int) (*coverage.Analyzer, *coverage.Analyzer, error) {
	xfs, err := RunParallel(SuiteXfstests, scale, seed, workers, coverage.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	cm, err := RunParallel(SuiteCrashMonkey, scale, seed, workers, coverage.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	return xfs, cm, nil
}
