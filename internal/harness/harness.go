// Package harness wires the evaluation pipeline together: fresh filesystem
// + kernel + mount filter + analyzer, with one of the simulated test suites
// on top. The figures command, the benchmarks, and the examples all drive
// their runs through it.
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"iocov/internal/coverage"
	"iocov/internal/kernel"
	"iocov/internal/suites/crashmonkey"
	"iocov/internal/suites/xfstests"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

// MountPattern is the evaluation's trace-filter regexp: the /mnt/test
// mount point both simulated suites use.
const MountPattern = `^/mnt/test(/|$)`

// Suite names.
const (
	SuiteXfstests    = "xfstests"
	SuiteCrashMonkey = "crashmonkey"
)

// Run executes one named suite at the given scale into a fresh pipeline and
// returns the analyzer. extraSinks, if any, also receive the filtered
// events (e.g. a trace writer).
func Run(suite string, scale float64, seed int64, extraSinks ...trace.Sink) (*coverage.Analyzer, error) {
	return RunWithOptions(suite, scale, seed, coverage.DefaultOptions(), extraSinks...)
}

// RunWithOptions is Run with explicit analyzer options (extended syscall
// table, combination tracking, identifier tracking).
func RunWithOptions(suite string, scale float64, seed int64, opts coverage.Options, extraSinks ...trace.Sink) (*coverage.Analyzer, error) {
	return runShard(suite, scale, seed, 0, 1, opts, extraSinks...)
}

// runShard executes one shard of a suite run on its own fresh pipeline
// (filesystem, kernel, mount filter, analyzer). Shard 0 of 1 is a complete
// serial run.
//
// Events stream: each kernel emission flows through the FilteringSink into
// the analyzer (and any extra sinks) as it happens, so a shard never
// materializes an intermediate []trace.Event and peak memory stays flat in
// the event count regardless of scale.
func runShard(suite string, scale float64, seed int64, shard, shards int, opts coverage.Options, extraSinks ...trace.Sink) (*coverage.Analyzer, error) {
	an := coverage.NewAnalyzer(opts)
	filter, err := trace.NewFilter(MountPattern)
	if err != nil {
		return nil, err
	}
	var next trace.Sink = an
	if len(extraSinks) > 0 {
		next = append(trace.MultiSink{an}, extraSinks...)
	}
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{
		Sink: &trace.FilteringSink{F: filter, Next: next},
	})
	switch suite {
	case SuiteXfstests:
		_, err = xfstests.Run(k, xfstests.Config{Scale: scale, Seed: seed, Noise: true, Shard: shard, Shards: shards})
	case SuiteCrashMonkey:
		_, err = crashmonkey.Run(k, crashmonkey.Config{Scale: scale, Seed: seed, Noise: true, Shard: shard, Shards: shards})
	default:
		return nil, fmt.Errorf("harness: unknown suite %q", suite)
	}
	if err != nil {
		return nil, err
	}
	return an, nil
}

// RunParallel executes one named suite across a worker pool: the run is
// split into `workers` deterministic shards, each driving its own fresh
// pipeline in a goroutine, and the shard analyzers are merged in shard
// order. The suites decompose into work items with seed-derived per-item
// RNGs, so the union of generated workloads — and therefore the merged
// Snapshot — is byte-identical to the serial Run for any worker count.
// workers <= 0 means runtime.GOMAXPROCS(0).
func RunParallel(suite string, scale float64, seed int64, workers int, opts coverage.Options) (*coverage.Analyzer, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	switch suite {
	case SuiteXfstests, SuiteCrashMonkey:
	default:
		return nil, fmt.Errorf("harness: unknown suite %q", suite)
	}
	ans := make([]*coverage.Analyzer, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ans[w], errs[w] = runShard(suite, scale, seed, w, workers, opts)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := ans[0]
	for w := 1; w < workers; w++ {
		if err := merged.Merge(ans[w]); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// RunBoth runs both suites at the same scale (the evaluation's setup) and
// returns (xfstests, crashmonkey).
func RunBoth(scale float64, seed int64) (*coverage.Analyzer, *coverage.Analyzer, error) {
	xfs, err := Run(SuiteXfstests, scale, seed)
	if err != nil {
		return nil, nil, err
	}
	cm, err := Run(SuiteCrashMonkey, scale, seed)
	if err != nil {
		return nil, nil, err
	}
	return xfs, cm, nil
}

// RunBothParallel is RunBoth over RunParallel: both suites sharded across
// the same worker count, with results identical to RunBoth.
func RunBothParallel(scale float64, seed int64, workers int) (*coverage.Analyzer, *coverage.Analyzer, error) {
	xfs, err := RunParallel(SuiteXfstests, scale, seed, workers, coverage.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	cm, err := RunParallel(SuiteCrashMonkey, scale, seed, workers, coverage.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	return xfs, cm, nil
}
