package harness

import (
	"testing"

	"iocov/internal/trace"
)

func TestRunUnknownSuite(t *testing.T) {
	if _, err := Run("nonexistent", 0.01, 1); err == nil {
		t.Error("unknown suite accepted")
	}
}

func TestRunWithExtraSink(t *testing.T) {
	col := trace.NewCollector()
	an, err := Run(SuiteCrashMonkey, 0.02, 1, col)
	if err != nil {
		t.Fatal(err)
	}
	if an.Analyzed() == 0 {
		t.Fatal("nothing analyzed")
	}
	// The extra sink receives the same filtered stream, including events
	// outside the analyzer's syscall scope.
	if int64(col.Len()) != an.Analyzed()+an.Skipped() {
		t.Errorf("collector saw %d, analyzer %d+%d", col.Len(), an.Analyzed(), an.Skipped())
	}
}

func TestRunBoth(t *testing.T) {
	xfs, cm, err := RunBoth(0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if xfs.Analyzed() <= cm.Analyzed() {
		t.Errorf("xfstests %d <= crashmonkey %d events", xfs.Analyzed(), cm.Analyzed())
	}
}
