package harness

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"iocov/internal/coverage"
	"iocov/internal/trace"
)

func TestRunUnknownSuite(t *testing.T) {
	if _, err := Run("nonexistent", 0.01, 1); err == nil {
		t.Error("unknown suite accepted")
	}
}

func TestRunWithExtraSink(t *testing.T) {
	col := trace.NewCollector()
	an, err := Run(SuiteCrashMonkey, 0.02, 1, col)
	if err != nil {
		t.Fatal(err)
	}
	if an.Analyzed() == 0 {
		t.Fatal("nothing analyzed")
	}
	// The extra sink receives the same filtered stream, including events
	// outside the analyzer's syscall scope.
	if int64(col.Len()) != an.Analyzed()+an.Skipped() {
		t.Errorf("collector saw %d, analyzer %d+%d", col.Len(), an.Analyzed(), an.Skipped())
	}
}

// TestParallelMatchesSerial is the sharded pipeline's correctness spine:
// for both suites, at two scales, a parallel run with any worker count must
// produce a byte-identical Snapshot to the serial run.
func TestParallelMatchesSerial(t *testing.T) {
	for _, suite := range []string{SuiteXfstests, SuiteCrashMonkey} {
		for _, scale := range []float64{0.005, 0.02} {
			serial, err := RunWithOptions(suite, scale, 42, coverage.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			want := serial.Snapshot(0)
			var wantJSON bytes.Buffer
			if err := want.WriteJSON(&wantJSON); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("%s/scale=%g/workers=%d", suite, scale, workers), func(t *testing.T) {
					par, err := RunParallel(suite, scale, 42, workers, coverage.DefaultOptions())
					if err != nil {
						t.Fatal(err)
					}
					got := par.Snapshot(0)
					if par.Analyzed() != serial.Analyzed() || par.Skipped() != serial.Skipped() {
						t.Errorf("event totals: parallel %d+%d, serial %d+%d",
							par.Analyzed(), par.Skipped(), serial.Analyzed(), serial.Skipped())
					}
					if !reflect.DeepEqual(got, want) {
						t.Error("parallel snapshot differs from serial")
					}
					var gotJSON bytes.Buffer
					if err := got.WriteJSON(&gotJSON); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(gotJSON.Bytes(), wantJSON.Bytes()) {
						t.Error("parallel snapshot JSON is not byte-identical to serial")
					}
				})
			}
		}
	}
}

func TestRunParallelUnknownSuite(t *testing.T) {
	if _, err := RunParallel("nonexistent", 0.01, 1, 2, coverage.DefaultOptions()); err == nil {
		t.Error("unknown suite accepted")
	}
}

func TestRunParallelDefaultWorkers(t *testing.T) {
	an, err := RunParallel(SuiteCrashMonkey, 0.02, 1, 0, coverage.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if an.Analyzed() == 0 {
		t.Error("nothing analyzed with default worker count")
	}
}

func TestRunBothParallel(t *testing.T) {
	xfs, cm, err := RunBothParallel(0.005, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if xfs.Analyzed() <= cm.Analyzed() {
		t.Errorf("xfstests %d <= crashmonkey %d events", xfs.Analyzed(), cm.Analyzed())
	}
}

func TestRunBoth(t *testing.T) {
	xfs, cm, err := RunBoth(0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if xfs.Analyzed() <= cm.Analyzed() {
		t.Errorf("xfstests %d <= crashmonkey %d events", xfs.Analyzed(), cm.Analyzed())
	}
}
