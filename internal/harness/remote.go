package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"iocov/internal/coverage"
	"iocov/internal/kernel"
	"iocov/internal/server"
	"iocov/internal/suites/crashmonkey"
	"iocov/internal/suites/xfstests"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

// Remote mode streams suite shards to an iocovd daemon instead of analyzing
// locally: each shard's raw kernel emissions are serialized in the binary
// trace format straight onto a POST /ingest request (an io.Pipe, no
// intermediate buffer), and the daemon runs its own Filter→Analyzer
// pipeline per session. Because a shard is a pure function of
// (suite, scale, seed, shard, shards) and the daemon rejects a failed
// session without merging anything, a transient failure is retried simply
// by re-running the shard.

// RemoteOptions tunes RunRemote. The zero value picks sensible defaults.
type RemoteOptions struct {
	// Workers is the shard count (and upload concurrency); <= 0 means
	// runtime.GOMAXPROCS(0) via RunParallel's convention.
	Workers int
	// Attempts is how many times each shard is tried before giving up on a
	// transient failure; <= 0 means 4.
	Attempts int
	// Backoff is the first retry delay, doubled after every failed attempt
	// (capped at 2s); <= 0 means 200ms.
	Backoff time.Duration
	// Client overrides the HTTP client (tests); nil means a default client
	// with no overall timeout, since an ingest stream legitimately lasts as
	// long as the suite shard runs.
	Client *http.Client
	// Format selects the binary trace format streamed to the daemon: 2
	// (the default, delta-encoded seq, the daemon's batch-decode fast
	// path) or 1 (the legacy absolute encoding, supported forever).
	Format int
}

// RemoteResult aggregates the daemon's per-shard ingest receipts.
type RemoteResult struct {
	Shards   int
	Retries  int
	Events   int64
	Kept     int64
	Dropped  int64
	Analyzed int64
	Skipped  int64
}

// transientErr marks failures worth retrying: transport errors and the
// daemon's 503 backpressure signal.
type transientErr struct{ err error }

func (e *transientErr) Error() string { return e.err.Error() }
func (e *transientErr) Unwrap() error { return e.err }

// formatVersion normalizes a RemoteOptions.Format value: anything but the
// explicit legacy 1 streams the v2 fast-path format.
func formatVersion(format int) int {
	if format == 1 {
		return 1
	}
	return 2
}

// normalizeAddr turns a bare host:port into an http URL base.
func normalizeAddr(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimRight(addr, "/")
	}
	return "http://" + strings.TrimRight(addr, "/")
}

// WaitReady polls the daemon's /healthz with exponential backoff until it
// answers 200 or the cumulative wait exceeds timeout. It lets a harness be
// started concurrently with the daemon it streams to.
func WaitReady(addr string, timeout time.Duration) error {
	url := normalizeAddr(addr) + "/healthz"
	client := &http.Client{Timeout: 2 * time.Second}
	delay := 50 * time.Millisecond
	var waited time.Duration
	for {
		resp, err := client.Get(url)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		if waited >= timeout {
			return fmt.Errorf("harness: daemon at %s not ready after %v: %w", addr, waited, err)
		}
		time.Sleep(delay)
		waited += delay
		if delay *= 2; delay > 2*time.Second {
			delay = 2 * time.Second
		}
	}
}

// runShardToSink executes one suite shard with the raw kernel emissions
// going to sink — no filter and no analyzer, because in remote mode both
// live on the daemon side of the wire.
func runShardToSink(suite string, scale float64, seed int64, shard, shards int, sink trace.Sink) error {
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{Sink: sink})
	var err error
	switch suite {
	case SuiteXfstests:
		_, err = xfstests.Run(k, xfstests.Config{Scale: scale, Seed: seed, Noise: true, Shard: shard, Shards: shards})
	case SuiteCrashMonkey:
		_, err = crashmonkey.Run(k, crashmonkey.Config{Scale: scale, Seed: seed, Noise: true, Shard: shard, Shards: shards})
	default:
		err = fmt.Errorf("harness: unknown suite %q", suite)
	}
	return err
}

// streamShardOnce runs one shard once, streaming its binary trace to the
// daemon in the requested format version, and decodes the ingest receipt.
func streamShardOnce(client *http.Client, base, suite string, scale float64, seed int64, shard, shards, format int, session string) (server.IngestResult, error) {
	var res server.IngestResult
	pr, pw := io.Pipe()
	go func() {
		var w *trace.BinaryWriter
		if formatVersion(format) >= 2 {
			w = trace.NewBinaryWriterV2(pw)
		} else {
			w = trace.NewBinaryWriter(pw)
		}
		err := runShardToSink(suite, scale, seed, shard, shards, w)
		if err == nil {
			err = w.Flush()
		}
		// nil err closes the pipe with a clean EOF; anything else aborts
		// the request body so the daemon rejects the session.
		_ = pw.CloseWithError(err) // documented to always return nil
	}()
	req, err := http.NewRequest(http.MethodPost, base+"/ingest", pr)
	if err != nil {
		return res, err
	}
	req.Header.Set("X-Iocov-Session", session)
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Iocov-Format", fmt.Sprintf("%d", formatVersion(format)))
	resp, err := client.Do(req)
	if err != nil {
		return res, &transientErr{err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return res, &transientErr{err}
	}
	switch resp.StatusCode {
	case http.StatusOK:
		if err := json.Unmarshal(body, &res); err != nil {
			return res, fmt.Errorf("harness: bad ingest receipt: %w", err)
		}
		return res, nil
	case http.StatusServiceUnavailable:
		return res, &transientErr{fmt.Errorf("daemon backpressure: %s", strings.TrimSpace(string(body)))}
	default:
		return res, fmt.Errorf("harness: ingest rejected with status %d: %s",
			resp.StatusCode, strings.TrimSpace(string(body)))
	}
}

// streamShard retries streamShardOnce with exponential backoff on transient
// failures. Re-running is safe because shards are deterministic and a
// failed session merges nothing on the daemon.
func streamShard(client *http.Client, base, suite string, scale float64, seed int64, shard, shards, attempts, format int, backoff time.Duration) (server.IngestResult, int, error) {
	var lastErr error
	delay := backoff
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(delay)
			if delay *= 2; delay > 2*time.Second {
				delay = 2 * time.Second
			}
		}
		session := fmt.Sprintf("%s-s%g-n%d-shard%d/%d-try%d", suite, scale, seed, shard, shards, attempt)
		res, err := streamShardOnce(client, base, suite, scale, seed, shard, shards, format, session)
		if err == nil {
			return res, attempt, nil
		}
		lastErr = err
		var te *transientErr
		if !errors.As(err, &te) {
			break // permanent rejection: retrying the same bytes cannot help
		}
	}
	return server.IngestResult{}, attempts, lastErr
}

// RunRemote shards a suite run across workers and streams every shard to
// the iocovd daemon at addr, returning the summed ingest receipts. The
// daemon ends up with exactly the coverage a local RunParallel would have
// computed, by the analyzer merge contract.
func RunRemote(addr, suite string, scale float64, seed int64, ro RemoteOptions) (*RemoteResult, error) {
	switch suite {
	case SuiteXfstests, SuiteCrashMonkey:
	default:
		return nil, fmt.Errorf("harness: unknown suite %q", suite)
	}
	workers := ro.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	attempts := ro.Attempts
	if attempts <= 0 {
		attempts = 4
	}
	backoff := ro.Backoff
	if backoff <= 0 {
		backoff = 200 * time.Millisecond
	}
	client := ro.Client
	if client == nil {
		client = &http.Client{}
	}
	base := normalizeAddr(addr)

	results := make([]server.IngestResult, workers)
	retries := make([]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], retries[w], errs[w] = streamShard(
				client, base, suite, scale, seed, w, workers, attempts, ro.Format, backoff)
		}(w)
	}
	wg.Wait()
	out := &RemoteResult{Shards: workers}
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, fmt.Errorf("harness: shard %d/%d failed after %d attempts: %w",
				w, workers, retries[w], errs[w])
		}
		out.Retries += retries[w]
		out.Events += results[w].Events
		out.Kept += results[w].Kept
		out.Dropped += results[w].Dropped
		out.Analyzed += results[w].Analyzed
		out.Skipped += results[w].Skipped
	}
	return out, nil
}

// FetchRemoteReport downloads and decodes the daemon's global snapshot.
func FetchRemoteReport(addr string) (*coverage.Snapshot, error) {
	resp, err := http.Get(normalizeAddr(addr) + "/report")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return nil, fmt.Errorf("harness: /report status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return coverage.LoadSnapshot(resp.Body)
}
