package harness

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"iocov/internal/coverage"
	"iocov/internal/server"
)

// TestRunRemoteMatchesLocal: streaming shards to an in-process daemon must
// leave the daemon with a /report byte-identical to a local RunParallel of
// the same (suite, scale, seed) — the remote pipeline is the local pipeline
// with a wire in the middle.
func TestRunRemoteMatchesLocal(t *testing.T) {
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		suite   = SuiteCrashMonkey
		scale   = 0.05
		seed    = int64(7)
		workers = 4
	)
	if err := WaitReady(ts.URL, 5*time.Second); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	res, err := RunRemote(ts.URL, suite, scale, seed, RemoteOptions{Workers: workers})
	if err != nil {
		t.Fatalf("RunRemote: %v", err)
	}
	if res.Shards != workers || res.Retries != 0 {
		t.Errorf("shards=%d retries=%d, want %d/0", res.Shards, res.Retries, workers)
	}
	if res.Events == 0 || res.Analyzed == 0 {
		t.Errorf("empty run: %+v", res)
	}

	local, err := RunParallel(suite, scale, seed, workers, coverage.DefaultOptions())
	if err != nil {
		t.Fatalf("RunParallel: %v", err)
	}
	if res.Analyzed != local.Analyzed() || res.Skipped != local.Skipped() {
		t.Errorf("remote analyzed/skipped %d/%d, local %d/%d",
			res.Analyzed, res.Skipped, local.Analyzed(), local.Skipped())
	}

	var remoteJSON, localJSON bytes.Buffer
	if err := s.Store().Report().WriteJSON(&remoteJSON); err != nil {
		t.Fatalf("remote WriteJSON: %v", err)
	}
	if err := local.Snapshot(0).WriteJSON(&localJSON); err != nil {
		t.Fatalf("local WriteJSON: %v", err)
	}
	if !bytes.Equal(remoteJSON.Bytes(), localJSON.Bytes()) {
		t.Errorf("daemon report != local snapshot (%d vs %d bytes)",
			remoteJSON.Len(), localJSON.Len())
	}

	// FetchRemoteReport round-trips the same snapshot.
	snap, err := FetchRemoteReport(ts.URL)
	if err != nil {
		t.Fatalf("FetchRemoteReport: %v", err)
	}
	var fetched bytes.Buffer
	if err := snap.WriteJSON(&fetched); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(fetched.Bytes(), localJSON.Bytes()) {
		t.Errorf("fetched report != local snapshot")
	}
}

// TestRunRemoteRetriesTransient: 503 backpressure is retried with backoff
// and the re-run shard still merges exactly once.
func TestRunRemoteRetriesTransient(t *testing.T) {
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	var rejected atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/ingest" && rejected.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		s.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	res, err := RunRemote(ts.URL, SuiteCrashMonkey, 0.02, 1,
		RemoteOptions{Workers: 2, Backoff: time.Millisecond})
	if err != nil {
		t.Fatalf("RunRemote: %v", err)
	}
	if res.Retries == 0 {
		t.Errorf("retries = 0, want > 0 after %d rejections", rejected.Load())
	}
	if n := s.Store().Sessions(); n != 2 {
		t.Errorf("merged sessions = %d, want 2 (one per shard, despite retries)", n)
	}
}

// TestRunRemotePermanentRejection: a 4xx rejection is not retried.
func TestRunRemotePermanentRejection(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad stream", http.StatusBadRequest)
	}))
	defer ts.Close()

	_, err := RunRemote(ts.URL, SuiteCrashMonkey, 0.02, 1,
		RemoteOptions{Workers: 1, Attempts: 4, Backoff: time.Millisecond})
	if err == nil {
		t.Fatal("RunRemote succeeded against a 400-only daemon")
	}
	if !strings.Contains(err.Error(), "status 400") {
		t.Errorf("error %q does not mention the status", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("daemon called %d times, want 1 (no retry on permanent rejection)", n)
	}
}

// TestWaitReadyTimesOut: an unreachable daemon fails fast with context.
func TestWaitReadyTimesOut(t *testing.T) {
	err := WaitReady("127.0.0.1:1", 0)
	if err == nil {
		t.Fatal("WaitReady succeeded against a closed port")
	}
	if !strings.Contains(err.Error(), "not ready") {
		t.Errorf("error %q lacks context", err)
	}
}
