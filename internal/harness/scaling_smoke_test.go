package harness

import (
	"os"
	"runtime"
	"testing"
	"time"

	"iocov/internal/coverage"
)

// TestParallelScalingSmoke is the CI scaling assertion, run by
// scripts/smoke_parallel.sh and gated behind IOCOV_SCALING_SMOKE=1 because
// wall-clock comparisons are meaningless under the race detector or a
// loaded laptop. It checks that RunParallel is never a wall-clock
// pessimization, with a CPU-aware bar:
//
//   - on >= 4 CPUs, workers=4 must actually beat serial — real hardware
//     parallelism must show up as real speedup;
//   - on fewer CPUs (1-core CI runners), genuine scaling is physically
//     impossible, so the assertion degrades to "goroutine scheduling and
//     the merge tree cost at most 35% over serial".
//
// Both sides take the best of three runs: the pools warm up on the first
// and the minimum is the least noisy wall-clock estimator.
func TestParallelScalingSmoke(t *testing.T) {
	if os.Getenv("IOCOV_SCALING_SMOKE") == "" {
		t.Skip("set IOCOV_SCALING_SMOKE=1 to run the wall-clock scaling smoke")
	}
	const (
		scale   = 0.05
		seed    = 7
		workers = 4
		trials  = 3
	)
	bestOf := func(f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < trials; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	// Warm-up: fill the shard arena and block pools once before timing.
	if _, err := RunParallel(SuiteXfstests, scale, seed, workers, coverage.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	serial := bestOf(func() {
		if _, err := Run(SuiteXfstests, scale, seed); err != nil {
			t.Fatal(err)
		}
	})
	parallel := bestOf(func() {
		if _, err := RunParallel(SuiteXfstests, scale, seed, workers, coverage.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
	})
	cpus := runtime.GOMAXPROCS(0)
	t.Logf("GOMAXPROCS=%d serial=%v workers=%d=%v (%.2fx)",
		cpus, serial, workers, parallel, float64(parallel)/float64(serial))
	if cpus >= workers {
		if parallel >= serial {
			t.Errorf("workers=%d (%v) did not beat serial (%v) on %d CPUs", workers, parallel, serial, cpus)
		}
		return
	}
	if float64(parallel) > 1.35*float64(serial) {
		t.Errorf("workers=%d (%v) is more than 1.35x serial (%v) on %d CPU(s); parallel overhead regressed",
			workers, parallel, serial, cpus)
	}
}
