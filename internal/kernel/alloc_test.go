package kernel

import (
	"testing"

	"iocov/internal/raceflag"
	"iocov/internal/sys"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

// TestSyscallCycleAllocs bounds the allocation cost of a traced
// open/write/close cycle. Event emission itself is allocation-free (pair
// slices stay on the emitting frame, inline Event storage avoids maps);
// the budget below covers kernel bookkeeping (descriptor table, VFS), not
// tracing.
func TestSyscallCycleAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are unreliable under -race")
	}
	sink := &trace.CountingSink{}
	k := New(vfs.New(vfs.DefaultConfig()), Options{Sink: sink})
	p := k.NewProc(ProcOptions{})
	buf := []byte("0123456789abcdef")

	cycle := func() {
		fd, err := p.Open("/f", sys.O_RDWR|sys.O_CREAT, 0o644)
		if err != sys.OK {
			t.Fatalf("open: %v", err)
		}
		if _, err := p.Write(fd, buf); err != sys.OK {
			t.Fatalf("write: %v", err)
		}
		if err := p.Close(fd); err != sys.OK {
			t.Fatalf("close: %v", err)
		}
	}
	// Warm up: create the file and let the fd table and VFS extents settle.
	for i := 0; i < 4; i++ {
		cycle()
	}

	// Measured at 2 (the open path's *file box and descriptor install);
	// anything above means tracing started allocating again.
	const budget = 2.0
	if n := testing.AllocsPerRun(200, cycle); n > budget {
		t.Fatalf("open/write/close cycle allocates %.1f times, budget %.0f", n, budget)
	}
	if sink.N == 0 {
		t.Fatal("no events traced")
	}
}
