package kernel

import (
	"testing"

	"iocov/internal/sys"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

func TestOPathDescriptor(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_WRONLY, 0o644)
	p.Close(fd)
	pfd, e := p.Open("/f", sys.O_PATH, 0)
	if e != sys.OK {
		t.Fatalf("O_PATH open: %v", e)
	}
	// I/O through an O_PATH descriptor is EBADF.
	if _, e := p.Read(pfd, make([]byte, 4)); e != sys.EBADF {
		t.Errorf("read O_PATH = %v, want EBADF", e)
	}
	if _, e := p.Write(pfd, []byte("x")); e != sys.EBADF {
		t.Errorf("write O_PATH = %v, want EBADF", e)
	}
	if e := p.Fchmod(pfd, 0o600); e != sys.EBADF {
		t.Errorf("fchmod O_PATH = %v, want EBADF", e)
	}
	if e := p.Fsetxattr(pfd, "user.k", []byte("v"), 0); e != sys.EBADF {
		t.Errorf("fsetxattr O_PATH = %v, want EBADF", e)
	}
	if _, e := p.Fgetxattr(pfd, "user.k", make([]byte, 4)); e != sys.EBADF {
		t.Errorf("fgetxattr O_PATH = %v, want EBADF", e)
	}
	// But closing works.
	if e := p.Close(pfd); e != sys.OK {
		t.Errorf("close O_PATH = %v", e)
	}
	// O_PATH with incompatible extra flags is EINVAL.
	if _, e := p.Open("/f", sys.O_PATH|sys.O_TRUNC, 0); e != sys.EINVAL {
		t.Errorf("O_PATH|O_TRUNC = %v, want EINVAL", e)
	}
}

func TestOTruncOnReadOnlyFDDoesNotTruncate(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	p.Write(fd, []byte("content"))
	p.Close(fd)
	// O_TRUNC without write access mode: the simulated kernel leaves the
	// file alone (Linux behaviour here is unspecified).
	fd, e := p.Open("/f", sys.O_RDONLY|sys.O_TRUNC, 0)
	if e != sys.OK {
		t.Fatalf("open: %v", e)
	}
	p.Close(fd)
	if st, _ := p.Stat("/f"); st.Size != 7 {
		t.Errorf("size after O_RDONLY|O_TRUNC = %d, want 7", st.Size)
	}
}

func TestWriteZeroBytes(t *testing.T) {
	p, col := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_WRONLY, 0o644)
	n, e := p.Write(fd, nil)
	if e != sys.OK || n != 0 {
		t.Errorf("zero write = %d,%v", n, e)
	}
	// The zero-size boundary partition is traced.
	last := col.Events()[col.Len()-1]
	if c, _ := last.Arg("count"); c != 0 {
		t.Errorf("traced count = %d", c)
	}
}

func TestPwriteOnAppendFD(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR|sys.O_APPEND, 0o644)
	p.Write(fd, []byte("0123456789"))
	// Linux documents that pwrite on O_APPEND appends regardless of offset.
	if _, e := p.Pwrite64(fd, []byte("XX"), 0); e != sys.OK {
		t.Fatal(e)
	}
	if st, _ := p.Stat("/f"); st.Size != 12 {
		t.Errorf("size = %d, want 12 (pwrite must append)", st.Size)
	}
}

func TestFaultAnySyscallRule(t *testing.T) {
	p, _ := newProc(t)
	p.k.Faults().Add(FaultRule{Errno: sys.EIO, Remaining: 2})
	if _, e := p.Open("/f", sys.O_CREAT|sys.O_WRONLY, 0o644); e != sys.EIO {
		t.Errorf("first call = %v, want EIO", e)
	}
	if e := p.Mkdir("/d", 0o755); e != sys.EIO {
		t.Errorf("second call = %v, want EIO", e)
	}
	if e := p.Mkdir("/d", 0o755); e != sys.OK {
		t.Errorf("third call = %v, want OK", e)
	}
}

func TestFaultClear(t *testing.T) {
	p, _ := newProc(t)
	p.k.Faults().Add(FaultRule{Syscall: "mkdir", Errno: sys.ENOMEM})
	if e := p.Mkdir("/d", 0o755); e != sys.ENOMEM {
		t.Fatal("rule did not fire")
	}
	p.k.Faults().Clear()
	if e := p.Mkdir("/d", 0o755); e != sys.OK {
		t.Errorf("after clear = %v", e)
	}
}

func TestOpenFDsAndCloseAll(t *testing.T) {
	p, _ := newProc(t)
	for i := 0; i < 5; i++ {
		if _, e := p.Open("/f", sys.O_CREAT|sys.O_WRONLY, 0o644); e != sys.OK {
			t.Fatal(e)
		}
	}
	if got := len(p.OpenFDs()); got != 5 {
		t.Errorf("open fds = %d", got)
	}
	p.CloseAll()
	if got := len(p.OpenFDs()); got != 0 {
		t.Errorf("after CloseAll = %d", got)
	}
	// System-wide accounting was released: a tight kernel can open again.
	k2 := New(vfs.New(vfs.DefaultConfig()), Options{MaxSystemFiles: 1})
	p2 := k2.NewProc(ProcOptions{})
	fd, _ := p2.Open("/a", sys.O_CREAT|sys.O_WRONLY, 0o644)
	_ = fd
	p2.CloseAll()
	if _, e := p2.Open("/b", sys.O_CREAT|sys.O_WRONLY, 0o644); e != sys.OK {
		t.Errorf("open after CloseAll = %v", e)
	}
}

func TestUmaskReturnsPrevious(t *testing.T) {
	p, _ := newProc(t)
	if old := p.Umask(0o027); old != 0o022 {
		t.Errorf("default umask = %o, want 022", old)
	}
	if old := p.Umask(0); old != 0o027 {
		t.Errorf("second umask = %o", old)
	}
}

func TestSetCred(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/rootfile", sys.O_CREAT|sys.O_WRONLY, 0o600)
	p.Close(fd)
	p.SetCred(vfs.Cred{UID: 1000, GID: 1000})
	if p.Cred().UID != 1000 {
		t.Fatal("cred not set")
	}
	if _, e := p.Open("/rootfile", sys.O_RDONLY, 0); e != sys.EACCES {
		t.Errorf("user open of 0600 root file = %v, want EACCES", e)
	}
}

func TestReadvOnDirectory(t *testing.T) {
	p, _ := newProc(t)
	p.Mkdir("/d", 0o755)
	fd, _ := p.Open("/d", sys.O_RDONLY|sys.O_DIRECTORY, 0)
	if _, e := p.Readv(fd, [][]byte{make([]byte, 4)}); e != sys.EISDIR {
		t.Errorf("readv dir = %v, want EISDIR", e)
	}
	if _, e := p.Read(fd, make([]byte, 4)); e != sys.EISDIR {
		t.Errorf("read dir = %v, want EISDIR", e)
	}
}

func TestSyncFamilyEvents(t *testing.T) {
	p, col := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_WRONLY, 0o644)
	p.Fsync(fd)
	p.Fdatasync(fd)
	p.Sync()
	if e := p.Fsync(999); e != sys.EBADF {
		t.Errorf("fsync bad fd = %v", e)
	}
	names := map[string]int{}
	for _, ev := range col.Events() {
		names[ev.Name]++
	}
	if names["fsync"] != 2 || names["fdatasync"] != 1 || names["sync"] != 1 {
		t.Errorf("sync family events = %v", names)
	}
}

func TestRenameUnlinkSymlinkEvents(t *testing.T) {
	p, col := newProc(t)
	fd, _ := p.Open("/a", sys.O_CREAT|sys.O_WRONLY, 0o644)
	p.Close(fd)
	if e := p.Symlink("/a", "/la"); e != sys.OK {
		t.Fatal(e)
	}
	if e := p.Link("/a", "/ha"); e != sys.OK {
		t.Fatal(e)
	}
	if e := p.Rename("/a", "/b"); e != sys.OK {
		t.Fatal(e)
	}
	if e := p.Unlink("/b"); e != sys.OK {
		t.Fatal(e)
	}
	if e := p.Rmdir("/nodir"); e != sys.ENOENT {
		t.Errorf("rmdir missing = %v", e)
	}
	var last trace.Event
	for _, ev := range col.Events() {
		if ev.Name == "rename" {
			last = ev
		}
	}
	if got, _ := last.Str("newname"); got != "/b" {
		t.Errorf("rename newname = %q", got)
	}
}

func TestLstatVsStat(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_WRONLY, 0o644)
	p.Write(fd, []byte("abc"))
	p.Close(fd)
	p.Symlink("/f", "/lf")
	st, e := p.Stat("/lf")
	if e != sys.OK || st.Type != vfs.TypeFile || st.Size != 3 {
		t.Errorf("stat through link = %+v, %v", st, e)
	}
	lst, e := p.Lstat("/lf")
	if e != sys.OK || lst.Type != vfs.TypeSymlink {
		t.Errorf("lstat = %+v, %v", lst, e)
	}
}

func TestChdirAffectsOnlyThisProc(t *testing.T) {
	col := trace.NewCollector()
	k := New(vfs.New(vfs.DefaultConfig()), Options{Sink: col})
	p1 := k.NewProc(ProcOptions{})
	p2 := k.NewProc(ProcOptions{})
	p1.Mkdir("/d", 0o755)
	if e := p1.Chdir("/d"); e != sys.OK {
		t.Fatal(e)
	}
	fd, _ := p1.Open("x", sys.O_CREAT|sys.O_WRONLY, 0o644)
	p1.Close(fd)
	// p2's cwd is still the root.
	if _, e := p2.Stat("x"); e != sys.ENOENT {
		t.Errorf("p2 relative stat = %v, want ENOENT", e)
	}
	if _, e := p2.Stat("/d/x"); e != sys.OK {
		t.Errorf("p2 absolute stat = %v", e)
	}
}

func TestEventPIDs(t *testing.T) {
	col := trace.NewCollector()
	k := New(vfs.New(vfs.DefaultConfig()), Options{Sink: col})
	p1 := k.NewProc(ProcOptions{})
	p2 := k.NewProc(ProcOptions{})
	p1.Mkdir("/a", 0o755)
	p2.Mkdir("/b", 0o755)
	evs := col.Events()
	if evs[0].PID == evs[1].PID {
		t.Error("distinct procs share a pid")
	}
}
