package kernel

import (
	"bytes"
	"testing"

	"iocov/internal/sys"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

func TestDupSharesDescription(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	p.Write(fd, []byte("abcdef"))
	dup, e := p.Dup(fd)
	if e != sys.OK {
		t.Fatalf("dup: %v", e)
	}
	if dup == fd {
		t.Fatal("dup returned the same fd")
	}
	// The duplicate shares the file offset.
	if _, e := p.Lseek(fd, 2, sys.SEEK_SET); e != sys.OK {
		t.Fatal(e)
	}
	buf := make([]byte, 2)
	n, e := p.Read(dup, buf)
	if e != sys.OK || n != 2 || !bytes.Equal(buf, []byte("cd")) {
		t.Errorf("read via dup = %q,%d,%v", buf[:n], n, e)
	}
	// Closing the original leaves the duplicate usable.
	p.Close(fd)
	if _, e := p.Read(dup, buf); e != sys.OK {
		t.Errorf("read after closing original: %v", e)
	}
	if _, e := p.Dup(999); e != sys.EBADF {
		t.Errorf("dup bad fd = %v", e)
	}
}

func TestDup2Semantics(t *testing.T) {
	p, _ := newProc(t)
	a, _ := p.Open("/a", sys.O_CREAT|sys.O_RDWR, 0o644)
	b, _ := p.Open("/b", sys.O_CREAT|sys.O_RDWR, 0o644)
	p.Write(a, []byte("AAAA"))
	p.Write(b, []byte("BBBB"))
	// dup2 onto an open descriptor closes it implicitly.
	nfd, e := p.Dup2(a, b)
	if e != sys.OK || nfd != b {
		t.Fatalf("dup2 = %d,%v", nfd, e)
	}
	p.Lseek(b, 0, sys.SEEK_SET)
	buf := make([]byte, 4)
	p.Read(b, buf)
	if !bytes.Equal(buf, []byte("AAAA")) {
		t.Errorf("dup2 target reads %q, want AAAA", buf)
	}
	// dup2(fd, fd) validates and returns fd.
	if nfd, e := p.Dup2(a, a); e != sys.OK || nfd != a {
		t.Errorf("self dup2 = %d,%v", nfd, e)
	}
	if _, e := p.Dup2(999, 10); e != sys.EBADF {
		t.Errorf("dup2 bad src = %v", e)
	}
	if _, e := p.Dup2(a, -1); e != sys.EBADF {
		t.Errorf("dup2 negative target = %v", e)
	}
}

func TestFilterTracksDup(t *testing.T) {
	f, err := trace.NewFilter(`^/mnt/test(/|$)`)
	if err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector()
	k := New(vfs.New(vfs.DefaultConfig()), Options{Sink: &trace.FilteringSink{F: f, Next: col}})
	p := k.NewProc(ProcOptions{Cred: vfs.Root})
	p.Mkdir("/mnt", 0o755)
	p.Mkdir("/mnt/test", 0o755)
	fd, _ := p.Open("/mnt/test/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	dup, _ := p.Dup(fd)
	p.Write(dup, []byte("x")) // write via the duplicate must be kept
	p.Close(fd)
	p.Write(dup, []byte("y")) // still tracked after original closes
	var wroteViaDup int
	for _, ev := range col.Events() {
		if ev.Name == "write" {
			wroteViaDup++
		}
	}
	if wroteViaDup != 2 {
		t.Errorf("filter kept %d writes via dup, want 2", wroteViaDup)
	}
	// A dup of an untracked fd stays untracked.
	out, _ := p.Open("/elsewhere", sys.O_CREAT|sys.O_WRONLY, 0o644)
	odup, _ := p.Dup(out)
	p.Write(odup, []byte("z"))
	for _, ev := range col.Events() {
		if ev.Name == "write" {
			if fdArg, _ := ev.Arg("fd"); fdArg == int64(odup) {
				t.Error("write via foreign dup leaked through filter")
			}
		}
	}
}

func TestListRemoveXattr(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	p.Setxattr("/f", "user.b", []byte("2"), 0)
	p.Setxattr("/f", "user.a", []byte("1"), 0)
	// Size query then full read, NUL-separated and sorted.
	n, e := p.Listxattr("/f", nil)
	if e != sys.OK || n != len("user.a\x00user.b\x00") {
		t.Fatalf("size query = %d,%v", n, e)
	}
	buf := make([]byte, n)
	n, e = p.Listxattr("/f", buf)
	if e != sys.OK || string(buf[:n]) != "user.a\x00user.b\x00" {
		t.Fatalf("listxattr = %q,%v", buf[:n], e)
	}
	// Short buffer.
	if _, e := p.Listxattr("/f", buf[:3]); e != sys.ERANGE {
		t.Errorf("short listxattr = %v", e)
	}
	// Remove one; capacity is released.
	if e := p.Removexattr("/f", "user.a"); e != sys.OK {
		t.Fatal(e)
	}
	if e := p.Removexattr("/f", "user.a"); e != sys.ENODATA {
		t.Errorf("remove again = %v", e)
	}
	if e := p.Fremovexattr(fd, "user.b"); e != sys.OK {
		t.Errorf("fremovexattr = %v", e)
	}
	if n, _ := p.Listxattr("/f", nil); n != 0 {
		t.Errorf("names left after removals: %d bytes", n)
	}
	if e := p.Fremovexattr(999, "user.x"); e != sys.EBADF {
		t.Errorf("bad fd = %v", e)
	}
}

func TestRemovexattrReleasesCapacity(t *testing.T) {
	cfg := vfs.DefaultConfig()
	cfg.XattrCapacity = 200
	cfg.MaxXattrValue = 150
	k := New(vfs.New(cfg), Options{})
	p := k.NewProc(ProcOptions{Cred: vfs.Root})
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	if e := p.Fsetxattr(fd, "user.a", make([]byte, 150), 0); e != sys.OK {
		t.Fatal(e)
	}
	if e := p.Fsetxattr(fd, "user.b", make([]byte, 100), 0); e != sys.ENOSPC {
		t.Fatalf("expected ENOSPC, got %v", e)
	}
	if e := p.Fremovexattr(fd, "user.a"); e != sys.OK {
		t.Fatal(e)
	}
	if e := p.Fsetxattr(fd, "user.b", make([]byte, 100), 0); e != sys.OK {
		t.Errorf("set after remove = %v, capacity not released", e)
	}
}

func TestStatfs(t *testing.T) {
	p, _ := newProc(t)
	buf, e := p.Statfs("/")
	if e != sys.OK {
		t.Fatal(e)
	}
	if buf.Bsize != 4096 || buf.Blocks == 0 || buf.Bfree > buf.Blocks {
		t.Errorf("statfs = %+v", buf)
	}
	before := buf.Bfree
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_WRONLY, 0o644)
	p.Write(fd, make([]byte, 1<<20))
	buf, _ = p.Statfs("/")
	if buf.Bfree >= before {
		t.Errorf("free blocks did not drop: %d -> %d", before, buf.Bfree)
	}
	if _, e := p.Statfs("/missing"); e != sys.ENOENT {
		t.Errorf("statfs missing = %v", e)
	}
}
