package kernel

import (
	"testing"

	"iocov/internal/sys"
	"iocov/internal/vfs"
)

func TestFallocateSyscall(t *testing.T) {
	p, col := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	if e := p.Fallocate(fd, 0, 0, 16384); e != sys.OK {
		t.Fatalf("fallocate: %v", e)
	}
	if st, _ := p.Stat("/f"); st.Size != 16384 || st.Blocks != 4 {
		t.Errorf("after fallocate: size %d blocks %d", st.Size, st.Blocks)
	}
	// KEEP_SIZE preallocates past EOF without growing.
	if e := p.Fallocate(fd, vfs.FallocKeepSize, 16384, 8192); e != sys.OK {
		t.Fatal(e)
	}
	if st, _ := p.Stat("/f"); st.Size != 16384 || st.Blocks != 6 {
		t.Errorf("after keep-size: size %d blocks %d", st.Size, st.Blocks)
	}
	// Event shape.
	var ev bool
	for _, e := range col.Events() {
		if e.Name == "fallocate" {
			ev = true
			if l, _ := e.Arg("len"); l != 16384 && l != 8192 {
				t.Errorf("traced len = %d", l)
			}
		}
	}
	if !ev {
		t.Error("fallocate not traced")
	}
	p.Close(fd)
	// Descriptor validation.
	if e := p.Fallocate(fd, 0, 0, 10); e != sys.EBADF {
		t.Errorf("closed fd = %v", e)
	}
	rfd, _ := p.Open("/f", sys.O_RDONLY, 0)
	if e := p.Fallocate(rfd, 0, 0, 10); e != sys.EBADF {
		t.Errorf("read-only fd = %v", e)
	}
}
