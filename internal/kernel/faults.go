package kernel

import (
	"sync"
	"sync/atomic"

	"iocov/internal/sys"
)

// FaultSet injects errno failures at the syscall boundary. The paper notes
// that some output partitions (ENOMEM, EINTR, ENFILE, EIO, ...) require
// system states a tester cannot easily construct; fault injection is the
// substrate that makes those exit paths reachable so output coverage can be
// exercised and measured.
//
// Rules match a syscall's base behaviour before it executes: when a rule
// fires, the syscall fails with the rule's errno and the event is traced
// like any real failure.
type FaultSet struct {
	mu    sync.Mutex
	rules []*FaultRule
}

// FaultRule describes one injection.
type FaultRule struct {
	// Syscall is the raw syscall name to match; "" matches every syscall.
	Syscall string
	// Errno is the injected failure.
	Errno sys.Errno
	// EveryN fires the rule on every Nth matching call (1 = always).
	EveryN int64
	// Remaining bounds the number of injections; negative means unlimited.
	Remaining int64

	calls int64
	// fired is accessed atomically (not an atomic.Int64: rules are passed
	// to Add by value, and the wrapper's noCopy would forbid that): Check
	// increments it under the set's lock, but Fired is a public accessor
	// harness code polls from other goroutines.
	fired int64
}

// Fired reports how many times the rule has injected a failure.
func (r *FaultRule) Fired() int64 { return atomic.LoadInt64(&r.fired) }

// NewFaultSet returns an empty rule set.
func NewFaultSet() *FaultSet { return &FaultSet{} }

// Add installs a rule and returns it for later inspection.
func (fs *FaultSet) Add(rule FaultRule) *FaultRule {
	if rule.EveryN <= 0 {
		rule.EveryN = 1
	}
	if rule.Remaining == 0 {
		rule.Remaining = -1
	}
	r := &rule
	fs.mu.Lock()
	fs.rules = append(fs.rules, r)
	fs.mu.Unlock()
	return r
}

// Clear removes every rule.
func (fs *FaultSet) Clear() {
	fs.mu.Lock()
	fs.rules = nil
	fs.mu.Unlock()
}

// Check consumes one call of syscall name and reports whether a rule fires.
func (fs *FaultSet) Check(name string) (sys.Errno, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, r := range fs.rules {
		if r.Syscall != "" && r.Syscall != name {
			continue
		}
		if r.Remaining == 0 {
			continue
		}
		r.calls++
		if r.calls%r.EveryN != 0 {
			continue
		}
		if r.Remaining > 0 {
			r.Remaining--
		}
		atomic.AddInt64(&r.fired, 1)
		return r.Errno, true
	}
	return sys.OK, false
}

// checkFault is the per-syscall injection hook.
func (p *Proc) checkFault(name string) (sys.Errno, bool) {
	return p.k.faults.Check(name)
}
