// Package kernel implements the syscall layer on top of internal/vfs: file
// descriptor tables, current working directories, umask, rlimits, fault
// injection, and — most importantly for IOCov — emission of one trace event
// per completed syscall, success or failure, exactly as LTTng would observe
// at the syscall boundary.
//
// The package provides all 27 syscalls the paper's prototype traces (11 base
// syscalls plus their variants) with Linux x86-64 semantics, and a handful
// of untracked helpers (unlink, rename, fsync, ...) the workload substrates
// need to build filesystem states.
package kernel

import (
	"sync"
	"sync/atomic"

	"iocov/internal/sys"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

// Kernel owns a filesystem, the system-wide file table accounting, the
// fault-injection rules, and the trace sink.
type Kernel struct {
	// fs, sink, faults and seq need no guarding here: fs and faults are
	// fixed at construction (FaultSet carries its own lock), sink is set
	// before any Proc runs, and seq is atomic.
	fs     *vfs.FS
	sink   trace.Sink
	faults *FaultSet
	seq    atomic.Uint64

	mu      sync.Mutex
	nextPID int
	openSys int // system-wide open file count (ENFILE)
	maxSys  int
}

// Options configures a Kernel.
type Options struct {
	// MaxSystemFiles bounds the system-wide open file table (ENFILE).
	// Zero means the default of 65536.
	MaxSystemFiles int
	// Sink receives one event per completed syscall; nil disables tracing.
	Sink trace.Sink
}

// New creates a kernel over fs.
func New(fs *vfs.FS, opts Options) *Kernel {
	if opts.MaxSystemFiles <= 0 {
		opts.MaxSystemFiles = 65536
	}
	return &Kernel{
		fs:      fs,
		sink:    opts.Sink,
		nextPID: 1,
		maxSys:  opts.MaxSystemFiles,
		faults:  NewFaultSet(),
	}
}

// FS returns the underlying filesystem.
func (k *Kernel) FS() *vfs.FS { return k.fs }

// Faults returns the kernel's fault-injection rule set.
func (k *Kernel) Faults() *FaultSet { return k.faults }

// SetSink replaces the trace sink (nil disables tracing).
func (k *Kernel) SetSink(s trace.Sink) { k.sink = s }

// Sink returns the current trace sink (nil when tracing is disabled).
func (k *Kernel) Sink() trace.Sink { return k.sink }

// Proc is a simulated process: credentials, cwd, umask, and a descriptor
// table with an RLIMIT_NOFILE-style bound. Proc methods are the syscall
// entry points; they are not safe for concurrent use by multiple goroutines
// (one goroutine per simulated process, as with real threads sharing an fd
// table, would require external locking).
type Proc struct {
	k     *Kernel
	pid   int
	cred  vfs.Cred
	cwd   *vfs.Inode
	fds   map[int]*file
	maxFD int
	umask uint32
}

// file is an open file description (the struct file analogue).
type file struct {
	ino   *vfs.Inode
	flags int
	pos   int64
	path  string
}

// ProcOptions configures NewProc.
type ProcOptions struct {
	// Cred defaults to root.
	Cred vfs.Cred
	// MaxFDs is the per-process descriptor limit (EMFILE); zero means 1024.
	MaxFDs int
	// Umask defaults to 0o022.
	Umask uint32
	// UmaskSet forces Umask to be honored even when zero.
	UmaskSet bool
}

// NewProc creates a process whose cwd is the filesystem root.
func (k *Kernel) NewProc(opts ProcOptions) *Proc {
	k.mu.Lock()
	pid := k.nextPID
	k.nextPID++
	k.mu.Unlock()
	if opts.MaxFDs <= 0 {
		opts.MaxFDs = 1024
	}
	if opts.Umask == 0 && !opts.UmaskSet {
		opts.Umask = 0o022
	}
	return &Proc{
		k:     k,
		pid:   pid,
		cred:  opts.Cred,
		cwd:   k.fs.Root(),
		fds:   make(map[int]*file),
		maxFD: opts.MaxFDs,
		umask: opts.Umask,
	}
}

// PID returns the process id.
func (p *Proc) PID() int { return p.pid }

// FS returns the filesystem the process runs on.
func (p *Proc) FS() *vfs.FS { return p.k.fs }

// Cred returns the process credentials.
func (p *Proc) Cred() vfs.Cred { return p.cred }

// SetCred changes the process credentials (a setuid analogue for tests).
func (p *Proc) SetCred(c vfs.Cred) { p.cred = c }

// Umask sets the file-creation mask and returns the previous value.
func (p *Proc) Umask(mask uint32) uint32 {
	old := p.umask
	p.umask = mask & 0o777
	return old
}

// OpenFDs returns the currently open descriptor numbers (unordered).
func (p *Proc) OpenFDs() []int {
	out := make([]int, 0, len(p.fds))
	for fd := range p.fds {
		out = append(out, fd)
	}
	return out
}

// CloseAll closes every open descriptor, for workload teardown.
func (p *Proc) CloseAll() {
	for fd := range p.fds {
		p.k.mu.Lock()
		p.k.openSys--
		p.k.mu.Unlock()
		delete(p.fds, fd)
	}
}

// allocFD installs f at the lowest free descriptor number, enforcing both
// the per-process (EMFILE) and system-wide (ENFILE) limits.
func (p *Proc) allocFD(f *file) (int, sys.Errno) {
	if len(p.fds) >= p.maxFD {
		return -1, sys.EMFILE
	}
	p.k.mu.Lock()
	if p.k.openSys >= p.k.maxSys {
		p.k.mu.Unlock()
		return -1, sys.ENFILE
	}
	p.k.openSys++
	p.k.mu.Unlock()
	for fd := 3; ; fd++ { // 0..2 reserved for std streams, as on Linux
		if _, used := p.fds[fd]; !used {
			p.fds[fd] = f
			return fd, sys.OK
		}
	}
}

func (p *Proc) lookupFD(fd int) (*file, sys.Errno) {
	f, ok := p.fds[fd]
	if !ok {
		return nil, sys.EBADF
	}
	return f, sys.OK
}

// ekv and eskv are the emit-site argument pairs. Emit sites pass small
// slice literals; because emit never retains them, escape analysis keeps
// the pair slices on the caller's stack and a traced syscall allocates
// nothing for its event.
type ekv struct {
	name string
	val  int64
}

type eskv struct {
	name, val string
}

// emit sends one completed-syscall event to the kernel's sink. The
// AllocsPerRun pin on the syscall cycle budgets event emission at zero;
// alloccheck proves it from here down.
//
//iocov:hotpath
func (p *Proc) emit(name, path string, strs []eskv, args []ekv, ret int64, err sys.Errno) {
	if p.k.sink == nil {
		return
	}
	if err != sys.OK {
		ret = -int64(err)
	}
	ev := trace.Event{
		Seq:  p.k.seq.Add(1),
		PID:  p.pid,
		Name: name,
		Path: path,
		Ret:  ret,
		Err:  err,
	}
	for _, s := range strs {
		ev.AddStr(s.name, s.val)
	}
	for _, a := range args {
		ev.AddArg(a.name, a.val)
	}
	p.k.sink.Emit(ev)
}

// retFD converts an (fd, errno) pair to the traced return value.
func retFD(fd int, err sys.Errno) int64 {
	if err != sys.OK {
		return -int64(err)
	}
	return int64(fd)
}

// dirfdBase resolves an openat-style dirfd to the base inode for path
// resolution: AT_FDCWD means the cwd, otherwise the descriptor must name a
// directory.
func (p *Proc) dirfdBase(dirfd int, path string) (*vfs.Inode, sys.Errno) {
	if len(path) > 0 && path[0] == '/' {
		return p.k.fs.Root(), sys.OK
	}
	if dirfd == sys.AT_FDCWD {
		return p.cwd, sys.OK
	}
	f, e := p.lookupFD(dirfd)
	if e != sys.OK {
		return nil, e
	}
	if f.ino.Type() != vfs.TypeDir {
		return nil, sys.ENOTDIR
	}
	return f.ino, sys.OK
}
