package kernel

import (
	"bytes"
	"testing"

	"iocov/internal/sys"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

func newProc(t *testing.T) (*Proc, *trace.Collector) {
	t.Helper()
	col := trace.NewCollector()
	k := New(vfs.New(vfs.DefaultConfig()), Options{Sink: col})
	return k.NewProc(ProcOptions{}), col
}

func TestOpenReadWriteClose(t *testing.T) {
	p, col := newProc(t)
	fd, e := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	if e != sys.OK {
		t.Fatalf("open: %v", e)
	}
	if fd != 3 {
		t.Errorf("first fd = %d, want 3", fd)
	}
	n, e := p.Write(fd, []byte("hello"))
	if e != sys.OK || n != 5 {
		t.Fatalf("write = %d,%v", n, e)
	}
	if pos, e := p.Lseek(fd, 0, sys.SEEK_SET); e != sys.OK || pos != 0 {
		t.Fatalf("lseek = %d,%v", pos, e)
	}
	buf := make([]byte, 8)
	n, e = p.Read(fd, buf)
	if e != sys.OK || string(buf[:n]) != "hello" {
		t.Fatalf("read = %q,%v", buf[:n], e)
	}
	if e := p.Close(fd); e != sys.OK {
		t.Fatalf("close: %v", e)
	}
	if e := p.Close(fd); e != sys.EBADF {
		t.Errorf("double close = %v, want EBADF", e)
	}
	// 7 events: open, write, lseek, read, close, close.
	if col.Len() != 6 {
		t.Errorf("traced %d events, want 6", col.Len())
	}
	ev := col.Events()[0]
	if ev.Name != "open" || ev.Path != "/f" || ev.Ret != 3 {
		t.Errorf("open event = %+v", ev)
	}
	if flags, _ := ev.Arg("flags"); flags != int64(sys.O_CREAT|sys.O_RDWR) {
		t.Errorf("flags arg = %d", flags)
	}
}

func TestFilePositionSemantics(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	p.Write(fd, []byte("abcdef"))
	// pread does not move the offset.
	buf := make([]byte, 2)
	n, e := p.Pread64(fd, buf, 1)
	if e != sys.OK || string(buf[:n]) != "bc" {
		t.Fatalf("pread = %q,%v", buf[:n], e)
	}
	if pos, _ := p.Lseek(fd, 0, sys.SEEK_CUR); pos != 6 {
		t.Errorf("pos after pread = %d, want 6", pos)
	}
	// pwrite does not move the offset either.
	if _, e := p.Pwrite64(fd, []byte("XY"), 0); e != sys.OK {
		t.Fatal(e)
	}
	if pos, _ := p.Lseek(fd, 0, sys.SEEK_CUR); pos != 6 {
		t.Errorf("pos after pwrite = %d, want 6", pos)
	}
	p.Lseek(fd, 0, sys.SEEK_SET)
	out := make([]byte, 6)
	p.Read(fd, out)
	if string(out) != "XYcdef" {
		t.Errorf("content = %q", out)
	}
}

func TestAppendMode(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	p.Write(fd, []byte("base"))
	p.Close(fd)
	fd, e := p.Open("/f", sys.O_WRONLY|sys.O_APPEND, 0)
	if e != sys.OK {
		t.Fatal(e)
	}
	// Seek back, then write: O_APPEND still appends.
	p.Lseek(fd, 0, sys.SEEK_SET)
	p.Write(fd, []byte("+tail"))
	p.Close(fd)
	fd, _ = p.Open("/f", sys.O_RDONLY, 0)
	buf := make([]byte, 16)
	n, _ := p.Read(fd, buf)
	if string(buf[:n]) != "base+tail" {
		t.Errorf("content = %q, want base+tail", buf[:n])
	}
}

func TestAccessModeEnforcement(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_WRONLY, 0o644)
	buf := make([]byte, 4)
	if _, e := p.Read(fd, buf); e != sys.EBADF {
		t.Errorf("read on O_WRONLY = %v, want EBADF", e)
	}
	p.Close(fd)
	fd, _ = p.Open("/f", sys.O_RDONLY, 0)
	if _, e := p.Write(fd, []byte("x")); e != sys.EBADF {
		t.Errorf("write on O_RDONLY = %v, want EBADF", e)
	}
}

func TestInvalidOpenFlags(t *testing.T) {
	p, _ := newProc(t)
	if _, e := p.Open("/f", sys.O_ACCMODE, 0); e != sys.EINVAL {
		t.Errorf("accmode 3 = %v, want EINVAL", e)
	}
	if _, e := p.Open("/f", 1<<30, 0); e != sys.EINVAL {
		t.Errorf("unknown bit = %v, want EINVAL", e)
	}
	// O_TMPFILE without write access.
	if _, e := p.Open("/", sys.O_TMPFILE|sys.O_RDONLY, 0o600); e != sys.EINVAL {
		t.Errorf("O_TMPFILE rdonly = %v, want EINVAL", e)
	}
}

func TestOTmpfile(t *testing.T) {
	p, _ := newProc(t)
	if e := p.Mkdir("/d", 0o755); e != sys.OK {
		t.Fatal(e)
	}
	fd, e := p.Open("/d", sys.O_TMPFILE|sys.O_RDWR, 0o600)
	if e != sys.OK {
		t.Fatalf("O_TMPFILE: %v", e)
	}
	if n, e := p.Write(fd, []byte("anon")); e != sys.OK || n != 4 {
		t.Fatalf("write = %d,%v", n, e)
	}
	// The directory contains no visible entry.
	names, e := p.k.fs.ReadDir(p.k.fs.Root(), p.cred, "/d")
	if e != sys.OK || len(names) != 0 {
		t.Errorf("dir entries = %v, want empty", names)
	}
}

func TestOpenat(t *testing.T) {
	p, _ := newProc(t)
	p.Mkdir("/d", 0o755)
	dfd, e := p.Open("/d", sys.O_RDONLY|sys.O_DIRECTORY, 0)
	if e != sys.OK {
		t.Fatal(e)
	}
	fd, e := p.Openat(dfd, "f", sys.O_CREAT|sys.O_WRONLY, 0o644)
	if e != sys.OK {
		t.Fatalf("openat: %v", e)
	}
	p.Close(fd)
	if _, e := p.Stat("/d/f"); e != sys.OK {
		t.Errorf("file not created under dirfd: %v", e)
	}
	// AT_FDCWD behaves like open relative to cwd.
	if e := p.Chdir("/d"); e != sys.OK {
		t.Fatal(e)
	}
	fd, e = p.Openat(sys.AT_FDCWD, "f", sys.O_RDONLY, 0)
	if e != sys.OK {
		t.Errorf("openat AT_FDCWD: %v", e)
	}
	p.Close(fd)
	// Bad dirfd.
	if _, e := p.Openat(999, "f", sys.O_RDONLY, 0); e != sys.EBADF {
		t.Errorf("bad dirfd = %v, want EBADF", e)
	}
	// dirfd that is not a directory.
	ffd, _ := p.Openat(sys.AT_FDCWD, "f", sys.O_RDONLY, 0)
	if _, e := p.Openat(ffd, "g", sys.O_RDONLY, 0); e != sys.ENOTDIR {
		t.Errorf("file dirfd = %v, want ENOTDIR", e)
	}
	// Absolute path ignores dirfd.
	if _, e := p.Openat(999, "/d/f", sys.O_RDONLY, 0); e != sys.OK {
		t.Errorf("absolute path with bad dirfd = %v, want OK", e)
	}
}

func TestCreat(t *testing.T) {
	p, col := newProc(t)
	fd, e := p.Creat("/f", 0o644)
	if e != sys.OK {
		t.Fatalf("creat: %v", e)
	}
	if _, e := p.Write(fd, []byte("x")); e != sys.OK {
		t.Errorf("creat fd not writable: %v", e)
	}
	buf := make([]byte, 1)
	if _, e := p.Read(fd, buf); e != sys.EBADF {
		t.Errorf("creat fd readable = %v, want EBADF", e)
	}
	ev := col.Events()[0]
	if ev.Name != "creat" {
		t.Errorf("event name = %s", ev.Name)
	}
}

func TestOpenat2(t *testing.T) {
	p, _ := newProc(t)
	p.Mkdir("/d", 0o755)
	fd, _ := p.Open("/d/f", sys.O_CREAT|sys.O_WRONLY, 0o644)
	p.Close(fd)
	p.Symlink("/d/f", "/d/link")

	// Plain openat2 follows the symlink.
	fd, e := p.Openat2(sys.AT_FDCWD, "/d/link", OpenHow{Flags: sys.O_RDONLY})
	if e != sys.OK {
		t.Fatalf("openat2: %v", e)
	}
	p.Close(fd)
	// RESOLVE_NO_SYMLINKS rejects it.
	if _, e := p.Openat2(sys.AT_FDCWD, "/d/link", OpenHow{Flags: sys.O_RDONLY, Resolve: sys.RESOLVE_NO_SYMLINKS}); e != sys.ELOOP {
		t.Errorf("RESOLVE_NO_SYMLINKS = %v, want ELOOP", e)
	}
	// RESOLVE_BENEATH rejects absolute paths.
	if _, e := p.Openat2(sys.AT_FDCWD, "/d/f", OpenHow{Flags: sys.O_RDONLY, Resolve: sys.RESOLVE_BENEATH}); e != sys.EXDEV {
		t.Errorf("RESOLVE_BENEATH absolute = %v, want EXDEV", e)
	}
	// Unknown resolve bits.
	if _, e := p.Openat2(sys.AT_FDCWD, "/d/f", OpenHow{Flags: sys.O_RDONLY, Resolve: 0x4000}); e != sys.EINVAL {
		t.Errorf("bad resolve = %v, want EINVAL", e)
	}
}

func TestEMFILE(t *testing.T) {
	col := trace.NewCollector()
	k := New(vfs.New(vfs.DefaultConfig()), Options{Sink: col})
	p := k.NewProc(ProcOptions{MaxFDs: 2})
	fd1, e := p.Open("/a", sys.O_CREAT|sys.O_WRONLY, 0o644)
	if e != sys.OK {
		t.Fatal(e)
	}
	if _, e := p.Open("/b", sys.O_CREAT|sys.O_WRONLY, 0o644); e != sys.OK {
		t.Fatal(e)
	}
	if _, e := p.Open("/c", sys.O_CREAT|sys.O_WRONLY, 0o644); e != sys.EMFILE {
		t.Errorf("over per-proc limit = %v, want EMFILE", e)
	}
	p.Close(fd1)
	if _, e := p.Open("/c", sys.O_CREAT|sys.O_WRONLY, 0o644); e != sys.OK {
		t.Errorf("open after close = %v, want OK", e)
	}
}

func TestENFILE(t *testing.T) {
	k := New(vfs.New(vfs.DefaultConfig()), Options{MaxSystemFiles: 1})
	p1 := k.NewProc(ProcOptions{})
	p2 := k.NewProc(ProcOptions{})
	if _, e := p1.Open("/a", sys.O_CREAT|sys.O_WRONLY, 0o644); e != sys.OK {
		t.Fatal(e)
	}
	if _, e := p2.Open("/b", sys.O_CREAT|sys.O_WRONLY, 0o644); e != sys.ENFILE {
		t.Errorf("over system limit = %v, want ENFILE", e)
	}
}

func TestLowestFreeFD(t *testing.T) {
	p, _ := newProc(t)
	a, _ := p.Open("/a", sys.O_CREAT|sys.O_WRONLY, 0o644)
	b, _ := p.Open("/b", sys.O_CREAT|sys.O_WRONLY, 0o644)
	c, _ := p.Open("/c", sys.O_CREAT|sys.O_WRONLY, 0o644)
	if a != 3 || b != 4 || c != 5 {
		t.Fatalf("fds = %d,%d,%d", a, b, c)
	}
	p.Close(b)
	d, _ := p.Open("/d", sys.O_CREAT|sys.O_WRONLY, 0o644)
	if d != 4 {
		t.Errorf("reused fd = %d, want 4", d)
	}
}

func TestLseekWhence(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	p.Write(fd, make([]byte, 100))
	cases := []struct {
		off    int64
		whence int
		want   int64
		err    sys.Errno
	}{
		{10, sys.SEEK_SET, 10, sys.OK},
		{5, sys.SEEK_CUR, 15, sys.OK},
		{-10, sys.SEEK_END, 90, sys.OK},
		{200, sys.SEEK_SET, 200, sys.OK}, // seeking past EOF is fine
		{-1, sys.SEEK_SET, 0, sys.EINVAL},
		{0, 99, 0, sys.EINVAL},
		{50, sys.SEEK_DATA, 50, sys.OK},
		{150, sys.SEEK_DATA, 0, sys.ENXIO},
		{50, sys.SEEK_HOLE, 100, sys.OK},
		{150, sys.SEEK_HOLE, 0, sys.ENXIO},
	}
	for _, c := range cases {
		got, e := p.Lseek(fd, c.off, c.whence)
		if e != c.err {
			t.Errorf("lseek(%d,%d) err = %v, want %v", c.off, c.whence, e, c.err)
			continue
		}
		if e == sys.OK && got != c.want {
			t.Errorf("lseek(%d,%d) = %d, want %d", c.off, c.whence, got, c.want)
		}
	}
}

func TestReadvWritev(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	n, e := p.Writev(fd, [][]byte{[]byte("abc"), []byte("defg")})
	if e != sys.OK || n != 7 {
		t.Fatalf("writev = %d,%v", n, e)
	}
	p.Lseek(fd, 0, sys.SEEK_SET)
	a, b := make([]byte, 2), make([]byte, 10)
	n, e = p.Readv(fd, [][]byte{a, b})
	if e != sys.OK || n != 7 {
		t.Fatalf("readv = %d,%v", n, e)
	}
	if string(a) != "ab" || string(b[:5]) != "cdefg" {
		t.Errorf("readv buffers = %q %q", a, b[:5])
	}
	// Too many iovecs.
	many := make([][]byte, 1025)
	for i := range many {
		many[i] = make([]byte, 1)
	}
	if _, e := p.Readv(fd, many); e != sys.EINVAL {
		t.Errorf("1025 iovecs = %v, want EINVAL", e)
	}
}

func TestFtruncate(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	p.Write(fd, []byte("abcdef"))
	if e := p.Ftruncate(fd, 2); e != sys.OK {
		t.Fatal(e)
	}
	if st, _ := p.Stat("/f"); st.Size != 2 {
		t.Errorf("size = %d, want 2", st.Size)
	}
	p.Close(fd)
	// ftruncate on a read-only descriptor is EINVAL.
	fd, _ = p.Open("/f", sys.O_RDONLY, 0)
	if e := p.Ftruncate(fd, 0); e != sys.EINVAL {
		t.Errorf("ftruncate rdonly = %v, want EINVAL", e)
	}
	if e := p.Ftruncate(999, 0); e != sys.EBADF {
		t.Errorf("ftruncate bad fd = %v, want EBADF", e)
	}
}

func TestChdirFchdir(t *testing.T) {
	p, _ := newProc(t)
	p.Mkdir("/d", 0o755)
	if e := p.Chdir("/d"); e != sys.OK {
		t.Fatal(e)
	}
	fd, _ := p.Open("f", sys.O_CREAT|sys.O_WRONLY, 0o644)
	p.Close(fd)
	if _, e := p.Stat("/d/f"); e != sys.OK {
		t.Errorf("relative create after chdir: %v", e)
	}
	if e := p.Chdir("/d/f"); e != sys.ENOTDIR {
		t.Errorf("chdir to file = %v, want ENOTDIR", e)
	}
	rootfd, _ := p.Open("/", sys.O_RDONLY|sys.O_DIRECTORY, 0)
	if e := p.Fchdir(rootfd); e != sys.OK {
		t.Fatal(e)
	}
	if _, e := p.Stat("d"); e != sys.OK {
		t.Errorf("relative stat after fchdir: %v", e)
	}
	ffd, _ := p.Open("/d/f", sys.O_RDONLY, 0)
	if e := p.Fchdir(ffd); e != sys.ENOTDIR {
		t.Errorf("fchdir to file = %v, want ENOTDIR", e)
	}
}

func TestUmask(t *testing.T) {
	p, _ := newProc(t)
	p.Umask(0o077)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_WRONLY, 0o666)
	p.Close(fd)
	st, _ := p.Stat("/f")
	if st.Mode != 0o600 {
		t.Errorf("mode = %o, want 600", st.Mode)
	}
	p.Mkdir("/d", 0o777)
	st, _ = p.Stat("/d")
	if st.Mode != 0o700 {
		t.Errorf("dir mode = %o, want 700", st.Mode)
	}
}

func TestChmodFamily(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_WRONLY, 0o644)
	if e := p.Chmod("/f", 0o640); e != sys.OK {
		t.Fatal(e)
	}
	if st, _ := p.Stat("/f"); st.Mode != 0o640 {
		t.Errorf("mode = %o", st.Mode)
	}
	if e := p.Fchmod(fd, 0o600); e != sys.OK {
		t.Fatal(e)
	}
	if st, _ := p.Stat("/f"); st.Mode != 0o600 {
		t.Errorf("mode = %o", st.Mode)
	}
	if e := p.Fchmodat(sys.AT_FDCWD, "/f", 0o755, 0); e != sys.OK {
		t.Fatal(e)
	}
	if e := p.Fchmodat(sys.AT_FDCWD, "/f", 0o755, sys.AT_SYMLINK_NOFOLLOW); e != sys.ENOTSUP {
		t.Errorf("AT_SYMLINK_NOFOLLOW = %v, want ENOTSUP", e)
	}
	if e := p.Fchmodat(sys.AT_FDCWD, "/f", 0o755, 0x9999); e != sys.EINVAL {
		t.Errorf("bad flags = %v, want EINVAL", e)
	}
	if e := p.Chmod("/missing", 0o644); e != sys.ENOENT {
		t.Errorf("chmod missing = %v, want ENOENT", e)
	}
}

func TestMkdirat(t *testing.T) {
	p, _ := newProc(t)
	p.Mkdir("/d", 0o755)
	dfd, _ := p.Open("/d", sys.O_RDONLY|sys.O_DIRECTORY, 0)
	if e := p.Mkdirat(dfd, "sub", 0o755); e != sys.OK {
		t.Fatal(e)
	}
	if st, e := p.Stat("/d/sub"); e != sys.OK || st.Type != vfs.TypeDir {
		t.Errorf("mkdirat result: %+v, %v", st, e)
	}
	if e := p.Mkdirat(999, "x", 0o755); e != sys.EBADF {
		t.Errorf("bad dirfd = %v, want EBADF", e)
	}
}

func TestXattrSyscalls(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	if e := p.Setxattr("/f", "user.a", []byte("1"), 0); e != sys.OK {
		t.Fatal(e)
	}
	if e := p.Fsetxattr(fd, "user.b", []byte("22"), 0); e != sys.OK {
		t.Fatal(e)
	}
	buf := make([]byte, 8)
	if n, e := p.Getxattr("/f", "user.b", buf); e != sys.OK || n != 2 {
		t.Errorf("getxattr = %d,%v", n, e)
	}
	if n, e := p.Fgetxattr(fd, "user.a", buf); e != sys.OK || n != 1 {
		t.Errorf("fgetxattr = %d,%v", n, e)
	}
	p.Symlink("/f", "/l")
	// lsetxattr on a symlink: user.* attrs are not allowed on symlinks in
	// Linux, but our model permits them; at minimum it must not follow.
	if e := p.Lsetxattr("/l", "user.c", []byte("3"), 0); e != sys.OK {
		t.Fatal(e)
	}
	if _, e := p.Getxattr("/f", "user.c", buf); e != sys.ENODATA {
		t.Errorf("target has link's attr: %v", e)
	}
	if n, e := p.Lgetxattr("/l", "user.c", buf); e != sys.OK || n != 1 {
		t.Errorf("lgetxattr = %d,%v", n, e)
	}
	if _, e := p.Fgetxattr(999, "user.a", buf); e != sys.EBADF {
		t.Errorf("fgetxattr bad fd = %v, want EBADF", e)
	}
}

func TestFaultInjection(t *testing.T) {
	p, col := newProc(t)
	p.k.Faults().Add(FaultRule{Syscall: "open", Errno: sys.ENOMEM, Remaining: 1})
	if _, e := p.Open("/f", sys.O_CREAT|sys.O_WRONLY, 0o644); e != sys.ENOMEM {
		t.Fatalf("injected open = %v, want ENOMEM", e)
	}
	if _, e := p.Open("/f", sys.O_CREAT|sys.O_WRONLY, 0o644); e != sys.OK {
		t.Errorf("post-injection open = %v, want OK", e)
	}
	ev := col.Events()[0]
	if ev.Err != sys.ENOMEM || ev.Ret != -int64(sys.ENOMEM) {
		t.Errorf("injected event = %+v", ev)
	}
}

func TestFaultEveryN(t *testing.T) {
	p, _ := newProc(t)
	rule := p.k.Faults().Add(FaultRule{Syscall: "write", Errno: sys.EINTR, EveryN: 3})
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_WRONLY, 0o644)
	var failures int
	for i := 0; i < 9; i++ {
		if _, e := p.Write(fd, []byte("x")); e == sys.EINTR {
			failures++
		}
	}
	if failures != 3 {
		t.Errorf("EINTR count = %d, want 3", failures)
	}
	if rule.Fired() != 3 {
		t.Errorf("rule fired = %d, want 3", rule.Fired())
	}
}

func TestTraceEventSequence(t *testing.T) {
	p, col := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	p.Write(fd, bytes.Repeat([]byte("x"), 42))
	p.Close(fd)
	evs := col.Events()
	var last uint64
	for i, ev := range evs {
		if ev.Seq <= last {
			t.Errorf("event %d seq %d not increasing", i, ev.Seq)
		}
		last = ev.Seq
		if ev.PID != p.PID() {
			t.Errorf("event %d pid = %d", i, ev.PID)
		}
	}
	if c, _ := evs[1].Arg("count"); c != 42 {
		t.Errorf("write count = %d, want 42", c)
	}
}

// TestFaultFiredConcurrent pins FaultRule.Fired's atomicity: harness code
// polls Fired from other goroutines while syscalls inject, so the old plain
// field read raced with Check's increment under -race.
func TestFaultFiredConcurrent(t *testing.T) {
	p, _ := newProc(t)
	rule := p.k.Faults().Add(FaultRule{Syscall: "write", Errno: sys.EINTR, EveryN: 2})
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_WRONLY, 0o644)
	done := make(chan int64)
	go func() {
		var last int64
		for i := 0; i < 1000; i++ {
			last = rule.Fired()
		}
		done <- last
	}()
	for i := 0; i < 100; i++ {
		_, _ = p.Write(fd, []byte("x"))
	}
	last := <-done
	if last < 0 || last > 50 {
		t.Fatalf("concurrent Fired observed %d, want within 0..50", last)
	}
	if got := rule.Fired(); got != 50 {
		t.Errorf("final Fired = %d, want 50", got)
	}
}
