package kernel

import (
	"iocov/internal/sys"
	"iocov/internal/vfs"
)

// readableFD validates fd for reading: it must exist, not be O_PATH, and
// have a read access mode. Linux returns EBADF in all three cases.
func (p *Proc) readableFD(fd int) (*file, sys.Errno) {
	f, e := p.lookupFD(fd)
	if e != sys.OK {
		return nil, e
	}
	if f.flags&sys.O_PATH != 0 {
		return nil, sys.EBADF
	}
	acc := f.flags & sys.O_ACCMODE
	if acc != sys.O_RDONLY && acc != sys.O_RDWR {
		return nil, sys.EBADF
	}
	return f, sys.OK
}

// writableFD validates fd for writing.
func (p *Proc) writableFD(fd int) (*file, sys.Errno) {
	f, e := p.lookupFD(fd)
	if e != sys.OK {
		return nil, e
	}
	if f.flags&sys.O_PATH != 0 {
		return nil, sys.EBADF
	}
	acc := f.flags & sys.O_ACCMODE
	if acc != sys.O_WRONLY && acc != sys.O_RDWR {
		return nil, sys.EBADF
	}
	return f, sys.OK
}

// Read is read(2); it reads up to len(buf) bytes at the file position.
func (p *Proc) Read(fd int, buf []byte) (int, sys.Errno) {
	n, err := p.readInner("read", fd, buf, -1)
	p.emit("read", "", nil,
		[]ekv{{"fd", int64(fd)}, {"count", int64(len(buf))}},
		int64(n), err)
	return n, err
}

// Pread64 is pread64(2): positional read that leaves the file offset alone.
func (p *Proc) Pread64(fd int, buf []byte, off int64) (int, sys.Errno) {
	n, err := p.readInner("pread64", fd, buf, off)
	p.emit("pread64", "", nil,
		[]ekv{{"fd", int64(fd)}, {"count", int64(len(buf))}, {"pos", off}},
		int64(n), err)
	return n, err
}

// Readv is readv(2): scatter read into iovs at the file position. The traced
// count is the total buffer size, matching what LTTng derives from the
// iovec array.
func (p *Proc) Readv(fd int, iovs [][]byte) (int, sys.Errno) {
	total := 0
	for _, iov := range iovs {
		total += len(iov)
	}
	n, err := p.readvInner(fd, iovs)
	p.emit("readv", "", nil,
		[]ekv{{"fd", int64(fd)}, {"vlen", int64(len(iovs))}, {"count", int64(total)}},
		int64(n), err)
	return n, err
}

func (p *Proc) readInner(name string, fd int, buf []byte, off int64) (int, sys.Errno) {
	if e, hit := p.checkFault(name); hit {
		return 0, e
	}
	f, e := p.readableFD(fd)
	if e != sys.OK {
		return 0, e
	}
	if f.ino.Type() == vfs.TypeDir {
		return 0, sys.EISDIR
	}
	pos := off
	advance := false
	if off < 0 {
		pos = f.pos
		advance = true
	}
	n, e := p.k.fs.ReadAt(p.cred, f.ino, buf, pos)
	if e != sys.OK {
		return 0, e
	}
	if advance {
		f.pos += int64(n)
	}
	if f.flags&sys.O_NOATIME == 0 {
		p.k.fs.TouchAtime(f.ino)
	}
	return n, sys.OK
}

func (p *Proc) readvInner(fd int, iovs [][]byte) (int, sys.Errno) {
	if e, hit := p.checkFault("readv"); hit {
		return 0, e
	}
	if len(iovs) > 1024 { // UIO_MAXIOV
		return 0, sys.EINVAL
	}
	f, e := p.readableFD(fd)
	if e != sys.OK {
		return 0, e
	}
	if f.ino.Type() == vfs.TypeDir {
		return 0, sys.EISDIR
	}
	total := 0
	for _, iov := range iovs {
		n, e := p.k.fs.ReadAt(p.cred, f.ino, iov, f.pos)
		if e != sys.OK {
			if total > 0 {
				break
			}
			return 0, e
		}
		f.pos += int64(n)
		total += n
		if n < len(iov) {
			break
		}
	}
	return total, sys.OK
}

// Write is write(2).
func (p *Proc) Write(fd int, buf []byte) (int, sys.Errno) {
	n, err := p.writeInner("write", fd, buf, -1)
	p.emit("write", "", nil,
		[]ekv{{"fd", int64(fd)}, {"count", int64(len(buf))}},
		int64(n), err)
	return n, err
}

// Pwrite64 is pwrite64(2).
func (p *Proc) Pwrite64(fd int, buf []byte, off int64) (int, sys.Errno) {
	n, err := p.writeInner("pwrite64", fd, buf, off)
	p.emit("pwrite64", "", nil,
		[]ekv{{"fd", int64(fd)}, {"count", int64(len(buf))}, {"pos", off}},
		int64(n), err)
	return n, err
}

// Writev is writev(2).
func (p *Proc) Writev(fd int, iovs [][]byte) (int, sys.Errno) {
	total := 0
	for _, iov := range iovs {
		total += len(iov)
	}
	n, err := p.writevInner(fd, iovs)
	p.emit("writev", "", nil,
		[]ekv{{"fd", int64(fd)}, {"vlen", int64(len(iovs))}, {"count", int64(total)}},
		int64(n), err)
	return n, err
}

func (p *Proc) writeInner(name string, fd int, buf []byte, off int64) (int, sys.Errno) {
	if e, hit := p.checkFault(name); hit {
		return 0, e
	}
	f, e := p.writableFD(fd)
	if e != sys.OK {
		return 0, e
	}
	pos := off
	advance := false
	if off < 0 {
		pos = f.pos
		advance = true
		if f.flags&sys.O_APPEND != 0 {
			pos = f.ino.Size()
		}
	} else if f.flags&sys.O_APPEND != 0 {
		// pwrite on O_APPEND still appends on Linux (documented bug).
		pos = f.ino.Size()
	}
	nonblock := f.flags&sys.O_NONBLOCK != 0
	n, e := p.k.fs.WriteAt(p.cred, f.ino, buf, pos, nonblock)
	if e != sys.OK {
		return 0, e
	}
	if advance {
		f.pos = pos + int64(n)
	}
	return n, sys.OK
}

func (p *Proc) writevInner(fd int, iovs [][]byte) (int, sys.Errno) {
	if e, hit := p.checkFault("writev"); hit {
		return 0, e
	}
	if len(iovs) > 1024 {
		return 0, sys.EINVAL
	}
	f, e := p.writableFD(fd)
	if e != sys.OK {
		return 0, e
	}
	total := 0
	for _, iov := range iovs {
		pos := f.pos
		if f.flags&sys.O_APPEND != 0 {
			pos = f.ino.Size()
		}
		n, e := p.k.fs.WriteAt(p.cred, f.ino, iov, pos, f.flags&sys.O_NONBLOCK != 0)
		if e != sys.OK {
			if total > 0 {
				break
			}
			return 0, e
		}
		f.pos = pos + int64(n)
		total += n
	}
	return total, sys.OK
}

// Lseek is lseek(2) with SEEK_SET/CUR/END/DATA/HOLE.
func (p *Proc) Lseek(fd int, offset int64, whence int) (int64, sys.Errno) {
	pos, err := p.lseekInner(fd, offset, whence)
	p.emit("lseek", "", nil,
		[]ekv{{"fd", int64(fd)}, {"offset", offset}, {"whence", int64(whence)}},
		pos, err)
	return pos, err
}

func (p *Proc) lseekInner(fd int, offset int64, whence int) (int64, sys.Errno) {
	if e, hit := p.checkFault("lseek"); hit {
		return -1, e
	}
	f, e := p.lookupFD(fd)
	if e != sys.OK {
		return -1, e
	}
	size := f.ino.Size()
	var target int64
	switch whence {
	case sys.SEEK_SET:
		target = offset
	case sys.SEEK_CUR:
		target = f.pos + offset
	case sys.SEEK_END:
		target = size + offset
	case sys.SEEK_DATA:
		// The in-memory file is a single extent: data exists at any offset
		// below EOF.
		if offset >= size {
			return -1, sys.ENXIO
		}
		target = offset
	case sys.SEEK_HOLE:
		if offset >= size {
			return -1, sys.ENXIO
		}
		target = size
	default:
		return -1, sys.EINVAL
	}
	if target < 0 {
		return -1, sys.EINVAL
	}
	f.pos = target
	return target, sys.OK
}

// Ftruncate is ftruncate(2).
func (p *Proc) Ftruncate(fd int, length int64) sys.Errno {
	err := p.ftruncateInner(fd, length)
	p.emit("ftruncate", "", nil,
		[]ekv{{"fd", int64(fd)}, {"length", length}}, 0, err)
	return err
}

func (p *Proc) ftruncateInner(fd int, length int64) sys.Errno {
	if e, hit := p.checkFault("ftruncate"); hit {
		return e
	}
	f, e := p.writableFD(fd)
	if e != sys.OK {
		// ftruncate on a non-writable fd is EINVAL, not EBADF, when the
		// descriptor exists.
		if _, ok := p.fds[fd]; ok {
			return sys.EINVAL
		}
		return e
	}
	return p.k.fs.TruncateInode(p.cred, f.ino, length)
}

// Truncate is truncate(2).
func (p *Proc) Truncate(path string, length int64) sys.Errno {
	err := p.truncateInner(path, length)
	p.emit("truncate", path,
		[]eskv{{"path", path}},
		[]ekv{{"length", length}}, 0, err)
	return err
}

func (p *Proc) truncateInner(path string, length int64) sys.Errno {
	if e, hit := p.checkFault("truncate"); hit {
		return e
	}
	return p.k.fs.Truncate(p.cwd, p.cred, path, length)
}

// Fallocate is fallocate(2), supporting mode 0 and FALLOC_FL_KEEP_SIZE.
func (p *Proc) Fallocate(fd int, mode int, offset, length int64) sys.Errno {
	err := p.fallocateInner(fd, mode, offset, length)
	p.emit("fallocate", "", nil,
		[]ekv{{"fd", int64(fd)}, {"mode", int64(mode)}, {"offset", offset}, {"len", length}},
		0, err)
	return err
}

func (p *Proc) fallocateInner(fd int, mode int, offset, length int64) sys.Errno {
	if e, hit := p.checkFault("fallocate"); hit {
		return e
	}
	f, e := p.writableFD(fd)
	if e != sys.OK {
		return e
	}
	return p.k.fs.Fallocate(p.cred, f.ino, mode, offset, length)
}
