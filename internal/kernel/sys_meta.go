package kernel

import (
	"iocov/internal/sys"
	"iocov/internal/vfs"
)

// Mkdir is mkdir(2).
func (p *Proc) Mkdir(path string, mode uint32) sys.Errno {
	err := p.mkdirInner("mkdir", p.cwd, path, mode)
	p.emit("mkdir", path,
		[]eskv{{"pathname", path}},
		[]ekv{{"mode", int64(mode)}}, 0, err)
	return err
}

// Mkdirat is mkdirat(2).
func (p *Proc) Mkdirat(dirfd int, path string, mode uint32) sys.Errno {
	var err sys.Errno
	base, err := p.dirfdBase(dirfd, path)
	if err == sys.OK {
		err = p.mkdirInner("mkdirat", base, path, mode)
	}
	p.emit("mkdirat", path,
		[]eskv{{"pathname", path}},
		[]ekv{{"dfd", int64(dirfd)}, {"mode", int64(mode)}}, 0, err)
	return err
}

func (p *Proc) mkdirInner(name string, base *vfs.Inode, path string, mode uint32) sys.Errno {
	if e, hit := p.checkFault(name); hit {
		return e
	}
	return p.k.fs.Mkdir(base, p.cred, path, mode&sys.PermMask&^p.umask)
}

// Chmod is chmod(2).
func (p *Proc) Chmod(path string, mode uint32) sys.Errno {
	err := p.chmodInner("chmod", p.cwd, path, mode)
	p.emit("chmod", path,
		[]eskv{{"filename", path}},
		[]ekv{{"mode", int64(mode)}}, 0, err)
	return err
}

// Fchmod is fchmod(2).
func (p *Proc) Fchmod(fd int, mode uint32) sys.Errno {
	err := p.fchmodInner(fd, mode)
	p.emit("fchmod", "", nil,
		[]ekv{{"fd", int64(fd)}, {"mode", int64(mode)}}, 0, err)
	return err
}

func (p *Proc) fchmodInner(fd int, mode uint32) sys.Errno {
	if e, hit := p.checkFault("fchmod"); hit {
		return e
	}
	f, e := p.lookupFD(fd)
	if e != sys.OK {
		return e
	}
	if f.flags&sys.O_PATH != 0 {
		return sys.EBADF
	}
	return p.k.fs.ChmodInode(p.cred, f.ino, mode)
}

// Fchmodat is fchmodat(2). AT_SYMLINK_NOFOLLOW is accepted by the ABI but
// unsupported, returning ENOTSUP as on Linux.
func (p *Proc) Fchmodat(dirfd int, path string, mode uint32, flags int) sys.Errno {
	err := p.fchmodatInner(dirfd, path, mode, flags)
	p.emit("fchmodat", path,
		[]eskv{{"filename", path}},
		[]ekv{{"dfd", int64(dirfd)}, {"mode", int64(mode)}, {"flags", int64(flags)}}, 0, err)
	return err
}

func (p *Proc) fchmodatInner(dirfd int, path string, mode uint32, flags int) sys.Errno {
	if e, hit := p.checkFault("fchmodat"); hit {
		return e
	}
	if flags&^sys.AT_SYMLINK_NOFOLLOW != 0 {
		return sys.EINVAL
	}
	if flags&sys.AT_SYMLINK_NOFOLLOW != 0 {
		return sys.ENOTSUP
	}
	base, e := p.dirfdBase(dirfd, path)
	if e != sys.OK {
		return e
	}
	return p.chmodInner("", base, path, mode)
}

func (p *Proc) chmodInner(name string, base *vfs.Inode, path string, mode uint32) sys.Errno {
	if name != "" {
		if e, hit := p.checkFault(name); hit {
			return e
		}
	}
	return p.k.fs.Chmod(base, p.cred, path, mode)
}

// --- Untracked helper syscalls ---------------------------------------------
//
// The workload substrates need namespace operations beyond the 27 traced
// syscalls to build realistic filesystem states (CrashMonkey mutates with
// unlink/rename/fsync constantly). They are traced like everything else;
// the analyzer simply has no partitions for them, mirroring how IOCov
// ignores out-of-scope records in an LTTng trace.

// Unlink is unlink(2).
func (p *Proc) Unlink(path string) sys.Errno {
	var err sys.Errno
	if e, hit := p.checkFault("unlink"); hit {
		err = e
	} else {
		err = p.k.fs.Unlink(p.cwd, p.cred, path)
	}
	p.emit("unlink", path, []eskv{{"pathname", path}}, nil, 0, err)
	return err
}

// Rmdir is rmdir(2).
func (p *Proc) Rmdir(path string) sys.Errno {
	var err sys.Errno
	if e, hit := p.checkFault("rmdir"); hit {
		err = e
	} else {
		err = p.k.fs.Rmdir(p.cwd, p.cred, path)
	}
	p.emit("rmdir", path, []eskv{{"pathname", path}}, nil, 0, err)
	return err
}

// Rename is rename(2).
func (p *Proc) Rename(oldpath, newpath string) sys.Errno {
	var err sys.Errno
	if e, hit := p.checkFault("rename"); hit {
		err = e
	} else {
		err = p.k.fs.Rename(p.cwd, p.cred, oldpath, newpath)
	}
	p.emit("rename", oldpath,
		[]eskv{{"oldname", oldpath}, {"newname", newpath}}, nil, 0, err)
	return err
}

// Symlink is symlink(2).
func (p *Proc) Symlink(target, linkpath string) sys.Errno {
	var err sys.Errno
	if e, hit := p.checkFault("symlink"); hit {
		err = e
	} else {
		err = p.k.fs.Symlink(p.cwd, p.cred, target, linkpath)
	}
	p.emit("symlink", linkpath,
		[]eskv{{"oldname", target}, {"newname", linkpath}}, nil, 0, err)
	return err
}

// Link is link(2).
func (p *Proc) Link(oldpath, newpath string) sys.Errno {
	var err sys.Errno
	if e, hit := p.checkFault("link"); hit {
		err = e
	} else {
		err = p.k.fs.Link(p.cwd, p.cred, oldpath, newpath)
	}
	p.emit("link", oldpath,
		[]eskv{{"oldname", oldpath}, {"newname", newpath}}, nil, 0, err)
	return err
}

// Fsync is fsync(2); the in-memory filesystem is always durable, so it only
// validates the descriptor. CrashMonkey-style workloads call it heavily.
func (p *Proc) Fsync(fd int) sys.Errno {
	var err sys.Errno
	if e, hit := p.checkFault("fsync"); hit {
		err = e
	} else if _, e := p.lookupFD(fd); e != sys.OK {
		err = e
	}
	p.emit("fsync", "", nil, []ekv{{"fd", int64(fd)}}, 0, err)
	return err
}

// Fdatasync is fdatasync(2).
func (p *Proc) Fdatasync(fd int) sys.Errno {
	var err sys.Errno
	if e, hit := p.checkFault("fdatasync"); hit {
		err = e
	} else if _, e := p.lookupFD(fd); e != sys.OK {
		err = e
	}
	p.emit("fdatasync", "", nil, []ekv{{"fd", int64(fd)}}, 0, err)
	return err
}

// Sync is sync(2).
func (p *Proc) Sync() {
	if _, hit := p.checkFault("sync"); hit {
		// sync(2) cannot fail; the injection is consumed but ignored.
		_ = hit
	}
	p.emit("sync", "", nil, nil, 0, sys.OK)
}

// Stat is stat(2), following symlinks.
func (p *Proc) Stat(path string) (vfs.Stat, sys.Errno) {
	var st vfs.Stat
	var err sys.Errno
	if e, hit := p.checkFault("stat"); hit {
		err = e
	} else {
		st, err = p.k.fs.Lookup(p.cwd, p.cred, path)
	}
	p.emit("stat", path, []eskv{{"filename", path}}, nil, 0, err)
	return st, err
}

// StatfsBuf is the statfs(2) result subset the simulated filesystem
// supports.
type StatfsBuf struct {
	Bsize  int64
	Blocks int64
	Bfree  int64
}

// Statfs is statfs(2).
func (p *Proc) Statfs(path string) (StatfsBuf, sys.Errno) {
	var buf StatfsBuf
	var err sys.Errno
	if e, hit := p.checkFault("statfs"); hit {
		err = e
	} else if _, e := p.k.fs.Lookup(p.cwd, p.cred, path); e != sys.OK {
		err = e
	} else {
		cfg := p.k.fs.Config()
		buf = StatfsBuf{
			Bsize:  cfg.BlockSize,
			Blocks: cfg.CapacityBytes / cfg.BlockSize,
			Bfree:  p.k.fs.FreeBytes() / cfg.BlockSize,
		}
	}
	p.emit("statfs", path, []eskv{{"pathname", path}}, nil, 0, err)
	return buf, err
}

// Lstat is lstat(2).
func (p *Proc) Lstat(path string) (vfs.Stat, sys.Errno) {
	var st vfs.Stat
	var err sys.Errno
	if e, hit := p.checkFault("lstat"); hit {
		err = e
	} else {
		st, err = p.k.fs.LookupNoFollow(p.cwd, p.cred, path)
	}
	p.emit("lstat", path, []eskv{{"filename", path}}, nil, 0, err)
	return st, err
}
