package kernel

import (
	"iocov/internal/sys"
	"iocov/internal/vfs"
)

// validOpenFlagBits is the union of every flag bit open(2) understands;
// anything else is EINVAL under openat2's strict checking (plain open
// ignores unknown bits on Linux, but the simulated kernel rejects them for
// all variants so that trace records never contain undecodable words).
const validOpenFlagBits = sys.O_ACCMODE | sys.O_CREAT | sys.O_EXCL | sys.O_NOCTTY |
	sys.O_TRUNC | sys.O_APPEND | sys.O_NONBLOCK | sys.O_SYNC | sys.O_ASYNC |
	sys.O_DIRECT | sys.O_LARGEFILE | sys.O_TMPFILE | sys.O_NOFOLLOW |
	sys.O_NOATIME | sys.O_CLOEXEC | sys.O_PATH

// Open is open(2).
func (p *Proc) Open(path string, flags int, mode uint32) (int, sys.Errno) {
	fd, err := p.openCommon("open", sys.AT_FDCWD, path, flags, mode, 0)
	return fd, err
}

// Openat is openat(2).
func (p *Proc) Openat(dirfd int, path string, flags int, mode uint32) (int, sys.Errno) {
	return p.openCommon("openat", dirfd, path, flags, mode, 0)
}

// Creat is creat(2): equivalent to open with O_CREAT|O_WRONLY|O_TRUNC.
func (p *Proc) Creat(path string, mode uint32) (int, sys.Errno) {
	fd, err := p.openInner(sys.AT_FDCWD, path, sys.O_CREAT|sys.O_WRONLY|sys.O_TRUNC, mode, 0, "creat")
	p.emit("creat", path,
		[]eskv{{"pathname", path}},
		[]ekv{{"mode", int64(mode)}},
		retFD(fd, err), err)
	return fd, err
}

// OpenHow is openat2(2)'s struct open_how.
type OpenHow struct {
	Flags   int
	Mode    uint32
	Resolve int
}

// Openat2 is openat2(2) with RESOLVE_NO_SYMLINKS and RESOLVE_BENEATH
// support.
func (p *Proc) Openat2(dirfd int, path string, how OpenHow) (int, sys.Errno) {
	fd, err := p.openat2Inner(dirfd, path, how)
	p.emit("openat2", path,
		[]eskv{{"filename", path}},
		[]ekv{
			{"dfd", int64(dirfd)},
			{"flags", int64(how.Flags)},
			{"mode", int64(how.Mode)},
			{"resolve", int64(how.Resolve)},
		},
		retFD(fd, err), err)
	return fd, err
}

func (p *Proc) openat2Inner(dirfd int, path string, how OpenHow) (int, sys.Errno) {
	if e, hit := p.checkFault("openat2"); hit {
		return -1, e
	}
	if how.Resolve&^(sys.RESOLVE_NO_SYMLINKS|sys.RESOLVE_BENEATH) != 0 {
		return -1, sys.EINVAL
	}
	if how.Resolve&sys.RESOLVE_BENEATH != 0 && len(path) > 0 && path[0] == '/' {
		return -1, sys.EXDEV
	}
	flags := how.Flags
	if how.Resolve&sys.RESOLVE_NO_SYMLINKS != 0 {
		// The VFS layer has no no-symlinks mode on the open path itself;
		// O_NOFOLLOW only guards the final component, so pre-check the
		// whole path with a no-symlink resolution.
		base, e := p.dirfdBase(dirfd, path)
		if e != sys.OK {
			return -1, e
		}
		if _, e := p.k.fs.LookupInode(base, p.cred, path, false); e == sys.ELOOP {
			return -1, sys.ELOOP
		}
		flags |= sys.O_NOFOLLOW
	}
	return p.openInner(dirfd, path, flags, how.Mode, 0, "openat2")
}

// openCommon runs the open path and emits the variant's trace event.
func (p *Proc) openCommon(name string, dirfd int, path string, flags int, mode uint32, resolve int) (int, sys.Errno) {
	fd, err := p.openInner(dirfd, path, flags, mode, resolve, name)
	// args stays a built-up variable (not a literal) on purpose: this one
	// emit site serves both "open" and "openat", whose key sets differ, so
	// the speccheck linter must not pin a single literal key set to it.
	args := make([]ekv, 0, 3)
	args = append(args, ekv{"flags", int64(flags)}, ekv{"mode", int64(mode)})
	if name == "openat" {
		args = append(args, ekv{"dfd", int64(dirfd)})
	}
	p.emit(name, path, []eskv{{"filename", path}}, args, retFD(fd, err), err)
	return fd, err
}

func (p *Proc) openInner(dirfd int, path string, flags int, mode uint32, resolve int, faultName string) (int, sys.Errno) {
	if e, hit := p.checkFault(faultName); hit {
		return -1, e
	}
	if flags&^validOpenFlagBits != 0 {
		return -1, sys.EINVAL
	}
	accmode := flags & sys.O_ACCMODE
	if accmode == sys.O_ACCMODE {
		return -1, sys.EINVAL
	}
	// O_TMPFILE requires write access and names a directory.
	if flags&sys.O_TMPFILE == sys.O_TMPFILE {
		if accmode != sys.O_WRONLY && accmode != sys.O_RDWR {
			return -1, sys.EINVAL
		}
		return p.openTmpfile(dirfd, path, flags, mode)
	}
	// O_PATH ignores almost everything else; Linux permits only O_CLOEXEC,
	// O_DIRECTORY and O_NOFOLLOW alongside it.
	if flags&sys.O_PATH != 0 {
		if flags&^(sys.O_PATH|sys.O_CLOEXEC|sys.O_DIRECTORY|sys.O_NOFOLLOW) != 0 {
			return -1, sys.EINVAL
		}
	}
	base, e := p.dirfdBase(dirfd, path)
	if e != sys.OK {
		return -1, e
	}
	effMode := mode & sys.PermMask &^ p.umask
	res, e := p.k.fs.OpenInode(base, p.cred, path, flags, effMode)
	if e != sys.OK {
		return -1, e
	}
	f := &file{ino: res.Ino, flags: flags, path: path}
	if flags&sys.O_APPEND != 0 {
		f.pos = res.Ino.Size()
	}
	fd, e := p.allocFD(f)
	if e != sys.OK {
		return -1, e
	}
	return fd, sys.OK
}

// openTmpfile creates an unnamed file in the directory at path.
func (p *Proc) openTmpfile(dirfd int, path string, flags int, mode uint32) (int, sys.Errno) {
	base, e := p.dirfdBase(dirfd, path)
	if e != sys.OK {
		return -1, e
	}
	dir, e := p.k.fs.LookupInode(base, p.cred, path, true)
	if e != sys.OK {
		return -1, e
	}
	if dir.Type() != vfs.TypeDir {
		return -1, sys.ENOTDIR
	}
	// Create an anonymous file by opening a uniquely named child and
	// immediately unlinking it, which leaves the inode alive through the
	// descriptor — the same observable behaviour as O_TMPFILE.
	tmpName := tmpfileName(p, dir)
	effMode := mode & sys.PermMask &^ p.umask
	createFlags := (flags &^ sys.O_TMPFILE) | sys.O_CREAT | sys.O_EXCL
	res, e := p.k.fs.OpenInode(dir, p.cred, tmpName, createFlags, effMode)
	if e != sys.OK {
		return -1, e
	}
	f := &file{ino: res.Ino, flags: flags, path: path}
	fd, e := p.allocFD(f)
	if e != sys.OK {
		return -1, e
	}
	if e := p.k.fs.Unlink(dir, p.cred, tmpName); e != sys.OK {
		// The entry was just created; removal can only fail on EROFS,
		// which OpenInode would already have rejected.
		return fd, sys.OK
	}
	return fd, sys.OK
}

func tmpfileName(p *Proc, dir *vfs.Inode) string {
	return "#tmp-" + itoa(p.pid) + "-" + itoa(int(dir.Generation()))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Close is close(2).
func (p *Proc) Close(fd int) sys.Errno {
	err := p.closeInner(fd)
	p.emit("close", "", nil, []ekv{{"fd", int64(fd)}}, 0, err)
	return err
}

func (p *Proc) closeInner(fd int) sys.Errno {
	if e, hit := p.checkFault("close"); hit {
		return e
	}
	if _, e := p.lookupFD(fd); e != sys.OK {
		return e
	}
	delete(p.fds, fd)
	p.k.mu.Lock()
	p.k.openSys--
	p.k.mu.Unlock()
	return sys.OK
}

// Dup is dup(2): it duplicates fd at the lowest free descriptor number.
// Both descriptors share the open file description (offset and flags), as
// on Linux.
func (p *Proc) Dup(fd int) (int, sys.Errno) {
	nfd, err := p.dupInner(fd, -1)
	p.emit("dup", "", nil, []ekv{{"fildes", int64(fd)}}, retFD(nfd, err), err)
	return nfd, err
}

// Dup2 is dup2(2): it duplicates fd onto newfd, closing newfd first if
// open. dup2(fd, fd) validates fd and returns it.
func (p *Proc) Dup2(fd, newfd int) (int, sys.Errno) {
	nfd, err := p.dup2Inner(fd, newfd)
	p.emit("dup2", "", nil,
		[]ekv{{"oldfd", int64(fd)}, {"newfd", int64(newfd)}}, retFD(nfd, err), err)
	return nfd, err
}

func (p *Proc) dupInner(fd, _ int) (int, sys.Errno) {
	if e, hit := p.checkFault("dup"); hit {
		return -1, e
	}
	f, e := p.lookupFD(fd)
	if e != sys.OK {
		return -1, e
	}
	return p.allocFD(f)
}

func (p *Proc) dup2Inner(fd, newfd int) (int, sys.Errno) {
	if e, hit := p.checkFault("dup2"); hit {
		return -1, e
	}
	f, e := p.lookupFD(fd)
	if e != sys.OK {
		return -1, e
	}
	if newfd < 0 || newfd >= 1<<20 {
		return -1, sys.EBADF
	}
	if newfd == fd {
		return fd, sys.OK
	}
	if _, open := p.fds[newfd]; open {
		delete(p.fds, newfd)
	} else {
		if len(p.fds) >= p.maxFD {
			return -1, sys.EMFILE
		}
		p.k.mu.Lock()
		if p.k.openSys >= p.k.maxSys {
			p.k.mu.Unlock()
			return -1, sys.ENFILE
		}
		p.k.openSys++
		p.k.mu.Unlock()
	}
	p.fds[newfd] = f
	return newfd, sys.OK
}

// Chdir is chdir(2).
func (p *Proc) Chdir(path string) sys.Errno {
	err := p.chdirInner(path)
	p.emit("chdir", path, []eskv{{"filename", path}}, nil, 0, err)
	return err
}

func (p *Proc) chdirInner(path string) sys.Errno {
	if e, hit := p.checkFault("chdir"); hit {
		return e
	}
	ino, e := p.k.fs.LookupInode(p.cwd, p.cred, path, true)
	if e != sys.OK {
		return e
	}
	if ino.Type() != vfs.TypeDir {
		return sys.ENOTDIR
	}
	p.cwd = ino
	return sys.OK
}

// Fchdir is fchdir(2).
func (p *Proc) Fchdir(fd int) sys.Errno {
	err := p.fchdirInner(fd)
	p.emit("fchdir", "", nil, []ekv{{"fd", int64(fd)}}, 0, err)
	return err
}

func (p *Proc) fchdirInner(fd int) sys.Errno {
	if e, hit := p.checkFault("fchdir"); hit {
		return e
	}
	f, e := p.lookupFD(fd)
	if e != sys.OK {
		return e
	}
	if f.ino.Type() != vfs.TypeDir {
		return sys.ENOTDIR
	}
	p.cwd = f.ino
	return sys.OK
}
