package kernel

import (
	"iocov/internal/sys"
)

// Setxattr is setxattr(2). The traced size is the value length, which is
// the numeric argument the paper's partitioner tracks for this family.
func (p *Proc) Setxattr(path, name string, value []byte, flags int) sys.Errno {
	var err sys.Errno
	if e, hit := p.checkFault("setxattr"); hit {
		err = e
	} else {
		err = p.k.fs.Setxattr(p.cwd, p.cred, path, name, value, flags)
	}
	p.emit("setxattr", path,
		[]eskv{{"pathname", path}, {"name", name}},
		[]ekv{{"size", int64(len(value))}, {"flags", int64(flags)}}, 0, err)
	return err
}

// Lsetxattr is lsetxattr(2): it operates on a symlink itself.
func (p *Proc) Lsetxattr(path, name string, value []byte, flags int) sys.Errno {
	var err sys.Errno
	if e, hit := p.checkFault("lsetxattr"); hit {
		err = e
	} else {
		err = p.k.fs.SetxattrNoFollow(p.cwd, p.cred, path, name, value, flags)
	}
	p.emit("lsetxattr", path,
		[]eskv{{"pathname", path}, {"name", name}},
		[]ekv{{"size", int64(len(value))}, {"flags", int64(flags)}}, 0, err)
	return err
}

// Fsetxattr is fsetxattr(2).
func (p *Proc) Fsetxattr(fd int, name string, value []byte, flags int) sys.Errno {
	var err sys.Errno
	if e, hit := p.checkFault("fsetxattr"); hit {
		err = e
	} else if f, e := p.lookupFD(fd); e != sys.OK {
		err = e
	} else if f.flags&sys.O_PATH != 0 {
		err = sys.EBADF
	} else {
		err = p.k.fs.SetxattrInode(p.cred, f.ino, name, value, flags)
	}
	p.emit("fsetxattr", "",
		[]eskv{{"name", name}},
		[]ekv{{"fd", int64(fd)}, {"size", int64(len(value))}, {"flags", int64(flags)}}, 0, err)
	return err
}

// Getxattr is getxattr(2); it returns the attribute size on success.
func (p *Proc) Getxattr(path, name string, buf []byte) (int, sys.Errno) {
	var n int
	var err sys.Errno
	if e, hit := p.checkFault("getxattr"); hit {
		err = e
	} else {
		n, err = p.k.fs.Getxattr(p.cwd, p.cred, path, name, buf)
	}
	p.emit("getxattr", path,
		[]eskv{{"pathname", path}, {"name", name}},
		[]ekv{{"size", int64(len(buf))}}, int64(n), err)
	return n, err
}

// Lgetxattr is lgetxattr(2).
func (p *Proc) Lgetxattr(path, name string, buf []byte) (int, sys.Errno) {
	var n int
	var err sys.Errno
	if e, hit := p.checkFault("lgetxattr"); hit {
		err = e
	} else {
		n, err = p.k.fs.GetxattrNoFollow(p.cwd, p.cred, path, name, buf)
	}
	p.emit("lgetxattr", path,
		[]eskv{{"pathname", path}, {"name", name}},
		[]ekv{{"size", int64(len(buf))}}, int64(n), err)
	return n, err
}

// Listxattr is listxattr(2): it returns the NUL-separated attribute names.
// A zero-size buffer queries the needed size; a short buffer is ERANGE.
func (p *Proc) Listxattr(path string, buf []byte) (int, sys.Errno) {
	var n int
	var err sys.Errno
	if e, hit := p.checkFault("listxattr"); hit {
		err = e
	} else {
		names, e := p.k.fs.ListXattrs(p.cwd, p.cred, path)
		if e != sys.OK {
			err = e
		} else {
			n, err = packNames(names, buf)
		}
	}
	p.emit("listxattr", path,
		[]eskv{{"pathname", path}},
		[]ekv{{"size", int64(len(buf))}}, int64(n), err)
	return n, err
}

// packNames serializes xattr names in listxattr(2)'s wire format.
func packNames(names []string, buf []byte) (int, sys.Errno) {
	total := 0
	for _, n := range names {
		total += len(n) + 1
	}
	if len(buf) == 0 {
		return total, sys.OK
	}
	if len(buf) < total {
		return 0, sys.ERANGE
	}
	pos := 0
	for _, n := range names {
		pos += copy(buf[pos:], n)
		buf[pos] = 0
		pos++
	}
	return total, sys.OK
}

// Removexattr is removexattr(2).
func (p *Proc) Removexattr(path, name string) sys.Errno {
	var err sys.Errno
	if e, hit := p.checkFault("removexattr"); hit {
		err = e
	} else {
		err = p.k.fs.Removexattr(p.cwd, p.cred, path, name)
	}
	p.emit("removexattr", path,
		[]eskv{{"pathname", path}, {"name", name}}, nil, 0, err)
	return err
}

// Fremovexattr is fremovexattr(2).
func (p *Proc) Fremovexattr(fd int, name string) sys.Errno {
	var err sys.Errno
	if e, hit := p.checkFault("fremovexattr"); hit {
		err = e
	} else if f, e := p.lookupFD(fd); e != sys.OK {
		err = e
	} else if f.flags&sys.O_PATH != 0 {
		err = sys.EBADF
	} else {
		err = p.k.fs.RemovexattrInode(p.cred, f.ino, name)
	}
	p.emit("fremovexattr", "",
		[]eskv{{"name", name}},
		[]ekv{{"fd", int64(fd)}}, 0, err)
	return err
}

// Fgetxattr is fgetxattr(2).
func (p *Proc) Fgetxattr(fd int, name string, buf []byte) (int, sys.Errno) {
	var n int
	var err sys.Errno
	if e, hit := p.checkFault("fgetxattr"); hit {
		err = e
	} else if f, e := p.lookupFD(fd); e != sys.OK {
		err = e
	} else if f.flags&sys.O_PATH != 0 {
		err = sys.EBADF
	} else {
		n, err = p.k.fs.GetxattrInode(p.cred, f.ino, name, buf)
	}
	p.emit("fgetxattr", "",
		[]eskv{{"name", name}},
		[]ekv{{"fd", int64(fd)}, {"size", int64(len(buf))}}, int64(n), err)
	return n, err
}
