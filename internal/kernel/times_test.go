package kernel

import (
	"testing"

	"iocov/internal/sys"
)

func TestTimestampSemantics(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	st0, _ := p.Stat("/f")
	if st0.Atime == 0 || st0.Mtime == 0 || st0.Ctime == 0 {
		t.Fatal("fresh inode has zero timestamps")
	}
	// A write advances mtime and ctime but not atime.
	p.Write(fd, []byte("x"))
	st1, _ := p.Stat("/f")
	if st1.Mtime <= st0.Mtime || st1.Ctime <= st0.Ctime {
		t.Errorf("write did not advance mtime/ctime: %+v -> %+v", st0, st1)
	}
	if st1.Atime != st0.Atime {
		t.Errorf("write changed atime")
	}
	// A read advances only atime.
	p.Lseek(fd, 0, sys.SEEK_SET)
	p.Read(fd, make([]byte, 1))
	st2, _ := p.Stat("/f")
	if st2.Atime <= st1.Atime {
		t.Errorf("read did not advance atime")
	}
	if st2.Mtime != st1.Mtime {
		t.Errorf("read changed mtime")
	}
	// chmod advances ctime only.
	p.Chmod("/f", 0o600)
	st3, _ := p.Stat("/f")
	if st3.Ctime <= st2.Ctime || st3.Mtime != st2.Mtime || st3.Atime != st2.Atime {
		t.Errorf("chmod timestamps wrong: %+v -> %+v", st2, st3)
	}
	p.Close(fd)
}

func TestONoatimeSuppressesAtime(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_RDWR, 0o644)
	p.Write(fd, []byte("data"))
	p.Close(fd)
	fd, e := p.Open("/f", sys.O_RDONLY|sys.O_NOATIME, 0)
	if e != sys.OK {
		t.Fatal(e)
	}
	st0, _ := p.Stat("/f")
	p.Read(fd, make([]byte, 4))
	st1, _ := p.Stat("/f")
	if st1.Atime != st0.Atime {
		t.Errorf("O_NOATIME read advanced atime: %d -> %d", st0.Atime, st1.Atime)
	}
	p.Close(fd)
	// Without the flag the same read does advance it.
	fd, _ = p.Open("/f", sys.O_RDONLY, 0)
	p.Read(fd, make([]byte, 4))
	st2, _ := p.Stat("/f")
	if st2.Atime <= st1.Atime {
		t.Errorf("plain read did not advance atime")
	}
	p.Close(fd)
}

func TestLinkBumpsCtime(t *testing.T) {
	p, _ := newProc(t)
	fd, _ := p.Open("/f", sys.O_CREAT|sys.O_WRONLY, 0o644)
	p.Close(fd)
	st0, _ := p.Stat("/f")
	if e := p.Link("/f", "/g"); e != sys.OK {
		t.Fatal(e)
	}
	st1, _ := p.Stat("/f")
	if st1.Ctime <= st0.Ctime {
		t.Error("link did not bump target ctime")
	}
}

func TestDirectoryMtimeOnChildChange(t *testing.T) {
	p, _ := newProc(t)
	p.Mkdir("/d", 0o755)
	st0, _ := p.Stat("/d")
	fd, _ := p.Open("/d/child", sys.O_CREAT|sys.O_WRONLY, 0o644)
	p.Close(fd)
	st1, _ := p.Stat("/d")
	if st1.Mtime <= st0.Mtime {
		t.Error("creating a child did not bump the directory mtime")
	}
	p.Unlink("/d/child")
	st2, _ := p.Stat("/d")
	if st2.Mtime <= st1.Mtime {
		t.Error("unlinking a child did not bump the directory mtime")
	}
}
