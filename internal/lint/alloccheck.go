package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocCheck makes the zero-allocation hot-path contract static. The repo
// pins its per-event paths (Analyzer.Add, Filter.Keep, Proc.emit, the dense
// partition indexers) with testing.AllocsPerRun regressions, but those
// self-skip under -race, where the allocator is instrumented; this pass
// proves the same property from source, so a -race CI lane still enforces
// it.
//
// Functions annotated //iocov:hotpath are roots. Every function statically
// reachable from a root — direct calls and concrete-receiver method calls,
// across packages — must contain no allocating construct:
//
//   - make, new, map and slice composite literals, &T{...};
//   - closures (FuncLit) and go statements;
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - interface boxing: passing a concrete non-pointer value where a
//     parameter is interface-typed;
//   - append whose destination is not rooted at a parameter or the
//     receiver (caller-owned or fixed receiver buffers are the contract;
//     anything else can grow);
//   - calls into the standard library's known allocators (fmt, errors,
//     sort, regexp compilation, formatting strconv, allocating strings/
//     bytes helpers, strings.Builder/bytes.Buffer methods).
//
// Escape hatches, matching how amortized-zero paths actually work:
//
//   - //iocov:coldpath stops traversal: an acknowledged slow path
//     (first-sight compilation, option-gated features) may allocate;
//   - any construct inside an `if x == nil { ... }` guard is exempt:
//     lazy one-time initialization (map spill storage, per-pid tables)
//     amortizes to zero;
//   - map index writes are exempt (growth is amortized, and the
//     AllocsPerRun pins measure steady state the same way);
//   - calls through interfaces are boundaries, not violations: each
//     implementation used on a hot path carries its own annotation
//     (the pass does no class-hierarchy analysis);
//   - unlisted external calls are trusted (the denylist is explicit,
//     not inferred).
type AllocCheck struct{}

// NewAllocCheck returns the pass.
func NewAllocCheck() *AllocCheck { return &AllocCheck{} }

// Name implements Pass.
func (a *AllocCheck) Name() string { return "alloccheck" }

type allocAnalysis struct {
	t        *Target
	g        *CallGraph
	pass     string
	findings []Finding
	// guards caches each caller's nil-guard regions for edge filtering.
	guards map[*CGNode][]posRange
	// closures caches each caller's closure-literal regions: a call inside
	// a FuncLit runs when the closure does, not when the enclosing function
	// does, and the closure itself is already a hot-path finding.
	closures map[*CGNode][]posRange
}

// Run implements Pass. Reachability comes from the module call graph:
// hot-path roots are traversed over static edges only (interface and
// func-value dispatch are annotation boundaries per the pass contract),
// stopping at //iocov:coldpath callees and at calls made inside nil-guard
// lazy-init regions or closure literals.
func (a *AllocCheck) Run(t *Target) []Finding {
	g := t.CallGraph()
	an := &allocAnalysis{
		t: t, g: g, pass: a.Name(),
		guards:   make(map[*CGNode][]posRange),
		closures: make(map[*CGNode][]posRange),
	}

	// Nodes() is in declaration order, so the first root to reach a shared
	// helper attributes it deterministically.
	var roots []*CGNode
	for _, n := range g.Nodes() {
		if n.FA.hotpath {
			roots = append(roots, n)
		}
	}
	visited := make(map[*types.Func]bool)
	for _, root := range roots {
		reach := g.Reachable([]*types.Func{root.Obj}, func(e *CallSite) bool {
			return e.Kind == CallStatic && !e.Callee.FA.coldpath &&
				!inRegions(an.guardRegions(e.Caller), e.Pos) &&
				!inRegions(an.closureRegions(e.Caller), e.Pos)
		})
		for _, n := range g.Nodes() {
			if reach[n.Obj] && !visited[n.Obj] {
				visited[n.Obj] = true
				an.scan(n, root.Name())
			}
		}
	}
	return an.findings
}

// guardRegions returns (caching) the caller's nil-guard regions.
func (an *allocAnalysis) guardRegions(n *CGNode) []posRange {
	r, ok := an.guards[n]
	if !ok {
		r = nilGuardRegions(n.Decl.Body)
		an.guards[n] = r
	}
	return r
}

// closureRegions returns (caching) the caller's FuncLit body regions.
func (an *allocAnalysis) closureRegions(n *CGNode) []posRange {
	r, ok := an.closures[n]
	if !ok {
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			if lit, isLit := node.(*ast.FuncLit); isLit {
				r = append(r, posRange{lit.Body.Pos(), lit.Body.End()})
				return false
			}
			return true
		})
		an.closures[n] = r
	}
	return r
}

// inRegions reports whether a position falls inside any region.
func inRegions(regions []posRange, p token.Pos) bool {
	for _, r := range regions {
		if p >= r.from && p < r.to {
			return true
		}
	}
	return false
}

// funcDisplayName renders "Recv.Name" for methods, "Name" otherwise.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// posRange is a half-open source region.
type posRange struct{ from, to token.Pos }

// nilGuardRegions collects the bodies of `if x == nil` statements: allocating
// inside one is lazy initialization, amortized to zero in steady state.
func nilGuardRegions(body *ast.BlockStmt) []posRange {
	var regions []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if condHasNilEquality(ifs.Cond) {
			regions = append(regions, posRange{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return regions
}

// condHasNilEquality reports whether the condition contains an `== nil`
// comparison (anywhere: `a == nil || b == nil` qualifies; `!= nil` does not).
func condHasNilEquality(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.EQL {
			return true
		}
		if isNilIdent(be.X) || isNilIdent(be.Y) {
			found = true
		}
		return true
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// scan reports every allocating construct in one reachable function.
func (an *allocAnalysis) scan(fn *CGNode, root string) {
	name := fn.Name()
	regions := an.guardRegions(fn)
	inGuard := func(p token.Pos) bool { return inRegions(regions, p) }
	flag := func(pos token.Pos, format string, args ...interface{}) {
		if inGuard(pos) {
			return
		}
		an.findings = append(an.findings, Finding{
			Pass: an.pass,
			Pos:  an.t.Position(pos),
			Message: fmt.Sprintf("%s (hot path via //iocov:hotpath root %s): %s",
				name, root, fmt.Sprintf(format, args...)),
		})
	}

	owned := ownedRoots(fn)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			flag(x.Pos(), "declares a closure, which allocates")
			return false
		case *ast.GoStmt:
			flag(x.Pos(), "starts a goroutine, which allocates")
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					flag(x.Pos(), "takes the address of a composite literal (heap allocation)")
				}
			}
		case *ast.CompositeLit:
			switch fn.Pkg.Info.Types[x].Type.Underlying().(type) {
			case *types.Map:
				flag(x.Pos(), "map literal allocates")
			case *types.Slice:
				flag(x.Pos(), "slice literal allocates")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(fn.Pkg.Info.Types[x].Type) {
				flag(x.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 &&
				isStringType(fn.Pkg.Info.Types[x.Lhs[0]].Type) {
				flag(x.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			an.scanCall(fn, x, owned, flag)
		}
		return true
	})
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// ownedRoots collects the parameter and receiver objects: buffers rooted at
// them are caller-owned (or fixed receiver storage), so append to them is
// part of the scratch-reuse contract.
func ownedRoots(fn *CGNode) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	addField := func(f *ast.Field) {
		for _, name := range f.Names {
			if obj := fn.Pkg.Info.Defs[name]; obj != nil {
				owned[obj] = true
			}
		}
	}
	if fn.Decl.Recv != nil {
		for _, f := range fn.Decl.Recv.List {
			addField(f)
		}
	}
	if fn.Decl.Type.Params != nil {
		for _, f := range fn.Decl.Type.Params.List {
			addField(f)
		}
	}
	return owned
}

// scanCall classifies one call: builtin, conversion, denylisted external,
// and interface-boxing arguments. In-module callees need no handling here —
// the call graph already carries reachability.
func (an *allocAnalysis) scanCall(fn *CGNode, call *ast.CallExpr, owned map[types.Object]bool,
	flag func(token.Pos, string, ...interface{})) {

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := fn.Pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				flag(call.Pos(), "make allocates")
			case "new":
				flag(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 && !rootsAtOwned(fn, call.Args[0], owned) {
					flag(call.Pos(), "append to a buffer not owned by a caller or the receiver may grow")
				}
			}
			return
		}
	}

	// Conversions: string <-> []byte/[]rune copy their data.
	if tv, ok := fn.Pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := fn.Pkg.Info.Types[call.Args[0]].Type
		if src != nil && stringBytesConversion(dst, src.Underlying()) {
			flag(call.Pos(), "string conversion allocates")
		}
		return
	}

	// Resolve a static callee when there is one.
	var calleeObj *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		calleeObj, _ = fn.Pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		calleeObj, _ = fn.Pkg.Info.Uses[fun.Sel].(*types.Func)
	}

	denylisted := false
	if calleeObj != nil && an.g.Node(calleeObj) == nil {
		if reason, bad := externalAllocCall(calleeObj); bad {
			denylisted = true
			flag(call.Pos(), "calls %s, %s", externalCallName(calleeObj), reason)
		}
	}

	// Interface boxing of concrete non-pointer arguments. A denylisted call
	// is already one finding; piling boxing diagnostics on top is noise.
	if sig, ok := callSignature(fn, call); ok && !denylisted {
		checkBoxing(fn, call, sig, flag)
	}
}

// rootsAtOwned walks slice/index/field wrappers down to the root identifier
// and reports whether it is a parameter or the receiver.
func rootsAtOwned(fn *CGNode, e ast.Expr, owned map[types.Object]bool) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			obj := fn.Pkg.Info.Uses[x]
			if obj == nil {
				obj = fn.Pkg.Info.Defs[x]
			}
			return obj != nil && owned[obj]
		default:
			return false
		}
	}
}

// stringBytesConversion reports whether a conversion between dst and src
// copies string data.
func stringBytesConversion(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// callSignature resolves the signature of a (non-builtin, non-conversion)
// call expression.
func callSignature(fn *CGNode, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := fn.Pkg.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

// checkBoxing flags arguments whose parameter is interface-typed while the
// argument is a concrete non-pointer value: storing it in the interface
// heap-allocates the value.
func checkBoxing(fn *CGNode, call *ast.CallExpr, sig *types.Signature,
	flag func(token.Pos, string, ...interface{})) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := fn.Pkg.Info.Types[arg].Type
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Signature, *types.Chan, *types.Map:
			continue // already an interface, or a pointer-shaped value
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		flag(arg.Pos(), "boxes a concrete value into an interface argument")
	}
}

// externalCallName renders pkg.Func or Type.Method for diagnostics.
func externalCallName(obj *types.Func) string {
	sig := obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + obj.Name()
		}
		return obj.Name()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// stringsAllocFuncs are the strings functions that build new strings or
// slices; the searching/testing ones (Contains, HasPrefix, Cut, ...) do not
// allocate and stay allowed.
var stringsAllocFuncs = map[string]bool{
	"Join": true, "Repeat": true, "Split": true, "SplitN": true,
	"SplitAfter": true, "SplitAfterN": true, "Fields": true, "FieldsFunc": true,
	"Replace": true, "ReplaceAll": true, "ToUpper": true, "ToLower": true,
	"ToTitle": true, "Map": true, "Clone": true,
}

// bytesAllocFuncs mirrors stringsAllocFuncs for package bytes.
var bytesAllocFuncs = map[string]bool{
	"Join": true, "Repeat": true, "Split": true, "SplitN": true,
	"Fields": true, "Replace": true, "ReplaceAll": true,
	"ToUpper": true, "ToLower": true, "Clone": true,
}

// externalAllocCall classifies a standard-library call as a known allocator.
// Unknown externals are trusted: the denylist is explicit, not inferred.
func externalAllocCall(obj *types.Func) (string, bool) {
	pkg := obj.Pkg()
	if pkg == nil {
		return "", false
	}
	sig := obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return "", false
		}
		full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
		if full == "strings.Builder" || full == "bytes.Buffer" {
			return "whose buffer grows on the heap", true
		}
		return "", false
	}
	name := obj.Name()
	switch pkg.Path() {
	case "fmt":
		return "which formats through reflection and allocates", true
	case "errors":
		return "which allocates an error value", true
	case "sort":
		return "which allocates closures or boxes its argument", true
	case "regexp":
		return "which compiles or builds a pattern", true
	case "strings":
		if stringsAllocFuncs[name] {
			return "which builds a new string", true
		}
	case "bytes":
		if bytesAllocFuncs[name] {
			return "which builds a new slice", true
		}
	case "strconv":
		if !strings.HasPrefix(name, "Append") && name != "Atoi" &&
			!strings.HasPrefix(name, "Parse") {
			return "which formats into a new string", true
		}
	}
	return "", false
}
