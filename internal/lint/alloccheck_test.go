package lint

import "testing"

// TestAllocCheckBadFixture pins every seeded hot-path allocation to its
// line: one finding per rule, nothing extra.
func TestAllocCheckBadFixture(t *testing.T) {
	tgt := fixtureTarget(t, "alloccheck_bad")
	findings := NewAllocCheck().Run(tgt)

	wants := []struct {
		anchor string // unique fixture text on the expected line
		msg    string // substring of the finding message
	}{
		{"out = append(out, k)", "append to a buffer not owned by a caller or the receiver"},
		{"return make([]int, n)", "root Hot.MakeSlice): make allocates"},
		{"return new(item)", "new allocates"},
		{`return map[string]int{"a": 1}`, "map literal allocates"},
		{"return []int{1, 2, 3}", "slice literal allocates"},
		{`return &item{k: "x"}`, "takes the address of a composite literal"},
		{"return func() int { return n }", "declares a closure"},
		{"go h.MakeSlice(1)", "starts a goroutine"},
		{"return a + b", "string concatenation allocates"},
		{"s += p", "ConcatAssign (hot path"},
		{"return string(b)", "string conversion allocates"},
		{`return fmt.Sprintf("%d", v)`, "calls fmt.Sprintf, which formats through reflection"},
		{"s.accept(v)", "boxes a concrete value into an interface argument"},
		{"return make([]int, 8)", "root Hot.CallsHelper): make allocates"},
	}
	for _, w := range wants {
		f := requireFinding(t, findings, w.msg)
		if wantLine := fixtureLine(t, "alloccheck_bad/bad.go", w.anchor); f.Pos.Line != wantLine {
			t.Errorf("finding %q at line %d, want line %d (%s)", w.msg, f.Pos.Line, wantLine, w.anchor)
		}
	}
	if len(findings) != len(wants) {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Errorf("alloccheck_bad produced %d findings, want %d", len(findings), len(wants))
	}
}

// TestAllocCheckGoodFixture demands silence on the allowed idioms:
// caller-owned scratch append, receiver storage, nil-guard lazy init, map
// writes, interface-call boundaries, coldpath boundaries, atomics, and
// non-allocating external helpers.
func TestAllocCheckGoodFixture(t *testing.T) {
	tgt := fixtureTarget(t, "alloccheck_good")
	for _, f := range NewAllocCheck().Run(tgt) {
		t.Errorf("unexpected finding: %s", f)
	}
}
