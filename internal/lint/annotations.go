package lint

import (
	"go/ast"
	"strings"
)

// The //iocov: annotation grammar ties source comments to the flow-sensitive
// passes. Eight forms exist; shared-ok is parsed by shardcheck directly,
// the rest here:
//
//	//iocov:guarded-by <mutexField>   on a struct field: the field may only
//	                                  be accessed while the named sibling
//	                                  mutex field is held (lockcheck).
//	//iocov:locked <recv>.<path>      on a function: callers are required to
//	                                  hold the named lock at entry, e.g.
//	                                  "fs.mu" on a method with receiver fs
//	                                  (lockcheck).
//	//iocov:hotpath                   on a function: the function is a
//	                                  zero-allocation root; it and everything
//	                                  statically reachable from it must not
//	                                  allocate (alloccheck).
//	//iocov:coldpath                  on a function: an acknowledged slow
//	                                  path (one-time compilation, option-
//	                                  gated features); alloccheck traversal
//	                                  stops here.
//	//iocov:bounded-by <reason>       on a function, or on the line of (or
//	                                  directly above) a go statement: the
//	                                  launched goroutine's lifetime is bounded
//	                                  by the stated external fact (process
//	                                  exit, server shutdown) that leakcheck's
//	                                  CFG reasoning cannot see. The reason is
//	                                  mandatory.
//	//iocov:shared-ok <reason>        on a package-level var declaration: the
//	                                  variable is deliberately shared across
//	                                  worker goroutines and writes to it are
//	                                  exempt from shardcheck. The reason must
//	                                  state why sharing preserves the
//	                                  parallel-vs-serial contract (e.g. a
//	                                  sync.Once write of a value derived only
//	                                  from constants) and is mandatory.
//	//iocov:bounds-ok <reason>        on a function reachable from a hotpath
//	                                  root: index expressions boundcheck's
//	                                  interval lattice cannot prove in-bounds
//	                                  are sanctioned by the stated invariant
//	                                  (e.g. "ord < len(dense) by the Domain()
//	                                  ordinal contract, probed by
//	                                  domaincheck"). The reason is mandatory,
//	                                  and the annotation must be removable:
//	                                  if every index in the function becomes
//	                                  provable, boundcheck reports the stale
//	                                  annotation.
//	//iocov:deterministic             on a function: a determinism root. The
//	                                  function and everything statically
//	                                  reachable from it must be byte-stable —
//	                                  no wall clock, no global RNG, no map
//	                                  iteration order leaking into results,
//	                                  no goroutine completion order
//	                                  (determcheck).
//
// Annotations live in doc comments (and, for struct fields, trailing line
// comments). The directive must start the comment line, matching the
// convention of go:build and friends.

const annotationPrefix = "//iocov:"

// annotationsIn extracts the iocov directives from a comment group: each
// entry is the text after "//iocov:", e.g. "guarded-by mu".
func annotationsIn(groups ...*ast.CommentGroup) []string {
	var out []string
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if rest, ok := strings.CutPrefix(c.Text, annotationPrefix); ok {
				out = append(out, strings.TrimSpace(rest))
			}
		}
	}
	return out
}

// funcAnnotations describes the directives on one function declaration.
type funcAnnotations struct {
	hotpath       bool
	coldpath      bool
	deterministic bool
	// boundedBy holds the reason text of an //iocov:bounded-by directive;
	// empty means the function carries none.
	boundedBy string
	// boundsOK / boundsOKReason record an //iocov:bounds-ok directive: the
	// presence flag is separate from the reason so boundcheck can flag a
	// reasonless annotation instead of silently ignoring it.
	boundsOK       bool
	boundsOKReason string
	// locked holds the lock expressions from //iocov:locked directives,
	// e.g. "fs.mu" (one directive per lock).
	locked []string
}

// parseFuncAnnotations reads a function declaration's doc comment.
func parseFuncAnnotations(fd *ast.FuncDecl) funcAnnotations {
	var fa funcAnnotations
	for _, a := range annotationsIn(fd.Doc) {
		directive, arg, _ := strings.Cut(a, " ")
		switch directive {
		case "hotpath":
			fa.hotpath = true
		case "coldpath":
			fa.coldpath = true
		case "deterministic":
			fa.deterministic = true
		case "bounded-by":
			if arg = strings.TrimSpace(arg); arg != "" {
				fa.boundedBy = arg
			}
		case "bounds-ok":
			fa.boundsOK = true
			fa.boundsOKReason = strings.TrimSpace(arg)
		case "locked":
			if arg = strings.TrimSpace(arg); arg != "" {
				fa.locked = append(fa.locked, arg)
			}
		}
	}
	return fa
}

// fieldGuardAnnotation returns the mutex field named by a field's
// //iocov:guarded-by directive, or "" when the field carries none.
func fieldGuardAnnotation(f *ast.Field) string {
	for _, a := range annotationsIn(f.Doc, f.Comment) {
		directive, arg, _ := strings.Cut(a, " ")
		if directive == "guarded-by" {
			return strings.TrimSpace(arg)
		}
	}
	return ""
}
