package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// atomcheck enforces all-or-nothing atomicity: once any code path touches a
// variable or field through the sync/atomic package-level functions, every
// other access must too. A single plain read racing an atomic.AddInt64 is
// just as much a data race as two plain writes — the atomic call on one
// side buys nothing — and unlike a loud crash, a torn read of a coverage
// counter silently corrupts the statistics this project exists to report.
//
// The pass is whole-program and flow-insensitive by design: it collects the
// referent of the &x argument of every sync/atomic call anywhere in the
// module, then flags every other plain mention of the same object. The
// declaration itself and composite-literal zero/explicit initialization are
// exempt (initialization happens-before any goroutine can observe the
// value); everything else — reads, writes, ++, taking the address for
// non-atomic purposes — is a finding. Fields of the typed atomic.Int64
// family never trip the pass: the type system already forbids plain access.
type atomCheck struct{}

// NewAtomCheck returns the mixed-atomic-access pass.
func NewAtomCheck() Pass { return &atomCheck{} }

func (c *atomCheck) Name() string { return "atomcheck" }

func (c *atomCheck) Run(t *Target) []Finding {
	// Pass 1: every object that is the referent of a sync/atomic call's &x
	// argument, with the first such call site for the diagnostic, plus the
	// sanctioned mention positions (the idents inside those arguments).
	atomicAt := make(map[types.Object]token.Pos)
	sanctioned := make(map[token.Pos]bool)
	for _, pkg := range t.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				if fn.Type().(*types.Signature).Recv() != nil {
					return true // atomic.Int64-style method: typed, safe
				}
				un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					return true
				}
				id := referentIdent(un.X)
				if id == nil {
					return true
				}
				obj := pkg.Info.Uses[id]
				if v, ok := obj.(*types.Var); !ok || v == nil {
					return true
				}
				if _, seen := atomicAt[obj]; !seen {
					atomicAt[obj] = call.Pos()
				}
				sanctioned[id.Pos()] = true
				return true
			})
		}
	}
	if len(atomicAt) == 0 {
		return nil
	}

	// Pass 2: flag every unsanctioned mention of an atomic object outside
	// composite-literal initialization.
	var findings []Finding
	for _, pkg := range t.Pkgs {
		for _, f := range pkg.Files {
			initKeys := compositeLitKeys(f)
			ast.Inspect(f, func(node ast.Node) bool {
				id, ok := node.(*ast.Ident)
				if !ok || sanctioned[id.Pos()] || initKeys[id.Pos()] {
					return true
				}
				obj := pkg.Info.Uses[id]
				if obj == nil {
					return true
				}
				site, isAtomic := atomicAt[obj]
				if !isAtomic {
					return true
				}
				p := t.Position(site)
				findings = append(findings, Finding{
					Pass: "atomcheck",
					Pos:  t.Position(id.Pos()),
					Message: fmt.Sprintf(
						"%s is accessed atomically (sync/atomic call at %s:%d) but plainly here: every access must go through sync/atomic, or migrate to the typed atomic.%s family",
						id.Name, p.Filename, p.Line, typedAtomicName(obj)),
				})
				return true
			})
		}
	}
	return findings
}

// referentIdent returns the identifier naming the object &x refers to: x
// itself for a variable, the field selector for x.f (through any chain of
// selections), or nil when the operand is not a name (index expressions,
// pointer dereferences).
func referentIdent(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

// compositeLitKeys collects the positions of field keys inside composite
// literals: `state{count: 0}` initializes count before the value escapes,
// which is not a racy access.
func compositeLitKeys(f *ast.File) map[token.Pos]bool {
	keys := make(map[token.Pos]bool)
	ast.Inspect(f, func(node ast.Node) bool {
		lit, ok := node.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					keys[id.Pos()] = true
				}
			}
		}
		return true
	})
	return keys
}

// typedAtomicName suggests the typed replacement for an object's underlying
// type, defaulting to Value.
func typedAtomicName(obj types.Object) string {
	if b, ok := obj.Type().Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		case types.Bool:
			return "Bool"
		}
	}
	if _, ok := obj.Type().Underlying().(*types.Pointer); ok {
		return "Pointer"
	}
	return "Value"
}
