package lint

import "testing"

// TestAtomCheckBadFixture pins every seeded mixed access to its line: one
// finding per plain mention, nothing extra.
func TestAtomCheckBadFixture(t *testing.T) {
	tgt := fixtureTarget(t, "atomcheck_bad")
	findings := NewAtomCheck().Run(tgt)

	wants := []struct {
		anchor string // unique fixture text on the expected line
		msg    string // substring of the finding message
	}{
		{"return c.hits", "hits is accessed atomically"},
		{"c.hits = 0", "hits is accessed atomically"},
		{"c.drops++", "drops is accessed atomically"},
		{"return g < generation", "generation is accessed atomically"},
	}
	matched := make(map[int]bool)
	for _, w := range wants {
		wantLine := fixtureLine(t, "atomcheck_bad/bad.go", w.anchor)
		found := false
		for i, f := range findings {
			if !matched[i] && f.Pos.Line == wantLine {
				requireFinding(t, []Finding{f}, w.msg)
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding at line %d (%s)", wantLine, w.anchor)
		}
	}
	f := requireFinding(t, findings, "atomic.Int64 family")
	if f.Pass != "atomcheck" {
		t.Errorf("finding pass = %s, want atomcheck", f.Pass)
	}
	if len(findings) != len(wants) {
		for _, fd := range findings {
			t.Logf("finding: %s", fd)
		}
		t.Errorf("atomcheck_bad produced %d findings, want %d", len(findings), len(wants))
	}
}

// TestAtomCheckGoodFixture demands silence on disciplined atomics, typed
// atomics, composite-literal init, and plain never-atomic fields.
func TestAtomCheckGoodFixture(t *testing.T) {
	tgt := fixtureTarget(t, "atomcheck_good")
	for _, f := range NewAtomCheck().Run(tgt) {
		t.Errorf("unexpected finding: %s", f)
	}
}
