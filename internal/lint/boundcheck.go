package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// BoundCheck proves hot-path index arithmetic in-bounds. The repo's
// per-event paths index dense counter slices by Domain() ordinals,
// partition scratch arrays by indexer position, and evolve bitsets by
// word index; a bounds miss there is a panic in the middle of a traced
// syscall storm. The pass walks every function statically reachable from
// an //iocov:hotpath root (the same traversal as alloccheck, minus its
// lazy-init exemptions: a lazily initialized index is still an index) and
// attempts to prove every slice, array, and string index expression
// in-bounds with the value-analysis lattice (values.go): interval facts
// from constants, guards, and loop bounds, plus symbolic len() relations
// and interprocedural return summaries.
//
// Indexes the lattice cannot prove are findings — unless the function
// carries //iocov:bounds-ok <reason>, which sanctions them by naming the
// external invariant the solver cannot see (e.g. "ordinals come from
// Domain() whose exhaustiveness domaincheck probes"). The annotation is
// never a silent skip: a reasonless bounds-ok is a finding, and so is a
// stale one on a function whose indexes have all become provable, so
// annotations cannot outlive the code they excuse.
//
// Scope notes: map indexes and generic instantiations never panic and are
// ignored; slice-expression bounds (s[a:b]) are out of scope for this
// generation of the pass; code inside closure literals runs when the
// closure does (and closures are already alloccheck findings on hot
// paths), so it is skipped; statically unreachable blocks (code after an
// unconditional return) have no runtime behavior to prove.
type BoundCheck struct{}

// NewBoundCheck returns the pass.
func NewBoundCheck() *BoundCheck { return &BoundCheck{} }

// Name implements Pass.
func (b *BoundCheck) Name() string { return "boundcheck" }

// Run implements Pass.
func (b *BoundCheck) Run(t *Target) []Finding {
	g := t.CallGraph()
	eng := t.values()
	var findings []Finding

	var roots []*CGNode
	for _, n := range g.Nodes() {
		if n.FA.hotpath {
			roots = append(roots, n)
		}
	}
	visited := make(map[*types.Func]bool)
	for _, root := range roots {
		reach := g.Reachable([]*types.Func{root.Obj}, func(e *CallSite) bool {
			return e.Kind == CallStatic && !e.Callee.FA.coldpath
		})
		for _, n := range g.Nodes() {
			if reach[n.Obj] && !visited[n.Obj] {
				visited[n.Obj] = true
				findings = append(findings, b.checkFunc(t, eng, n, root.Name())...)
			}
		}
	}
	return findings
}

// checkFunc proves (or reports) every index obligation in one reachable
// function.
func (b *BoundCheck) checkFunc(t *Target, eng *valueEngine, fn *CGNode, root string) []Finding {
	an := eng.analysisOf(fn.Pkg, fn.Decl)
	if an == nil {
		return nil
	}
	type obligation struct {
		idx *ast.IndexExpr
		why string
	}
	var unproven []obligation
	an.walk(func(n ast.Node, f *valueFact) {
		an.visitIndexes(f, n, func(idx *ast.IndexExpr, f *valueFact) {
			if ok, why := an.proveIndex(f, idx); !ok {
				unproven = append(unproven, obligation{idx, why})
			}
		})
	})

	name := fn.Name()
	fa := fn.FA
	switch {
	case fa.boundsOK && fa.boundsOKReason == "":
		return []Finding{{
			Pass: b.Name(),
			Pos:  t.Position(fn.Decl.Pos()),
			Message: fmt.Sprintf(
				"%s: //iocov:bounds-ok annotation requires a reason stating the bounds invariant",
				name),
		}}
	case fa.boundsOK && len(unproven) == 0:
		return []Finding{{
			Pass: b.Name(),
			Pos:  t.Position(fn.Decl.Pos()),
			Message: fmt.Sprintf(
				"%s: stale //iocov:bounds-ok — every index expression is provable, remove the annotation",
				name),
		}}
	case fa.boundsOK:
		return nil // sanctioned: the reason documents the invariant
	}
	var out []Finding
	for _, ob := range unproven {
		out = append(out, Finding{
			Pass: b.Name(),
			Pos:  t.Position(ob.idx.Pos()),
			Message: fmt.Sprintf(
				"%s (hot path via //iocov:hotpath root %s): cannot prove index %s in-bounds: %s; guard it or annotate the function //iocov:bounds-ok <reason>",
				name, root, types.ExprString(ob.idx), ob.why),
		})
	}
	return out
}
