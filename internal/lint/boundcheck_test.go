package lint

import (
	"strings"
	"testing"
)

func TestBoundCheckBad(t *testing.T) {
	tgt := fixtureTarget(t, "boundcheck_bad")
	findings := NewBoundCheck().Run(tgt)

	f := requireFinding(t, findings, "cannot prove index counts[ord]")
	if want := fixtureLine(t, "boundcheck_bad/bad.go", "counts[ord]++"); f.Pos.Line != want {
		t.Errorf("counts[ord] finding at line %d, want %d", f.Pos.Line, want)
	}
	requireFinding(t, findings, "cannot prove index s[i]")
	requireFinding(t, findings, "cannot prove index words[i / 64]")
	requireFinding(t, findings, "//iocov:bounds-ok annotation requires a reason")
	requireFinding(t, findings, "stale //iocov:bounds-ok")
	requireFinding(t, findings, "cannot prove index b[i]")

	// The dirty helper is attributed to the hot-path root that reaches it.
	h := requireFinding(t, findings, "dirtyHelper")
	if !strings.Contains(h.Message, "root RootCallsDirty") {
		t.Errorf("helper finding not attributed to its root: %s", h.Message)
	}

	if len(findings) != 6 {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Errorf("boundcheck_bad produced %d findings, want 6", len(findings))
	}
}

func TestBoundCheckClean(t *testing.T) {
	tgt := fixtureTarget(t, "boundcheck_good")
	for _, f := range NewBoundCheck().Run(tgt) {
		t.Errorf("unexpected finding: %s", f)
	}
}
