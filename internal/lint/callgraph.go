package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the interprocedural half of the analysis engine: a
// package-spanning call graph over every function the Target loaded, built
// once per Target and shared by the whole-program passes (alloccheck's
// hot-path reachability, leakcheck's may-return fixpoint, determcheck's
// deterministic-surface traversal).
//
// Three edge kinds exist, in decreasing order of precision:
//
//   - CallStatic: the callee is a named function or a method called on a
//     concrete receiver; go/types resolves it exactly.
//   - CallInterface: the call goes through an interface method. The graph
//     conservatively adds one edge to every in-module method whose receiver
//     type implements the interface and whose name matches — every callee
//     the dynamic dispatch could reach within the module.
//   - CallFuncValue: the call invokes a function value (a variable, field,
//     or parameter of function type). The graph conservatively adds one
//     edge to every in-module function whose address is taken somewhere in
//     the module and whose signature is identical.
//
// Each pass chooses which kinds to follow: alloccheck and determcheck treat
// dynamic kinds as annotation boundaries (matching their documented
// contracts), while leakcheck's termination fixpoint follows everything.
//
// The graph is condensed into strongly connected components (Tarjan), so
// clients get a cycle-free component DAG in topological order: leakcheck
// solves its fixpoint callees-first in one sweep, and mutual recursion
// (which per-function reasoning cannot see) collapses into a single unit.

// CallKind classifies how a call site resolves to its callee.
type CallKind int

const (
	// CallStatic is an exactly resolved call: named function, or method on
	// a concrete receiver.
	CallStatic CallKind = iota
	// CallInterface is a conservative edge from an interface method call to
	// one in-module implementation.
	CallInterface
	// CallFuncValue is a conservative edge from a function-value call to
	// one address-taken in-module function with an identical signature.
	CallFuncValue
)

func (k CallKind) String() string {
	switch k {
	case CallStatic:
		return "static"
	case CallInterface:
		return "interface"
	case CallFuncValue:
		return "funcvalue"
	}
	return "unknown"
}

// CallSite is one edge of the call graph: a call expression in Caller that
// may transfer control to Callee.
type CallSite struct {
	Caller *CGNode
	Callee *CGNode
	// Pos locates the call expression in the caller's body.
	Pos token.Pos
	// Kind records how the callee was resolved.
	Kind CallKind
	// Go marks a `go f(...)` launch site; Defer marks a `defer f(...)`.
	Go    bool
	Defer bool
}

// CGNode is one declared function (or method) with a body.
type CGNode struct {
	// Obj is the type-checker's object for the function.
	Obj *types.Func
	// Pkg and Decl locate the declaration.
	Pkg  *Package
	Decl *ast.FuncDecl
	// FA carries the function's //iocov: annotations.
	FA funcAnnotations
	// Out and In are the edges leaving and entering the node, in source
	// order of their call sites.
	Out []*CallSite
	In  []*CallSite
	// scc is the node's component index; components are numbered in
	// reverse topological order (callees before callers).
	scc int
}

// Name renders the node as "Recv.Name" or "Name" for diagnostics.
func (n *CGNode) Name() string { return funcDisplayName(n.Decl) }

// CallGraph is the module-wide call graph of one Target.
type CallGraph struct {
	t     *Target
	nodes map[*types.Func]*CGNode
	// sorted is every node in declaration-position order, for deterministic
	// iteration.
	sorted []*CGNode
	// sccs[i] holds component i's nodes; components are in reverse
	// topological order of the condensation (a component only calls into
	// lower-numbered components, apart from its own internal cycles).
	sccs [][]*CGNode
}

// CallGraph returns the Target's call graph, building it on first use; all
// passes of one run share the same graph.
func (t *Target) CallGraph() *CallGraph {
	if t.cg == nil {
		t.cg = BuildCallGraph(t)
	}
	return t.cg
}

// Node returns the graph node for a function object, or nil for externals
// and bodyless declarations.
func (g *CallGraph) Node(f *types.Func) *CGNode { return g.nodes[f] }

// Nodes returns every node in declaration order.
func (g *CallGraph) Nodes() []*CGNode { return g.sorted }

// SCCs returns the strongly connected components of the graph in reverse
// topological order: every edge leaves a component with a higher index than
// it enters (or stays inside one component).
func (g *CallGraph) SCCs() [][]*CGNode { return g.sccs }

// SCCOf returns the component index of a function's node, or -1.
func (g *CallGraph) SCCOf(f *types.Func) int {
	n := g.nodes[f]
	if n == nil {
		return -1
	}
	return n.scc
}

// Reachable walks the graph from roots, following an edge only when follow
// returns true (nil follows everything), and returns the set of visited
// functions including the roots themselves.
func (g *CallGraph) Reachable(roots []*types.Func, follow func(*CallSite) bool) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var queue []*CGNode
	for _, r := range roots {
		if n := g.nodes[r]; n != nil && !seen[r] {
			seen[r] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if follow != nil && !follow(e) {
				continue
			}
			if !seen[e.Callee.Obj] {
				seen[e.Callee.Obj] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return seen
}

// BuildCallGraph constructs the call graph for a loaded target.
func BuildCallGraph(t *Target) *CallGraph {
	g := &CallGraph{t: t, nodes: make(map[*types.Func]*CGNode)}

	// Pass 1: one node per declared function with a body.
	for _, pkg := range t.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[obj] = &CGNode{
					Obj: obj, Pkg: pkg, Decl: fd, FA: parseFuncAnnotations(fd),
				}
			}
		}
	}
	for _, n := range g.nodes {
		g.sorted = append(g.sorted, n)
	}
	sort.Slice(g.sorted, func(i, j int) bool {
		return g.sorted[i].Decl.Pos() < g.sorted[j].Decl.Pos()
	})

	// Pass 2: collect methods by name (interface-call candidates) and
	// address-taken functions (func-value call candidates).
	methodsByName := make(map[string][]*CGNode)
	for _, n := range g.sorted {
		if n.Decl.Recv != nil {
			methodsByName[n.Obj.Name()] = append(methodsByName[n.Obj.Name()], n)
		}
	}
	addrTaken := g.collectAddrTaken()

	// Pass 3: resolve every call expression in every body.
	for _, n := range g.sorted {
		g.addEdges(n, methodsByName, addrTaken)
	}
	g.condense()
	return g
}

// collectAddrTaken finds in-module functions used as values (assigned,
// passed, stored): the candidate set for func-value call edges. An
// identifier in call position (the Fun of a CallExpr) is not a value use.
func (g *CallGraph) collectAddrTaken() []*CGNode {
	var out []*CGNode
	seen := make(map[*types.Func]bool)
	for _, pkg := range g.t.Pkgs {
		for _, f := range pkg.Files {
			// Idents naming the callee of a direct call: those are not
			// value uses.
			callPos := make(map[*ast.Ident]bool)
			ast.Inspect(f, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					callPos[fun] = true
				case *ast.SelectorExpr:
					callPos[fun.Sel] = true
				}
				return true
			})
			ast.Inspect(f, func(node ast.Node) bool {
				id, ok := node.(*ast.Ident)
				if !ok || callPos[id] {
					return true
				}
				obj, ok := pkg.Info.Uses[id].(*types.Func)
				if !ok || seen[obj] {
					return true
				}
				if n := g.nodes[obj]; n != nil {
					seen[obj] = true
					out = append(out, n)
				}
				return true
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// addEdges walks one function body and appends its outgoing call sites.
// Calls inside closures (FuncLit) belong to the enclosing declaration: the
// closure runs with the declaration's dynamic extent for every analysis
// built on this graph.
func (g *CallGraph) addEdges(n *CGNode, methodsByName map[string][]*CGNode, addrTaken []*CGNode) {
	info := n.Pkg.Info
	// goCalls/deferCalls mark the exact CallExpr operand of go/defer
	// statements so the edge carries launch-site metadata.
	goCalls := make(map[*ast.CallExpr]bool)
	deferCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch st := node.(type) {
		case *ast.GoStmt:
			goCalls[st.Call] = true
		case *ast.DeferStmt:
			deferCalls[st.Call] = true
		}
		return true
	})

	edge := func(callee *CGNode, call *ast.CallExpr, kind CallKind) {
		e := &CallSite{
			Caller: n, Callee: callee, Pos: call.Pos(), Kind: kind,
			Go: goCalls[call], Defer: deferCalls[call],
		}
		n.Out = append(n.Out, e)
		callee.In = append(callee.In, e)
	}

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)

		// Conversions and builtins produce no edges.
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}

		switch x := fun.(type) {
		case *ast.Ident:
			switch obj := info.Uses[x].(type) {
			case *types.Builtin:
				return true
			case *types.Func:
				if callee := g.nodes[obj]; callee != nil {
					edge(callee, call, CallStatic)
				}
				return true
			}
		case *ast.SelectorExpr:
			if obj, ok := info.Uses[x.Sel].(*types.Func); ok {
				// Interface dispatch: the selection's receiver is an
				// interface type, so the exact callee is unknown.
				if sel, isSel := info.Selections[x]; isSel && sel.Kind() == types.MethodVal {
					if iface, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
						for _, m := range implementers(methodsByName[obj.Name()], iface, obj) {
							edge(m, call, CallInterface)
						}
						return true
					}
				}
				if callee := g.nodes[obj]; callee != nil {
					edge(callee, call, CallStatic)
				}
				return true
			}
		case *ast.FuncLit:
			// Immediately invoked literal: its body is already part of this
			// node; no edge needed.
			return true
		}

		// Anything else with a function type is a dynamic func-value call.
		tv, ok := info.Types[call.Fun]
		if !ok {
			return true
		}
		sig, ok := tv.Type.Underlying().(*types.Signature)
		if !ok {
			return true
		}
		for _, cand := range addrTaken {
			if sameSignature(cand.Obj.Type().(*types.Signature), sig) {
				edge(cand, call, CallFuncValue)
			}
		}
		return true
	})
}

// implementers filters same-named in-module methods down to those whose
// receiver type implements iface with a signature matching the interface
// method being called.
func implementers(candidates []*CGNode, iface *types.Interface, called *types.Func) []*CGNode {
	var out []*CGNode
	for _, m := range candidates {
		recv := m.Obj.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		rt := recv.Type()
		if !types.Implements(rt, iface) && !types.Implements(types.NewPointer(rt), iface) {
			continue
		}
		if sameSignature(m.Obj.Type().(*types.Signature), called.Type().(*types.Signature)) {
			out = append(out, m)
		}
	}
	return out
}

// sameSignature compares two signatures by parameter and result tuples,
// ignoring receivers (a method value's receiver is bound away).
func sameSignature(a, b *types.Signature) bool {
	return types.Identical(a.Params(), b.Params()) &&
		types.Identical(a.Results(), b.Results()) &&
		a.Variadic() == b.Variadic()
}

// condense runs Tarjan's algorithm, numbering components in reverse
// topological order: Tarjan emits a component only after every component it
// can reach, so component 0 is a sink (calls nothing outside itself).
func (g *CallGraph) condense() {
	index := make(map[*CGNode]int, len(g.sorted))
	low := make(map[*CGNode]int, len(g.sorted))
	onStack := make(map[*CGNode]bool, len(g.sorted))
	var stack []*CGNode
	next := 0

	var strongconnect func(n *CGNode)
	strongconnect = func(n *CGNode) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, e := range n.Out {
			m := e.Callee
			if _, seen := index[m]; !seen {
				strongconnect(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			var comp []*CGNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				m.scc = len(g.sccs)
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			sort.Slice(comp, func(i, j int) bool { return comp[i].Decl.Pos() < comp[j].Decl.Pos() })
			g.sccs = append(g.sccs, comp)
		}
	}
	for _, n := range g.sorted {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
}
