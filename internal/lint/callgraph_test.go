package lint

import (
	"go/types"
	"strings"
	"testing"
)

// graphNode finds a node by its display name in the fixture graph.
func graphNode(t *testing.T, g *CallGraph, name string) *CGNode {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("call graph has no node %q", name)
	return nil
}

// calleeNames renders a node's outgoing edges as "kind:callee" strings.
func calleeNames(n *CGNode) []string {
	var out []string
	for _, e := range n.Out {
		s := e.Kind.String() + ":" + e.Callee.Name()
		if e.Go {
			s = "go/" + s
		}
		if e.Defer {
			s = "defer/" + s
		}
		out = append(out, s)
	}
	return out
}

func TestCallGraphEdges(t *testing.T) {
	g := fixtureTarget(t, "callgraph").CallGraph()

	cases := []struct {
		node string
		want []string
	}{
		{"helperA", []string{"static:leaf"}},
		{"helperB", []string{"static:dog.speak"}},
		// Interface dispatch: both implementers, not the arity-mismatched
		// robot.speak.
		{"viaInterface", []string{"interface:dog.speak", "interface:cat.speak"}},
		// Func-value dispatch: only address-taken signature matches — leaf
		// is returned as a value in takeAddr, helperA never is.
		{"viaFuncValue", []string{"funcvalue:leaf"}},
		{"even", []string{"static:odd"}},
		{"odd", []string{"static:even"}},
		{"launcher", []string{"go/static:helperA", "defer/static:leaf", "static:viaInterface"}},
	}
	for _, c := range cases {
		got := calleeNames(graphNode(t, g, c.node))
		if strings.Join(got, " ") != strings.Join(c.want, " ") {
			t.Errorf("%s edges = %v, want %v", c.node, got, c.want)
		}
	}

	// takeAddr returns leaf as a value: no call edge.
	if got := calleeNames(graphNode(t, g, "takeAddr")); len(got) != 0 {
		t.Errorf("takeAddr edges = %v, want none", got)
	}
}

func TestCallGraphSCC(t *testing.T) {
	g := fixtureTarget(t, "callgraph").CallGraph()

	even := graphNode(t, g, "even")
	odd := graphNode(t, g, "odd")
	leaf := graphNode(t, g, "leaf")
	helperA := graphNode(t, g, "helperA")

	if g.SCCOf(even.Obj) != g.SCCOf(odd.Obj) {
		t.Errorf("even (scc %d) and odd (scc %d) should share a component",
			g.SCCOf(even.Obj), g.SCCOf(odd.Obj))
	}
	if g.SCCOf(even.Obj) == g.SCCOf(leaf.Obj) {
		t.Error("even and leaf should not share a component")
	}
	// Reverse topological order: a callee's component index is lower than
	// its caller's.
	if !(g.SCCOf(leaf.Obj) < g.SCCOf(helperA.Obj)) {
		t.Errorf("leaf scc %d should precede helperA scc %d",
			g.SCCOf(leaf.Obj), g.SCCOf(helperA.Obj))
	}
	// Every edge respects the order.
	for _, n := range g.Nodes() {
		for _, e := range n.Out {
			if e.Callee.scc > n.scc {
				t.Errorf("edge %s -> %s goes from scc %d to higher scc %d",
					n.Name(), e.Callee.Name(), n.scc, e.Callee.scc)
			}
		}
	}
	if g.SCCOf((*types.Func)(nil)) != -1 {
		t.Error("SCCOf(nil) should be -1")
	}
}

func TestCallGraphReachable(t *testing.T) {
	g := fixtureTarget(t, "callgraph").CallGraph()

	launcher := graphNode(t, g, "launcher")

	// Following every edge: launcher reaches helperA, leaf, viaInterface,
	// and both interface implementations.
	all := g.Reachable([]*types.Func{launcher.Obj}, nil)
	for _, want := range []string{"launcher", "helperA", "leaf", "viaInterface", "dog.speak", "cat.speak"} {
		if !all[graphNode(t, g, want).Obj] {
			t.Errorf("launcher should reach %s following all edges", want)
		}
	}
	if all[graphNode(t, g, "even").Obj] {
		t.Error("launcher should not reach even")
	}

	// Static-only traversal stops at the interface boundary.
	static := g.Reachable([]*types.Func{launcher.Obj}, func(e *CallSite) bool {
		return e.Kind == CallStatic
	})
	if static[graphNode(t, g, "dog.speak").Obj] {
		t.Error("static-only traversal should not cross the interface call")
	}
	if !static[graphNode(t, g, "viaInterface").Obj] {
		t.Error("static-only traversal should still reach viaInterface")
	}
}
