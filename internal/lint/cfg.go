package lint

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// This file is the control-flow half of lint's flow-sensitive analysis
// engine. BuildCFG lowers one function body into basic blocks connected by
// explicit edges, covering the full Go statement grammar the repository
// uses: if/else chains, all three for-loop forms, range, expression and type
// switches (including fallthrough), select (with and without default),
// labeled break/continue, goto, early return, and explicit panic calls.
//
// Defer is deliberately NOT lowered into edges: a DeferStmt stays in its
// block as an ordinary node, and flow-sensitive passes interpret deferred
// effects themselves (lockcheck applies must-deferred unlocks at every exit
// edge, which is exactly how the runtime behaves on both return and panic).

// Block is one basic block: a maximal straight-line run of statements and
// clause expressions with a single entry point.
type Block struct {
	// Index is the block's position in CFG.Blocks; the entry block is 0.
	Index int
	// Kind labels why the block exists ("entry", "if.then", "for.head",
	// "select.comm", ...), for golden tests and diagnostics.
	Kind string
	// Nodes are the AST nodes evaluated in this block, in execution order.
	// Clause headers (if conditions, switch tags, range operands) appear as
	// expressions; everything else as statements.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
	// Preds are the predecessor blocks (filled after construction).
	Preds []*Block

	// Branch metadata for edge-aware analyses (the value lattice refines
	// facts differently along the two sides of a conditional). When the
	// block ends in a two-way branch lowered from an if or for condition,
	// Cond is that condition and TrueSucc/FalseSucc are the successors
	// taken when it evaluates true/false. When the block is a range head,
	// Range is the statement and TrueSucc/FalseSucc are the body/join
	// successors (the body edge binds the iteration variables). All nil
	// for blocks that end in switches, selects, jumps, or plain
	// fall-through.
	Cond      ast.Expr
	Range     *ast.RangeStmt
	TrueSucc  *Block
	FalseSucc *Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks holds every block; Blocks[0] is the entry.
	Blocks []*Block
	// Exit is the synthetic exit block: every return, explicit panic, and
	// the fall-off-the-end path leads here.
	Exit *Block
}

// cfgBuilder accumulates blocks while walking a function body.
type cfgBuilder struct {
	blocks []*Block
	cur    *Block
	exit   *Block
	// loops is the stack of enclosing breakable/continuable constructs.
	loops []loopFrame
	// labels maps a label name to its loop frame (for labeled break and
	// continue) and gotos maps label names to their jump target blocks.
	labels map[string]*loopFrame
	gotos  map[string]*Block
	// pendingGotos are forward gotos waiting for their label to appear.
	pendingGotos map[string][]*Block
	// nextLabel, when set, names the loop frame pushed by the next
	// breakable construct (set by labeledStmt).
	nextLabel string
}

// loopFrame records where break and continue jump for one construct.
type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames (continue skips them)
}

// BuildCFG lowers body (a function or closure body) into a CFG.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		labels:       make(map[string]*loopFrame),
		gotos:        make(map[string]*Block),
		pendingGotos: make(map[string][]*Block),
	}
	entry := b.newBlock("entry")
	b.exit = &Block{Kind: "exit"}
	b.cur = entry
	b.stmtList(body.List)
	// Falling off the end of the body reaches the exit.
	b.edge(b.cur, b.exit)
	b.exit.Index = len(b.blocks)
	b.blocks = append(b.blocks, b.exit)
	g := &CFG{Blocks: b.blocks, Exit: b.exit}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return g
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.blocks), Kind: kind}
	b.blocks = append(b.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock makes blk current, linking the previous current block to it
// when fall-through is possible.
func (b *cfgBuilder) startBlock(blk *Block, fallFrom *Block) {
	if fallFrom != nil {
		b.edge(fallFrom, blk)
	}
	b.cur = blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt lowers one statement, appending to or splitting the current block.
func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.IfStmt:
		if st.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, st.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, st.Cond)
		head := b.cur
		join := b.newBlock("if.join")
		then := b.newBlock("if.then")
		head.Cond = st.Cond
		head.TrueSucc = then
		b.startBlock(then, head)
		b.stmtList(st.Body.List)
		b.edge(b.cur, join)
		if st.Else != nil {
			els := b.newBlock("if.else")
			head.FalseSucc = els
			b.startBlock(els, head)
			b.stmt(st.Else)
			b.edge(b.cur, join)
		} else {
			head.FalseSucc = join
			b.edge(head, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if st.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, st.Init)
		}
		head := b.newBlock("for.head")
		b.edge(b.cur, head)
		if st.Cond != nil {
			head.Nodes = append(head.Nodes, st.Cond)
		}
		join := b.newBlock("for.join")
		post := head
		if st.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, st.Post)
			b.edge(post, head)
		}
		frame := b.pushLoop(join, post)
		body := b.newBlock("for.body")
		b.startBlock(body, head)
		b.stmtList(st.Body.List)
		b.edge(b.cur, post)
		b.popLoop(frame)
		if st.Cond != nil {
			head.Cond = st.Cond
			head.TrueSucc = body
			head.FalseSucc = join
			b.edge(head, join)
		}
		// A cond-less for only reaches join via break; join may be
		// unreachable, which the dataflow engine tolerates.
		b.cur = join

	case *ast.RangeStmt:
		b.cur.Nodes = append(b.cur.Nodes, st.X)
		head := b.newBlock("range.head")
		b.edge(b.cur, head)
		// Key/value bindings happen per iteration; only the binding
		// expressions live in the head (never the whole RangeStmt, which
		// would drag the body's statements into the head block for any
		// pass that walks node subtrees).
		if st.Key != nil {
			head.Nodes = append(head.Nodes, st.Key)
		}
		if st.Value != nil {
			head.Nodes = append(head.Nodes, st.Value)
		}
		join := b.newBlock("range.join")
		b.edge(head, join) // empty collection
		frame := b.pushLoop(join, head)
		body := b.newBlock("range.body")
		head.Range = st
		head.TrueSucc = body
		head.FalseSucc = join
		b.startBlock(body, head)
		b.stmtList(st.Body.List)
		b.edge(b.cur, head)
		b.popLoop(frame)
		b.cur = join

	case *ast.SwitchStmt:
		if st.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, st.Init)
		}
		if st.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, st.Tag)
		}
		b.switchClauses(st.Body.List, "switch")

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, st.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, st.Assign)
		b.switchClauses(st.Body.List, "typeswitch")

	case *ast.SelectStmt:
		head := b.cur
		join := b.newBlock("select.join")
		frame := b.pushSwitchFrame(join)
		for _, c := range st.Body.List {
			comm := c.(*ast.CommClause)
			kind := "select.comm"
			if comm.Comm == nil {
				kind = "select.default"
			}
			blk := b.newBlock(kind)
			if comm.Comm != nil {
				blk.Nodes = append(blk.Nodes, comm.Comm)
			}
			b.startBlock(blk, head)
			b.stmtList(comm.Body)
			b.edge(b.cur, join)
		}
		if len(st.Body.List) == 0 {
			// select{} blocks forever; model as an edge to exit, keeping the
			// statement in the block so leakcheck can tell this blocking
			// "exit" apart from a genuine return.
			head.Nodes = append(head.Nodes, st)
			b.edge(head, b.exit)
		}
		b.popLoop(frame)
		b.cur = join

	case *ast.LabeledStmt:
		// The label introduces a jump target; record it before lowering the
		// labeled statement so backward gotos and labeled break/continue
		// resolve.
		target := b.newBlock("label." + st.Label.Name)
		b.edge(b.cur, target)
		b.cur = target
		b.gotos[st.Label.Name] = target
		for _, from := range b.pendingGotos[st.Label.Name] {
			b.edge(from, target)
		}
		delete(b.pendingGotos, st.Label.Name)
		b.labeledStmt(st.Label.Name, st.Stmt)

	case *ast.BranchStmt:
		b.branch(st)

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, st)
		b.edge(b.cur, b.exit)
		b.cur = b.newBlock("unreachable")

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, st)
		if isPanicCall(st.X) {
			b.edge(b.cur, b.exit)
			b.cur = b.newBlock("unreachable")
		}

	default:
		// Assignments, declarations, defer, go, send, incdec, empty: all
		// straight-line.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// labeledStmt lowers the statement under a label, making the label usable by
// break and continue when the statement is a loop, switch, or select.
func (b *cfgBuilder) labeledStmt(label string, s ast.Stmt) {
	switch s.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.nextLabel = label
		b.stmt(s)
		b.nextLabel = ""
	default:
		b.stmt(s)
	}
}

func (b *cfgBuilder) pushLoop(breakTo, continueTo *Block) *loopFrame {
	f := &loopFrame{label: b.nextLabel, breakTo: breakTo, continueTo: continueTo}
	b.nextLabel = ""
	b.loops = append(b.loops, *f)
	if f.label != "" {
		b.labels[f.label] = f
	}
	return f
}

func (b *cfgBuilder) pushSwitchFrame(breakTo *Block) *loopFrame {
	f := &loopFrame{label: b.nextLabel, breakTo: breakTo}
	b.nextLabel = ""
	b.loops = append(b.loops, *f)
	if f.label != "" {
		b.labels[f.label] = f
	}
	return f
}

func (b *cfgBuilder) popLoop(f *loopFrame) {
	b.loops = b.loops[:len(b.loops)-1]
	if f.label != "" {
		delete(b.labels, f.label)
	}
}

// switchClauses lowers the case clauses of an expression or type switch.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, kind string) {
	head := b.cur
	join := b.newBlock(kind + ".join")
	frame := b.pushSwitchFrame(join)

	// Pre-create case blocks so fallthrough can edge to the next clause.
	caseBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		k := kind + ".case"
		if cc.List == nil {
			k = kind + ".default"
			hasDefault = true
		}
		caseBlocks[i] = b.newBlock(k)
		b.edge(head, caseBlocks[i])
	}
	if !hasDefault {
		b.edge(head, join)
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.cur.Nodes = append(b.cur.Nodes, e)
		}
		fallsThrough := false
		for _, s := range cc.Body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fallsThrough = true
				break
			}
			b.stmt(s)
		}
		if fallsThrough && i+1 < len(caseBlocks) {
			b.edge(b.cur, caseBlocks[i+1])
		} else {
			b.edge(b.cur, join)
		}
	}
	b.popLoop(frame)
	b.cur = join
}

// branch lowers break, continue, goto, and fallthrough (fallthrough is
// handled by switchClauses; seeing one here means a malformed tree, ignored).
func (b *cfgBuilder) branch(st *ast.BranchStmt) {
	switch st.Tok.String() {
	case "break":
		if f := b.branchFrame(st, false); f != nil {
			b.edge(b.cur, f.breakTo)
		}
		b.cur = b.newBlock("unreachable")
	case "continue":
		if f := b.branchFrame(st, true); f != nil && f.continueTo != nil {
			b.edge(b.cur, f.continueTo)
		}
		b.cur = b.newBlock("unreachable")
	case "goto":
		if st.Label != nil {
			if target, ok := b.gotos[st.Label.Name]; ok {
				b.edge(b.cur, target)
			} else {
				b.pendingGotos[st.Label.Name] = append(b.pendingGotos[st.Label.Name], b.cur)
			}
		}
		b.cur = b.newBlock("unreachable")
	}
}

// branchFrame resolves which frame a break/continue targets.
func (b *cfgBuilder) branchFrame(st *ast.BranchStmt, needContinue bool) *loopFrame {
	if st.Label != nil {
		if f, ok := b.labels[st.Label.Name]; ok {
			return f
		}
		return nil
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := &b.loops[i]
		if needContinue && f.continueTo == nil {
			continue // switch/select frames are transparent to continue
		}
		return f
	}
	return nil
}

// isPanicCall reports whether e is a direct call to the predeclared panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Dump renders the CFG as deterministic text for golden tests: one line per
// block with its kind, node count, and successor indices.
func (g *CFG) Dump() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		succs := make([]int, 0, len(blk.Succs))
		for _, s := range blk.Succs {
			succs = append(succs, s.Index)
		}
		sort.Ints(succs)
		parts := make([]string, len(succs))
		for i, n := range succs {
			parts[i] = fmt.Sprintf("%d", n)
		}
		fmt.Fprintf(&sb, "b%d %s n=%d -> [%s]\n",
			blk.Index, blk.Kind, len(blk.Nodes), strings.Join(parts, " "))
	}
	return sb.String()
}
