package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildTestCFG parses a function body (syntax only; identifiers need not
// resolve) and lowers it.
func buildTestCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_input.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return BuildCFG(f.Decls[0].(*ast.FuncDecl).Body)
}

// The golden strings pin block layout, node counts, and every edge for the
// shapes that historically break CFG builders. A failure here means the
// lowering changed; update the golden only after hand-checking the edges.

func TestCFGLabeledBreakContinue(t *testing.T) {
	g := buildTestCFG(t, `
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				break outer
			}
			work()
		}
	}
	done()`)
	want := `b0 entry n=0 -> [1]
b1 label.outer n=1 -> [2]
b2 for.head n=1 -> [3 5]
b3 for.join n=1 -> [16]
b4 for.post n=1 -> [2]
b5 for.body n=1 -> [6]
b6 for.head n=1 -> [7 9]
b7 for.join n=0 -> [4]
b8 for.post n=1 -> [6]
b9 for.body n=1 -> [10 11]
b10 if.join n=1 -> [13 14]
b11 if.then n=0 -> [4]
b12 unreachable n=0 -> [10]
b13 if.join n=1 -> [8]
b14 if.then n=0 -> [3]
b15 unreachable n=0 -> [13]
b16 exit n=0 -> []
`
	if got := g.Dump(); got != want {
		t.Errorf("labeled break/continue CFG:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCFGSelectWithDefault(t *testing.T) {
	g := buildTestCFG(t, `
	select {
	case v := <-ch:
		use(v)
	case ch2 <- x:
		send()
	default:
		idle()
	}
	after()`)
	want := `b0 entry n=0 -> [2 3 4]
b1 select.join n=1 -> [5]
b2 select.comm n=2 -> [1]
b3 select.comm n=2 -> [1]
b4 select.default n=1 -> [1]
b5 exit n=0 -> []
`
	if got := g.Dump(); got != want {
		t.Errorf("select-with-default CFG:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCFGDeferInLoop(t *testing.T) {
	// Defer stays in the range body as an ordinary node (n=2 in range.body):
	// the flow passes interpret deferred effects, not the CFG.
	g := buildTestCFG(t, `
	for _, f := range files {
		h := open(f)
		defer h.close()
	}`)
	want := `b0 entry n=1 -> [1]
b1 range.head n=2 -> [2 3]
b2 range.join n=0 -> [4]
b3 range.body n=2 -> [1]
b4 exit n=0 -> []
`
	if got := g.Dump(); got != want {
		t.Errorf("defer-in-loop CFG:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCFGEarlyReturnUnderSwitch(t *testing.T) {
	// Case 1 returns (edge straight to exit), case 2 falls through into
	// case 3, and the tag-less-match path edges head -> join directly.
	g := buildTestCFG(t, `
	switch mode {
	case 1:
		return
	case 2:
		prep()
		fallthrough
	case 3:
		act()
	}
	tail()`)
	want := `b0 entry n=1 -> [1 2 3 4]
b1 switch.join n=1 -> [6]
b2 switch.case n=2 -> [6]
b3 switch.case n=2 -> [4]
b4 switch.case n=2 -> [1]
b5 unreachable n=0 -> [1]
b6 exit n=0 -> []
`
	if got := g.Dump(); got != want {
		t.Errorf("early-return-under-switch CFG:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// setFact is a test lattice over block-index strings, with the join
// selectable between union (may-analysis) and intersection (must-analysis).
type setFact struct {
	items map[string]bool
	union bool
}

func newSetFact(union bool) *setFact {
	return &setFact{items: make(map[string]bool), union: union}
}

func (f *setFact) Clone() Fact {
	out := newSetFact(f.union)
	for k := range f.items {
		out.items[k] = true
	}
	return out
}

func (f *setFact) Join(other Fact) Fact {
	o := other.(*setFact)
	out := newSetFact(f.union)
	if f.union {
		for k := range f.items {
			out.items[k] = true
		}
		for k := range o.items {
			out.items[k] = true
		}
	} else {
		for k := range f.items {
			if o.items[k] {
				out.items[k] = true
			}
		}
	}
	return out
}

func (f *setFact) Equal(other Fact) bool {
	o := other.(*setFact)
	if len(f.items) != len(o.items) {
		return false
	}
	for k := range f.items {
		if !o.items[k] {
			return false
		}
	}
	return true
}

// markTransfer stamps each block's index into the fact.
func markTransfer(b *Block, in Fact, _ bool) Fact {
	f := in.(*setFact)
	f.items[fmt.Sprintf("b%d", b.Index)] = true
	return f
}

func TestSolveForwardDiamondMustAndMay(t *testing.T) {
	// b0 cond -> b2 then / b3 else -> b1 join -> b4 exit.
	g := buildTestCFG(t, `
	if c {
		a()
	} else {
		b()
	}
	d()`)

	// Must-analysis (intersection): only the shared entry block survives the
	// branch merge at if.join.
	facts := SolveForward(g, newSetFact(false), markTransfer)
	join := facts[1].(*setFact)
	if len(join.items) != 1 || !join.items["b0"] {
		t.Errorf("must-facts at if.join = %v, want exactly {b0}", join.items)
	}

	// May-analysis (union): both arms are visible at the merge.
	facts = SolveForward(g, newSetFact(true), markTransfer)
	join = facts[1].(*setFact)
	for _, want := range []string{"b0", "b2", "b3"} {
		if !join.items[want] {
			t.Errorf("may-facts at if.join missing %s: %v", want, join.items)
		}
	}
}

func TestSolveForwardLoopFixpoint(t *testing.T) {
	// b0 -> b1 head <-> b4 body / b3 post; union facts must carry the body's
	// mark back around the loop edge and the worklist must still terminate.
	g := buildTestCFG(t, `
	for i := 0; i < n; i++ {
		body()
	}`)
	facts := SolveForward(g, newSetFact(true), markTransfer)
	head := facts[1].(*setFact)
	for _, want := range []string{"b0", "b3", "b4"} {
		if !head.items[want] {
			t.Errorf("loop-head may-facts missing %s: %v", want, head.items)
		}
	}
}

func TestSolveForwardUnreachableBlocksAreNil(t *testing.T) {
	g := buildTestCFG(t, `
	return
	dead()`)
	facts := SolveForward(g, newSetFact(true), markTransfer)
	sawNil := false
	for i, b := range g.Blocks {
		if b.Kind == "unreachable" {
			if facts[i] != nil {
				t.Errorf("unreachable block b%d got a fact: %v", i, facts[i])
			}
			sawNil = true
		}
	}
	if !sawNil {
		t.Fatalf("expected an unreachable block in:\n%s", g.Dump())
	}
}
