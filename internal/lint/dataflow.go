package lint

// This file is the dataflow half of the analysis engine: a small forward
// worklist solver over the CFGs that cfg.go builds. Client passes supply
// the lattice (via the Fact interface) and a transfer function; the solver
// iterates block facts to a fixpoint.
//
// The engine is deliberately generic-free and interface-based so that each
// pass defines exactly the fact shape it needs (lockcheck joins held-lock
// sets with intersection for must-facts and union for may-facts) without
// the engine knowing anything about locks.

// Fact is one lattice element flowing along CFG edges.
type Fact interface {
	// Join combines the fact with another path's fact at a merge point,
	// returning a new fact; neither receiver nor argument is mutated.
	Join(other Fact) Fact
	// Equal reports whether two facts are the same lattice element, which
	// is how the solver detects the fixpoint.
	Equal(other Fact) bool
	// Clone returns an independent copy the transfer function may mutate.
	Clone() Fact
}

// TransferFunc computes a block's exit fact from its entry fact. The
// returned fact must be a fresh value (the solver retains it); report is
// false during solving and true during the final reporting pass, so clients
// emit findings exactly once.
type TransferFunc func(b *Block, in Fact, report bool) Fact

// SolveForward runs a forward dataflow analysis: starting from entry at
// Blocks[0], block entry facts are joined over predecessor exit facts and
// transfer is applied until nothing changes. It returns the fixpoint entry
// fact of every reachable block (indexed like CFG.Blocks, nil for blocks
// never reached along any path, e.g. code after an unconditional return).
//
// Termination: facts must form a finite-height lattice (Join monotone);
// every client here joins finite sets derived from the function's source,
// so height is bounded by the lock/annotation vocabulary of the function.
func SolveForward(g *CFG, entry Fact, transfer TransferFunc) []Fact {
	n := len(g.Blocks)
	in := make([]Fact, n)
	out := make([]Fact, n)
	in[0] = entry

	// Worklist seeded with the entry block; indices, deduplicated.
	work := make([]int, 0, n)
	queued := make([]bool, n)
	push := func(i int) {
		if !queued[i] {
			queued[i] = true
			work = append(work, i)
		}
	}
	push(0)
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		queued[i] = false
		b := g.Blocks[i]
		if in[i] == nil {
			continue
		}
		newOut := transfer(b, in[i].Clone(), false)
		if out[i] != nil && out[i].Equal(newOut) {
			continue
		}
		out[i] = newOut
		for _, s := range b.Succs {
			j := s.Index
			var joined Fact
			if in[j] == nil {
				joined = newOut.Clone()
			} else {
				joined = in[j].Join(newOut)
			}
			if in[j] == nil || !in[j].Equal(joined) {
				in[j] = joined
				push(j)
			}
		}
	}
	return in
}

// ReportForward re-applies the transfer function once per reachable block
// with report=true, using the fixpoint entry facts from SolveForward, so the
// client can emit findings against stable facts.
func ReportForward(g *CFG, entryFacts []Fact, transfer TransferFunc) {
	for i, b := range g.Blocks {
		if entryFacts[i] == nil {
			continue
		}
		transfer(b, entryFacts[i].Clone(), true)
	}
}
