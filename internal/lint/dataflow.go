package lint

// This file is the dataflow half of the analysis engine: a small forward
// worklist solver over the CFGs that cfg.go builds. Client passes supply
// the lattice (via the Fact interface) and a transfer function; the solver
// iterates block facts to a fixpoint.
//
// The engine is deliberately generic-free and interface-based so that each
// pass defines exactly the fact shape it needs (lockcheck joins held-lock
// sets with intersection for must-facts and union for may-facts) without
// the engine knowing anything about locks.

// Fact is one lattice element flowing along CFG edges.
type Fact interface {
	// Join combines the fact with another path's fact at a merge point,
	// returning a new fact; neither receiver nor argument is mutated.
	Join(other Fact) Fact
	// Equal reports whether two facts are the same lattice element, which
	// is how the solver detects the fixpoint.
	Equal(other Fact) bool
	// Clone returns an independent copy the transfer function may mutate.
	Clone() Fact
}

// TransferFunc computes a block's exit fact from its entry fact. The
// returned fact must be a fresh value (the solver retains it); report is
// false during solving and true during the final reporting pass, so clients
// emit findings exactly once.
type TransferFunc func(b *Block, in Fact, report bool) Fact

// EdgeRefiner sharpens a fact as it flows along one specific CFG edge.
// It receives the edge's source and destination blocks plus a fresh clone
// of the source's exit fact, and may mutate and return it (the solver does
// not retain the input). The value lattice uses this to apply branch
// conditions: along from.TrueSucc the condition holds, along from.FalseSucc
// its negation holds, and along a range head's body edge the iteration
// variable is bound to the collection's index range.
type EdgeRefiner func(from, to *Block, f Fact) Fact

// widener is an optional Fact extension: lattices of unbounded height (the
// interval lattice, where a loop counter's upper bound can grow forever)
// implement Widen to jump ahead when the solver sees a block's entry fact
// still growing after repeated visits. prev is the block's previous entry
// fact; the receiver is the newly joined one. Widen returns a fact that is
// an upper bound of both, chosen from a finite set so iteration terminates.
type widener interface {
	Widen(prev Fact) Fact
}

// widenAfterVisits is how many times a block's entry fact may change before
// the solver starts widening it. Small enough to terminate quickly on
// counting loops, large enough that straight-line if/else ladders (which
// revisit join blocks a handful of times) keep exact facts.
const widenAfterVisits = 6

// SolveForward runs a forward dataflow analysis: starting from entry at
// Blocks[0], block entry facts are joined over predecessor exit facts and
// transfer is applied until nothing changes. It returns the fixpoint entry
// fact of every reachable block (indexed like CFG.Blocks, nil for blocks
// never reached along any path, e.g. code after an unconditional return).
//
// Termination: facts must form a finite-height lattice (Join monotone);
// every client here joins finite sets derived from the function's source,
// so height is bounded by the lock/annotation vocabulary of the function.
// Lattices that cannot bound their own height implement widener instead.
func SolveForward(g *CFG, entry Fact, transfer TransferFunc) []Fact {
	return SolveForwardEdges(g, entry, transfer, nil)
}

// SolveForwardEdges is SolveForward with an optional per-edge refiner
// applied to each predecessor's exit fact before it joins a successor's
// entry fact. A nil refine degenerates to the edge-blind SolveForward.
func SolveForwardEdges(g *CFG, entry Fact, transfer TransferFunc, refine EdgeRefiner) []Fact {
	n := len(g.Blocks)
	in := make([]Fact, n)
	out := make([]Fact, n)
	changes := make([]int, n)
	in[0] = entry

	// Worklist seeded with the entry block; indices, deduplicated.
	work := make([]int, 0, n)
	queued := make([]bool, n)
	push := func(i int) {
		if !queued[i] {
			queued[i] = true
			work = append(work, i)
		}
	}
	push(0)
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		queued[i] = false
		b := g.Blocks[i]
		if in[i] == nil {
			continue
		}
		newOut := transfer(b, in[i].Clone(), false)
		if out[i] != nil && out[i].Equal(newOut) {
			continue
		}
		out[i] = newOut
		for _, s := range b.Succs {
			j := s.Index
			flowed := newOut.Clone()
			if refine != nil {
				flowed = refine(b, s, flowed)
			}
			var joined Fact
			if in[j] == nil {
				joined = flowed
			} else {
				joined = in[j].Join(flowed)
			}
			if in[j] == nil || !in[j].Equal(joined) {
				if in[j] != nil {
					changes[j]++
					if changes[j] > widenAfterVisits {
						if w, ok := joined.(widener); ok {
							joined = w.Widen(in[j])
						}
					}
				}
				in[j] = joined
				push(j)
			}
		}
	}
	return in
}

// ReportForward re-applies the transfer function once per reachable block
// with report=true, using the fixpoint entry facts from SolveForward, so the
// client can emit findings against stable facts.
func ReportForward(g *CFG, entryFacts []Fact, transfer TransferFunc) {
	for i, b := range g.Blocks {
		if entryFacts[i] == nil {
			continue
		}
		transfer(b, entryFacts[i].Clone(), true)
	}
}
