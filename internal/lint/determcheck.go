package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// determcheck makes the repository's byte-stability contracts static.
// Snapshot encoding, snapshot merging, and report/figure emission all
// promise byte-identical output for identical inputs — the property every
// serial-vs-parallel equivalence test and the daemon's checkpoint-restore
// path assert. This pass proves the promise instead of sampling it:
// functions annotated //iocov:deterministic are roots, and everything
// statically reachable from a root must be free of the four nondeterminism
// sources Go offers:
//
//   - wall clock: time.Now / time.Since / time.Until;
//   - global RNG: math/rand package-level functions (seeded generators via
//     rand.New(rand.NewSource(k)) are fine and stay allowed);
//   - goroutine completion order: any go statement;
//   - map iteration order leaking into results.
//
// The map rule is the interesting one, because ranging over a map is fine
// when the body is order-independent. The classifier accepts, per
// statement: declarations; writes to loop-local variables (directly or
// through fields/indexes of one); writes to a map index (entries commute);
// integer compound accumulation (+=, |=, ... — associative and
// commutative); max/min selection (an assignment guarded by an ordered
// comparison); break/continue; delete. An append to an outer slice taints
// it — the taint washes off when the slice is later passed to a sorting
// function (the sort and slices packages, or a module function that itself
// calls one). Everything else is order-dependent and flagged: float or
// string accumulation (neither is associative), bare calls, sends, returns
// from inside the loop, plain overwrites of outer variables.
//
// Like alloccheck, the traversal follows static edges only: an interface
// call is a contract boundary the caller cannot see through, and the
// annotation moves to the implementations.
type determCheck struct{}

// NewDetermCheck returns the determinism pass.
func NewDetermCheck() Pass { return &determCheck{} }

func (c *determCheck) Name() string { return "determcheck" }

func (c *determCheck) Run(t *Target) []Finding {
	g := t.CallGraph()
	an := &determAnalysis{t: t, g: g, sorters: make(map[*CGNode]int8)}
	scanned := make(map[*CGNode]bool)
	for _, root := range g.Nodes() {
		if !root.FA.deterministic {
			continue
		}
		reach := g.Reachable([]*types.Func{root.Obj}, func(e *CallSite) bool {
			return e.Kind == CallStatic
		})
		for _, n := range g.Nodes() {
			if !reach[n.Obj] || scanned[n] {
				continue
			}
			scanned[n] = true
			an.scanFunc(n, root)
		}
	}
	return an.findings
}

type determAnalysis struct {
	t *Target
	g *CallGraph
	// sorters caches whether a module function's body contains a stdlib
	// sort call (1 yes, -1 no), making it a taint wash.
	sorters  map[*CGNode]int8
	findings []Finding
}

func (an *determAnalysis) report(root *CGNode, pos token.Pos, format string, args ...any) {
	an.findings = append(an.findings, Finding{
		Pass: "determcheck",
		Pos:  an.t.Position(pos),
		Message: fmt.Sprintf("(deterministic root %s): %s",
			root.Name(), fmt.Sprintf(format, args...)),
	})
}

// scanFunc checks one reachable function: denied calls, go statements, and
// every map range in the body (closures included).
func (an *determAnalysis) scanFunc(n *CGNode, root *CGNode) {
	info := n.Pkg.Info
	// The classifier recurses through nested loops itself, so only the
	// outermost map range of any nest is classified; the walk still
	// continues into every body for calls and go statements.
	var outermost token.Pos = token.NoPos
	var outermostEnd token.Pos
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.GoStmt:
			an.report(root, x.Pos(), "%s starts a goroutine: completion order is nondeterministic", n.Name())
		case *ast.CallExpr:
			if msg := deniedDetermCall(info, x); msg != "" {
				an.report(root, x.Pos(), "%s %s", n.Name(), msg)
			}
		case *ast.RangeStmt:
			if rangesOverMap(info, x) {
				inOuter := outermost != token.NoPos && outermost <= x.Pos() && x.Pos() < outermostEnd
				if !inOuter {
					outermost, outermostEnd = x.Pos(), x.End()
					an.checkMapRange(n, root, x)
				}
			}
		}
		return true
	})
}

// deniedDetermCall reports why a call is nondeterministic, or "".
func deniedDetermCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "" // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return fmt.Sprintf("calls time.%s: wall-clock reads differ run to run", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return "" // constructing a seeded generator is deterministic
		}
		return fmt.Sprintf("calls the global RNG (rand.%s): use a seeded rand.New(rand.NewSource(k))", fn.Name())
	}
	return ""
}

// rangesOverMap reports whether the range statement iterates a map.
func rangesOverMap(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange classifies every statement executed under a map iteration
// as order-independent or not.
func (an *determAnalysis) checkMapRange(n *CGNode, root *CGNode, rng *ast.RangeStmt) {
	info := n.Pkg.Info

	// Objects declared inside the loop (including the key/value bindings and
	// any nested loop's) are loop-local: writes to them cannot leak order.
	local := make(map[types.Object]bool)
	ast.Inspect(rng, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})
	isLocal := func(e ast.Expr) bool {
		id := baseIdent(e)
		return id != nil && local[info.Uses[id]]
	}

	// taints collects outer slices appended to in map order; a later sort
	// call washes them.
	type taint struct {
		obj  types.Object
		name string
		pos  token.Pos
	}
	var taints []taint

	var walkStmt func(s ast.Stmt, ordered bool)
	walkList := func(list []ast.Stmt, ordered bool) {
		for _, s := range list {
			walkStmt(s, ordered)
		}
	}
	walkStmt = func(s ast.Stmt, ordered bool) {
		switch st := s.(type) {
		case nil:
		case *ast.DeclStmt, *ast.EmptyStmt, *ast.BranchStmt:
		case *ast.AssignStmt:
			an.classifyAssign(n, root, st, info, isLocal, ordered, func(obj types.Object, name string, pos token.Pos) {
				taints = append(taints, taint{obj, name, pos})
			})
		case *ast.IncDecStmt:
			if isLocal(st.X) || isIntExpr(info, st.X) {
				return
			}
			an.report(root, st.Pos(), "%s applies %s to a non-integer in map iteration order", n.Name(), st.Tok)
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						return // delete, clear: entry-wise, commutes
					}
				}
			}
			an.report(root, st.Pos(), "%s evaluates a statement for each entry in map iteration order; hoist it out or iterate sorted keys", n.Name())
		case *ast.ReturnStmt:
			an.report(root, st.Pos(), "%s returns from inside a map iteration: which entry wins depends on order", n.Name())
		case *ast.SendStmt:
			an.report(root, st.Pos(), "%s sends on a channel in map iteration order", n.Name())
		case *ast.BlockStmt:
			walkList(st.List, ordered)
		case *ast.IfStmt:
			walkStmt(st.Init, ordered)
			walkList(st.Body.List, ordered || orderedComparison(st.Cond))
			walkStmt(st.Else, ordered)
		case *ast.ForStmt:
			walkStmt(st.Init, ordered)
			walkStmt(st.Post, ordered)
			walkList(st.Body.List, ordered)
		case *ast.RangeStmt:
			walkList(st.Body.List, ordered)
		case *ast.SwitchStmt:
			walkStmt(st.Init, ordered)
			for _, cc := range st.Body.List {
				walkList(cc.(*ast.CaseClause).Body, ordered)
			}
		case *ast.TypeSwitchStmt:
			walkStmt(st.Init, ordered)
			for _, cc := range st.Body.List {
				walkList(cc.(*ast.CaseClause).Body, ordered)
			}
		case *ast.LabeledStmt:
			walkStmt(st.Stmt, ordered)
		default:
			// select, defer, go (go is flagged by scanFunc already): no
			// order-independence argument exists.
			if _, isGo := s.(*ast.GoStmt); !isGo {
				an.report(root, s.Pos(), "%s runs a statement with order-dependent effects inside a map iteration", n.Name())
			}
		}
	}
	walkList(rng.Body.List, false)

	for _, ta := range taints {
		if !an.washedAfter(n, ta.obj, rng.End()) {
			an.report(root, ta.pos, "%s appends to %s in map iteration order and never sorts it; sort after the loop or iterate sorted keys", n.Name(), ta.name)
		}
	}
}

// classifyAssign decides whether one assignment under a map range is
// order-independent. addTaint records an append to an outer slice.
func (an *determAnalysis) classifyAssign(n *CGNode, root *CGNode, st *ast.AssignStmt, info *types.Info,
	isLocal func(ast.Expr) bool, ordered bool, addTaint func(types.Object, string, token.Pos)) {
	if st.Tok == token.DEFINE {
		return // fresh loop-locals
	}
	for i, lhs := range st.Lhs {
		lhs = ast.Unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue // discarded
		}
		if isLocal(lhs) {
			continue // writes through a loop-local cannot leak order
		}
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if tv, ok := info.Types[ix.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					if st.Tok == token.ASSIGN || accumulationOK(info, lhs, st.Tok) {
						continue // map writes commute entry-wise
					}
				}
			}
		}
		if st.Tok != token.ASSIGN {
			if accumulationOK(info, lhs, st.Tok) {
				continue // integer accumulation is associative+commutative
			}
			an.report(root, st.Pos(), "%s accumulates a non-integer (%s) in map iteration order: float and string accumulation are order-sensitive; iterate sorted keys", n.Name(), typeName(info, lhs))
			continue
		}
		// Plain = to an outer variable.
		if len(st.Rhs) == len(st.Lhs) {
			if obj, name := appendTarget(info, lhs, st.Rhs[i]); obj != nil {
				addTaint(obj, name, st.Pos())
				continue
			}
		}
		if ordered {
			continue // max/min selection under an ordered comparison
		}
		an.report(root, st.Pos(), "%s overwrites %s in map iteration order: the last entry wins nondeterministically", n.Name(), exprText(lhs))
	}
}

// accumulationOK reports whether a compound assignment on lhs is an
// associative, commutative integer accumulation.
func accumulationOK(info *types.Info, lhs ast.Expr, tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
		token.XOR_ASSIGN, token.MUL_ASSIGN:
		return isIntExpr(info, lhs)
	}
	return false
}

// appendTarget matches `x = append(x, ...)` and returns x's object.
func appendTarget(info *types.Info, lhs, rhs ast.Expr) (types.Object, string) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil, ""
	}
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, ""
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil, ""
	}
	if _, isBuiltin := info.Uses[fn].(*types.Builtin); !isBuiltin {
		return nil, ""
	}
	obj := info.Uses[id]
	if obj == nil {
		return nil, ""
	}
	return obj, id.Name
}

// washedAfter reports whether obj is passed to a sorting function after pos
// within n's body: the sort and slices packages, or a module function whose
// body contains such a call.
func (an *determAnalysis) washedAfter(n *CGNode, obj types.Object, pos token.Pos) bool {
	info := n.Pkg.Info
	washed := false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if washed {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok || call.Pos() <= pos {
			return true
		}
		mentions := false
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && info.Uses[id] == obj {
					mentions = true
				}
				return !mentions
			})
		}
		if mentions && an.isSortCall(info, call) {
			washed = true
		}
		return true
	})
	return washed
}

// isSortCall reports whether a call sorts: a sort/slices package function,
// or a module function that itself makes one.
func (an *determAnalysis) isSortCall(info *types.Info, call *ast.CallExpr) bool {
	var fn *types.Func
	switch x := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[x].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[x.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
		return true
	}
	node := an.g.Node(fn)
	if node == nil {
		return false
	}
	if v := an.sorters[node]; v != 0 {
		return v > 0
	}
	sorts := false
	ast.Inspect(node.Decl.Body, func(nd ast.Node) bool {
		if sorts {
			return false
		}
		c, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
			if f, ok := node.Pkg.Info.Uses[sel.Sel].(*types.Func); ok && f.Pkg() != nil {
				switch f.Pkg().Path() {
				case "sort", "slices":
					sorts = true
				}
			}
		}
		return true
	})
	if sorts {
		an.sorters[node] = 1
	} else {
		an.sorters[node] = -1
	}
	return sorts
}

// baseIdent strips selectors, indexes, stars, and parens down to the root
// identifier of an lvalue, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// orderedComparison reports whether cond is an ordered comparison (<, >,
// <=, >=), the guard of the max/min selection idiom.
func orderedComparison(cond ast.Expr) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

// isIntExpr reports whether e's type is an integer.
func isIntExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// typeName renders an expression's type for diagnostics.
func typeName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return "unknown"
	}
	return tv.Type.String()
}

// exprText renders a short lvalue for diagnostics.
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	}
	return "expression"
}
