package lint

import "testing"

// TestDetermCheckBadFixture pins every seeded nondeterminism source to its
// line: one finding per rule, nothing extra.
func TestDetermCheckBadFixture(t *testing.T) {
	tgt := fixtureTarget(t, "determcheck_bad")
	findings := NewDetermCheck().Run(tgt)

	wants := []struct {
		anchor string // unique fixture text on the expected line
		msg    string // substring of the finding message
	}{
		{"return time.Now()", "calls time.Now"},
		{"return rand.Int()", "global RNG (rand.Int)"},
		{"go background()", "starts a goroutine"},
		{"keys = append(keys, k)", "appends to keys in map iteration order and never sorts it"},
		{"sum += float64(n) / 2", "accumulates a non-integer (float64)"},
		{"last = k", "overwrites last in map iteration order"},
		{"fmt.Println(k)", "evaluates a statement for each entry"},
		{"return name", "returns from inside a map iteration"},
	}
	for _, w := range wants {
		f := requireFinding(t, findings, w.msg)
		if wantLine := fixtureLine(t, "determcheck_bad/bad.go", w.anchor); f.Pos.Line != wantLine {
			t.Errorf("finding %q at line %d, want line %d (%s)", w.msg, f.Pos.Line, wantLine, w.anchor)
		}
	}
	if len(findings) != len(wants) {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Errorf("determcheck_bad produced %d findings, want %d", len(findings), len(wants))
	}
}

// TestDetermCheckGoodFixture demands silence on the order-independent
// idioms: sorted keys, integer accumulation, map writes, loop-locals, max
// selection, washed appends, seeded RNG, duration arithmetic.
func TestDetermCheckGoodFixture(t *testing.T) {
	tgt := fixtureTarget(t, "determcheck_good")
	for _, f := range NewDetermCheck().Run(tgt) {
		t.Errorf("unexpected finding: %s", f)
	}
}
