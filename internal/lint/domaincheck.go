package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"sort"
	"strconv"
	"strings"

	"iocov/internal/partition"
	"iocov/internal/sys"
	"iocov/internal/sysspec"
)

// DomainCheck proves the partition-domain contract: every label a scheme's
// Partitions() can emit is declared by its Domain(), domains are
// duplicate-free, and numeric/output domains are canonically ordered. The
// pass is hybrid:
//
//   - a static check over the target source flags any constant label
//     returned by a Partitions method that the paired Domain method never
//     mentions (the exact shape of the pre-PR-1 BytesScheme "<0" bug), with
//     a position on the offending return;
//   - an exhaustive probe of the live partition registry and the
//     sysspec output domains covers the dynamically-built labels a static
//     check cannot see.
type DomainCheck struct {
	// SchemesPackage is the import path whose source carries the scheme
	// implementations; probe findings are attributed to its Domain methods
	// when the package is part of the target.
	SchemesPackage string
}

// NewDomainCheck returns the pass configured for this repository.
func NewDomainCheck() *DomainCheck {
	return &DomainCheck{SchemesPackage: "iocov/internal/partition"}
}

// Name implements Pass.
func (d *DomainCheck) Name() string { return "domaincheck" }

// Run implements Pass.
func (d *DomainCheck) Run(t *Target) []Finding {
	out := d.staticCheck(t)
	out = append(out, d.probeRegistry(t)...)
	return out
}

// staticCheck pairs Partitions/Domain methods by receiver type in every
// target package and checks constant label flow between them.
func (d *DomainCheck) staticCheck(t *Target) []Finding {
	var out []Finding
	for _, pkg := range t.Pkgs {
		type methods struct{ partitions, domain *ast.FuncDecl }
		byRecv := make(map[string]*methods)
		recvOrder := []string{}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
					continue
				}
				recv := recvTypeName(fd.Recv.List[0].Type)
				if recv == "" {
					continue
				}
				m := byRecv[recv]
				if m == nil {
					m = &methods{}
					byRecv[recv] = m
					recvOrder = append(recvOrder, recv)
				}
				switch fd.Name.Name {
				case "Partitions":
					m.partitions = fd
				case "Domain":
					m.domain = fd
				}
			}
		}
		sort.Strings(recvOrder)
		for _, recv := range recvOrder {
			m := byRecv[recv]
			if m.partitions == nil || m.domain == nil {
				continue
			}
			domainConsts := constantStrings(t, pkg, m.domain.Body)
			out = append(out, domainDuplicates(d.Name(), t, pkg, recv, m.domain.Body)...)
			for _, lbl := range returnedLabels(t, pkg, m.partitions) {
				if _, ok := domainConsts[lbl.value]; !ok {
					out = append(out, Finding{
						Pass: d.Name(),
						Pos:  t.Position(lbl.pos),
						Message: fmt.Sprintf("%s.Partitions may emit label %q that %s.Domain() never declares",
							recv, lbl.value, recv),
					})
				}
			}
		}
	}
	return out
}

// constLabel is a string constant with the position it was written at.
type constLabel struct {
	value string
	pos   token.Pos
}

// returnedLabels collects the labels a Partitions body can emit statically:
// the constant string elements of returned slice literals, plus — through
// the value-analysis lattice — the provable element range of any constant
// table indexed inside such a literal. A `return []string{Names[v]}` under a
// `v >= 0 && v < len(Names)` guard contributes exactly the table's
// elements; an unguarded index contributes the whole table (sound for the
// emits-outside-domain direction).
func returnedLabels(t *Target, pkg *Package, fd *ast.FuncDecl) []constLabel {
	var out []constLabel
	var tableElts []*ast.IndexExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			lit, ok := res.(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, elt := range lit.Elts {
				if v, ok := constString(pkg, elt); ok {
					out = append(out, constLabel{value: v, pos: elt.Pos()})
				} else if idx, ok := unparen(elt).(*ast.IndexExpr); ok {
					tableElts = append(tableElts, idx)
				}
			}
		}
		return true
	})
	if len(tableElts) == 0 {
		return out
	}

	eng := t.values()
	an := eng.analysisOf(pkg, fd)
	want := make(map[*ast.IndexExpr]bool, len(tableElts))
	for _, idx := range tableElts {
		want[idx] = true
	}
	done := make(map[*ast.IndexExpr]bool)
	emit := func(idx *ast.IndexExpr, f *valueFact) {
		done[idx] = true
		obj := an.packageVarOf(idx.X)
		if obj == nil {
			return
		}
		tbl, ok := eng.constTableOf(obj)
		if !ok {
			return
		}
		lo, hi := int64(0), int64(len(tbl))-1
		if f != nil {
			iv := an.eval(f, idx.Index)
			if !iv.loInf && iv.lo > lo {
				lo = iv.lo
			}
			if !iv.hiInf && iv.hi < hi {
				hi = iv.hi
			}
		}
		for i := lo; i <= hi; i++ {
			out = append(out, constLabel{value: tbl[i], pos: idx.Pos()})
		}
	}
	if an != nil {
		an.walk(func(n ast.Node, f *valueFact) {
			ast.Inspect(n, func(m ast.Node) bool {
				if idx, ok := m.(*ast.IndexExpr); ok && want[idx] && !done[idx] {
					emit(idx, f)
				}
				return true
			})
		})
	}
	for _, idx := range tableElts {
		// Never reached by the walk (dead code, or no analysis): take the
		// whole table without interval narrowing.
		if an != nil && !done[idx] {
			emit(idx, nil)
		}
	}
	return out
}

// constantStrings collects every folded string constant in a subtree, and
// expands references to constant string tables (package-level never-written
// `var X = []string{...}` vars) into their elements, so a Domain built as
// `append(append([]string(nil), Names...), Extra)` declares Names' labels.
func constantStrings(t *Target, pkg *Package, node ast.Node) map[string]token.Pos {
	eng := t.values()
	out := make(map[string]token.Pos)
	add := func(v string, pos token.Pos) {
		if _, seen := out[v]; !seen {
			out[v] = pos
		}
	}
	ast.Inspect(node, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if v, ok := constString(pkg, expr); ok {
			add(v, expr.Pos())
			return true
		}
		if obj := tableVarOf(pkg, expr); obj != nil {
			if tbl, ok := eng.constTableOf(obj); ok {
				for _, v := range tbl {
					add(v, expr.Pos())
				}
			}
		}
		return true
	})
	return out
}

// tableVarOf resolves an identifier or package-qualified selector to its
// object, for constant-table lookup.
func tableVarOf(pkg *Package, e ast.Expr) types.Object {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return pkg.Info.ObjectOf(x)
	case *ast.SelectorExpr:
		if id, ok := unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := pkg.Info.ObjectOf(id).(*types.PkgName); isPkg {
				return pkg.Info.ObjectOf(x.Sel)
			}
		}
	}
	return nil
}

// domainDuplicates flags constant labels repeated inside one slice literal
// of a Domain body.
func domainDuplicates(pass string, t *Target, pkg *Package, recv string, body *ast.BlockStmt) []Finding {
	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		seen := make(map[string]bool)
		for _, elt := range lit.Elts {
			v, ok := constString(pkg, elt)
			if !ok {
				continue
			}
			if seen[v] {
				out = append(out, Finding{
					Pass: pass,
					Pos:  t.Position(elt.Pos()),
					Message: fmt.Sprintf("%s.Domain() repeats label %q in one literal",
						recv, v),
				})
			}
			seen[v] = true
		}
		return true
	})
	return out
}

// constString reports the folded string value of an expression, when the
// type checker proved it constant.
func constString(pkg *Package, expr ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// recvTypeName extracts the base type name of a method receiver.
func recvTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr: // generic receiver
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// probeRegistry runs the exhaustive probes against the live partition and
// sysspec registries, attributing findings to the schemes package source
// when it is part of the target.
func (d *DomainCheck) probeRegistry(t *Target) []Finding {
	var out []Finding
	seenMsg := make(map[string]bool)
	add := func(pos token.Position, msg string) {
		if seenMsg[msg] {
			return
		}
		seenMsg[msg] = true
		out = append(out, Finding{Pass: d.Name(), Pos: pos, Message: msg})
	}

	for _, scheme := range registrySchemes() {
		in := partition.ForScheme(scheme)
		if in == nil {
			continue
		}
		pos := d.domainMethodPos(t, in)
		for _, msg := range ProbeScheme(in) {
			add(pos, msg)
		}
	}

	outputPos := d.funcPos(t, "OutputDomain")
	probedBases := make(map[string]bool)
	for _, tbl := range []*sysspec.Table{sysspec.NewTable(), sysspec.NewExtendedTable()} {
		for _, base := range tbl.Bases() {
			if probedBases[base] {
				continue
			}
			probedBases[base] = true
			for _, msg := range ProbeOutputDomain(tbl.Spec(base)) {
				add(outputPos, msg)
			}
		}
	}
	return out
}

// registrySchemes enumerates every partitioned scheme name declared across
// the standard and extended sysspec tables.
func registrySchemes() []string {
	seen := make(map[string]bool)
	var out []string
	for _, tbl := range []*sysspec.Table{sysspec.NewTable(), sysspec.NewExtendedTable()} {
		for _, base := range tbl.Bases() {
			for _, arg := range tbl.Spec(base).TrackedArgs() {
				if !seen[arg.Scheme] {
					seen[arg.Scheme] = true
					out = append(out, arg.Scheme)
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// domainMethodPos locates the Domain method of the scheme's dynamic type in
// the schemes package.
func (d *DomainCheck) domainMethodPos(t *Target, in partition.Input) token.Position {
	typeName := fmt.Sprintf("%T", in)
	if i := strings.LastIndex(typeName, "."); i >= 0 {
		typeName = typeName[i+1:]
	}
	return d.methodPos(t, typeName, "Domain")
}

func (d *DomainCheck) methodPos(t *Target, recv, method string) token.Position {
	pkg := t.Package(d.SchemesPackage)
	if pkg == nil {
		return token.Position{}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != method {
				continue
			}
			if fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if recvTypeName(fd.Recv.List[0].Type) == recv {
				return t.Position(fd.Pos())
			}
		}
	}
	return token.Position{}
}

// funcPos locates a top-level function in the schemes package.
func (d *DomainCheck) funcPos(t *Target, name string) token.Position {
	pkg := t.Package(d.SchemesPackage)
	if pkg == nil {
		return token.Position{}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return t.Position(fd.Pos())
			}
		}
	}
	return token.Position{}
}

// ProbeScheme exhaustively probes one partitioning scheme against its
// declared domain and returns the violated invariants as messages. It is
// exported so tests can aim it at known-bad scheme implementations.
func ProbeScheme(in partition.Input) []string {
	var msgs []string
	name := in.Scheme()
	domain := in.Domain()

	if len(domain) == 0 {
		return []string{fmt.Sprintf("scheme %q: Domain() is empty", name)}
	}
	domainSet := make(map[string]bool, len(domain))
	for _, lbl := range domain {
		if domainSet[lbl] {
			msgs = append(msgs, fmt.Sprintf("scheme %q: Domain() repeats label %q", name, lbl))
		}
		domainSet[lbl] = true
	}
	msgs = append(msgs, checkNumericOrder(name, domain)...)

	hit := make(map[string]bool)
	for _, v := range probeValues() {
		for _, lbl := range in.Partitions(v) {
			hit[lbl] = true
			if !domainSet[lbl] {
				msgs = append(msgs, fmt.Sprintf(
					"scheme %q: Partitions(%d) emits label %q outside Domain()", name, v, lbl))
			}
		}
	}
	for _, lbl := range domain {
		if !hit[lbl] {
			msgs = append(msgs, fmt.Sprintf(
				"scheme %q: Domain() label %q is unreachable from Partitions() over the probe set", name, lbl))
		}
	}
	sort.Strings(msgs)
	return msgs
}

// ProbeOutputDomain probes partition.Output for one spec against
// partition.OutputDomain and returns the violated invariants.
func ProbeOutputDomain(spec *sysspec.Spec) []string {
	var msgs []string
	name := spec.Base
	domain := partition.OutputDomain(spec)

	domainSet := make(map[string]bool, len(domain))
	for _, lbl := range domain {
		if domainSet[lbl] {
			msgs = append(msgs, fmt.Sprintf("output %q: OutputDomain() repeats label %q", name, lbl))
		}
		domainSet[lbl] = true
	}
	// Canonical order: success labels form a prefix, errno labels follow in
	// ascending name order.
	inErrnos := false
	var prevErrno string
	for _, lbl := range domain {
		if partition.IsSuccess(lbl) {
			if inErrnos {
				msgs = append(msgs, fmt.Sprintf(
					"output %q: success label %q appears after errno labels", name, lbl))
			}
			continue
		}
		if inErrnos && lbl < prevErrno {
			msgs = append(msgs, fmt.Sprintf(
				"output %q: errno label %q out of order (after %q)", name, lbl, prevErrno))
		}
		inErrnos = true
		prevErrno = lbl
	}
	msgs = append(msgs, checkNumericOrder("output "+name, domain)...)

	hit := make(map[string]bool)
	probe := func(ret int64, err sys.Errno) {
		lbl := partition.Output(spec.Ret, ret, err)
		hit[lbl] = true
		if !domainSet[lbl] {
			msgs = append(msgs, fmt.Sprintf(
				"output %q: Output(ret=%d, err=%s) emits label %q outside OutputDomain()",
				name, ret, err.Name(), lbl))
		}
	}
	for _, v := range probeValues() {
		probe(v, sys.OK)
	}
	for _, e := range spec.Errnos {
		probe(-int64(e), e)
		probe(0, e)
	}
	for _, lbl := range domain {
		if !hit[lbl] {
			msgs = append(msgs, fmt.Sprintf(
				"output %q: OutputDomain() label %q is unreachable from Output() over the probe set", name, lbl))
		}
	}
	sort.Strings(msgs)
	return msgs
}

// checkNumericOrder verifies the canonical numeric-domain order: any "<0"
// and "=0" boundary labels precede the power-of-two buckets, whose exponents
// strictly ascend. Labels may carry the "OK:" success prefix.
func checkNumericOrder(name string, domain []string) []string {
	var msgs []string
	prevExp := -1
	sawLog2 := false
	for _, lbl := range domain {
		bare := strings.TrimPrefix(lbl, partition.LabelOK+":")
		if bare == partition.LabelNegative || bare == partition.LabelZero {
			if sawLog2 {
				msgs = append(msgs, fmt.Sprintf(
					"%s: boundary label %q appears after power-of-two buckets", name, lbl))
			}
			continue
		}
		rest, ok := strings.CutPrefix(bare, "2^")
		if !ok {
			continue
		}
		exp, err := strconv.Atoi(rest)
		if err != nil {
			continue
		}
		if sawLog2 && exp <= prevExp {
			msgs = append(msgs, fmt.Sprintf(
				"%s: power-of-two label %q out of order (after 2^%d)", name, lbl, prevExp))
		}
		sawLog2 = true
		prevExp = exp
	}
	return msgs
}

// probeValues is the shared exhaustive probe set: numeric boundaries, every
// power of two with its neighbours, every named flag and mode bit, flag
// combinations with each access mode, and the categorical values of whence
// and xattr flags (plus out-of-range values for each).
func probeValues() []int64 {
	seen := make(map[int64]bool)
	var out []int64
	add := func(vs ...int64) {
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	add(math.MinInt64, math.MaxInt64, -12345, -3, -2, -1, 0, 1, 2, 3, 4, 5, 6, 7)
	for k := 0; k <= 62; k++ {
		v := int64(1) << k
		add(v-1, v, v+1)
	}
	for _, f := range sys.OpenFlagNames {
		add(int64(f.Bit))
		add(int64(f.Bit | sys.O_WRONLY))
		add(int64(f.Bit | sys.O_RDWR))
		add(int64(f.Bit | sys.O_ACCMODE)) // invalid access mode under each flag
	}
	add(int64(sys.O_RDWR | sys.O_CREAT | sys.O_TRUNC))
	add(int64(sys.O_WRONLY | sys.O_CREAT | sys.O_EXCL | sys.O_SYNC))
	var allFlags int64
	for _, f := range sys.OpenFlagNames {
		allFlags |= int64(f.Bit)
	}
	add(allFlags)
	for _, b := range sys.ModeBitNames {
		add(int64(b.Bit))
	}
	add(int64(sys.PermMask), 0o7777, 0o170000)
	add(int64(sys.XATTR_CREATE), int64(sys.XATTR_REPLACE))
	for w := int64(0); w < int64(len(sys.WhenceNames))+2; w++ {
		add(w)
	}
	return out
}
