package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"math"
	"sort"
	"strconv"
	"strings"

	"iocov/internal/partition"
	"iocov/internal/sys"
	"iocov/internal/sysspec"
)

// DomainCheck proves the partition-domain contract: every label a scheme's
// Partitions() can emit is declared by its Domain(), domains are
// duplicate-free, and numeric/output domains are canonically ordered. The
// pass is hybrid:
//
//   - a static check over the target source flags any constant label
//     returned by a Partitions method that the paired Domain method never
//     mentions (the exact shape of the pre-PR-1 BytesScheme "<0" bug), with
//     a position on the offending return;
//   - an exhaustive probe of the live partition registry and the
//     sysspec output domains covers the dynamically-built labels a static
//     check cannot see.
type DomainCheck struct {
	// SchemesPackage is the import path whose source carries the scheme
	// implementations; probe findings are attributed to its Domain methods
	// when the package is part of the target.
	SchemesPackage string
}

// NewDomainCheck returns the pass configured for this repository.
func NewDomainCheck() *DomainCheck {
	return &DomainCheck{SchemesPackage: "iocov/internal/partition"}
}

// Name implements Pass.
func (d *DomainCheck) Name() string { return "domaincheck" }

// Run implements Pass.
func (d *DomainCheck) Run(t *Target) []Finding {
	out := d.staticCheck(t)
	out = append(out, d.probeRegistry(t)...)
	return out
}

// staticCheck pairs Partitions/Domain methods by receiver type in every
// target package and checks constant label flow between them.
func (d *DomainCheck) staticCheck(t *Target) []Finding {
	var out []Finding
	for _, pkg := range t.Pkgs {
		type methods struct{ partitions, domain *ast.FuncDecl }
		byRecv := make(map[string]*methods)
		recvOrder := []string{}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
					continue
				}
				recv := recvTypeName(fd.Recv.List[0].Type)
				if recv == "" {
					continue
				}
				m := byRecv[recv]
				if m == nil {
					m = &methods{}
					byRecv[recv] = m
					recvOrder = append(recvOrder, recv)
				}
				switch fd.Name.Name {
				case "Partitions":
					m.partitions = fd
				case "Domain":
					m.domain = fd
				}
			}
		}
		sort.Strings(recvOrder)
		for _, recv := range recvOrder {
			m := byRecv[recv]
			if m.partitions == nil || m.domain == nil {
				continue
			}
			domainConsts := constantStrings(pkg, m.domain.Body)
			out = append(out, domainDuplicates(d.Name(), t, pkg, recv, m.domain.Body)...)
			for _, lbl := range returnedConstants(pkg, m.partitions.Body) {
				if _, ok := domainConsts[lbl.value]; !ok {
					out = append(out, Finding{
						Pass: d.Name(),
						Pos:  t.Position(lbl.pos),
						Message: fmt.Sprintf("%s.Partitions may emit label %q that %s.Domain() never declares",
							recv, lbl.value, recv),
					})
				}
			}
		}
	}
	return out
}

// constLabel is a string constant with the position it was written at.
type constLabel struct {
	value string
	pos   token.Pos
}

// returnedConstants collects the constant string elements of slice literals
// inside the return statements of a Partitions body.
func returnedConstants(pkg *Package, body *ast.BlockStmt) []constLabel {
	var out []constLabel
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			lit, ok := res.(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, elt := range lit.Elts {
				if v, ok := constString(pkg, elt); ok {
					out = append(out, constLabel{value: v, pos: elt.Pos()})
				}
			}
		}
		return true
	})
	return out
}

// constantStrings collects every folded string constant in a subtree.
func constantStrings(pkg *Package, node ast.Node) map[string]token.Pos {
	out := make(map[string]token.Pos)
	ast.Inspect(node, func(n ast.Node) bool {
		if expr, ok := n.(ast.Expr); ok {
			if v, ok := constString(pkg, expr); ok {
				if _, seen := out[v]; !seen {
					out[v] = expr.Pos()
				}
			}
		}
		return true
	})
	return out
}

// domainDuplicates flags constant labels repeated inside one slice literal
// of a Domain body.
func domainDuplicates(pass string, t *Target, pkg *Package, recv string, body *ast.BlockStmt) []Finding {
	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		seen := make(map[string]bool)
		for _, elt := range lit.Elts {
			v, ok := constString(pkg, elt)
			if !ok {
				continue
			}
			if seen[v] {
				out = append(out, Finding{
					Pass: pass,
					Pos:  t.Position(elt.Pos()),
					Message: fmt.Sprintf("%s.Domain() repeats label %q in one literal",
						recv, v),
				})
			}
			seen[v] = true
		}
		return true
	})
	return out
}

// constString reports the folded string value of an expression, when the
// type checker proved it constant.
func constString(pkg *Package, expr ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// recvTypeName extracts the base type name of a method receiver.
func recvTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr: // generic receiver
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// probeRegistry runs the exhaustive probes against the live partition and
// sysspec registries, attributing findings to the schemes package source
// when it is part of the target.
func (d *DomainCheck) probeRegistry(t *Target) []Finding {
	var out []Finding
	seenMsg := make(map[string]bool)
	add := func(pos token.Position, msg string) {
		if seenMsg[msg] {
			return
		}
		seenMsg[msg] = true
		out = append(out, Finding{Pass: d.Name(), Pos: pos, Message: msg})
	}

	for _, scheme := range registrySchemes() {
		in := partition.ForScheme(scheme)
		if in == nil {
			continue
		}
		pos := d.domainMethodPos(t, in)
		for _, msg := range ProbeScheme(in) {
			add(pos, msg)
		}
	}

	outputPos := d.funcPos(t, "OutputDomain")
	probedBases := make(map[string]bool)
	for _, tbl := range []*sysspec.Table{sysspec.NewTable(), sysspec.NewExtendedTable()} {
		for _, base := range tbl.Bases() {
			if probedBases[base] {
				continue
			}
			probedBases[base] = true
			for _, msg := range ProbeOutputDomain(tbl.Spec(base)) {
				add(outputPos, msg)
			}
		}
	}
	return out
}

// registrySchemes enumerates every partitioned scheme name declared across
// the standard and extended sysspec tables.
func registrySchemes() []string {
	seen := make(map[string]bool)
	var out []string
	for _, tbl := range []*sysspec.Table{sysspec.NewTable(), sysspec.NewExtendedTable()} {
		for _, base := range tbl.Bases() {
			for _, arg := range tbl.Spec(base).TrackedArgs() {
				if !seen[arg.Scheme] {
					seen[arg.Scheme] = true
					out = append(out, arg.Scheme)
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// domainMethodPos locates the Domain method of the scheme's dynamic type in
// the schemes package.
func (d *DomainCheck) domainMethodPos(t *Target, in partition.Input) token.Position {
	typeName := fmt.Sprintf("%T", in)
	if i := strings.LastIndex(typeName, "."); i >= 0 {
		typeName = typeName[i+1:]
	}
	return d.methodPos(t, typeName, "Domain")
}

func (d *DomainCheck) methodPos(t *Target, recv, method string) token.Position {
	pkg := t.Package(d.SchemesPackage)
	if pkg == nil {
		return token.Position{}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != method {
				continue
			}
			if fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if recvTypeName(fd.Recv.List[0].Type) == recv {
				return t.Position(fd.Pos())
			}
		}
	}
	return token.Position{}
}

// funcPos locates a top-level function in the schemes package.
func (d *DomainCheck) funcPos(t *Target, name string) token.Position {
	pkg := t.Package(d.SchemesPackage)
	if pkg == nil {
		return token.Position{}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return t.Position(fd.Pos())
			}
		}
	}
	return token.Position{}
}

// ProbeScheme exhaustively probes one partitioning scheme against its
// declared domain and returns the violated invariants as messages. It is
// exported so tests can aim it at known-bad scheme implementations.
func ProbeScheme(in partition.Input) []string {
	var msgs []string
	name := in.Scheme()
	domain := in.Domain()

	if len(domain) == 0 {
		return []string{fmt.Sprintf("scheme %q: Domain() is empty", name)}
	}
	domainSet := make(map[string]bool, len(domain))
	for _, lbl := range domain {
		if domainSet[lbl] {
			msgs = append(msgs, fmt.Sprintf("scheme %q: Domain() repeats label %q", name, lbl))
		}
		domainSet[lbl] = true
	}
	msgs = append(msgs, checkNumericOrder(name, domain)...)

	hit := make(map[string]bool)
	for _, v := range probeValues() {
		for _, lbl := range in.Partitions(v) {
			hit[lbl] = true
			if !domainSet[lbl] {
				msgs = append(msgs, fmt.Sprintf(
					"scheme %q: Partitions(%d) emits label %q outside Domain()", name, v, lbl))
			}
		}
	}
	for _, lbl := range domain {
		if !hit[lbl] {
			msgs = append(msgs, fmt.Sprintf(
				"scheme %q: Domain() label %q is unreachable from Partitions() over the probe set", name, lbl))
		}
	}
	sort.Strings(msgs)
	return msgs
}

// ProbeOutputDomain probes partition.Output for one spec against
// partition.OutputDomain and returns the violated invariants.
func ProbeOutputDomain(spec *sysspec.Spec) []string {
	var msgs []string
	name := spec.Base
	domain := partition.OutputDomain(spec)

	domainSet := make(map[string]bool, len(domain))
	for _, lbl := range domain {
		if domainSet[lbl] {
			msgs = append(msgs, fmt.Sprintf("output %q: OutputDomain() repeats label %q", name, lbl))
		}
		domainSet[lbl] = true
	}
	// Canonical order: success labels form a prefix, errno labels follow in
	// ascending name order.
	inErrnos := false
	var prevErrno string
	for _, lbl := range domain {
		if partition.IsSuccess(lbl) {
			if inErrnos {
				msgs = append(msgs, fmt.Sprintf(
					"output %q: success label %q appears after errno labels", name, lbl))
			}
			continue
		}
		if inErrnos && lbl < prevErrno {
			msgs = append(msgs, fmt.Sprintf(
				"output %q: errno label %q out of order (after %q)", name, lbl, prevErrno))
		}
		inErrnos = true
		prevErrno = lbl
	}
	msgs = append(msgs, checkNumericOrder("output "+name, domain)...)

	hit := make(map[string]bool)
	probe := func(ret int64, err sys.Errno) {
		lbl := partition.Output(spec.Ret, ret, err)
		hit[lbl] = true
		if !domainSet[lbl] {
			msgs = append(msgs, fmt.Sprintf(
				"output %q: Output(ret=%d, err=%s) emits label %q outside OutputDomain()",
				name, ret, err.Name(), lbl))
		}
	}
	for _, v := range probeValues() {
		probe(v, sys.OK)
	}
	for _, e := range spec.Errnos {
		probe(-int64(e), e)
		probe(0, e)
	}
	for _, lbl := range domain {
		if !hit[lbl] {
			msgs = append(msgs, fmt.Sprintf(
				"output %q: OutputDomain() label %q is unreachable from Output() over the probe set", name, lbl))
		}
	}
	sort.Strings(msgs)
	return msgs
}

// checkNumericOrder verifies the canonical numeric-domain order: any "<0"
// and "=0" boundary labels precede the power-of-two buckets, whose exponents
// strictly ascend. Labels may carry the "OK:" success prefix.
func checkNumericOrder(name string, domain []string) []string {
	var msgs []string
	prevExp := -1
	sawLog2 := false
	for _, lbl := range domain {
		bare := strings.TrimPrefix(lbl, partition.LabelOK+":")
		if bare == partition.LabelNegative || bare == partition.LabelZero {
			if sawLog2 {
				msgs = append(msgs, fmt.Sprintf(
					"%s: boundary label %q appears after power-of-two buckets", name, lbl))
			}
			continue
		}
		rest, ok := strings.CutPrefix(bare, "2^")
		if !ok {
			continue
		}
		exp, err := strconv.Atoi(rest)
		if err != nil {
			continue
		}
		if sawLog2 && exp <= prevExp {
			msgs = append(msgs, fmt.Sprintf(
				"%s: power-of-two label %q out of order (after 2^%d)", name, lbl, prevExp))
		}
		sawLog2 = true
		prevExp = exp
	}
	return msgs
}

// probeValues is the shared exhaustive probe set: numeric boundaries, every
// power of two with its neighbours, every named flag and mode bit, flag
// combinations with each access mode, and the categorical values of whence
// and xattr flags (plus out-of-range values for each).
func probeValues() []int64 {
	seen := make(map[int64]bool)
	var out []int64
	add := func(vs ...int64) {
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	add(math.MinInt64, math.MaxInt64, -12345, -3, -2, -1, 0, 1, 2, 3, 4, 5, 6, 7)
	for k := 0; k <= 62; k++ {
		v := int64(1) << k
		add(v-1, v, v+1)
	}
	for _, f := range sys.OpenFlagNames {
		add(int64(f.Bit))
		add(int64(f.Bit | sys.O_WRONLY))
		add(int64(f.Bit | sys.O_RDWR))
		add(int64(f.Bit | sys.O_ACCMODE)) // invalid access mode under each flag
	}
	add(int64(sys.O_RDWR | sys.O_CREAT | sys.O_TRUNC))
	add(int64(sys.O_WRONLY | sys.O_CREAT | sys.O_EXCL | sys.O_SYNC))
	var allFlags int64
	for _, f := range sys.OpenFlagNames {
		allFlags |= int64(f.Bit)
	}
	add(allFlags)
	for _, b := range sys.ModeBitNames {
		add(int64(b.Bit))
	}
	add(int64(sys.PermMask), 0o7777, 0o170000)
	add(int64(sys.XATTR_CREATE), int64(sys.XATTR_REPLACE))
	for w := int64(0); w < int64(len(sys.WhenceNames))+2; w++ {
		add(w)
	}
	return out
}
