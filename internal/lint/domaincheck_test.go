package lint

import (
	"fmt"
	"strings"
	"testing"

	"iocov/internal/partition"
	"iocov/internal/sys"
	"iocov/internal/sysspec"
)

// TestDomainCheckBadFixture runs the static check against the pre-PR-1
// BytesScheme bug reproduced under testdata (Partitions can return the "<0"
// label that Domain() never declares, and the diagnostic must point at the
// exact return element) plus the table-indexed WhenceScheme whose Domain
// forgets an element the index guard admits.
func TestDomainCheckBadFixture(t *testing.T) {
	findings := NewDomainCheck().Run(fixtureTarget(t, "domaincheck_bad"))

	f := requireFinding(t, findings, `BytesScheme.Partitions may emit label "<0" that BytesScheme.Domain() never declares`)
	if !strings.HasSuffix(f.Pos.Filename, "bad.go") {
		t.Errorf("finding filename = %q, want bad.go", f.Pos.Filename)
	}
	if wantLine := fixtureLine(t, "domaincheck_bad/bad.go", "return []string{labelNegative}"); f.Pos.Line != wantLine {
		t.Errorf("finding line = %d, want %d (the labelNegative return)", f.Pos.Line, wantLine)
	}

	// The SEEK_END label never appears as a constant in WhenceScheme's
	// source: it is reachable only through the interval over seekNames.
	w := requireFinding(t, findings, `WhenceScheme.Partitions may emit label "SEEK_END" that WhenceScheme.Domain() never declares`)
	if wantLine := fixtureLine(t, "domaincheck_bad/bad.go", "return []string{seekNames[v]}"); w.Pos.Line != wantLine {
		t.Errorf("table finding line = %d, want %d (the seekNames[v] return)", w.Pos.Line, wantLine)
	}

	if len(findings) != 2 {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want exactly 2", len(findings))
	}
}

// TestDomainCheckGoodFixture is the fixed twin: a complete domain produces
// no findings.
func TestDomainCheckGoodFixture(t *testing.T) {
	for _, f := range NewDomainCheck().Run(fixtureTarget(t, "domaincheck_good")) {
		t.Errorf("unexpected finding: %s", f)
	}
}

// prePR1BytesScheme is a compiled reproduction of the original
// BytesScheme.Domain bug for the probe side: the "<0" partition is reachable
// but undeclared.
type prePR1BytesScheme struct{}

func (prePR1BytesScheme) Scheme() string { return "bytes-pre-pr1" }

func (prePR1BytesScheme) Partitions(v int64) []string {
	switch {
	case v < 0:
		return []string{partition.LabelNegative}
	case v == 0:
		return []string{partition.LabelZero}
	default:
		return []string{partition.Log2Label(partition.Log2Bucket(v))}
	}
}

func (prePR1BytesScheme) Domain() []string {
	out := []string{partition.LabelZero}
	for k := 0; k <= partition.MaxLog2; k++ {
		out = append(out, partition.Log2Label(k))
	}
	return out
}

// TestProbeSchemeFlagsPrePR1Bug proves the exhaustive probe catches the bug
// class even when the labels never appear as source constants.
func TestProbeSchemeFlagsPrePR1Bug(t *testing.T) {
	msgs := ProbeScheme(prePR1BytesScheme{})
	if len(msgs) == 0 {
		t.Fatal("ProbeScheme found nothing on the pre-PR-1 bytes scheme")
	}
	want := `emits label "<0" outside Domain()`
	for _, m := range msgs {
		if strings.Contains(m, want) {
			return
		}
	}
	t.Fatalf("no probe message contains %q; have:\n%s", want, strings.Join(msgs, "\n"))
}

// TestProbeSchemeCleanRegistry probes every live scheme the sysspec tables
// reference; the registry must satisfy all domain invariants.
func TestProbeSchemeCleanRegistry(t *testing.T) {
	schemes := registrySchemes()
	if len(schemes) == 0 {
		t.Fatal("no schemes enumerated from the sysspec tables")
	}
	probed := 0
	for _, name := range schemes {
		in := partition.ForScheme(name)
		if in == nil {
			continue // identifier schemes are not partitioned
		}
		probed++
		for _, m := range ProbeScheme(in) {
			t.Errorf("scheme %s: %s", name, m)
		}
	}
	if probed == 0 {
		t.Fatal("no partitioned schemes probed")
	}
}

// TestProbeOutputDomainCleanTables probes every base spec's output domain in
// both tables.
func TestProbeOutputDomainCleanTables(t *testing.T) {
	for _, tbl := range []*sysspec.Table{sysspec.NewTable(), sysspec.NewExtendedTable()} {
		for _, base := range tbl.Bases() {
			for _, m := range ProbeOutputDomain(tbl.Spec(base)) {
				t.Errorf("%s: %s", base, m)
			}
		}
	}
}

// TestProbeOutputDomainFlagsUnsortedErrnos feeds the probe a synthetic spec
// whose errno universe is out of order and expects the ordering invariant to
// fire.
func TestProbeOutputDomainFlagsUnsortedErrnos(t *testing.T) {
	spec := &sysspec.Spec{
		Base:     "fake",
		Variants: []string{"fake"},
		Ret:      sysspec.RetZero,
		Errnos:   []sys.Errno{sys.EIO, sys.EACCES},
	}
	msgs := ProbeOutputDomain(spec)
	want := fmt.Sprintf("errno label %q out of order", "EACCES")
	for _, m := range msgs {
		if strings.Contains(m, want) {
			return
		}
	}
	t.Fatalf("no probe message contains %q; have:\n%s", want, strings.Join(msgs, "\n"))
}
