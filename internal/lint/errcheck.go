package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrCheck is a lightweight dropped-error detector over internal/ and cmd/:
// it flags expression statements whose call returns an error that nothing
// consumes. An explicit `_ =` assignment is treated as an acknowledged drop
// and not flagged, as are the fmt print family (whose error returns are
// conventionally ignored) and writers that document infallible writes
// (strings.Builder, bytes.Buffer).
type ErrCheck struct {
	// Paths are the import-path prefixes to analyze.
	Paths []string
}

// NewErrCheck returns the pass configured for this repository.
func NewErrCheck() *ErrCheck {
	return &ErrCheck{Paths: []string{"iocov/internal", "iocov/cmd"}}
}

// Name implements Pass.
func (e *ErrCheck) Name() string { return "errcheck" }

// Run implements Pass.
func (e *ErrCheck) Run(t *Target) []Finding {
	var out []Finding
	for _, pkg := range t.Pkgs {
		if !matchesAny(pkg.Path, e.Paths) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				stmt, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(pkg, call) || allowedDrop(pkg, call) {
					return true
				}
				out = append(out, Finding{
					Pass: e.Name(),
					Pos:  t.Position(call.Pos()),
					Message: fmt.Sprintf("error return of %s is silently dropped",
						types.ExprString(call.Fun)),
				})
				return true
			})
		}
	}
	return out
}

// returnsError reports whether any result of the call has type error.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	switch res := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < res.Len(); i++ {
			if types.Identical(res.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(res, errType)
	}
}

// infallibleWriters are receiver types whose Write methods document a
// always-nil error.
var infallibleWriters = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

// allowedDrop reports whether the dropped error is conventionally ignored.
func allowedDrop(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		return fn.Pkg().Path() == "fmt"
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	return infallibleWriters[types.TypeString(recv, nil)]
}
