package lint

import "testing"

// TestErrCheckBadFixture: the fixture drops one error (f.Close()) amid the
// documented allowances (fmt printers, strings.Builder writes, explicit
// blank assignment), so exactly one finding must come back.
func TestErrCheckBadFixture(t *testing.T) {
	ec := &ErrCheck{Paths: []string{"errcheck_bad"}}
	findings := ec.Run(fixtureTarget(t, "errcheck_bad"))
	if len(findings) != 1 {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want exactly 1", len(findings))
	}
	f := requireFinding(t, findings, "error return of f.Close is silently dropped")
	if wantLine := fixtureLine(t, "errcheck_bad/bad.go", "f.Close()"); f.Pos.Line != wantLine {
		t.Errorf("finding at line %d, want %d", f.Pos.Line, wantLine)
	}
}

// TestErrCheckGoodFixture: every error handled, no findings.
func TestErrCheckGoodFixture(t *testing.T) {
	ec := &ErrCheck{Paths: []string{"errcheck_good"}}
	for _, f := range ec.Run(fixtureTarget(t, "errcheck_good")) {
		t.Errorf("unexpected finding: %s", f)
	}
}
