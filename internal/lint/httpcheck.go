package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// HTTPCheck enforces explicit status codes on HTTP handler error paths: in
// any function that takes an http.ResponseWriter and returns nothing, every
// early-exit block (an if body, switch case, or select clause whose last
// statement is a return) must touch the response writer — calling a method
// on it (WriteHeader, Write) or passing it to a helper (http.Error, a local
// httpError, ...). A block that returns without touching the writer makes
// net/http send an implicit "200 OK" with an empty body, silently
// converting the error into a success — the bug class this pass exists to
// keep out of the iocovd daemon.
//
// Functions with results are exempt: a helper that returns an error
// delegates the response to its caller, which this rule then checks.
type HTTPCheck struct {
	// Paths are the import-path prefixes to analyze.
	Paths []string
}

// NewHTTPCheck returns the pass configured for this repository.
func NewHTTPCheck() *HTTPCheck {
	return &HTTPCheck{Paths: []string{"iocov/internal", "iocov/cmd"}}
}

// Name implements Pass.
func (h *HTTPCheck) Name() string { return "httpcheck" }

// Run implements Pass.
func (h *HTTPCheck) Run(t *Target) []Finding {
	var out []Finding
	for _, pkg := range t.Pkgs {
		if !matchesAny(pkg.Path, h.Paths) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var ftype *ast.FuncType
				var body *ast.BlockStmt
				var name string
				switch fn := n.(type) {
				case *ast.FuncDecl:
					ftype, body, name = fn.Type, fn.Body, fn.Name.Name
				case *ast.FuncLit:
					ftype, body, name = fn.Type, fn.Body, "func literal"
				default:
					return true
				}
				if body == nil || ftype.Results != nil && len(ftype.Results.List) > 0 {
					return true
				}
				writers := responseWriterParams(pkg, ftype)
				if len(writers) == 0 {
					return true
				}
				out = append(out, h.checkHandler(t, pkg, name, body, writers)...)
				return true
			})
		}
	}
	return out
}

// responseWriterParams resolves the function's parameters of type
// net/http.ResponseWriter.
func responseWriterParams(pkg *Package, ftype *ast.FuncType) map[*types.Var]bool {
	writers := make(map[*types.Var]bool)
	if ftype.Params == nil {
		return writers
	}
	for _, field := range ftype.Params.List {
		for _, ident := range field.Names {
			v, ok := pkg.Info.Defs[ident].(*types.Var)
			if ok && isResponseWriter(v.Type()) {
				writers[v] = true
			}
		}
	}
	return writers
}

// isResponseWriter reports whether t is the net/http.ResponseWriter
// interface, resolved by identity rather than by name spelling.
func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ResponseWriter" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// checkHandler flags every early-exit block in one handler body that
// returns without touching a response writer.
func (h *HTTPCheck) checkHandler(t *Target, pkg *Package, name string, body *ast.BlockStmt, writers map[*types.Var]bool) []Finding {
	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // nested handlers are visited on their own
		}
		var stmts []ast.Stmt
		switch st := n.(type) {
		case *ast.IfStmt:
			stmts = st.Body.List
		case *ast.CaseClause:
			stmts = st.Body
		case *ast.CommClause:
			stmts = st.Body
		default:
			return true
		}
		if len(stmts) == 0 {
			return true
		}
		ret, ok := stmts[len(stmts)-1].(*ast.ReturnStmt)
		if !ok || usesAnyVar(pkg, stmts, writers) {
			return true
		}
		out = append(out, Finding{
			Pass: h.Name(),
			Pos:  t.Position(ret.Pos()),
			Message: fmt.Sprintf(
				"%s returns on this path without setting a status on the http.ResponseWriter (net/http will answer an implicit 200)",
				name),
		})
		return true
	})
	return out
}

// usesAnyVar reports whether any statement's subtree references one of the
// given variables.
func usesAnyVar(pkg *Package, stmts []ast.Stmt, vars map[*types.Var]bool) bool {
	found := false
	for _, st := range stmts {
		ast.Inspect(st, func(n ast.Node) bool {
			if found {
				return false
			}
			ident, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := pkg.Info.Uses[ident].(*types.Var); ok && vars[v] {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
