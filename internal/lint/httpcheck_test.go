package lint

import "testing"

// TestHTTPCheckBadFixture: three handlers each hide one silent-200 early
// return (if body, select default, switch case) — exactly three findings.
func TestHTTPCheckBadFixture(t *testing.T) {
	hc := &HTTPCheck{Paths: []string{"httpcheck_bad"}}
	findings := hc.Run(fixtureTarget(t, "httpcheck_bad"))
	if len(findings) != 3 {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want exactly 3", len(findings))
	}
	f := requireFinding(t, findings, "handleBad returns on this path without setting a status")
	if wantLine := fixtureLine(t, "httpcheck_bad/bad.go", "return // BAD: silent 200"); f.Pos.Line != wantLine {
		t.Errorf("handleBad finding at line %d, want %d", f.Pos.Line, wantLine)
	}
	requireFinding(t, findings, "handleSelect returns on this path")
	requireFinding(t, findings, "handleSwitch returns on this path")
}

// TestHTTPCheckGoodFixture: explicit statuses, helper delegation, an
// error-returning helper, and a compliant handler literal — no findings.
func TestHTTPCheckGoodFixture(t *testing.T) {
	hc := &HTTPCheck{Paths: []string{"httpcheck_good"}}
	for _, f := range hc.Run(fixtureTarget(t, "httpcheck_good")) {
		t.Errorf("unexpected finding: %s", f)
	}
}
