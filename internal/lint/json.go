package lint

import (
	"encoding/json"
	"io"
)

// JSONFinding is the machine-readable shape of one finding: the schema
// iocovlint -json emits, one object per line. File/Line/Col are omitted for
// findings without a source position (registry probes on compiled-in
// values).
type JSONFinding struct {
	Pass    string `json:"pass"`
	File    string `json:"file,omitempty"`
	Line    int    `json:"line,omitempty"`
	Col     int    `json:"col,omitempty"`
	Message string `json:"message"`
}

// WriteJSON encodes findings as newline-delimited JSON objects, the
// iocovlint -json output format. The encoding lives here, beside the
// Finding type, so the CLI and the golden-schema tests share one
// definition.
func WriteJSON(w io.Writer, findings []Finding) error {
	enc := json.NewEncoder(w)
	for _, f := range findings {
		jf := JSONFinding{
			Pass:    f.Pass,
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Message: f.Message,
		}
		if err := enc.Encode(jf); err != nil {
			return err
		}
	}
	return nil
}

// JSONTiming is one pass's wall-clock analysis time in the -json trailer.
type JSONTiming struct {
	Pass string  `json:"pass"`
	Ms   float64 `json:"ms"`
}

// WriteJSONTimings appends the per-pass timing trailer to a -json stream: a
// single {"timings":[...]} object after the finding lines. Line-oriented
// consumers keep filtering findings by their "pass" key; tooling that
// tracks engine cost reads the trailer.
func WriteJSONTimings(w io.Writer, times []PassTime) error {
	type trailer struct {
		Timings []JSONTiming `json:"timings"`
	}
	tr := trailer{Timings: make([]JSONTiming, 0, len(times))}
	for _, pt := range times {
		tr.Timings = append(tr.Timings, JSONTiming{
			Pass: pt.Name,
			Ms:   float64(pt.Elapsed.Microseconds()) / 1000,
		})
	}
	return json.NewEncoder(w).Encode(tr)
}
