package lint

import (
	"encoding/json"
	"io"
)

// JSONFinding is the machine-readable shape of one finding: the schema
// iocovlint -json emits, one object per line. File/Line/Col are omitted for
// findings without a source position (registry probes on compiled-in
// values).
type JSONFinding struct {
	Pass    string `json:"pass"`
	File    string `json:"file,omitempty"`
	Line    int    `json:"line,omitempty"`
	Col     int    `json:"col,omitempty"`
	Message string `json:"message"`
}

// WriteJSON encodes findings as newline-delimited JSON objects, the
// iocovlint -json output format. The encoding lives here, beside the
// Finding type, so the CLI and the golden-schema tests share one
// definition.
func WriteJSON(w io.Writer, findings []Finding) error {
	enc := json.NewEncoder(w)
	for _, f := range findings {
		jf := JSONFinding{
			Pass:    f.Pass,
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Message: f.Message,
		}
		if err := enc.Encode(jf); err != nil {
			return err
		}
	}
	return nil
}
