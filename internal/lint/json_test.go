package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the json_golden files from current pass output")

// TestJSONGolden pins the -json output schema for every pass: each pass runs
// over its _bad fixture and the newline-delimited JSON must match the golden
// file byte for byte. A schema change (renamed key, reordered fields, new
// sort order) shows up as a diff here before it breaks downstream tooling.
// Regenerate with: go test ./internal/lint -run TestJSONGolden -update
func TestJSONGolden(t *testing.T) {
	// The path-scoped passes are configured for the repo's import paths by
	// their constructors; point them at the fixture packages instead, the
	// way their own fixture tests do.
	passes := []Pass{
		NewDomainCheck(),
		&SpecCheck{KernelPaths: []string{"speccheck_bad"}},
		&ShardCheck{Paths: []string{"shardcheck_bad"}},
		&ErrCheck{Paths: []string{"errcheck_bad"}},
		&HTTPCheck{Paths: []string{"httpcheck_bad"}},
		NewLockCheck(),
		NewAllocCheck(),
		NewLeakCheck(),
		NewAtomCheck(),
		NewDetermCheck(),
		fixtureWireCheck(),
		NewBoundCheck(),
	}
	// The golden suite must cover exactly the canonical pass list, in order,
	// so a new pass cannot ship without a schema golden.
	all := AllPasses()
	if len(passes) != len(all) {
		t.Fatalf("golden suite has %d passes, AllPasses has %d", len(passes), len(all))
	}
	for i := range passes {
		if passes[i].Name() != all[i].Name() {
			t.Fatalf("golden pass %d = %s, AllPasses = %s", i, passes[i].Name(), all[i].Name())
		}
	}
	for _, p := range passes {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			tgt := fixtureTarget(t, p.Name()+"_bad")
			findings := RunAll(tgt, []Pass{p})
			if len(findings) == 0 {
				t.Fatalf("%s produced no findings on its bad fixture", p.Name())
			}
			var buf bytes.Buffer
			if err := WriteJSON(&buf, findings); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
			golden := filepath.Join("testdata", "json_golden", p.Name()+".json")
			if *updateGolden {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("JSON output diverged from %s:\n got:\n%s\nwant:\n%s",
					golden, buf.String(), want)
			}
			// Every line must decode into the documented schema with the
			// pass attributed and a real position.
			for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
				var jf JSONFinding
				if err := json.Unmarshal([]byte(line), &jf); err != nil {
					t.Fatalf("line not valid JSON: %v\n%s", err, line)
				}
				if jf.Pass != p.Name() {
					t.Errorf("finding attributed to %q, want %q", jf.Pass, p.Name())
				}
				if jf.File == "" || jf.Line == 0 {
					t.Errorf("finding missing position: %s", line)
				}
				if jf.Message == "" {
					t.Errorf("finding missing message: %s", line)
				}
			}
		})
	}
}
