package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// leakcheck proves that every goroutine the repository launches can exit.
// A goroutine with no exit path outlives its purpose, pins its stack and
// captured references forever, and — worst for this codebase — can keep a
// coverage snapshot or an HTTP response body reachable across an entire
// fuzzing campaign.
//
// Two rules, both interprocedural over the shared call graph:
//
//  1. Exit path: the body launched by every `go` statement must be able to
//     reach its CFG exit. For a `go func() {...}()` literal the pass checks
//     the literal's own CFG; for `go f(...)` it checks the may-return fact of
//     every callee the call-graph edge set names. May-return is a fixpoint
//     over the SCC condensation: a function may return when its CFG exit is
//     reachable treating calls to no-return functions as severing the block,
//     so mutual recursion with no base case and loops that only spin are
//     both caught. An empty select{} blocks forever and severs like a
//     no-return call.
//
//  2. Abandoned send: a send on an unbuffered, function-local channel from
//     inside a launched goroutine leaks when every receive in the launching
//     function sits inside a select with other cases — the select can commit
//     to a different case (a timeout, a cancellation) and then nothing ever
//     drains the channel, parking the goroutine forever. Buffering the
//     channel by one is the standard fix and silences the rule.
//
// Goroutines whose unbounded lifetime is intentional carry an
// //iocov:bounded-by <reason> directive, either on the launching function's
// doc comment or on (or directly above) the go statement itself.
type leakCheck struct{}

// NewLeakCheck returns the goroutine-leak pass.
func NewLeakCheck() Pass { return &leakCheck{} }

func (c *leakCheck) Name() string { return "leakcheck" }

func (c *leakCheck) Run(t *Target) []Finding {
	an := &leakAnalysis{
		t:         t,
		g:         t.CallGraph(),
		mayReturn: make(map[*CGNode]bool),
		cfgs:      make(map[*ast.BlockStmt]*CFG),
		edgesAt:   make(map[*CGNode]map[token.Pos][]*CallSite),
	}
	an.solveMayReturn()
	for _, n := range an.g.Nodes() {
		an.checkGoroutines(n)
		an.checkAbandonedSends(n)
	}
	return an.findings
}

type leakAnalysis struct {
	t *Target
	g *CallGraph
	// mayReturn records, per function, whether its CFG exit is reachable;
	// absent means false (the optimistic fixpoint start).
	mayReturn map[*CGNode]bool
	// cfgs caches one CFG per body across fixpoint iterations.
	cfgs map[*ast.BlockStmt]*CFG
	// edgesAt indexes each node's outgoing call sites by call position.
	edgesAt map[*CGNode]map[token.Pos][]*CallSite
	// boundedLines maps filename -> line numbers carrying an
	// //iocov:bounded-by comment, built lazily from the parsed comments.
	boundedLines map[string]map[int]bool
	findings     []Finding
}

func (an *leakAnalysis) report(pos token.Pos, format string, args ...any) {
	an.findings = append(an.findings, Finding{
		Pass:    "leakcheck",
		Pos:     an.t.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// solveMayReturn computes the may-return fact for every function. The SCC
// condensation is in reverse topological order, so every callee outside the
// current component is already solved; within a component the loop iterates
// to the least fixpoint from the optimistic "does not return" start.
func (an *leakAnalysis) solveMayReturn() {
	for _, comp := range an.g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				if an.mayReturn[n] {
					continue
				}
				if an.exitReachable(n.Decl.Body, n) {
					an.mayReturn[n] = true
					changed = true
				}
			}
		}
	}
}

// exitReachable reports whether body's CFG exit is reachable from its entry,
// treating a call whose every callee cannot return — and an empty select —
// as severing the rest of the block. owner is the declaration the body
// belongs to (the call-graph node whose edges resolve the body's calls,
// including calls inside its closures).
func (an *leakAnalysis) exitReachable(body *ast.BlockStmt, owner *CGNode) bool {
	g := an.cfgs[body]
	if g == nil {
		g = BuildCFG(body)
		an.cfgs[body] = g
	}
	seen := make(map[*Block]bool)
	stack := []*Block{g.Blocks[0]}
	seen[g.Blocks[0]] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == g.Exit {
			return true
		}
		if an.blockSevers(blk, owner, body) {
			continue
		}
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// blockSevers reports whether control cannot flow past blk's node list: the
// block contains an empty select or a call that never returns.
func (an *leakAnalysis) blockSevers(blk *Block, owner *CGNode, body *ast.BlockStmt) bool {
	for _, node := range blk.Nodes {
		severs := false
		ast.Inspect(node, func(nd ast.Node) bool {
			if severs {
				return false
			}
			switch x := nd.(type) {
			case *ast.FuncLit:
				// A closure's body runs on its own activation; the subject
				// body's CFG placed it here only as a value.
				if x.Body != body {
					return false
				}
			case *ast.GoStmt, *ast.DeferStmt:
				// Launching never blocks; deferred calls run after the
				// function has already reached its exit edge.
				return false
			case *ast.SelectStmt:
				if len(x.Body.List) == 0 {
					severs = true
					return false
				}
			case *ast.CallExpr:
				if !an.callMayReturn(x, owner) {
					severs = true
					return false
				}
			}
			return true
		})
		if severs {
			return true
		}
	}
	return false
}

// callMayReturn resolves a call through the owner's call-graph edges: the
// call may return when any possible callee may return. Calls with no
// in-module edges (standard library, bodyless declarations) are assumed to
// return: even os.Exit-style terminators end the whole process, which is not
// a leak.
func (an *leakAnalysis) callMayReturn(call *ast.CallExpr, owner *CGNode) bool {
	edges := an.edges(owner)[call.Pos()]
	if len(edges) == 0 {
		return true
	}
	for _, e := range edges {
		if an.mayReturn[e.Callee] {
			return true
		}
	}
	return false
}

// edges returns owner's call sites indexed by position, building the index
// on first use.
func (an *leakAnalysis) edges(owner *CGNode) map[token.Pos][]*CallSite {
	m := an.edgesAt[owner]
	if m == nil {
		m = make(map[token.Pos][]*CallSite, len(owner.Out))
		for _, e := range owner.Out {
			m[e.Pos] = append(m[e.Pos], e)
		}
		an.edgesAt[owner] = m
	}
	return m
}

// checkGoroutines applies the exit-path rule to every go statement in n's
// body (closures included: they launch under n's name).
func (an *leakAnalysis) checkGoroutines(n *CGNode) {
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		gs, ok := node.(*ast.GoStmt)
		if !ok {
			return true
		}
		if an.suppressed(n, gs.Pos()) {
			return true
		}
		if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
			if !an.exitReachable(lit.Body, n) {
				an.report(gs.Pos(), "goroutine has no provable exit path: give the loop a context/done-channel case, bound it, or annotate the launch //iocov:bounded-by <reason>")
			}
			return true
		}
		for _, e := range an.edges(n)[gs.Call.Pos()] {
			if !e.Go || an.mayReturn[e.Callee] || e.Callee.FA.boundedBy != "" {
				continue
			}
			an.report(gs.Pos(), "goroutine %s never returns: give it an exit path or annotate it //iocov:bounded-by <reason>", e.Callee.Name())
		}
		return true
	})
}

// checkAbandonedSends applies the abandoned-send rule to every unbuffered
// channel created locally in n's body.
func (an *leakAnalysis) checkAbandonedSends(n *CGNode) {
	info := n.Pkg.Info
	body := n.Decl.Body

	// The position extents of every go-launched closure in the body: a send
	// is "inside a goroutine" when a launched literal encloses it.
	type extent struct{ lo, hi token.Pos }
	var launched []extent
	var goPosOf func(p token.Pos) token.Pos // launch-site position for suppression
	var launchPos []token.Pos
	ast.Inspect(body, func(node ast.Node) bool {
		gs, ok := node.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
			launched = append(launched, extent{lit.Body.Pos(), lit.Body.End()})
			launchPos = append(launchPos, gs.Pos())
		}
		return true
	})
	if len(launched) == 0 {
		return
	}
	goPosOf = func(p token.Pos) token.Pos {
		for i, e := range launched {
			if e.lo <= p && p < e.hi {
				return launchPos[i]
			}
		}
		return token.NoPos
	}

	for _, ch := range localUnbufferedChans(info, body) {
		var sends []token.Pos // sends inside launched goroutines
		var plainRecv bool    // a receive outside any guarded select
		var guardedRecv bool  // a receive inside a select with options
		accounted := map[token.Pos]bool{ch.def: true}
		escapes := false

		ast.Inspect(body, func(node ast.Node) bool {
			switch x := node.(type) {
			case *ast.SendStmt:
				if id, ok := ast.Unparen(x.Chan).(*ast.Ident); ok && info.Uses[id] == ch.obj {
					accounted[id.Pos()] = true
					if gp := goPosOf(x.Pos()); gp != token.NoPos {
						sends = append(sends, x.Pos())
					} else {
						// A send from the launching function itself: pairing
						// is symmetric and out of this rule's scope.
						escapes = true
					}
				}
			case *ast.UnaryExpr:
				if x.Op != token.ARROW {
					return true
				}
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && info.Uses[id] == ch.obj {
					accounted[id.Pos()] = true
					if inGuardedSelect(body, x.Pos()) {
						guardedRecv = true
					} else if goPosOf(x.Pos()) == token.NoPos {
						plainRecv = true
					}
				}
			case *ast.RangeStmt:
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && info.Uses[id] == ch.obj {
					// range drains until close: a receiver is always there.
					accounted[id.Pos()] = true
					plainRecv = true
				}
			case *ast.CallExpr:
				// close(ch) and len/cap(ch) do not move data.
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
					switch id.Name {
					case "close", "len", "cap":
						if arg, ok := ast.Unparen(x.Args[0]).(*ast.Ident); ok && info.Uses[arg] == ch.obj {
							accounted[arg.Pos()] = true
						}
					}
				}
			}
			return true
		})

		// Any remaining use means the channel escapes (passed, stored,
		// returned): another receiver may exist, so stay silent.
		ast.Inspect(body, func(node ast.Node) bool {
			id, ok := node.(*ast.Ident)
			if !ok || accounted[id.Pos()] {
				return true
			}
			if info.Uses[id] == ch.obj {
				escapes = true
			}
			return true
		})
		if escapes || plainRecv || !guardedRecv {
			continue
		}
		for _, pos := range sends {
			if an.suppressed(n, goPosOf(pos)) || an.suppressed(n, pos) {
				continue
			}
			an.report(pos, "send on unbuffered channel %s can block forever: every receive sits in a select with other cases, so the goroutine is abandoned when another case wins; buffer the channel (make(chan T, 1)) or drain it", ch.name)
		}
	}
}

// localChan is one `ch := make(chan T)` (unbuffered) in a function body.
type localChan struct {
	obj  types.Object
	name string
	def  token.Pos
}

// localUnbufferedChans finds the unbuffered channels a body creates and
// binds to simple local variables.
func localUnbufferedChans(info *types.Info, body *ast.BlockStmt) []localChan {
	var out []localChan
	ast.Inspect(body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || fn.Name != "make" {
				continue
			}
			if _, isChan := call.Args[0].(*ast.ChanType); !isChan {
				continue
			}
			if len(call.Args) > 1 && !isZeroConst(info, call.Args[1]) {
				continue // buffered
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				continue // reassignment, not a fresh local
			}
			out = append(out, localChan{obj: obj, name: id.Name, def: id.Pos()})
		}
		return true
	})
	return out
}

// isZeroConst reports whether the type checker folded e to the constant 0.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, exact := constant.Int64Val(tv.Value)
	return exact && v == 0
}

// inGuardedSelect reports whether pos falls inside a select statement that
// has an alternative to the communicating case (a second case or a default):
// the select can resolve without that receive ever happening.
func inGuardedSelect(body *ast.BlockStmt, pos token.Pos) bool {
	guarded := false
	ast.Inspect(body, func(node ast.Node) bool {
		sel, ok := node.(*ast.SelectStmt)
		if !ok {
			return true
		}
		if sel.Pos() <= pos && pos < sel.End() && len(sel.Body.List) > 1 {
			guarded = true
		}
		return true
	})
	return guarded
}

// suppressed reports whether the launch (or send) at pos is covered by an
// //iocov:bounded-by directive: on the owning declaration's doc comment, on
// the same line, or on the line directly above.
func (an *leakAnalysis) suppressed(n *CGNode, pos token.Pos) bool {
	if pos == token.NoPos {
		return false
	}
	if n.FA.boundedBy != "" {
		return true
	}
	if an.boundedLines == nil {
		an.boundedLines = make(map[string]map[int]bool)
		for _, pkg := range an.t.Pkgs {
			for _, f := range pkg.Files {
				for _, grp := range f.Comments {
					for _, c := range grp.List {
						if !strings.HasPrefix(c.Text, annotationPrefix+"bounded-by") {
							continue
						}
						p := an.t.Position(c.Pos())
						lines := an.boundedLines[p.Filename]
						if lines == nil {
							lines = make(map[int]bool)
							an.boundedLines[p.Filename] = lines
						}
						lines[p.Line] = true
					}
				}
			}
		}
	}
	p := an.t.Position(pos)
	lines := an.boundedLines[p.Filename]
	return lines != nil && (lines[p.Line] || lines[p.Line-1])
}
