package lint

import (
	"strings"
	"testing"
)

// TestLeakCheckBadFixture pins every seeded goroutine leak to its line: one
// finding per rule, nothing extra.
func TestLeakCheckBadFixture(t *testing.T) {
	tgt := fixtureTarget(t, "leakcheck_bad")
	findings := NewLeakCheck().Run(tgt)

	// The two literal launches share a message, so every expectation is
	// pinned by (line, message-substring). Launch statements sit two lines
	// below their function's doc comment.
	wants := []struct {
		anchor string // unique fixture text; the finding is offset lines below
		offset int
		msg    string
	}{
		{"go spinner()", 0, "goroutine spinner never returns"},
		{"go pingpongA()", 0, "goroutine pingpongA never returns"},
		{"// LaunchLiteral", 2, "no provable exit path"},
		{"// LaunchBlocked", 2, "no provable exit path"},
		{"ch <- compute()", 0, "send on unbuffered channel ch can block forever"},
	}
	matched := make(map[int]bool) // finding index -> consumed
	for _, w := range wants {
		wantLine := fixtureLine(t, "leakcheck_bad/bad.go", w.anchor) + w.offset
		found := false
		for i, f := range findings {
			if matched[i] || f.Pos.Line != wantLine {
				continue
			}
			if !strings.Contains(f.Message, w.msg) {
				continue
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("no finding %q at line %d", w.msg, wantLine)
		}
	}
	if len(findings) != len(wants) {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Errorf("leakcheck_bad produced %d findings, want %d", len(findings), len(wants))
	}
}

// TestLeakCheckGoodFixture demands silence on the exiting idioms: channel
// ranges, done/context selects, bounded loops, buffered and blocking
// receives, escaping channels, and //iocov:bounded-by acknowledgements.
func TestLeakCheckGoodFixture(t *testing.T) {
	tgt := fixtureTarget(t, "leakcheck_good")
	for _, f := range NewLeakCheck().Run(tgt) {
		t.Errorf("unexpected finding: %s", f)
	}
}
