// Package lint is iocov's self-checking static-analysis suite. It proves,
// by construction rather than by review, the invariants the coverage
// pipeline silently depends on:
//
//   - domaincheck: every partition label a scheme's Partitions() can emit is
//     declared by its Domain(), domains are duplicate-free, and numeric and
//     output domains are canonically ordered (the pre-PR-1 BytesScheme bug
//     class, caught mechanically);
//   - speccheck: the sysspec base/extended tables are internally consistent
//     and every syscall the kernel dispatch emits has a spec entry;
//   - shardcheck: worker-path packages (internal/harness, internal/suites)
//     contain no writes to package-level state and no wall-clock or global
//     RNG calls, either of which would break the byte-identical
//     RunParallel-vs-Run snapshot contract;
//   - errcheck: no error return is silently dropped in internal/ or cmd/;
//   - httpcheck: every HTTP handler error path in internal/ and cmd/ sets
//     an explicit status code on the ResponseWriter — an early return that
//     never touches the writer becomes an implicit 200 with an empty body;
//   - lockcheck: flow-sensitive lock-discipline verification over a
//     per-function CFG (see cfg.go, dataflow.go): fields guarded by an
//     adjacent mutex or an //iocov:guarded-by annotation are only touched
//     with the right lock held, and double-lock, lock-leak and
//     unlock-without-lock are flagged on any path that exhibits them;
//   - alloccheck: functions reachable from //iocov:hotpath roots are proven
//     free of allocating constructs, making the zero-allocation contract
//     static — the AllocsPerRun regressions self-skip under -race, this
//     pass does not;
//   - leakcheck: every goroutine launch must have a provable exit path —
//     the launched function may return on some CFG path, or the launch
//     carries an //iocov:bounded-by annotation; sends on unbuffered local
//     channels whose every receive sits in a multi-case select are flagged
//     as abandonable;
//   - atomcheck: an object accessed through sync/atomic package-level calls
//     anywhere must be accessed that way everywhere — one plain read beside
//     an atomic increment is a data race the race detector only catches
//     when the schedule cooperates;
//   - determcheck: functions statically reachable from //iocov:deterministic
//     roots must not read the wall clock, use the global RNG, launch
//     goroutines, or leak map iteration order into their results (append
//     inside a map range is tainted until a subsequent sort washes it);
//   - wirecheck: the binary trace format's decoders mirror the encoder's
//     field sequence exactly (order, varint width, dictionary compression,
//     version branches), wire-derived decoder allocations are length-capped
//     and preceded by the event byte-budget check, dictionary retention is
//     capped, and every format version the daemon's negotiation admits is
//     implemented by a version branch;
//   - boundcheck: every index expression reachable from an //iocov:hotpath
//     root is proven in-bounds by the value lattice, or the function carries
//     a reasoned //iocov:bounds-ok annotation — and a stale annotation on a
//     fully proven function is itself a finding.
//
// shardcheck additionally holds internal/server (the iocovd daemon) to its
// no-package-level-writes rule, with the wall-clock rules relaxed.
//
// The interprocedural passes (alloccheck, leakcheck, determcheck, wirecheck,
// boundcheck) share one lazily built package-spanning call graph (see
// callgraph.go): static edges from resolved callees, conservative edges from
// interface method sets and func-value flow, condensed into SCCs for
// fixpoint analyses. wirecheck, boundcheck and domaincheck additionally
// share a per-target value-analysis engine (see values.go): a
// constant/interval lattice with relational length facts, propagated to a
// fixpoint over each function's CFG and seeded interprocedurally through
// return-value summaries and never-mutated constant tables.
//
// The suite is built only on the standard library's go/parser, go/ast,
// go/token and go/types packages; repository packages are type-checked
// against a source importer, so passes reason about resolved objects and
// folded constants, not token spellings. Passes are hybrid where a purely
// static proof is impossible: domaincheck and speccheck also probe the live
// partition and sysspec registries exhaustively (see ProbeScheme and
// ProbeOutputDomain).
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Finding is one diagnostic produced by a pass.
type Finding struct {
	// Pass is the producing pass's name.
	Pass string
	// Pos locates the offending source, when the pass can attribute one
	// (registry probes on compiled-in values may not have a position).
	Pos token.Position
	// Message describes the violated invariant.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	if f.Pos.Filename == "" {
		return fmt.Sprintf("[%s] %s", f.Pass, f.Message)
	}
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Pass, f.Message)
}

// Pass is one analysis over a loaded target.
type Pass interface {
	// Name identifies the pass in findings and CLI -passes selection.
	Name() string
	// Run analyzes the target and returns its findings.
	Run(t *Target) []Finding
}

// AllPasses returns the full suite in canonical order, configured for this
// repository's layout.
func AllPasses() []Pass {
	return []Pass{
		NewDomainCheck(),
		NewSpecCheck(),
		NewShardCheck(),
		NewErrCheck(),
		NewHTTPCheck(),
		NewLockCheck(),
		NewAllocCheck(),
		NewLeakCheck(),
		NewAtomCheck(),
		NewDetermCheck(),
		NewWireCheck(),
		NewBoundCheck(),
	}
}

// PassNames returns the names of the full suite in canonical order.
func PassNames() []string {
	var names []string
	for _, p := range AllPasses() {
		names = append(names, p.Name())
	}
	return names
}

// SelectPasses resolves a comma-separated pass list ("" means all).
func SelectPasses(spec string) ([]Pass, error) {
	all := AllPasses()
	if spec == "" {
		return all, nil
	}
	byName := make(map[string]Pass, len(all))
	for _, p := range all {
		byName[p.Name()] = p
	}
	var out []Pass
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		p, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown pass %q (have %s)",
				name, strings.Join(PassNames(), ", "))
		}
		out = append(out, p)
	}
	return out, nil
}

// PassTime records one pass's wall-clock analysis time.
type PassTime struct {
	Name    string
	Elapsed time.Duration
}

// RunAll runs the given passes over the target and returns the combined
// findings sorted by position then message, for deterministic output.
func RunAll(t *Target, passes []Pass) []Finding {
	findings, _ := RunAllTimed(t, passes)
	return findings
}

// RunAllTimed is RunAll plus per-pass wall-clock analysis times, in the
// order the passes ran; CI logs them so regressions in engine cost (the CFG
// and dataflow passes dominate) are visible in history.
func RunAllTimed(t *Target, passes []Pass) ([]Finding, []PassTime) {
	var out []Finding
	times := make([]PassTime, 0, len(passes))
	for _, p := range passes {
		start := time.Now()
		out = append(out, p.Run(t)...)
		times = append(times, PassTime{Name: p.Name(), Elapsed: time.Since(start)})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
	return out, times
}
