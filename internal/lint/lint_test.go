package lint

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	repoOnce sync.Once
	repoTgt  *Target
	repoErr  error
)

// repoTarget loads the repository once per test binary; LoadRepo type-checks
// every package, which dominates the suite's runtime.
func repoTarget(t *testing.T) *Target {
	t.Helper()
	repoOnce.Do(func() {
		repoTgt, repoErr = LoadRepo(filepath.Join("..", ".."))
	})
	if repoErr != nil {
		t.Fatalf("LoadRepo: %v", repoErr)
	}
	return repoTgt
}

// fixtureTarget loads one testdata package as a standalone target.
func fixtureTarget(t *testing.T, name string) *Target {
	t.Helper()
	tgt, err := LoadPackages(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("LoadPackages(%s): %v", name, err)
	}
	return tgt
}

// fixtureLine returns the 1-based line of the first occurrence of substr in
// the fixture file, so position assertions survive fixture edits.
func fixtureLine(t *testing.T, relpath, substr string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", relpath))
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, substr) {
			return i + 1
		}
	}
	t.Fatalf("fixture %s does not contain %q", relpath, substr)
	return 0
}

// requireFinding asserts one finding's message contains substr and returns it.
func requireFinding(t *testing.T, findings []Finding, substr string) Finding {
	t.Helper()
	for _, f := range findings {
		if strings.Contains(f.Message, substr) {
			return f
		}
	}
	var msgs []string
	for _, f := range findings {
		msgs = append(msgs, f.String())
	}
	t.Fatalf("no finding contains %q; have:\n%s", substr, strings.Join(msgs, "\n"))
	return Finding{}
}

// TestRepoSelfCheck is the suite's own acceptance gate: the full pass list
// over the live repository must come back clean.
func TestRepoSelfCheck(t *testing.T) {
	findings := RunAll(repoTarget(t), AllPasses())
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

func TestSelectPasses(t *testing.T) {
	all, err := SelectPasses("")
	if err != nil || len(all) != 12 {
		t.Fatalf("SelectPasses(\"\") = %d passes, err %v; want 12, nil", len(all), err)
	}
	if last := all[len(all)-1].Name(); last != "boundcheck" {
		t.Fatalf("last pass = %s, want boundcheck", last)
	}
	two, err := SelectPasses("lockcheck, errcheck")
	if err != nil || len(two) != 2 || two[0].Name() != "lockcheck" || two[1].Name() != "errcheck" {
		t.Fatalf("SelectPasses(lockcheck, errcheck) = %v, err %v", two, err)
	}
	err = func() error { _, err := SelectPasses("nosuchpass"); return err }()
	if err == nil {
		t.Fatal("SelectPasses(nosuchpass) did not fail")
	}
	// The error must name the offender and enumerate every valid pass, so a
	// CLI typo is self-correcting.
	if !strings.Contains(err.Error(), `unknown pass "nosuchpass"`) {
		t.Errorf("error does not name the unknown pass: %v", err)
	}
	for _, name := range PassNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list valid pass %s: %v", name, err)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Pass: "demo", Message: "broken"}
	if got := f.String(); got != "[demo] broken" {
		t.Errorf("positionless finding = %q", got)
	}
	f.Pos.Filename = "x.go"
	f.Pos.Line = 3
	f.Pos.Column = 7
	if got := f.String(); got != "x.go:3:7: [demo] broken" {
		t.Errorf("positioned finding = %q", got)
	}
}
