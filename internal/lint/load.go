package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked repository package.
type Package struct {
	// Path is the import path, e.g. "iocov/internal/partition".
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the resolved identifiers and folded constants.
	Info *types.Info
}

// Target is a loaded set of packages the passes analyze, sharing one
// token.FileSet.
type Target struct {
	Fset *token.FileSet
	// Pkgs is sorted by import path.
	Pkgs []*Package

	byPath map[string]*Package
	// cg is the lazily built module call graph (see callgraph.go), shared
	// by every whole-program pass of one run.
	cg *CallGraph
	// ve is the lazily built value-analysis engine (see values.go), sharing
	// per-function interval analyses and return summaries across passes.
	ve *valueEngine
}

// Package returns the loaded package with the given import path, or nil.
func (t *Target) Package(path string) *Package { return t.byPath[path] }

// Position resolves a token.Pos against the target's file set.
func (t *Target) Position(p token.Pos) token.Position { return t.Fset.Position(p) }

// LoadRepo loads and type-checks every non-test package under root, which
// must contain a go.mod naming the module. Directories named "testdata",
// hidden directories, and _test.go files are skipped, matching the go tool.
func LoadRepo(root string) (*Target, error) {
	module, err := moduleName(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			return nil
		}
		name := fi.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		p, err := parseDir(fset, dir, path)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	return typecheck(fset, pkgs)
}

// LoadPackages loads and type-checks the given directories as standalone
// packages with synthetic import paths (their directory base names). The
// packages may import the standard library but not each other; lint's
// fixture tests load known-bad sources this way.
func LoadPackages(dirs ...string) (*Target, error) {
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := parseDir(fset, dir, filepath.Base(dir))
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: no Go source in %s", dir)
		}
		pkgs = append(pkgs, p)
	}
	return typecheck(fset, pkgs)
}

// moduleName extracts the module path from root's go.mod.
func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// parseDir parses the non-test Go files of one directory, returning nil when
// the directory holds no Go source.
func parseDir(fset *token.FileSet, dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// ParseComments keeps doc and line comments in the AST: the CFG-based
		// passes read the //iocov: annotation grammar (guarded-by, locked,
		// hotpath, coldpath) from them.
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return &Package{Path: path, Dir: dir, Files: files}, nil
}

// typecheck type-checks the parsed packages in dependency order. Standard
// library imports resolve through the compiler's source importer; module
// imports resolve to the packages being checked.
func typecheck(fset *token.FileSet, pkgs []*Package) (*Target, error) {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		if byPath[p.Path] != nil {
			return nil, fmt.Errorf("lint: duplicate package path %q", p.Path)
		}
		byPath[p.Path] = p
	}
	imp := &chainImporter{
		std:     importer.ForCompiler(fset, "source", nil),
		checked: make(map[string]*types.Package),
	}
	// Topological order over module-internal imports.
	order, err := topoSort(pkgs, byPath)
	if err != nil {
		return nil, err
	}
	for _, p := range order {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.Path, fset, p.Files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", p.Path, err)
		}
		p.Types = tpkg
		p.Info = info
		imp.checked[p.Path] = tpkg
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return &Target{Fset: fset, Pkgs: pkgs, byPath: byPath}, nil
}

// chainImporter serves already-checked module packages, falling back to the
// standard library source importer.
type chainImporter struct {
	std     types.Importer
	checked map[string]*types.Package
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.checked[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

// topoSort orders packages so that every module-internal import precedes its
// importer.
func topoSort(pkgs []*Package, byPath map[string]*Package) ([]*Package, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.Path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %q", p.Path)
		}
		state[p.Path] = visiting
		for _, f := range p.Files {
			for _, spec := range f.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if dep := byPath[path]; dep != nil {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		state[p.Path] = done
		order = append(order, p)
		return nil
	}
	// Deterministic traversal order.
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	for _, p := range sorted {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
