package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockCheck verifies the guard discipline the daemon's byte-identical merge
// contract and the simulated kernel's shared state depend on: every access
// to a mutex-guarded struct field must happen on paths where the mutex is
// held. On top of the CFG/dataflow engine it checks, per function:
//
//   - guarded-field reads and writes against the must-held lock set
//     (reads of RWMutex-guarded fields accept a read lock, writes demand
//     the write lock);
//   - double-lock: a second Lock of a mutex that may already be held
//     (self-deadlock, including indirectly via a call to a method whose
//     entry block takes the same lock);
//   - lock-leak: a return or explicit panic reached while a lock may still
//     be held with no deferred unlock covering it;
//   - unlock-without-lock, including unlocks that only some paths pair
//     with a Lock.
//
// Guard relationships come from two sources. The explicit form is a
// //iocov:guarded-by <mutexField> annotation on a struct field. Without
// annotations, guards are inferred adjacency-style: in a struct with a
// sync.Mutex/RWMutex field, every field declared after the mutex in the
// same blank-line-delimited declaration group is guarded by it (fields of
// sync/atomic types are exempt — they are their own synchronization).
// Annotating any field of a struct switches that struct to explicit mode.
//
// Helpers that expect the caller to hold the lock either declare it with
// //iocov:locked <recv>.<mutexField> (checked at every call site) or are
// inferred: an unexported method whose every static call site holds the
// receiver's mutex is analyzed with the lock held at entry. The inference
// is a greatest-fixpoint over the call graph, so mutually recursive
// helpers (vfs walk/followSymlink) resolve without annotations.
//
// Soundness boundary, by design: lock and field paths are canonicalized
// syntactically (single-assignment local aliases are expanded); accesses
// through expressions the canonicalizer cannot name, dynamic dispatch, and
// closures passed to other functions are not tracked. Goroutine bodies
// (`go func(){...}`) are analyzed with an empty entry lock set.
type LockCheck struct{}

// NewLockCheck returns the pass.
func NewLockCheck() *LockCheck { return &LockCheck{} }

// Name implements Pass.
func (l *LockCheck) Name() string { return "lockcheck" }

// guardInfo describes one guarded struct field.
type guardInfo struct {
	mutex string // sibling mutex field name
	rw    bool   // mutex is a sync.RWMutex
}

// lockAnalysis is the whole-target state shared by inference and reporting.
type lockAnalysis struct {
	t    *Target
	pass string
	// guards maps a struct field object to its guard.
	guards map[*types.Var]guardInfo
	// funcs maps a function object to its declaration context.
	funcs map[*types.Func]*funcCtx
	// assumed holds the optimistic locked-on-entry keys (callee frame,
	// e.g. "fs.mu") for unexported methods under inference.
	assumed map[*types.Func]map[string]bool
	// entryLocks caches, per function, the mutex field names its entry
	// block unconditionally acquires on the receiver (deadlock check).
	entryLocks map[*types.Func]map[string]bool
	// pessimized notes inference candidates that lost a key, for better
	// messages at the access site.
	pessimized map[*types.Func]bool

	findings []Finding
}

// funcCtx is the per-function analysis context.
type funcCtx struct {
	an   *lockAnalysis
	pkg  *Package
	decl *ast.FuncDecl
	fa   funcAnnotations
	obj  *types.Func

	cfg *CFG
	// writes marks terminal lvalue expressions (selector/ident after
	// unwrapping index/star/slice/paren) that are written.
	writes map[ast.Expr]bool
	// aliases maps single-assignment locals to their canonical paths.
	aliases map[*types.Var]string
	// fresh marks locals that only ever hold a freshly allocated value
	// (&T{...}, T{...}, new(T)): unshared, so guard-exempt.
	fresh map[*types.Var]bool
	// entryMust holds the entry lock keys of the body currently being
	// reported (the function's own, or a closure's snapshot).
	entryMust map[string]bool
	// topLevel is true while reporting the declaration's own body (the
	// //iocov:locked exit contract does not apply to closures).
	topLevel bool

	recvName string
}

// Run implements Pass.
func (l *LockCheck) Run(t *Target) []Finding {
	an := &lockAnalysis{
		t:          t,
		pass:       l.Name(),
		guards:     make(map[*types.Var]guardInfo),
		funcs:      make(map[*types.Func]*funcCtx),
		assumed:    make(map[*types.Func]map[string]bool),
		entryLocks: make(map[*types.Func]map[string]bool),
		pessimized: make(map[*types.Func]bool),
	}
	for _, pkg := range t.Pkgs {
		an.collectGuards(pkg)
	}
	for _, pkg := range t.Pkgs {
		an.collectFuncs(pkg)
	}
	an.seedInference()
	an.inferLockedEntries()
	an.report()
	return an.findings
}

func (an *lockAnalysis) addFinding(pos token.Pos, format string, args ...interface{}) {
	an.findings = append(an.findings, Finding{
		Pass:    an.pass,
		Pos:     an.t.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// mutexKind classifies a field type: 1 = Mutex, 2 = RWMutex, 0 = neither.
// Pointer-to-mutex fields count the same as value fields.
func mutexKind(t types.Type) int {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return 0
	}
	switch named.Obj().Name() {
	case "Mutex":
		return 1
	case "RWMutex":
		return 2
	}
	return 0
}

// isAtomicType reports whether a field type comes from sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

// collectGuards builds the guarded-field table for one package's structs.
func (an *lockAnalysis) collectGuards(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			an.collectStructGuards(pkg, ts, st)
			return true
		})
	}
}

type fieldDecl struct {
	field *ast.Field
	name  *ast.Ident
	obj   *types.Var
}

// collectStructGuards applies the annotation-or-adjacency rule to one struct.
func (an *lockAnalysis) collectStructGuards(pkg *Package, ts *ast.TypeSpec, st *ast.StructType) {
	var fields []fieldDecl
	mutexByName := make(map[string]int) // field name -> mutexKind
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			obj, _ := pkg.Info.Defs[name].(*types.Var)
			if obj == nil {
				continue
			}
			fields = append(fields, fieldDecl{field: f, name: name, obj: obj})
			if k := mutexKind(obj.Type()); k != 0 {
				mutexByName[name.Name] = k
			}
		}
	}
	if len(mutexByName) == 0 {
		return
	}

	// Explicit mode: any //iocov:guarded-by annotation claims the struct.
	explicit := false
	for _, fd := range fields {
		if fieldGuardAnnotation(fd.field) != "" {
			explicit = true
			break
		}
	}
	if explicit {
		for _, fd := range fields {
			g := fieldGuardAnnotation(fd.field)
			if g == "" {
				continue
			}
			kind, ok := mutexByName[g]
			if !ok {
				an.addFinding(fd.name.Pos(),
					"//iocov:guarded-by on %s.%s names %q, which is not a sync.Mutex or sync.RWMutex field of %s",
					ts.Name.Name, fd.name.Name, g, ts.Name.Name)
				continue
			}
			an.guards[fd.obj] = guardInfo{mutex: g, rw: kind == 2}
		}
		return
	}

	// Inferred mode: fields after the first mutex, same blank-line group.
	firstMutex := -1
	for i, fd := range fields {
		if mutexKind(fd.obj.Type()) != 0 {
			firstMutex = i
			break
		}
	}
	kind := mutexKind(fields[firstMutex].obj.Type())
	mutexName := fields[firstMutex].name.Name
	for i := firstMutex + 1; i < len(fields); i++ {
		fd := fields[i]
		if an.groupBreakBetween(fields[i-1], fd) {
			break
		}
		if mutexKind(fd.obj.Type()) != 0 || isAtomicType(fd.obj.Type()) {
			continue
		}
		an.guards[fd.obj] = guardInfo{mutex: mutexName, rw: kind == 2}
	}
}

// groupBreakBetween reports whether a blank line separates two consecutive
// field declarations (doc comments count as part of the following field).
func (an *lockAnalysis) groupBreakBetween(prev, next fieldDecl) bool {
	if prev.field == next.field {
		return false // two names in one declaration: same group
	}
	end := prev.field.End()
	if prev.field.Comment != nil && prev.field.Comment.End() > end {
		end = prev.field.Comment.End()
	}
	start := next.field.Pos()
	if next.field.Doc != nil && next.field.Doc.Pos() < start {
		start = next.field.Doc.Pos()
	}
	return an.t.Position(start).Line > an.t.Position(end).Line+1
}

// collectFuncs registers every function declaration with a body.
func (an *lockAnalysis) collectFuncs(pkg *Package) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fc := &funcCtx{an: an, pkg: pkg, decl: fd, fa: parseFuncAnnotations(fd), obj: obj}
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				fc.recvName = fd.Recv.List[0].Names[0].Name
			}
			an.funcs[obj] = fc
		}
	}
}

// receiverStruct resolves a method's receiver to its named struct type.
func receiverStruct(obj *types.Func) (*types.Named, *types.Struct) {
	sig := obj.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil, nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

// receiverMutexes lists the mutex field names of a method's receiver struct.
func receiverMutexes(obj *types.Func) []string {
	_, st := receiverStruct(obj)
	if st == nil {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		if mutexKind(st.Field(i).Type()) != 0 {
			out = append(out, st.Field(i).Name())
		}
	}
	return out
}

// seedInference starts every inference candidate optimistically locked: an
// unexported, unannotated method with a named receiver over a mutex-bearing
// struct is assumed to hold the receiver's mutexes at entry until a call
// site disproves it (greatest fixpoint, so recursive helper cycles keep
// their assumption as long as every external caller holds the lock).
func (an *lockAnalysis) seedInference() {
	for obj, fc := range an.funcs {
		if obj.Exported() || len(fc.fa.locked) > 0 || fc.recvName == "" {
			continue
		}
		keys := make(map[string]bool)
		for _, m := range receiverMutexes(obj) {
			keys[fc.recvName+"."+m] = true
		}
		if len(keys) > 0 {
			an.assumed[obj] = keys
		}
	}
}

// inferLockedEntries runs the call-site fixpoint: keys disproved by any
// call site are removed and the analysis repeats until stable.
func (an *lockAnalysis) inferLockedEntries() {
	for iter := 0; iter < 20; iter++ {
		changed := false
		for _, fc := range an.funcs {
			fc.prepare()
			facts := SolveForward(fc.cfg, fc.entryFact(), fc.transferSolve)
			for i, b := range fc.cfg.Blocks {
				if facts[i] == nil {
					continue
				}
				fc.walkBlock(b, facts[i].Clone().(*lockFact), func(fact *lockFact, n ast.Node) {
					if call, ok := n.(*ast.CallExpr); ok {
						if fc.disproveAt(call, fact) {
							changed = true
						}
					}
				})
			}
		}
		if !changed {
			return
		}
	}
}

// disproveAt checks one call site against the callee's assumed entry locks,
// removing any assumption the site does not justify. Reports whether an
// assumption was removed.
func (fc *funcCtx) disproveAt(call *ast.CallExpr, fact *lockFact) bool {
	callee := fc.calleeOf(call)
	if callee == nil {
		return false
	}
	assumed := fc.an.assumed[callee]
	if len(assumed) == 0 {
		return false
	}
	changed := false
	for key := range assumed {
		if !fc.callerHoldsCalleeKey(call, callee, key, fact) {
			delete(assumed, key)
			fc.an.pessimized[callee] = true
			changed = true
		}
	}
	return changed
}

// calleeOf statically resolves a call to a module function declaration.
func (fc *funcCtx) calleeOf(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj, _ := fc.pkg.Info.Uses[id].(*types.Func)
	if obj == nil {
		return nil
	}
	if _, known := fc.an.funcs[obj]; !known {
		return nil
	}
	return obj
}

// callerHoldsCalleeKey translates a callee-frame lock key ("fs.mu") to the
// caller frame through the call's receiver or arguments and checks it
// against the caller's must-held set (a freshly allocated receiver counts
// as held: the object is unshared).
func (fc *funcCtx) callerHoldsCalleeKey(call *ast.CallExpr, callee *types.Func, key string, fact *lockFact) bool {
	calleeCtx := fc.an.funcs[callee]
	root, rest, _ := strings.Cut(key, ".")
	var base ast.Expr
	if calleeCtx != nil && root == calleeCtx.recvName && calleeCtx.decl.Recv != nil {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		base = sel.X
	} else {
		// Parameter-rooted keys: match by position.
		idx := calleeParamIndex(callee, root)
		if idx < 0 || idx >= len(call.Args) {
			return false
		}
		base = call.Args[idx]
	}
	path, rootVar, ok := fc.canon(base)
	if !ok {
		return false
	}
	if rootVar != nil && fc.fresh[rootVar] {
		return true
	}
	return fact.must[path+"."+rest]
}

// calleeParamIndex finds a parameter's position by name.
func calleeParamIndex(callee *types.Func, name string) int {
	sig := callee.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == name {
			return i
		}
	}
	return -1
}

// report runs the final analysis over every function and closure.
func (an *lockAnalysis) report() {
	// Deterministic function order for stable findings.
	ordered := make([]*funcCtx, 0, len(an.funcs))
	for _, fc := range an.funcs {
		ordered = append(ordered, fc)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return ordered[i].decl.Pos() < ordered[j].decl.Pos()
	})
	for _, fc := range ordered {
		fc.prepare()
		fc.checkAnnotations()
		fc.analyzeBody(fc.decl.Body, fc.entryFact(), true)
	}
}

// analyzeBody solves and reports one body (function or closure) with the
// given entry fact.
func (fc *funcCtx) analyzeBody(body *ast.BlockStmt, entry Fact, top bool) {
	g := BuildCFG(body)
	savedCFG, savedEntry, savedTop := fc.cfg, fc.entryMust, fc.topLevel
	fc.cfg = g
	fc.entryMust = copySet(entry.(*lockFact).must)
	fc.topLevel = top
	facts := SolveForward(g, entry, fc.transferSolve)
	for i, b := range g.Blocks {
		if facts[i] == nil {
			continue
		}
		fact := facts[i].Clone().(*lockFact)
		fc.walkBlock(b, fact, func(f *lockFact, n ast.Node) { fc.checkNode(f, n) })
		fc.checkExit(b, fact)
	}
	fc.cfg, fc.entryMust, fc.topLevel = savedCFG, savedEntry, savedTop
}

// checkAnnotations validates //iocov:locked roots against the signature.
func (fc *funcCtx) checkAnnotations() {
	for _, key := range fc.fa.locked {
		root, _, ok := strings.Cut(key, ".")
		if !ok || (root != fc.recvName && calleeParamIndex(fc.obj, root) < 0) {
			fc.an.addFinding(fc.decl.Pos(),
				"//iocov:locked %s: root %q is neither the receiver nor a parameter of %s",
				key, root, fc.obj.Name())
		}
	}
}

// entryFact builds the function's entry lock set from annotations and the
// inference fixpoint.
func (fc *funcCtx) entryFact() Fact {
	f := newLockFact()
	for _, key := range fc.fa.locked {
		f.must[key] = true
		f.may[key] = true
	}
	for key := range fc.an.assumed[fc.obj] {
		f.must[key] = true
		f.may[key] = true
	}
	return f
}

// prepare builds the CFG, write set, aliases, and fresh roots once.
func (fc *funcCtx) prepare() {
	if fc.cfg != nil {
		return
	}
	fc.cfg = BuildCFG(fc.decl.Body)
	fc.writes = make(map[ast.Expr]bool)
	fc.aliases = make(map[*types.Var]string)
	fc.fresh = make(map[*types.Var]bool)

	assignCount := make(map[*types.Var]int)
	assignRHS := make(map[*types.Var]ast.Expr)
	recordLHS := func(e ast.Expr, rhs ast.Expr) {
		fc.writes[unwrapLvalue(e)] = true
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v := fc.localVar(id); v != nil {
				assignCount[v]++
				assignRHS[v] = rhs
			}
		}
	}
	ast.Inspect(fc.decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				var rhs ast.Expr
				if len(st.Lhs) == len(st.Rhs) {
					rhs = st.Rhs[i]
				}
				recordLHS(lhs, rhs)
			}
		case *ast.IncDecStmt:
			fc.writes[unwrapLvalue(st.X)] = true
		case *ast.UnaryExpr:
			if st.Op == token.AND {
				fc.writes[unwrapLvalue(st.X)] = true
			}
		case *ast.RangeStmt:
			if st.Key != nil {
				recordLHS(st.Key, nil)
			}
			if st.Value != nil {
				recordLHS(st.Value, nil)
			}
		}
		return true
	})
	// Single-assignment locals: aliases (selector-chain RHS) and fresh
	// roots (&T{...}, T{...}, new(T) RHS).
	for v, n := range assignCount {
		if n != 1 || assignRHS[v] == nil {
			continue
		}
		rhs := ast.Unparen(assignRHS[v])
		switch r := rhs.(type) {
		case *ast.UnaryExpr:
			if r.Op == token.AND {
				if _, ok := r.X.(*ast.CompositeLit); ok {
					fc.fresh[v] = true
				}
			}
		case *ast.CompositeLit:
			fc.fresh[v] = true
		case *ast.CallExpr:
			if id, ok := r.Fun.(*ast.Ident); ok && id.Name == "new" && fc.pkg.Info.Uses[id] == nil {
				fc.fresh[v] = true
			}
		case *ast.SelectorExpr, *ast.Ident:
			if path, _, ok := fc.canonNoAlias(rhs, 0); ok {
				fc.aliases[v] = path
			}
		}
	}
}

// localVar resolves an identifier to a function-scoped variable.
func (fc *funcCtx) localVar(id *ast.Ident) *types.Var {
	obj := fc.pkg.Info.Defs[id]
	if obj == nil {
		obj = fc.pkg.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return nil
	}
	return v
}

// unwrapLvalue strips index, slice, star, and paren wrappers so the write
// set holds the terminal selector or identifier.
func unwrapLvalue(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

// canon resolves an expression to a canonical access path ("p.k.mu") and
// its root variable. Single-assignment aliases are expanded.
func (fc *funcCtx) canon(e ast.Expr) (string, *types.Var, bool) {
	return fc.canonNoAlias(e, 4)
}

func (fc *funcCtx) canonNoAlias(e ast.Expr, aliasDepth int) (string, *types.Var, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := fc.pkg.Info.Uses[x].(*types.Var)
		if !ok {
			v, ok = fc.pkg.Info.Defs[x].(*types.Var)
		}
		if !ok || v == nil {
			return "", nil, false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			// Package-level variable: canonical across functions.
			return "G·" + v.Pkg().Path() + "." + v.Name(), v, true
		}
		if alias, ok := fc.aliases[v]; ok && aliasDepth > 0 {
			return alias, nil, true
		}
		return v.Name(), v, true
	case *ast.SelectorExpr:
		if sel, ok := fc.pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			base, root, ok := fc.canonNoAlias(x.X, aliasDepth)
			if !ok {
				return "", nil, false
			}
			return base + "." + x.Sel.Name, root, true
		}
		// Qualified identifier: pkgname.Var.
		if v, ok := fc.pkg.Info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return "G·" + v.Pkg().Path() + "." + v.Name(), v, true
		}
		return "", nil, false
	case *ast.StarExpr:
		return fc.canonNoAlias(x.X, aliasDepth)
	default:
		return "", nil, false
	}
}

// ---- the lock fact lattice ----

const readSuffix = "\x00r"

type lockFact struct {
	must map[string]bool // held on every path
	may  map[string]bool // held on some path
	defU map[string]bool // unlock deferred on every path
}

func newLockFact() *lockFact {
	return &lockFact{
		must: make(map[string]bool),
		may:  make(map[string]bool),
		defU: make(map[string]bool),
	}
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func (f *lockFact) Clone() Fact {
	return &lockFact{must: copySet(f.must), may: copySet(f.may), defU: copySet(f.defU)}
}

func (f *lockFact) Join(other Fact) Fact {
	o := other.(*lockFact)
	out := newLockFact()
	for k := range f.must {
		if o.must[k] {
			out.must[k] = true
		}
	}
	for k := range f.may {
		out.may[k] = true
	}
	for k := range o.may {
		out.may[k] = true
	}
	// Deferred unlocks join with union: `if cond { mu.Lock(); defer
	// mu.Unlock() }` is correct code, and the deferred unlock only matters
	// on paths where the lock is may-held anyway.
	for k := range f.defU {
		out.defU[k] = true
	}
	for k := range o.defU {
		out.defU[k] = true
	}
	return out
}

func (f *lockFact) Equal(other Fact) bool {
	o := other.(*lockFact)
	return setsEqual(f.must, o.must) && setsEqual(f.may, o.may) && setsEqual(f.defU, o.defU)
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// ---- transfer ----

// transferSolve is the pure transfer function used during fixpoint solving:
// it applies lock-state effects without reporting.
func (fc *funcCtx) transferSolve(b *Block, in Fact, _ bool) Fact {
	fact := in.(*lockFact)
	fc.walkBlock(b, fact, nil)
	return fact
}

// walkBlock applies each node's lock effects to fact in execution order,
// invoking visit (when non-nil) with the fact state just before each node's
// effects apply.
func (fc *funcCtx) walkBlock(b *Block, fact *lockFact, visit func(*lockFact, ast.Node)) {
	for _, node := range b.Nodes {
		fc.walkNode(node, fact, visit)
	}
}

// walkNode walks one statement or clause expression. Function literals are
// not descended into here: their bodies run under their own lock context
// (see checkNode).
func (fc *funcCtx) walkNode(node ast.Node, fact *lockFact, visit func(*lockFact, ast.Node)) {
	ast.Inspect(node, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			if visit != nil {
				visit(fact, n)
			}
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			if visit != nil {
				visit(fact, n)
			}
			fc.applyDefer(d, fact)
			return false
		}
		if g, ok := n.(*ast.GoStmt); ok {
			if visit != nil {
				visit(fact, n)
			}
			// The goroutine body runs concurrently; its arguments are
			// evaluated here, but lock ops inside the literal are its own.
			for _, arg := range g.Call.Args {
				fc.walkNode(arg, fact, visit)
			}
			return false
		}
		if visit != nil {
			visit(fact, n)
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if key, op, kok := fc.lockOp(call); kok {
				fc.applyLockOp(fact, key, op)
			}
		}
		return true
	})
}

// Lock operation codes.
const (
	opLock = iota
	opUnlock
	opRLock
	opRUnlock
)

// lockOp classifies a call as a sync.Mutex/RWMutex operation on a
// canonicalizable lock path.
func (fc *funcCtx) lockOp(call *ast.CallExpr) (string, int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	var op int
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "Unlock":
		op = opUnlock
	case "RLock":
		op = opRLock
	case "RUnlock":
		op = opRUnlock
	default:
		return "", 0, false
	}
	fn, ok := fc.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	key, _, ok := fc.canon(sel.X)
	if !ok {
		return "", 0, false
	}
	return key, op, true
}

// applyLockOp mutates the fact for one lock operation (no reporting).
func (fc *funcCtx) applyLockOp(fact *lockFact, key string, op int) {
	switch op {
	case opLock:
		fact.must[key] = true
		fact.may[key] = true
	case opUnlock:
		delete(fact.must, key)
		delete(fact.may, key)
		delete(fact.defU, key)
	case opRLock:
		fact.must[key+readSuffix] = true
		fact.may[key+readSuffix] = true
	case opRUnlock:
		delete(fact.must, key+readSuffix)
		delete(fact.may, key+readSuffix)
		delete(fact.defU, key+readSuffix)
	}
}

// applyDefer records deferred unlocks, both direct (defer mu.Unlock()) and
// inside deferred closures.
func (fc *funcCtx) applyDefer(d *ast.DeferStmt, fact *lockFact) {
	if key, op, ok := fc.lockOp(d.Call); ok {
		switch op {
		case opUnlock:
			fact.defU[key] = true
		case opRUnlock:
			fact.defU[key+readSuffix] = true
		}
		return
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, op, ok := fc.lockOp(call); ok {
				switch op {
				case opUnlock:
					fact.defU[key] = true
				case opRUnlock:
					fact.defU[key+readSuffix] = true
				}
			}
			return true
		})
	}
}

// ---- reporting ----

// checkNode emits findings for one node during the report pass; fact holds
// the state just before the node's own effects.
func (fc *funcCtx) checkNode(fact *lockFact, n ast.Node) {
	switch x := n.(type) {
	case *ast.CallExpr:
		if key, op, ok := fc.lockOp(x); ok {
			fc.checkLockOp(fact, x, key, op)
			return
		}
		fc.checkCallSite(fact, x)
	case *ast.SelectorExpr:
		fc.checkGuardedAccess(fact, x)
	case *ast.FuncLit:
		// Closures invoked where they are defined (sort.Slice and friends)
		// inherit the lock state at the definition point; goroutine bodies
		// are handled by the GoStmt case below with an empty entry.
		entry := &lockFact{must: copySet(fact.must), may: copySet(fact.may), defU: make(map[string]bool)}
		fc.analyzeBody(x.Body, entry, false)
	case *ast.GoStmt:
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			fc.analyzeBody(lit.Body, newLockFact(), false)
		}
	case *ast.DeferStmt:
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			entry := &lockFact{must: copySet(fact.must), may: copySet(fact.may), defU: make(map[string]bool)}
			fc.analyzeBody(lit.Body, entry, false)
		}
	}
}

// checkLockOp reports double-lock and unlock-without-lock.
func (fc *funcCtx) checkLockOp(fact *lockFact, call *ast.CallExpr, key string, op int) {
	switch op {
	case opLock:
		if fact.may[key] {
			fc.an.addFinding(call.Pos(),
				"Lock of %s while it may already be held (self-deadlock)", key)
		}
	case opRLock:
		if fact.may[key] {
			fc.an.addFinding(call.Pos(),
				"RLock of %s while its write lock may be held (self-deadlock)", key)
		}
	case opUnlock:
		if !fact.may[key] {
			fc.an.addFinding(call.Pos(), "Unlock of %s which is not held", key)
		} else if !fact.must[key] {
			fc.an.addFinding(call.Pos(),
				"Unlock of %s which is not held on every path to this point", key)
		}
	case opRUnlock:
		rk := key + readSuffix
		if !fact.may[rk] {
			fc.an.addFinding(call.Pos(), "RUnlock of %s which is not read-held", key)
		} else if !fact.must[rk] {
			fc.an.addFinding(call.Pos(),
				"RUnlock of %s which is not read-held on every path to this point", key)
		}
	}
}

// checkCallSite verifies //iocov:locked requirements and the
// deadlock-via-self-locking-call pattern.
func (fc *funcCtx) checkCallSite(fact *lockFact, call *ast.CallExpr) {
	callee := fc.calleeOf(call)
	if callee == nil || callee == fc.obj {
		return
	}
	calleeCtx := fc.an.funcs[callee]
	if calleeCtx != nil {
		for _, key := range calleeCtx.fa.locked {
			if !fc.callerHoldsCalleeKey(call, callee, key, fact) {
				fc.an.addFinding(call.Pos(),
					"call to %s requires %s held at entry (//iocov:locked), but it is not held on every path here",
					callee.Name(), key)
			}
		}
	}
	// Deadlock: callee's entry block takes a lock this caller may hold.
	for m := range fc.an.calleeEntryLocks(callee) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		base, _, ok := fc.canon(sel.X)
		if !ok {
			continue
		}
		if fact.may[base+"."+m] {
			fc.an.addFinding(call.Pos(),
				"call to %s, whose entry acquires %s.%s, while it may already be held (deadlock)",
				callee.Name(), base, m)
		}
	}
}

// calleeEntryLocks returns the receiver mutex field names a method's entry
// block unconditionally acquires (cached).
func (an *lockAnalysis) calleeEntryLocks(callee *types.Func) map[string]bool {
	if locks, ok := an.entryLocks[callee]; ok {
		return locks
	}
	locks := make(map[string]bool)
	an.entryLocks[callee] = locks
	fc := an.funcs[callee]
	if fc == nil || fc.recvName == "" {
		return locks
	}
	fc.prepare()
	entry := fc.cfg.Blocks[0]
	for _, node := range entry.Nodes {
		ast.Inspect(node, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, op, ok := fc.lockOp(call); ok && op == opLock {
				if rest, found := strings.CutPrefix(key, fc.recvName+"."); found && !strings.Contains(rest, ".") {
					locks[rest] = true
				}
			}
			return true
		})
	}
	return locks
}

// checkGuardedAccess verifies one selector against the guard table.
func (fc *funcCtx) checkGuardedAccess(fact *lockFact, sel *ast.SelectorExpr) {
	selection, ok := fc.pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	guard, guarded := fc.an.guards[field]
	if !guarded {
		return
	}
	ownerPath, rootVar, ok := fc.canon(sel.X)
	if !ok {
		return // outside the canonicalizer's soundness boundary
	}
	if rootVar != nil && fc.fresh[rootVar] {
		return // freshly allocated, unshared object
	}
	key := ownerPath + "." + guard.mutex
	write := fc.writes[sel]
	held := fact.must[key]
	if !write && guard.rw {
		held = held || fact.must[key+readSuffix]
	}
	if held {
		return
	}
	verb := "read"
	want := key
	if write {
		verb = "written"
	} else if guard.rw {
		want = key + " (or its read lock)"
	}
	suffix := ""
	if fact.may[key] {
		suffix = " on every path to this access"
	} else if fc.an.pessimized[fc.obj] {
		suffix = " (not all call sites of this helper hold the lock; annotate //iocov:locked or fix the callers)"
	}
	fc.an.addFinding(sel.Sel.Pos(),
		"guarded field %s.%s %s without holding %s%s",
		ownerPath, field.Name(), verb, want, suffix)
}

// checkExit reports lock leaks at every edge into the synthetic exit block.
func (fc *funcCtx) checkExit(b *Block, fact *lockFact) {
	if fc.cfg == nil || !hasExitSucc(b, fc.cfg.Exit) {
		return
	}
	pos := fc.exitPos(b)
	// A deferred unlock must cover a lock actually held when the function
	// leaves.
	for k := range fact.defU {
		if !fact.may[k] {
			fc.an.addFinding(pos,
				"deferred Unlock of %s runs at exit where the lock is not held", displayKey(k))
		}
	}
	for k := range fact.may {
		if fact.defU[k] || fc.entryMust[k] {
			continue
		}
		fc.an.addFinding(pos,
			"%s may still be held at function exit (lock leak on a return or panic path)", displayKey(k))
	}
	// Annotated helpers must return with their contract lock still held
	// (the contract binds the declaration's own body, not its closures).
	if fc.topLevel {
		for _, k := range fc.fa.locked {
			if !fact.must[k] || fact.defU[k] {
				fc.an.addFinding(pos,
					"function is //iocov:locked %s but releases it before returning", k)
			}
		}
	}
}

func displayKey(k string) string {
	if strings.HasSuffix(k, readSuffix) {
		return "read lock of " + strings.TrimSuffix(k, readSuffix)
	}
	return k
}

func hasExitSucc(b *Block, exit *Block) bool {
	for _, s := range b.Succs {
		if s == exit {
			return true
		}
	}
	return false
}

// exitPos picks the best position for an exit finding: the block's last
// node, else the function end.
func (fc *funcCtx) exitPos(b *Block) token.Pos {
	if len(b.Nodes) > 0 {
		return b.Nodes[len(b.Nodes)-1].Pos()
	}
	return fc.decl.End()
}
