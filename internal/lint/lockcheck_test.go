package lint

import "testing"

// TestLockCheckBadFixture pins every seeded guard-discipline violation to
// its line: one finding per rule, nothing extra.
func TestLockCheckBadFixture(t *testing.T) {
	tgt := fixtureTarget(t, "lockcheck_bad")
	findings := NewLockCheck().Run(tgt)

	wants := []struct {
		anchor string // unique fixture text on the expected line
		msg    string // substring of the finding message
	}{
		{"return c.n // want: read", "guarded field c.n read without holding c.mu"},
		{"c.n = v * 2", "guarded field c.n written without holding c.mu"},
		{"c.n++ // want: not held on every path", "c.mu on every path to this access"},
		{"c.mu.Lock() // want: may already be held", "Lock of c.mu while it may already be held (self-deadlock)"},
		{"c.mu.Unlock() // want: not held", "Unlock of c.mu which is not held"},
		{"c.n = v + 1", "c.mu may still be held at function exit"},
		{"c.mu.Unlock() // want: not held on every path", "Unlock of c.mu which is not held on every path"},
		{"defer c.mu.Unlock() // want (at exit)", "deferred Unlock of c.mu runs at exit where the lock is not held"},
		{"return c.Total()", "call to Total, whose entry acquires c.mu, while it may already be held (deadlock)"},
		{"c.incrLocked()", "call to incrLocked requires c.mu held at entry"},
		{"c.mu.Unlock() // want (at exit): releases", "//iocov:locked c.mu but releases it before returning"},
		{"misses  int", `names "nosuch"`},
		{"r.entries[k]++", "guarded field r.entries written without holding r.mu"},
		{"return r.entries[k]", "guarded field r.entries read without holding r.mu (or its read lock)"},
		{"r.mu.RLock() // want", "RLock of r.mu while its write lock may be held"},
		{"g.v++", "not all call sites of this helper hold the lock"},
	}
	for _, w := range wants {
		f := requireFinding(t, findings, w.msg)
		if wantLine := fixtureLine(t, "lockcheck_bad/bad.go", w.anchor); f.Pos.Line != wantLine {
			t.Errorf("finding %q at line %d, want line %d (%s)", w.msg, f.Pos.Line, wantLine, w.anchor)
		}
	}
	if len(findings) != len(wants) {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Errorf("lockcheck_bad produced %d findings, want %d", len(findings), len(wants))
	}
}

// TestLockCheckGoodFixture demands silence on the correct idioms: defer
// unlock, branch-balanced explicit unlock, fresh-root construction,
// annotated and inferred locked helpers (including mutual recursion),
// RWMutex read paths, closures under the caller's lock, goroutines taking
// their own lock, and the blank-line group boundary.
func TestLockCheckGoodFixture(t *testing.T) {
	tgt := fixtureTarget(t, "lockcheck_good")
	for _, f := range NewLockCheck().Run(tgt) {
		t.Errorf("unexpected finding: %s", f)
	}
}
