package lint

import (
	"go/ast"
	"testing"
)

func TestReproRelNontermination(t *testing.T) {
	tgt := fixtureTarget(t, "reprorel")
	pkg := tgt.Pkgs[0]
	eng := tgt.values()
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				_ = eng.analysisOf(pkg, fd)
			}
		}
	}
}
