package lint

import (
	"go/ast"
	"testing"
)

func TestReproRecursionPanic(t *testing.T) {
	tgt := fixtureTarget(t, "reprorec")
	pkg := tgt.Pkgs[0]
	eng := tgt.values()
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				an := eng.analysisOf(pkg, fd)
				_ = an
			}
		}
	}
}
