package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ShardCheck guards the byte-identical RunParallel-vs-Run snapshot contract.
// Worker-path packages (internal/harness and the suites it shards) must be
// deterministic functions of (suite, scale, seed, shard): the pass flags
//
//   - writes to package-level variables (shared mutable state across shards
//     merges nondeterministically);
//   - calls to wall-clock time functions (time.Now / Since / Until);
//   - calls to the global math/rand source, whose state is shared across
//     goroutines (per-item rand.New(rand.NewSource(seed)) instances are the
//     sanctioned pattern and are not flagged).
//
// A package-level variable declared with //iocov:shared-ok <reason> is
// exempt from the write rule: the annotation asserts the sharing is
// synchronized and value-deterministic (a sync.Once write derived from
// constants, a mutex-guarded cache whose contents don't depend on
// interleaving). The reason is mandatory; a reasonless directive is itself
// a finding.
//
// StatePaths packages get only the package-level-write rule: the daemon
// merges sessions concurrently, so shared mutable globals are still a
// hazard there, but wall-clock reads are legitimate (merge-latency
// metrics, checkpoint intervals) and exempt.
type ShardCheck struct {
	// Paths are the import-path prefixes of worker-path packages.
	Paths []string
	// StatePaths are import-path prefixes checked only for writes to
	// package-level variables.
	StatePaths []string
}

// NewShardCheck returns the pass configured for this repository.
func NewShardCheck() *ShardCheck {
	return &ShardCheck{
		Paths:      []string{"iocov/internal/evolve", "iocov/internal/harness", "iocov/internal/suites"},
		StatePaths: []string{"iocov/internal/server"},
	}
}

// Name implements Pass.
func (s *ShardCheck) Name() string { return "shardcheck" }

// timeDenied are the wall-clock functions in package time.
var timeDenied = map[string]bool{"Now": true, "Since": true, "Until": true}

// randAllowed are the math/rand package-level functions that only construct
// independent generators and never touch the shared global source.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// Run implements Pass.
func (s *ShardCheck) Run(t *Target) []Finding {
	var out []Finding
	for _, pkg := range t.Pkgs {
		full := len(s.Paths) > 0 && matchesAny(pkg.Path, s.Paths)
		stateOnly := len(s.StatePaths) > 0 && matchesAny(pkg.Path, s.StatePaths)
		if !full && !stateOnly {
			continue
		}
		exempt, annFindings := s.sharedOKVars(t, pkg)
		out = append(out, annFindings...)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						out = append(out, s.checkWrite(t, pkg, exempt, lhs)...)
					}
				case *ast.IncDecStmt:
					out = append(out, s.checkWrite(t, pkg, exempt, st.X)...)
				case *ast.CallExpr:
					if full {
						out = append(out, s.checkCall(t, pkg, st)...)
					}
				}
				return true
			})
		}
	}
	return out
}

// sharedOKVars collects the package-level variables whose declarations
// carry a reasoned //iocov:shared-ok directive, plus findings for
// reasonless directives.
func (s *ShardCheck) sharedOKVars(t *Target, pkg *Package) (map[*types.Var]bool, []Finding) {
	var exempt map[*types.Var]bool
	var out []Finding
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, a := range annotationsIn(gd.Doc, vs.Doc, vs.Comment) {
					directive, arg, _ := strings.Cut(a, " ")
					if directive != "shared-ok" {
						continue
					}
					if strings.TrimSpace(arg) == "" {
						out = append(out, Finding{
							Pass:    s.Name(),
							Pos:     t.Position(vs.Pos()),
							Message: "iocov:shared-ok requires a reason stating why the sharing preserves the parallel-vs-serial contract",
						})
						continue
					}
					for _, name := range vs.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							if exempt == nil {
								exempt = make(map[*types.Var]bool)
							}
							exempt[v] = true
						}
					}
				}
			}
		}
	}
	return exempt, out
}

// checkWrite flags an assignment target rooted in a package-level variable
// not exempted by //iocov:shared-ok.
func (s *ShardCheck) checkWrite(t *Target, pkg *Package, exempt map[*types.Var]bool, expr ast.Expr) []Finding {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.SelectorExpr:
			// pkgname.Var writes resolve through the selector itself; field
			// selectors resolve through the receiver expression instead.
			if v := packageLevelVar(pkg, e.Sel); v != nil {
				if exempt[v] {
					return nil
				}
				return s.writeFinding(t, pkg, e.Sel, v)
			}
			expr = e.X
		case *ast.Ident:
			if v := packageLevelVar(pkg, e); v != nil {
				if exempt[v] {
					return nil
				}
				return s.writeFinding(t, pkg, e, v)
			}
			return nil
		default:
			return nil
		}
	}
}

func (s *ShardCheck) writeFinding(t *Target, pkg *Package, at *ast.Ident, v *types.Var) []Finding {
	return []Finding{{
		Pass: s.Name(),
		Pos:  t.Position(at.Pos()),
		Message: fmt.Sprintf(
			"worker path writes package-level variable %q; shared state breaks the parallel-vs-serial snapshot contract",
			v.Name()),
	}}
}

// packageLevelVar resolves an identifier to a package-scoped variable, or
// nil when it names anything else.
func packageLevelVar(pkg *Package, ident *ast.Ident) *types.Var {
	obj := pkg.Info.Uses[ident]
	if obj == nil {
		obj = pkg.Info.Defs[ident]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// checkCall flags wall-clock and global-RNG calls.
func (s *ShardCheck) checkCall(t *Target, pkg *Package, call *ast.CallExpr) []Finding {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return nil // methods (e.g. (*rand.Rand).Intn) are per-instance state
	}
	switch fn.Pkg().Path() {
	case "time":
		if timeDenied[fn.Name()] {
			return []Finding{{
				Pass: s.Name(),
				Pos:  t.Position(call.Pos()),
				Message: fmt.Sprintf(
					"worker path calls time.%s; wall-clock input breaks shard determinism", fn.Name()),
			}}
		}
	case "math/rand", "math/rand/v2":
		if !randAllowed[fn.Name()] {
			return []Finding{{
				Pass: s.Name(),
				Pos:  t.Position(call.Pos()),
				Message: fmt.Sprintf(
					"worker path calls the global %s.%s; shared RNG state breaks shard determinism",
					fn.Pkg().Name(), fn.Name()),
			}}
		}
	}
	return nil
}
