package lint

import (
	"strings"
	"testing"
)

// TestShardCheckBadFixture covers every violation class the pass detects:
// package-level writes (both a counter increment and a map store), a
// wall-clock read, a global-RNG call, and a reasonless iocov:shared-ok
// directive (whose variable's writes stay flagged).
func TestShardCheckBadFixture(t *testing.T) {
	sc := &ShardCheck{Paths: []string{"shardcheck_bad"}}
	findings := sc.Run(fixtureTarget(t, "shardcheck_bad"))
	if len(findings) != 7 {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want 7", len(findings))
	}
	counter := requireFinding(t, findings, `writes package-level variable "counter"`)
	if wantLine := fixtureLine(t, "shardcheck_bad/bad.go", "counter++"); counter.Pos.Line != wantLine {
		t.Errorf("counter finding at line %d, want %d", counter.Pos.Line, wantLine)
	}
	requireFinding(t, findings, `writes package-level variable "cache"`)
	requireFinding(t, findings, "calls time.Now")
	requireFinding(t, findings, "calls the global rand.Int63")
	requireFinding(t, findings, `writes package-level variable "lazily"`)
	requireFinding(t, findings, "iocov:shared-ok requires a reason")
	for _, f := range findings {
		if !strings.HasSuffix(f.Pos.Filename, "bad.go") {
			t.Errorf("finding without fixture position: %s", f)
		}
	}
}

// TestShardCheckGoodFixture: read-only package state and per-item seeded
// generators are the sanctioned pattern and must not be flagged.
func TestShardCheckGoodFixture(t *testing.T) {
	sc := &ShardCheck{Paths: []string{"shardcheck_good"}}
	for _, f := range sc.Run(fixtureTarget(t, "shardcheck_good")) {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestShardCheckStatePaths: a StatePaths package keeps the package-level
// write rule but is exempt from the wall-clock and RNG rules — the daemon
// legitimately reads the clock for merge-latency metrics.
func TestShardCheckStatePaths(t *testing.T) {
	sc := &ShardCheck{StatePaths: []string{"shardcheck_bad"}}
	findings := sc.Run(fixtureTarget(t, "shardcheck_bad"))
	if len(findings) != 5 {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want 5 (writes + reasonless directive)", len(findings))
	}
	requireFinding(t, findings, `writes package-level variable "counter"`)
	requireFinding(t, findings, `writes package-level variable "cache"`)
	requireFinding(t, findings, `writes package-level variable "lazily"`)
	for _, f := range findings {
		if strings.Contains(f.Message, "time.") || strings.Contains(f.Message, "rand.") {
			t.Errorf("state-only package flagged for calls: %s", f)
		}
	}
}
