package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"iocov/internal/partition"
	"iocov/internal/sys"
	"iocov/internal/sysspec"
)

// SpecCheck cross-checks the sysspec base/extended tables against each other
// and against the kernel dispatch:
//
//   - every variant resolves back to its base spec and no variant is claimed
//     twice;
//   - every tracked argument names a real partitioning scheme for its class,
//     and any per-variant restriction names variants the spec actually has;
//   - errno universes are sorted by name, duplicate-free, and never contain
//     the OK sentinel;
//   - every syscall name the kernel dispatch emits resolves to a spec in the
//     extended table (with one level of constant propagation through
//     forwarding helpers like openCommon), and every standard-table variant
//     has a dispatch site;
//   - where an emit site passes its argument map as a literal, the keys
//     cover every tracked argument the spec records for that variant.
type SpecCheck struct {
	// KernelPaths are import-path prefixes holding the syscall dispatch.
	KernelPaths []string
	// RequireDispatch enables the reverse check that every standard-table
	// variant has a kernel dispatch site. Fixture targets that do not
	// contain the kernel disable it.
	RequireDispatch bool
}

// NewSpecCheck returns the pass configured for this repository.
func NewSpecCheck() *SpecCheck {
	return &SpecCheck{
		KernelPaths:     []string{"iocov/internal/kernel"},
		RequireDispatch: true,
	}
}

// Name implements Pass.
func (s *SpecCheck) Name() string { return "speccheck" }

// Run implements Pass.
func (s *SpecCheck) Run(t *Target) []Finding {
	var out []Finding
	out = append(out, s.checkTables()...)
	out = append(out, s.checkDispatch(t)...)
	return out
}

// checkTables validates the standard and extended tables' internal
// consistency. Findings carry no source position: the tables are compiled-in
// registries, not syntax.
func (s *SpecCheck) checkTables() []Finding {
	var out []Finding
	add := func(format string, args ...any) {
		out = append(out, Finding{Pass: s.Name(), Message: fmt.Sprintf(format, args...)})
	}
	for _, tbl := range []struct {
		name string
		t    *sysspec.Table
	}{
		{"standard", sysspec.NewTable()},
		{"extended", sysspec.NewExtendedTable()},
	} {
		variantOwner := make(map[string]string)
		for _, base := range tbl.t.Bases() {
			spec := tbl.t.Spec(base)
			if len(spec.Variants) == 0 {
				add("%s table: base %q has no variants", tbl.name, base)
			}
			selfListed := false
			for _, v := range spec.Variants {
				if owner, dup := variantOwner[v]; dup {
					add("%s table: variant %q claimed by both %q and %q", tbl.name, v, owner, base)
				}
				variantOwner[v] = base
				if got := tbl.t.Base(v); got == nil || got.Base != base {
					add("%s table: variant %q does not resolve to base %q", tbl.name, v, base)
				}
				if v == base {
					selfListed = true
				}
			}
			if !selfListed {
				add("%s table: base %q is not one of its own variants %v", tbl.name, base, spec.Variants)
			}
			out = append(out, s.checkArgs(tbl.name, spec)...)
			out = append(out, s.checkErrnos(tbl.name, spec)...)
		}
	}
	return out
}

func (s *SpecCheck) checkArgs(table string, spec *sysspec.Spec) []Finding {
	var out []Finding
	add := func(format string, args ...any) {
		out = append(out, Finding{Pass: s.Name(), Message: fmt.Sprintf(format, args...)})
	}
	variants := make(map[string]bool, len(spec.Variants))
	for _, v := range spec.Variants {
		variants[v] = true
	}
	names := make(map[string]bool, len(spec.Args))
	for i := range spec.Args {
		arg := &spec.Args[i]
		if arg.Name == "" || arg.Key == "" {
			add("%s table: %s arg #%d has empty Name or Key", table, spec.Base, i)
			continue
		}
		if names[arg.Name] {
			add("%s table: %s repeats arg name %q", table, spec.Base, arg.Name)
		}
		names[arg.Name] = true
		in := partition.ForScheme(arg.Scheme)
		if arg.Class == sysspec.Identifier {
			if in != nil {
				add("%s table: %s.%s is an identifier but scheme %q is partitioned",
					table, spec.Base, arg.Name, arg.Scheme)
			}
		} else {
			switch {
			case in == nil:
				add("%s table: %s.%s (%s) names unknown scheme %q",
					table, spec.Base, arg.Name, arg.Class, arg.Scheme)
			case in.Scheme() != arg.Scheme:
				add("%s table: scheme %q reports itself as %q", table, arg.Scheme, in.Scheme())
			}
		}
		for _, v := range arg.Variants {
			if !variants[v] {
				add("%s table: %s.%s restricted to variant %q which %s does not have",
					table, spec.Base, arg.Name, v, spec.Base)
			}
		}
	}
	return out
}

func (s *SpecCheck) checkErrnos(table string, spec *sysspec.Spec) []Finding {
	var out []Finding
	add := func(format string, args ...any) {
		out = append(out, Finding{Pass: s.Name(), Message: fmt.Sprintf(format, args...)})
	}
	seen := make(map[sys.Errno]bool, len(spec.Errnos))
	prev := ""
	for _, e := range spec.Errnos {
		if e == sys.OK {
			add("%s table: %s errno universe contains the OK sentinel", table, spec.Base)
			continue
		}
		if seen[e] {
			add("%s table: %s errno universe repeats %s", table, spec.Base, e.Name())
		}
		seen[e] = true
		if prev != "" && e.Name() < prev {
			add("%s table: %s errno universe out of order: %s after %s",
				table, spec.Base, e.Name(), prev)
		}
		prev = e.Name()
	}
	return out
}

// emitSite is one resolved kernel dispatch site: the syscall name it emits
// and, when the call passes a map literal, the argument keys it records.
type emitSite struct {
	name    string
	pos     token.Pos
	argKeys map[string]bool // nil when the args expression is not a literal
}

// checkDispatch scans the kernel packages for emit calls and cross-checks
// the emitted names and argument keys against the extended table.
func (s *SpecCheck) checkDispatch(t *Target) []Finding {
	var out []Finding
	sites := s.collectEmitSites(t)
	if len(sites) == 0 {
		return nil
	}
	ext := sysspec.NewExtendedTable()
	emitted := make(map[string]bool)
	for _, site := range sites {
		emitted[site.name] = true
		spec := ext.Base(site.name)
		if spec == nil {
			out = append(out, Finding{
				Pass: s.Name(),
				Pos:  t.Position(site.pos),
				Message: fmt.Sprintf("kernel dispatch emits %q, which no sysspec table resolves",
					site.name),
			})
			continue
		}
		if site.argKeys == nil {
			continue
		}
		for _, arg := range spec.TrackedArgs() {
			if !arg.ArgAppliesTo(site.name) {
				continue
			}
			if !site.argKeys[arg.Key] {
				out = append(out, Finding{
					Pass: s.Name(),
					Pos:  t.Position(site.pos),
					Message: fmt.Sprintf("emit site for %q omits tracked argument key %q (%s.%s)",
						site.name, arg.Key, spec.Base, arg.Name),
				})
			}
		}
	}
	if s.RequireDispatch {
		std := sysspec.NewTable()
		var missing []string
		for _, base := range std.Bases() {
			for _, v := range std.Spec(base).Variants {
				if !emitted[v] {
					missing = append(missing, v)
				}
			}
		}
		sort.Strings(missing)
		for _, v := range missing {
			out = append(out, Finding{
				Pass:    s.Name(),
				Message: fmt.Sprintf("standard-table variant %q has no kernel dispatch site", v),
			})
		}
	}
	return out
}

// collectEmitSites finds every call to a function or method named "emit" in
// the kernel packages and resolves the constant syscall name reaching its
// first argument, following one level of forwarding per iteration (e.g.
// openCommon's name parameter) up to a small depth.
func (s *SpecCheck) collectEmitSites(t *Target) []emitSite {
	var sites []emitSite
	for _, pkg := range t.Pkgs {
		if !matchesAny(pkg.Path, s.KernelPaths) {
			continue
		}
		// Parameter object -> (owning function object, parameter index).
		type paramSlot struct {
			fn    types.Object
			index int
		}
		paramOf := make(map[types.Object]paramSlot)
		fnDecls := make(map[types.Object]*ast.FuncDecl)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Type.Params == nil {
					continue
				}
				fnObj := pkg.Info.Defs[fd.Name]
				if fnObj == nil {
					continue
				}
				fnDecls[fnObj] = fd
				idx := 0
				for _, field := range fd.Type.Params.List {
					for _, ident := range field.Names {
						if obj := pkg.Info.Defs[ident]; obj != nil {
							paramOf[obj] = paramSlot{fn: fnObj, index: idx}
						}
						idx++
					}
				}
			}
		}

		// Pending forwarders: functions whose parameter at index feeds an
		// emit name, mapped to the arg-keys expression seen at the emit
		// site (shared by all callers of the forwarder).
		type forward struct {
			slot    paramSlot
			argKeys map[string]bool
		}
		var pending []forward
		seenForward := make(map[paramSlot]bool)

		resolveArg := func(expr ast.Expr, argKeys map[string]bool, pos token.Pos) {
			if v, ok := constString(pkg, expr); ok {
				sites = append(sites, emitSite{name: v, pos: pos, argKeys: argKeys})
				return
			}
			if ident, ok := expr.(*ast.Ident); ok {
				if slot, ok := paramOf[pkg.Info.Uses[ident]]; ok && !seenForward[slot] {
					seenForward[slot] = true
					pending = append(pending, forward{slot: slot, argKeys: argKeys})
				}
			}
		}

		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 || calleeName(call) != "emit" {
					return true
				}
				resolveArg(call.Args[0], literalMapKeys(pkg, call.Args, 3), call.Args[0].Pos())
				return true
			})
		}

		// Propagate constants through forwarders (depth-limited; each round
		// may surface new forwarders one level further out).
		for depth := 0; depth < 3 && len(pending) > 0; depth++ {
			work := pending
			pending = nil
			for _, fw := range work {
				for _, f := range pkg.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok || fw.slot.index >= len(call.Args) {
							return true
						}
						if calleeObject(pkg, call) != fw.slot.fn {
							return true
						}
						arg := call.Args[fw.slot.index]
						resolveArg(arg, fw.argKeys, arg.Pos())
						return true
					})
				}
			}
		}
	}
	return sites
}

// literalMapKeys extracts the constant argument keys of the composite
// literal at args[index], returning nil when the expression is absent or
// not a literal. Two emit-site shapes are understood: map literals
// (map[string]int64{"fd": ...}) and pair-slice literals
// ([]ekv{{"fd", ...}}), whose elements are positional composite literals
// with the key as the first field.
func literalMapKeys(pkg *Package, args []ast.Expr, index int) map[string]bool {
	if index >= len(args) {
		return nil
	}
	lit, ok := args[index].(*ast.CompositeLit)
	if !ok {
		return nil
	}
	keys := make(map[string]bool, len(lit.Elts))
	for _, elt := range lit.Elts {
		var keyExpr ast.Expr
		switch e := elt.(type) {
		case *ast.KeyValueExpr:
			keyExpr = e.Key
		case *ast.CompositeLit:
			if len(e.Elts) == 0 {
				return nil
			}
			keyExpr = e.Elts[0]
		default:
			return nil
		}
		k, ok := constString(pkg, keyExpr)
		if !ok {
			return nil
		}
		keys[k] = true
	}
	return keys
}

// calleeName returns the bare name of a call's callee.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	default:
		return ""
	}
}

// calleeObject resolves a call's callee to its type-checker object.
func calleeObject(pkg *Package, call *ast.CallExpr) types.Object {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fn]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[fn.Sel]
	default:
		return nil
	}
}

// matchesAny reports whether path equals or is nested under any prefix.
func matchesAny(path string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if path == p || (len(path) > len(p) && path[:len(p)] == p && path[len(p)] == '/') {
			return true
		}
	}
	return false
}
