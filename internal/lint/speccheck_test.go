package lint

import (
	"strings"
	"testing"

	"iocov/internal/sys"
	"iocov/internal/sysspec"
)

// TestSpecCheckTablesClean validates the live standard and extended tables'
// internal consistency directly.
func TestSpecCheckTablesClean(t *testing.T) {
	for _, f := range NewSpecCheck().checkTables() {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestSpecCheckBadFixture runs the dispatch check against a mimic kernel
// with three violations: a bogus literal name, a bogus name reaching emit
// through a forwarding helper, and a real syscall whose argument map drops a
// tracked key.
func TestSpecCheckBadFixture(t *testing.T) {
	sc := &SpecCheck{KernelPaths: []string{"speccheck_bad"}}
	findings := sc.Run(fixtureTarget(t, "speccheck_bad"))
	if len(findings) != 3 {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want 3", len(findings))
	}

	bogus := requireFinding(t, findings, `kernel dispatch emits "bogus_syscall"`)
	if wantLine := fixtureLine(t, "speccheck_bad/bad.go", `"bogus_syscall"`); bogus.Pos.Line != wantLine {
		t.Errorf("bogus_syscall finding at line %d, want %d", bogus.Pos.Line, wantLine)
	}

	// The forwarded name must be flagged at the *call site* that supplied the
	// constant, not at the forwarding helper's emit.
	fwd := requireFinding(t, findings, `kernel dispatch emits "not_a_syscall"`)
	if wantLine := fixtureLine(t, "speccheck_bad/bad.go", `p.forward("not_a_syscall"`); fwd.Pos.Line != wantLine {
		t.Errorf("not_a_syscall finding at line %d, want %d", fwd.Pos.Line, wantLine)
	}

	missing := requireFinding(t, findings, `emit site for "read" omits tracked argument key "count"`)
	if !strings.HasSuffix(missing.Pos.Filename, "bad.go") {
		t.Errorf("missing-key finding filename = %q", missing.Pos.Filename)
	}
}

// TestSpecCheckGoodFixture is the clean mimic: resolvable names and complete
// literal key sets, both direct and forwarded.
func TestSpecCheckGoodFixture(t *testing.T) {
	sc := &SpecCheck{KernelPaths: []string{"speccheck_good"}}
	for _, f := range sc.Run(fixtureTarget(t, "speccheck_good")) {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestSpecCheckErrnoInvariants exercises the table-side errno checks on
// synthetic bad specs (the live tables are clean, so the invariants need
// constructed violations).
func TestSpecCheckErrnoInvariants(t *testing.T) {
	sc := NewSpecCheck()
	bad := &sysspec.Spec{
		Base:     "fake",
		Variants: []string{"fake"},
		Errnos:   []sys.Errno{sys.EIO, sys.EACCES, sys.EIO, sys.OK},
	}
	findings := sc.checkErrnos("test", bad)
	for _, want := range []string{
		"errno universe out of order: EACCES after EIO",
		"errno universe repeats EIO",
		"errno universe contains the OK sentinel",
	} {
		requireFinding(t, findings, want)
	}
}

// TestSpecCheckArgInvariants exercises the table-side argument checks on a
// synthetic spec with an unknown scheme and a bogus variant restriction.
func TestSpecCheckArgInvariants(t *testing.T) {
	sc := NewSpecCheck()
	bad := &sysspec.Spec{
		Base:     "fake",
		Variants: []string{"fake"},
		Args: []sysspec.ArgSpec{
			{Name: "x", Key: "x", Class: sysspec.Numeric, Scheme: "no-such-scheme"},
			{Name: "y", Key: "y", Class: sysspec.Numeric, Scheme: "bytes", Variants: []string{"not_a_variant"}},
		},
	}
	findings := sc.checkArgs("test", bad)
	requireFinding(t, findings, `names unknown scheme "no-such-scheme"`)
	requireFinding(t, findings, `restricted to variant "not_a_variant"`)
}
