// Package alloccheck_bad seeds one hot-path allocation per alloccheck rule;
// the test pins each finding to its line.
package alloccheck_bad

import "fmt"

type item struct {
	k string
	v int
}

type sink interface{ accept(interface{}) }

// Hot carries the receiver-owned storage the clean methods would use.
type Hot struct {
	buf  [8]int
	n    int
	seen map[string]bool
}

// CollectKeys appends into a local slice, which grows on the heap.
//
//iocov:hotpath
func (h *Hot) CollectKeys() []string {
	var out []string
	for k := range h.seen {
		out = append(out, k) // want: append to local
	}
	return out
}

// MakeSlice allocates directly.
//
//iocov:hotpath
func (h *Hot) MakeSlice(n int) []int {
	return make([]int, n) // want: make
}

// NewItem allocates with new.
//
//iocov:hotpath
func NewItem() *item {
	return new(item) // want: new
}

// MapLiteral allocates backing storage for the map.
//
//iocov:hotpath
func MapLiteral() map[string]int {
	return map[string]int{"a": 1} // want: map literal
}

// SliceLiteral allocates backing storage for the slice.
//
//iocov:hotpath
func SliceLiteral() []int {
	return []int{1, 2, 3} // want: slice literal
}

// Escape forces the composite literal onto the heap.
//
//iocov:hotpath
func Escape() *item {
	return &item{k: "x"} // want: address of composite literal
}

// Closure allocates the function value and its captured environment.
//
//iocov:hotpath
func Closure(n int) func() int {
	return func() int { return n } // want: closure
}

// Spawn allocates a goroutine stack.
//
//iocov:hotpath
func (h *Hot) Spawn() {
	go h.MakeSlice(1) // want: goroutine
}

// Concat builds a new string.
//
//iocov:hotpath
func Concat(a, b string) string {
	return a + b // want: string concatenation
}

// ConcatAssign builds a new string on every iteration.
//
//iocov:hotpath
func ConcatAssign(parts []string) string {
	var s string
	for _, p := range parts {
		s += p // want: string concatenation (assign)
	}
	return s
}

// Convert copies the byte slice into a fresh string.
//
//iocov:hotpath
func Convert(b []byte) string {
	return string(b) // want: string conversion
}

// Format goes through fmt's reflection-based formatter.
//
//iocov:hotpath
func Format(v int) string {
	return fmt.Sprintf("%d", v) // want: calls fmt.Sprintf
}

// Box passes a concrete int where the parameter is an interface.
//
//iocov:hotpath
func Box(s sink, v int) {
	s.accept(v) // want: interface boxing
}

// helper is not annotated, but CallsHelper makes it hot-reachable.
func (h *Hot) helper() []int {
	return make([]int, 8) // want: reachable make
}

// CallsHelper pulls helper into the hot set.
//
//iocov:hotpath
func (h *Hot) CallsHelper() []int {
	return h.helper()
}
