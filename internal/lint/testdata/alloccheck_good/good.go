// Package alloccheck_good exercises every allowed hot-path idiom the live
// tree uses; alloccheck must stay silent on all of it.
package alloccheck_good

import (
	"strings"
	"sync/atomic"
)

type sink interface{ accept(int) }

// Fast mirrors the live zero-allocation shapes: fixed inline storage, a
// lazily allocated spill map, and an atomic counter.
type Fast struct {
	buf   [8]int
	n     int
	cache map[string]int
	seq   atomic.Uint64
}

// Fill appends only into the caller-owned scratch buffer.
//
//iocov:hotpath
func Fill(v int, scratch []int) []int {
	if v > 0 {
		scratch = append(scratch, v)
	}
	return append(scratch, 0)
}

// Record spills lazily: the make sits inside a nil guard, so it amortizes
// to zero; the map write itself is allowed.
//
//iocov:hotpath
func (f *Fast) Record(k string, v int) {
	if f.cache == nil {
		f.cache = make(map[string]int, 4)
	}
	f.cache[k] = v
}

// Emit calls through an interface: a checked boundary (the implementation
// carries its own annotation), and the int argument needs no boxing.
//
//iocov:hotpath
func (f *Fast) Emit(s sink) {
	s.accept(f.n)
}

// Push stays within the fixed inline array.
//
//iocov:hotpath
func (f *Fast) Push(v int) {
	if f.n < len(f.buf) {
		f.buf[f.n] = v
		f.n++
	}
}

// Grow appends to receiver-rooted storage: part of the amortized contract,
// same as the caller-owned scratch rule.
//
//iocov:hotpath
func (f *Fast) Grow(extra []int) {
	for range extra {
		f.n++
	}
}

// Stamp uses an atomic method: an external call outside the denylist.
//
//iocov:hotpath
func (f *Fast) Stamp() uint64 {
	return f.seq.Add(1)
}

// Classify calls non-allocating strings helpers and converts numerics.
//
//iocov:hotpath
func Classify(name string, v int64) int {
	if strings.HasPrefix(name, "sys_") {
		return int(uint32(v))
	}
	return 0
}

// rebuild is an acknowledged slow path: traversal stops at the annotation
// even though it allocates freely.
//
//iocov:coldpath
func (f *Fast) rebuild() {
	f.cache = make(map[string]int, f.n)
}

// Reset may call the cold path; the annotation is the boundary.
//
//iocov:hotpath
func (f *Fast) Reset() {
	f.rebuild()
}

// half is hot-reachable and clean.
func half(v int) int { return v / 2 }

// Halve traverses into an unannotated clean helper.
//
//iocov:hotpath
func (f *Fast) Halve() int { return half(f.n) }

// Literal builds a value struct literal: stack-allocated, allowed.
//
//iocov:hotpath
func Literal(k string, v int) [2]int {
	_ = struct {
		k string
		v int
	}{k, v}
	return [2]int{v, v}
}
