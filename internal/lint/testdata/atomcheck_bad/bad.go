// Package atomcheck_bad seeds one mixed atomic/plain access per atomcheck
// rule; the test pins each finding to its line.
package atomcheck_bad

import "sync/atomic"

// counters mixes atomic and plain access to the same fields.
type counters struct {
	hits  int64
	drops uint32
}

// Hit is the atomic side: it puts hits and drops into the atomic set.
func (c *counters) Hit() {
	atomic.AddInt64(&c.hits, 1)
	atomic.StoreUint32(&c.drops, 0)
}

// Snapshot reads hits plainly: a torn read on 32-bit platforms and a data
// race everywhere.
func (c *counters) Snapshot() int64 {
	return c.hits
}

// Reset writes both plainly.
func (c *counters) Reset() {
	c.hits = 0
	c.drops++
}

// generation is a package-level atomic.
var generation uint64

func Bump() {
	atomic.AddUint64(&generation, 1)
}

// Stale reads generation without the atomic load.
func Stale(g uint64) bool {
	return g < generation
}
