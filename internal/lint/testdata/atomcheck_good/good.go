// Package atomcheck_good holds the access patterns atomcheck must stay
// silent on: all-atomic discipline, composite-literal initialization, the
// typed atomic family, and plain fields never touched atomically.
package atomcheck_good

import "sync/atomic"

// counters keeps every access to its atomic fields atomic.
type counters struct {
	hits int64
	// seq uses the typed API: the compiler enforces the discipline, the
	// pass has nothing to add.
	seq atomic.Int64
	// name is plain data, never touched atomically.
	name string
}

// NewCounters initializes hits in a composite literal, which
// happens-before any goroutine can hold the pointer.
func NewCounters() *counters {
	return &counters{hits: 0, name: "root"}
}

func (c *counters) Hit() {
	atomic.AddInt64(&c.hits, 1)
	c.seq.Add(1)
}

func (c *counters) Snapshot() int64 {
	return atomic.LoadInt64(&c.hits) + c.seq.Load()
}

func (c *counters) Name() string { return c.name }

func (c *counters) SetName(n string) { c.name = n }

// generation is package-level and all-atomic.
var generation uint64

func Bump() uint64 {
	return atomic.AddUint64(&generation, 1)
}

func Current() uint64 {
	return atomic.LoadUint64(&generation)
}
