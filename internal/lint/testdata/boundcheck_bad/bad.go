// Package boundcheck_bad holds bounds violations the pass must catch.
package boundcheck_bad

// Unguarded parameter index on a hot path.
//
//iocov:hotpath
func Unguarded(counts []int64, ord int) {
	counts[ord]++ // want: cannot prove
}

// Off-by-one guard: i can equal len(s).
//
//iocov:hotpath
func OffByOne(s []byte) int {
	t := 0
	for i := 0; i <= len(s); i++ {
		t += int(s[i]) // want: cannot prove
	}
	return t
}

// The root is clean but its helper is reachable and dirty.
//
//iocov:hotpath
func RootCallsDirty(words []uint64, i int) {
	dirtyHelper(words, i)
}

func dirtyHelper(words []uint64, i int) {
	words[i/64] |= 1 // want: cannot prove (i may be negative)
}

// A bounds-ok annotation without a reason is itself a finding.
//
//iocov:hotpath
//iocov:bounds-ok
func Reasonless(bs []uint64, i int) {
	bs[i] = 0
}

// A stale bounds-ok: every index here is provable, so the annotation must
// be removed.
//
//iocov:hotpath
//iocov:bounds-ok left over from an earlier version
func Stale(s []int) int {
	t := 0
	for i := range s {
		t += s[i]
	}
	return t
}

// The guard tests one slice but the index goes into another.
//
//iocov:hotpath
func WrongSlice(a, b []int, i int) int {
	if i >= 0 && i < len(a) {
		return b[i] // want: cannot prove
	}
	return 0
}
