// Package boundcheck_good holds hot-path index patterns the pass must
// prove without annotations (plus one justified bounds-ok).
package boundcheck_good

// Classic counting loop over a slice length.
//
//iocov:hotpath
func Sum(s []int64) int64 {
	var t int64
	for i := 0; i < len(s); i++ {
		t += s[i]
	}
	return t
}

// Range loop and array indexing under a folded constant bound.
//
//iocov:hotpath
func Histogram(vals []uint8) [256]int {
	var h [256]int
	for i := range vals {
		h[vals[i]]++ // vals[i] via range rel; h[...] via uint8 type interval
	}
	return h
}

// The unsigned-compare guard covers negative and too-large in one test.
//
//iocov:hotpath
func Dispatch(table []func(), id int) {
	if uint(id) < uint(len(table)) {
		if table[id] != nil {
			table[id]()
		}
	}
}

// A guard on the length itself proves constant indexes.
//
//iocov:hotpath
func FirstByte(s string) byte {
	if len(s) > 0 && s[0] == '/' {
		return s[0]
	}
	return 0
}

// Modulo by the dense table size.
//
//iocov:hotpath
func Stripe(h uint64, stripes *[8]int64) {
	stripes[h%8]++
}

// Map indexes never panic; closures are out of scope.
//
//iocov:hotpath
func Lookup(m map[string]int, key string) int {
	return m[key]
}

// An external invariant the lattice cannot see, properly annotated.
//
//iocov:hotpath
//iocov:bounds-ok ord is a domain ordinal < len(dense) by the caller's layout contract
func Bump(dense []int64, ord int) {
	dense[ord]++
}

// Traversal stops at coldpath boundaries: the dirty index below is
// explicitly out of the hot contract.
//
//iocov:hotpath
func FastWithSlowFallback(s []int, i int) int {
	if uint(i) < uint(len(s)) {
		return s[i]
	}
	return slowFallback(s, i)
}

//iocov:coldpath
func slowFallback(s []int, i int) int {
	if len(s) == 0 {
		return 0
	}
	return s[i%len(s)]
}
