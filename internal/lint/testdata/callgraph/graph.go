// Package callgraph is the call-graph builder's fixture: one example of
// every edge kind (static function, static method, interface dispatch,
// func-value dispatch, go and defer launch sites) plus a mutual-recursion
// cycle for the SCC condensation.
package callgraph

type speaker interface {
	speak() string
}

type dog struct{}

func (dog) speak() string { return "woof" }

type cat struct{}

func (cat) speak() string { return "meow" }

// robot has a speak with a different signature: not an implementer.
type robot struct{}

func (robot) speak(times int) string { return "beep" }

func leaf() int { return 1 }

func helperA() int { return leaf() }

func helperB(d dog) string { return d.speak() }

// viaInterface dispatches through the interface: conservative edges to both
// dog.speak and cat.speak, not robot.speak.
func viaInterface(s speaker) string { return s.speak() }

// viaFuncValue calls a function value: conservative edges to every
// address-taken func with signature func() int — leaf (taken in takeAddr)
// but not helperA (never taken as a value).
func viaFuncValue(f func() int) int { return f() }

func takeAddr() func() int { return leaf }

// even and odd are mutually recursive: one SCC of size two.
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

// launcher has a go site and a defer site.
func launcher() {
	go helperA()
	defer leaf()
	_ = viaInterface(dog{})
}
