// Package determcheck_bad seeds one nondeterminism source per determcheck
// rule; the test pins each finding to its line.
package determcheck_bad

import (
	"fmt"
	"math/rand"
	"time"
)

// Emit is a determinism root reaching every call-level violation.
//
//iocov:deterministic
func Emit(m map[string]int64) []string {
	stamp()
	shuffle()
	go background()
	var keys []string
	var sum float64
	var last string
	for k, n := range m {
		keys = append(keys, k)
		sum += float64(n) / 2
		last = k
		fmt.Println(k)
	}
	_ = sum
	_ = last
	return keys
}

// stamp is reachable from Emit: the wall clock read is flagged here.
func stamp() time.Time { return time.Now() }

// shuffle is reachable from Emit: the global RNG draw is flagged here.
func shuffle() int { return rand.Int() }

func background() {}

// First leaks map order through its return value.
//
//iocov:deterministic
func First(m map[string]bool) string {
	for name := range m {
		return name
	}
	return ""
}
