// Package determcheck_good holds the order-independent idioms determcheck
// must stay silent on: sorted-key iteration, integer accumulation, map
// writes, loop-local work, max selection, washed appends (direct and
// through a module sorter), seeded RNG, and non-wall-clock time use.
package determcheck_good

import (
	"math/rand"
	"sort"
	"time"
)

// Render exercises every allowed shape inside map iterations.
//
//iocov:deterministic
func Render(m map[string]int64) string {
	// Washed append: collected in map order, sorted before use.
	keys := make([]string, 0, len(m))
	var total int64
	max := int64(0)
	hits := make(map[string]int64, len(m))
	for k, n := range m {
		keys = append(keys, k)
		total += n
		if n > max {
			max = n
		}
		hits[k] = n
		scratch := k + "!"
		_ = scratch
	}
	sort.Strings(keys)

	// Float accumulation is fine over a sorted slice.
	var sum float64
	for _, k := range keys {
		sum += float64(m[k]) / float64(total+1)
	}

	// Nested map range with entry-wise writes only.
	groups := map[string]map[string]int64{"a": m}
	counts := make(map[string]int64)
	for _, g := range groups {
		for k, n := range g {
			counts[k] += n
		}
	}

	// delete commutes entry-by-entry.
	for k := range hits {
		if hits[k] == 0 {
			delete(hits, k)
		}
	}

	_ = sum
	_ = max
	return join(keys)
}

// Collect washes its append through a module sorter.
//
//iocov:deterministic
func Collect(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return sortedCopy(out)
}

// sortedCopy is recognized as a sorter because its body calls sort.Strings.
func sortedCopy(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

// Seeded is deterministic: a fixed-seed generator and a duration constant.
//
//iocov:deterministic
func Seeded() (int, time.Duration) {
	r := rand.New(rand.NewSource(42))
	return r.Int(), 3 * time.Second
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}
