// Package domaincheck_bad reproduces the pre-PR-1 BytesScheme.Domain bug
// verbatim: Partitions routes negative values to the "<0" label, but
// Domain() never declares it, so coverage reports computed against the
// domain silently lose the negative partition.
package domaincheck_bad

import "fmt"

const (
	labelZero     = "=0"
	labelNegative = "<0"
)

const maxLog2 = 62

func log2Label(k int) string { return fmt.Sprintf("2^%d", k) }

func log2Bucket(v int64) int {
	k := 0
	for v > 1 {
		v >>= 1
		k++
	}
	return k
}

// BytesScheme is the buggy pre-PR-1 shape.
type BytesScheme struct{}

func (BytesScheme) Scheme() string { return "bytes" }

func (BytesScheme) Partitions(v int64) []string {
	switch {
	case v < 0:
		return []string{labelNegative}
	case v == 0:
		return []string{labelZero}
	default:
		return []string{log2Label(log2Bucket(v))}
	}
}

// Domain is missing labelNegative: the exact bug PR 1 fixed by hand and
// domaincheck now flags mechanically.
func (BytesScheme) Domain() []string {
	out := make([]string, 0, maxLog2+2)
	out = append(out, labelZero)
	for k := 0; k <= maxLog2; k++ {
		out = append(out, log2Label(k))
	}
	return out
}

// seekNames is a constant table: package-level, literal elements, never
// written.
var seekNames = []string{"SEEK_SET", "SEEK_CUR", "SEEK_END"}

// WhenceScheme routes in-range values through the table, so its labels
// never appear as source constants in Partitions — only interval analysis
// over the table can see them.
type WhenceScheme struct{}

func (WhenceScheme) Scheme() string { return "whence" }

func (WhenceScheme) Partitions(v int64) []string {
	if v >= 0 && v < int64(len(seekNames)) {
		return []string{seekNames[v]}
	}
	return []string{"INVALID"}
}

// Domain forgets SEEK_END even though the guard admits index 2.
func (WhenceScheme) Domain() []string {
	return []string{"SEEK_SET", "SEEK_CUR", "INVALID"}
}
