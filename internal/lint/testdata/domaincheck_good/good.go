// Package domaincheck_good is the fixed twin of domaincheck_bad: every
// label Partitions can emit is declared by Domain, so domaincheck must stay
// silent.
package domaincheck_good

import "fmt"

const (
	labelZero     = "=0"
	labelNegative = "<0"
)

const maxLog2 = 62

func log2Label(k int) string { return fmt.Sprintf("2^%d", k) }

func log2Bucket(v int64) int {
	k := 0
	for v > 1 {
		v >>= 1
		k++
	}
	return k
}

// BytesScheme is the post-PR-1 shape with a complete domain.
type BytesScheme struct{}

func (BytesScheme) Scheme() string { return "bytes" }

func (BytesScheme) Partitions(v int64) []string {
	switch {
	case v < 0:
		return []string{labelNegative}
	case v == 0:
		return []string{labelZero}
	default:
		return []string{log2Label(log2Bucket(v))}
	}
}

func (BytesScheme) Domain() []string {
	out := make([]string, 0, maxLog2+3)
	out = append(out, labelNegative, labelZero)
	for k := 0; k <= maxLog2; k++ {
		out = append(out, log2Label(k))
	}
	return out
}

// seekNames is a constant table shared by the whence twin below.
var seekNames = []string{"SEEK_SET", "SEEK_CUR", "SEEK_END"}

// WhenceScheme is clean only if the checker expands the table on both
// sides: Partitions emits its elements through an index, and Domain
// declares them through an append of the same table.
type WhenceScheme struct{}

func (WhenceScheme) Scheme() string { return "whence" }

func (WhenceScheme) Partitions(v int64) []string {
	if v >= 0 && v < int64(len(seekNames)) {
		return []string{seekNames[v]}
	}
	return []string{"INVALID"}
}

func (WhenceScheme) Domain() []string {
	return append(append([]string(nil), seekNames...), "INVALID")
}

// levelNames has one element the guard below can never reach.
var levelNames = []string{"low", "mid", "high", "debug-only"}

// LevelScheme is clean only if the lattice narrows the index to the
// guard's range [0,2]: a whole-table over-approximation would emit
// "debug-only", which Domain deliberately omits.
type LevelScheme struct{}

func (LevelScheme) Scheme() string { return "level" }

func (LevelScheme) Partitions(v int64) []string {
	if v >= 0 && v < 3 {
		return []string{levelNames[v]}
	}
	return []string{"other"}
}

func (LevelScheme) Domain() []string {
	return []string{"low", "mid", "high", "other"}
}
