// Package domaincheck_good is the fixed twin of domaincheck_bad: every
// label Partitions can emit is declared by Domain, so domaincheck must stay
// silent.
package domaincheck_good

import "fmt"

const (
	labelZero     = "=0"
	labelNegative = "<0"
)

const maxLog2 = 62

func log2Label(k int) string { return fmt.Sprintf("2^%d", k) }

func log2Bucket(v int64) int {
	k := 0
	for v > 1 {
		v >>= 1
		k++
	}
	return k
}

// BytesScheme is the post-PR-1 shape with a complete domain.
type BytesScheme struct{}

func (BytesScheme) Scheme() string { return "bytes" }

func (BytesScheme) Partitions(v int64) []string {
	switch {
	case v < 0:
		return []string{labelNegative}
	case v == 0:
		return []string{labelZero}
	default:
		return []string{log2Label(log2Bucket(v))}
	}
}

func (BytesScheme) Domain() []string {
	out := make([]string, 0, maxLog2+3)
	out = append(out, labelNegative, labelZero)
	for k := 0; k <= maxLog2; k++ {
		out = append(out, log2Label(k))
	}
	return out
}
