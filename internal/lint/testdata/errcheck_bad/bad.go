// Package errcheck_bad drops an error return on the floor, which
// errcheck flags; the surrounding calls exercise the documented allowances
// (fmt printers, infallible writers, explicit blank assignment).
package errcheck_bad

import (
	"fmt"
	"os"
	"strings"
)

func drop(f *os.File) {
	f.Close() // the one finding: an error silently dropped
	fmt.Println("done")
	var b strings.Builder
	b.WriteString("x")
	_ = f.Sync()
}
