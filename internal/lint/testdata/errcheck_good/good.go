// Package errcheck_good handles every error return, so errcheck must stay
// silent.
package errcheck_good

import "os"

func clean(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}
