// Package httpcheckbad is a lint fixture: handlers whose error paths
// return without setting a status code, so net/http answers an implicit
// 200 with an empty body.
package httpcheckbad

import (
	"fmt"
	"net/http"
)

type daemon struct {
	busy chan struct{}
}

// handleBad drops the method guard on the floor: the early return never
// touches w.
func handleBad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		return // BAD: silent 200
	}
	fmt.Fprintln(w, "ok")
}

// handleSelect sheds load without telling the client.
func (d *daemon) handleSelect(w http.ResponseWriter, r *http.Request) {
	select {
	case d.busy <- struct{}{}:
	default:
		return // BAD: silent 200 instead of 503
	}
	defer func() { <-d.busy }()
	w.WriteHeader(http.StatusOK)
}

// handleSwitch misses one case.
func handleSwitch(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/miss":
		return // BAD: silent 200 instead of 404
	default:
		w.WriteHeader(http.StatusOK)
	}
}
