// Package httpcheckgood is a lint fixture: every handler error path sets
// an explicit status, directly or through a helper that receives the
// writer.
package httpcheckgood

import (
	"encoding/json"
	"net/http"
)

type daemon struct {
	busy chan struct{}
}

// handleGood answers every path explicitly.
func handleGood(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	switch r.URL.Path {
	case "/miss":
		w.WriteHeader(http.StatusNotFound)
		return
	}
	if err := json.NewEncoder(w).Encode(map[string]int{"ok": 1}); err != nil {
		reject(w, err)
		return
	}
}

// handleSelect sheds load loudly.
func (d *daemon) handleSelect(w http.ResponseWriter, r *http.Request) {
	select {
	case d.busy <- struct{}{}:
	default:
		reject(w, nil)
		return
	}
	defer func() { <-d.busy }()
	w.WriteHeader(http.StatusOK)
}

// reject is an error-path helper: it takes the writer, so callers passing
// it satisfy the rule, and it has no early returns of its own.
func reject(w http.ResponseWriter, err error) {
	msg := "rejected"
	if err != nil {
		msg = err.Error()
	}
	http.Error(w, msg, http.StatusBadRequest)
}

// load returns an error, delegating the response to its caller — exempt.
func load(w http.ResponseWriter, r *http.Request) error {
	if r.ContentLength == 0 {
		return nil
	}
	w.WriteHeader(http.StatusOK)
	return nil
}

// register shows a compliant handler literal.
func register(mux *http.ServeMux) {
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "nope", http.StatusMethodNotAllowed)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
}
