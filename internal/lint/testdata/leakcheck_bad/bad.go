// Package leakcheck_bad seeds one goroutine leak per leakcheck rule; the
// test pins each finding to its line.
package leakcheck_bad

import "time"

func work() {}

func compute() int { return 42 }

// spinner never returns: an unconditional loop with no break or return.
func spinner() {
	for {
		work()
	}
}

// pingpongA and pingpongB recurse into each other with no base case; the
// SCC fixpoint proves neither can return.
func pingpongA() { pingpongB() }

func pingpongB() { pingpongA() }

// LaunchNamed leaks a named goroutine that never returns.
func LaunchNamed() {
	go spinner()
}

// LaunchMutual leaks through mutual recursion: per-function reasoning sees
// a call that "might" return; the component-level fixpoint knows better.
func LaunchMutual() {
	go pingpongA()
}

// LaunchLiteral leaks a closure whose loop has no exit.
func LaunchLiteral() {
	go func() {
		for {
			work()
		}
	}()
}

// LaunchBlocked leaks a closure that parks on an empty select.
func LaunchBlocked() {
	go func() {
		work()
		select {}
	}()
}

// FetchWithTimeout abandons its worker: when the timeout case wins, nothing
// ever receives from ch and the send blocks forever.
func FetchWithTimeout() int {
	ch := make(chan int)
	go func() {
		ch <- compute()
	}()
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Millisecond):
		return -1
	}
}
