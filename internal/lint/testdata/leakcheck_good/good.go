// Package leakcheck_good holds the goroutine idioms leakcheck must stay
// silent on: closed-channel ranges, done-channel and context loops, bounded
// loops, buffered and guaranteed-drained channels, escaping channels, and
// intentionally unbounded goroutines carrying //iocov:bounded-by.
package leakcheck_good

import (
	"context"
	"sync"
	"time"
)

func work() {}

// Pool's workers exit when the jobs channel closes: a range over a channel
// always has the close as its exit path.
func Pool(jobs chan int) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				_ = j
				work()
			}
		}()
	}
	wg.Wait()
}

// Ticker's loop exits through the done case.
func Ticker(done chan struct{}) {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				work()
			case <-done:
				return
			}
		}
	}()
}

// CtxLoop exits when the context is cancelled.
func CtxLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// Bounded's loop condition terminates it.
func Bounded() {
	go func() {
		for i := 0; i < 10; i++ {
			work()
		}
	}()
}

// FetchBuffered is the fixed form of the abandoned-send leak: the buffer
// slot lets the worker's send complete even when the timeout case wins.
func FetchBuffered() int {
	ch := make(chan int, 1)
	go func() { ch <- 7 }()
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Millisecond):
		return -1
	}
}

// FetchBlocking receives unconditionally: the worker's send always pairs.
func FetchBlocking() int {
	ch := make(chan int)
	go func() { ch <- 7 }()
	return <-ch
}

// FetchEscaping hands the channel to its caller, who may drain it later;
// the pass cannot prove abandonment and stays silent.
func FetchEscaping() (chan int, int) {
	ch := make(chan int)
	go func() { ch <- 7 }()
	select {
	case v := <-ch:
		return ch, v
	case <-time.After(time.Millisecond):
		return ch, -1
	}
}

// metricsPump runs for the whole process lifetime by design.
//
//iocov:bounded-by process lifetime: pump runs until exit
func metricsPump() {
	for {
		work()
	}
}

// LaunchAnnotatedDecl launches a goroutine whose declaration acknowledges
// its unbounded lifetime.
func LaunchAnnotatedDecl() {
	go metricsPump()
}

// LaunchAnnotatedSite acknowledges the lifetime at the launch site instead.
func LaunchAnnotatedSite() {
	//iocov:bounded-by process lifetime: background refresher
	go func() {
		for {
			work()
		}
	}()
}
