// Package lockcheck_bad seeds exactly one guard-discipline violation per
// lockcheck rule; the test pins each finding to its line.
package lockcheck_bad

import "sync"

// Counter relies on adjacency inference: mu guards n and last.
type Counter struct {
	name string

	mu   sync.Mutex
	n    int
	last string
}

// ReadNoLock reads a guarded field with no lock held.
func (c *Counter) ReadNoLock() int {
	return c.n // want: read without holding c.mu
}

// WriteNoLock writes a guarded field with no lock held.
func (c *Counter) WriteNoLock(v int) {
	c.n = v * 2 // want: written without holding c.mu
}

// RacyIncrement only locks on one branch, so the increment is unprotected
// on the other.
func (c *Counter) RacyIncrement(b bool) {
	if b {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.n++ // want: not held on every path
}

// DoubleLock takes the same mutex twice: guaranteed self-deadlock.
func (c *Counter) DoubleLock() {
	c.mu.Lock()
	c.mu.Lock() // want: may already be held
	c.n = 0
	c.mu.Unlock()
}

// UnlockFirst releases a mutex that was never taken.
func (c *Counter) UnlockFirst() {
	c.mu.Unlock() // want: not held
}

// Leak returns with the lock still held and no deferred unlock.
func (c *Counter) Leak(v int) {
	c.mu.Lock()
	c.n = v + 1 // want (at exit): lock leak
}

// HalfUnlock pairs the unlock with a lock on only one branch.
func (c *Counter) HalfUnlock(b bool) {
	if b {
		c.mu.Lock()
		c.n = 7
	}
	c.mu.Unlock() // want: not held on every path to this point
}

// DeferNoLock defers an unlock for a lock never taken.
func (c *Counter) DeferNoLock() {
	defer c.mu.Unlock() // want (at exit): deferred Unlock where not held
}

// Total is self-locking: its entry takes c.mu.
func (c *Counter) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// AddAndTotal calls the self-locking Total while already holding the lock.
func (c *Counter) AddAndTotal(v int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += v
	return c.Total() // want: deadlock
}

// incrLocked declares the caller-holds-lock contract.
//
//iocov:locked c.mu
func (c *Counter) incrLocked() {
	c.n++
}

// CallsLockedWithout ignores the //iocov:locked contract.
func (c *Counter) CallsLockedWithout() {
	c.incrLocked() // want: requires c.mu held at entry
}

// badRelease breaks the //iocov:locked contract from the inside: the
// caller's lock is gone when it returns.
//
//iocov:locked c.mu
func (c *Counter) badRelease() {
	c.n--
	c.mu.Unlock() // want (at exit): releases it before returning
}

// Registry opts into explicit annotations, one of which names a field that
// is not a mutex.
type Registry struct {
	mu    sync.RWMutex
	clock sync.Mutex

	entries map[string]int //iocov:guarded-by mu
	misses  int            //iocov:guarded-by nosuch
}

// BumpUnderRead mutates with only the read lock held.
func (r *Registry) BumpUnderRead(k string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.entries[k]++ // want: written without holding r.mu
}

// PeekNoLock reads with neither the write nor the read lock.
func (r *Registry) PeekNoLock(k string) int {
	return r.entries[k] // want: read without holding r.mu (or its read lock)
}

// ReadUnderWrite upgrades wrongly: RLock while the write lock is held.
func (r *Registry) ReadUnderWrite() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mu.RLock() // want: RLock while write lock may be held
	n := len(r.entries)
	r.mu.RUnlock()
	return n
}

// Gauge's helper loses its locked-on-entry inference because one call site
// skips the lock.
type Gauge struct {
	mu sync.Mutex
	v  int
}

func (g *Gauge) bump() {
	g.v++ // want: not all call sites of this helper hold the lock
}

// Careful holds the lock around the helper.
func (g *Gauge) Careful() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.bump()
}

// Careless calls the same helper bare, pessimizing the inference.
func (g *Gauge) Careless() {
	g.bump()
}
