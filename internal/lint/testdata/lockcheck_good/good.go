// Package lockcheck_good exercises every correct locking idiom the live
// tree uses; lockcheck must stay silent on all of it.
package lockcheck_good

import (
	"sort"
	"sync"
)

// Store relies on adjacency inference: mu guards data and touched.
type Store struct {
	name string

	mu      sync.Mutex
	data    map[string]int
	touched int
}

// NewStore writes guarded fields on a freshly allocated, unshared value:
// the fresh-root exemption applies.
func NewStore(name string) *Store {
	s := &Store{name: name}
	s.data = make(map[string]int)
	s.touched = 0
	return s
}

// Set uses the canonical lock/defer-unlock pairing.
func (s *Store) Set(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[k] = v
	s.touched++
}

// Get unlocks explicitly on both the early-return and fall-through paths.
func (s *Store) Get(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.data[k]
	if !ok {
		s.mu.Unlock()
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

// bump is inferred locked-on-entry: every static call site holds s.mu.
func (s *Store) bump(k string) {
	s.data[k]++
}

// bumpAll and bumpOne are mutually recursive; the optimistic fixpoint keeps
// both locked-on-entry because the only external caller holds the lock.
func (s *Store) bumpAll(keys []string) {
	if len(keys) == 0 {
		return
	}
	s.bumpOne(keys[0], keys[1:])
}

func (s *Store) bumpOne(k string, rest []string) {
	s.data[k]++
	s.bumpAll(rest)
}

// Touch drives the inferred helpers under the lock.
func (s *Store) Touch(keys []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		s.bump(k)
	}
	s.bumpAll(keys)
}

// sortLocked declares its contract; the sort closure reads guarded state
// under the caller's lock.
//
//iocov:locked s.mu
func (s *Store) sortLocked(keys []string) {
	sort.Slice(keys, func(i, j int) bool {
		return s.data[keys[i]] < s.data[keys[j]]
	})
}

// Keys snapshots and sorts entirely under the lock.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	s.sortLocked(out)
	return out
}

// Stats pairs reads with the read lock and writes with the write lock.
type Stats struct {
	rw     sync.RWMutex
	counts map[string]int
}

// Hit takes the write lock for the mutation.
func (t *Stats) Hit(k string) {
	t.rw.Lock()
	t.counts[k]++
	t.rw.Unlock()
}

// Snapshot reads under RLock only.
func (t *Stats) Snapshot() map[string]int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	out := make(map[string]int, len(t.counts))
	for k, v := range t.counts {
		out[k] = v
	}
	return out
}

// Worker's blank line ends the guarded group: results is deliberately
// outside mu's protection (set once before Run).
type Worker struct {
	mu    sync.Mutex
	queue []string

	results map[string]int
}

// Enqueue mutates the guarded slice under the lock.
func (w *Worker) Enqueue(k string) {
	w.mu.Lock()
	w.queue = append(w.queue, k)
	w.mu.Unlock()
}

// Results reads the unguarded group without a lock: no finding.
func (w *Worker) Results() map[string]int {
	return w.results
}

// Run's goroutine body starts with no locks and takes its own.
func (w *Worker) Run() {
	go func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		w.queue = w.queue[:0]
	}()
}
