package reprorec

func fact(n int) int {
	if n <= 1 {
		return 1
	}
	r := fact(n - 1)
	return n * r
}
