package reprorel

func consume(s []byte, i, n int) byte {
	var b byte
	if i < len(s) {
		for j := 0; j < n; j++ {
			i++
			b = s[0]
		}
	}
	return b
}
