// Package shardcheck_bad violates the shard-determinism contract in every
// way shardcheck detects: package-level writes, wall-clock reads, and the
// shared global RNG.
package shardcheck_bad

import (
	"math/rand"
	"time"
)

var counter int64

var cache = map[string]int{}

func work(shard int) int64 {
	counter++
	cache["last"] = shard
	started := time.Now().UnixNano()
	return counter + started + rand.Int63()
}

//iocov:shared-ok
var lazily map[string]int

func memo(k string, v int) {
	if lazily == nil {
		lazily = map[string]int{}
	}
	lazily[k] = v
}
