// Package shardcheck_good is deterministic per shard: read-only package
// tables, seed-derived per-item generators, and no wall clock — the pattern
// the worker paths must follow.
package shardcheck_good

import "math/rand"

// weights is package-level but only ever read.
var weights = []int{3, 2, 1}

func work(seed int64, shard int) int64 {
	rng := rand.New(rand.NewSource(seed + int64(shard)))
	total := int64(0)
	for _, w := range weights {
		total += rng.Int63n(int64(w) + 1)
	}
	return total
}
