// Package shardcheck_good is deterministic per shard: read-only package
// tables, seed-derived per-item generators, and no wall clock — the pattern
// the worker paths must follow.
package shardcheck_good

import "math/rand"

// weights is package-level but only ever read.
var weights = []int{3, 2, 1}

func work(seed int64, shard int) int64 {
	rng := rand.New(rand.NewSource(seed + int64(shard)))
	total := int64(0)
	for _, w := range weights {
		total += rng.Int63n(int64(w) + 1)
	}
	return total
}

// protoOnce guards the one-time construction of proto; the write below is
// sanctioned because it happens once and derives only from a constant.
//
//iocov:shared-ok latch for the one-time proto construction; flips false->true exactly once
var protoOnce bool

//iocov:shared-ok written once under protoOnce; value derives only from the constant table
var proto []int

func sharedProto() []int {
	if !protoOnce {
		proto = []int{1, 2, 3}
		protoOnce = true
	}
	return proto
}
