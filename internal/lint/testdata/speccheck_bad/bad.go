// Package speccheck_bad mimics the kernel dispatch with three spec
// violations: a directly emitted syscall name no table resolves, a name
// reaching emit through a forwarding helper (the openCommon pattern), and a
// real syscall whose emit site omits a tracked argument key.
package speccheck_bad

type errno int

type proc struct{}

// emit mirrors the kernel's signature: name, path, strings, args, ret, err.
func (p *proc) emit(name, path string, strs map[string]string, args map[string]int64, ret int64, err errno) {
}

// doBogus emits a literal name outside every sysspec table.
func (p *proc) doBogus() {
	p.emit("bogus_syscall", "", nil, map[string]int64{"fd": 3}, 0, 0)
}

// forward is the openCommon pattern: the emitted name arrives as a
// parameter, so speccheck must propagate constants from call sites.
func (p *proc) forward(name string, fd int) (int, errno) {
	p.emit(name, "", nil, map[string]int64{"fd": int64(fd)}, 0, 0)
	return fd, 0
}

func (p *proc) caller() {
	p.forward("not_a_syscall", 3)
}

// badRead emits a real syscall but drops the tracked "count" key from its
// argument map.
func (p *proc) badRead(fd int) {
	p.emit("read", "", nil, map[string]int64{"fd": int64(fd)}, 0, 0)
}
