// Package speccheck_good mimics a clean kernel dispatch: every emitted name
// resolves in the sysspec tables and every literal argument map carries the
// tracked keys, both directly and through a forwarding helper.
package speccheck_good

type errno int

type proc struct{}

func (p *proc) emit(name, path string, strs map[string]string, args map[string]int64, ret int64, err errno) {
}

func (p *proc) read(fd int, count int) {
	p.emit("read", "", nil, map[string]int64{"fd": int64(fd), "count": int64(count)}, 0, 0)
}

func (p *proc) forward(name string, count int64, pos int64) {
	p.emit(name, "", nil, map[string]int64{"fd": 3, "count": count, "pos": pos}, 0, 0)
}

func (p *proc) pread64(count, pos int64) {
	p.forward("pread64", count, pos)
}
