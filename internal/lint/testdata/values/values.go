// Package values is the value-analysis golden fixture: TestValuesGolden
// dumps the interval of every probe() argument and the proof status of
// every index expression, comparing against values_golden.txt.
package values

// probe is the golden test's observation point: each argument's interval
// at the call site is recorded.
func probe(vs ...int) {}

// names is a constant table: initialized with string constants and never
// written, so its length (4) is statically known.
var names = []string{"a", "b", "c", "d"}

// leaked is NOT a constant table: mutated by poison below.
var leaked = []string{"x", "y"}

func poison() { leaked[0] = "z" }

func constants() {
	x := 3
	probe(x) // [3,3]
	x++
	probe(x) // [4,4]
	y := x * 2
	probe(y) // [8,8]
	z := y - x
	probe(z) // [4,4]
}

func branches(n int) {
	if n > 10 {
		probe(n) // [11,+inf]
	} else {
		probe(n) // [-inf,10]
	}
	if n >= 0 && n < 4 {
		probe(n) // [0,3]
		_ = names[n]
	}
	if !(n < 0) {
		probe(n) // [0,+inf]
	}
}

func loops(a [10]int) {
	for i := 0; i < 10; i++ {
		probe(i) // [0,9]
		_ = a[i]
	}
	k := 0
	for k <= 62 {
		probe(k) // [0,62]
		k++
	}
	probe(k) // [63,63]
}

func sliceLoop(s []int) {
	for i := 0; i < len(s); i++ {
		_ = s[i]     // proven via i <= len(s)-1
		_ = s[i+1]   // NOT proven: i+1 can be len(s)
	}
	for j := range s {
		_ = s[j] // proven via range binding
	}
}

func unsignedGuard(dict []string, id uint64) {
	if id != 0 {
		if uint(id) <= uint(len(dict)) {
			_ = dict[id-1] // proven: id in [1, len(dict)]
		}
	}
}

func conversions(b byte, w uint16) {
	x := int(b)
	probe(x) // [0,255]
	y := int(w) / 4
	probe(y) // [0,16383]
	z := int(int8(x)) // lossy: x may exceed int8
	probe(z)          // [-128,127]
}

func masks(h uint64, s string) {
	i := int(h % 8)
	probe(i) // [0,7]
	var t [8]int
	_ = t[i] // proven
	j := int(h) & 63
	probe(j) // [0,63]
	for p := 0; p < len(s); p++ {
		_ = s[p] // proven
	}
}

// small returns one of two constants: callers see [1,2] through the
// interprocedural summary.
func small(flag bool) int {
	if flag {
		return 2
	}
	return 1
}

func summaries(flag bool) {
	v := small(flag)
	probe(v) // [1,2]
	probe(len(names)) // [4,4]
	probe(len(leaked)) // [0,+inf] — mutated, not a constant table
}

func tableIndex(v int) {
	if v >= 0 && v < len(names) {
		_ = names[v] // proven: constant table length folds
	}
	if v >= 0 && v < len(leaked) {
		_ = leaked[v] // NOT proven: len(leaked) unknown
	}
}

func shortCircuit(v string, ss []string) {
	if len(v) > 0 && v[0] == '/' {
		_ = v[0] // proven inside the body too
	}
	if v[0] == '/' && len(v) > 0 {
		// NOT proven: the index evaluates before the length guard
		_ = v
	}
	for _, s := range ss {
		if len(s) > 2 || s[1] == 'x' { // NOT proven: || false-edge gives len<=2, not >1
			continue
		}
		_ = s
	}
	if len(v) >= 2 {
		probe(len(v)) // [2,+inf]
		_ = v[1]      // proven via length lower bound
	}
}

func madeLens(n int) {
	buf := make([]byte, 16)
	probe(len(buf)) // [16,16]
	_ = buf[15]     // proven
	lit := []int{1, 2, 3}
	_ = lit[2] // proven
	if n >= 0 && n < 16 {
		_ = buf[n] // proven via make length
	}
}

func accumulate(s []byte) {
	total := 0
	for i := range s {
		if s[i] > 0 {
			total++
		}
	}
	probe(total) // [0,+inf] — widened
}
