// Package wirecheck_good holds a miniature wire format whose decoders
// mirror the encoder exactly and observe the allocation-budget and
// dictionary-retention rules: wirecheck must stay silent.
package wirecheck_good

import "errors"

var errShort = errors.New("short read")
var errBad = errors.New("bad value")

const (
	maxStr   = 1 << 10
	maxEvent = 1 << 12
	maxDict  = 1 << 8
)

type KV struct{ K, V string }

type Event struct {
	Seq   uint64
	Pid   uint64
	Name  string
	Strs  []KV
	Ret   int64
	Errno uint64
}

type Writer struct {
	version int
	prevSeq uint64
	buf     []byte
}

func (w *Writer) uvarint(v uint64) {
	for v >= 0x80 {
		w.buf = append(w.buf, byte(v)|0x80)
		v >>= 7
	}
	w.buf = append(w.buf, byte(v))
}

func (w *Writer) varint(v int64) {
	w.uvarint(uint64(v<<1) ^ uint64(v>>63))
}

func (w *Writer) str(s string) {
	w.uvarint(0)
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *Writer) Emit(ev Event) {
	if w.version >= 2 {
		w.varint(int64(ev.Seq - w.prevSeq))
		w.prevSeq = ev.Seq
	} else {
		w.uvarint(ev.Seq)
	}
	w.uvarint(ev.Pid)
	w.str(ev.Name)
	w.uvarint(uint64(len(ev.Strs)))
	for _, kv := range ev.Strs {
		w.str(kv.K)
		w.str(kv.V)
	}
	w.varint(ev.Ret)
	w.uvarint(ev.Errno)
}

// ---------------------------------------------------------------------------
// Decoder 1: streaming parser, faithful mirror.

type Parser struct {
	version int
	seq     uint64
	evBytes int
	data    []byte
	pos     int
	dict    []string
}

func (p *Parser) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		p.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
	}
	return 0, errShort
}

func (p *Parser) varint() (int64, error) {
	u, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

func (p *Parser) str() (string, error) {
	id, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if id > 0 {
		if id > uint64(len(p.dict)) {
			return "", errBad
		}
		return p.dict[id-1], nil
	}
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStr {
		return "", errBad
	}
	if p.evBytes += int(n); p.evBytes > maxEvent {
		return "", errBad
	}
	buf := make([]byte, n)
	if copy(buf, p.data[p.pos:]) < int(n) {
		return "", errShort
	}
	p.pos += int(n)
	s := string(buf)
	if len(p.dict) < maxDict {
		p.dict = append(p.dict, s)
	}
	return s, nil
}

func (p *Parser) Next() (Event, error) {
	var ev Event
	if p.version >= 2 {
		d, err := p.varint()
		if err != nil {
			return ev, err
		}
		p.seq += uint64(d)
		ev.Seq = p.seq
	} else {
		s, err := p.uvarint()
		if err != nil {
			return ev, err
		}
		ev.Seq = s
	}
	var err error
	if ev.Pid, err = p.uvarint(); err != nil {
		return ev, err
	}
	if ev.Name, err = p.str(); err != nil {
		return ev, err
	}
	nStrs, err := p.uvarint()
	if err != nil {
		return ev, err
	}
	for i := uint64(0); i < nStrs; i++ {
		k, err := p.str()
		if err != nil {
			return ev, err
		}
		v, err := p.str()
		if err != nil {
			return ev, err
		}
		ev.Strs = append(ev.Strs, KV{k, v})
	}
	if ev.Ret, err = p.varint(); err != nil {
		return ev, err
	}
	if ev.Errno, err = p.uvarint(); err != nil {
		return ev, err
	}
	return ev, nil
}

// ---------------------------------------------------------------------------
// Decoder 2: batch decoder, faithful mirror.

type Batch struct {
	version int
	seq     uint64
	evBytes int
	data    []byte
	pos     int
	dict    []string
}

func (b *Batch) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for b.pos < len(b.data) {
		c := b.data[b.pos]
		b.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
	}
	return 0, errShort
}

func (b *Batch) varint() (int64, error) {
	u, err := b.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

func (b *Batch) str() (string, error) {
	id, err := b.uvarint()
	if err != nil {
		return "", err
	}
	if id > 0 {
		if id > uint64(len(b.dict)) {
			return "", errBad
		}
		return b.dict[id-1], nil
	}
	n, err := b.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStr {
		return "", errBad
	}
	if b.evBytes += int(n); b.evBytes > maxEvent {
		return "", errBad
	}
	buf := make([]byte, n)
	if copy(buf, b.data[b.pos:]) < int(n) {
		return "", errShort
	}
	b.pos += int(n)
	s := string(buf)
	if len(b.dict) < maxDict {
		b.dict = append(b.dict, s)
	}
	return s, nil
}

func (b *Batch) Next() (Event, error) {
	var ev Event
	if b.version >= 2 {
		d, err := b.varint()
		if err != nil {
			return ev, err
		}
		b.seq += uint64(d)
		ev.Seq = b.seq
	} else {
		s, err := b.uvarint()
		if err != nil {
			return ev, err
		}
		ev.Seq = s
	}
	var err error
	if ev.Pid, err = b.uvarint(); err != nil {
		return ev, err
	}
	if ev.Name, err = b.str(); err != nil {
		return ev, err
	}
	nStrs, err := b.uvarint()
	if err != nil {
		return ev, err
	}
	for i := uint64(0); i < nStrs; i++ {
		k, err := b.str()
		if err != nil {
			return ev, err
		}
		v, err := b.str()
		if err != nil {
			return ev, err
		}
		ev.Strs = append(ev.Strs, KV{k, v})
	}
	if ev.Ret, err = b.varint(); err != nil {
		return ev, err
	}
	if ev.Errno, err = b.uvarint(); err != nil {
		return ev, err
	}
	return ev, nil
}

// declaredFormat admits only implemented versions.
func declaredFormat(h string) int {
	switch h {
	case "":
		return 0
	case "1":
		return 1
	case "2":
		return 2
	default:
		return -1
	}
}
