package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"sort"
	"strings"
)

// This file is the value-analysis layer of the lint engine: def-use chains
// plus a constant/interval-propagation lattice solved over the CFG
// (cfg.go) by the worklist engine (dataflow.go), with branch refinement
// along the Cond/TrueSucc/FalseSucc edges and interprocedural return
// summaries seeded through the PR 7 call graph. wirecheck uses it to prove
// wire-declared lengths are capped before they size allocations,
// boundcheck to prove hot-path index expressions in-bounds, and
// domaincheck to prove indexed label-table returns stay inside declared
// domains.
//
// The lattice tracks, per function:
//
//   - an integer interval [lo, hi] (either bound may be infinite) for every
//     local, parameter, and receiver-field reference that is not address-
//     taken or captured by a closure;
//   - symbolic length relations "x <= len(s) + delta" connecting an integer
//     reference to a slice/string reference, which is how `i < len(s)` and
//     `uint(id) < uint(len(dict))` guards prove indexes whose slice length
//     is unknown;
//
// joined with pointwise interval union / relation intersection, and widened
// at loop heads by snapping growing bounds to the function's constant
// landmarks (dataflow.go's widener hook), so counting loops converge to
// their true guard-derived bounds instead of iterating forever.
//
// Soundness choices: receiver-field facts die at every function call (any
// callee may mutate the receiver); facts about one field reference kill
// sibling references to the same field through other bases (aliasing);
// address-taken and closure-captured variables are never tracked; unsigned
// 64-bit values get an infinite upper bound (they exceed int64); `int` is
// modeled as 64-bit, matching every platform this repository targets.

// ---------------------------------------------------------------------------
// Intervals

// interval is a signed integer range [lo, hi]; loInf/hiInf mark the bound
// as -inf/+inf (the lo/hi fields are then ignored). lo > hi with finite
// bounds is the empty interval (bottom: dead code / infeasible path).
type interval struct {
	lo, hi       int64
	loInf, hiInf bool
}

func ivTop() interval               { return interval{loInf: true, hiInf: true} }
func ivConst(c int64) interval      { return interval{lo: c, hi: c} }
func ivRange(lo, hi int64) interval { return interval{lo: lo, hi: hi} }
func ivAtLeast(lo int64) interval   { return interval{lo: lo, hiInf: true} }
func (iv interval) isTop() bool     { return iv.loInf && iv.hiInf }
func (iv interval) empty() bool     { return !iv.loInf && !iv.hiInf && iv.lo > iv.hi }
func (iv interval) isConst() (int64, bool) {
	if !iv.loInf && !iv.hiInf && iv.lo == iv.hi {
		return iv.lo, true
	}
	return 0, false
}

// contains reports whether every value of o lies in iv.
func (iv interval) contains(o interval) bool {
	if o.empty() {
		return true
	}
	if iv.empty() {
		return false
	}
	loOK := iv.loInf || (!o.loInf && o.lo >= iv.lo)
	hiOK := iv.hiInf || (!o.hiInf && o.hi <= iv.hi)
	return loOK && hiOK
}

func (iv interval) join(o interval) interval {
	if iv.empty() {
		return o
	}
	if o.empty() {
		return iv
	}
	out := interval{}
	if iv.loInf || o.loInf {
		out.loInf = true
	} else {
		out.lo = min64(iv.lo, o.lo)
	}
	if iv.hiInf || o.hiInf {
		out.hiInf = true
	} else {
		out.hi = max64(iv.hi, o.hi)
	}
	return out
}

func (iv interval) meet(o interval) interval {
	if iv.empty() || o.empty() {
		return interval{lo: 1, hi: 0}
	}
	out := interval{}
	switch {
	case iv.loInf && o.loInf:
		out.loInf = true
	case iv.loInf:
		out.lo = o.lo
	case o.loInf:
		out.lo = iv.lo
	default:
		out.lo = max64(iv.lo, o.lo)
	}
	switch {
	case iv.hiInf && o.hiInf:
		out.hiInf = true
	case iv.hiInf:
		out.hi = o.hi
	case o.hiInf:
		out.hi = iv.hi
	default:
		out.hi = min64(iv.hi, o.hi)
	}
	return out
}

// addConst shifts both bounds by c, saturating to infinity on overflow.
func (iv interval) addConst(c int64) interval {
	out := iv
	if !iv.loInf {
		if v, ok := satAdd(iv.lo, c); ok {
			out.lo = v
		} else {
			out.loInf = true
		}
	}
	if !iv.hiInf {
		if v, ok := satAdd(iv.hi, c); ok {
			out.hi = v
		} else {
			out.hiInf = true
		}
	}
	return out
}

// add is full interval addition.
func (iv interval) add(o interval) interval {
	if iv.empty() || o.empty() {
		return interval{lo: 1, hi: 0}
	}
	out := interval{loInf: iv.loInf || o.loInf, hiInf: iv.hiInf || o.hiInf}
	if !out.loInf {
		if v, ok := satAdd(iv.lo, o.lo); ok {
			out.lo = v
		} else {
			out.loInf = true
		}
	}
	if !out.hiInf {
		if v, ok := satAdd(iv.hi, o.hi); ok {
			out.hi = v
		} else {
			out.hiInf = true
		}
	}
	return out
}

func (iv interval) neg() interval {
	out := interval{loInf: iv.hiInf, hiInf: iv.loInf}
	if !out.loInf {
		if iv.hi == math.MinInt64 {
			out.loInf = true
		} else {
			out.lo = -iv.hi
		}
	}
	if !out.hiInf {
		if iv.lo == math.MinInt64 {
			out.hiInf = true
		} else {
			out.hi = -iv.lo
		}
	}
	return out
}

func (iv interval) String() string {
	if iv.empty() {
		return "[empty]"
	}
	lo, hi := "-inf", "+inf"
	if !iv.loInf {
		lo = fmt.Sprintf("%d", iv.lo)
	}
	if !iv.hiInf {
		hi = fmt.Sprintf("%d", iv.hi)
	}
	return fmt.Sprintf("[%s,%s]", lo, hi)
}

func satAdd(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// typeInterval is the coarsest sound interval for a Go type. Unsigned
// 64-bit kinds get [0, +inf) because their values exceed the signed model;
// int is modeled as 64 bits.
func typeInterval(t types.Type) interval {
	if t == nil {
		return ivTop()
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return ivTop()
	}
	switch b.Kind() {
	case types.Int8:
		return ivRange(-128, 127)
	case types.Int16:
		return ivRange(math.MinInt16, math.MaxInt16)
	case types.Int32:
		return ivRange(math.MinInt32, math.MaxInt32)
	case types.Int, types.Int64, types.UntypedInt:
		return ivRange(math.MinInt64, math.MaxInt64)
	case types.Uint8:
		return ivRange(0, math.MaxUint8)
	case types.Uint16:
		return ivRange(0, math.MaxUint16)
	case types.Uint32:
		return ivRange(0, math.MaxUint32)
	case types.Uint, types.Uint64, types.Uintptr:
		return ivAtLeast(0)
	default:
		return ivTop()
	}
}

// ---------------------------------------------------------------------------
// References and facts

// vref names one trackable storage location: a plain variable (field nil)
// or base.field where base is a local/parameter/receiver variable.
type vref struct {
	base  types.Object
	field types.Object
}

func (r vref) String() string {
	if r.field != nil {
		return r.base.Name() + "." + r.field.Name()
	}
	return r.base.Name()
}

// relKey is one symbolic length relation: x <= len(s) + delta.
type relKey struct {
	x, s vref
}

// valueFact is the lattice element: intervals per reference, symbolic
// length relations, and length intervals (what is known about len(s)
// itself, e.g. after `if len(v) > 0`). A reference absent from vals is at
// its type interval; one absent from lens has length [0,+inf).
type valueFact struct {
	an   *funcAnalysis
	vals map[vref]interval
	rels map[relKey]int64
	lens map[vref]interval
}

func newValueFact(an *funcAnalysis) *valueFact {
	return &valueFact{
		an:   an,
		vals: map[vref]interval{},
		rels: map[relKey]int64{},
		lens: map[vref]interval{},
	}
}

// anyLen is the absent-key length fact.
func anyLen() interval { return ivAtLeast(0) }

// Join implements Fact: pointwise interval union over shared keys (a key
// missing on one side is at its type interval there, so the union is the
// type interval: drop it), relation intersection keeping the weaker delta.
func (f *valueFact) Join(other Fact) Fact {
	o := other.(*valueFact)
	out := newValueFact(f.an)
	for r, a := range f.vals {
		if b, ok := o.vals[r]; ok {
			j := a.join(b)
			if !j.contains(f.an.refTypeInterval(r)) {
				out.vals[r] = j
			}
		}
	}
	for k, d1 := range f.rels {
		if d2, ok := o.rels[k]; ok {
			out.rels[k] = max64(d1, d2)
		}
	}
	for r, a := range f.lens {
		if b, ok := o.lens[r]; ok {
			j := a.join(b)
			if !j.contains(anyLen()) {
				out.lens[r] = j
			}
		}
	}
	return out
}

// Equal implements Fact.
func (f *valueFact) Equal(other Fact) bool {
	o := other.(*valueFact)
	if len(f.vals) != len(o.vals) || len(f.rels) != len(o.rels) || len(f.lens) != len(o.lens) {
		return false
	}
	for r, a := range f.vals {
		if b, ok := o.vals[r]; !ok || a != b {
			return false
		}
	}
	for k, d := range f.rels {
		if d2, ok := o.rels[k]; !ok || d != d2 {
			return false
		}
	}
	for r, a := range f.lens {
		if b, ok := o.lens[r]; !ok || a != b {
			return false
		}
	}
	return true
}

// Clone implements Fact.
func (f *valueFact) Clone() Fact {
	out := &valueFact{
		an:   f.an,
		vals: make(map[vref]interval, len(f.vals)),
		rels: make(map[relKey]int64, len(f.rels)),
		lens: make(map[vref]interval, len(f.lens)),
	}
	for r, iv := range f.vals {
		out.vals[r] = iv
	}
	for k, d := range f.rels {
		out.rels[k] = d
	}
	for r, iv := range f.lens {
		out.lens[r] = iv
	}
	return out
}

// Widen implements the widener hook: a bound still moving after repeated
// visits of a loop head snaps outward to the function's constant landmarks
// (or to infinity past the last one), bounding the lattice chains that
// incrementing counters would otherwise climb forever.
func (f *valueFact) Widen(prev Fact) Fact {
	p := prev.(*valueFact)
	widenMap(f.an, f.vals, p.vals)
	widenMap(f.an, f.lens, p.lens)
	return f
}

func widenMap(an *funcAnalysis, cur, prev map[vref]interval) {
	for r, nv := range cur {
		ov, ok := prev[r]
		if !ok {
			continue
		}
		if !nv.loInf && (ov.loInf || nv.lo < ov.lo) {
			if lm, ok := an.snapDown(nv.lo); ok {
				nv.lo = lm
			} else {
				nv.loInf = true
			}
		}
		if !nv.hiInf && (ov.hiInf || nv.hi > ov.hi) {
			if lm, ok := an.snapUp(nv.hi); ok {
				nv.hi = lm
			} else {
				nv.hiInf = true
			}
		}
		cur[r] = nv
	}
}

// lookup returns the reference's interval, falling back to its type range.
func (f *valueFact) lookup(r vref) interval {
	if iv, ok := f.vals[r]; ok {
		return iv
	}
	return f.an.refTypeInterval(r)
}

func (f *valueFact) setVal(r vref, iv interval) {
	if iv.contains(f.an.refTypeInterval(r)) {
		delete(f.vals, r)
		return
	}
	f.vals[r] = iv
}

func (f *valueFact) meetVal(r vref, iv interval) {
	f.setVal(r, f.lookup(r).meet(iv))
}

// dropRels removes every relation mentioning r on either side.
func (f *valueFact) dropRels(r vref) {
	for k := range f.rels {
		if k.x == r || k.s == r {
			delete(f.rels, k)
		}
	}
}

// dropRelsX removes relations where r is the bounded integer.
func (f *valueFact) dropRelsX(r vref) {
	for k := range f.rels {
		if k.x == r {
			delete(f.rels, k)
		}
	}
}

// shiftRels rebinds r's relations after r = r + c: x <= len(s)+d becomes
// x_new <= len(s) + d + c.
func (f *valueFact) shiftRels(r vref, c int64) {
	for k, d := range f.rels {
		if k.x == r {
			if nd, ok := satAdd(d, c); ok {
				f.rels[k] = nd
			} else {
				delete(f.rels, k)
			}
		}
	}
}

// killFieldFacts drops every fact involving a field reference: called at
// function-call boundaries, where any callee may mutate reachable struct
// state.
func (f *valueFact) killFieldFacts() {
	for r := range f.vals {
		if r.field != nil {
			delete(f.vals, r)
		}
	}
	for k := range f.rels {
		if k.x.field != nil || k.s.field != nil {
			delete(f.rels, k)
		}
	}
	for r := range f.lens {
		if r.field != nil {
			delete(f.lens, r)
		}
	}
}

// killFieldAliases drops facts about other references to the same field
// (base-aliasing: a write through one base invalidates siblings).
func (f *valueFact) killFieldAliases(r vref) {
	if r.field == nil {
		return
	}
	for o := range f.vals {
		if o.field == r.field && o != r {
			delete(f.vals, o)
		}
	}
	for k := range f.rels {
		if (k.x.field == r.field && k.x != r) || (k.s.field == r.field && k.s != r) {
			delete(f.rels, k)
		}
	}
	for o := range f.lens {
		if o.field == r.field && o != r {
			delete(f.lens, o)
		}
	}
}

// ---------------------------------------------------------------------------
// Per-function analysis

// funcAnalysis is the solved value analysis of one function body.
type funcAnalysis struct {
	eng       *valueEngine
	pkg       *Package
	decl      *ast.FuncDecl
	cfg       *CFG
	facts     []Fact
	landmarks []int64
	skip      map[types.Object]bool
}

// analysisOf builds (or returns the cached) value analysis for a declared
// function body. Returns nil for body-less declarations.
func (e *valueEngine) analysisOf(pkg *Package, decl *ast.FuncDecl) *funcAnalysis {
	if decl == nil || decl.Body == nil {
		return nil
	}
	if an, ok := e.analyses[decl]; ok {
		return an
	}
	an := &funcAnalysis{eng: e, pkg: pkg, decl: decl, skip: map[types.Object]bool{}}
	// Reserve the slot first: a recursive summary query for this same
	// function during solving must not rebuild it (summaryOf's inProgress
	// guard handles the interval; this guards the analysis memo).
	e.analyses[decl] = an
	an.collectSkips()
	an.collectLandmarks()
	an.cfg = BuildCFG(decl.Body)
	an.facts = SolveForwardEdges(an.cfg, newValueFact(an), an.transfer, an.refineEdge)
	return an
}

// collectSkips marks variables the lattice must not track: address-taken
// locals and anything referenced inside a closure (the closure body may
// run at any time and mutate them).
func (an *funcAnalysis) collectSkips() {
	info := an.pkg.Info
	ast.Inspect(an.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				switch op := unparen(x.X).(type) {
				case *ast.Ident:
					// &x aliases everything about x.
					if obj := info.ObjectOf(op); obj != nil {
						an.skip[obj] = true
					}
				case *ast.SelectorExpr:
					// &x.f aliases the field (through any base); the base's
					// other fields stay trackable.
					if obj := info.ObjectOf(op.Sel); obj != nil {
						an.skip[obj] = true
					}
				case *ast.IndexExpr:
					// &x.f[i] / &x[i] addresses an element; tracked facts
					// are integer fields and slice lengths, which an
					// element pointer cannot reach.
				default:
					if id := baseIdent(x.X); id != nil {
						if obj := info.ObjectOf(id); obj != nil {
							an.skip[obj] = true
						}
					}
				}
			}
		case *ast.FuncLit:
			ast.Inspect(x.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						an.skip[obj] = true
					}
				}
				return true
			})
			return false
		}
		return true
	})
}

// collectLandmarks gathers the widening targets: every folded integer
// constant in the body, each offset by -1/0/+1 so loop fixpoints like
// "head sees counter == bound+1" land exactly.
func (an *funcAnalysis) collectLandmarks() {
	set := map[int64]bool{-1: true, 0: true, 1: true}
	ast.Inspect(an.decl.Body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := an.pkg.Info.Types[e]
		if !ok || tv.Value == nil {
			return true
		}
		if c, ok := constInt64(tv.Value); ok {
			set[c] = true
			if v, ok := satAdd(c, -1); ok {
				set[v] = true
			}
			if v, ok := satAdd(c, 1); ok {
				set[v] = true
			}
		}
		return true
	})
	an.landmarks = make([]int64, 0, len(set))
	for c := range set {
		an.landmarks = append(an.landmarks, c)
	}
	sort.Slice(an.landmarks, func(i, j int) bool { return an.landmarks[i] < an.landmarks[j] })
}

func (an *funcAnalysis) snapUp(v int64) (int64, bool) {
	i := sort.Search(len(an.landmarks), func(i int) bool { return an.landmarks[i] >= v })
	if i == len(an.landmarks) {
		return 0, false
	}
	return an.landmarks[i], true
}

func (an *funcAnalysis) snapDown(v int64) (int64, bool) {
	i := sort.Search(len(an.landmarks), func(i int) bool { return an.landmarks[i] > v })
	if i == 0 {
		return 0, false
	}
	return an.landmarks[i-1], true
}

func (an *funcAnalysis) refTypeInterval(r vref) interval {
	obj := r.base
	if r.field != nil {
		obj = r.field
	}
	return typeInterval(obj.Type())
}

// refOf resolves an expression to a trackable reference: a non-skipped
// local/parameter identifier, or base.field where base is such an
// identifier. Package-level variables are rejected (any call can mutate
// them); constant tables get their own resolution in the engine.
func (an *funcAnalysis) refOf(e ast.Expr) (vref, bool) {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := an.pkg.Info.ObjectOf(x)
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || an.skip[obj] || isPackageLevel(v) {
			return vref{}, false
		}
		return vref{base: obj}, true
	case *ast.SelectorExpr:
		id, ok := unparen(x.X).(*ast.Ident)
		if !ok {
			return vref{}, false
		}
		base := an.pkg.Info.ObjectOf(id)
		bv, ok := base.(*types.Var)
		if !ok || bv.IsField() || an.skip[base] || isPackageLevel(bv) {
			return vref{}, false
		}
		field, ok := an.pkg.Info.ObjectOf(x.Sel).(*types.Var)
		if !ok || !field.IsField() || an.skip[field] {
			return vref{}, false
		}
		return vref{base: base, field: field}, true
	}
	return vref{}, false
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// transfer interprets one block's nodes over the fact.
func (an *funcAnalysis) transfer(b *Block, in Fact, report bool) Fact {
	f := in.(*valueFact)
	for _, n := range b.Nodes {
		an.apply(n, f)
	}
	return f
}

// apply interprets one CFG node's effect on the fact.
func (an *funcAnalysis) apply(n ast.Node, f *valueFact) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		an.applyAssign(s, f)
	case *ast.IncDecStmt:
		an.killCallsIn(s.X, f)
		r, ok := an.refOf(s.X)
		if !ok {
			return
		}
		delta := int64(1)
		if s.Tok == token.DEC {
			delta = -1
		}
		iv := f.lookup(r).addConst(delta)
		f.killFieldAliases(r)
		f.shiftRels(r, delta)
		f.setVal(r, iv)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					r, ok := an.refOf(name)
					if !ok {
						continue
					}
					iv := an.refTypeInterval(r)
					if i < len(vs.Values) {
						an.killCallsIn(vs.Values[i], f)
						iv = an.eval(f, vs.Values[i])
					} else if len(vs.Values) == 0 {
						iv = ivConst(0) // zero value
						if an.refTypeInterval(r).isTop() {
							iv = an.refTypeInterval(r)
						}
					}
					f.dropRels(r)
					delete(f.lens, r)
					f.setVal(r, iv)
				}
			}
		}
	default:
		// Clause expressions, return statements, defer/go/send, expression
		// statements: only their embedded calls matter.
		an.killCallsIn(n, f)
	}
}

// applyAssign interprets an assignment statement.
func (an *funcAnalysis) applyAssign(s *ast.AssignStmt, f *valueFact) {
	for _, rhs := range s.Rhs {
		an.killCallsIn(rhs, f)
	}
	for _, lhs := range s.Lhs {
		// Index/star/selector sub-expressions on the left may call too.
		an.killCallsIn(lhs, f)
	}

	if len(s.Lhs) == len(s.Rhs) {
		// Parallel assignment: evaluate every RHS against the pre-state.
		ivs := make([]interval, len(s.Rhs))
		appendSelf := make([]bool, len(s.Rhs))
		for i, rhs := range s.Rhs {
			switch s.Tok {
			case token.ASSIGN, token.DEFINE:
				ivs[i] = an.eval(f, rhs)
				appendSelf[i] = an.isAppendToSelf(s.Lhs[i], rhs)
			case token.ADD_ASSIGN:
				ivs[i] = an.eval(f, s.Lhs[i]).add(an.eval(f, rhs))
			case token.SUB_ASSIGN:
				ivs[i] = an.eval(f, s.Lhs[i]).add(an.eval(f, rhs).neg())
			default:
				ivs[i] = ivTop()
			}
		}
		for i, lhs := range s.Lhs {
			an.assignOne(f, lhs, ivs[i], s.Rhs[i], s.Tok, appendSelf[i])
		}
		return
	}

	// Tuple assignment: x, y := f() — the first result may have a call
	// summary; the rest fall back to their types.
	var call *ast.CallExpr
	if len(s.Rhs) == 1 {
		call, _ = unparen(s.Rhs[0]).(*ast.CallExpr)
	}
	for i, lhs := range s.Lhs {
		iv := ivTop()
		if i == 0 && call != nil {
			iv = an.evalCall(f, call)
		} else if r, ok := an.refOf(lhs); ok {
			iv = an.refTypeInterval(r)
		}
		an.assignOne(f, lhs, iv, nil, s.Tok, false)
	}
}

// assignOne applies one lhs <- interval binding, maintaining relations:
// assigning to an integer drops its relations unless the RHS was lhs +/- c
// (shift); assigning to a slice drops relations keyed on its length unless
// the RHS was append(lhs, ...), which only grows the length.
func (an *funcAnalysis) assignOne(f *valueFact, lhs ast.Expr, iv interval, rhs ast.Expr, tok token.Token, appendSelf bool) {
	r, ok := an.refOf(lhs)
	if !ok {
		// A write through an untracked lvalue (pointer deref, index, map,
		// selector with a complex base): kill same-field aliases when we
		// can see the field, otherwise nothing is tracked for it anyway.
		if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
			if field, ok := an.pkg.Info.ObjectOf(sel.Sel).(*types.Var); ok && field.IsField() {
				for o := range f.vals {
					if o.field == field {
						delete(f.vals, o)
					}
				}
				for k := range f.rels {
					if k.x.field == field || k.s.field == field {
						delete(f.rels, k)
					}
				}
			}
		}
		return
	}
	f.killFieldAliases(r)

	// Relations where r is the bounded integer.
	shifted := false
	if tok == token.ASSIGN && rhs != nil {
		if br, c, ok := an.linearOf(rhs); ok && br == r {
			f.shiftRels(r, c)
			shifted = true
		}
	}
	if !shifted {
		f.dropRelsX(r)
	}
	// Relations and length facts where r is the measured slice. append to
	// self only grows: the length's lower bound survives, the upper does
	// not.
	if appendSelf {
		if l, ok := f.lens[r]; ok {
			l.hiInf = true
			if l.contains(anyLen()) {
				delete(f.lens, r)
			} else {
				f.lens[r] = l
			}
		}
	} else {
		for k := range f.rels {
			if k.s == r {
				delete(f.rels, k)
			}
		}
		delete(f.lens, r)
		if l, ok := an.madeLen(f, rhs, tok); ok {
			f.lens[r] = l
		}
	}
	f.setVal(r, iv)
}

// madeLen recognizes plain assignments whose RHS has a statically known
// length: make(T, n) and slice/array composite literals.
func (an *funcAnalysis) madeLen(f *valueFact, rhs ast.Expr, tok token.Token) (interval, bool) {
	if rhs == nil || (tok != token.ASSIGN && tok != token.DEFINE) {
		return interval{}, false
	}
	switch x := unparen(rhs).(type) {
	case *ast.CallExpr:
		id, ok := unparen(x.Fun).(*ast.Ident)
		if !ok || len(x.Args) < 2 {
			return interval{}, false
		}
		if _, isB := an.pkg.Info.ObjectOf(id).(*types.Builtin); !isB || id.Name != "make" {
			return interval{}, false
		}
		l := an.eval(f, x.Args[1]).meet(anyLen())
		if l.contains(anyLen()) {
			return interval{}, false
		}
		return l, true
	case *ast.CompositeLit:
		t := an.pkg.Info.TypeOf(x)
		if t == nil {
			return interval{}, false
		}
		if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
			return interval{}, false
		}
		for _, elt := range x.Elts {
			if _, isKV := elt.(*ast.KeyValueExpr); isKV {
				return interval{}, false
			}
		}
		return ivConst(int64(len(x.Elts))), true
	}
	return interval{}, false
}

// isAppendToSelf reports rhs == append(lhs, ...).
func (an *funcAnalysis) isAppendToSelf(lhs, rhs ast.Expr) bool {
	call, ok := unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isB := an.pkg.Info.ObjectOf(id).(*types.Builtin); !isB || id.Name != "append" {
		return false
	}
	lr, ok1 := an.refOf(lhs)
	ar, ok2 := an.refOf(call.Args[0])
	return ok1 && ok2 && lr == ar
}

// killCallsIn kills call-clobbered facts if the subtree contains a real
// function call (conversions and len/cap/append-style builtins have no
// side effects on tracked state). Closure literals are not descended: their
// captured variables are already untracked.
func (an *funcAnalysis) killCallsIn(n ast.Node, f *valueFact) {
	if n == nil {
		return
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch x := m.(type) {
		case *ast.FuncLit:
			// The literal itself doesn't run; calls to it are CallExprs.
			return false
		case *ast.CallExpr:
			if tv, ok := an.pkg.Info.Types[x.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := unparen(x.Fun).(*ast.Ident); ok {
				if _, isB := an.pkg.Info.ObjectOf(id).(*types.Builtin); isB {
					return true
				}
			}
			found = true
			return false
		}
		return true
	})
	if found {
		f.killFieldFacts()
	}
}

// ---------------------------------------------------------------------------
// Expression evaluation

// eval computes the interval of an integer-valued expression under f.
func (an *funcAnalysis) eval(f *valueFact, e ast.Expr) interval {
	e = unparen(e)
	if tv, ok := an.pkg.Info.Types[e]; ok && tv.Value != nil {
		if c, ok := constInt64(tv.Value); ok {
			return ivConst(c)
		}
		// Constant outside int64 (e.g. large uint64 literals): keep the
		// sign information when the constant is known non-negative.
		if tv.Value.Kind() == constant.Int && constant.Sign(tv.Value) >= 0 {
			return ivAtLeast(0)
		}
		return ivTop()
	}
	switch x := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if r, ok := an.refOf(e); ok {
			return f.lookup(r)
		}
		return typeInterval(an.pkg.Info.TypeOf(e))
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			return an.eval(f, x.X).neg()
		}
		if x.Op == token.ADD {
			return an.eval(f, x.X)
		}
		return typeInterval(an.pkg.Info.TypeOf(e))
	case *ast.BinaryExpr:
		return an.evalBinary(f, x)
	case *ast.CallExpr:
		return an.evalCall(f, x)
	default:
		return typeInterval(an.pkg.Info.TypeOf(e))
	}
}

func (an *funcAnalysis) evalBinary(f *valueFact, x *ast.BinaryExpr) interval {
	fallback := typeInterval(an.pkg.Info.TypeOf(x))
	a := an.eval(f, x.X)
	b := an.eval(f, x.Y)
	switch x.Op {
	case token.ADD:
		return a.add(b).meet(fallback)
	case token.SUB:
		return a.add(b.neg()).meet(fallback)
	case token.MUL:
		if c, ok := b.isConst(); ok && c >= 0 {
			return mulConst(a, c).meet(fallback)
		}
		if c, ok := a.isConst(); ok && c >= 0 {
			return mulConst(b, c).meet(fallback)
		}
	case token.QUO:
		// Integer division truncates toward zero, which is monotone in the
		// numerator for a positive constant divisor.
		if c, ok := b.isConst(); ok && c > 0 {
			out := interval{loInf: a.loInf, hiInf: a.hiInf}
			if !a.loInf {
				out.lo = a.lo / c
			}
			if !a.hiInf {
				out.hi = a.hi / c
			}
			return out.meet(fallback)
		}
	case token.REM:
		if c, ok := b.isConst(); ok && c > 0 {
			if an.isUnsignedExpr(x.X) || (!a.loInf && a.lo >= 0) {
				return ivRange(0, c-1)
			}
			return ivRange(-(c - 1), c-1)
		}
	case token.AND:
		// x & mask with a non-negative mask is in [0, mask].
		if c, ok := b.isConst(); ok && c >= 0 {
			return ivRange(0, c)
		}
		if c, ok := a.isConst(); ok && c >= 0 {
			return ivRange(0, c)
		}
	case token.AND_NOT, token.SHR:
		// Clearing bits / shifting right never increases a non-negative
		// value.
		if an.isUnsignedExpr(x.X) || (!a.loInf && a.lo >= 0) {
			return interval{lo: 0, hi: a.hi, hiInf: a.hiInf}
		}
	}
	return fallback
}

func mulConst(a interval, c int64) interval {
	if c == 0 {
		return ivConst(0)
	}
	out := interval{loInf: a.loInf, hiInf: a.hiInf}
	mul := func(v int64) (int64, bool) {
		p := v * c
		if v != 0 && p/v != c {
			return 0, false
		}
		return p, true
	}
	if !out.loInf {
		if v, ok := mul(a.lo); ok {
			out.lo = v
		} else {
			out.loInf = true
		}
	}
	if !out.hiInf {
		if v, ok := mul(a.hi); ok {
			out.hi = v
		} else {
			out.hiInf = true
		}
	}
	return out
}

func (an *funcAnalysis) isUnsignedExpr(e ast.Expr) bool {
	t := an.pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}

// evalCall computes the interval of a call expression's (first) result:
// conversions clamp, len/cap of arrays and constant tables fold, known
// stdlib ranges apply, and statically-resolved module functions get their
// bottom-up return summaries.
func (an *funcAnalysis) evalCall(f *valueFact, call *ast.CallExpr) interval {
	// Conversion T(x): the mathematical value is preserved when x's range
	// fits T; otherwise it wraps and only T's range is known.
	if tv, ok := an.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		target := typeInterval(tv.Type)
		inner := an.eval(f, call.Args[0])
		if target.contains(inner) {
			return inner
		}
		return target
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := an.pkg.Info.ObjectOf(id).(*types.Builtin); isB {
			switch id.Name {
			case "len", "cap":
				if len(call.Args) == 1 {
					return an.lenInterval(f, call.Args[0])
				}
			}
			return typeInterval(an.pkg.Info.TypeOf(call))
		}
	}
	if fn := an.staticCallee(call); fn != nil {
		return an.eng.summaryOf(fn)
	}
	if iv, ok := an.knownStdlibInterval(call); ok {
		return iv
	}
	return typeInterval(an.pkg.Info.TypeOf(call))
}

// lenInterval is the interval of len(arg)/cap(arg).
func (an *funcAnalysis) lenInterval(f *valueFact, arg ast.Expr) interval {
	t := an.pkg.Info.TypeOf(arg)
	if n, ok := arrayLen(t); ok {
		return ivConst(n)
	}
	if tv, ok := an.pkg.Info.Types[unparen(arg)]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return ivConst(int64(len(constant.StringVal(tv.Value))))
	}
	if obj := an.packageVarOf(arg); obj != nil {
		if n, ok := an.eng.constLenOf(obj); ok {
			return ivConst(n)
		}
	}
	if s, ok := an.refOf(arg); ok {
		if l, present := f.lens[s]; present {
			return l
		}
	}
	return anyLen()
}

// arrayLen unwraps array and pointer-to-array types.
func arrayLen(t types.Type) (int64, bool) {
	if t == nil {
		return 0, false
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	if a, ok := u.(*types.Array); ok {
		return a.Len(), true
	}
	return 0, false
}

// packageVarOf resolves an expression to a package-level variable object
// (an identifier or pkg.Name selector), or nil.
func (an *funcAnalysis) packageVarOf(e ast.Expr) types.Object {
	var obj types.Object
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj = an.pkg.Info.ObjectOf(x)
	case *ast.SelectorExpr:
		if id, ok := unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := an.pkg.Info.ObjectOf(id).(*types.PkgName); isPkg {
				obj = an.pkg.Info.ObjectOf(x.Sel)
			}
		}
	}
	if v, ok := obj.(*types.Var); ok && isPackageLevel(v) {
		return obj
	}
	return nil
}

// staticCallee resolves a call to a module function declaration the call
// graph knows (excluding interface dispatch), or nil.
func (an *funcAnalysis) staticCallee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch x := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = an.pkg.Info.ObjectOf(x)
	case *ast.SelectorExpr:
		obj = an.pkg.Info.ObjectOf(x.Sel)
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if an.eng.t.CallGraph().Node(fn) == nil {
		return nil
	}
	return fn
}

// knownStdlibInterval returns documented ranges for standard-library calls
// the repository's hot paths use.
func (an *funcAnalysis) knownStdlibInterval(call *ast.CallExpr) (interval, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return interval{}, false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return interval{}, false
	}
	pn, ok := an.pkg.Info.ObjectOf(id).(*types.PkgName)
	if !ok || pn.Imported().Path() != "math/bits" {
		return interval{}, false
	}
	name := sel.Sel.Name
	for _, prefix := range []string{"Len", "OnesCount", "TrailingZeros", "LeadingZeros"} {
		if strings.HasPrefix(name, prefix) {
			return ivRange(0, 64), true
		}
	}
	return interval{}, false
}

func constInt64(v constant.Value) (int64, bool) {
	if v == nil || v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

// ---------------------------------------------------------------------------
// Branch refinement

// refineEdge implements the EdgeRefiner hook: branch conditions constrain
// facts along their true/false edges, and range-head body edges bind the
// iteration variable to the collection's index range.
func (an *funcAnalysis) refineEdge(from, to *Block, fa Fact) Fact {
	f := fa.(*valueFact)
	if from.Cond != nil && (to == from.TrueSucc || to == from.FalseSucc) {
		an.refineCond(f, from.Cond, to == from.TrueSucc)
	}
	if from.Range != nil && to == from.TrueSucc {
		an.bindRange(f, from.Range)
	}
	return f
}

func (an *funcAnalysis) refineCond(f *valueFact, cond ast.Expr, truth bool) {
	switch c := unparen(cond).(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			an.refineCond(f, c.X, !truth)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if truth {
				an.refineCond(f, c.X, true)
				an.refineCond(f, c.Y, true)
			}
		case token.LOR:
			if !truth {
				an.refineCond(f, c.X, false)
				an.refineCond(f, c.Y, false)
			}
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			op := c.Op
			if !truth {
				op = negateCompare(op)
			}
			an.refineCompare(f, c.X, op, c.Y)
		}
	}
}

func negateCompare(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	default:
		return token.EQL
	}
}

// refineCompare applies "X op Y" (already truth-normalized).
func (an *funcAnalysis) refineCompare(f *valueFact, X ast.Expr, op token.Token, Y ast.Expr) {
	X, Y = unparen(X), unparen(Y)

	// The canonical unsigned-compare guard: uint(x) < uint(y) (same
	// conversion both sides) implies x >= 0 and x < y, provided y's signed
	// value is provably non-negative (it is when y is a len term or its
	// interval says so), because a negative x converts to >= 2^63 and
	// cannot be below such a y.
	if op == token.LSS || op == token.LEQ {
		if ix, okx := an.unsignedConvArg(X); okx {
			if iy, oky := an.unsignedConvArg(Y); oky && an.nonNegSigned(f, iy) {
				if r, c, ok := an.linearOf(ix); ok {
					f.meetVal(r, ivAtLeast(0).addConst(-c))
				}
				an.refineCompare(f, ix, op, iy)
				return
			}
		}
	}

	// Length-relation refinement: X op len(S)+k (and its mirror).
	if sRef, k, ok := an.lenTermOf(Y); ok {
		if r, c, ok := an.linearOf(X); ok {
			switch op {
			case token.LSS:
				an.addRel(f, r, sRef, k-c-1)
			case token.LEQ, token.EQL:
				an.addRel(f, r, sRef, k-c)
			}
		}
	}
	if sRef, k, ok := an.lenTermOf(X); ok {
		if r, c, ok := an.linearOf(Y); ok {
			// len(S)+k op r  =>  r (flipped op) len(S)+k
			switch op {
			case token.GTR:
				an.addRel(f, r, sRef, k-c-1)
			case token.GEQ, token.EQL:
				an.addRel(f, r, sRef, k-c)
			}
		}
	}

	// Length-interval refinement: a guard like `len(v) > 0` constrains
	// what is known about len(v) itself.
	if sRef, k, ok := an.lenTermOf(X); ok {
		an.refineLen(f, sRef, k, op, an.eval(f, Y))
	}
	if sRef, k, ok := an.lenTermOf(Y); ok {
		an.refineLen(f, sRef, k, flipCompare(op), an.eval(f, X))
	}

	// Interval refinement: bound each linear side by the other side's
	// evaluated interval.
	if r, c, ok := an.linearOf(X); ok {
		an.refineLinear(f, r, c, op, an.eval(f, Y))
	}
	if r, c, ok := an.linearOf(Y); ok {
		an.refineLinear(f, r, c, flipCompare(op), an.eval(f, X))
	}
}

// refineLen applies "len(s) + k op other" to the tracked length interval.
func (an *funcAnalysis) refineLen(f *valueFact, s vref, k int64, op token.Token, other interval) {
	bound, ok := compareBound(op, other)
	if !ok {
		return
	}
	cur, present := f.lens[s]
	if !present {
		cur = anyLen()
	}
	cur = cur.meet(bound.addConst(-k))
	if cur.contains(anyLen()) {
		delete(f.lens, s)
		return
	}
	f.lens[s] = cur
}

// compareBound turns "lhs op other" into the interval constraint it puts
// on lhs, when the comparison constrains at all.
func compareBound(op token.Token, other interval) (interval, bool) {
	if other.empty() {
		return interval{}, false
	}
	switch op {
	case token.LSS:
		if other.hiInf {
			return interval{}, false
		}
		return interval{loInf: true, hi: other.hi}.addConst(-1), true
	case token.LEQ:
		if other.hiInf {
			return interval{}, false
		}
		return interval{loInf: true, hi: other.hi}, true
	case token.GTR:
		if other.loInf {
			return interval{}, false
		}
		return interval{lo: other.lo, hiInf: true}.addConst(1), true
	case token.GEQ:
		if other.loInf {
			return interval{}, false
		}
		return interval{lo: other.lo, hiInf: true}, true
	case token.EQL:
		return other, true
	}
	return interval{}, false
}

func flipCompare(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	default:
		return op // EQL, NEQ symmetric
	}
}

// refineLinear applies "r + c op other" to r's interval.
func (an *funcAnalysis) refineLinear(f *valueFact, r vref, c int64, op token.Token, other interval) {
	if other.empty() {
		return
	}
	switch op {
	case token.LSS:
		if !other.hiInf {
			f.meetVal(r, interval{loInf: true, hi: other.hi - 1 - c})
		}
	case token.LEQ:
		if !other.hiInf {
			f.meetVal(r, interval{loInf: true, hi: other.hi - c})
		}
	case token.GTR:
		if !other.loInf {
			f.meetVal(r, interval{lo: other.lo + 1 - c, hiInf: true})
		}
	case token.GEQ:
		if !other.loInf {
			f.meetVal(r, interval{lo: other.lo - c, hiInf: true})
		}
	case token.EQL:
		f.meetVal(r, other.addConst(-c))
	case token.NEQ:
		if v, ok := other.isConst(); ok {
			cur := f.lookup(r)
			if lo, isC := cur.isConst(); isC && lo == v-c {
				f.setVal(r, interval{lo: 1, hi: 0}) // contradiction: dead edge
				return
			}
			if !cur.loInf && cur.lo == v-c {
				cur.lo++
				f.setVal(r, cur)
			} else if !cur.hiInf && cur.hi == v-c {
				cur.hi--
				f.setVal(r, cur)
			}
		}
	}
}

func (an *funcAnalysis) addRel(f *valueFact, x vref, s vref, delta int64) {
	k := relKey{x: x, s: s}
	if d, ok := f.rels[k]; !ok || delta < d {
		f.rels[k] = delta
	}
}

// unsignedConvArg unwraps T(x) where T is an unsigned basic type.
func (an *funcAnalysis) unsignedConvArg(e ast.Expr) (ast.Expr, bool) {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, false
	}
	tv, ok := an.pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsUnsigned == 0 {
		return nil, false
	}
	return call.Args[0], true
}

// nonNegSigned reports whether e's signed mathematical value is provably
// in [0, MaxInt64] — i.e. converting it to an unsigned type preserves it.
func (an *funcAnalysis) nonNegSigned(f *valueFact, e ast.Expr) bool {
	if _, _, ok := an.lenTermOf(e); ok {
		return true // len() is always in [0, MaxInt]
	}
	iv := an.eval(f, e)
	return !iv.loInf && iv.lo >= 0 && !iv.hiInf
}

// linearOf decomposes e as ref + c, looking through parens, +/- integer
// constants, and lossless widening conversions.
func (an *funcAnalysis) linearOf(e ast.Expr) (vref, int64, bool) {
	e = unparen(e)
	if r, ok := an.refOf(e); ok {
		return r, 0, true
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if x.Op != token.ADD && x.Op != token.SUB {
			break
		}
		if c, ok := an.foldedInt(x.Y); ok {
			if r, c0, ok := an.linearOf(x.X); ok {
				if x.Op == token.SUB {
					c = -c
				}
				if sum, ok := satAdd(c0, c); ok {
					return r, sum, true
				}
			}
		}
		if x.Op == token.ADD {
			if c, ok := an.foldedInt(x.X); ok {
				if r, c0, ok := an.linearOf(x.Y); ok {
					if sum, ok := satAdd(c0, c); ok {
						return r, sum, true
					}
				}
			}
		}
	case *ast.CallExpr:
		// Lossless widening conversion: the target range contains the
		// source type's range, so the mathematical value is unchanged.
		if tv, ok := an.pkg.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			src := an.pkg.Info.TypeOf(x.Args[0])
			if typeInterval(tv.Type).contains(typeInterval(src)) {
				return an.linearOf(x.Args[0])
			}
		}
	}
	return vref{}, 0, false
}

func (an *funcAnalysis) foldedInt(e ast.Expr) (int64, bool) {
	tv, ok := an.pkg.Info.Types[unparen(e)]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constInt64(tv.Value)
}

// lenTermOf decomposes e as len(S) + k for a trackable slice/string
// reference S, looking through integer conversions (len is always
// non-negative, so any widening to >= 32 bits preserves it).
func (an *funcAnalysis) lenTermOf(e ast.Expr) (vref, int64, bool) {
	e = unparen(e)
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if x.Op != token.ADD && x.Op != token.SUB {
			return vref{}, 0, false
		}
		if c, ok := an.foldedInt(x.Y); ok {
			if s, k, ok := an.lenTermOf(x.X); ok {
				if x.Op == token.SUB {
					c = -c
				}
				if sum, ok := satAdd(k, c); ok {
					return s, sum, true
				}
			}
		}
		if x.Op == token.ADD {
			if c, ok := an.foldedInt(x.X); ok {
				if s, k, ok := an.lenTermOf(x.Y); ok {
					if sum, ok := satAdd(k, c); ok {
						return s, sum, true
					}
				}
			}
		}
	case *ast.CallExpr:
		if tv, ok := an.pkg.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return an.lenTermOf(x.Args[0])
		}
		id, ok := unparen(x.Fun).(*ast.Ident)
		if !ok || len(x.Args) != 1 {
			return vref{}, 0, false
		}
		if _, isB := an.pkg.Info.ObjectOf(id).(*types.Builtin); !isB || id.Name != "len" {
			return vref{}, 0, false
		}
		arg := unparen(x.Args[0])
		s, ok := an.refOf(arg)
		if !ok {
			return vref{}, 0, false
		}
		t := an.pkg.Info.TypeOf(arg)
		if t == nil {
			return vref{}, 0, false
		}
		switch u := t.Underlying().(type) {
		case *types.Slice:
			return s, 0, true
		case *types.Basic:
			if u.Info()&types.IsString != 0 {
				return s, 0, true
			}
		}
	}
	return vref{}, 0, false
}

// bindRange binds the key variable of a range head along the body edge.
func (an *funcAnalysis) bindRange(f *valueFact, rng *ast.RangeStmt) {
	// The value variable is freshly bound each iteration: reset it.
	if rng.Value != nil {
		if vr, ok := an.refOf(rng.Value); ok {
			f.dropRels(vr)
			delete(f.vals, vr)
			delete(f.lens, vr)
		}
	}
	if rng.Key == nil {
		return
	}
	kr, ok := an.refOf(rng.Key)
	if !ok {
		return
	}
	f.dropRels(kr)
	delete(f.vals, kr)
	delete(f.lens, kr)
	t := an.pkg.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if n, ok := arrayLen(t); ok {
		f.setVal(kr, ivRange(0, n-1))
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		f.setVal(kr, ivAtLeast(0))
		if sr, ok := an.refOf(rng.X); ok {
			an.addRel(f, kr, sr, -1)
		} else if obj := an.packageVarOf(rng.X); obj != nil {
			if n, ok := an.eng.constLenOf(obj); ok {
				f.meetVal(kr, ivRange(0, n-1))
			}
		}
	case *types.Basic:
		if u.Info()&types.IsString != 0 {
			f.setVal(kr, ivAtLeast(0))
			if sr, ok := an.refOf(rng.X); ok {
				an.addRel(f, kr, sr, -1)
			}
		} else if u.Info()&types.IsInteger != 0 {
			// range over int: 0 <= k < n
			f.setVal(kr, ivAtLeast(0))
			n := an.eval(f, rng.X)
			if !n.hiInf {
				f.meetVal(kr, interval{loInf: true, hi: n.hi - 1})
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Walking with facts, index proofs

// walk re-interprets every reachable block with its fixpoint entry fact,
// calling visit on each node with the fact state holding immediately
// before the node executes.
func (an *funcAnalysis) walk(visit func(n ast.Node, f *valueFact)) {
	if an == nil {
		return
	}
	for i, b := range an.cfg.Blocks {
		if an.facts[i] == nil {
			continue
		}
		f := an.facts[i].Clone().(*valueFact)
		for _, n := range b.Nodes {
			visit(n, f)
			an.apply(n, f)
		}
	}
}

// visitIndexes calls visit for every index expression inside n with the
// fact state under which it evaluates: the right operand of && sees the
// left operand's true-refinement (and of ||, its false-refinement),
// because short-circuiting is control flow the CFG does not decompose.
// Closure-literal bodies are skipped (they run when the closure does).
func (an *funcAnalysis) visitIndexes(f *valueFact, n ast.Node, visit func(idx *ast.IndexExpr, f *valueFact)) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if x.Op == token.LAND || x.Op == token.LOR {
				an.visitIndexes(f, x.X, visit)
				g := f.Clone().(*valueFact)
				an.refineCond(g, x.X, x.Op == token.LAND)
				an.visitIndexes(g, x.Y, visit)
				return false
			}
		case *ast.IndexExpr:
			visit(x, f)
		}
		return true
	})
}

// proveIndex attempts to prove idx in-bounds under f. The second result
// explains an unprovable obligation for the finding message.
func (an *funcAnalysis) proveIndex(f *valueFact, idx *ast.IndexExpr) (bool, string) {
	t := an.pkg.Info.TypeOf(idx.X)
	if t == nil {
		return true, ""
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	var constLen int64 = -1
	switch c := u.(type) {
	case *types.Map:
		return true, "" // map index never panics
	case *types.Array:
		constLen = c.Len()
	case *types.Slice:
	case *types.Basic:
		if c.Info()&types.IsString == 0 {
			return true, ""
		}
	default:
		return true, "" // generic type parameters etc.
	}
	if constLen < 0 {
		// A slice/string backed by a constant: table vars and string
		// constants have statically known lengths.
		if obj := an.packageVarOf(idx.X); obj != nil {
			if n, ok := an.eng.constLenOf(obj); ok {
				constLen = n
			}
		}
		if tv, ok := an.pkg.Info.Types[unparen(idx.X)]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			constLen = int64(len(constant.StringVal(tv.Value)))
		}
	}

	iv := an.eval(f, idx.Index)
	if iv.empty() {
		return true, "" // infeasible path
	}
	if iv.loInf || iv.lo < 0 {
		return false, fmt.Sprintf("index interval %s may be negative", iv)
	}
	if constLen >= 0 {
		if !iv.hiInf && iv.hi <= constLen-1 {
			return true, ""
		}
		return false, fmt.Sprintf("index interval %s exceeds length %d", iv, constLen)
	}
	// Unknown length: either a relation index <= len(container) - 1, or a
	// guard-derived lower bound on the length itself covering the index's
	// upper bound.
	if cr, ok := an.refOf(idx.X); ok {
		if r, c, ok := an.linearOf(idx.Index); ok {
			if d, ok := f.rels[relKey{x: r, s: cr}]; ok {
				if sum, valid := satAdd(d, c); valid && sum <= -1 {
					return true, ""
				}
			}
		}
		if l, present := f.lens[cr]; present && !iv.hiInf && !l.loInf && iv.hi <= l.lo-1 {
			return true, ""
		}
	}
	return false, fmt.Sprintf("index interval %s has no length relation with the container", iv)
}

// ---------------------------------------------------------------------------
// The engine: summaries and constant tables

// valueEngine caches per-function analyses, interprocedural return-
// interval summaries, and resolved constant tables across the passes of
// one run.
type valueEngine struct {
	t          *Target
	analyses   map[*ast.FuncDecl]*funcAnalysis
	summaries  map[*types.Func]interval
	inProgress map[*types.Func]bool
	tables     map[types.Object][]string
	tablesOK   map[types.Object]bool
	mutated    map[types.Object]bool
}

// values returns the target's shared value engine, building it lazily.
func (t *Target) values() *valueEngine {
	if t.ve == nil {
		t.ve = &valueEngine{
			t:          t,
			analyses:   map[*ast.FuncDecl]*funcAnalysis{},
			summaries:  map[*types.Func]interval{},
			inProgress: map[*types.Func]bool{},
			tables:     map[types.Object][]string{},
			tablesOK:   map[types.Object]bool{},
		}
	}
	return t.ve
}

// summaryOf computes the interval of fn's first result by analyzing its
// body, memoized; recursion (an SCC cycle in the call graph) falls back to
// the result's type interval.
func (e *valueEngine) summaryOf(fn *types.Func) interval {
	if iv, ok := e.summaries[fn]; ok {
		return iv
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return ivTop()
	}
	fallback := typeInterval(sig.Results().At(0).Type())
	node := e.t.CallGraph().Node(fn)
	if node == nil || node.Decl.Body == nil {
		e.summaries[fn] = fallback
		return fallback
	}
	if e.inProgress[fn] {
		return fallback // recursion: don't memoize the coarse answer
	}
	e.inProgress[fn] = true
	an := e.analysisOf(node.Pkg, node.Decl)
	acc := interval{lo: 1, hi: 0} // bottom
	complete := true
	an.walk(func(n ast.Node, f *valueFact) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		if len(ret.Results) == 0 {
			complete = false // bare return with named results
			return
		}
		acc = acc.join(an.eval(f, ret.Results[0]))
	})
	delete(e.inProgress, fn)
	iv := fallback
	if complete && !acc.empty() {
		iv = acc.meet(fallback)
	}
	e.summaries[fn] = iv
	return iv
}

// constLenOf reports the length of a package-level constant table (see
// constTableOf).
func (e *valueEngine) constLenOf(obj types.Object) (int64, bool) {
	tbl, ok := e.constTableOf(obj)
	if !ok {
		return 0, false
	}
	return int64(len(tbl)), true
}

// constTableOf resolves a package-level variable to its constant string
// elements: the var must be initialized with a slice/array literal of
// folded string constants and never be written anywhere in the target
// (assignment, ++/--, or address-taken). Such tables behave as constants,
// so their lengths and element sets are usable in static proofs.
func (e *valueEngine) constTableOf(obj types.Object) ([]string, bool) {
	if ok, resolved := e.tablesOK[obj]; resolved {
		return e.tables[obj], ok
	}
	e.tablesOK[obj] = false
	if e.globalMutated(obj) {
		return nil, false
	}
	v, ok := obj.(*types.Var)
	if !ok || !isPackageLevel(v) {
		return nil, false
	}
	pkg := e.t.Package(v.Pkg().Path())
	if pkg == nil {
		return nil, false
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if pkg.Info.ObjectOf(name) != obj || i >= len(vs.Values) {
						continue
					}
					lit, ok := unparen(vs.Values[i]).(*ast.CompositeLit)
					if !ok {
						return nil, false
					}
					var out []string
					for _, elt := range lit.Elts {
						if _, isKV := elt.(*ast.KeyValueExpr); isKV {
							return nil, false // keyed elements: order unclear
						}
						s, ok := constString(pkg, elt)
						if !ok {
							return nil, false
						}
						out = append(out, s)
					}
					e.tables[obj] = out
					e.tablesOK[obj] = true
					return out, true
				}
			}
		}
	}
	return nil, false
}

// globalMutated reports whether any target package writes the package-
// level variable (assigns it, takes its address, or ++/--s it). Computed
// once for the whole target.
func (e *valueEngine) globalMutated(obj types.Object) bool {
	if e.mutated == nil {
		e.mutated = map[types.Object]bool{}
		for _, pkg := range e.t.Pkgs {
			info := pkg.Info
			// mark records every object along an lvalue chain: writing
			// x.f[i] mutates f and (conservatively) x, so x.f can no
			// longer be treated as a constant table.
			mark := func(ex ast.Expr) {
				for {
					switch x := unparen(ex).(type) {
					case *ast.Ident:
						if o := info.ObjectOf(x); o != nil {
							e.mutated[o] = true
						}
						return
					case *ast.SelectorExpr:
						if o := info.ObjectOf(x.Sel); o != nil {
							e.mutated[o] = true
						}
						ex = x.X
					case *ast.IndexExpr:
						ex = x.X
					case *ast.StarExpr:
						ex = x.X
					default:
						return
					}
				}
			}
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.AssignStmt:
						for _, lhs := range x.Lhs {
							mark(lhs)
						}
					case *ast.IncDecStmt:
						mark(x.X)
					case *ast.UnaryExpr:
						if x.Op == token.AND {
							mark(x.X)
						}
					}
					return true
				})
			}
		}
	}
	return e.mutated[obj]
}
