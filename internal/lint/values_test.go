package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestValuesGolden pins the value-analysis lattice itself: over the
// testdata/values fixture it records the interval of every probe()
// argument and the proof status of every index expression, comparing the
// dump against values_golden.txt. Regenerate with:
// go test ./internal/lint -run TestValuesGolden -update
func TestValuesGolden(t *testing.T) {
	tgt := fixtureTarget(t, "values")
	pkg := tgt.Pkgs[0]
	eng := tgt.values()

	type record struct {
		pos  token.Position
		text string
	}
	var out bytes.Buffer
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name == "probe" {
				continue
			}
			an := eng.analysisOf(pkg, fd)
			var recs []record
			an.walk(func(n ast.Node, f *valueFact) {
				// probe(...) observation points.
				if es, ok := n.(*ast.ExprStmt); ok {
					if call, ok := es.X.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "probe" {
							var args []string
							for _, a := range call.Args {
								args = append(args, fmt.Sprintf("%s = %s",
									types.ExprString(a), an.eval(f, a)))
							}
							recs = append(recs, record{
								pos:  tgt.Position(call.Pos()),
								text: fmt.Sprintf("probe: %s", joinStrings(args, ", ")),
							})
							return
						}
					}
				}
				// Every index expression gets a proof attempt.
				an.visitIndexes(f, n, func(idx *ast.IndexExpr, f *valueFact) {
					status := "proven"
					if ok, why := an.proveIndex(f, idx); !ok {
						status = "UNPROVEN: " + why
					}
					recs = append(recs, record{
						pos:  tgt.Position(idx.Pos()),
						text: fmt.Sprintf("index %s: %s", types.ExprString(idx), status),
					})
				})
			})
			sort.SliceStable(recs, func(i, j int) bool {
				if recs[i].pos.Line != recs[j].pos.Line {
					return recs[i].pos.Line < recs[j].pos.Line
				}
				return recs[i].pos.Column < recs[j].pos.Column
			})
			fmt.Fprintf(&out, "func %s\n", fd.Name.Name)
			for _, r := range recs {
				fmt.Fprintf(&out, "  L%d %s\n", r.pos.Line, r.text)
			}
		}
	}

	golden := filepath.Join("testdata", "values_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("value facts diverged from %s:\n got:\n%s\nwant:\n%s",
			golden, out.String(), want)
	}
}

func joinStrings(ss []string, sep string) string {
	var b bytes.Buffer
	for i, s := range ss {
		if i > 0 {
			b.WriteString(sep)
		}
		b.WriteString(s)
	}
	return b.String()
}

// TestIntervalOps covers the interval algebra edge cases the fixture
// cannot reach: saturation at the int64 rim, empty-interval propagation,
// and the containment/join/meet laws the solver relies on.
func TestIntervalOps(t *testing.T) {
	top := ivTop()
	if !top.contains(ivConst(42)) || !top.contains(ivAtLeast(0)) {
		t.Error("top must contain everything")
	}
	empty := interval{lo: 1, hi: 0}
	if !empty.empty() {
		t.Error("lo>hi must be empty")
	}
	if got := empty.join(ivConst(5)); got != ivConst(5) {
		t.Errorf("empty join [5,5] = %s, want [5,5]", got)
	}
	if got := ivRange(0, 10).meet(ivRange(5, 20)); got != ivRange(5, 10) {
		t.Errorf("[0,10] meet [5,20] = %s, want [5,10]", got)
	}
	if got := ivRange(0, 3).meet(ivRange(5, 9)); !got.empty() {
		t.Errorf("disjoint meet = %s, want empty", got)
	}
	if got := ivRange(0, 3).join(ivRange(5, 9)); got != ivRange(0, 9) {
		t.Errorf("[0,3] join [5,9] = %s, want [0,9]", got)
	}
	// Saturation: max int64 + 1 overflows to +inf, not wraparound.
	maxed := ivConst(1 << 62).addConst(1 << 62)
	if maxed.hiInf || maxed.hi != 1<<63-2+0 {
		// 2^62 + 2^62 = 2^63 which overflows int64: must saturate.
		if !maxed.hiInf {
			t.Errorf("2^62+2^62 = %s, want +inf saturation", maxed)
		}
	}
	if got := ivRange(-3, 7).neg(); got != ivRange(-7, 3) {
		t.Errorf("neg[-3,7] = %s, want [-7,3]", got)
	}
	if got := mulConst(ivRange(2, 5), 3); got != ivRange(6, 15) {
		t.Errorf("[2,5]*3 = %s, want [6,15]", got)
	}
	if got := mulConst(ivRange(1<<40, 1<<40), 1<<40); !got.hiInf {
		t.Errorf("2^40*2^40 = %s, want +inf saturation", got)
	}
	if s := ivAtLeast(3).String(); s != "[3,+inf]" {
		t.Errorf("String = %q", s)
	}
	if !ivRange(0, 255).contains(ivRange(10, 20)) || ivRange(0, 255).contains(ivRange(-1, 20)) {
		t.Error("containment over [0,255] wrong")
	}
}
