package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WireCheck proves the binary trace format's encode/decode symmetry and the
// decoder's adversarial-input discipline statically, instead of leaving both
// to the fuzz harness:
//
//   - W1 (sequence symmetry): the per-event field sequence — order, varint
//     width (uvarint vs zigzag varint), string dictionary compression, count
//     prefixes, and format-version branches — is extracted from the encoder
//     and from every decoder as a tree of wire operations, and each decoder's
//     tree must mirror the encoder's exactly. A reordered field, a width
//     change on one side, or a version branch present on only one side is
//     reported at its first point of divergence.
//   - W2 (allocation budgets): inside the decoder types, every allocation
//     whose size is not a folded constant is wire-derived (the size came off
//     the untrusted stream) and must be provably capped: the value lattice
//     (values.go) must bound the size to a finite interval (a declared-length
//     cap check), and a terminating accumulator-budget guard of the shape
//     `if acc += n; acc > budget { return ... }` must precede the allocation
//     in source order, so one event cannot repeat capped allocations into an
//     unbounded total.
//   - W2c (dictionary retention): a decoder append to a receiver slice field
//     (the string dictionary) must sit under a `len(field) < cap` guard;
//     otherwise a malicious stream grows decoder memory without bound.
//   - W3 (negotiation coverage): every positive format version the
//     negotiation function can admit (its returned constants) must be
//     covered by the encoder and every decoder — version 1 is the base
//     sequence, higher versions must appear as constants in a version
//     branch. A negotiation that admits a version no wire sequence
//     implements is an ingest-time failure for a conforming client.
//
// The pass is configured with the encoder/decoder functions, the primitive
// method names treated as atomic wire operations, and the receiver field
// whose comparisons constitute format-version branches; everything else is
// derived from the ASTs, so the check follows the real writers and readers
// as they evolve.
type WireCheck struct {
	Spec WireSpec
}

// WireSpec names the functions and conventions one wire format is built
// from.
type WireSpec struct {
	// Pkg is the import path holding the encoder and decoders; "" searches
	// every target package. A configured Pkg missing from the target skips
	// the pass (partial-target runs).
	Pkg string
	// Encoder is the event-encoding function, "Type.Method" or "Func".
	Encoder string
	// Decoders are the event-decoding functions, each checked against the
	// encoder independently.
	Decoders []string
	// Primitives are the receiver method names treated as atomic wire
	// operations (e.g. uvarint, varint, str); their bodies are not entered.
	Primitives []string
	// VersionField is the receiver field whose comparisons are
	// format-version branches rather than ordinary control flow.
	VersionField string
	// NegotiationPkg/NegotiationFunc locate the transport's format
	// negotiation; "" skips the W3 coverage rule.
	NegotiationPkg  string
	NegotiationFunc string
}

// NewWireCheck returns the pass configured for this repository's binary
// trace format: BinaryWriter.Emit against both decoders, with the
// iocovd daemon's X-Iocov-Format negotiation.
func NewWireCheck() *WireCheck {
	return &WireCheck{Spec: WireSpec{
		Pkg:             "iocov/internal/trace",
		Encoder:         "BinaryWriter.Emit",
		Decoders:        []string{"BinaryParser.Next", "BatchDecoder.Next"},
		Primitives:      []string{"uvarint", "varint", "str"},
		VersionField:    "version",
		NegotiationPkg:  "iocov/internal/server",
		NegotiationFunc: "declaredFormat",
	}}
}

// Name implements Pass.
func (w *WireCheck) Name() string { return "wirecheck" }

// Run implements Pass.
func (w *WireCheck) Run(t *Target) []Finding {
	if w.Spec.Pkg != "" && t.Package(w.Spec.Pkg) == nil {
		return nil // partial target without the wire package
	}
	var out []Finding

	encPkg, encDecl := w.resolve(t, w.Spec.Pkg, w.Spec.Encoder)
	if encDecl == nil {
		return []Finding{{Pass: w.Name(), Message: fmt.Sprintf(
			"wirecheck is configured for encoder %s, which does not exist", w.Spec.Encoder)}}
	}
	encOps := w.extract(encPkg, encDecl)

	type decoder struct {
		name string
		pkg  *Package
		decl *ast.FuncDecl
		ops  []wireOp
	}
	var decoders []decoder
	for _, name := range w.Spec.Decoders {
		pkg, decl := w.resolve(t, w.Spec.Pkg, name)
		if decl == nil {
			out = append(out, Finding{Pass: w.Name(), Message: fmt.Sprintf(
				"wirecheck is configured for decoder %s, which does not exist", name)})
			continue
		}
		d := decoder{name: name, pkg: pkg, decl: decl, ops: w.extract(pkg, decl)}
		decoders = append(decoders, d)

		// W1: the decoder's wire sequence must mirror the encoder's.
		if f := w.compare(t, w.Spec.Encoder, name, encOps, d.ops, "event"); f != nil {
			out = append(out, *f)
		}

		// W2/W2c: allocation and retention discipline across every method
		// of the decoder's receiver type.
		out = append(out, w.checkDecoderType(t, pkg, d.decl)...)
	}

	// W3: every version the negotiation admits must be implemented by the
	// encoder and every decoder.
	if w.Spec.NegotiationFunc != "" {
		negPkg, negDecl := w.resolve(t, w.Spec.NegotiationPkg, w.Spec.NegotiationFunc)
		if w.Spec.NegotiationPkg != "" && t.Package(w.Spec.NegotiationPkg) == nil {
			// Partial target without the transport package: skip W3.
		} else if negDecl == nil {
			out = append(out, Finding{Pass: w.Name(), Message: fmt.Sprintf(
				"wirecheck is configured for negotiation function %s, which does not exist",
				w.Spec.NegotiationFunc)})
		} else {
			sequences := map[string][]wireOp{w.Spec.Encoder: encOps}
			order := []string{w.Spec.Encoder}
			for _, d := range decoders {
				sequences[d.name] = d.ops
				order = append(order, d.name)
			}
			out = append(out, w.checkNegotiation(t, negPkg, negDecl, order, sequences)...)
		}
	}
	return out
}

// resolve finds the FuncDecl named "Type.Method" or "Func" in pkg (or in any
// target package when pkg is "").
func (w *WireCheck) resolve(t *Target, pkgPath, name string) (*Package, *ast.FuncDecl) {
	recv, method, _ := strings.Cut(name, ".")
	if method == "" {
		recv, method = "", recv
	}
	for _, pkg := range t.Pkgs {
		if pkgPath != "" && pkg.Path != pkgPath {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name.Name != method || fd.Body == nil {
					continue
				}
				if recv == "" {
					if fd.Recv == nil {
						return pkg, fd
					}
					continue
				}
				if fd.Recv != nil && len(fd.Recv.List) > 0 && recvTypeName(fd.Recv.List[0].Type) == recv {
					return pkg, fd
				}
			}
		}
	}
	return nil, nil
}

// ---------------------------------------------------------------------------
// W1: wire sequence extraction and comparison

type wireOpKind int

const (
	wirePrim wireOpKind = iota
	wireBranch
	wireRepeat
)

// wireOp is one node of an extracted wire sequence: a primitive read/write,
// a format-version branch, or a repeated group (count-prefixed loop).
type wireOp struct {
	kind wireOpKind
	prim string   // wirePrim: the primitive method name
	cond string   // wireBranch: condition text with the receiver stripped
	vers []int64  // wireBranch: version constants appearing in cond
	then []wireOp // wireBranch
	els  []wireOp // wireBranch
	body []wireOp // wireRepeat
	pos  token.Pos
}

func (op wireOp) describe() string {
	switch op.kind {
	case wirePrim:
		return op.prim
	case wireBranch:
		return fmt.Sprintf("a branch on %q", op.cond)
	default:
		return "a repeated group"
	}
}

// wireExtractor walks one function body collecting its wire operations.
type wireExtractor struct {
	pkg          *Package
	recv         types.Object // receiver variable, nil for plain functions
	recvName     string
	prims        map[string]bool
	versionField string
}

// extract builds the wire-operation tree of one encoder/decoder body.
func (w *WireCheck) extract(pkg *Package, fd *ast.FuncDecl) []wireOp {
	x := &wireExtractor{pkg: pkg, prims: map[string]bool{}, versionField: w.Spec.VersionField}
	for _, p := range w.Spec.Primitives {
		x.prims[p] = true
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		id := fd.Recv.List[0].Names[0]
		x.recv = pkg.Info.ObjectOf(id)
		x.recvName = id.Name
	}
	return x.stmts(fd.Body.List)
}

func (x *wireExtractor) stmts(list []ast.Stmt) []wireOp {
	var out []wireOp
	for _, s := range list {
		out = append(out, x.stmt(s)...)
	}
	return out
}

func (x *wireExtractor) stmt(s ast.Stmt) []wireOp {
	switch st := s.(type) {
	case *ast.IfStmt:
		var out []wireOp
		if st.Init != nil {
			out = append(out, x.stmt(st.Init)...)
		}
		if x.isVersionCond(st.Cond) {
			op := wireOp{
				kind: wireBranch,
				cond: x.condText(st.Cond),
				vers: x.intConsts(st.Cond),
				then: x.stmts(st.Body.List),
				els:  x.elseOps(st.Else),
				pos:  st.Pos(),
			}
			return append(out, op)
		}
		// An ordinary if (error check, validation) is transparent: its
		// pieces contribute their primitives in evaluation order. Error
		// bodies hold only returns, so splicing loses nothing.
		out = append(out, x.nodeOps(st.Cond)...)
		out = append(out, x.stmts(st.Body.List)...)
		out = append(out, x.elseOps(st.Else)...)
		return out
	case *ast.ForStmt:
		var out []wireOp
		if st.Init != nil {
			out = append(out, x.stmt(st.Init)...)
		}
		body := x.nodeOps(st.Cond)
		body = append(body, x.stmts(st.Body.List)...)
		if st.Post != nil {
			body = append(body, x.stmt(st.Post)...)
		}
		return append(out, wireOp{kind: wireRepeat, body: body, pos: st.Pos()})
	case *ast.RangeStmt:
		out := x.nodeOps(st.X)
		return append(out, wireOp{kind: wireRepeat, body: x.stmts(st.Body.List), pos: st.Pos()})
	case *ast.BlockStmt:
		return x.stmts(st.List)
	default:
		return x.nodeOps(s)
	}
}

func (x *wireExtractor) elseOps(s ast.Stmt) []wireOp {
	switch e := s.(type) {
	case nil:
		return nil
	case *ast.BlockStmt:
		return x.stmts(e.List)
	default:
		return x.stmt(e)
	}
}

// nodeOps collects primitive calls from a non-control node in preorder.
func (x *wireExtractor) nodeOps(n ast.Node) []wireOp {
	if n == nil {
		return nil
	}
	var out []wireOp
	ast.Inspect(n, func(m ast.Node) bool {
		switch c := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if name, ok := x.primCall(c); ok {
				out = append(out, wireOp{kind: wirePrim, prim: name, pos: c.Pos()})
			}
		}
		return true
	})
	return out
}

// primCall recognizes recv.<primitive>(...) calls.
func (x *wireExtractor) primCall(call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !x.prims[sel.Sel.Name] {
		return "", false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	if x.recv != nil && x.pkg.Info.ObjectOf(id) != x.recv {
		return "", false
	}
	return sel.Sel.Name, true
}

// isVersionCond reports whether the condition reads the configured version
// field of the receiver.
func (x *wireExtractor) isVersionCond(cond ast.Expr) bool {
	if x.versionField == "" {
		return false
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == x.versionField {
			if id, ok := unparen(sel.X).(*ast.Ident); ok {
				if x.recv == nil || x.pkg.Info.ObjectOf(id) == x.recv {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// condText renders the branch condition with the receiver name stripped, so
// `w.version >= 2` and `d.version >= 2` compare equal across functions.
func (x *wireExtractor) condText(cond ast.Expr) string {
	s := types.ExprString(cond)
	if x.recvName != "" {
		s = strings.ReplaceAll(s, x.recvName+".", "")
	}
	return s
}

// intConsts collects the folded integer constants in a condition.
func (x *wireExtractor) intConsts(cond ast.Expr) []int64 {
	seen := map[int64]bool{}
	var out []int64
	ast.Inspect(cond, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := x.pkg.Info.Types[e]; ok && tv.Value != nil {
			if c, ok := constInt64(tv.Value); ok && !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// compare walks the encoder's and one decoder's wire trees in lockstep and
// reports the first divergence, which is where a mutated stream first
// desynchronizes.
func (w *WireCheck) compare(t *Target, encName, decName string, enc, dec []wireOp, path string) *Finding {
	n := len(enc)
	if len(dec) < n {
		n = len(dec)
	}
	for i := 0; i < n; i++ {
		e, d := enc[i], dec[i]
		at := fmt.Sprintf("%s[%d]", path, i)
		if e.kind != d.kind || (e.kind == wirePrim && e.prim != d.prim) {
			return &Finding{Pass: w.Name(), Pos: t.Position(d.pos), Message: fmt.Sprintf(
				"wire format asymmetry at %s: decoder %s reads %s where encoder %s writes %s",
				at, decName, d.describe(), encName, e.describe())}
		}
		switch e.kind {
		case wireBranch:
			if e.cond != d.cond {
				return &Finding{Pass: w.Name(), Pos: t.Position(d.pos), Message: fmt.Sprintf(
					"wire format asymmetry at %s: decoder %s branches on %q where encoder %s branches on %q",
					at, decName, d.cond, encName, e.cond)}
			}
			if f := w.compare(t, encName, decName, e.then, d.then, at+".then"); f != nil {
				return f
			}
			if f := w.compare(t, encName, decName, e.els, d.els, at+".else"); f != nil {
				return f
			}
		case wireRepeat:
			if f := w.compare(t, encName, decName, e.body, d.body, at+".body"); f != nil {
				return f
			}
		}
	}
	if len(dec) > n {
		d := dec[n]
		return &Finding{Pass: w.Name(), Pos: t.Position(d.pos), Message: fmt.Sprintf(
			"wire format asymmetry at %s[%d]: decoder %s reads %s beyond the %d operations encoder %s writes",
			path, n, decName, d.describe(), len(enc), encName)}
	}
	if len(enc) > n {
		e := enc[n]
		return &Finding{Pass: w.Name(), Pos: t.Position(e.pos), Message: fmt.Sprintf(
			"wire format asymmetry at %s[%d]: encoder %s writes %s that decoder %s never reads",
			path, n, encName, e.describe(), decName)}
	}
	return nil
}

// ---------------------------------------------------------------------------
// W2/W2c: decoder allocation and retention discipline

// checkDecoderType applies the allocation-budget and dictionary-retention
// rules to every method of the decoder's receiver type.
func (w *WireCheck) checkDecoderType(t *Target, pkg *Package, decoderDecl *ast.FuncDecl) []Finding {
	if decoderDecl.Recv == nil || len(decoderDecl.Recv.List) == 0 {
		return nil
	}
	recvName := recvTypeName(decoderDecl.Recv.List[0].Type)
	var out []Finding
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if recvTypeName(fd.Recv.List[0].Type) != recvName {
				continue
			}
			out = append(out, w.checkMethodAllocs(t, pkg, fd)...)
			out = append(out, w.checkMethodAppends(t, pkg, fd)...)
		}
	}
	return out
}

// checkMethodAllocs applies W2 to one decoder method: every make whose size
// is not a folded constant is wire-derived and must have a finite proven
// size interval (a declared-length cap) and a preceding terminating
// accumulator-budget guard.
func (w *WireCheck) checkMethodAllocs(t *Target, pkg *Package, fd *ast.FuncDecl) []Finding {
	makes := wireDerivedMakes(pkg, fd)
	if len(makes) == 0 {
		return nil
	}
	name := funcDisplayName(fd)
	guards := budgetGuardPositions(pkg, fd)
	eng := t.values()
	an := eng.analysisOf(pkg, fd)
	if an == nil {
		return nil
	}
	var out []Finding
	reported := map[*ast.CallExpr]bool{}
	an.walk(func(n ast.Node, f *valueFact) {
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok || !makes[call] || reported[call] {
				return true
			}
			reported[call] = true
			size := an.eval(f, call.Args[1])
			if size.hiInf {
				out = append(out, Finding{Pass: w.Name(), Pos: t.Position(call.Pos()), Message: fmt.Sprintf(
					"%s: wire-derived allocation %s is unbounded (size interval %s): cap the declared length before allocating",
					name, types.ExprString(call), size)})
			}
			if !precededByGuard(guards, call.Pos()) {
				out = append(out, Finding{Pass: w.Name(), Pos: t.Position(call.Pos()), Message: fmt.Sprintf(
					"%s: allocation %s precedes the event byte-budget check: accumulate the size into a budget field and reject past the cap before allocating",
					name, types.ExprString(call))})
			}
			return true
		})
	})
	return out
}

// wireDerivedMakes collects the make calls in fd whose size argument does
// not fold to a constant: in a decoder, a non-constant size came off the
// wire.
func wireDerivedMakes(pkg *Package, fd *ast.FuncDecl) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		id, ok := unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, isB := pkg.Info.ObjectOf(id).(*types.Builtin); !isB {
			return true
		}
		if tv, ok := pkg.Info.Types[unparen(call.Args[1])]; ok && tv.Value != nil {
			return true // constant-sized: not wire-derived
		}
		out[call] = true
		return true
	})
	return out
}

// budgetGuardPositions finds the terminating accumulator-budget guards in
// fd: an if statement whose condition compares a receiver field that is
// accumulated with += at or before the guard, and whose body ends in a
// return. The canonical shape is `if acc += int(n); acc > budget { return }`.
func budgetGuardPositions(pkg *Package, fd *ast.FuncDecl) []token.Pos {
	recv := recvObject(pkg, fd)
	accumPos := map[*types.Var]token.Pos{}
	// recordAccum notes a `field += ...` accumulation at position at; the
	// canonical `if acc += n; acc > budget` form credits the accumulation
	// to the guard's own position.
	recordAccum := func(s ast.Stmt, at token.Pos) {
		as, ok := s.(*ast.AssignStmt)
		if !ok || as.Tok != token.ADD_ASSIGN || len(as.Lhs) != 1 {
			return
		}
		field := receiverField(pkg, recv, as.Lhs[0])
		if field != nil {
			if p, seen := accumPos[field]; !seen || at < p {
				accumPos[field] = at
			}
		}
	}
	var guards []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if s, ok := n.(ast.Stmt); ok {
			recordAccum(s, s.Pos())
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if ifs.Init != nil {
			recordAccum(ifs.Init, ifs.Pos())
		}
		field := comparedField(pkg, recv, ifs.Cond)
		if field == nil || !bodyTerminates(ifs.Body) {
			return true
		}
		if p, ok := accumPos[field]; ok && p <= ifs.Pos() {
			guards = append(guards, ifs.Pos())
		}
		return true
	})
	return guards
}

// comparedField extracts the receiver field compared in a budget-guard
// condition like `acc > budget`.
func comparedField(pkg *Package, recv types.Object, cond ast.Expr) *types.Var {
	bin, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch bin.Op {
	case token.GTR, token.GEQ, token.LSS, token.LEQ:
	default:
		return nil
	}
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if field := receiverField(pkg, recv, side); field != nil {
			return field
		}
	}
	return nil
}

// recvObject resolves the receiver variable of a method declaration.
func recvObject(pkg *Package, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pkg.Info.ObjectOf(fd.Recv.List[0].Names[0])
}

// receiverField resolves recv.field selector expressions; state held on a
// local (e.g. an in-flight event struct) is bounded by the event budget and
// out of scope for the retention rules.
func receiverField(pkg *Package, recv types.Object, e ast.Expr) *types.Var {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok || recv == nil || pkg.Info.ObjectOf(id) != recv {
		return nil
	}
	if field, ok := pkg.Info.ObjectOf(sel.Sel).(*types.Var); ok && field.IsField() {
		return field
	}
	return nil
}

// bodyTerminates reports whether a guard body ends the enclosing function's
// current path (its last statement is a return).
func bodyTerminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	_, ok := body.List[len(body.List)-1].(*ast.ReturnStmt)
	return ok
}

// precededByGuard reports whether any budget guard sits before pos.
func precededByGuard(guards []token.Pos, pos token.Pos) bool {
	for _, g := range guards {
		if g < pos {
			return true
		}
	}
	return false
}

// checkMethodAppends applies W2c to one decoder method: appends to receiver
// slice fields (the per-stream dictionary) must be guarded by a
// `len(field) < cap` condition, or decoder memory grows with the stream.
func (w *WireCheck) checkMethodAppends(t *Target, pkg *Package, fd *ast.FuncDecl) []Finding {
	name := funcDisplayName(fd)
	recv := recvObject(pkg, fd)
	var out []Finding
	var visit func(n ast.Node, guarded map[*types.Var]bool)
	visit = func(n ast.Node, guarded map[*types.Var]bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.IfStmt:
				if s.Init != nil {
					visit(s.Init, guarded)
				}
				visit(s.Cond, guarded)
				inner := guarded
				if f := lenCapGuardedField(pkg, recv, s.Cond); f != nil {
					inner = map[*types.Var]bool{f: true}
					for k := range guarded {
						inner[k] = true
					}
				}
				visit(s.Body, inner)
				if s.Else != nil {
					visit(s.Else, guarded)
				}
				return false
			case *ast.CallExpr:
				if field, ok := appendToField(pkg, recv, s); ok && !guarded[field] {
					out = append(out, Finding{Pass: w.Name(), Pos: t.Position(s.Pos()), Message: fmt.Sprintf(
						"%s: dictionary append %s has no len(%s) cap guard: a malicious stream grows decoder memory without bound",
						name, types.ExprString(s), field.Name())})
				}
			}
			return true
		})
	}
	visit(fd.Body, map[*types.Var]bool{})
	return out
}

// lenCapGuardedField recognizes `len(recv.field) < cap` (or <=) conditions
// and returns the capped field.
func lenCapGuardedField(pkg *Package, recv types.Object, cond ast.Expr) *types.Var {
	bin, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	var lenSide ast.Expr
	switch bin.Op {
	case token.LSS, token.LEQ:
		lenSide = bin.X
	case token.GTR, token.GEQ:
		lenSide = bin.Y
	default:
		return nil
	}
	call, ok := unparen(lenSide).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "len" {
		return nil
	}
	if _, isB := pkg.Info.ObjectOf(id).(*types.Builtin); !isB {
		return nil
	}
	return receiverField(pkg, recv, call.Args[0])
}

// appendToField recognizes append(recv.field, ...) calls on slice fields.
func appendToField(pkg *Package, recv types.Object, call *ast.CallExpr) (*types.Var, bool) {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil, false
	}
	if _, isB := pkg.Info.ObjectOf(id).(*types.Builtin); !isB {
		return nil, false
	}
	field := receiverField(pkg, recv, call.Args[0])
	if field == nil {
		return nil, false
	}
	if _, isSlice := field.Type().Underlying().(*types.Slice); !isSlice {
		return nil, false
	}
	return field, true
}

// ---------------------------------------------------------------------------
// W3: negotiation coverage

// checkNegotiation verifies every positive version constant the negotiation
// function can return is covered by each wire sequence: version 1 is the
// base format, higher versions must appear in a version branch.
func (w *WireCheck) checkNegotiation(t *Target, pkg *Package, fd *ast.FuncDecl, order []string, sequences map[string][]wireOp) []Finding {
	type versionReturn struct {
		v   int64
		pos token.Pos
	}
	var admitted []versionReturn
	seen := map[int64]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		if tv, ok := pkg.Info.Types[unparen(ret.Results[0])]; ok && tv.Value != nil {
			if c, ok := constInt64(tv.Value); ok && c >= 1 && !seen[c] {
				seen[c] = true
				admitted = append(admitted, versionReturn{v: c, pos: ret.Pos()})
			}
		}
		return true
	})
	var out []Finding
	for _, vr := range admitted {
		var missing []string
		for _, name := range order {
			covered := map[int64]bool{1: true}
			coveredVersions(sequences[name], covered)
			if !covered[vr.v] {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			out = append(out, Finding{Pass: w.Name(), Pos: t.Position(vr.pos), Message: fmt.Sprintf(
				"format negotiation %s admits version %d, which no version branch of %s implements",
				funcDisplayName(fd), vr.v, strings.Join(missing, ", "))})
		}
	}
	return out
}

// coveredVersions accumulates the version constants mentioned by the
// sequence's version branches.
func coveredVersions(ops []wireOp, into map[int64]bool) {
	for _, op := range ops {
		switch op.kind {
		case wireBranch:
			for _, v := range op.vers {
				into[v] = true
			}
			coveredVersions(op.then, into)
			coveredVersions(op.els, into)
		case wireRepeat:
			coveredVersions(op.body, into)
		}
	}
}
