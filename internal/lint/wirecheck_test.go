package lint

import (
	"strings"
	"testing"
)

// fixtureWireCheck configures the pass for the miniature wire format the
// wirecheck fixtures implement.
func fixtureWireCheck() *WireCheck {
	return &WireCheck{Spec: WireSpec{
		Encoder:         "Writer.Emit",
		Decoders:        []string{"Parser.Next", "Batch.Next"},
		Primitives:      []string{"uvarint", "varint", "str"},
		VersionField:    "version",
		NegotiationFunc: "declaredFormat",
	}}
}

func TestWireCheckBad(t *testing.T) {
	tgt := fixtureTarget(t, "wirecheck_bad")
	findings := fixtureWireCheck().Run(tgt)

	// W1: Parser reads the name before the pid; only the first divergence
	// reports per decoder.
	f := requireFinding(t, findings, "decoder Parser.Next reads str where encoder Writer.Emit writes uvarint")
	if want := fixtureLine(t, "wirecheck_bad/bad.go", "want: reordered before the pid read"); f.Pos.Line != want {
		t.Errorf("reorder finding at line %d, want %d", f.Pos.Line, want)
	}

	// W1: Batch reads the zigzagged return with the wrong width.
	requireFinding(t, findings, "decoder Batch.Next reads uvarint where encoder Writer.Emit writes varint")

	// W2: the Parser string buffer is both uncapped and unbudgeted.
	requireFinding(t, findings, "is unbounded (size interval")
	requireFinding(t, findings, "precedes the event byte-budget check")

	// W2c: the Parser dictionary grows without a cap.
	requireFinding(t, findings, "dictionary append append(p.dict, s) has no len(dict) cap guard")

	// W3: negotiation admits version 3, which nothing implements.
	w3 := requireFinding(t, findings, "admits version 3")
	for _, name := range []string{"Writer.Emit", "Parser.Next", "Batch.Next"} {
		if !strings.Contains(w3.Message, name) {
			t.Errorf("W3 finding does not name %s: %s", name, w3.Message)
		}
	}

	if len(findings) != 6 {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Errorf("wirecheck_bad produced %d findings, want 6", len(findings))
	}
}

func TestWireCheckClean(t *testing.T) {
	tgt := fixtureTarget(t, "wirecheck_good")
	for _, f := range fixtureWireCheck().Run(tgt) {
		t.Errorf("unexpected finding: %s", f)
	}
}

// The default configuration must hold on the live tree: the real
// BinaryWriter/BinaryParser/BatchDecoder trio and the daemon's format
// negotiation are symmetric and disciplined.
func TestWireCheckLiveTree(t *testing.T) {
	tgt := repoTarget(t)
	for _, f := range NewWireCheck().Run(tgt) {
		t.Errorf("live tree finding: %s", f)
	}
}

// A configured-but-missing encoder is config rot, not silence.
func TestWireCheckConfigRot(t *testing.T) {
	tgt := fixtureTarget(t, "wirecheck_good")
	w := fixtureWireCheck()
	w.Spec.Encoder = "Gone.Emit"
	findings := w.Run(tgt)
	requireFinding(t, findings, "encoder Gone.Emit, which does not exist")
}
