package metrics

import (
	"fmt"
	"regexp"
)

// TargetBuilder constructs non-uniform TCD target arrays (§6 future work:
// "explore non-uniform target arrays (T)"). Developers declare a base
// target plus pattern rules — e.g. weight persistence-related partitions
// higher for crash-consistency work — and the builder resolves them against
// a report's partition labels.
//
//	targets, _ := metrics.NewTargetBuilder(100).
//	    Rule(`^O_(SYNC|DSYNC)$`, 10_000).
//	    Rule(`^=0$`, 1_000).
//	    Build(report.Labels())
//
// Later rules win on overlap, so specific overrides come last.
type TargetBuilder struct {
	base  int64
	rules []targetRule
	err   error
}

type targetRule struct {
	re     *regexp.Regexp
	target int64
}

// NewTargetBuilder starts a builder whose default per-partition target is
// base.
func NewTargetBuilder(base int64) *TargetBuilder {
	return &TargetBuilder{base: base}
}

// Rule adds a pattern rule: partitions whose label matches pattern get the
// given target. Compilation errors surface at Build.
func (b *TargetBuilder) Rule(pattern string, target int64) *TargetBuilder {
	if b.err != nil {
		return b
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		b.err = fmt.Errorf("metrics: target rule %q: %w", pattern, err)
		return b
	}
	b.rules = append(b.rules, targetRule{re: re, target: target})
	return b
}

// Build resolves the targets for the given partition labels, in order.
func (b *TargetBuilder) Build(labels []string) ([]int64, error) {
	if b.err != nil {
		return nil, b.err
	}
	out := make([]int64, len(labels))
	for i, label := range labels {
		out[i] = b.base
		for _, r := range b.rules {
			if r.re.MatchString(label) {
				out[i] = r.target
			}
		}
	}
	return out, nil
}
