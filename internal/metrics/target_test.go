package metrics

import (
	"reflect"
	"testing"
)

func TestTargetBuilder(t *testing.T) {
	labels := []string{"O_RDONLY", "O_SYNC", "O_DSYNC", "=0", "2^10"}
	targets, err := NewTargetBuilder(100).
		Rule(`^O_(SYNC|DSYNC)$`, 10_000).
		Rule(`^=0$`, 1_000).
		Build(labels)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{100, 10_000, 10_000, 1_000, 100}
	if !reflect.DeepEqual(targets, want) {
		t.Errorf("targets = %v, want %v", targets, want)
	}
}

func TestTargetBuilderLaterRulesWin(t *testing.T) {
	targets, err := NewTargetBuilder(1).
		Rule(`^O_`, 10).
		Rule(`^O_SYNC$`, 99).
		Build([]string{"O_SYNC", "O_CREAT"})
	if err != nil {
		t.Fatal(err)
	}
	if targets[0] != 99 || targets[1] != 10 {
		t.Errorf("targets = %v", targets)
	}
}

func TestTargetBuilderBadPattern(t *testing.T) {
	if _, err := NewTargetBuilder(1).Rule(`([`, 5).Build([]string{"x"}); err == nil {
		t.Error("bad pattern accepted")
	}
	// Error is sticky through further rules.
	if _, err := NewTargetBuilder(1).Rule(`([`, 5).Rule(`ok`, 1).Build(nil); err == nil {
		t.Error("sticky error lost")
	}
}

func TestTargetBuilderWithTCD(t *testing.T) {
	labels := []string{"O_SYNC", "O_RDONLY"}
	freqs := []int64{10, 10_000}
	targets, err := NewTargetBuilder(10_000).Rule(`^O_SYNC$`, 10).Build(labels)
	if err != nil {
		t.Fatal(err)
	}
	// Frequencies exactly match the non-uniform targets: TCD 0.
	got, err := TCD(freqs, targets)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("matched TCD = %f", got)
	}
	// Against the uniform target the same suite scores poorly.
	if UniformTCD(freqs, 10_000) <= 0 {
		t.Error("uniform TCD should be positive")
	}
}
