// Package metrics implements the paper's Test Coverage Deviation (TCD)
// metric (§4, "Application: syscall test adequacy") and the under-/over-
// testing classification built on it.
//
// TCD is the root mean square deviation between the log-frequencies of a
// coverage vector and a target vector:
//
//	TCD(T) = sqrt( 1/N * Σ (log10 F_i − log10 T_i)² )
//
// Logarithms downplay over-testing relative to under-testing, which the
// paper argues is the more harmful of the two. A lower TCD means the suite
// is closer to the developer-chosen target.
package metrics

import (
	"fmt"
	"math"
)

// lg is the guarded log10 used throughout: untested partitions (frequency
// zero) contribute log10(0) := 0, i.e. they are treated like frequency 1.
// This keeps TCD finite while still penalizing untested partitions by their
// full distance to the target.
func lg(x int64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log10(float64(x))
}

// TCD computes the Test Coverage Deviation of frequencies against a
// per-partition target array. The slices must have equal non-zero length.
func TCD(freqs, targets []int64) (float64, error) {
	if len(freqs) == 0 {
		return 0, fmt.Errorf("metrics: empty frequency vector")
	}
	if len(freqs) != len(targets) {
		return 0, fmt.Errorf("metrics: %d frequencies vs %d targets", len(freqs), len(targets))
	}
	var sum float64
	for i := range freqs {
		d := lg(freqs[i]) - lg(targets[i])
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(freqs))), nil
}

// UniformTCD computes TCD against the uniform target T_i = target for all i
// (the configuration the paper's Figure 5 sweeps).
func UniformTCD(freqs []int64, target int64) float64 {
	if len(freqs) == 0 {
		return 0
	}
	lt := lg(target)
	var sum float64
	for _, f := range freqs {
		d := lg(f) - lt
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(freqs)))
}

// LinearTCD is the ablation variant computed in linear space. It exists to
// demonstrate why the paper uses logarithms: a single over-tested partition
// dominates the linear metric, hiding under-testing entirely.
func LinearTCD(freqs []int64, target int64) float64 {
	if len(freqs) == 0 {
		return 0
	}
	var sum float64
	for _, f := range freqs {
		d := float64(f - target)
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(freqs)))
}

// SweepPoint is one (target, TCD) sample of a Figure 5 sweep.
type SweepPoint struct {
	Target int64
	TCD    float64
}

// Sweep evaluates UniformTCD at logarithmically spaced targets from 1 to
// maxTarget (inclusive), with pointsPerDecade samples per decade.
func Sweep(freqs []int64, maxTarget int64, pointsPerDecade int) []SweepPoint {
	if pointsPerDecade <= 0 {
		pointsPerDecade = 10
	}
	var out []SweepPoint
	maxLog := math.Log10(float64(maxTarget))
	steps := int(maxLog*float64(pointsPerDecade)) + 1
	prev := int64(0)
	for i := 0; i <= steps; i++ {
		t := int64(math.Round(math.Pow(10, float64(i)/float64(pointsPerDecade))))
		if t <= prev {
			continue
		}
		prev = t
		out = append(out, SweepPoint{Target: t, TCD: UniformTCD(freqs, t)})
	}
	return out
}

// Crossover finds the smallest uniform target at which b's TCD becomes no
// worse than a's (the paper reports CrashMonkey better below T≈5,237 and
// xfstests better above, for open flags). It binary-searches the target
// space [1, maxTarget]; found reports whether a crossover exists in range.
func Crossover(a, b []int64, maxTarget int64) (target int64, found bool) {
	diff := func(t int64) float64 { return UniformTCD(b, t) - UniformTCD(a, t) }
	if diff(1) <= 0 {
		return 1, true
	}
	if diff(maxTarget) > 0 {
		return 0, false
	}
	lo, hi := int64(1), maxTarget // diff(lo) > 0, diff(hi) <= 0
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if diff(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, true
}

// Adequacy classifies one partition against its target.
type Adequacy int

// Adequacy classes.
const (
	// Untested: frequency zero.
	Untested Adequacy = iota
	// UnderTested: tested, but at least a factor of ratio below target.
	UnderTested
	// Adequate: within a factor of ratio of the target.
	Adequate
	// OverTested: at least a factor of ratio above target.
	OverTested
)

func (a Adequacy) String() string {
	switch a {
	case Untested:
		return "untested"
	case UnderTested:
		return "under-tested"
	case Adequate:
		return "adequate"
	case OverTested:
		return "over-tested"
	default:
		return "unknown"
	}
}

// Classify buckets a frequency against a target with a tolerance ratio
// (ratio <= 1 is treated as 10).
func Classify(freq, target int64, ratio float64) Adequacy {
	if ratio <= 1 {
		ratio = 10
	}
	switch {
	case freq == 0:
		return Untested
	case float64(freq)*ratio < float64(target):
		return UnderTested
	case float64(freq) > float64(target)*ratio:
		return OverTested
	default:
		return Adequate
	}
}

// ClassifyAll applies Classify across a frequency vector and returns the
// count of partitions in each class, in Adequacy order.
func ClassifyAll(freqs []int64, target int64, ratio float64) [4]int {
	var out [4]int
	for _, f := range freqs {
		out[Classify(f, target, ratio)]++
	}
	return out
}
