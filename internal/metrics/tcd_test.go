package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTCDPerfectMatch(t *testing.T) {
	freqs := []int64{100, 1000, 10}
	got, err := TCD(freqs, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("TCD(x,x) = %f, want 0", got)
	}
}

func TestTCDErrors(t *testing.T) {
	if _, err := TCD(nil, nil); err == nil {
		t.Error("empty vectors accepted")
	}
	if _, err := TCD([]int64{1}, []int64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestTCDKnownValue(t *testing.T) {
	// One partition at 10^4, target 10^2: deviation 2 in log space.
	got, _ := TCD([]int64{10000}, []int64{100})
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("TCD = %f, want 2", got)
	}
	// Two partitions, deviations 2 and 0: sqrt((4+0)/2).
	got, _ = TCD([]int64{10000, 100}, []int64{100, 100})
	if math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Errorf("TCD = %f, want sqrt(2)", got)
	}
}

func TestUntestedPartitionContributes(t *testing.T) {
	// An untested partition behaves like frequency 1: full distance to the
	// target.
	a := UniformTCD([]int64{0}, 1000)
	b := UniformTCD([]int64{1}, 1000)
	if a != b {
		t.Errorf("untested %f != freq-1 %f", a, b)
	}
	if math.Abs(a-3) > 1e-9 {
		t.Errorf("TCD = %f, want 3", a)
	}
}

func TestUniformTCDMatchesTCD(t *testing.T) {
	freqs := []int64{5, 0, 7924, 120, 3}
	targets := []int64{100, 100, 100, 100, 100}
	want, _ := TCD(freqs, targets)
	got := UniformTCD(freqs, 100)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("uniform %f != general %f", got, want)
	}
}

func TestUnderTestingPenalizedMoreThanOver(t *testing.T) {
	// The paper wants to downplay over-testing: a suite 100x over target
	// must score the same log deviation as 100x under, but in linear space
	// over-testing would dominate. Check the log metric is symmetric in
	// ratio while the linear one is not.
	target := int64(1000)
	over := UniformTCD([]int64{100000}, target)
	under := UniformTCD([]int64{10}, target)
	if math.Abs(over-under) > 1e-9 {
		t.Errorf("log metric asymmetric: over %f vs under %f", over, under)
	}
	linOver := LinearTCD([]int64{100000}, target)
	linUnder := LinearTCD([]int64{10}, target)
	if linOver <= linUnder {
		t.Error("linear metric should be dominated by over-testing")
	}
}

func TestTCDMonotoneAwayFromTarget(t *testing.T) {
	// Property: moving a single frequency further from the target (in
	// ratio) never decreases TCD.
	f := func(exp uint8) bool {
		target := int64(1000)
		k := int64(exp%6) + 1
		near := int64(1000)
		far := near * pow10(k)
		return UniformTCD([]int64{far}, target) >= UniformTCD([]int64{near}, target)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func pow10(k int64) int64 {
	out := int64(1)
	for i := int64(0); i < k; i++ {
		out *= 10
	}
	return out
}

func TestSweep(t *testing.T) {
	freqs := []int64{10, 100, 0, 1000}
	pts := Sweep(freqs, 1_000_000, 5)
	if len(pts) == 0 {
		t.Fatal("empty sweep")
	}
	if pts[0].Target != 1 {
		t.Errorf("first target = %d", pts[0].Target)
	}
	last := pts[len(pts)-1]
	if last.Target < 900_000 {
		t.Errorf("last target = %d", last.Target)
	}
	// Targets strictly increase.
	for i := 1; i < len(pts); i++ {
		if pts[i].Target <= pts[i-1].Target {
			t.Errorf("targets not increasing at %d", i)
		}
	}
}

func TestCrossover(t *testing.T) {
	// Low-frequency suite (like CrashMonkey) vs high-frequency suite (like
	// xfstests): the low suite wins at small targets, the high one at
	// large targets.
	low := []int64{10, 20, 30, 0, 0}
	high := []int64{100000, 200000, 300000, 400000, 0}
	cross, found := Crossover(low, high, 100_000_000)
	if !found {
		t.Fatal("no crossover found")
	}
	// Verify the defining property of the crossover point.
	if UniformTCD(high, cross) > UniformTCD(low, cross) {
		t.Errorf("at %d high still worse", cross)
	}
	if cross > 1 && UniformTCD(high, cross-1) <= UniformTCD(low, cross-1) {
		t.Errorf("crossover %d not minimal", cross)
	}
}

func TestCrossoverBoundaries(t *testing.T) {
	// An untested suite scores 0 at target 1 (untested partitions count as
	// frequency 1), so against a 100x-tested suite it is immediately
	// better: crossover at 1.
	tested := []int64{100, 100, 100}
	untested := []int64{0, 0, 0}
	if cross, found := Crossover(tested, untested, 1000); !found || cross != 1 {
		t.Errorf("crossover = %d,%v, want 1,true", cross, found)
	}
	// The other way: the tested suite overtakes exactly when the target
	// reaches the geometric midpoint, here T = 10 (lg 10 = |2 - lg 10|).
	if cross, found := Crossover(untested, tested, 1000); !found || cross != 10 {
		t.Errorf("crossover = %d,%v, want 10,true", cross, found)
	}
	// No crossover within range: b never catches a.
	a := []int64{10, 10, 10}
	b := []int64{100000, 100000, 100000}
	if _, found := Crossover(a, b, 3); found {
		t.Error("crossover found below its true location")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		freq, target int64
		want         Adequacy
	}{
		{0, 1000, Untested},
		{5, 1000, UnderTested},
		{100, 1000, Adequate}, // within 10x
		{1000, 1000, Adequate},
		{10000, 1000, Adequate}, // exactly 10x is still adequate
		{10001, 1000, OverTested},
		{99, 1000, UnderTested}, // 99*10 < 1000
	}
	for _, c := range cases {
		if got := Classify(c.freq, c.target, 10); got != c.want {
			t.Errorf("Classify(%d,%d) = %v, want %v", c.freq, c.target, got, c.want)
		}
	}
}

func TestClassifyAll(t *testing.T) {
	freqs := []int64{0, 5, 1000, 100000}
	counts := ClassifyAll(freqs, 1000, 10)
	if counts[Untested] != 1 || counts[UnderTested] != 1 ||
		counts[Adequate] != 1 || counts[OverTested] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestAdequacyString(t *testing.T) {
	if Untested.String() != "untested" || OverTested.String() != "over-tested" {
		t.Error("bad adequacy strings")
	}
	if Adequacy(42).String() != "unknown" {
		t.Error("bad unknown string")
	}
}

func TestEmptyVectors(t *testing.T) {
	if UniformTCD(nil, 10) != 0 || LinearTCD(nil, 10) != 0 {
		t.Error("empty vector should yield 0")
	}
}
