package partition

import (
	"math"
	"testing"

	"iocov/internal/sys"
	"iocov/internal/sysspec"
)

// domainProbeValues is the dynamic twin of iocovlint's exhaustive probe set:
// numeric boundaries, every power of two with neighbours, every named flag
// and mode bit with access-mode combinations, and the categorical whence and
// xattr values (plus out-of-range neighbours).
func domainProbeValues() []int64 {
	seen := make(map[int64]bool)
	var out []int64
	add := func(vs ...int64) {
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	add(math.MinInt64, math.MaxInt64, -12345, -3, -2, -1, 0, 1, 2, 3, 4, 5, 6, 7)
	for k := 0; k <= MaxLog2; k++ {
		v := int64(1) << k
		add(v-1, v, v+1)
	}
	for _, f := range sys.OpenFlagNames {
		add(int64(f.Bit))
		add(int64(f.Bit | sys.O_WRONLY))
		add(int64(f.Bit | sys.O_RDWR))
		add(int64(f.Bit | sys.O_ACCMODE))
	}
	for _, b := range sys.ModeBitNames {
		add(int64(b.Bit))
	}
	add(int64(sys.PermMask), 0o7777, 0o170000)
	add(int64(sys.XATTR_CREATE), int64(sys.XATTR_REPLACE))
	for w := int64(-1); w < int64(len(sys.WhenceNames))+2; w++ {
		add(w)
	}
	return out
}

// trackedSchemes enumerates every scheme name either sysspec table declares.
func trackedSchemes() []string {
	seen := make(map[string]bool)
	var out []string
	for _, tbl := range []*sysspec.Table{sysspec.NewTable(), sysspec.NewExtendedTable()} {
		for _, base := range tbl.Bases() {
			for _, arg := range tbl.Spec(base).TrackedArgs() {
				if !seen[arg.Scheme] {
					seen[arg.Scheme] = true
					out = append(out, arg.Scheme)
				}
			}
		}
	}
	return out
}

// TestEverySchemeDomainInvariants asserts, for every registered scheme, that
// Domain() is non-empty and duplicate-free and that Partitions() stays inside
// it over the probe set — the dynamic twin of iocovlint's domaincheck.
func TestEverySchemeDomainInvariants(t *testing.T) {
	probes := domainProbeValues()
	checked := 0
	for _, name := range trackedSchemes() {
		in := ForScheme(name)
		if in == nil {
			continue // identifier schemes are deliberately unpartitioned
		}
		checked++
		domain := in.Domain()
		if len(domain) == 0 {
			t.Errorf("scheme %q: empty domain", name)
			continue
		}
		set := make(map[string]bool, len(domain))
		for _, lbl := range domain {
			if set[lbl] {
				t.Errorf("scheme %q: domain repeats %q", name, lbl)
			}
			set[lbl] = true
		}
		for _, v := range probes {
			for _, lbl := range in.Partitions(v) {
				if !set[lbl] {
					t.Errorf("scheme %q: Partitions(%d) emits %q outside Domain()", name, v, lbl)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no partitioned schemes found in the sysspec tables")
	}
}

// TestOutputDomainCoversOutput asserts, for every base spec in both tables,
// that OutputDomain is duplicate-free and closed over Output for every
// RetKind: success returns across the probe set and every declared errno in
// both return conventions (negative-return and zero-return).
func TestOutputDomainCoversOutput(t *testing.T) {
	probes := domainProbeValues()
	for _, tbl := range []*sysspec.Table{sysspec.NewTable(), sysspec.NewExtendedTable()} {
		for _, base := range tbl.Bases() {
			spec := tbl.Spec(base)
			domain := OutputDomain(spec)
			set := make(map[string]bool, len(domain))
			for _, lbl := range domain {
				if set[lbl] {
					t.Errorf("%s: OutputDomain repeats %q", base, lbl)
				}
				set[lbl] = true
			}
			check := func(ret int64, err sys.Errno) {
				if lbl := Output(spec.Ret, ret, err); !set[lbl] {
					t.Errorf("%s: Output(ret=%d, err=%s) = %q outside OutputDomain()",
						base, ret, err.Name(), lbl)
				}
			}
			for _, v := range probes {
				check(v, sys.OK)
			}
			for _, e := range spec.Errnos {
				check(-int64(e), e)
				check(0, e)
			}
		}
	}
}
