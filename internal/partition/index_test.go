package partition

import (
	"math/rand"
	"reflect"
	"testing"

	"iocov/internal/sys"
	"iocov/internal/sysspec"
)

// indexProbeValues is an aggressive probe corpus: every boundary the schemes
// care about, every flag bit alone and in bulk, plus random words.
func indexProbeValues() []int64 {
	vals := []int64{-(1 << 62), -4096, -2, -1, 0, 1, 2, 3, 4, 5, 7, 8, 100,
		1023, 1024, 1025, 1 << 20, 1<<62 - 1, 1 << 62, 1<<63 - 1}
	for _, f := range sys.OpenFlagNames {
		vals = append(vals, int64(f.Bit))
		vals = append(vals, int64(f.Bit|sys.O_RDWR))
		vals = append(vals, int64(f.Bit|sys.O_ACCMODE))
	}
	for _, b := range sys.ModeBitNames {
		vals = append(vals, int64(b.Bit))
	}
	vals = append(vals, int64(sys.O_SYNC), int64(sys.O_DSYNC),
		int64(sys.O_TMPFILE), int64(sys.O_DIRECTORY),
		int64(sys.O_SYNC|sys.O_TMPFILE|sys.O_RDWR), 0o777, 0o7777)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		vals = append(vals, int64(rng.Uint64()>>1), -int64(rng.Uint64()>>1),
			int64(rng.Intn(1<<24)))
	}
	return vals
}

// TestPartitionIndicesAgreeWithLabels is the dense-index twin invariant:
// for every scheme and every probe value, mapping PartitionIndices through
// Domain() must reproduce Partitions exactly — same partitions, same order.
func TestPartitionIndicesAgreeWithLabels(t *testing.T) {
	schemes := []string{
		sysspec.SchemeOpenFlags, sysspec.SchemeModeBits, sysspec.SchemeBytes,
		sysspec.SchemeOffset, sysspec.SchemeWhence, sysspec.SchemeXattrFlags,
	}
	vals := indexProbeValues()
	var scratch []int
	for _, scheme := range schemes {
		ix := IndexerForScheme(scheme)
		if ix == nil {
			t.Fatalf("scheme %q has no Indexer", scheme)
		}
		domain := ix.Domain()
		for _, v := range vals {
			scratch = ix.PartitionIndices(v, scratch[:0])
			got := make([]string, len(scratch))
			for i, ord := range scratch {
				if ord < 0 || ord >= len(domain) {
					t.Fatalf("%s: value %d: ordinal %d outside domain of %d",
						scheme, v, ord, len(domain))
				}
				got[i] = domain[ord]
			}
			want := ix.Partitions(v)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: value %d: indices map to %v, Partitions = %v",
					scheme, v, got, want)
			}
		}
	}
}

// TestIndexerForSchemeIdentifier confirms identifier schemes stay
// unpartitioned in the ordinal API too.
func TestIndexerForSchemeIdentifier(t *testing.T) {
	if ix := IndexerForScheme(sysspec.SchemePath); ix != nil {
		t.Errorf("identifier scheme got an indexer: %v", ix)
	}
}

// TestOutputIndexerAgreesWithOutput checks the compiled output domain against
// the label path for every spec in the extended table, over all documented
// errnos, undocumented errnos, and return-value boundaries.
func TestOutputIndexerAgreesWithOutput(t *testing.T) {
	tbl := sysspec.NewExtendedTable()
	rets := []int64{-5, -1, 0, 1, 2, 1023, 1024, 1 << 30, 1<<62 - 1, 1<<63 - 1}
	for _, base := range tbl.Bases() {
		spec := tbl.Spec(base)
		x := NewOutputIndexer(spec)
		if !reflect.DeepEqual(x.Domain(), OutputDomain(spec)) {
			t.Fatalf("%s: compiled domain differs from OutputDomain", base)
		}
		domain := x.Domain()
		// Success outcomes.
		for _, ret := range rets {
			idx, ok := x.Index(ret, sys.OK)
			if !ok {
				t.Fatalf("%s: success ret %d not indexable", base, ret)
			}
			if want := Output(spec.Ret, ret, sys.OK); domain[idx] != want {
				t.Fatalf("%s: ret %d: index %d = %q, Output = %q",
					base, ret, idx, domain[idx], want)
			}
		}
		// Documented errnos.
		for _, e := range spec.Errnos {
			idx, ok := x.Index(0, e)
			if !ok || domain[idx] != e.Name() {
				t.Fatalf("%s: errno %s: idx=%d ok=%v", base, e.Name(), idx, ok)
			}
			if idx < x.SuccessOrdinals() {
				t.Fatalf("%s: errno %s indexed into success ordinals", base, e.Name())
			}
		}
		// An errno no spec documents must fall back to the label path.
		if _, ok := x.Index(0, sys.Errno(250)); ok {
			t.Fatalf("%s: undocumented errno claimed indexable", base)
		}
	}
}

// TestFlagComboSizeMatchesDecode pins the counting fast path to the decoded
// label count.
func TestFlagComboSizeMatchesDecode(t *testing.T) {
	for _, v := range indexProbeValues() {
		if got, want := FlagComboSize(v), len(sys.DecodeOpenFlags(int(v))); got != want {
			t.Fatalf("FlagComboSize(%#o) = %d, len(DecodeOpenFlags) = %d", v, got, want)
		}
	}
}
