// Package partition implements the input- and output-space partitioning at
// the heart of IOCov (§3). Each of the paper's four argument classes gets a
// partitioning scheme:
//
//   - bitmap arguments (open flags, mode bits) partition per flag, so one
//     call can hit several partitions;
//   - numeric arguments (byte counts, offsets, lengths) partition by powers
//     of two, with dedicated boundary partitions for zero and negative
//     values;
//   - categorical arguments (lseek whence, setxattr flags) partition per
//     value, plus an "invalid" partition for out-of-domain values;
//   - identifier arguments (fds, pathnames) are recorded but not
//     partitioned by default, matching the paper's future-work boundary.
//
// Outputs partition into success — subdivided by powers of two when the
// syscall returns a byte count — and one partition per errno.
package partition

import (
	"fmt"
	"math/bits"

	"iocov/internal/sys"
	"iocov/internal/sysspec"
)

// MaxLog2 is the largest power-of-two bucket reachable for numeric values:
// the largest positive int64, 2^63-1, rounds down to bucket 2^62. (The
// domain used to end at an unreachable 2^63 bucket; iocovlint's domaincheck
// completeness probe flags such dead entries.)
const MaxLog2 = 62

// Labels for the boundary partitions of numeric schemes.
const (
	LabelZero     = "=0"
	LabelNegative = "<0"
	LabelOK       = "OK"
	LabelInvalid  = "invalid"
)

// log2Labels precomputes every reachable power-of-two bucket label so the
// per-event path never formats strings.
var log2Labels = func() [MaxLog2 + 1]string {
	var out [MaxLog2 + 1]string
	for k := range out {
		out[k] = fmt.Sprintf("2^%d", k)
	}
	return out
}()

// Log2Label formats the power-of-two bucket label for exponent k, e.g.
// "2^10" for values in [1024, 2047]. Exponents in [0, MaxLog2] are served
// from a precomputed table.
func Log2Label(k int) string {
	if k >= 0 && k <= MaxLog2 {
		return log2Labels[k]
	}
	return fmt.Sprintf("2^%d", k)
}

// Log2Bucket returns the bucket exponent for a positive value: the paper
// rounds each value down to the nearest power-of-two boundary, so 1024-2047
// all land in bucket 10. The precondition is v > 0; zero and negative
// values belong to the "=0" and "<0" boundary partitions, not to any
// power-of-two bucket, so Log2Bucket returns the sentinel -1 for them
// (rather than letting uint64 wraparound misclassify a negative into
// bucket 63).
//
//iocov:hotpath
func Log2Bucket(v int64) int {
	if v <= 0 {
		return -1
	}
	return bits.Len64(uint64(v)) - 1
}

// Input is a partitioning scheme for one argument class.
type Input interface {
	// Scheme returns the sysspec scheme name this partitioner implements.
	Scheme() string
	// Partitions returns the partition labels hit by one observed value.
	// Bitmap schemes return one label per set flag; all other schemes
	// return exactly one label.
	Partitions(value int64) []string
	// Domain returns every partition label in canonical report order.
	Domain() []string
}

// Indexer is the ordinal counterpart of Input: PartitionIndices reports the
// partitions hit by a value as indices into Domain(), appending them into a
// caller-owned scratch buffer so the per-event hot path performs no
// allocation and no label formatting. Every scheme in the registry
// implements it; the indices agree with Partitions element-for-element
// (same partitions, same order), an invariant the package tests verify over
// the exhaustive probe corpus.
type Indexer interface {
	Input
	// PartitionIndices appends the Domain() ordinals hit by value to
	// scratch and returns the extended slice. Callers reuse the returned
	// slice's backing array across events (pass scratch[:0]).
	PartitionIndices(value int64, scratch []int) []int
}

// IndexerForScheme returns the Indexer for a sysspec scheme name, or nil for
// identifier schemes.
func IndexerForScheme(scheme string) Indexer {
	in, _ := ForScheme(scheme).(Indexer)
	return in
}

// ForScheme returns the Input partitioner for a sysspec scheme name, or nil
// for identifier schemes (which are not partitioned).
func ForScheme(scheme string) Input {
	switch scheme {
	case sysspec.SchemeOpenFlags:
		return openFlagsScheme{}
	case sysspec.SchemeModeBits:
		return modeBitsScheme{}
	case sysspec.SchemeBytes:
		return BytesScheme{}
	case sysspec.SchemeOffset:
		return OffsetScheme{}
	case sysspec.SchemeWhence:
		return whenceScheme{}
	case sysspec.SchemeXattrFlags:
		return xattrFlagsScheme{}
	default:
		return nil
	}
}

// BytesScheme partitions non-negative byte counts: "=0" then powers of two.
// Negative values (which the kernel would reject) land in "<0" so malformed
// traces remain visible rather than silently dropped.
type BytesScheme struct{}

// Scheme implements Input.
func (BytesScheme) Scheme() string { return sysspec.SchemeBytes }

// Partitions implements Input.
func (BytesScheme) Partitions(v int64) []string {
	switch {
	case v < 0:
		return []string{LabelNegative}
	case v == 0:
		return []string{LabelZero}
	default:
		return []string{Log2Label(Log2Bucket(v))}
	}
}

// Domain implements Input.
func (BytesScheme) Domain() []string {
	out := make([]string, 0, MaxLog2+3)
	out = append(out, LabelNegative, LabelZero)
	for k := 0; k <= MaxLog2; k++ {
		out = append(out, Log2Label(k))
	}
	return out
}

// numericIndex is the shared ordinal formula for the numeric domains, whose
// layout is [<0, =0, 2^0 .. 2^MaxLog2].
func numericIndex(v int64) int {
	switch {
	case v < 0:
		return 0
	case v == 0:
		return 1
	default:
		return 2 + Log2Bucket(v)
	}
}

// PartitionIndices implements Indexer.
//
//iocov:hotpath
func (BytesScheme) PartitionIndices(v int64, scratch []int) []int {
	return append(scratch, numericIndex(v))
}

// OffsetScheme partitions signed offsets: negative values get their own
// boundary partition, since a negative offset is a distinct corner case
// (EINVAL for lseek below zero, but legal relative seeks).
type OffsetScheme struct{}

// Scheme implements Input.
func (OffsetScheme) Scheme() string { return sysspec.SchemeOffset }

// Partitions implements Input.
func (OffsetScheme) Partitions(v int64) []string {
	switch {
	case v < 0:
		return []string{LabelNegative}
	case v == 0:
		return []string{LabelZero}
	default:
		return []string{Log2Label(Log2Bucket(v))}
	}
}

// Domain implements Input.
func (OffsetScheme) Domain() []string {
	out := make([]string, 0, MaxLog2+3)
	out = append(out, LabelNegative, LabelZero)
	for k := 0; k <= MaxLog2; k++ {
		out = append(out, Log2Label(k))
	}
	return out
}

// PartitionIndices implements Indexer.
//
//iocov:hotpath
func (OffsetScheme) PartitionIndices(v int64, scratch []int) []int {
	return append(scratch, numericIndex(v))
}

// openFlagsScheme partitions the open flags bitmap per flag name.
type openFlagsScheme struct{}

func (openFlagsScheme) Scheme() string { return sysspec.SchemeOpenFlags }

func (openFlagsScheme) Partitions(v int64) []string {
	return sys.DecodeOpenFlags(int(v))
}

func (openFlagsScheme) Domain() []string {
	out := make([]string, 0, len(sys.OpenFlagNames)+1)
	for _, f := range sys.OpenFlagNames {
		out = append(out, f.Name)
	}
	// DecodeOpenFlags emits this label for a flags word whose access-mode
	// bits are the invalid 0b11 combination; the domain must declare it like
	// any other reachable label (found by iocovlint's domaincheck probe).
	return append(out, sys.AccModeInvalidName)
}

// openFlagOrds holds the Domain() ordinal of every open-flag label, resolved
// once from the domain itself so the ordinal decoder cannot drift from the
// declared order. The composite-only bits reconstruct the O_SYNC/O_DSYNC and
// O_TMPFILE/O_DIRECTORY subsumption exactly as sys.DecodeOpenFlags does.
var openFlagOrds = func() (t struct {
	rdonly, wronly, rdwr, invalid int
	simple                        []struct{ bit, ord int }
	syncOnly, tmpOnly             int
	sync, dsync, tmpfile, dir     int
}) {
	ord := make(map[string]int)
	for i, name := range (openFlagsScheme{}).Domain() {
		ord[name] = i
	}
	t.rdonly, t.wronly, t.rdwr = ord["O_RDONLY"], ord["O_WRONLY"], ord["O_RDWR"]
	t.invalid = ord[sys.AccModeInvalidName]
	// Same simple-flag order as sys.DecodeOpenFlags: PartitionIndices must
	// emit ordinals in exactly the order Partitions emits labels, because
	// TrackCombinations joins them into an order-sensitive combo label.
	for _, f := range []struct {
		bit  int
		name string
	}{
		{sys.O_CREAT, "O_CREAT"},
		{sys.O_EXCL, "O_EXCL"},
		{sys.O_NOCTTY, "O_NOCTTY"},
		{sys.O_TRUNC, "O_TRUNC"},
		{sys.O_APPEND, "O_APPEND"},
		{sys.O_NONBLOCK, "O_NONBLOCK"},
		{sys.O_ASYNC, "O_ASYNC"},
		{sys.O_DIRECT, "O_DIRECT"},
		{sys.O_LARGEFILE, "O_LARGEFILE"},
		{sys.O_NOFOLLOW, "O_NOFOLLOW"},
		{sys.O_NOATIME, "O_NOATIME"},
		{sys.O_CLOEXEC, "O_CLOEXEC"},
		{sys.O_PATH, "O_PATH"},
	} {
		t.simple = append(t.simple, struct{ bit, ord int }{f.bit, ord[f.name]})
	}
	t.syncOnly = sys.O_SYNC &^ sys.O_DSYNC
	t.tmpOnly = sys.O_TMPFILE &^ sys.O_DIRECTORY
	t.sync, t.dsync = ord["O_SYNC"], ord["O_DSYNC"]
	t.tmpfile, t.dir = ord["O_TMPFILE"], ord["O_DIRECTORY"]
	return t
}()

// PartitionIndices implements Indexer, mirroring sys.DecodeOpenFlags without
// allocating label slices.
//
//iocov:hotpath
func (openFlagsScheme) PartitionIndices(v int64, scratch []int) []int {
	flags := int(v)
	switch flags & sys.O_ACCMODE {
	case sys.O_RDONLY:
		scratch = append(scratch, openFlagOrds.rdonly)
	case sys.O_WRONLY:
		scratch = append(scratch, openFlagOrds.wronly)
	case sys.O_RDWR:
		scratch = append(scratch, openFlagOrds.rdwr)
	default:
		scratch = append(scratch, openFlagOrds.invalid)
	}
	for _, f := range openFlagOrds.simple {
		if flags&f.bit != 0 {
			scratch = append(scratch, f.ord)
		}
	}
	switch {
	case flags&openFlagOrds.syncOnly != 0:
		scratch = append(scratch, openFlagOrds.sync)
	case flags&sys.O_DSYNC != 0:
		scratch = append(scratch, openFlagOrds.dsync)
	}
	switch {
	case flags&openFlagOrds.tmpOnly != 0:
		scratch = append(scratch, openFlagOrds.tmpfile)
	case flags&sys.O_DIRECTORY != 0:
		scratch = append(scratch, openFlagOrds.dir)
	}
	return scratch
}

// modeBitsScheme partitions a mode argument per permission bit; a zero mode
// hits the "=0" boundary partition.
type modeBitsScheme struct{}

func (modeBitsScheme) Scheme() string { return sysspec.SchemeModeBits }

func (modeBitsScheme) Partitions(v int64) []string {
	names := sys.DecodeModeBits(uint32(v))
	if len(names) == 0 {
		return []string{LabelZero}
	}
	return names
}

func (modeBitsScheme) Domain() []string {
	out := make([]string, 0, len(sys.ModeBitNames)+1)
	out = append(out, LabelZero)
	for _, b := range sys.ModeBitNames {
		out = append(out, b.Name)
	}
	return out
}

// PartitionIndices implements Indexer: the domain is "=0" at ordinal 0
// followed by sys.ModeBitNames in order, and sys.DecodeModeBits walks the
// bits in that same order.
//
//iocov:hotpath
func (modeBitsScheme) PartitionIndices(v int64, scratch []int) []int {
	n := len(scratch)
	for i, b := range sys.ModeBitNames {
		if uint32(v)&b.Bit != 0 {
			scratch = append(scratch, 1+i)
		}
	}
	if len(scratch) == n {
		scratch = append(scratch, 0)
	}
	return scratch
}

// whenceScheme partitions lseek's whence categorically.
type whenceScheme struct{}

func (whenceScheme) Scheme() string { return sysspec.SchemeWhence }

func (whenceScheme) Partitions(v int64) []string {
	if v >= 0 && v < int64(len(sys.WhenceNames)) {
		return []string{sys.WhenceNames[v]}
	}
	return []string{LabelInvalid}
}

func (whenceScheme) Domain() []string {
	return append(append([]string(nil), sys.WhenceNames...), LabelInvalid)
}

// PartitionIndices implements Indexer: whence values index the domain
// directly, with the trailing "invalid" ordinal for out-of-range values.
//
//iocov:hotpath
func (whenceScheme) PartitionIndices(v int64, scratch []int) []int {
	if v >= 0 && v < int64(len(sys.WhenceNames)) {
		return append(scratch, int(v))
	}
	return append(scratch, len(sys.WhenceNames))
}

// xattrFlagsScheme partitions setxattr's flags categorically: 0,
// XATTR_CREATE, XATTR_REPLACE, or invalid.
type xattrFlagsScheme struct{}

func (xattrFlagsScheme) Scheme() string { return sysspec.SchemeXattrFlags }

func (xattrFlagsScheme) Partitions(v int64) []string {
	switch int(v) {
	case 0, sys.XATTR_CREATE, sys.XATTR_REPLACE:
		return []string{sys.XattrFlagName(int(v))}
	default:
		return []string{LabelInvalid}
	}
}

func (xattrFlagsScheme) Domain() []string {
	return []string{"0", "XATTR_CREATE", "XATTR_REPLACE", LabelInvalid}
}

// PartitionIndices implements Indexer: the three legal values index the
// domain directly (XATTR_CREATE = 1, XATTR_REPLACE = 2).
//
//iocov:hotpath
func (xattrFlagsScheme) PartitionIndices(v int64, scratch []int) []int {
	switch v {
	case 0, sys.XATTR_CREATE, sys.XATTR_REPLACE:
		return append(scratch, int(v))
	default:
		return append(scratch, 3)
	}
}

// Output partitions a syscall outcome. On failure the partition is the
// errno name; on success it is "OK", refined to "OK:2^k" buckets when the
// syscall returns a byte count or offset.
func Output(ret sysspec.RetKind, retVal int64, err sys.Errno) string {
	if err != sys.OK {
		return err.Name()
	}
	switch ret {
	case sysspec.RetBytes, sysspec.RetOffset:
		// A success with a negative return value is a distinct corner
		// (malformed trace, or a signed-offset return); keep it apart
		// from the legitimate zero-byte result.
		if retVal < 0 {
			return LabelOK + ":" + LabelNegative
		}
		if retVal == 0 {
			return LabelOK + ":" + LabelZero
		}
		return LabelOK + ":" + Log2Label(Log2Bucket(retVal))
	default:
		return LabelOK
	}
}

// OutputDomain returns the canonical output partitions for a spec: the
// success partitions followed by one per documented errno.
func OutputDomain(spec *sysspec.Spec) []string {
	var out []string
	switch spec.Ret {
	case sysspec.RetBytes, sysspec.RetOffset:
		out = append(out, LabelOK+":"+LabelNegative, LabelOK+":"+LabelZero)
		for k := 0; k <= MaxLog2; k++ {
			out = append(out, LabelOK+":"+Log2Label(k))
		}
	default:
		out = append(out, LabelOK)
	}
	for _, e := range spec.Errnos {
		out = append(out, e.Name())
	}
	return out
}

// IsSuccess reports whether an output partition label is a success
// partition.
func IsSuccess(label string) bool {
	return label == LabelOK || (len(label) > 3 && label[:3] == LabelOK+":")
}

// OutputIndexer is the compiled form of a spec's output space: it maps an
// outcome to an ordinal in OutputDomain(spec) without formatting a label.
// Errnos outside the spec's documented universe report ok=false; callers
// fall back to the label path for those (they land in a report's Extra
// section, exactly as before).
type OutputIndexer struct {
	bytes   bool
	success int // number of leading success ordinals in the domain
	errno   map[sys.Errno]int
	domain  []string
}

// NewOutputIndexer compiles the output domain of spec.
func NewOutputIndexer(spec *sysspec.Spec) *OutputIndexer {
	x := &OutputIndexer{
		bytes:  spec.Ret == sysspec.RetBytes || spec.Ret == sysspec.RetOffset,
		domain: OutputDomain(spec),
		errno:  make(map[sys.Errno]int, len(spec.Errnos)),
	}
	x.success = len(x.domain) - len(spec.Errnos)
	for i, e := range spec.Errnos {
		x.errno[e] = x.success + i
	}
	return x
}

// Index returns the OutputDomain ordinal for one outcome, mirroring Output.
// ok is false for an errno the spec does not document.
//
//iocov:hotpath
func (x *OutputIndexer) Index(retVal int64, err sys.Errno) (idx int, ok bool) {
	if err != sys.OK {
		idx, ok = x.errno[err]
		return idx, ok
	}
	if !x.bytes {
		return 0, true
	}
	// Success domain layout: [OK:<0, OK:=0, OK:2^0 .. OK:2^MaxLog2].
	return numericIndex(retVal), true
}

// Domain returns the compiled output domain (identical to
// OutputDomain(spec)).
func (x *OutputIndexer) Domain() []string { return x.domain }

// SuccessOrdinals returns how many leading domain ordinals are success
// partitions; everything at or beyond it is an errno partition.
func (x *OutputIndexer) SuccessOrdinals() int { return x.success }

// openFlagSimpleMask is the union of the non-composite open-flag bits, for
// counting combination sizes without decoding labels.
var openFlagSimpleMask = func() int {
	m := 0
	for _, f := range openFlagOrds.simple {
		m |= f.bit
	}
	return m
}()

// FlagComboSize counts how many named flags an open flags word combines
// (the access mode counts as one flag, so the minimum is 1). Table 1 is
// built from this. It equals len(sys.DecodeOpenFlags(flags)) but performs
// no allocation.
//
//iocov:hotpath
func FlagComboSize(flags int64) int {
	f := int(flags)
	n := 1 + bits.OnesCount(uint(f&openFlagSimpleMask))
	if f&(openFlagOrds.syncOnly|sys.O_DSYNC) != 0 {
		n++
	}
	if f&(openFlagOrds.tmpOnly|sys.O_DIRECTORY) != 0 {
		n++
	}
	return n
}

// HasRdonly reports whether the flags word's access mode is O_RDONLY, which
// is how Table 1's "O_RDONLY" rows restrict combinations.
//
//iocov:hotpath
func HasRdonly(flags int64) bool {
	return int(flags)&sys.O_ACCMODE == sys.O_RDONLY
}
