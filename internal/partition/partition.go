// Package partition implements the input- and output-space partitioning at
// the heart of IOCov (§3). Each of the paper's four argument classes gets a
// partitioning scheme:
//
//   - bitmap arguments (open flags, mode bits) partition per flag, so one
//     call can hit several partitions;
//   - numeric arguments (byte counts, offsets, lengths) partition by powers
//     of two, with dedicated boundary partitions for zero and negative
//     values;
//   - categorical arguments (lseek whence, setxattr flags) partition per
//     value, plus an "invalid" partition for out-of-domain values;
//   - identifier arguments (fds, pathnames) are recorded but not
//     partitioned by default, matching the paper's future-work boundary.
//
// Outputs partition into success — subdivided by powers of two when the
// syscall returns a byte count — and one partition per errno.
package partition

import (
	"fmt"
	"math/bits"

	"iocov/internal/sys"
	"iocov/internal/sysspec"
)

// MaxLog2 is the largest power-of-two bucket reachable for numeric values:
// the largest positive int64, 2^63-1, rounds down to bucket 2^62. (The
// domain used to end at an unreachable 2^63 bucket; iocovlint's domaincheck
// completeness probe flags such dead entries.)
const MaxLog2 = 62

// Labels for the boundary partitions of numeric schemes.
const (
	LabelZero     = "=0"
	LabelNegative = "<0"
	LabelOK       = "OK"
	LabelInvalid  = "invalid"
)

// Log2Label formats the power-of-two bucket label for exponent k, e.g.
// "2^10" for values in [1024, 2047].
func Log2Label(k int) string { return fmt.Sprintf("2^%d", k) }

// Log2Bucket returns the bucket exponent for a positive value: the paper
// rounds each value down to the nearest power-of-two boundary, so 1024-2047
// all land in bucket 10. The precondition is v > 0; zero and negative
// values belong to the "=0" and "<0" boundary partitions, not to any
// power-of-two bucket, so Log2Bucket returns the sentinel -1 for them
// (rather than letting uint64 wraparound misclassify a negative into
// bucket 63).
func Log2Bucket(v int64) int {
	if v <= 0 {
		return -1
	}
	return bits.Len64(uint64(v)) - 1
}

// Input is a partitioning scheme for one argument class.
type Input interface {
	// Scheme returns the sysspec scheme name this partitioner implements.
	Scheme() string
	// Partitions returns the partition labels hit by one observed value.
	// Bitmap schemes return one label per set flag; all other schemes
	// return exactly one label.
	Partitions(value int64) []string
	// Domain returns every partition label in canonical report order.
	Domain() []string
}

// ForScheme returns the Input partitioner for a sysspec scheme name, or nil
// for identifier schemes (which are not partitioned).
func ForScheme(scheme string) Input {
	switch scheme {
	case sysspec.SchemeOpenFlags:
		return openFlagsScheme{}
	case sysspec.SchemeModeBits:
		return modeBitsScheme{}
	case sysspec.SchemeBytes:
		return BytesScheme{}
	case sysspec.SchemeOffset:
		return OffsetScheme{}
	case sysspec.SchemeWhence:
		return whenceScheme{}
	case sysspec.SchemeXattrFlags:
		return xattrFlagsScheme{}
	default:
		return nil
	}
}

// BytesScheme partitions non-negative byte counts: "=0" then powers of two.
// Negative values (which the kernel would reject) land in "<0" so malformed
// traces remain visible rather than silently dropped.
type BytesScheme struct{}

// Scheme implements Input.
func (BytesScheme) Scheme() string { return sysspec.SchemeBytes }

// Partitions implements Input.
func (BytesScheme) Partitions(v int64) []string {
	switch {
	case v < 0:
		return []string{LabelNegative}
	case v == 0:
		return []string{LabelZero}
	default:
		return []string{Log2Label(Log2Bucket(v))}
	}
}

// Domain implements Input.
func (BytesScheme) Domain() []string {
	out := make([]string, 0, MaxLog2+3)
	out = append(out, LabelNegative, LabelZero)
	for k := 0; k <= MaxLog2; k++ {
		out = append(out, Log2Label(k))
	}
	return out
}

// OffsetScheme partitions signed offsets: negative values get their own
// boundary partition, since a negative offset is a distinct corner case
// (EINVAL for lseek below zero, but legal relative seeks).
type OffsetScheme struct{}

// Scheme implements Input.
func (OffsetScheme) Scheme() string { return sysspec.SchemeOffset }

// Partitions implements Input.
func (OffsetScheme) Partitions(v int64) []string {
	switch {
	case v < 0:
		return []string{LabelNegative}
	case v == 0:
		return []string{LabelZero}
	default:
		return []string{Log2Label(Log2Bucket(v))}
	}
}

// Domain implements Input.
func (OffsetScheme) Domain() []string {
	out := make([]string, 0, MaxLog2+3)
	out = append(out, LabelNegative, LabelZero)
	for k := 0; k <= MaxLog2; k++ {
		out = append(out, Log2Label(k))
	}
	return out
}

// openFlagsScheme partitions the open flags bitmap per flag name.
type openFlagsScheme struct{}

func (openFlagsScheme) Scheme() string { return sysspec.SchemeOpenFlags }

func (openFlagsScheme) Partitions(v int64) []string {
	return sys.DecodeOpenFlags(int(v))
}

func (openFlagsScheme) Domain() []string {
	out := make([]string, 0, len(sys.OpenFlagNames)+1)
	for _, f := range sys.OpenFlagNames {
		out = append(out, f.Name)
	}
	// DecodeOpenFlags emits this label for a flags word whose access-mode
	// bits are the invalid 0b11 combination; the domain must declare it like
	// any other reachable label (found by iocovlint's domaincheck probe).
	return append(out, sys.AccModeInvalidName)
}

// modeBitsScheme partitions a mode argument per permission bit; a zero mode
// hits the "=0" boundary partition.
type modeBitsScheme struct{}

func (modeBitsScheme) Scheme() string { return sysspec.SchemeModeBits }

func (modeBitsScheme) Partitions(v int64) []string {
	names := sys.DecodeModeBits(uint32(v))
	if len(names) == 0 {
		return []string{LabelZero}
	}
	return names
}

func (modeBitsScheme) Domain() []string {
	out := make([]string, 0, len(sys.ModeBitNames)+1)
	out = append(out, LabelZero)
	for _, b := range sys.ModeBitNames {
		out = append(out, b.Name)
	}
	return out
}

// whenceScheme partitions lseek's whence categorically.
type whenceScheme struct{}

func (whenceScheme) Scheme() string { return sysspec.SchemeWhence }

func (whenceScheme) Partitions(v int64) []string {
	if v >= 0 && v < int64(len(sys.WhenceNames)) {
		return []string{sys.WhenceNames[v]}
	}
	return []string{LabelInvalid}
}

func (whenceScheme) Domain() []string {
	return append(append([]string(nil), sys.WhenceNames...), LabelInvalid)
}

// xattrFlagsScheme partitions setxattr's flags categorically: 0,
// XATTR_CREATE, XATTR_REPLACE, or invalid.
type xattrFlagsScheme struct{}

func (xattrFlagsScheme) Scheme() string { return sysspec.SchemeXattrFlags }

func (xattrFlagsScheme) Partitions(v int64) []string {
	switch int(v) {
	case 0, sys.XATTR_CREATE, sys.XATTR_REPLACE:
		return []string{sys.XattrFlagName(int(v))}
	default:
		return []string{LabelInvalid}
	}
}

func (xattrFlagsScheme) Domain() []string {
	return []string{"0", "XATTR_CREATE", "XATTR_REPLACE", LabelInvalid}
}

// Output partitions a syscall outcome. On failure the partition is the
// errno name; on success it is "OK", refined to "OK:2^k" buckets when the
// syscall returns a byte count or offset.
func Output(ret sysspec.RetKind, retVal int64, err sys.Errno) string {
	if err != sys.OK {
		return err.Name()
	}
	switch ret {
	case sysspec.RetBytes, sysspec.RetOffset:
		// A success with a negative return value is a distinct corner
		// (malformed trace, or a signed-offset return); keep it apart
		// from the legitimate zero-byte result.
		if retVal < 0 {
			return LabelOK + ":" + LabelNegative
		}
		if retVal == 0 {
			return LabelOK + ":" + LabelZero
		}
		return LabelOK + ":" + Log2Label(Log2Bucket(retVal))
	default:
		return LabelOK
	}
}

// OutputDomain returns the canonical output partitions for a spec: the
// success partitions followed by one per documented errno.
func OutputDomain(spec *sysspec.Spec) []string {
	var out []string
	switch spec.Ret {
	case sysspec.RetBytes, sysspec.RetOffset:
		out = append(out, LabelOK+":"+LabelNegative, LabelOK+":"+LabelZero)
		for k := 0; k <= MaxLog2; k++ {
			out = append(out, LabelOK+":"+Log2Label(k))
		}
	default:
		out = append(out, LabelOK)
	}
	for _, e := range spec.Errnos {
		out = append(out, e.Name())
	}
	return out
}

// IsSuccess reports whether an output partition label is a success
// partition.
func IsSuccess(label string) bool {
	return label == LabelOK || (len(label) > 3 && label[:3] == LabelOK+":")
}

// FlagComboSize counts how many named flags an open flags word combines
// (the access mode counts as one flag, so the minimum is 1). Table 1 is
// built from this.
func FlagComboSize(flags int64) int {
	return len(sys.DecodeOpenFlags(int(flags)))
}

// HasRdonly reports whether the flags word's access mode is O_RDONLY, which
// is how Table 1's "O_RDONLY" rows restrict combinations.
func HasRdonly(flags int64) bool {
	return int(flags)&sys.O_ACCMODE == sys.O_RDONLY
}
