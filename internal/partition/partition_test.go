package partition

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"iocov/internal/sys"
	"iocov/internal/sysspec"
)

func TestLog2Bucket(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {2047, 10}, {2048, 11},
		{1 << 28, 28}, {(1 << 28) + 1, 28}, // the paper's 258 MiB max write lands in 2^28
		{math.MaxInt64, 62},
		// Zero and negatives are out of precondition: sentinel, not a
		// wrapped-around bucket 63.
		{0, -1}, {-1, -1}, {-4096, -1}, {math.MinInt64, -1},
	}
	for _, c := range cases {
		if got := Log2Bucket(c.v); got != c.want {
			t.Errorf("Log2Bucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLog2BucketProperty(t *testing.T) {
	// Every positive v lands in bucket k with 2^k <= v < 2^(k+1).
	f := func(v int64) bool {
		if v <= 0 {
			return true
		}
		k := Log2Bucket(v)
		if k < 0 || k > 62 {
			return false
		}
		lo := int64(1) << uint(k)
		if v < lo {
			return false
		}
		if k < 62 {
			hi := int64(1) << uint(k+1)
			if v >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBytesScheme(t *testing.T) {
	s := BytesScheme{}
	cases := map[int64]string{
		-5:   LabelNegative,
		0:    LabelZero,
		1:    "2^0",
		1024: "2^10",
		2047: "2^10",
	}
	for v, want := range cases {
		got := s.Partitions(v)
		if len(got) != 1 || got[0] != want {
			t.Errorf("Partitions(%d) = %v, want [%s]", v, got, want)
		}
	}
	dom := s.Domain()
	if dom[0] != LabelNegative || dom[1] != LabelZero || dom[2] != "2^0" || len(dom) != MaxLog2+3 {
		t.Errorf("domain = %v...", dom[:3])
	}
	// Regression: every label Partitions can emit must be in Domain.
	inDomain := make(map[string]bool)
	for _, l := range dom {
		inDomain[l] = true
	}
	for _, v := range []int64{-5, 0, 1, 1024, math.MaxInt64} {
		for _, l := range s.Partitions(v) {
			if !inDomain[l] {
				t.Errorf("Partitions(%d) emits %q, not in Domain", v, l)
			}
		}
	}
}

func TestOffsetSchemeDomainIncludesNegative(t *testing.T) {
	s := OffsetScheme{}
	dom := s.Domain()
	if dom[0] != LabelNegative || dom[1] != LabelZero {
		t.Errorf("offset domain head = %v", dom[:2])
	}
	if got := s.Partitions(-1); got[0] != LabelNegative {
		t.Errorf("Partitions(-1) = %v", got)
	}
}

func TestOpenFlagsScheme(t *testing.T) {
	s := ForScheme(sysspec.SchemeOpenFlags)
	got := s.Partitions(int64(sys.O_RDWR | sys.O_CREAT | sys.O_TRUNC))
	want := []string{"O_RDWR", "O_CREAT", "O_TRUNC"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("flags partitions = %v, want %v", got, want)
	}
	// O_RDONLY is value zero but still a partition.
	got = s.Partitions(0)
	if !reflect.DeepEqual(got, []string{"O_RDONLY"}) {
		t.Errorf("zero flags = %v", got)
	}
	// O_SYNC subsumes O_DSYNC.
	got = s.Partitions(int64(sys.O_WRONLY | sys.O_SYNC))
	if !reflect.DeepEqual(got, []string{"O_WRONLY", "O_SYNC"}) {
		t.Errorf("O_SYNC decode = %v", got)
	}
	// O_DSYNC alone stays O_DSYNC.
	got = s.Partitions(int64(sys.O_WRONLY | sys.O_DSYNC))
	if !reflect.DeepEqual(got, []string{"O_WRONLY", "O_DSYNC"}) {
		t.Errorf("O_DSYNC decode = %v", got)
	}
	// Figure 2's x-axis: 20 flags, plus the invalid-access-mode label.
	if len(s.Domain()) != 21 {
		t.Errorf("open flags domain = %d, want 21", len(s.Domain()))
	}
	// The invalid access mode 0b11 partitions to a declared label.
	got = s.Partitions(int64(sys.O_ACCMODE))
	if !reflect.DeepEqual(got, []string{sys.AccModeInvalidName}) {
		t.Errorf("invalid accmode = %v", got)
	}
}

func TestModeBitsScheme(t *testing.T) {
	s := ForScheme(sysspec.SchemeModeBits)
	got := s.Partitions(0o644)
	want := []string{"S_IRUSR", "S_IWUSR", "S_IRGRP", "S_IROTH"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("0644 = %v, want %v", got, want)
	}
	if got := s.Partitions(0); !reflect.DeepEqual(got, []string{LabelZero}) {
		t.Errorf("zero mode = %v", got)
	}
	if got := s.Partitions(0o4755); got[0] != "S_ISUID" {
		t.Errorf("setuid missing: %v", got)
	}
}

func TestWhenceScheme(t *testing.T) {
	s := ForScheme(sysspec.SchemeWhence)
	if got := s.Partitions(0); got[0] != "SEEK_SET" {
		t.Errorf("whence 0 = %v", got)
	}
	if got := s.Partitions(4); got[0] != "SEEK_HOLE" {
		t.Errorf("whence 4 = %v", got)
	}
	if got := s.Partitions(99); got[0] != LabelInvalid {
		t.Errorf("whence 99 = %v", got)
	}
	if got := s.Partitions(-1); got[0] != LabelInvalid {
		t.Errorf("whence -1 = %v", got)
	}
}

func TestXattrFlagsScheme(t *testing.T) {
	s := ForScheme(sysspec.SchemeXattrFlags)
	if got := s.Partitions(0); got[0] != "0" {
		t.Errorf("flags 0 = %v", got)
	}
	if got := s.Partitions(sys.XATTR_CREATE); got[0] != "XATTR_CREATE" {
		t.Errorf("XATTR_CREATE = %v", got)
	}
	if got := s.Partitions(3); got[0] != LabelInvalid {
		t.Errorf("flags 3 = %v", got)
	}
}

func TestForSchemeIdentifierIsNil(t *testing.T) {
	if ForScheme(sysspec.SchemePath) != nil || ForScheme(sysspec.SchemeFD) != nil {
		t.Error("identifier schemes should not be partitioned")
	}
	if ForScheme("bogus") != nil {
		t.Error("unknown scheme should be nil")
	}
}

func TestOutputPartitioning(t *testing.T) {
	if got := Output(sysspec.RetFD, 3, sys.OK); got != "OK" {
		t.Errorf("fd success = %s", got)
	}
	if got := Output(sysspec.RetFD, -2, sys.ENOENT); got != "ENOENT" {
		t.Errorf("fd failure = %s", got)
	}
	if got := Output(sysspec.RetBytes, 4096, sys.OK); got != "OK:2^12" {
		t.Errorf("bytes success = %s", got)
	}
	if got := Output(sysspec.RetBytes, 0, sys.OK); got != "OK:=0" {
		t.Errorf("zero bytes = %s", got)
	}
	// A negative success return is its own partition, not folded into =0.
	if got := Output(sysspec.RetBytes, -7, sys.OK); got != "OK:<0" {
		t.Errorf("negative bytes success = %s", got)
	}
	if got := Output(sysspec.RetOffset, -1, sys.OK); got != "OK:<0" {
		t.Errorf("negative offset success = %s", got)
	}
	if got := Output(sysspec.RetZero, 0, sys.OK); got != "OK" {
		t.Errorf("zero ret = %s", got)
	}
}

func TestOutputDomain(t *testing.T) {
	tbl := sysspec.NewTable()
	open := OutputDomain(tbl.Spec("open"))
	// 1 OK + 27 errnos = Figure 4's 28 x-labels.
	if len(open) != 28 {
		t.Errorf("open output domain = %d, want 28", len(open))
	}
	if open[0] != "OK" {
		t.Errorf("open domain head = %s", open[0])
	}
	write := OutputDomain(tbl.Spec("write"))
	if write[0] != "OK:<0" || write[1] != "OK:=0" || write[2] != "OK:2^0" {
		t.Errorf("write domain head = %v", write[:3])
	}
	// Every success label Output can emit must be in the domain.
	inDomain := make(map[string]bool)
	for _, l := range write {
		inDomain[l] = true
	}
	for _, v := range []int64{-1, 0, 1, 4096, math.MaxInt64} {
		if l := Output(sysspec.RetBytes, v, sys.OK); !inDomain[l] {
			t.Errorf("Output(RetBytes, %d, OK) = %q, not in domain", v, l)
		}
	}
}

func TestIsSuccess(t *testing.T) {
	for label, want := range map[string]bool{
		"OK": true, "OK:2^5": true, "OK:=0": true, "OK:<0": true,
		"ENOENT": false, "EACCES": false, "": false,
	} {
		if IsSuccess(label) != want {
			t.Errorf("IsSuccess(%q) = %v", label, !want)
		}
	}
}

func TestFlagComboSize(t *testing.T) {
	cases := map[int64]int{
		0:                                 1, // O_RDONLY alone
		int64(sys.O_RDWR):                 1,
		int64(sys.O_WRONLY | sys.O_CREAT): 2,
		int64(sys.O_RDWR | sys.O_CREAT | sys.O_TRUNC):              3,
		int64(sys.O_RDWR | sys.O_CREAT | sys.O_TRUNC | sys.O_SYNC): 4,
	}
	for flags, want := range cases {
		if got := FlagComboSize(flags); got != want {
			t.Errorf("FlagComboSize(%o) = %d, want %d", flags, got, want)
		}
	}
}

func TestHasRdonly(t *testing.T) {
	if !HasRdonly(0) || !HasRdonly(int64(sys.O_CREAT)) {
		t.Error("O_RDONLY accmode not detected")
	}
	if HasRdonly(int64(sys.O_WRONLY)) || HasRdonly(int64(sys.O_RDWR)) {
		t.Error("non-RDONLY accmode misdetected")
	}
}

func TestEveryInputSchemeHasConsistentDomain(t *testing.T) {
	// Property: every label a scheme emits for representative values is in
	// its declared domain.
	schemes := []string{
		sysspec.SchemeOpenFlags, sysspec.SchemeModeBits, sysspec.SchemeBytes,
		sysspec.SchemeOffset, sysspec.SchemeWhence, sysspec.SchemeXattrFlags,
	}
	values := []int64{-100, -1, 0, 1, 2, 3, 4, 5, 7, 64, 0o644, 0o777, 4096,
		int64(sys.O_RDWR | sys.O_CREAT | sys.O_SYNC), 1 << 30, math.MaxInt64}
	for _, name := range schemes {
		s := ForScheme(name)
		domain := make(map[string]bool)
		for _, l := range s.Domain() {
			domain[l] = true
		}
		for _, v := range values {
			for _, l := range s.Partitions(v) {
				if !domain[l] && l != LabelInvalid && l != "O_ACCMODE_INVALID" {
					t.Errorf("scheme %s: label %q for %d outside domain", name, l, v)
				}
			}
		}
	}
}
