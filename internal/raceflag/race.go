//go:build race

package raceflag

func init() { Enabled = true }
