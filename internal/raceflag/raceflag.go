// Package raceflag reports whether the race detector is active.
// Allocation-regression tests skip under -race: the detector instruments
// allocations and testing.AllocsPerRun measurements become meaningless.
//
// Enabled is a var flipped by a build-tagged init rather than a pair of
// build-tagged consts so that tools which type-check every file in the
// package regardless of build constraints (iocovlint's repo loader) still
// see exactly one declaration.
package raceflag

// Enabled is true when the binary was built with -race.
var Enabled = false
