// Package render draws the paper's figures as aligned text: log-scale bar
// charts for per-partition frequencies (Figures 2-4), the Table 1 layout,
// and the Figure 5 TCD sweep.
package render

import (
	"fmt"
	"io"
	"math"
	"strings"

	"iocov/internal/coverage"
	"iocov/internal/metrics"
)

// barWidth is the printable width of a frequency bar.
const barWidth = 40

// logBar renders n on a log10 scale relative to max.
func logBar(n, max int64) string {
	if n <= 0 || max <= 0 {
		return ""
	}
	frac := math.Log10(float64(n)+1) / math.Log10(float64(max)+1)
	w := int(frac * barWidth)
	if w < 1 {
		w = 1
	}
	return strings.Repeat("#", w)
}

// Series is one test suite's frequencies over a shared partition domain.
type Series struct {
	Name   string
	Report *coverage.Report
}

// Comparison prints a two-series log-scale comparison chart, one row per
// partition — the textual form of Figures 2-4.
//
//iocov:deterministic
func Comparison(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	if len(series) == 0 {
		return
	}
	var max int64 = 1
	for _, s := range series {
		if m := s.Report.MaxCount(); m > max {
			max = m
		}
	}
	labelW := 5
	for _, row := range series[0].Report.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
	}
	nameW := 0
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for i, row := range series[0].Report.Rows {
		for si, s := range series {
			label := ""
			if si == 0 {
				label = row.Label
			}
			count := s.Report.Rows[i].Count
			fmt.Fprintf(w, "%-*s  %-*s %10d  %s\n",
				labelW, label, nameW, s.Name, count, logBar(count, max))
		}
	}
	for _, s := range series {
		fmt.Fprintf(w, "%-*s: %d/%d partitions covered, untested: %s\n",
			nameW, s.Name, s.Report.Covered(), s.Report.DomainSize(),
			joinOrNone(s.Report.Untested()))
		for _, extra := range s.Report.Extra {
			// Observed outside the declared domain — e.g. an errno the man
			// page does not document, which the paper notes can happen.
			fmt.Fprintf(w, "%-*s  outside domain: %s = %d\n", nameW, s.Name, extra.Label, extra.Count)
		}
	}
	fmt.Fprintln(w)
}

func joinOrNone(labels []string) string {
	if len(labels) == 0 {
		return "(none)"
	}
	return strings.Join(labels, " ")
}

// ComboTable prints Table 1: percentage of opens using 1..K flags together.
//
//iocov:deterministic
func ComboTable(w io.Writer, title string, suites []struct {
	Name string
	Rows []coverage.ComboRow
}, maxK int) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-32s", "Test Suite / % for #flags")
	for k := 1; k <= maxK; k++ {
		fmt.Fprintf(w, "%7d", k)
	}
	fmt.Fprintln(w)
	for _, s := range suites {
		for _, row := range s.Rows {
			fmt.Fprintf(w, "%-32s", s.Name+": "+row.Name)
			for k := 0; k < maxK; k++ {
				fmt.Fprintf(w, "%7.1f", row.Pct[k])
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

// TCDSweep prints the Figure 5 sweep: TCD for each suite over uniform
// targets, plus the crossover.
//
//iocov:deterministic
func TCDSweep(w io.Writer, title string, names [2]string, freqs [2][]int64, maxTarget int64) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%12s  %12s  %12s\n", "target", names[0], names[1])
	a := metrics.Sweep(freqs[0], maxTarget, 1)
	b := metrics.Sweep(freqs[1], maxTarget, 1)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		marker := ""
		if b[i].TCD <= a[i].TCD {
			marker = "  <- " + names[1] + " better"
		} else {
			marker = "  <- " + names[0] + " better"
		}
		fmt.Fprintf(w, "%12d  %12.3f  %12.3f%s\n", a[i].Target, a[i].TCD, b[i].TCD, marker)
	}
	if cross, found := metrics.Crossover(freqs[0], freqs[1], maxTarget); found {
		fmt.Fprintf(w, "crossover: %s overtakes %s at target T = %d (paper: T ≈ 5,237 at full scale)\n",
			names[1], names[0], cross)
	} else {
		fmt.Fprintf(w, "no crossover within [1, %d]\n", maxTarget)
	}
	fmt.Fprintln(w)
}
