package render

import (
	"strings"
	"testing"

	"iocov/internal/coverage"
	"iocov/internal/sys"
	"iocov/internal/trace"
)

func analyzerWithData(t *testing.T) *coverage.Analyzer {
	t.Helper()
	a := coverage.NewAnalyzer(coverage.DefaultOptions())
	a.Add(trace.Event{Name: "open", Path: "/f", PID: 1,
		Strs: map[string]string{"filename": "/f"},
		Args: map[string]int64{"flags": int64(sys.O_RDWR | sys.O_CREAT), "mode": 0o644}, Ret: 3})
	a.Add(trace.Event{Name: "open", Path: "/g", PID: 1,
		Strs: map[string]string{"filename": "/g"},
		Args: map[string]int64{"flags": 0, "mode": 0},
		Ret:  -int64(sys.ENOENT), Err: sys.ENOENT})
	return a
}

func TestComparison(t *testing.T) {
	a := analyzerWithData(t)
	var sb strings.Builder
	Comparison(&sb, "Test Figure", []Series{
		{Name: "suiteA", Report: a.InputReport("open", "flags")},
	})
	out := sb.String()
	for _, want := range []string{
		"Test Figure", "O_RDWR", "O_CREAT", "suiteA",
		"partitions covered", "untested:", "O_SYNC",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Log-scale bars: covered rows have hashes, untested rows none.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "O_TMPFILE") && strings.Contains(line, "#") {
			t.Errorf("untested row has a bar: %q", line)
		}
	}
}

func TestComparisonEmptySeries(t *testing.T) {
	var sb strings.Builder
	Comparison(&sb, "Empty", nil)
	if !strings.Contains(sb.String(), "Empty") {
		t.Error("title missing")
	}
}

func TestComboTableLayout(t *testing.T) {
	a := analyzerWithData(t)
	var sb strings.Builder
	ComboTable(&sb, "Table X", []struct {
		Name string
		Rows []coverage.ComboRow
	}{
		{Name: "suiteA", Rows: a.ComboTable(6)},
	}, 6)
	out := sb.String()
	if !strings.Contains(out, "suiteA: all flags") || !strings.Contains(out, "suiteA: O_RDONLY") {
		t.Errorf("rows missing:\n%s", out)
	}
	// One open with 2 flags, one with 1 flag: 50% in columns 1 and 2.
	if !strings.Contains(out, "50.0") {
		t.Errorf("percentages wrong:\n%s", out)
	}
}

func TestTCDSweepOutput(t *testing.T) {
	var sb strings.Builder
	low := []int64{10, 10, 0}
	high := []int64{100000, 100000, 100000}
	TCDSweep(&sb, "Sweep", [2]string{"low", "high"}, [2][]int64{low, high}, 1_000_000)
	out := sb.String()
	if !strings.Contains(out, "crossover: high overtakes low at target") {
		t.Errorf("crossover line missing:\n%s", out)
	}
	if !strings.Contains(out, "<- low better") || !strings.Contains(out, "<- high better") {
		t.Errorf("winner markers missing:\n%s", out)
	}
}

func TestTCDSweepNoCrossover(t *testing.T) {
	var sb strings.Builder
	a := []int64{50, 50}
	b := []int64{100000, 100000}
	// Within a tiny range b never catches a.
	TCDSweep(&sb, "Sweep", [2]string{"a", "b"}, [2][]int64{a, b}, 10)
	if !strings.Contains(sb.String(), "no crossover") {
		t.Errorf("expected no-crossover message:\n%s", sb.String())
	}
}

func TestLogBar(t *testing.T) {
	if logBar(0, 100) != "" {
		t.Error("zero count should have no bar")
	}
	if logBar(100, 100) == "" {
		t.Error("max count should have a bar")
	}
	if len(logBar(1, 1_000_000)) == 0 {
		t.Error("tiny nonzero count should still show one mark")
	}
	if len(logBar(1_000_000, 1_000_000)) > barWidth {
		t.Error("bar exceeds width")
	}
}
