package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the daemon's observability state, exported in the Prometheus
// text exposition format by /metrics. Counters are atomics so the ingest
// hot path never takes a lock; only the merge histogram and the
// per-syscall hit map are mutex-guarded (both touched once per session,
// not per event).
type Metrics struct {
	// EventsIngested counts events parsed from ingest streams, before the
	// mount filter.
	EventsIngested atomic.Int64
	// EventsFiltered counts events the mount filter dropped.
	EventsFiltered atomic.Int64
	// BytesRead counts raw stream bytes consumed, including rejected
	// sessions.
	BytesRead atomic.Int64
	// ActiveStreams is the number of ingest sessions currently open.
	ActiveStreams atomic.Int64
	// SessionsTotal counts completed ingest sessions (merged or rejected).
	SessionsTotal atomic.Int64
	// SessionsFailed counts sessions rejected before merging (malformed
	// stream, over-size body, deadline).
	SessionsFailed atomic.Int64
	// SessionsV1/SessionsV2 count cleanly decoded sessions per binary
	// trace format version, making a fleet's v1→v2 migration observable.
	SessionsV1 atomic.Int64
	SessionsV2 atomic.Int64

	mu           sync.Mutex
	mergeCount   int64
	mergeSeconds float64
	hits         map[string]int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{hits: make(map[string]int64)}
}

// FormatSessions returns the per-version session counter for a decoded
// stream's format version (v2 for anything newer than 1).
func (m *Metrics) FormatSessions(version int) *atomic.Int64 {
	if version <= 1 {
		return &m.SessionsV1
	}
	return &m.SessionsV2
}

// ObserveMerge records one store-merge latency.
func (m *Metrics) ObserveMerge(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mergeCount++
	m.mergeSeconds += d.Seconds()
}

// AddHits folds one session's per-syscall partition-hit counts into the
// global counters.
func (m *Metrics) AddHits(h map[string]int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, n := range h {
		m.hits[name] += n
	}
}

// promGauge distinguishes gauges from counters in the exposition.
type promMetric struct {
	name, help, typ string
	value           string
}

// WriteProm renders the registry in the Prometheus text format, in a
// deterministic order so scrapes and tests are stable.
func (m *Metrics) WriteProm(w io.Writer, analyzed, skipped, sessions int64) error {
	m.mu.Lock()
	mergeCount, mergeSeconds := m.mergeCount, m.mergeSeconds
	hits := make(map[string]int64, len(m.hits))
	for name, n := range m.hits {
		hits[name] = n
	}
	m.mu.Unlock()

	metrics := []promMetric{
		{"iocovd_events_ingested_total", "Events parsed from ingest streams.", "counter",
			fmt.Sprintf("%d", m.EventsIngested.Load())},
		{"iocovd_events_filtered_total", "Events dropped by the mount filter.", "counter",
			fmt.Sprintf("%d", m.EventsFiltered.Load())},
		{"iocovd_events_analyzed_total", "In-scope events analyzed (including restored baseline).", "counter",
			fmt.Sprintf("%d", analyzed)},
		{"iocovd_events_skipped_total", "Out-of-scope events skipped (including restored baseline).", "counter",
			fmt.Sprintf("%d", skipped)},
		{"iocovd_bytes_read_total", "Raw ingest stream bytes consumed.", "counter",
			fmt.Sprintf("%d", m.BytesRead.Load())},
		{"iocovd_active_streams", "Ingest sessions currently open.", "gauge",
			fmt.Sprintf("%d", m.ActiveStreams.Load())},
		{"iocovd_sessions_total", "Completed ingest sessions.", "counter",
			fmt.Sprintf("%d", m.SessionsTotal.Load())},
		{"iocovd_sessions_failed_total", "Sessions rejected before merging.", "counter",
			fmt.Sprintf("%d", m.SessionsFailed.Load())},
		{"iocovd_sessions_merged_total", "Sessions merged into the global store.", "counter",
			fmt.Sprintf("%d", sessions)},
		{"iocovd_merge_latency_seconds_sum", "Total store-merge latency.", "counter",
			fmt.Sprintf("%g", mergeSeconds)},
		{"iocovd_merge_latency_seconds_count", "Number of store merges.", "counter",
			fmt.Sprintf("%d", mergeCount)},
	}
	for _, pm := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			pm.name, pm.help, pm.name, pm.typ, pm.name, pm.value); err != nil {
			return err
		}
	}

	if _, err := fmt.Fprintf(w,
		"# HELP iocovd_format_sessions_total Cleanly decoded sessions per binary trace format version.\n"+
			"# TYPE iocovd_format_sessions_total counter\n"+
			"iocovd_format_sessions_total{version=\"1\"} %d\n"+
			"iocovd_format_sessions_total{version=\"2\"} %d\n",
		m.SessionsV1.Load(), m.SessionsV2.Load()); err != nil {
		return err
	}

	names := make([]string, 0, len(hits))
	for name := range hits {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w,
		"# HELP iocovd_syscall_partition_hits_total Partition-counter increments per merged syscall.\n"+
			"# TYPE iocovd_syscall_partition_hits_total counter\n"); err != nil {
		return err
	}
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "iocovd_syscall_partition_hits_total{syscall=%q} %d\n",
			name, hits[name]); err != nil {
			return err
		}
	}
	return nil
}
