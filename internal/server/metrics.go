package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// hitStripes is the lock-striping fanout for the per-syscall hit map.
// Syscall names hash onto stripes, so concurrent sessions folding their hit
// counts rarely collide on the same mutex.
const hitStripes = 8

// hitStripe is one lock shard of the per-syscall hit counters.
type hitStripe struct {
	mu sync.Mutex
	m  map[string]int64 //iocov:guarded-by mu
}

// Metrics is the daemon's observability state, exported in the Prometheus
// text exposition format by /metrics. Everything on the ingest path is
// contention-free: the scalar counters and the merge histogram are atomics,
// and the per-syscall hit map is striped by name hash so sessions folding
// their hits lock disjoint shards.
type Metrics struct {
	// EventsIngested counts events parsed from ingest streams, before the
	// mount filter.
	EventsIngested atomic.Int64
	// EventsFiltered counts events the mount filter dropped.
	EventsFiltered atomic.Int64
	// BytesRead counts raw stream bytes consumed, including rejected
	// sessions.
	BytesRead atomic.Int64
	// ActiveStreams is the number of ingest sessions currently open.
	ActiveStreams atomic.Int64
	// SessionsTotal counts completed ingest sessions (merged or rejected).
	SessionsTotal atomic.Int64
	// SessionsFailed counts sessions rejected before merging (malformed
	// stream, over-size body, deadline).
	SessionsFailed atomic.Int64
	// SessionsV1/SessionsV2 count cleanly decoded sessions per binary
	// trace format version, making a fleet's v1→v2 migration observable.
	SessionsV1 atomic.Int64
	SessionsV2 atomic.Int64

	// mergeCount/mergeNanos are the store-merge latency histogram (count +
	// sum in integer nanoseconds, so the sum is a plain atomic add rather
	// than a float CAS loop).
	mergeCount atomic.Int64
	mergeNanos atomic.Int64

	hits [hitStripes]hitStripe
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	m := &Metrics{}
	for i := range m.hits {
		m.hits[i].m = make(map[string]int64)
	}
	return m
}

// FormatSessions returns the per-version session counter for a decoded
// stream's format version (v2 for anything newer than 1).
func (m *Metrics) FormatSessions(version int) *atomic.Int64 {
	if version <= 1 {
		return &m.SessionsV1
	}
	return &m.SessionsV2
}

// ObserveMerge records one store-merge latency.
//
//iocov:hotpath
func (m *Metrics) ObserveMerge(d time.Duration) {
	m.mergeCount.Add(1)
	m.mergeNanos.Add(d.Nanoseconds())
}

// hitStripeFor hashes a syscall name onto its stripe (FNV-1a folded to the
// stripe count).
//
//iocov:hotpath
func hitStripeFor(name string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int(h % hitStripes)
}

// AddHits folds one session's per-syscall partition-hit counts into the
// global counters, locking only the stripes its names hash to.
func (m *Metrics) AddHits(h map[string]int64) {
	for name, n := range h {
		st := &m.hits[hitStripeFor(name)]
		st.mu.Lock()
		st.m[name] += n
		st.mu.Unlock()
	}
}

// snapshotHits folds the hit stripes into one map for the exposition.
func (m *Metrics) snapshotHits() map[string]int64 {
	out := make(map[string]int64)
	for i := range m.hits {
		st := &m.hits[i]
		st.mu.Lock()
		for name, n := range st.m {
			out[name] += n
		}
		st.mu.Unlock()
	}
	return out
}

// promGauge distinguishes gauges from counters in the exposition.
type promMetric struct {
	name, help, typ string
	value           string
}

// WriteProm renders the registry in the Prometheus text format, in a
// deterministic order so scrapes and tests are stable.
func (m *Metrics) WriteProm(w io.Writer, analyzed, skipped, sessions int64) error {
	mergeCount := m.mergeCount.Load()
	mergeSeconds := float64(m.mergeNanos.Load()) / 1e9
	hits := m.snapshotHits()

	metrics := []promMetric{
		{"iocovd_events_ingested_total", "Events parsed from ingest streams.", "counter",
			fmt.Sprintf("%d", m.EventsIngested.Load())},
		{"iocovd_events_filtered_total", "Events dropped by the mount filter.", "counter",
			fmt.Sprintf("%d", m.EventsFiltered.Load())},
		{"iocovd_events_analyzed_total", "In-scope events analyzed (including restored baseline).", "counter",
			fmt.Sprintf("%d", analyzed)},
		{"iocovd_events_skipped_total", "Out-of-scope events skipped (including restored baseline).", "counter",
			fmt.Sprintf("%d", skipped)},
		{"iocovd_bytes_read_total", "Raw ingest stream bytes consumed.", "counter",
			fmt.Sprintf("%d", m.BytesRead.Load())},
		{"iocovd_active_streams", "Ingest sessions currently open.", "gauge",
			fmt.Sprintf("%d", m.ActiveStreams.Load())},
		{"iocovd_sessions_total", "Completed ingest sessions.", "counter",
			fmt.Sprintf("%d", m.SessionsTotal.Load())},
		{"iocovd_sessions_failed_total", "Sessions rejected before merging.", "counter",
			fmt.Sprintf("%d", m.SessionsFailed.Load())},
		{"iocovd_sessions_merged_total", "Sessions merged into the global store.", "counter",
			fmt.Sprintf("%d", sessions)},
		{"iocovd_merge_latency_seconds_sum", "Total store-merge latency.", "counter",
			fmt.Sprintf("%g", mergeSeconds)},
		{"iocovd_merge_latency_seconds_count", "Number of store merges.", "counter",
			fmt.Sprintf("%d", mergeCount)},
	}
	for _, pm := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			pm.name, pm.help, pm.name, pm.typ, pm.name, pm.value); err != nil {
			return err
		}
	}

	if _, err := fmt.Fprintf(w,
		"# HELP iocovd_format_sessions_total Cleanly decoded sessions per binary trace format version.\n"+
			"# TYPE iocovd_format_sessions_total counter\n"+
			"iocovd_format_sessions_total{version=\"1\"} %d\n"+
			"iocovd_format_sessions_total{version=\"2\"} %d\n",
		m.SessionsV1.Load(), m.SessionsV2.Load()); err != nil {
		return err
	}

	names := make([]string, 0, len(hits))
	for name := range hits {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w,
		"# HELP iocovd_syscall_partition_hits_total Partition-counter increments per merged syscall.\n"+
			"# TYPE iocovd_syscall_partition_hits_total counter\n"); err != nil {
		return err
	}
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "iocovd_syscall_partition_hits_total{syscall=%q} %d\n",
			name, hits[name]); err != nil {
			return err
		}
	}
	return nil
}
