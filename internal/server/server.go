// Package server implements iocovd, the networked coverage-aggregation
// daemon: the long-lived service form of the paper's batch pipeline. Many
// tracers (xfstests/crashmonkey shards, remote harnesses) stream
// dictionary-compressed binary traces to POST /ingest; each connection runs
// through its own Filter→Analyzer pipeline and is folded into a global
// store with the byte-identical Analyzer.Merge contract, so the aggregate
// snapshot equals what one serial analyzer would have produced over the
// union of all streams.
//
// Endpoints:
//
//	POST /ingest   binary trace stream (one session per request)
//	GET  /report   global coverage snapshot as JSON
//	GET  /tcd      Test Coverage Deviation for one space, as JSON
//	GET  /metrics  Prometheus text exposition
//	GET  /healthz  liveness + session counts
//
// Robustness is part of the design: ingest sessions are bounded (stream
// semaphore for backpressure, per-session read deadline, optional body-size
// cap, the hardened binary parser's per-string/per-event budgets), a
// malformed stream poisons only its own session, and the store checkpoints
// its snapshot to disk so a restarted daemon resumes from the last
// checkpoint with a byte-identical /report.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"iocov/internal/coverage"
	iometrics "iocov/internal/metrics"
	"iocov/internal/trace"
)

// DefaultMountPattern is the trace-filter regexp used when Config leaves
// MountPattern empty: the /mnt/test mount both simulated suites use
// (harness.MountPattern; duplicated here so the server does not depend on
// the suite harness).
const DefaultMountPattern = `^/mnt/test(/|$)`

// Config configures a Server. The zero value is usable: default mount
// pattern, paper-default analyzer options, 64 concurrent streams.
type Config struct {
	// MountPattern is the per-session trace-filter regexp ("" means
	// DefaultMountPattern).
	MountPattern string
	// Options are the analyzer options every session and the global store
	// share. Zero Options are replaced by coverage.DefaultOptions().
	Options *coverage.Options
	// MaxStreams bounds concurrent ingest sessions; excess requests get
	// 503 (backpressure toward the shards). <= 0 means 64.
	MaxStreams int
	// IngestTimeout is the per-session read deadline; 0 means none.
	IngestTimeout time.Duration
	// MaxBodyBytes caps one session's stream; 0 means unlimited.
	MaxBodyBytes int64
	// CheckpointPath is where Checkpoint persists the snapshot ("" →
	// checkpointing disabled).
	CheckpointPath string
	// SnapshotNumeric truncates numeric domains in reports (0 means the
	// default 34-bucket window).
	SnapshotNumeric int
}

// Server is the aggregation daemon: an http.Handler plus the store and
// metrics behind it.
type Server struct {
	cfg     Config
	opts    coverage.Options
	store   *Store
	metrics *Metrics
	mux     *http.ServeMux
	sem     chan struct{}
	seq     atomic.Uint64
	started time.Time
	// filterProto holds the compiled mount pattern; sessions clone fresh
	// per-stream filter state from it instead of recompiling the regexp.
	filterProto *trace.Filter
	// sessPool recycles per-stream pipeline state (analyzer, batch
	// dispatcher, decoder, filter) across ingest requests; see ingestSession.
	sessPool sync.Pool
}

// ingestSession is the per-stream pipeline state handleIngest draws from a
// sync.Pool: the analyzer dominates a session's allocation cost (counter
// maps, dense slices) and the decoder owns the read buffer, so recycling
// them turns per-request setup into a handful of Reset calls. Every
// component's Reset restores fresh-construction semantics — proven by the
// coverage and trace reset tests — so a recycled session is observationally
// a new one, even when its previous life ended mid-stream on a malformed
// input.
type ingestSession struct {
	an     *coverage.Analyzer
	batch  *coverage.Batch
	dec    *trace.BatchDecoder
	filter *trace.Filter
}

// getSession returns a session pipeline reading from r, recycled when the
// pool has one.
func (s *Server) getSession(r io.Reader) *ingestSession {
	if sess, ok := s.sessPool.Get().(*ingestSession); ok {
		sess.dec.Reset(r)
		return sess
	}
	an := coverage.NewAnalyzer(s.opts)
	return &ingestSession{
		an:     an,
		batch:  an.NewBatch(),
		dec:    trace.NewBatchDecoder(r),
		filter: s.filterProto.Fresh(),
	}
}

// putSession wipes a session's state and parks it for the next stream. It
// is safe on poisoned sessions: Reset discards the partial decode and
// partial counts along with everything else.
func (s *Server) putSession(sess *ingestSession) {
	sess.an.Reset()
	sess.batch.Reset()
	sess.filter.Reset()
	sess.dec.Reset(nil) // drop the request-body reference
	s.sessPool.Put(sess)
}

// New builds a Server, restoring the checkpoint file if one exists.
func New(cfg Config) (*Server, error) {
	if cfg.MountPattern == "" {
		cfg.MountPattern = DefaultMountPattern
	}
	// Compile the pattern once up front; sessions clone their own stateful
	// filter from the prototype per connection.
	proto, err := trace.NewFilter(cfg.MountPattern)
	if err != nil {
		return nil, fmt.Errorf("server: bad mount pattern: %w", err)
	}
	if cfg.MaxStreams <= 0 {
		cfg.MaxStreams = 64
	}
	opts := coverage.DefaultOptions()
	if cfg.Options != nil {
		opts = *cfg.Options
	}
	s := &Server{
		cfg:         cfg,
		opts:        opts,
		store:       NewStore(opts, cfg.SnapshotNumeric),
		metrics:     NewMetrics(),
		mux:         http.NewServeMux(),
		sem:         make(chan struct{}, cfg.MaxStreams),
		started:     time.Now(),
		filterProto: proto,
	}
	if cfg.CheckpointPath != "" {
		if err := s.store.Restore(cfg.CheckpointPath); err != nil {
			return nil, err
		}
	}
	s.mux.HandleFunc("/ingest", s.handleIngest)
	s.mux.HandleFunc("/report", s.handleReport)
	s.mux.HandleFunc("/tcd", s.handleTCD)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the global store (tests, checkpoint wiring).
func (s *Server) Store() *Store { return s.store }

// Metrics exposes the metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Checkpoint persists the current snapshot when checkpointing is
// configured.
func (s *Server) Checkpoint() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	return s.store.WriteCheckpoint(s.cfg.CheckpointPath)
}

// RunCheckpointLoop checkpoints every interval until ctx is done, then
// writes one final checkpoint — the graceful-shutdown hook. Errors are
// reported through errf (nil means stderr-style default of discarding).
func (s *Server) RunCheckpointLoop(ctx context.Context, every time.Duration, errf func(error)) {
	if errf == nil {
		errf = func(error) {}
	}
	if s.cfg.CheckpointPath == "" {
		<-ctx.Done()
		return
	}
	if every > 0 {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				if err := s.Checkpoint(); err != nil {
					errf(err)
				}
				return
			case <-t.C:
				if err := s.Checkpoint(); err != nil {
					errf(err)
				}
			}
		}
	}
	<-ctx.Done()
	if err := s.Checkpoint(); err != nil {
		errf(err)
	}
}

// IngestResult is the JSON body a successful /ingest returns; the remote
// harness decodes it to report per-shard totals.
type IngestResult struct {
	// Session is the stream's id (client-supplied X-Iocov-Session header,
	// or server-assigned).
	Session string `json:"session"`
	// Events is the number of events parsed from the stream.
	Events int64 `json:"events"`
	// Kept and Dropped are the mount filter's verdict counts.
	Kept    int64 `json:"kept"`
	Dropped int64 `json:"dropped"`
	// Analyzed and Skipped are the analyzer's in-scope/out-of-scope
	// counts over the kept events.
	Analyzed int64 `json:"analyzed"`
	Skipped  int64 `json:"skipped"`
}

// TCDResult is the JSON body /tcd returns.
type TCDResult struct {
	Syscall     string  `json:"syscall"`
	Arg         string  `json:"arg,omitempty"`
	Target      int64   `json:"target"`
	TCD         float64 `json:"tcd"`
	Domain      int     `json:"domain"`
	Covered     int     `json:"covered"`
	Untested    int     `json:"untested"`
	UnderTested int     `json:"under_tested"`
	Adequate    int     `json:"adequate"`
	OverTested  int     `json:"over_tested"`
}

// httpError writes an error response with an explicit status code. Every
// handler error path funnels through it (or WriteHeader directly); the
// iocovlint httpcheck pass enforces this.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes a 200 JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// countingReader counts consumed stream bytes for the metrics.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// declaredFormat extracts the client's advertised trace-format version
// from the request: the X-Iocov-Format header, or a v= parameter on the
// Content-Type (e.g. "application/x-iocov-trace; v=2"). 0 means the client
// declared nothing (any supported version is accepted); -1 marks an
// unparseable or unsupported declaration.
func declaredFormat(r *http.Request) int {
	decl := r.Header.Get("X-Iocov-Format")
	if decl == "" {
		if ct := r.Header.Get("Content-Type"); ct != "" {
			if _, params, err := mime.ParseMediaType(ct); err == nil {
				decl = params["v"]
			}
		}
	}
	switch decl {
	case "":
		return 0
	case "1":
		return 1
	case "2":
		return 2
	default:
		return -1
	}
}

// handleIngest runs one streaming session: binary events are batch-decoded
// as they arrive (TCP flow control is the backpressure toward the sender),
// filtered, analyzed into a session-local analyzer, and merged into the
// global store only when the stream ends cleanly. Any decode failure
// rejects the whole session and merges nothing, so a poisoned stream never
// contaminates the aggregate.
//
// Decoding goes through trace.BatchDecoder + coverage.Batch: one reused
// event, no per-event allocation, dictionary-ordinal dispatch into the
// analyzer's dense counters. Both format versions are accepted; a client
// that declares a version (X-Iocov-Format or a Content-Type v= parameter)
// must stream a matching header.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "ingest requires POST")
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		httpError(w, http.StatusServiceUnavailable,
			"ingest capacity (%d streams) exhausted; retry with backoff", s.cfg.MaxStreams)
		return
	}
	defer func() { <-s.sem }()
	s.metrics.ActiveStreams.Add(1)
	defer s.metrics.ActiveStreams.Add(-1)
	defer s.metrics.SessionsTotal.Add(1)

	session := r.Header.Get("X-Iocov-Session")
	if session == "" {
		session = fmt.Sprintf("s%06d", s.seq.Add(1))
	}
	if t := s.cfg.IngestTimeout; t > 0 {
		// Not every transport supports deadlines (httptest recorders);
		// a stream that cannot be bounded is still served.
		_ = http.NewResponseController(w).SetReadDeadline(time.Now().Add(t))
	}
	var body io.Reader = r.Body
	if s.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	cr := &countingReader{r: body}
	defer func() { s.metrics.BytesRead.Add(cr.n) }()

	declared := declaredFormat(r)
	if declared < 0 {
		httpError(w, http.StatusBadRequest, "session %s: unsupported trace format declaration", session)
		return
	}
	sess := s.getSession(cr)
	defer s.putSession(sess)
	filter, an, batch, dec := sess.filter, sess.an, sess.batch, sess.dec
	if err := dec.ReadHeader(); err != nil {
		s.metrics.SessionsFailed.Add(1)
		httpError(w, ingestErrorStatus(err), "session %s rejected: %v", session, err)
		return
	}
	if declared != 0 && declared != dec.Version() {
		s.metrics.SessionsFailed.Add(1)
		httpError(w, http.StatusBadRequest, "session %s rejected: declared format v%d but stream header is v%d",
			session, declared, dec.Version())
		return
	}
	var events int64
	var ev trace.Event
	for {
		nameID, err := dec.Next(&ev)
		if err == io.EOF {
			break
		}
		if err != nil {
			s.metrics.SessionsFailed.Add(1)
			s.metrics.EventsIngested.Add(events)
			httpError(w, ingestErrorStatus(err), "session %s rejected after %d events: %v",
				session, events, err)
			return
		}
		events++
		if filter.KeepRef(&ev) {
			batch.Add(&ev, nameID)
		}
	}
	s.metrics.FormatSessions(dec.Version()).Add(1)
	_, dropped := filter.Stats()
	s.metrics.EventsIngested.Add(events)
	s.metrics.EventsFiltered.Add(dropped)

	hits := an.PartitionHits()
	start := time.Now()
	if err := s.store.MergeSession(an); err != nil {
		s.metrics.SessionsFailed.Add(1)
		httpError(w, http.StatusInternalServerError, "session %s merge: %v", session, err)
		return
	}
	s.metrics.ObserveMerge(time.Since(start))
	s.metrics.AddHits(hits)

	kept, _ := filter.Stats()
	writeJSON(w, IngestResult{
		Session:  session,
		Events:   events,
		Kept:     kept,
		Dropped:  dropped,
		Analyzed: an.Analyzed(),
		Skipped:  an.Skipped(),
	})
}

// ingestErrorStatus maps a stream failure to its HTTP status: structural
// and truncation failures are the client's fault (400), an over-size body
// is 413, a read deadline is 408.
func ingestErrorStatus(err error) int {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, os.ErrDeadlineExceeded):
		return http.StatusRequestTimeout
	case errors.Is(err, trace.ErrMalformed), errors.Is(err, io.ErrUnexpectedEOF):
		return http.StatusBadRequest
	default:
		return http.StatusBadRequest
	}
}

// handleReport serves the global coverage snapshot.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "report requires GET")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = s.store.Report().WriteJSON(w)
}

// handleTCD serves the Test Coverage Deviation of one coverage space
// against a uniform target, computed from the global snapshot (so it
// includes any restored baseline).
func (s *Server) handleTCD(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "tcd requires GET")
		return
	}
	q := r.URL.Query()
	syscall := q.Get("syscall")
	if syscall == "" {
		syscall = "open"
	}
	arg := "flags"
	if q.Has("arg") {
		arg = q.Get("arg") // explicit empty selects the output space
	}
	var target int64 = 1000
	if t := q.Get("target"); t != "" {
		n, err := parsePositive(t)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad target %q: %v", t, err)
			return
		}
		target = n
	}
	space := s.store.Report().Space(syscall, arg)
	if space == nil {
		httpError(w, http.StatusNotFound, "no coverage recorded for %s.%s", syscall, arg)
		return
	}
	freqs := make([]int64, 0, len(space.Counts)+len(space.Untested))
	for _, n := range space.Counts {
		freqs = append(freqs, n)
	}
	for range space.Untested {
		freqs = append(freqs, 0)
	}
	counts := iometrics.ClassifyAll(freqs, target, 10)
	writeJSON(w, TCDResult{
		Syscall:     syscall,
		Arg:         arg,
		Target:      target,
		TCD:         iometrics.UniformTCD(freqs, target),
		Domain:      space.Domain,
		Covered:     space.Covered,
		Untested:    counts[iometrics.Untested],
		UnderTested: counts[iometrics.UnderTested],
		Adequate:    counts[iometrics.Adequate],
		OverTested:  counts[iometrics.OverTested],
	})
}

// parsePositive parses a positive decimal int64.
func parsePositive(s string) (int64, error) {
	var n int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("not a positive integer")
		}
		d := int64(c - '0')
		if n > (1<<63-1-d)/10 {
			return 0, fmt.Errorf("overflows int64")
		}
		n = n*10 + d
	}
	if s == "" || n == 0 {
		return 0, fmt.Errorf("must be >= 1")
	}
	return n, nil
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "metrics requires GET")
		return
	}
	analyzed, skipped := s.store.Totals()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.metrics.WriteProm(w, analyzed, skipped, s.store.Sessions())
}

// handleHealthz serves liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "healthz requires GET")
		return
	}
	analyzed, _ := s.store.Totals()
	writeJSON(w, map[string]any{
		"status":         "ok",
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
		"sessions":       s.store.Sessions(),
		"analyzed":       analyzed,
	})
}
