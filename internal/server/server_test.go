package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"iocov/internal/coverage"
	"iocov/internal/sys"
	"iocov/internal/trace"
)

// streamEvents builds the deterministic event sequence for stream i: a mix
// of in-mount opens/writes/reads, out-of-mount traffic the filter must
// drop, a failed open, and an unknown syscall the analyzer must skip.
func streamEvents(i int) []trace.Event {
	flags := []int64{
		0,
		int64(sys.O_WRONLY | sys.O_CREAT),
		int64(sys.O_RDWR | sys.O_CREAT | sys.O_TRUNC),
		int64(sys.O_WRONLY | sys.O_APPEND),
	}
	path := fmt.Sprintf("/mnt/test/f%d", i)
	evs := []trace.Event{
		{Name: "open", PID: 1 + i, Ret: 3,
			Strs: map[string]string{"filename": path},
			Args: map[string]int64{"flags": flags[i%len(flags)], "mode": 0o644}},
		{Name: "write", PID: 1 + i, Ret: 1 << (i % 12),
			Args: map[string]int64{"fd": 3, "count": 1 << (i % 12)}},
		{Name: "read", PID: 1 + i, Ret: 0,
			Args: map[string]int64{"fd": 3, "count": 4096}},
		// Out-of-mount open and a write through its descriptor: both dropped.
		{Name: "open", PID: 1 + i, Ret: 4,
			Strs: map[string]string{"filename": "/etc/passwd"},
			Args: map[string]int64{"flags": 0, "mode": 0}},
		{Name: "write", PID: 1 + i, Ret: 10,
			Args: map[string]int64{"fd": 4, "count": 10}},
		{Name: "close", PID: 1 + i, Ret: 0,
			Args: map[string]int64{"fd": 3}},
		// Failed open stays in the mount's input+output spaces.
		{Name: "open", PID: 1 + i, Ret: -int64(sys.ENOENT), Err: sys.ENOENT,
			Strs: map[string]string{"filename": "/mnt/test/missing"},
			Args: map[string]int64{"flags": int64(sys.O_RDWR), "mode": 0}},
		// Kept by the path filter but outside the analyzer's spec: skipped.
		{Name: "bogus_syscall", PID: 1 + i, Ret: 0,
			Strs: map[string]string{"pathname": "/mnt/test/x"}},
	}
	return evs
}

// encodeStream serializes events in the binary trace format (v1).
func encodeStream(t *testing.T, evs []trace.Event) []byte {
	t.Helper()
	return encodeStreamV(t, evs, 1)
}

// encodeStreamV serializes events in the requested format version.
func encodeStreamV(t *testing.T, evs []trace.Event, version int) []byte {
	t.Helper()
	var buf bytes.Buffer
	var w *trace.BinaryWriter
	if version >= 2 {
		w = trace.NewBinaryWriterV2(&buf)
	} else {
		w = trace.NewBinaryWriter(&buf)
	}
	for _, ev := range evs {
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

// serialSnapshot runs the given streams through per-stream filter+analyzer
// pipelines merged into one analyzer — the reference the daemon must match
// byte-for-byte. Each stream is round-tripped through the binary codec
// first so the reference sees exactly the events the daemon's parser
// reconstructs (Path derived from string args, canonical field set).
func serialSnapshot(t *testing.T, streams [][]trace.Event) []byte {
	t.Helper()
	global := coverage.NewAnalyzer(coverage.DefaultOptions())
	for _, evs := range streams {
		decoded, err := trace.ParseAllBinary(bytes.NewReader(encodeStream(t, evs)))
		if err != nil {
			t.Fatalf("round-trip: %v", err)
		}
		f, err := trace.NewFilter(DefaultMountPattern)
		if err != nil {
			t.Fatalf("NewFilter: %v", err)
		}
		an := coverage.NewAnalyzer(coverage.DefaultOptions())
		for _, ev := range decoded {
			if f.Keep(ev) {
				an.Add(ev)
			}
		}
		if err := global.Merge(an); err != nil {
			t.Fatalf("Merge: %v", err)
		}
	}
	var buf bytes.Buffer
	if err := global.Snapshot(0).WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func ingest(t *testing.T, url string, session string, body []byte) (*http.Response, IngestResult) {
	t.Helper()
	return ingestHeaders(t, url, session, body, nil)
}

func ingestHeaders(t *testing.T, url string, session string, body []byte, headers map[string]string) (*http.Response, IngestResult) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/ingest", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if session != "" {
		req.Header.Set("X-Iocov-Session", session)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	defer resp.Body.Close()
	var res IngestResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatalf("decode IngestResult: %v", err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp, res
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, b
}

// TestConcurrentIngestMatchesSerial is the tentpole contract: N concurrent
// streams through the daemon must produce a /report byte-identical to one
// serial analyzer over the same per-stream pipelines. Run with -race this
// also exercises the store's locking with 12 simultaneous sessions.
func TestConcurrentIngestMatchesSerial(t *testing.T) {
	const nStreams = 12
	s, ts := newTestServer(t, Config{})

	streams := make([][]trace.Event, nStreams)
	for i := range streams {
		streams[i] = streamEvents(i)
	}

	var wg sync.WaitGroup
	errs := make(chan error, nStreams)
	for i := 0; i < nStreams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := encodeStream(t, streams[i])
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/ingest", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var res IngestResult
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				errs <- fmt.Errorf("stream %d: decode: %v", i, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("stream %d: status %d", i, resp.StatusCode)
				return
			}
			if res.Events != int64(len(streams[i])) {
				errs <- fmt.Errorf("stream %d: events %d, want %d", i, res.Events, len(streams[i]))
				return
			}
			if res.Kept+res.Dropped != res.Events {
				errs <- fmt.Errorf("stream %d: kept %d + dropped %d != events %d",
					i, res.Kept, res.Dropped, res.Events)
			}
			if res.Skipped != 1 { // the bogus_syscall
				errs <- fmt.Errorf("stream %d: skipped %d, want 1", i, res.Skipped)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	code, got := get(t, ts.URL+"/report")
	if code != http.StatusOK {
		t.Fatalf("/report status %d", code)
	}
	want := serialSnapshot(t, streams)
	if !bytes.Equal(got, want) {
		t.Errorf("concurrent /report != serial snapshot\n got: %.400s\nwant: %.400s", got, want)
	}
	if n := s.Store().Sessions(); n != nStreams {
		t.Errorf("sessions = %d, want %d", n, nStreams)
	}
}

// TestCheckpointRestartByteIdentical is the acceptance criterion: kill the
// daemon after a checkpoint, start a fresh one on the same checkpoint file,
// and /report must serve the pre-kill snapshot byte-for-byte.
func TestCheckpointRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "iocovd.ckpt.json")

	streams := [][]trace.Event{streamEvents(0), streamEvents(1), streamEvents(2)}
	s1, ts1 := newTestServer(t, Config{CheckpointPath: ckpt})
	for i, evs := range streams {
		resp, _ := ingest(t, ts1.URL, fmt.Sprintf("pre-kill-%d", i), encodeStream(t, evs))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d", i, resp.StatusCode)
		}
	}
	if err := s1.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	_, preKill := get(t, ts1.URL+"/report")
	ts1.Close() // the "kill"

	s2, ts2 := newTestServer(t, Config{CheckpointPath: ckpt})
	code, postRestart := get(t, ts2.URL+"/report")
	if code != http.StatusOK {
		t.Fatalf("/report after restart: status %d", code)
	}
	if !bytes.Equal(postRestart, preKill) {
		t.Errorf("post-restart /report not byte-identical to pre-kill snapshot\n got: %.400s\nwant: %.400s",
			postRestart, preKill)
	}

	// Restored totals are visible even though no session merged yet.
	analyzed, skipped := s2.Store().Totals()
	if analyzed == 0 || skipped == 0 {
		t.Errorf("restored totals analyzed=%d skipped=%d, want both > 0", analyzed, skipped)
	}

	// And ingesting into the restarted daemon keeps aggregating on top of
	// the checkpoint: the result must match a serial run over all streams.
	extra := streamEvents(3)
	if resp, _ := ingest(t, ts2.URL, "post-restart", encodeStream(t, extra)); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart ingest: status %d", resp.StatusCode)
	}
	_, got := get(t, ts2.URL+"/report")
	want := serialSnapshot(t, append(streams, extra))
	if !bytes.Equal(got, want) {
		t.Errorf("post-restart aggregate != serial over all streams\n got: %.400s\nwant: %.400s", got, want)
	}
}

// TestMalformedStreamPoisonsOnlySession: a corrupt stream is rejected with
// 400 and contributes nothing, while sessions before and after it merge
// normally.
func TestMalformedStreamPoisonsOnlySession(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	good := streamEvents(0)
	if resp, _ := ingest(t, ts.URL, "good-1", encodeStream(t, good)); resp.StatusCode != http.StatusOK {
		t.Fatalf("good ingest: status %d", resp.StatusCode)
	}

	// Valid header + one valid event, then a dangling dictionary reference.
	poison := encodeStream(t, streamEvents(1))
	poison = append(poison, 0x02) // truncated/garbage trailing event
	resp, _ := ingest(t, ts.URL, "poison", poison)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("poison ingest: status %d, want 400", resp.StatusCode)
	}

	good2 := streamEvents(2)
	if resp, _ := ingest(t, ts.URL, "good-2", encodeStream(t, good2)); resp.StatusCode != http.StatusOK {
		t.Fatalf("good2 ingest: status %d", resp.StatusCode)
	}

	_, got := get(t, ts.URL+"/report")
	want := serialSnapshot(t, [][]trace.Event{good, good2})
	if !bytes.Equal(got, want) {
		t.Errorf("poisoned session leaked into /report\n got: %.400s\nwant: %.400s", got, want)
	}
	if n := s.Metrics().SessionsFailed.Load(); n != 1 {
		t.Errorf("SessionsFailed = %d, want 1", n)
	}
	if n := s.Store().Sessions(); n != 2 {
		t.Errorf("merged sessions = %d, want 2", n)
	}
}

// TestIngestEmptyBodyRejected: a zero-byte stream is NOT a valid empty
// trace — the header is mandatory, so the session is rejected with 400 and
// counted as failed. (Before the fix the decoder treated the missing header
// as a clean EOF and the daemon merged an empty session.)
func TestIngestEmptyBodyRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, _ := ingest(t, ts.URL, "empty", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body: status %d, want 400", resp.StatusCode)
	}
	if n := s.Metrics().SessionsFailed.Load(); n != 1 {
		t.Errorf("SessionsFailed = %d, want 1", n)
	}
	if n := s.Store().Sessions(); n != 0 {
		t.Errorf("merged sessions = %d, want 0", n)
	}
}

// TestIngestV1V2ReportByteIdentical is the version-negotiation acceptance
// criterion: the same events ingested as v1 into one daemon and as v2 into
// another must produce byte-identical /report snapshots — the format is
// transport detail, never analysis input.
func TestIngestV1V2ReportByteIdentical(t *testing.T) {
	streams := [][]trace.Event{streamEvents(0), streamEvents(1), streamEvents(2)}

	reports := make([][]byte, 2)
	for vi, version := range []int{1, 2} {
		s, ts := newTestServer(t, Config{})
		for i, evs := range streams {
			resp, res := ingestHeaders(t, ts.URL, fmt.Sprintf("v%d-%d", version, i),
				encodeStreamV(t, evs, version),
				map[string]string{"X-Iocov-Format": fmt.Sprintf("%d", version)})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("v%d stream %d: status %d", version, i, resp.StatusCode)
			}
			if res.Events != int64(len(evs)) {
				t.Fatalf("v%d stream %d: events %d, want %d", version, i, res.Events, len(evs))
			}
		}
		code, report := get(t, ts.URL+"/report")
		if code != http.StatusOK {
			t.Fatalf("v%d /report status %d", version, code)
		}
		reports[vi] = report
		if n := s.Metrics().FormatSessions(version).Load(); n != int64(len(streams)) {
			t.Errorf("v%d format sessions = %d, want %d", version, n, len(streams))
		}
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Errorf("v1 and v2 /report differ\n  v1: %.400s\n  v2: %.400s", reports[0], reports[1])
	}
	if want := serialSnapshot(t, streams); !bytes.Equal(reports[0], want) {
		t.Errorf("/report differs from serial reference\n got: %.400s\nwant: %.400s", reports[0], want)
	}
}

// TestIngestFormatNegotiation pins the declaration rules: a declared
// version must match the stream header, declarations ride either the
// X-Iocov-Format header or a Content-Type v= parameter, an undeclared
// stream accepts either version, and junk declarations are rejected.
func TestIngestFormatNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	evs := streamEvents(0)
	v1, v2 := encodeStreamV(t, evs, 1), encodeStreamV(t, evs, 2)

	cases := []struct {
		name    string
		body    []byte
		headers map[string]string
		want    int
	}{
		{"undeclared-v1", v1, nil, http.StatusOK},
		{"undeclared-v2", v2, nil, http.StatusOK},
		{"declared-v2-matches", v2, map[string]string{"X-Iocov-Format": "2"}, http.StatusOK},
		{"content-type-v1", v1, map[string]string{"Content-Type": "application/octet-stream; v=1"}, http.StatusOK},
		{"declared-v2-stream-v1", v1, map[string]string{"X-Iocov-Format": "2"}, http.StatusBadRequest},
		{"declared-v1-stream-v2", v2, map[string]string{"X-Iocov-Format": "1"}, http.StatusBadRequest},
		{"declared-junk", v1, map[string]string{"X-Iocov-Format": "banana"}, http.StatusBadRequest},
		{"declared-unsupported", v1, map[string]string{"X-Iocov-Format": "9"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _ := ingestHeaders(t, ts.URL, c.name, c.body, c.headers)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

// TestIngestPIDOverflowRejected: a wire pid >= 2^63 (which would wrap
// negative through int) rejects the session as malformed.
func TestIngestPIDOverflowRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := encodeStream(t, nil) // just the header
	body = append(body, 1)       // seq = 1
	// pid = 2^63 as a uvarint.
	body = append(body, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)
	resp, _ := ingest(t, ts.URL, "bigpid", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("pid 2^63: status %d, want 400", resp.StatusCode)
	}
}

// TestIngestBodyTooLarge: MaxBodyBytes rejects over-size streams with 413.
func TestIngestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	var evs []trace.Event
	for i := 0; i < 50; i++ {
		evs = append(evs, streamEvents(i)...)
	}
	resp, _ := ingest(t, ts.URL, "", encodeStream(t, evs))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413", resp.StatusCode)
	}
}

// TestIngestBackpressure: when every stream slot is busy the daemon sheds
// load with 503 instead of queueing unbounded work.
func TestIngestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxStreams: 1})
	s.sem <- struct{}{} // occupy the only slot
	resp, _ := ingest(t, ts.URL, "", encodeStream(t, streamEvents(0)))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503", resp.StatusCode)
	}
	<-s.sem
	if resp, _ := ingest(t, ts.URL, "", encodeStream(t, streamEvents(0))); resp.StatusCode != http.StatusOK {
		t.Errorf("after release: status %d, want 200", resp.StatusCode)
	}
}

// TestIngestErrorStatus pins the error → HTTP status classification.
func TestIngestErrorStatus(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{&http.MaxBytesError{Limit: 10}, http.StatusRequestEntityTooLarge},
		{fmt.Errorf("read: %w", os.ErrDeadlineExceeded), http.StatusRequestTimeout},
		{fmt.Errorf("bad dict: %w", trace.ErrMalformed), http.StatusBadRequest},
		{io.ErrUnexpectedEOF, http.StatusBadRequest},
		{errors.New("anything else"), http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := ingestErrorStatus(c.err); got != c.want {
			t.Errorf("ingestErrorStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestMetricsEndpoint checks the Prometheus exposition reflects ingests.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	evs := streamEvents(0)
	if resp, _ := ingest(t, ts.URL, "m", encodeStream(t, evs)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	text := string(body)
	for _, want := range []string{
		fmt.Sprintf("iocovd_events_ingested_total %d", len(evs)),
		"iocovd_events_filtered_total 2",
		"iocovd_sessions_merged_total 1",
		"iocovd_active_streams 0",
		"iocovd_merge_latency_seconds_count 1",
		`iocovd_syscall_partition_hits_total{syscall="open"}`,
		`iocovd_syscall_partition_hits_total{syscall="write"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestTCDEndpoint checks the deviation endpoint against the global store.
func TestTCDEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, _ := ingest(t, ts.URL, "", encodeStream(t, streamEvents(0))); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}

	code, body := get(t, ts.URL+"/tcd?syscall=open&arg=flags&target=100")
	if code != http.StatusOK {
		t.Fatalf("/tcd status %d: %s", code, body)
	}
	var res TCDResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if res.Syscall != "open" || res.Arg != "flags" || res.Target != 100 {
		t.Errorf("echo fields wrong: %+v", res)
	}
	if res.Domain == 0 || res.TCD <= 0 {
		t.Errorf("degenerate TCD result: %+v", res)
	}
	if res.Untested+res.UnderTested+res.Adequate+res.OverTested != res.Domain {
		t.Errorf("adequacy classes don't sum to domain: %+v", res)
	}

	if code, _ := get(t, ts.URL+"/tcd?syscall=nonexistent"); code != http.StatusNotFound {
		t.Errorf("unknown syscall: status %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/tcd?syscall=open&arg=flags&target=zero"); code != http.StatusBadRequest {
		t.Errorf("bad target: status %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/tcd?syscall=open&arg=flags&target=0"); code != http.StatusBadRequest {
		t.Errorf("zero target: status %d, want 400", code)
	}
}

// TestHealthzAndMethods covers liveness and method guards.
func TestHealthzAndMethods(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var h map[string]any
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if h["status"] != "ok" {
		t.Errorf("healthz status = %v", h["status"])
	}

	if code, _ := get(t, ts.URL+"/ingest"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest: status %d, want 405", code)
	}
	for _, path := range []string{"/report", "/tcd", "/metrics", "/healthz"} {
		resp, err := http.Post(ts.URL+path, "application/json", nil)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
	}
}

// TestRunCheckpointLoop: the loop writes a final checkpoint on shutdown.
func TestRunCheckpointLoop(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	s, ts := newTestServer(t, Config{CheckpointPath: ckpt})
	if resp, _ := ingest(t, ts.URL, "", encodeStream(t, streamEvents(0))); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest failed")
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		s.RunCheckpointLoop(ctx, time.Hour, nil) // interval never fires; final write on cancel
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("checkpoint loop did not exit")
	}

	b, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("final checkpoint missing: %v", err)
	}
	_, report := get(t, ts.URL+"/report")
	if !bytes.Equal(b, report) {
		t.Errorf("checkpoint bytes differ from /report")
	}
}

// TestRestoreCorruptCheckpoint: a corrupt checkpoint fails startup loudly
// instead of silently dropping history.
func TestRestoreCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	if err := os.WriteFile(ckpt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{CheckpointPath: ckpt}); err == nil {
		t.Error("New accepted corrupt checkpoint")
	}
}

// TestBadMountPattern: an invalid filter regexp fails construction.
func TestBadMountPattern(t *testing.T) {
	if _, err := New(Config{MountPattern: "("}); err == nil {
		t.Error("New accepted invalid mount pattern")
	}
}
