package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"iocov/internal/coverage"
)

// Store is the daemon's global coverage state: a live analyzer that
// per-session analyzers are folded into under a mutex (the byte-identical
// Analyzer.Merge contract makes merge order irrelevant to the final
// snapshot), plus an optional baseline snapshot restored from a checkpoint
// file. Reports are built by merging the baseline with the live analyzer's
// snapshot, so a restarted daemon picks up exactly where the last
// checkpoint left it.
type Store struct {
	// opts and maxNumeric are fixed at construction.
	opts       coverage.Options
	maxNumeric int

	mu       sync.Mutex
	live     *coverage.Analyzer //iocov:guarded-by mu
	baseline *coverage.Snapshot //iocov:guarded-by mu
	sessions int64              //iocov:guarded-by mu
}

// NewStore builds an empty store. maxNumeric is the numeric-domain
// truncation applied to reports (0 means the default 34-bucket window).
func NewStore(opts coverage.Options, maxNumeric int) *Store {
	return &Store{
		opts:       opts,
		maxNumeric: maxNumeric,
		live:       coverage.NewAnalyzer(opts),
	}
}

// Options returns the analyzer options sessions must be built with.
func (s *Store) Options() coverage.Options { return s.opts }

// MergeSession folds one completed session's analyzer into the global
// state. The session analyzer must have been built with the store's
// options; it is left untouched and must not be used concurrently with
// this call.
func (s *Store) MergeSession(an *coverage.Analyzer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.live.Merge(an); err != nil {
		return err
	}
	s.sessions++
	return nil
}

// Sessions returns how many sessions have been merged since start (not
// counting sessions folded into a restored baseline).
func (s *Store) Sessions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions
}

// Totals returns the global analyzed/skipped event counts, including the
// restored baseline's.
func (s *Store) Totals() (analyzed, skipped int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	analyzed, skipped = s.live.Analyzed(), s.live.Skipped()
	if s.baseline != nil {
		analyzed += s.baseline.Analyzed
		skipped += s.baseline.Skipped
	}
	return analyzed, skipped
}

// Report builds the global coverage snapshot: the restored baseline (if
// any) merged with everything ingested since start.
func (s *Store) Report() *coverage.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := s.live.Snapshot(s.maxNumeric)
	if s.baseline == nil {
		return live
	}
	return coverage.MergeSnapshots(s.baseline, live)
}

// Restore loads a checkpoint file written by WriteCheckpoint into the
// baseline. A missing file is a clean start, not an error. Restore must be
// called before any session is merged.
func (s *Store) Restore(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	snap, err := coverage.LoadSnapshot(f)
	if err != nil {
		return fmt.Errorf("server: corrupt checkpoint %s: %w", path, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.baseline = snap
	return nil
}

// WriteCheckpoint atomically persists the current Report to path: the
// snapshot is written to a temporary file in the same directory and
// renamed into place, so a crash mid-write never corrupts the previous
// checkpoint. The persisted bytes are exactly what /report serves, which
// is what makes restart-then-report byte-identical.
func (s *Store) WriteCheckpoint(path string) error {
	snap := s.Report()
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(tmp); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
