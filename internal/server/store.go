package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"iocov/internal/coverage"
)

// storeStripes is the lock-striping fanout. Sessions land on stripes
// round-robin, so up to storeStripes merges proceed without contending on
// one global mutex; reads fold the stripes back together through the
// byte-identical Analyzer.Merge contract.
const storeStripes = 8

// Store is the daemon's global coverage state, striped: each stripe holds
// its own live analyzer under its own mutex, and a completed session is
// folded into exactly one stripe. Because Merge is purely additive,
// re-folding the stripes into one analyzer reproduces byte-for-byte what a
// single global analyzer would hold — the same contract that lets shards
// merge in any order — so striping is invisible in every report. An
// optional baseline snapshot restored from a checkpoint file is merged into
// reports on top.
type Store struct {
	// opts and maxNumeric are fixed at construction.
	opts       coverage.Options
	maxNumeric int

	// next assigns sessions to stripes round-robin.
	next    atomic.Uint64
	stripes [storeStripes]storeStripe

	baseMu   sync.Mutex
	baseline *coverage.Snapshot //iocov:guarded-by baseMu
}

// storeStripe is one lock shard of the store.
type storeStripe struct {
	mu       sync.Mutex
	live     *coverage.Analyzer //iocov:guarded-by mu
	sessions int64              //iocov:guarded-by mu
}

// NewStore builds an empty store. maxNumeric is the numeric-domain
// truncation applied to reports (0 means the default 34-bucket window).
func NewStore(opts coverage.Options, maxNumeric int) *Store {
	s := &Store{opts: opts, maxNumeric: maxNumeric}
	for i := range s.stripes {
		s.stripes[i].live = coverage.NewAnalyzer(opts)
	}
	return s
}

// Options returns the analyzer options sessions must be built with.
func (s *Store) Options() coverage.Options { return s.opts }

// MergeSession folds one completed session's analyzer into the global
// state, locking only the session's round-robin stripe. The session
// analyzer must have been built with the store's options; it is left
// untouched and must not be used concurrently with this call.
func (s *Store) MergeSession(an *coverage.Analyzer) error {
	st := &s.stripes[s.next.Add(1)%storeStripes]
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.live.Merge(an); err != nil {
		return err
	}
	st.sessions++
	return nil
}

// Sessions returns how many sessions have been merged since start (not
// counting sessions folded into a restored baseline).
func (s *Store) Sessions() int64 {
	var n int64
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		n += st.sessions
		st.mu.Unlock()
	}
	return n
}

// Totals returns the global analyzed/skipped event counts, including the
// restored baseline's.
func (s *Store) Totals() (analyzed, skipped int64) {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		analyzed += st.live.Analyzed()
		skipped += st.live.Skipped()
		st.mu.Unlock()
	}
	s.baseMu.Lock()
	if s.baseline != nil {
		analyzed += s.baseline.Analyzed
		skipped += s.baseline.Skipped
	}
	s.baseMu.Unlock()
	return analyzed, skipped
}

// Report builds the global coverage snapshot: the stripes folded into one
// scratch analyzer (each stripe locked only while it is being absorbed),
// merged with the restored baseline (if any). The scratch fold goes through
// Analyzer.Merge, so the result is byte-identical to what a single
// unstriped analyzer would have reported over the same sessions.
func (s *Store) Report() *coverage.Snapshot {
	fold := coverage.NewAnalyzer(s.opts)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		err := fold.Merge(st.live)
		st.mu.Unlock()
		if err != nil {
			// Unreachable: every stripe shares the scratch analyzer's
			// options by construction.
			panic(fmt.Sprintf("server: stripe fold: %v", err))
		}
	}
	live := fold.Snapshot(s.maxNumeric)
	s.baseMu.Lock()
	baseline := s.baseline
	s.baseMu.Unlock()
	if baseline == nil {
		return live
	}
	return coverage.MergeSnapshots(baseline, live)
}

// Restore loads a checkpoint file written by WriteCheckpoint into the
// baseline. A missing file is a clean start, not an error. Restore must be
// called before any session is merged.
func (s *Store) Restore(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	snap, err := coverage.LoadSnapshot(f)
	if err != nil {
		return fmt.Errorf("server: corrupt checkpoint %s: %w", path, err)
	}
	s.baseMu.Lock()
	defer s.baseMu.Unlock()
	s.baseline = snap
	return nil
}

// WriteCheckpoint atomically persists the current Report to path: the
// snapshot is written to a temporary file in the same directory and
// renamed into place, so a crash mid-write never corrupts the previous
// checkpoint. The persisted bytes are exactly what /report serves, which
// is what makes restart-then-report byte-identical.
func (s *Store) WriteCheckpoint(path string) error {
	snap := s.Report()
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(tmp); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
