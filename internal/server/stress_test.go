package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"iocov/internal/coverage"
	"iocov/internal/trace"
)

// TestIngestChurnPoisoningStress hammers the daemon with concurrent
// sessions where good streams and poisoned streams interleave on the same
// connections — the workload the pooled session state and the striped
// store must survive. Every recycled analyzer/decoder/filter that served a
// malformed stream is immediately reused for a good one, so any state
// bleed (stale dictionary entries, partial counts, leftover fd tables)
// shows up as a /report mismatch against the serial reference; any
// locking mistake in the stripes shows up under -race.
func TestIngestChurnPoisoningStress(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 12
	)
	s, ts := newTestServer(t, Config{})

	// The deterministic schedule: slot idx posts good stream idx, except
	// every third slot, which posts a poisoned stream instead. The
	// reference below re-analyzes exactly the good slots, so /report
	// equality holds for any interleaving (merges are additive).
	type slot struct {
		payload  []byte
		version  int  // format header version of the payload
		declared int  // X-Iocov-Format header; 0 = undeclared
		poisoned bool // must be rejected and merge nothing
	}
	var slots []slot
	var good [][]trace.Event
	var goodVersions []int
	for idx := 0; idx < goroutines*rounds; idx++ {
		version := 1 + idx%2
		evs := streamEvents(idx)
		payload := encodeStreamV(t, evs, version)
		switch idx % 3 {
		case 2:
			// Rotate through the poison shapes: truncation mid-stream, a
			// garbage header, and a version declaration contradicting the
			// stream's actual header.
			switch (idx / 3) % 3 {
			case 0:
				slots = append(slots, slot{payload: payload[:len(payload)/2], version: version, poisoned: true})
			case 1:
				slots = append(slots, slot{payload: []byte("not a trace stream at all"), poisoned: true})
			default:
				slots = append(slots, slot{payload: payload, version: version, declared: 3 - version, poisoned: true})
			}
		default:
			slots = append(slots, slot{payload: payload, version: version})
			good = append(good, evs)
			goodVersions = append(goodVersions, version)
		}
	}

	client := ts.Client()
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sl := slots[g*rounds+r]
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/ingest", bytes.NewReader(sl.payload))
				if err != nil {
					errCh <- err
					return
				}
				if sl.declared != 0 {
					req.Header.Set("X-Iocov-Format", fmt.Sprintf("%d", sl.declared))
				}
				resp, err := client.Do(req)
				if err != nil {
					errCh <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if sl.poisoned && resp.StatusCode == http.StatusOK {
					errCh <- fmt.Errorf("goroutine %d round %d: poisoned stream accepted", g, r)
				}
				if !sl.poisoned && resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("goroutine %d round %d: good stream rejected with %d", g, r, resp.StatusCode)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if got, want := s.Store().Sessions(), int64(len(good)); got != want {
		t.Errorf("merged sessions = %d, want %d", got, want)
	}
	nPoisoned := int64(goroutines*rounds - len(good))
	if got := s.Metrics().SessionsFailed.Load(); got != nPoisoned {
		t.Errorf("failed sessions = %d, want %d", got, nPoisoned)
	}

	// Byte-identity against a serial re-analysis of exactly the accepted
	// streams, each round-tripped through its own format version so the
	// reference sees the events the daemon's parser reconstructed.
	global := coverage.NewAnalyzer(coverage.DefaultOptions())
	for i, evs := range good {
		decoded, err := trace.ParseAllBinary(bytes.NewReader(encodeStreamV(t, evs, goodVersions[i])))
		if err != nil {
			t.Fatalf("round-trip: %v", err)
		}
		f, err := trace.NewFilter(DefaultMountPattern)
		if err != nil {
			t.Fatalf("NewFilter: %v", err)
		}
		an := coverage.NewAnalyzer(coverage.DefaultOptions())
		for _, ev := range decoded {
			if f.Keep(ev) {
				an.Add(ev)
			}
		}
		if err := global.Merge(an); err != nil {
			t.Fatalf("Merge: %v", err)
		}
	}
	var want bytes.Buffer
	if err := global.Snapshot(0).WriteJSON(&want); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	resp, err := client.Get(ts.URL + "/report")
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("report body: %v", err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("/report differs from serial re-analysis after churn+poisoning\n got %d bytes\nwant %d bytes", len(got), want.Len())
	}
}
