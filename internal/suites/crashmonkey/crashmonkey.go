// Package crashmonkey simulates the CrashMonkey black-box crash-consistency
// tester of the paper's evaluation: the seq-1 set of 300 bounded workloads
// plus its generic tests, run against /mnt/test.
//
// CrashMonkey generates short rule-based workloads — create a few files,
// mutate them with one operation drawn from a small op set, persist with
// fsync/sync, then check the crash images. What IOCov observes is therefore
// a much narrower input/output distribution than xfstests':
//
//   - an order of magnitude fewer syscalls overall (O_RDONLY ≈ 7.9k vs
//     xfstests' 4.1M at full scale, Figure 2),
//   - 3- and 4-flag open combinations dominating, with persistence flags
//     (O_SYNC, O_DIRECT) heavily represented and at most 5 flags together
//     (Table 1's CrashMonkey row: 9.3 / 2.8 / 22.1 / 65.4 / 0.5 / 0),
//   - small write sizes only (nothing above 128 KiB, Figure 3),
//   - a narrow open output set — but more ENOTDIR than xfstests, because
//     every workload probes paths through regular files (Figure 4's one
//     exception).
//
// Workloads are deterministic given Config.Seed.
package crashmonkey

import (
	"fmt"
	"math/rand"
	"strings"

	"iocov/internal/crashsim"
	"iocov/internal/kernel"
	"iocov/internal/suites/workload"
	"iocov/internal/sys"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

// Config parameterizes a run.
type Config struct {
	// Scale multiplies op counts (1.0 = the full 300-workload seq-1 run
	// plus generic tests; CrashMonkey's full run is small). Zero means 1.0.
	Scale float64
	// Seed drives all pseudo-random choices.
	Seed int64
	// MountPoint defaults to "/mnt/test".
	MountPoint string
	// Seq1Workloads is the bounded-workload count (default 300, the seq-1
	// population the paper ran).
	Seq1Workloads int
	// GenericTests is the generic-test count (default 80).
	GenericTests int
	// Noise emits out-of-mount bookkeeping syscalls for the trace filter
	// to discard.
	Noise bool
	// CrashCheck enables the crash-consistency oracle: after each seq-1
	// workload establishes its fsynced canonical state, a crash is
	// simulated and durability expectations are checked — CrashMonkey's
	// actual testing purpose.
	CrashCheck bool
	// Shard and Shards select a deterministic slice of the run's work
	// items (one seq-1 workload, one generic test, one storm chunk) for
	// parallel execution; item g runs iff g % Shards == Shard. Zero
	// Shards means 1 (run everything).
	Shard  int
	Shards int
}

// Stats summarizes a run.
type Stats struct {
	Workloads int
	Ops       int64
	Failures  int64
	// CrashViolations counts durability expectations that failed under
	// the crash oracle (always 0 on a correct filesystem).
	CrashViolations int
}

func (c *Config) fill() {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.MountPoint == "" {
		c.MountPoint = "/mnt/test"
	}
	if c.Seq1Workloads <= 0 {
		c.Seq1Workloads = 300
	}
	if c.GenericTests <= 0 {
		c.GenericTests = 80
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
}

// openCombos is the op storm's share of Table 1's CrashMonkey calibration.
// The seq-1 workloads and generic tests contribute a fixed open population
// at full scale (≈641 one-flag, ≈122 two-flag, ≈600 four-flag opens); these
// storm weights are the full-run targets — row {9.3, 2.8, 22.1, 65.4, 0.5,
// 0} over ≈12.2k total opens with an O_RDONLY share of 0.65, reproducing
// the O_RDONLY row {9.3, 2.8, 21.9, 65.6, 0.5, 0} — minus those fixed
// contributions. Weights are full-scale counts.
var openCombos = []workload.FlagWeight{
	// 1 flag: storm share 493 (rd 117)
	{Flags: sys.O_RDONLY, Weight: 117},
	{Flags: sys.O_WRONLY, Weight: 250},
	{Flags: sys.O_RDWR, Weight: 126},
	// 2 flags: storm share 219 (rd 201)
	{Flags: sys.O_RDONLY | sys.O_DIRECTORY, Weight: 201},
	{Flags: sys.O_WRONLY | sys.O_CREAT, Weight: 18},
	// 3 flags: storm share 2694 (rd 1735)
	{Flags: sys.O_RDONLY | sys.O_CREAT | sys.O_TRUNC, Weight: 1735},
	{Flags: sys.O_RDWR | sys.O_CREAT | sys.O_TRUNC, Weight: 600},
	{Flags: sys.O_WRONLY | sys.O_CREAT | sys.O_APPEND, Weight: 359},
	// 4 flags: storm share 7372 (rd 5198)
	{Flags: sys.O_RDONLY | sys.O_CREAT | sys.O_TRUNC | sys.O_SYNC, Weight: 5198},
	{Flags: sys.O_RDWR | sys.O_CREAT | sys.O_TRUNC | sys.O_DIRECT, Weight: 1200},
	{Flags: sys.O_WRONLY | sys.O_CREAT | sys.O_TRUNC | sys.O_SYNC, Weight: 974},
	// 5 flags: storm share 61 (rd 40)
	{Flags: sys.O_RDONLY | sys.O_CREAT | sys.O_TRUNC | sys.O_SYNC | sys.O_DIRECT, Weight: 40},
	{Flags: sys.O_RDWR | sys.O_CREAT | sys.O_TRUNC | sys.O_SYNC | sys.O_DIRECT, Weight: 21},
}

// writeSizes covers only the small buckets, per Figure 3's CrashMonkey
// series: nothing at "equal to 0" and nothing above 128 KiB.
var writeSizes = []workload.BucketWeight{
	{Bucket: 0, Weight: 180}, {Bucket: 3, Weight: 260},
	{Bucket: 8, Weight: 420}, {Bucket: 10, Weight: 640},
	{Bucket: 12, Weight: 900}, {Bucket: 14, Weight: 300},
	{Bucket: 16, Weight: 90},
}

// Full-scale magnitudes. The storm issues fullOpens opens; together with
// the seq-1/generic fixed opens the run totals ≈12.2k opens of which ≈7.9k
// carry the O_RDONLY access mode (the paper's 7,924).
const (
	fullOpens  = 10_839
	fullWrites = 3_400
	fullReads  = 2_600
	fullLseeks = 700
)

type runner struct {
	cfg   Config
	k     *kernel.Kernel
	p     *kernel.Proc
	rng   *rand.Rand
	buf   *workload.SharedBuf
	stats Stats
	mnt   string
	sim   *crashsim.Sim

	// nextItem is the running work-item counter used for shard
	// assignment; it advances identically on every shard.
	nextItem int
}

// item runs fn as one deterministic work item (see the xfstests runner for
// the shard-invariance contract: fixed enumeration order, round-robin shard
// assignment, item-local RNG).
func (r *runner) item(fn func()) {
	g := r.nextItem
	r.nextItem++
	if g%r.cfg.Shards != r.cfg.Shard {
		return
	}
	r.rng = workload.ItemRNG(r.cfg.Seed, uint64(g))
	fn()
}

// Run executes the simulated CrashMonkey against k.
func Run(k *kernel.Kernel, cfg Config) (Stats, error) {
	cfg.fill()
	r := &runner{
		cfg: cfg,
		k:   k,
		p:   k.NewProc(kernel.ProcOptions{Cred: vfs.Root}),
		rng: rand.New(rand.NewSource(cfg.Seed)),
		buf: workload.NewSharedBuf(128 << 10),
		mnt: cfg.MountPoint,
	}
	if cfg.Shard < 0 || cfg.Shard >= cfg.Shards {
		return Stats{}, fmt.Errorf("crashmonkey: shard %d out of range [0,%d)", cfg.Shard, cfg.Shards)
	}
	if cfg.CrashCheck {
		r.sim = crashsim.New(k.FS())
		// Chain the simulator's barrier watcher after the caller's sink.
		if prev := k.Sink(); prev != nil {
			k.SetSink(trace.MultiSink{prev, r.sim.Sink()})
		} else {
			k.SetSink(r.sim.Sink())
		}
	}
	// Setup runs untraced: every shard rebuilds the mount point on its own
	// filesystem, and those events must not reach the analyzer once per
	// shard when a serial run emits them once.
	sink := k.Sink()
	k.SetSink(nil)
	err := r.setup()
	k.SetSink(sink)
	if err != nil {
		return r.stats, err
	}
	if cfg.Noise {
		r.emitNoise()
	}
	r.runSeq1()
	r.runGeneric()
	r.storm()
	r.p.CloseAll()
	return r.stats, nil
}

func (r *runner) check(e sys.Errno) {
	r.stats.Ops++
	if e != sys.OK {
		r.stats.Failures++
	}
}

func (r *runner) setup() error {
	parts := strings.Split(strings.Trim(r.mnt, "/"), "/")
	path := ""
	for _, c := range parts {
		path += "/" + c
		if e := r.p.Mkdir(path, 0o755); e != sys.OK && e != sys.EEXIST {
			return fmt.Errorf("crashmonkey: mkdir %s: %v", path, e)
		}
	}
	return nil
}

// emitNoise issues the out-of-mount bookkeeping syscalls a real harness
// produces; IOCov's trace filter must drop them.
func (r *runner) emitNoise() {
	for i := 0; i < 40; i++ {
		_ = r.p.Mkdir("/tmp", 0o777)
		fd, e := r.p.Open("/tmp/cm-snapshot", sys.O_CREAT|sys.O_WRONLY|sys.O_TRUNC, 0o600)
		if e == sys.OK {
			_, _ = r.p.Write(fd, r.buf.Get(256))
			_ = r.p.Close(fd)
		}
	}
}

// runSeq1 executes the seq-1 bounded workloads: each prepares a canonical
// two-file, one-directory state, applies ONE operation from the op set, and
// persists — CrashMonkey's signature pattern.
func (r *runner) runSeq1() {
	n := r.cfg.Seq1Workloads
	if r.cfg.Scale < 1 {
		n = workload.ScaleCount(n, r.cfg.Scale)
		if n < 16 {
			n = 16
		}
	}
	for i := 0; i < n; i++ {
		r.item(func() {
			r.seq1Workload(i)
			r.stats.Workloads++
		})
	}
}

// seq1Ops is CrashMonkey's single-op vocabulary.
var seq1Ops = []string{
	"write", "pwrite", "truncate", "falloc", "mkdir", "rmdir",
	"link", "unlink", "rename", "symlink", "fsync-only", "sync-only",
	"setxattr", "chmod",
}

func (r *runner) seq1Workload(i int) {
	p := r.p
	d := fmt.Sprintf("%s/cm%03d", r.mnt, i)
	r.check(p.Mkdir(d, 0o755))
	fileA, fileB := d+"/A", d+"/B"
	// Canonical state: A and B exist with a page of data, persisted.
	for _, f := range []string{fileA, fileB} {
		fd, e := p.Open(f, sys.O_WRONLY|sys.O_CREAT|sys.O_TRUNC|sys.O_SYNC, 0o644)
		r.check(e)
		if e != sys.OK {
			continue
		}
		_, we := p.Write(fd, r.buf.Get(4096))
		r.check(we)
		r.check(p.Fsync(fd))
		r.check(p.Close(fd))
	}
	// Crash oracle: both files were just written and fsynced, so they
	// must survive a crash right now. An fsync-swallowing filesystem
	// fails here — the bug class this tester exists for.
	if r.sim != nil {
		violations := crashsim.Check(r.sim.Crash(), []crashsim.Expectation{
			{Path: fileA, MinSize: 4096},
			{Path: fileB, MinSize: 4096},
		})
		r.stats.CrashViolations += len(violations)
	}
	// The one mutating operation.
	switch op := seq1Ops[i%len(seq1Ops)]; op {
	case "write":
		fd, e := p.Open(fileA, sys.O_WRONLY|sys.O_APPEND, 0)
		r.check(e)
		if e == sys.OK {
			_, we := p.Write(fd, r.buf.Get(1024))
			r.check(we)
			r.check(p.Fsync(fd))
			r.check(p.Close(fd))
		}
	case "pwrite":
		fd, e := p.Open(fileA, sys.O_RDWR, 0)
		r.check(e)
		if e == sys.OK {
			_, we := p.Pwrite64(fd, r.buf.Get(512), 2048)
			r.check(we)
			r.check(p.Fdatasync(fd))
			r.check(p.Close(fd))
		}
	case "truncate":
		r.check(p.Truncate(fileA, int64(1024*(i%5))))
	case "falloc":
		fd, e := p.Open(fileA, sys.O_RDWR, 0)
		r.check(e)
		if e == sys.OK {
			r.check(p.Fallocate(fd, 0, 0, 16384))
			r.check(p.Fsync(fd))
			r.check(p.Close(fd))
		}
	case "mkdir":
		r.check(p.Mkdir(d+"/sub", 0o755))
	case "rmdir":
		r.check(p.Mkdir(d+"/gone", 0o755))
		r.check(p.Rmdir(d + "/gone"))
	case "link":
		r.check(p.Link(fileA, d+"/Alink"))
	case "unlink":
		r.check(p.Unlink(fileB))
	case "rename":
		r.check(p.Rename(fileA, d+"/A2"))
	case "symlink":
		r.check(p.Symlink(fileA, d+"/Asym"))
	case "fsync-only":
		fd, e := p.Open(d, sys.O_RDONLY|sys.O_DIRECTORY, 0)
		r.check(e)
		if e == sys.OK {
			r.check(p.Fsync(fd))
			r.check(p.Close(fd))
		}
	case "sync-only":
		p.Sync()
		r.stats.Ops++
	case "setxattr":
		r.check(p.Setxattr(fileA, "user.cm", r.buf.Get(64), 0))
	case "chmod":
		r.check(p.Chmod(fileA, 0o600))
	}
	p.Sync()
	r.stats.Ops++
	// Consistency check phase: one plain read-only re-open per workload
	// (most checker opens use the combined-flag patterns counted in the
	// storm calibration).
	fd, e := p.Open(fileB, sys.O_RDONLY, 0)
	r.check(e) // ENOENT after the unlink op is expected
	if e == sys.OK {
		_, re := p.Read(fd, make([]byte, 4096))
		r.check(re)
		r.check(p.Close(fd))
	}
	// Metadata probe through a regular file (not an open).
	_, e = p.Stat(fileA + "/meta")
	r.check(e)
}

// runGeneric executes the generic rule-based tests: directory trees, more
// ENOTDIR probes, and EEXIST paths.
func (r *runner) runGeneric() {
	p := r.p
	n := r.cfg.GenericTests
	if r.cfg.Scale < 1 {
		n = workload.ScaleCount(n, r.cfg.Scale)
		if n < 8 {
			n = 8
		}
	}
	for i := 0; i < n; i++ {
		r.item(func() {
			d := fmt.Sprintf("%s/gen%03d", r.mnt, i)
			r.check(p.Mkdir(d, 0o755))
			r.check(p.Mkdir(d, 0o755)) // EEXIST
			fd, e := p.Open(d+"/f", sys.O_WRONLY|sys.O_CREAT, 0o644)
			r.check(e)
			if e == sys.OK {
				_, we := p.Write(fd, r.buf.Get(int64(512*(i%8+1))))
				r.check(we)
				r.check(p.Fsync(fd))
				r.check(p.Close(fd))
			}
			// Three ENOTDIR probes per test, giving CrashMonkey its
			// Figure 4 edge over xfstests on this one errno.
			for j := 0; j < 3; j++ {
				_, e := p.Open(fmt.Sprintf("%s/f/x%d", d, j), sys.O_RDONLY, 0)
				r.check(e)
			}
			_, e = p.Open(d+"/missing", sys.O_RDONLY, 0) // ENOENT
			r.check(e)
			r.stats.Workloads++
		})
	}
}

// Chunk counts for the storm phases: constants independent of the shard
// count, so the generated workload never changes with the worker pool
// size. Each chunk is a self-contained work item with chunk-scoped scratch
// files and its own item RNG.
const (
	chunksOpens  = 8
	chunksWrites = 4
	chunksReads  = 4
	chunksLseeks = 2
)

// storm tops the run up to the calibrated full-scale magnitudes with
// checker-style opens, reads, writes and seeks drawn from the CrashMonkey
// distributions.
func (r *runner) storm() {
	r.stormPhase(chunksOpens, workload.ScaleCount(fullOpens, r.cfg.Scale), r.stormOpens)
	r.stormPhase(chunksWrites, workload.ScaleCount(fullWrites, r.cfg.Scale), r.stormWrites)
	r.stormPhase(chunksReads, workload.ScaleCount(fullReads, r.cfg.Scale), r.stormReads)
	r.stormPhase(chunksLseeks, workload.ScaleCount(fullLseeks, r.cfg.Scale), r.stormLseeks)
}

// stormPhase dispatches one phase's op budget as chunk work items; empty
// chunks are skipped deterministically (emptiness depends only on the op
// budget, never on the shard count).
func (r *runner) stormPhase(chunks, n int, fn func(c, lo, hi int)) {
	for c := 0; c < chunks; c++ {
		lo, hi := workload.ChunkRange(n, chunks, c)
		if lo >= hi {
			continue
		}
		r.item(func() { fn(c, lo, hi) })
	}
}

func (r *runner) stormOpens(c, lo, hi int) {
	p := r.p
	combos := workload.NewWeightedFlags(openCombos)
	d := fmt.Sprintf("%s/cm-storm-o%02d", r.mnt, c)
	r.check(p.Mkdir(d, 0o755))
	var files []string
	for i := 0; i < 8; i++ {
		f := fmt.Sprintf("%s/f%d", d, i)
		fd, e := p.Open(f, sys.O_WRONLY|sys.O_CREAT|sys.O_TRUNC, 0o644)
		r.check(e)
		if e == sys.OK {
			_, we := p.Write(fd, r.buf.Get(8192))
			r.check(we)
			r.check(p.Close(fd))
		}
		files = append(files, f)
	}
	dirs := []string{d}
	for i := lo; i < hi; i++ {
		flags := combos.Pick(r.rng)
		path := files[r.rng.Intn(len(files))]
		if flags&sys.O_DIRECTORY != 0 {
			path = dirs[r.rng.Intn(len(dirs))]
		}
		fd, e := p.Open(path, flags, 0o644)
		r.check(e)
		if e == sys.OK {
			if flags&sys.O_SYNC != 0 && r.rng.Intn(4) == 0 {
				r.check(p.Fsync(fd))
			}
			r.check(p.Close(fd))
		}
	}
}

func (r *runner) stormWrites(c, lo, hi int) {
	p := r.p
	wdist := workload.NewSizeDist(writeSizes, 128<<10)
	wfd, e := p.Open(fmt.Sprintf("%s/cm-storm-w%02d", r.mnt, c), sys.O_WRONLY|sys.O_CREAT|sys.O_TRUNC, 0o644)
	r.check(e)
	if e != sys.OK {
		return
	}
	var pos int64
	for i := lo; i < hi; i++ {
		size := wdist.Pick(r.rng)
		_, we := p.Write(wfd, r.buf.Get(size))
		r.check(we)
		pos += size
		if pos > 1<<20 {
			_, se := p.Lseek(wfd, 0, sys.SEEK_SET)
			r.check(se)
			pos = 0
		}
	}
	r.check(p.Close(wfd))
}

func (r *runner) stormReads(c, lo, hi int) {
	p := r.p
	f := fmt.Sprintf("%s/cm-storm-r%02d", r.mnt, c)
	wfd, e := p.Open(f, sys.O_WRONLY|sys.O_CREAT|sys.O_TRUNC, 0o644)
	r.check(e)
	if e != sys.OK {
		return
	}
	_, we := p.Write(wfd, r.buf.Get(8192))
	r.check(we)
	r.check(p.Close(wfd))
	rfd, e := p.Open(f, sys.O_RDONLY, 0)
	r.check(e)
	if e != sys.OK {
		return
	}
	rbuf := make([]byte, 8192)
	for i := lo; i < hi; i++ {
		size := int64(1) << uint(r.rng.Intn(13))
		_, re := p.Read(rfd, rbuf[:size])
		r.check(re)
		if i%8 == 7 {
			_, se := p.Lseek(rfd, 0, sys.SEEK_SET)
			r.check(se)
		}
	}
	r.check(p.Close(rfd))
}

func (r *runner) stormLseeks(c, lo, hi int) {
	p := r.p
	f := fmt.Sprintf("%s/cm-storm-s%02d", r.mnt, c)
	wfd, e := p.Open(f, sys.O_WRONLY|sys.O_CREAT|sys.O_TRUNC, 0o644)
	r.check(e)
	if e != sys.OK {
		return
	}
	_, we := p.Write(wfd, r.buf.Get(8192))
	r.check(we)
	r.check(p.Close(wfd))
	rfd, e := p.Open(f, sys.O_RDONLY, 0)
	r.check(e)
	if e != sys.OK {
		return
	}
	for i := lo; i < hi; i++ {
		whence := []int{sys.SEEK_SET, sys.SEEK_CUR, sys.SEEK_END}[r.rng.Intn(3)]
		_, se := p.Lseek(rfd, int64(r.rng.Intn(8192)), whence)
		r.check(se)
	}
	r.check(p.Close(rfd))
}
