package crashmonkey

import (
	"math/rand"
	"testing"

	"iocov/internal/kernel"
	"iocov/internal/suites/workload"
	"iocov/internal/sys"
	"iocov/internal/trace"
	"iocov/internal/vfs"
)

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.Scale != 1.0 || c.MountPoint != "/mnt/test" || c.Seq1Workloads != 300 || c.GenericTests != 80 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestRunSmall(t *testing.T) {
	col := trace.NewCollector()
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{Sink: col})
	stats, err := Run(k, Config{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workloads == 0 || stats.Ops == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if col.Len() == 0 {
		t.Fatal("no events")
	}
	if k.FS().Config().ReadOnly {
		t.Error("fs left read-only")
	}
}

// TestSeq1EveryOpRuns: each of the 14 seq-1 operations executes and leaves
// a consistent filesystem.
func TestSeq1EveryOpRuns(t *testing.T) {
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{})
	cfg := Config{Scale: 1, Seed: 1}
	cfg.fill()
	r := &runner{cfg: cfg, k: k, p: k.NewProc(kernel.ProcOptions{Cred: vfs.Root}),
		rng: rand.New(rand.NewSource(1)), buf: workload.NewSharedBuf(128 << 10),
		mnt: cfg.MountPoint}
	if err := r.setup(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(seq1Ops); i++ {
		r.seq1Workload(i)
	}
	if corruptions := k.FS().CheckConsistency(); len(corruptions) != 0 {
		t.Errorf("seq-1 corrupted the fs: %v", corruptions)
	}
	// The falloc op really allocated.
	st, e := r.p.Stat(cfg.MountPoint + "/cm003/A")
	if e != sys.OK {
		t.Fatalf("falloc workload file missing: %v", e)
	}
	if st.Size != 16384 || st.Blocks != 4 {
		t.Errorf("falloc result = size %d blocks %d", st.Size, st.Blocks)
	}
}

// TestFsyncHeavyProfile: CrashMonkey is a crash-consistency tester, so its
// trace must be dense in persistence operations.
func TestFsyncHeavyProfile(t *testing.T) {
	col := trace.NewCollector()
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{Sink: col})
	if _, err := Run(k, Config{Scale: 0.2, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	var syncs, total int
	for _, ev := range col.Events() {
		total++
		switch ev.Name {
		case "fsync", "fdatasync", "sync":
			syncs++
		}
	}
	if syncs == 0 {
		t.Fatal("no persistence ops in a crash-consistency workload")
	}
	if 100*syncs/total < 2 {
		t.Errorf("persistence ops only %d of %d events", syncs, total)
	}
}

// TestCrashCheckCleanOnCorrectFS: the crash oracle reports nothing on a
// correct filesystem.
func TestCrashCheckCleanOnCorrectFS(t *testing.T) {
	k := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{})
	stats, err := Run(k, Config{Scale: 0.1, Seed: 3, CrashCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CrashViolations != 0 {
		t.Errorf("crash violations on correct fs: %d", stats.CrashViolations)
	}
}

// TestCrashCheckCatchesFsyncIgnored: with the fsync-swallowing bug
// injected, the crash oracle reports violations — while the plain run
// statistics stay indistinguishable from a correct filesystem.
func TestCrashCheckCatchesFsyncIgnored(t *testing.T) {
	cfg := vfs.DefaultConfig()
	cfg.Bugs.FsyncIgnored = true
	k := kernel.New(vfs.New(cfg), kernel.Options{})
	stats, err := Run(k, Config{Scale: 0.1, Seed: 3, CrashCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CrashViolations == 0 {
		t.Fatal("crash oracle missed the fsync-ignored bug")
	}
	// Plain failure counts unchanged: invisible without the oracle.
	k2 := kernel.New(vfs.New(cfg), kernel.Options{})
	plain, err := Run(k2, Config{Scale: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	k3 := kernel.New(vfs.New(vfs.DefaultConfig()), kernel.Options{})
	clean, err := Run(k3, Config{Scale: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Failures != clean.Failures {
		t.Errorf("plain runs differ (%d vs %d); bug should be invisible without crash sim",
			plain.Failures, clean.Failures)
	}
}
